//! Integration coverage for the Sec. III-E "other DRAM families"
//! extension: the full Newton stack (layout, schedule, controller,
//! numerics, timing audit) must work unchanged on GDDR6-, LPDDR4-, and
//! DDR4-like channels, and on devices loaded from INI text.

use newton_aim::bf16::reduce::dot_error_bound;
use newton_aim::core::config::NewtonConfig;
use newton_aim::core::system::NewtonSystem;
use newton_aim::dram::{ini, DramConfig};
use newton_aim::workloads::{generator, reference, MvShape};

fn run_family(dram: DramConfig, shape: MvShape) {
    let mut cfg = NewtonConfig::paper_default();
    cfg.dram = dram;
    cfg.channels = 1;
    let matrix = generator::matrix(shape, 31);
    let vector = generator::vector(shape.n, 31);
    let mut sys = NewtonSystem::new(cfg).expect("config valid for family");
    for ch in sys.channels_mut() {
        ch.channel_mut().enable_audit();
    }
    let run = sys.run_mv(&matrix, shape.m, shape.n, &vector).expect("run");
    let expect = reference::mv_f64(&matrix, shape.m, shape.n, &vector);
    for (got, want) in run.output.iter().zip(&expect) {
        let bound = dot_error_bound(shape.n, 16, want.abs().max(1.0));
        assert!((*got as f64 - want).abs() <= bound);
    }
    for ch in sys.channels() {
        let t = *ch.channel().timing();
        assert_eq!(ch.channel().audit().unwrap().validate(&t), vec![]);
    }
}

#[test]
fn gddr6_like_runs_newton_correctly() {
    // 2 KB rows: chunks are 1024 elements wide.
    run_family(DramConfig::gddr6_like(), MvShape::new(40, 1500));
}

#[test]
fn lpddr4_like_runs_newton_correctly() {
    // 8 banks: validates the 4-bank clustering on the smaller device.
    run_family(DramConfig::lpddr4_like(), MvShape::new(20, 1100));
}

#[test]
fn ddr4_like_runs_newton_correctly() {
    run_family(DramConfig::ddr4_like(), MvShape::new(33, 700));
}

#[test]
fn ini_loaded_device_runs_newton_correctly() {
    let dram = ini::parse_config(
        "; a custom 8-bank device with a slow column path\n\
         NUM_BANKS=8\n\
         tCCD=6\n\
         tCMD=6\n\
         tFAW=36\n",
    )
    .unwrap();
    run_family(dram, MvShape::new(24, 600));
}

#[test]
fn family_speedup_ordering_follows_bank_count() {
    // The PIM advantage is bounded by banks/channel; LPDDR4's 8 banks
    // must yield less speedup over its own external bound than HBM2E's
    // 16, on the same workload.
    let measure = |dram: DramConfig| {
        let mut cfg = NewtonConfig::paper_default();
        cfg.dram = dram.clone();
        cfg.channels = 1;
        let shape = MvShape::new(dram.banks * 8, dram.row_bytes() / 2);
        let matrix = generator::matrix(shape, 1);
        let vector = generator::vector(shape.n, 1);
        let mut sys = NewtonSystem::new(cfg).unwrap();
        for ch in sys.channels_mut() {
            ch.channel_mut().disable_refresh();
        }
        let run = sys.run_mv(&matrix, shape.m, shape.n, &vector).unwrap();
        let rows = (shape.m * shape.n * 2) / dram.row_bytes();
        let ideal = rows as f64 * dram.cols_per_row as f64 * dram.timing.t_ccd_ns;
        ideal / run.elapsed_ns
    };
    let hbm = measure(DramConfig::hbm2e_like());
    let lp = measure(DramConfig::lpddr4_like());
    assert!(hbm > lp, "hbm {hbm} vs lpddr {lp}");
    assert!(lp > 4.0, "even LPDDR4 keeps a solid PIM advantage: {lp}");
}
