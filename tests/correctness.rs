//! Cross-crate numerical correctness: the simulated Newton device must
//! compute the same matrix–vector products as the f64 reference, within
//! the bf16 error envelope, under every optimization level, layout, and
//! latch configuration.

use newton_aim::bf16::reduce::dot_error_bound;
use newton_aim::core::config::{NewtonConfig, OptLevel};
use newton_aim::core::system::NewtonSystem;
use newton_aim::workloads::{generator, reference, Benchmark, MvShape};

fn check_mv(cfg: NewtonConfig, shape: MvShape, seed: u64) {
    let matrix = generator::matrix(shape, seed);
    let vector = generator::vector(shape.n, seed);
    let mut sys = NewtonSystem::new(cfg).expect("config");
    let run = sys.run_mv(&matrix, shape.m, shape.n, &vector).expect("run");
    let expect = reference::mv_f64(&matrix, shape.m, shape.n, &vector);
    assert_eq!(run.output.len(), shape.m);
    for (i, (&got, want)) in run.output.iter().zip(&expect).enumerate() {
        let bound = dot_error_bound(shape.n, 16, want.abs().max(1.0));
        assert!(
            (got as f64 - want).abs() <= bound,
            "row {i}: got {got}, want {want}, bound {bound}"
        );
    }
}

#[test]
fn dlrm_layer_exact_shape_all_opt_levels() {
    // DLRM is small enough to run at every opt level even in debug builds.
    let shape = Benchmark::DlrmS1.shape();
    for level in OptLevel::ladder() {
        let mut cfg = NewtonConfig::at_level(level);
        cfg.channels = 4;
        check_mv(cfg, shape, 11);
    }
}

#[test]
fn ragged_shapes_all_schedule_kinds() {
    // Shapes that exercise partial chunks, partial row groups, and
    // trailing idle banks.
    let shapes = [
        MvShape::new(1, 1),
        MvShape::new(17, 513),
        MvShape::new(33, 100),
        MvShape::new(64, 1200),
        MvShape::new(5, 2048),
    ];
    for shape in shapes {
        // Interleaved full reuse.
        let mut cfg = NewtonConfig::paper_default();
        cfg.channels = 2;
        check_mv(cfg, shape, 3);
        // No-reuse.
        let mut cfg = NewtonConfig::paper_default();
        cfg.channels = 2;
        cfg.opts.interleaved_reuse = false;
        check_mv(cfg, shape, 3);
        // Four-latch option.
        let mut cfg = NewtonConfig::paper_default();
        cfg.channels = 2;
        cfg.result_latches_per_bank = 4;
        check_mv(cfg, shape, 3);
    }
}

#[test]
fn channel_counts_do_not_change_results() {
    let shape = MvShape::new(40, 700);
    let matrix = generator::matrix(shape, 9);
    let vector = generator::vector(shape.n, 9);
    let mut outputs = Vec::new();
    for channels in [1usize, 2, 5, 24] {
        let mut cfg = NewtonConfig::paper_default();
        cfg.channels = channels;
        let mut sys = NewtonSystem::new(cfg).unwrap();
        let run = sys.run_mv(&matrix, shape.m, shape.n, &vector).unwrap();
        outputs.push(run.output);
    }
    // Same bf16 datapath, same per-row computation order -> identical
    // results regardless of channel distribution.
    for o in &outputs[1..] {
        assert_eq!(o, &outputs[0]);
    }
}

#[test]
fn bank_counts_do_not_change_results() {
    let shape = MvShape::new(48, 512);
    let matrix = generator::matrix(shape, 5);
    let vector = generator::vector(shape.n, 5);
    let mut outputs = Vec::new();
    for banks in [8usize, 16, 32] {
        let mut cfg = NewtonConfig::paper_default();
        cfg.channels = 1;
        cfg.dram = cfg.dram.with_banks(banks);
        let mut sys = NewtonSystem::new(cfg).unwrap();
        let run = sys.run_mv(&matrix, shape.m, shape.n, &vector).unwrap();
        outputs.push(run.output);
    }
    for o in &outputs[1..] {
        assert_eq!(o, &outputs[0]);
    }
}

#[test]
fn per_stage_tree_precision_still_within_coarse_bound() {
    use newton_aim::bf16::reduce::TreePrecision;
    let shape = MvShape::new(16, 512);
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 1;
    cfg.tree_precision = TreePrecision::PerStage;
    let matrix = generator::matrix(shape, 4);
    let vector = generator::vector(shape.n, 4);
    let mut sys = NewtonSystem::new(cfg).unwrap();
    let run = sys.run_mv(&matrix, shape.m, shape.n, &vector).unwrap();
    let expect = reference::mv_f64(&matrix, shape.m, shape.n, &vector);
    for (got, want) in run.output.iter().zip(&expect) {
        let bound = dot_error_bound(shape.n, 16, want.abs().max(1.0)) * 2.0;
        assert!((*got as f64 - want).abs() <= bound);
    }
}
