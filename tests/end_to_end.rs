//! End-to-end model execution across crates: chained layers on the
//! simulated device vs the chained f64 reference, plus the paper's
//! qualitative end-to-end effects (refresh interposition, AlexNet
//! Amdahl).

use newton_aim::baselines::TitanVModel;
use newton_aim::bench::to_activation_kind;
use newton_aim::core::config::NewtonConfig;
use newton_aim::core::system::{MvProblem, NewtonSystem};
use newton_aim::workloads::models::EndToEndModel;
use newton_aim::workloads::reference::{self, Activation, RefLayer};
use newton_aim::workloads::{generator, MvShape};

#[test]
fn three_layer_mlp_matches_chained_reference() {
    let shapes = [
        MvShape::new(48, 96),
        MvShape::new(24, 48),
        MvShape::new(8, 24),
    ];
    let acts = [Activation::Relu, Activation::Tanh, Activation::Identity];
    let norms = [true, false, false];
    let mats: Vec<_> = shapes
        .iter()
        .enumerate()
        .map(|(i, s)| generator::matrix(*s, 100 + i as u64))
        .collect();

    let problems: Vec<MvProblem<'_>> = (0..3)
        .map(|i| MvProblem {
            matrix: &mats[i],
            m: shapes[i].m,
            n: shapes[i].n,
            activation: to_activation_kind(acts[i]),
            batch_norm: norms[i],
            output_keep: None,
        })
        .collect();
    let ref_layers: Vec<RefLayer<'_>> = (0..3)
        .map(|i| RefLayer {
            matrix: &mats[i],
            m: shapes[i].m,
            n: shapes[i].n,
            activation: acts[i],
            batch_norm: norms[i],
            output_keep: None,
        })
        .collect();

    let input = generator::vector(96, 55);
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 3;
    let mut sys = NewtonSystem::new(cfg).unwrap();
    let run = sys.run_model(&problems, &input).unwrap();
    let expect = reference::run_model_f64(&ref_layers, &input);

    assert_eq!(run.output.len(), expect.len());
    for (i, (&got, want)) in run.output.iter().zip(&expect).enumerate() {
        // Chained bf16 error compounds; allow a loose but bounded window.
        assert!(
            (got as f64 - want).abs() <= want.abs().max(0.5) * 0.1,
            "output {i}: {got} vs {want}"
        );
    }
}

#[test]
fn dlrm_end_to_end_runs_and_sees_normalization_exposure() {
    let model = EndToEndModel::dlrm();
    let mats: Vec<_> = model
        .layers
        .iter()
        .map(|l| generator::matrix(l.shape, l.benchmark.seed()))
        .collect();
    let problems: Vec<MvProblem<'_>> = model
        .layers
        .iter()
        .zip(&mats)
        .map(|(l, w)| MvProblem {
            matrix: w,
            m: l.shape.m,
            n: l.shape.n,
            activation: to_activation_kind(l.activation),
            batch_norm: l.batch_norm,
            output_keep: l.output_keep,
        })
        .collect();
    let input = generator::vector(model.input_len(), 1);

    let run = |bn_ns: f64| {
        let mut cfg = NewtonConfig::paper_default();
        cfg.channels = 2;
        cfg.batch_norm_first_tile_ns = bn_ns;
        let mut sys = NewtonSystem::new(cfg).unwrap();
        sys.run_model(&problems, &input).unwrap()
    };
    let fast = run(0.0);
    let slow = run(500.0);
    // Six normalized layers, each exposing the first-tile latency.
    assert!(
        slow.cycles >= fast.cycles + 6 * 500,
        "normalization exposure missing: {} vs {}",
        slow.cycles,
        fast.cycles
    );
    // ReLU output is non-negative.
    assert!(fast.output.iter().all(|&x| x >= 0.0));
}

#[test]
fn gnmt_gate_folding_chains() {
    let model = EndToEndModel::gnmt();
    // Two layers are enough to prove the 4096 -> 2048 folding works on
    // the device (full model is exercised by the benches in release).
    let mats: Vec<_> = model.layers[..2]
        .iter()
        .map(|l| generator::matrix(l.shape, l.benchmark.seed()))
        .collect();
    let problems: Vec<MvProblem<'_>> = model.layers[..2]
        .iter()
        .zip(&mats)
        .map(|(l, w)| MvProblem {
            matrix: w,
            m: l.shape.m,
            n: l.shape.n,
            activation: to_activation_kind(l.activation),
            batch_norm: l.batch_norm,
            output_keep: l.output_keep,
        })
        .collect();
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 24;
    let mut sys = NewtonSystem::new(cfg).unwrap();
    let input = generator::vector(model.input_len(), 2);
    let run = sys.run_model(&problems, &input).unwrap();
    assert_eq!(run.output.len(), 2048, "gate folding keeps 2048 of 4096");
    // tanh clamps to [-1, 1].
    assert!(run.output.iter().all(|&x| (-1.0..=1.0).contains(&x)));
}

#[test]
fn alexnet_end_to_end_speedup_is_amdahl_limited() {
    // The conv-dominated fraction bounds the AlexNet end-to-end speedup
    // near 1/(0.85) ≈ 1.18 no matter how fast Newton runs the FC layers.
    let gpu = TitanVModel::new();
    let model = EndToEndModel::alexnet();
    let gpu_total = gpu.model_time_ns(&model, 1);
    let non_fc = gpu.non_fc_time_ns(&model, 1);
    let newton_fc = 0.0; // infinitely fast FC
    let bound = gpu_total / (newton_fc + non_fc);
    assert!((1.17..1.19).contains(&bound), "Amdahl bound {bound}");
}

#[test]
fn chrome_trace_export_golden_roundtrip() {
    // A real (small) GEMV run, traced and exported for Perfetto: the JSON
    // must parse, and the bus track must carry one slice per recorded
    // command.
    use newton_aim::core::controller::NewtonChannel;
    use newton_aim::core::export::export_chrome_trace;
    use newton_aim::core::layout::MatrixMapping;
    use newton_aim::core::lut::ActivationKind;
    use newton_aim::core::tiling::{Schedule, ScheduleKind};
    use newton_aim::trace::JsonValue;

    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 1;
    let (m, n) = (16, 512);
    let matrix = generator::matrix(MvShape::new(m, n), 7);
    let vector = generator::vector(n, 7);
    let mapping = MatrixMapping::new(
        ScheduleKind::InterleavedFullReuse.layout(),
        m,
        n,
        cfg.dram.banks,
        cfg.row_elems(),
        0,
    )
    .unwrap();
    let schedule = Schedule::build(ScheduleKind::InterleavedFullReuse, &mapping);
    let mut ch = NewtonChannel::new(&cfg, ActivationKind::Identity).unwrap();
    ch.enable_trace();
    ch.load_matrix(&mapping, &matrix).unwrap();
    ch.run_mv(&mapping, &schedule, &vector, false).unwrap();

    let recorded = ch.trace().entries().len();
    assert!(recorded > 0, "trace recorded nothing");
    let json = export_chrome_trace(ch.trace(), ch.channel().timing(), cfg.dram.banks);
    let doc = JsonValue::parse(&json).expect("export must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    let bus_slices = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(JsonValue::as_str) == Some("X")
                && e.get("pid").and_then(JsonValue::as_f64) == Some(1.0)
        })
        .count();
    assert_eq!(bus_slices, recorded, "one bus slice per recorded command");
}
