//! Workspace-level property tests: for arbitrary (small) shapes, seeds,
//! and configurations, the simulated Newton device computes the reference
//! product within the bf16 envelope and its command stream stays timing
//! legal.

use newton_aim::bf16::reduce::dot_error_bound;
use newton_aim::core::config::NewtonConfig;
use newton_aim::core::layout::{Layout, MatrixMapping};
use newton_aim::core::system::NewtonSystem;
use newton_aim::core::tiling::{Schedule, ScheduleKind};
use newton_aim::dram::{Channel, DramConfig};
use newton_aim::workloads::{generator, reference, MvShape};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Newton == reference for arbitrary small shapes under the full
    /// configuration (audited).
    #[test]
    fn newton_matches_reference(
        m in 1usize..48,
        n in 1usize..1100,
        seed in 0u64..1000,
        channels in 1usize..4,
    ) {
        let shape = MvShape::new(m, n);
        let matrix = generator::matrix(shape, seed);
        let vector = generator::vector(n, seed);
        let mut cfg = NewtonConfig::paper_default();
        cfg.channels = channels;
        let mut sys = NewtonSystem::new(cfg).unwrap();
        for ch in sys.channels_mut() {
            ch.channel_mut().enable_audit();
        }
        let run = sys.run_mv(&matrix, m, n, &vector).unwrap();
        let expect = reference::mv_f64(&matrix, m, n, &vector);
        for (got, want) in run.output.iter().zip(&expect) {
            let bound = dot_error_bound(n, 16, want.abs().max(1.0));
            prop_assert!((*got as f64 - want).abs() <= bound);
        }
        for ch in sys.channels() {
            let t = *ch.channel().timing();
            prop_assert!(ch.channel().audit().unwrap().validate(&t).is_empty());
        }
        // Residency attribution: every bank of every channel accounts for
        // every cycle of the run exactly once.
        for s in &run.channel_summaries {
            prop_assert!(!s.residency.is_empty());
            for (bank, r) in s.residency.iter().enumerate() {
                prop_assert_eq!(r.total(), s.end_cycle, "bank {} residency != elapsed", bank);
            }
        }
    }

    /// Layout round-trip: load + extract is the identity for arbitrary
    /// shapes, layouts, and base rows.
    #[test]
    fn layout_roundtrip(
        m in 1usize..40,
        n in 1usize..1200,
        base in 0usize..100,
        no_reuse in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let layout = if no_reuse { Layout::NoReuse } else { Layout::ChunkInterleaved };
        let mapping = MatrixMapping::new(layout, m, n, 16, 512, base).unwrap();
        let mut ch = Channel::new(DramConfig::hbm2e_like()).unwrap();
        let matrix = generator::matrix(MvShape::new(m, n), seed);
        mapping.load(&mut ch, &matrix).unwrap();
        prop_assert_eq!(mapping.extract(&ch).unwrap(), matrix);
    }

    /// Schedule coverage: every (matrix row, chunk) pair is computed
    /// exactly once for arbitrary shapes and all three traversals.
    #[test]
    fn schedule_covers_iteration_space(
        m in 1usize..80,
        n in 1usize..1600,
        kind_sel in 0usize..3,
    ) {
        let kind = [
            ScheduleKind::InterleavedFullReuse,
            ScheduleKind::NoReuse,
            ScheduleKind::FourLatch,
        ][kind_sel];
        let mapping = MatrixMapping::new(kind.layout(), m, n, 16, 512, 0).unwrap();
        let sched = Schedule::build(kind, &mapping);
        let chunks = mapping.num_chunks();
        let mut seen = vec![0u32; m * chunks];
        for rs in sched.row_sets() {
            for w in &rs.work {
                seen[w.matrix_row * chunks + rs.chunk] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
        // Each matrix row is read out exactly the expected number of times.
        let mut reads = vec![0u32; m];
        for rs in sched.row_sets() {
            for r in &rs.read_after {
                reads[r.matrix_row] += 1;
            }
        }
        let expected = if kind == ScheduleKind::InterleavedFullReuse { chunks as u32 } else { 1 };
        prop_assert!(reads.iter().all(|&c| c == expected));
    }

    /// The address mapper is a bijection over random locations.
    #[test]
    fn address_mapper_bijection(addr in 0usize..(1 << 20)) {
        use newton_aim::dram::address::{AddressMapper, Interleave};
        let cfg = DramConfig::hbm2e_like();
        for il in [Interleave::BankInterleaved, Interleave::BankSequential] {
            let m = AddressMapper::new(&cfg, il);
            let loc = m.decode(addr).unwrap();
            prop_assert_eq!(m.encode(loc).unwrap(), addr);
        }
    }
}
