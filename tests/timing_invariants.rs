//! Workspace-level timing legality: every command stream the Newton
//! controller emits — at any optimization level, layout, bank count, or
//! latch configuration — must pass the independent post-hoc DRAM timing
//! audit (tCMD, tRRD, tFAW, tRCD, tCCD, tRAS, tRTP, tWR, tRP, tRC, tRFC).

use newton_aim::core::config::{NewtonConfig, OptLevel};
use newton_aim::core::system::NewtonSystem;
use newton_aim::workloads::{generator, MvShape};

fn run_audited(mut cfg: NewtonConfig, shape: MvShape) {
    cfg.channels = 1;
    let matrix = generator::matrix(shape, 21);
    let vector = generator::vector(shape.n, 21);
    let mut sys = NewtonSystem::new(cfg).expect("config");
    for ch in sys.channels_mut() {
        ch.channel_mut().enable_audit();
    }
    sys.run_mv(&matrix, shape.m, shape.n, &vector).expect("run");
    for ch in sys.channels() {
        let t = *ch.channel().timing();
        let violations = ch.channel().audit().expect("audit on").validate(&t);
        assert_eq!(violations, vec![], "timing violations found");
    }
}

#[test]
fn every_opt_level_is_timing_legal() {
    for level in OptLevel::ladder() {
        run_audited(NewtonConfig::at_level(level), MvShape::new(40, 700));
    }
}

#[test]
fn no_reuse_and_four_latch_are_timing_legal() {
    let mut cfg = NewtonConfig::paper_default();
    cfg.opts.interleaved_reuse = false;
    run_audited(cfg, MvShape::new(40, 1100));

    let mut cfg = NewtonConfig::paper_default();
    cfg.result_latches_per_bank = 4;
    cfg.opts.interleaved_reuse = false;
    run_audited(cfg, MvShape::new(16 * 9, 1100));
}

#[test]
fn bank_sweep_is_timing_legal() {
    for banks in [8usize, 16, 32] {
        let mut cfg = NewtonConfig::paper_default();
        cfg.dram = cfg.dram.with_banks(banks);
        run_audited(cfg, MvShape::new(64, 512));
    }
}

#[test]
fn long_run_with_refresh_is_timing_legal() {
    // > 2 refresh windows of AiM work in one channel.
    run_audited(NewtonConfig::paper_default(), MvShape::new(16 * 45, 512));
}

#[test]
fn baseline_tfaw_is_timing_legal() {
    let mut cfg = NewtonConfig::paper_default();
    cfg.opts.aggressive_tfaw = false;
    run_audited(cfg, MvShape::new(64, 512));
}

#[test]
fn model_chain_is_timing_legal() {
    use newton_aim::bench::to_activation_kind;
    use newton_aim::core::system::MvProblem;
    use newton_aim::workloads::reference::Activation;
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 1;
    let w1 = generator::matrix(MvShape::new(64, 128), 1);
    let w2 = generator::matrix(MvShape::new(32, 64), 2);
    let layers = [
        MvProblem {
            matrix: &w1,
            m: 64,
            n: 128,
            activation: to_activation_kind(Activation::Relu),
            batch_norm: true,
            output_keep: None,
        },
        MvProblem {
            matrix: &w2,
            m: 32,
            n: 64,
            activation: to_activation_kind(Activation::Tanh),
            batch_norm: false,
            output_keep: None,
        },
    ];
    let mut sys = NewtonSystem::new(cfg).unwrap();
    for ch in sys.channels_mut() {
        ch.channel_mut().enable_audit();
    }
    let input = generator::vector(128, 3);
    sys.run_model(&layers, &input).unwrap();
    for ch in sys.channels() {
        let t = *ch.channel().timing();
        assert_eq!(ch.channel().audit().unwrap().validate(&t), vec![]);
    }
}
