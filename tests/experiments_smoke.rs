//! Smoke tests for the experiment harness: the cheap experiments run in
//! debug builds and reproduce the paper's headline *shapes* (full-scale
//! numbers come from `cargo bench` / the `reproduce` binary in release).

use newton_aim::bench;
use newton_aim::core::config::{NewtonConfig, OptLevel};
use newton_aim::workloads::Benchmark;

#[test]
fn model_validation_refined_matches_simulator() {
    let v = bench::model_validation().expect("model validation");
    assert!((9.0..10.5).contains(&v.paper_model_x), "{v:?}");
    assert!(v.refined_model_x < v.paper_model_x);
    let rel = (v.refined_model_x - v.measured_x).abs() / v.measured_x;
    assert!(rel < 0.03, "refined model off by {:.1}%", rel * 100.0);
}

#[test]
fn fig07_trace_has_the_table_i_commands() {
    let trace = bench::fig07_command_trace().expect("trace");
    for needle in ["GWRITE", "G_ACT", "COMP", "READRES"] {
        assert!(trace.contains(needle), "missing {needle} in:\n{trace}");
    }
}

#[test]
fn dlrm_layer_measurement_shape() {
    // DLRM is the cheapest benchmark; check the Fig. 8 orderings.
    let m =
        bench::measure_layer(&NewtonConfig::paper_default(), Benchmark::DlrmS1).expect("measure");
    assert!(m.numerics_ok, "numeric error {}", m.max_numeric_error);
    assert!(m.newton_ns < m.ideal_ns, "Newton beats Ideal Non-PIM");
    assert!(m.ideal_ns < m.gpu_ns, "Ideal Non-PIM beats the GPU");
    // DLRM fits inside one refresh window (Sec. V-A).
    let refreshes: u64 = m.newton_summaries.iter().map(|s| s.stats.refreshes).sum();
    assert_eq!(refreshes, 0);
}

#[test]
fn nonopt_is_much_slower_but_correct() {
    let full = bench::measure_layer(&NewtonConfig::paper_default(), Benchmark::DlrmS1).unwrap();
    let non =
        bench::measure_layer(&NewtonConfig::at_level(OptLevel::NonOpt), Benchmark::DlrmS1).unwrap();
    assert!(non.numerics_ok);
    assert!(
        non.newton_ns > 5.0 * full.newton_ns,
        "non-opt {} vs full {}",
        non.newton_ns,
        full.newton_ns
    );
}

#[test]
fn power_model_yields_plausible_dlrm_ratio() {
    use newton_aim::model::power::{ActivityCounts, PowerModel};
    let m = bench::measure_layer(&NewtonConfig::paper_default(), Benchmark::DlrmS1).unwrap();
    let newton = ActivityCounts::from_aim_summaries(&m.newton_summaries);
    let conventional =
        ActivityCounts::from_conventional_summaries(std::slice::from_ref(&m.ideal_summary));
    let r = PowerModel::new().normalized(&newton, &conventional);
    assert!((1.0..4.2).contains(&r), "normalized power {r}");
}

#[test]
fn batch_scaling_directions() {
    use newton_aim::baselines::{IdealNonPim, TitanVModel};
    let cfg = NewtonConfig::paper_default();
    let shape = Benchmark::DlrmS1.shape();
    let ideal = IdealNonPim::new(cfg.dram.clone(), cfg.channels);
    let gpu = TitanVModel::new();
    // Both baselines improve with batching; Newton would not.
    let i1 = ideal.per_inference_ns(shape.m, shape.n, 1).unwrap();
    let i16 = ideal.per_inference_ns(shape.m, shape.n, 16).unwrap();
    assert!((i1 / i16 - 16.0).abs() < 1e-9);
    let g1 = gpu.per_inference_ns(shape, 1);
    let g64 = gpu.per_inference_ns(shape, 64);
    assert!(g64 < g1 / 10.0);
}

// ---------------------------------------------------------------------
// Seed-era triage (PR 10): audited the whole workspace for `#[ignore]`d
// or flaky carve-outs from the original seed — `grep -rn '#\[ignore'`
// over src/ and tests/ finds none, and the tier-1 suite reports
// "0 ignored" on every crate. Nothing is left to re-enable, so the
// audit's artifact is the trace-replay smoke below: the newest frontend
// (the `.aim` ISA layer) exercised end to end in the tier-1 run.
// ---------------------------------------------------------------------

#[test]
fn trace_frontend_replay_smoke() {
    use newton_aim::core::system::NewtonSystem;
    use newton_aim::isa::{generate, mv, Program};
    use newton_aim::workloads::{generator, MvShape};

    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 4;
    let (m, n) = (64, 128);
    let matrix = generator::matrix(MvShape::new(m, n), 3);
    let vector = generator::vector(n, 4);

    // Lower -> render -> parse -> recognize -> physical replay.
    let program = generate::lower_mv(&cfg, &matrix, m, n, &vector).expect("lower");
    let trace = mv::recognize(&Program::parse(&program.render()).expect("parse")).expect("mv");
    let mut sys = NewtonSystem::new(cfg.clone()).expect("system");
    let loaded = trace.apply_physical(&mut sys).expect("replay");
    let replayed = sys.run_resident(&loaded, &trace.vector).expect("run");

    let mut api = NewtonSystem::new(cfg).expect("system");
    let direct = api.run_mv(&matrix, m, n, &vector).expect("run");
    let bits = |o: &[f32]| o.iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
    assert_eq!(bits(&replayed.output), bits(&direct.output));
    assert_eq!(replayed.cycles, direct.cycles);
    assert_eq!(replayed.stats, direct.stats);
}
