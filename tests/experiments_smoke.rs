//! Smoke tests for the experiment harness: the cheap experiments run in
//! debug builds and reproduce the paper's headline *shapes* (full-scale
//! numbers come from `cargo bench` / the `reproduce` binary in release).

use newton_aim::bench;
use newton_aim::core::config::{NewtonConfig, OptLevel};
use newton_aim::workloads::Benchmark;

#[test]
fn model_validation_refined_matches_simulator() {
    let v = bench::model_validation().expect("model validation");
    assert!((9.0..10.5).contains(&v.paper_model_x), "{v:?}");
    assert!(v.refined_model_x < v.paper_model_x);
    let rel = (v.refined_model_x - v.measured_x).abs() / v.measured_x;
    assert!(rel < 0.03, "refined model off by {:.1}%", rel * 100.0);
}

#[test]
fn fig07_trace_has_the_table_i_commands() {
    let trace = bench::fig07_command_trace().expect("trace");
    for needle in ["GWRITE", "G_ACT", "COMP", "READRES"] {
        assert!(trace.contains(needle), "missing {needle} in:\n{trace}");
    }
}

#[test]
fn dlrm_layer_measurement_shape() {
    // DLRM is the cheapest benchmark; check the Fig. 8 orderings.
    let m =
        bench::measure_layer(&NewtonConfig::paper_default(), Benchmark::DlrmS1).expect("measure");
    assert!(m.numerics_ok, "numeric error {}", m.max_numeric_error);
    assert!(m.newton_ns < m.ideal_ns, "Newton beats Ideal Non-PIM");
    assert!(m.ideal_ns < m.gpu_ns, "Ideal Non-PIM beats the GPU");
    // DLRM fits inside one refresh window (Sec. V-A).
    let refreshes: u64 = m.newton_summaries.iter().map(|s| s.stats.refreshes).sum();
    assert_eq!(refreshes, 0);
}

#[test]
fn nonopt_is_much_slower_but_correct() {
    let full = bench::measure_layer(&NewtonConfig::paper_default(), Benchmark::DlrmS1).unwrap();
    let non =
        bench::measure_layer(&NewtonConfig::at_level(OptLevel::NonOpt), Benchmark::DlrmS1).unwrap();
    assert!(non.numerics_ok);
    assert!(
        non.newton_ns > 5.0 * full.newton_ns,
        "non-opt {} vs full {}",
        non.newton_ns,
        full.newton_ns
    );
}

#[test]
fn power_model_yields_plausible_dlrm_ratio() {
    use newton_aim::model::power::{ActivityCounts, PowerModel};
    let m = bench::measure_layer(&NewtonConfig::paper_default(), Benchmark::DlrmS1).unwrap();
    let newton = ActivityCounts::from_aim_summaries(&m.newton_summaries);
    let conventional =
        ActivityCounts::from_conventional_summaries(std::slice::from_ref(&m.ideal_summary));
    let r = PowerModel::new().normalized(&newton, &conventional);
    assert!((1.0..4.2).contains(&r), "normalized power {r}");
}

#[test]
fn batch_scaling_directions() {
    use newton_aim::baselines::{IdealNonPim, TitanVModel};
    let cfg = NewtonConfig::paper_default();
    let shape = Benchmark::DlrmS1.shape();
    let ideal = IdealNonPim::new(cfg.dram.clone(), cfg.channels);
    let gpu = TitanVModel::new();
    // Both baselines improve with batching; Newton would not.
    let i1 = ideal.per_inference_ns(shape.m, shape.n, 1).unwrap();
    let i16 = ideal.per_inference_ns(shape.m, shape.n, 16).unwrap();
    assert!((i1 / i16 - 16.0).abs() < 1e-9);
    let g1 = gpu.per_inference_ns(shape, 1);
    let g64 = gpu.per_inference_ns(shape, 64);
    assert!(g64 < g1 / 10.0);
}
