//! Integration of the analytical models with real simulator runs: the
//! power breakdown on measured activity, and the Sec. III-F performance
//! model tracked across bank counts.

use newton_aim::bench;
use newton_aim::core::config::NewtonConfig;
use newton_aim::core::system::NewtonSystem;
use newton_aim::model::power::{ActivityCounts, PowerModel};
use newton_aim::model::PerfModel;
use newton_aim::workloads::{generator, MvShape};

#[test]
fn power_breakdown_on_a_real_run_is_comp_dominated() {
    // A large single-chunk layer spends most of its activity in COMP
    // streaming; array + MAC power must dominate the breakdown, and the
    // total must sit between the background floor and the 4x COMP peak.
    let m = bench::measure_layer(
        &NewtonConfig::paper_default(),
        newton_aim::workloads::Benchmark::GnmtS1,
    )
    .expect("measure");
    let counts = ActivityCounts::from_aim_summaries(&m.newton_summaries);
    let model = PowerModel::new();
    let b = model.average_power(&counts);
    assert!(b.array + b.mac > b.background, "{b:?}");
    assert!(
        b.array + b.mac > b.phy,
        "internal compute outweighs PHY: {b:?}"
    );
    let total = b.total();
    assert!(
        (model.p_background..4.2).contains(&total),
        "total {total} outside [background, COMP peak]"
    );
}

#[test]
fn refined_model_tracks_the_simulator_across_bank_counts() {
    // The Sec. III-F structure must hold at 8 and 32 banks too, not just
    // the calibrated 16 (Fig. 10's underlying mechanism).
    for banks in [8usize, 16, 32] {
        let mut cfg = NewtonConfig::paper_default();
        cfg.dram = cfg.dram.with_banks(banks);
        cfg.channels = 1;
        let (m, n) = (banks * 48, 512);
        let matrix = generator::matrix(MvShape::new(m, n), 1);
        let vector = generator::vector(n, 1);
        let mut sys = NewtonSystem::new(cfg.clone()).unwrap();
        for ch in sys.channels_mut() {
            ch.channel_mut().disable_refresh();
        }
        let run = sys.run_mv(&matrix, m, n, &vector).unwrap();
        let rows = (m * n * 2) / 1024;
        let ideal_ns = rows as f64 * 32.0 * 4.0;
        let measured = ideal_ns / run.elapsed_ns;
        let predicted = PerfModel::new(cfg.effective_dram()).speedup_vs_ideal_refined();
        let rel = (measured - predicted).abs() / predicted;
        assert!(
            rel < 0.05,
            "{banks} banks: measured {measured:.2} vs refined model {predicted:.2}"
        );
    }
}

#[test]
fn idle_gaps_dilute_measured_average_power() {
    // Insert host-exposed idle time between two identical layers: same
    // activity, longer elapsed => lower average power.
    let run_with_gap = |gap_ns: f64| {
        let mut cfg = NewtonConfig::paper_default();
        cfg.channels = 1;
        cfg.batch_norm_first_tile_ns = gap_ns;
        let (m, n) = (512, 512); // square so the layers chain
        let w = generator::matrix(MvShape::new(m, n), 2);
        let input = generator::vector(n, 2);
        let layers = [
            newton_aim::core::system::MvProblem {
                matrix: &w,
                m,
                n,
                activation: newton_aim::core::lut::ActivationKind::Identity,
                batch_norm: true,
                output_keep: None,
            },
            newton_aim::core::system::MvProblem {
                matrix: &w,
                m,
                n,
                activation: newton_aim::core::lut::ActivationKind::Identity,
                batch_norm: false,
                output_keep: None,
            },
        ];
        let mut sys = NewtonSystem::new(cfg).unwrap();
        let run = sys.run_model(&layers, &input).unwrap();
        let counts = ActivityCounts::from_aim_summaries(&run.channel_summaries);
        PowerModel::new().average_power(&counts).total()
    };
    let busy = run_with_gap(0.0);
    let idle = run_with_gap(20_000.0);
    assert!(idle < busy, "idle {idle} should be below busy {busy}");
}
