//! # newton-aim
//!
//! A from-scratch Rust reproduction of **Newton: A DRAM-maker's
//! Accelerator-in-Memory (AiM) Architecture for Machine Learning**
//! (MICRO 2020) — the architecture that became SK hynix's GDDR6-AiM
//! product line.
//!
//! This umbrella crate re-exports the whole system:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`bf16`] | software bfloat16 arithmetic + adder-tree semantics |
//! | [`dram`] | cycle-accurate HBM2E-like DRAM channel simulator |
//! | [`core`] | the Newton AiM device, command set, layouts, controller |
//! | [`workloads`] | Table II benchmarks + end-to-end model graphs |
//! | [`baselines`] | Ideal Non-PIM and a Titan-V-like GPU model |
//! | [`model`] | Sec. III-F performance model + Fig. 13 power model |
//! | [`mod@bench`] | one experiment function per table/figure |
//! | [`isa`] | `.aim` text-trace frontend + multi-backend conformance |
//!
//! # Quickstart
//!
//! ```
//! use newton_aim::core::config::NewtonConfig;
//! use newton_aim::core::system::NewtonSystem;
//! use newton_aim::workloads::{generator, MvShape};
//!
//! // Simulate one matrix-vector product on a 2-channel Newton device.
//! let mut cfg = NewtonConfig::paper_default();
//! cfg.channels = 2;
//! let shape = MvShape::new(64, 512);
//! let matrix = generator::matrix(shape, 1);
//! let vector = generator::vector(shape.n, 1);
//!
//! let mut system = NewtonSystem::new(cfg)?;
//! let run = system.run_mv(&matrix, shape.m, shape.n, &vector)?;
//! println!("computed {} outputs in {:.0} ns", run.output.len(), run.elapsed_ns);
//! # Ok::<(), newton_aim::core::AimError>(())
//! ```
//!
//! Run `cargo run --release -p newton-bench --bin reproduce` to regenerate
//! every table and figure of the paper's evaluation, or `cargo bench` for
//! the per-figure targets. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]

pub use newton_baselines as baselines;
pub use newton_bench as bench;
pub use newton_bf16 as bf16;
pub use newton_core as core;
pub use newton_dram as dram;
pub use newton_isa as isa;
pub use newton_model as model;
pub use newton_trace as trace;
pub use newton_workloads as workloads;
