//! Quickstart: simulate one matrix–vector product on a Newton AiM device
//! and inspect what happened — cycle-accurate timing, real bf16 numbers,
//! and the AiM command counts of Table I.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use newton_aim::core::config::NewtonConfig;
use newton_aim::core::system::NewtonSystem;
use newton_aim::core::AimError;
use newton_aim::workloads::{generator, reference, MvShape};

fn main() -> Result<(), AimError> {
    // The paper's system: 24 HBM2E-like channels, 16 banks each, 16
    // bf16 multipliers per bank, all interface optimizations on.
    let cfg = NewtonConfig::paper_default();
    println!(
        "Newton system: {} channels x {} banks, {} multipliers/bank",
        cfg.channels, cfg.dram.banks, cfg.multipliers_per_bank
    );

    // A BERT-attention-sized layer: 1024 x 1024 bf16 weights.
    let shape = MvShape::new(1024, 1024);
    let matrix = generator::matrix(shape, 42);
    let vector = generator::vector(shape.n, 42);
    println!(
        "layer: {shape} ({:.1} MB of weights)",
        shape.matrix_bytes() as f64 / 1e6
    );

    // Run it. The simulator issues every GWRITE/G_ACT/COMP/READRES
    // command through the DRAM timing engine and performs the real bf16
    // arithmetic on the bytes the banks return.
    let mut system = NewtonSystem::new(cfg)?;
    let run = system.run_mv(&matrix, shape.m, shape.n, &vector)?;

    println!("\nsimulated execution:");
    println!(
        "  time            : {:.0} ns ({} cycles)",
        run.elapsed_ns, run.cycles
    );
    println!("  row-sets        : {}", run.stats.row_sets);
    println!("  GWRITE commands : {}", run.stats.gwrite_commands);
    println!("  COMP commands   : {}", run.stats.compute_commands);
    println!("  READRES commands: {}", run.stats.readres_commands);
    println!("  activations     : {}", run.stats.activate_commands);
    println!("  refreshes       : {}", run.stats.refreshes);

    // Verify the device computed the right numbers.
    let expect = reference::mv_f64(&matrix, shape.m, shape.n, &vector);
    let max_err = run
        .output
        .iter()
        .zip(&expect)
        .map(|(g, w)| (*g as f64 - w).abs())
        .fold(0.0f64, f64::max);
    println!("\nnumerics: max |simulated - f64 reference| = {max_err:.3e}");
    assert!(max_err < 0.1, "bf16 accumulation error out of bounds");

    // Effective bandwidth: Newton consumes internal bandwidth, so it beats
    // the external-bus ceiling.
    let bytes = shape.matrix_bytes() as f64;
    println!(
        "effective matrix bandwidth: {:.0} GB/s (external ceiling of this DRAM: {:.0} GB/s)",
        bytes / run.elapsed_ns,
        8.0 * 24.0
    );
    Ok(())
}
