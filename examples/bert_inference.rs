//! End-to-end BERT-large inference on Newton: 24 encoder blocks of
//! attention projections and FFNs (144 fully-connected layers), with
//! layer normalization pipelined per the paper's Sec. III-C and refresh
//! state carried across layers.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example bert_inference
//! ```

use newton_aim::baselines::TitanVModel;
use newton_aim::bench::to_activation_kind;
use newton_aim::core::config::NewtonConfig;
use newton_aim::core::system::{MvProblem, NewtonSystem};
use newton_aim::core::AimError;
use newton_aim::workloads::generator;
use newton_aim::workloads::models::EndToEndModel;

fn main() -> Result<(), AimError> {
    let model = EndToEndModel::bert();
    println!(
        "BERT-large on Newton: {} FC layers, {:.0} M parameters, {:.0} MB of bf16 weights",
        model.layers.len(),
        model.total_macs() as f64 / 1e6,
        model.total_weight_bytes() as f64 / 1e6
    );

    // Generate weights once per unique shape (timing is identical; the
    // DRAM still holds every layer at its own rows).
    let matrices: Vec<_> = model
        .layers
        .iter()
        .map(|l| generator::matrix(l.shape, l.benchmark.seed()))
        .collect();
    let problems: Vec<MvProblem<'_>> = model
        .layers
        .iter()
        .zip(&matrices)
        .map(|(l, w)| MvProblem {
            matrix: w,
            m: l.shape.m,
            n: l.shape.n,
            activation: to_activation_kind(l.activation),
            batch_norm: l.batch_norm,
            output_keep: l.output_keep,
        })
        .collect();

    let cfg = NewtonConfig::paper_default();
    let mut system = NewtonSystem::new(cfg)?;
    let input = generator::vector(model.input_len(), 7);

    let t0 = std::time::Instant::now();
    let run = system.run_model(&problems, &input)?;
    println!(
        "\nsimulated inference: {:.1} us of device time ({} refreshes interposed)",
        run.elapsed_ns / 1e3,
        run.stats.refreshes
    );
    println!("simulator wall time: {:.1} s", t0.elapsed().as_secs_f64());

    let gpu = TitanVModel::new();
    let gpu_ns = gpu.model_time_ns(&model, 1);
    println!(
        "Titan-V-like GPU (calibrated model): {:.1} us -> Newton speedup {:.1}x",
        gpu_ns / 1e3,
        gpu_ns / run.elapsed_ns
    );

    println!(
        "\ncommand totals: {} COMP, {} GWRITE, {} READRES, {} activations over {} row-sets",
        run.stats.compute_commands,
        run.stats.gwrite_commands,
        run.stats.readres_commands,
        run.stats.activate_commands,
        run.stats.row_sets
    );
    println!(
        "final output: {} logits, first 4 = {:?}",
        run.output.len(),
        &run.output[..4]
    );
    Ok(())
}
