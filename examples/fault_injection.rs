//! Transient-error injection and the paper's ECC strategy (Sec. III-E):
//! "only the matrix resides in the DRAM for long periods of time with the
//! possibility of collecting transient errors ... we envision re-loading
//! the matrix, and thereby discarding any errors, from a non-AiM copy
//! every so often for a small bandwidth overhead (e.g., once per 1000
//! inputs)."
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use newton_aim::core::config::NewtonConfig;
use newton_aim::core::controller::NewtonChannel;
use newton_aim::core::layout::MatrixMapping;
use newton_aim::core::lut::ActivationKind;
use newton_aim::core::tiling::{Schedule, ScheduleKind};
use newton_aim::core::AimError;
use newton_aim::workloads::{generator, MvShape};

fn main() -> Result<(), AimError> {
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 1;
    let shape = MvShape::new(64, 512);
    let matrix = generator::matrix(shape, 77);
    let vector = generator::vector(shape.n, 77);

    let mapping = MatrixMapping::new(
        ScheduleKind::InterleavedFullReuse.layout(),
        shape.m,
        shape.n,
        cfg.dram.banks,
        cfg.row_elems(),
        0,
    )?;
    let schedule = Schedule::build(ScheduleKind::InterleavedFullReuse, &mapping);

    let mut ch = NewtonChannel::new(&cfg, ActivationKind::Identity)?;
    ch.load_matrix(&mapping, &matrix)?;
    let clean = ch.run_mv(&mapping, &schedule, &vector, false)?;
    println!("clean run:   output[0..4] = {:?}", &clean.outputs[..4]);

    // A high-order exponent bit flips in the chunk of matrix row 0
    // (bank 0, DRAM row 0) — the kind of retention error ECC would catch
    // in a conventional system but the in-DRAM compute path bypasses.
    ch.channel_mut().storage_mut().flip_bit(0, 0, 14)?;
    let faulty = ch.run_mv(&mapping, &schedule, &vector, false)?;
    println!("faulty run:  output[0..4] = {:?}", &faulty.outputs[..4]);
    let corrupted: Vec<usize> = clean
        .outputs
        .iter()
        .zip(&faulty.outputs)
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(i, _)| i)
        .collect();
    println!("corrupted output rows: {corrupted:?}");
    assert_eq!(
        corrupted,
        vec![0],
        "a matrix-row fault corrupts exactly its output row"
    );

    // The paper's fix: reload the matrix from its clean (ECC-protected,
    // non-AiM) copy. The interleaved layout makes this a plain re-load.
    ch.load_matrix(&mapping, &matrix)?;
    let reloaded = ch.run_mv(&mapping, &schedule, &vector, false)?;
    assert_eq!(reloaded.outputs, clean.outputs);
    println!("after reload: outputs match the clean run again");

    // And the bandwidth overhead of doing that every 1000 inputs:
    let mut sys_cfg = NewtonConfig::paper_default();
    sys_cfg.channels = 24;
    let sys = newton_aim::core::system::NewtonSystem::new(sys_cfg)?;
    let frac = sys.reload_overhead_fraction(4096, 1024, 5_500.0, 1000);
    println!(
        "GNMTs1 reload every 1000 inputs costs {:.3}% of device time (paper: \"small\")",
        frac * 100.0
    );
    Ok(())
}
