//! Observability walkthrough: runs a small GEMV on one Newton channel,
//! writes a Perfetto-loadable Chrome trace and a versioned metrics
//! snapshot, then prints the top-3 cycle sinks from the per-bank
//! residency attribution.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example trace_export
//! ```
//!
//! Then open `target/trace/gemv.trace.json` at <https://ui.perfetto.dev>
//! (or `chrome://tracing`) to see one track per command bus and per bank.

use std::fs;

use newton_aim::core::config::NewtonConfig;
use newton_aim::core::controller::NewtonChannel;
use newton_aim::core::export::export_chrome_trace;
use newton_aim::core::layout::MatrixMapping;
use newton_aim::core::lut::ActivationKind;
use newton_aim::core::tiling::{Schedule, ScheduleKind};
use newton_aim::trace::{BankClass, MetricsSnapshot, Residency};
use newton_aim::workloads::{generator, MvShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 1;
    let (m, n) = (64, 2048);
    let matrix = generator::matrix(MvShape::new(m, n), 42);
    let vector = generator::vector(n, 42);

    // Run the GEMV with command tracing on.
    let mapping = MatrixMapping::new(
        ScheduleKind::InterleavedFullReuse.layout(),
        m,
        n,
        cfg.dram.banks,
        cfg.row_elems(),
        0,
    )?;
    let schedule = Schedule::build(ScheduleKind::InterleavedFullReuse, &mapping);
    let mut ch = NewtonChannel::new(&cfg, ActivationKind::Identity)?;
    ch.enable_trace();
    ch.load_matrix(&mapping, &matrix)?;
    let run = ch.run_mv(&mapping, &schedule, &vector, false)?;
    let summary = ch.channel().summary(run.end_cycle);
    println!(
        "{m}x{n} GEMV: {} cycles, {} commands traced",
        run.end_cycle - run.start_cycle,
        ch.trace().entries().len()
    );

    let out_dir = std::path::Path::new("target/trace");
    fs::create_dir_all(out_dir)?;

    // 1. Perfetto / chrome://tracing view of the command stream.
    let chrome = export_chrome_trace(ch.trace(), ch.channel().timing(), cfg.dram.banks);
    let trace_path = out_dir.join("gemv.trace.json");
    fs::write(&trace_path, &chrome)?;
    println!(
        "Perfetto trace:   {} ({} bytes)",
        trace_path.display(),
        chrome.len()
    );

    // 2. Versioned metrics snapshot (same schema `reproduce` writes).
    let mut snap = MetricsSnapshot::new("example_gemv");
    snap.count("cycles", run.end_cycle - run.start_cycle)
        .count("commands", ch.trace().entries().len() as u64)
        .scalar("bank_utilization", summary.bank_utilization())
        .scalar(
            "external_bandwidth_bytes_per_ns",
            summary.external_bandwidth(),
        )
        .count("queue_latency_samples", summary.queue_latency.count());
    let snap_path = out_dir.join("example_gemv.json");
    fs::write(&snap_path, snap.render())?;
    println!("metrics snapshot: {}", snap_path.display());

    // 3. Where did the cycles go? Aggregate per-bank residency and rank.
    let mut whole = Residency::default();
    for r in &summary.residency {
        whole.merge(r);
    }
    let mut sinks: Vec<(BankClass, u64)> =
        BankClass::ALL.iter().map(|&c| (c, whole.get(c))).collect();
    sinks.sort_by_key(|&(_, cycles)| std::cmp::Reverse(cycles));
    println!(
        "top cycle sinks (all {} banks, bank-cycles):",
        summary.residency.len()
    );
    for (class, cycles) in sinks.iter().take(3) {
        println!(
            "  {:<12} {:>12} ({:.1}%)",
            class.name(),
            cycles,
            100.0 * *cycles as f64 / whole.total() as f64
        );
    }
    Ok(())
}
