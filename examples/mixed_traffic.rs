//! Mixed AiM / non-AiM traffic (Sec. III-D): "AiM memory can be used as
//! normal memory and can hold non-AiM data ... non-AiM commands can
//! interleave with AiM commands to the same bank", as long as they never
//! share a DRAM row. This example runs a matrix–vector product while the
//! host reads and writes unrelated rows of the *same banks*, and also
//! demonstrates the standalone FR-FCFS controller on conventional
//! traffic.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example mixed_traffic
//! ```

use newton_aim::core::config::NewtonConfig;
use newton_aim::core::controller::{HostRequest, NewtonChannel};
use newton_aim::core::layout::MatrixMapping;
use newton_aim::core::lut::ActivationKind;
use newton_aim::core::tiling::{Schedule, ScheduleKind};
use newton_aim::core::AimError;
use newton_aim::dram::controller::{FrFcfs, PagePolicy, Request};
use newton_aim::dram::{Channel, DramConfig};
use newton_aim::workloads::{generator, MvShape};

fn main() -> Result<(), AimError> {
    // --- Part 1: host traffic interleaved with an AiM run -------------
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 1;
    let shape = MvShape::new(128, 512);
    let matrix = generator::matrix(shape, 3);
    let vector = generator::vector(shape.n, 3);
    let mapping = MatrixMapping::new(
        ScheduleKind::InterleavedFullReuse.layout(),
        shape.m,
        shape.n,
        cfg.dram.banks,
        cfg.row_elems(),
        0,
    )?;
    let schedule = Schedule::build(ScheduleKind::InterleavedFullReuse, &mapping);

    let mut ch = NewtonChannel::new(&cfg, ActivationKind::Identity)?;
    ch.load_matrix(&mapping, &matrix)?;
    // Non-AiM data lives in the same banks, different rows.
    for bank in 0..4 {
        ch.enqueue_host_request(HostRequest {
            bank,
            row: 5000 + bank,
            col: 0,
            write: Some(vec![bank as u8; 32]),
        });
        ch.enqueue_host_request(HostRequest {
            bank,
            row: 5000 + bank,
            col: 0,
            write: None,
        });
    }
    let run = ch.run_mv(&mapping, &schedule, &vector, false)?;
    let responses = ch.take_host_responses();
    println!(
        "AiM run finished in {} cycles with {} host requests interleaved at row-set boundaries",
        run.end_cycle - run.start_cycle,
        responses.len()
    );
    for r in responses.iter().filter(|r| r.request.write.is_none()) {
        assert_eq!(r.data[0] as usize, r.request.bank);
    }
    println!("host read-back data is correct; AiM outputs unaffected");

    // --- Part 2: the standalone FR-FCFS controller --------------------
    let mut channel = Channel::new(DramConfig::hbm2e_like())?;
    let mut mc = FrFcfs::new(PagePolicy::Open);
    // A burst with locality: three rows, interleaved access order.
    let pattern = [(0, 10), (1, 20), (0, 10), (0, 10), (1, 20), (0, 11)];
    for (i, (bank, row)) in pattern.iter().enumerate() {
        mc.enqueue(Request {
            id: i as u64,
            bank: *bank,
            row: *row,
            col: i % 32,
            write: None,
            arrival: 0,
        });
    }
    let done = mc.drain(&mut channel, 0)?;
    println!("\nFR-FCFS drained {} conventional requests:", done.len());
    for c in &done {
        println!(
            "  id {} issued @ {:>4}, data @ {:>4}, {}",
            c.id,
            c.issue_cycle,
            c.data_cycle,
            if c.row_hit {
                "row hit"
            } else {
                "row miss/conflict"
            }
        );
    }
    let s = mc.stats();
    println!(
        "row hits {} / misses {} / conflicts {} (FR-FCFS promotes hits over older conflicts)",
        s.row_hits, s.row_misses, s.row_conflicts
    );
    Ok(())
}
