//! Renders the paper's Fig. 7 as an ASCII Gantt chart: one DRAM row
//! across all banks, under full Newton and under the simple-command
//! expansion (complex commands off), to make the command-bandwidth
//! argument visible.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example command_timeline
//! ```

use newton_aim::core::config::{NewtonConfig, OptLevel};
use newton_aim::core::controller::NewtonChannel;
use newton_aim::core::layout::MatrixMapping;
use newton_aim::core::lut::ActivationKind;
use newton_aim::core::tiling::{Schedule, ScheduleKind};
use newton_aim::core::timeline::render_gantt;
use newton_aim::core::AimError;
use newton_aim::workloads::{generator, MvShape};

fn trace_one_row(cfg: &NewtonConfig) -> Result<String, AimError> {
    let shape = MvShape::new(16, 512);
    let matrix = generator::matrix(shape, 7);
    let vector = generator::vector(shape.n, 7);
    let kind = if cfg.opts.interleaved_reuse {
        ScheduleKind::InterleavedFullReuse
    } else {
        ScheduleKind::NoReuse
    };
    let mapping = MatrixMapping::new(
        kind.layout(),
        shape.m,
        shape.n,
        cfg.dram.banks,
        cfg.row_elems(),
        0,
    )?;
    let schedule = Schedule::build(kind, &mapping);
    let mut ch = NewtonChannel::new(cfg, ActivationKind::Identity)?;
    ch.enable_trace();
    ch.load_matrix(&mapping, &matrix)?;
    ch.run_mv(&mapping, &schedule, &vector, false)?;
    Ok(render_gantt(ch.trace(), ch.channel().timing().t_cmd, 120))
}

fn main() -> Result<(), AimError> {
    let mut full = NewtonConfig::paper_default();
    full.channels = 1;
    println!("Fig. 7 — full Newton (complex, ganged commands):");
    println!("{}", trace_one_row(&full)?);
    println!("legend: W=GWRITE, 0-3=G_ACT cluster, C=COMP, R=READRES, P=PRE_ALL, F=REF\n");

    let mut simple = NewtonConfig::at_level(OptLevel::Gang);
    simple.channels = 1;
    println!("Same row with complex commands OFF (each COMP = broadcast b / read r / mac m):");
    println!("{}", trace_one_row(&simple)?);
    println!(
        "the column-command bus is now 3x busier for the same data — the paper's\n\
         complex-command argument (Sec. III-D) made visible"
    );
    Ok(())
}
