//! DLRM recommendation inference at the edge: small batches, tiny
//! latency budgets — the workload Newton targets. Compares Newton,
//! Ideal Non-PIM and the GPU across batch sizes and shows the refresh
//! window effect the paper highlights for DLRM.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example dlrm_recommendation
//! ```

use newton_aim::baselines::{IdealNonPim, TitanVModel};
use newton_aim::bench::to_activation_kind;
use newton_aim::core::config::NewtonConfig;
use newton_aim::core::system::{MvProblem, NewtonSystem};
use newton_aim::core::AimError;
use newton_aim::workloads::models::EndToEndModel;
use newton_aim::workloads::{generator, Benchmark};

fn main() -> Result<(), AimError> {
    let cfg = NewtonConfig::paper_default();
    let shape = Benchmark::DlrmS1.shape();
    println!(
        "DLRM MLP layer: {shape} ({} KB of weights)",
        shape.matrix_bytes() / 1024
    );

    // Single layer at batch 1: Newton's home turf.
    let matrix = generator::matrix(shape, Benchmark::DlrmS1.seed());
    let vector = generator::vector(shape.n, 1);
    let mut system = NewtonSystem::new(cfg.clone())?;
    let run = system.run_mv(&matrix, shape.m, shape.n, &vector)?;
    println!(
        "Newton: {:.0} ns per inference, {} refreshes (fits inside the refresh window)",
        run.elapsed_ns, run.stats.refreshes
    );

    let ideal = IdealNonPim::new(cfg.dram.clone(), cfg.channels);
    let gpu = TitanVModel::new();
    println!("\nper-inference latency vs batch size:");
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "batch", "Newton", "Ideal non-PIM", "GPU"
    );
    for k in [1usize, 2, 4, 8, 16, 64] {
        let newton_ns = run.elapsed_ns; // Newton cannot exploit batch reuse
        let ideal_ns = ideal
            .per_inference_ns(shape.m, shape.n, k)
            .map_err(newton_aim::core::AimError::from)?;
        let gpu_ns = gpu.per_inference_ns(shape, k);
        println!(
            "{k:>6} {:>11.0} ns {:>11.0} ns {:>11.0} ns",
            newton_ns, ideal_ns, gpu_ns
        );
    }

    // Full six-layer MLP end-to-end: refresh now interposes between
    // layers (the paper's 70x -> 47x effect).
    let model = EndToEndModel::dlrm();
    let matrices: Vec<_> = model
        .layers
        .iter()
        .map(|l| generator::matrix(l.shape, l.benchmark.seed()))
        .collect();
    let problems: Vec<MvProblem<'_>> = model
        .layers
        .iter()
        .zip(&matrices)
        .map(|(l, w)| MvProblem {
            matrix: w,
            m: l.shape.m,
            n: l.shape.n,
            activation: to_activation_kind(l.activation),
            batch_norm: l.batch_norm,
            output_keep: l.output_keep,
        })
        .collect();
    let mut system = NewtonSystem::new(cfg)?;
    let input = generator::vector(model.input_len(), 9);
    let e2e = system.run_model(&problems, &input)?;
    println!(
        "\nend-to-end 6-layer MLP: {:.2} us, {} refreshes interposed",
        e2e.elapsed_ns / 1e3,
        e2e.stats.refreshes
    );
    let ranked = newton_aim::workloads::postprocess::top_k(&e2e.output, 5);
    println!("top-5 recommended items: {ranked:?}");
    Ok(())
}
