//! Integration suite for the serving layer (PR 8): correct accounting
//! under load, typed overload outcomes, resilience under live faults,
//! graceful degradation after retirement, and the AiM-vs-conventional
//! serialization rule.

use newton_core::config::NewtonConfig;
use newton_core::TelemetryConfig;
use newton_dram::faults::CampaignSpec;
use newton_serve::{
    ChaosAction, ChaosEvent, ChaosPlan, ConventionalTraffic, ServeError, Server, TrafficConfig,
};
use newton_workloads::arrivals::ArrivalPattern;
use newton_workloads::{generator, MvShape};

const M: usize = 32;
const N: usize = 256;

fn server(channels: usize, ecc: bool) -> Server {
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = channels;
    cfg.ecc = ecc;
    cfg.telemetry = Some(TelemetryConfig::default());
    let matrix = generator::matrix(MvShape::new(M, N), 11);
    Server::new(cfg, matrix, M, N, 4, 22).expect("server builds")
}

#[test]
fn fault_free_serving_completes_everything() {
    let mut s = server(2, true);
    // Slow arrivals relative to service time: nothing sheds or expires.
    let t = TrafficConfig {
        deadline_ns: 1e9,
        ..TrafficConfig::poisson(0.001, 40, 3)
    };
    let r = s.serve(&t, &ChaosPlan::none()).expect("serves");
    assert_eq!(r.offered, 40);
    assert_eq!(r.completed, 40);
    assert_eq!(r.shed, 0);
    assert_eq!(r.expired, 0);
    assert_eq!(r.sdc, 0, "clean run must match goldens bit-exactly");
    assert_eq!(r.retries, 0);
    assert!(r.p50_ns > 0.0 && r.p99_ns >= r.p50_ns && r.p999_ns >= r.p99_ns);
    assert!(r.max_ns >= r.p999_ns);
    assert!(r.qps > 0.0);
    assert!(r.energy_pj > 0.0, "telemetry on: energy must be attributed");
    assert!(r.joules_per_query > 0.0);
    assert!((r.recovery.capacity_fraction - 1.0).abs() < 1e-12);
    // Request events landed in the telemetry series.
    let tot = r.request_series.totals();
    assert_eq!(tot.arrivals, 40);
    assert_eq!(tot.admissions, 40);
    assert_eq!(tot.sheds, 0);
}

#[test]
fn overload_sheds_explicitly_and_accounts_for_every_query() {
    let mut s = server(2, true);
    // Arrivals far faster than service, tiny queue: shedding is the
    // designed outcome, and the books must still balance.
    let t = TrafficConfig {
        pattern: ArrivalPattern::Poisson { rate_per_us: 50.0 },
        queue_capacity: 4,
        max_batch: 2,
        deadline_ns: 1e9,
        ..TrafficConfig::poisson(50.0, 120, 5)
    };
    let r = s.serve(&t, &ChaosPlan::none()).expect("serves");
    assert!(r.shed > 0, "overload must shed");
    assert_eq!(r.offered, r.completed + r.shed + r.expired);
    assert_eq!(r.admitted, r.completed + r.expired);
    assert_eq!(r.sdc, 0);
    assert!(
        r.errors
            .iter()
            .any(|e| matches!(e, ServeError::Shed { .. })),
        "sheds surface as typed errors"
    );
    assert_eq!(r.request_series.totals().sheds, r.shed);
}

#[test]
fn tight_deadlines_expire_with_typed_errors() {
    let mut s = server(2, true);
    // Deadline far below one batch's service time: queued queries beyond
    // the first dispatches expire rather than run uselessly late.
    let t = TrafficConfig {
        pattern: ArrivalPattern::Bursty {
            base_rate_per_us: 0.01,
            peak_rate_per_us: 40.0,
            period_us: 50.0,
            burst_fraction: 0.3,
        },
        deadline_ns: 2_000.0,
        queue_capacity: 64,
        max_batch: 2,
        ..TrafficConfig::poisson(1.0, 80, 7)
    };
    let r = s.serve(&t, &ChaosPlan::none()).expect("serves");
    assert!(
        r.expired > 0 || r.late_completions > 0,
        "a 2 µs SLO must be missed somewhere: {r:?}"
    );
    assert_eq!(r.offered, r.completed + r.shed + r.expired);
    if r.expired > 0 {
        assert!(r
            .errors
            .iter()
            .any(|e| matches!(e, ServeError::DeadlineExceeded { .. })));
    }
    assert!(r.request_series.totals().deadline_misses >= r.expired + r.late_completions);
}

#[test]
fn transient_faults_retry_scrub_and_never_corrupt() {
    let mut s = server(2, true);
    let spec = CampaignSpec {
        seed: 99,
        single_bit_flips: 24,
        double_bit_words: 6,
        stuck_cells: 0,
        retention: None,
    };
    let t = TrafficConfig {
        deadline_ns: 1e9,
        retry_backoff_cycles: 128,
        ..TrafficConfig::poisson(0.001, 30, 9)
    };
    let r = s
        .serve(&t, &ChaosPlan::faults_after(5, spec))
        .expect("ladder absorbs transient faults");
    assert_eq!(r.completed, 30, "all queries complete despite faults");
    assert_eq!(r.sdc, 0, "ECC on: zero silent corruption");
    assert!(r.injected_faults > 0);
    assert!(
        r.retries > 0 && r.recovery.scrub_rewrites > 0,
        "double-bit words must drive the scrub rung: {r:?}"
    );
    assert!(
        r.recovery.retired_banks.is_empty(),
        "transient faults scrub clean; nothing retires"
    );
    assert_eq!(r.request_series.totals().retries, r.retries);
}

#[test]
fn stuck_cells_retire_banks_and_serving_degrades_gracefully() {
    let mut s = server(2, true);
    let t = TrafficConfig {
        deadline_ns: 1e9,
        retry_backoff_cycles: 128,
        ..TrafficConfig::poisson(0.001, 30, 13)
    };
    let plan = ChaosPlan {
        events: vec![ChaosEvent {
            after_completed: 5,
            action: ChaosAction::StuckWord {
                channel: 0,
                bank: 2,
            },
        }],
    };
    let r = s.serve(&t, &plan).expect("retirement absorbs hard faults");
    assert_eq!(r.completed, 30, "serving continues after retirement");
    assert_eq!(r.sdc, 0, "degraded outputs still match goldens bit-exactly");
    assert!(
        !r.recovery.retired_banks.is_empty(),
        "stuck cells survive scrubs and must retire: {r:?}"
    );
    assert!(r.replans > 0, "retirement must trigger a re-plan");
    assert!(
        r.recovery.capacity_fraction < 1.0,
        "capacity shrinks after retirement"
    );
    // The system itself agrees with the report.
    assert_eq!(
        s.system().retired_banks().len(),
        r.recovery.retired_banks.len()
    );
}

#[test]
fn conventional_traffic_serializes_and_inflates_latency() {
    let base = TrafficConfig {
        deadline_ns: 1e9,
        ..TrafficConfig::poisson(0.002, 30, 17)
    };
    let mut alone = server(2, true);
    let quiet = alone.serve(&base, &ChaosPlan::none()).expect("serves");
    let mut mixed = server(2, true);
    let t = TrafficConfig {
        conventional: Some(ConventionalTraffic {
            interval_ns: 5_000.0,
            burst_cycles: 2_000,
        }),
        ..base
    };
    let busy = mixed.serve(&t, &ChaosPlan::none()).expect("serves");
    assert!(busy.conventional_bursts > 0);
    assert_eq!(busy.completed, 30);
    assert!(
        busy.p99_ns > quiet.p99_ns,
        "serialized conventional bursts must inflate the tail: {} vs {}",
        busy.p99_ns,
        quiet.p99_ns
    );
}

#[test]
fn idle_gaps_accrue_refresh_and_still_serve() {
    let mut s = server(2, true);
    let t = TrafficConfig {
        deadline_ns: 1e9,
        ..TrafficConfig::poisson(0.001, 20, 19)
    };
    let plan = ChaosPlan {
        events: vec![ChaosEvent {
            after_completed: 3,
            action: ChaosAction::IdleGap { cycles: 2_000_000 },
        }],
    };
    let r = s.serve(&t, &plan).expect("serves across the gap");
    assert_eq!(r.completed, 20);
    assert_eq!(r.sdc, 0, "refresh debt after the gap must not corrupt");
}

#[test]
fn reports_are_deterministic_across_runs() {
    let t = TrafficConfig {
        deadline_ns: 1e9,
        ..TrafficConfig::poisson(0.005, 25, 23)
    };
    let spec = CampaignSpec {
        seed: 5,
        single_bit_flips: 8,
        double_bit_words: 2,
        stuck_cells: 0,
        retention: None,
    };
    let plan = ChaosPlan::faults_after(4, spec);
    let mut a = server(2, true);
    let mut b = server(2, true);
    let ra = a.serve(&t, &plan).expect("a");
    let rb = b.serve(&t, &plan).expect("b");
    assert_eq!(ra, rb, "same config, same chaos: byte-identical reports");
}
