//! The open-loop deadline scheduler over a [`NewtonSystem`].
//!
//! One [`Server`] owns a system with a resident weight matrix, a clean
//! host-side copy of that matrix (the scrub-rewrite source), a small set
//! of canonical input vectors, and golden outputs computed once on a
//! pristine twin. [`Server::serve`] then replays an arrival trace
//! against it:
//!
//! 1. **Admission.** Arrivals land in a bounded queue; when it is full
//!    the query is *shed* — counted, surfaced as a typed
//!    [`ServeError::Shed`], never silently dropped.
//! 2. **Batching.** Up to `max_batch` queued queries dispatch back to
//!    back against the resident matrix (the Fig. 11/12 regime: per-query
//!    DRAM time is batch-size-flat, so batching bounds queue wait
//!    rather than amortizing compute).
//! 3. **Deadlines.** Queries whose deadline passes while queued are
//!    expired with [`ServeError::DeadlineExceeded`]; queries that
//!    complete late are counted separately (`late_completions`) — the
//!    SLO report distinguishes "never ran" from "ran late".
//! 4. **Resilience.** Each dispatch runs through
//!    `run_resident_resilient`, so an uncorrectable ECC error escalates
//!    scrub-rewrite → retry → bank retirement (PR 5 ladder). Every extra
//!    attempt costs exponential backoff in simulated time, and a
//!    retirement triggers a *re-plan*: the matrix reloads onto the
//!    surviving banks and serving continues at reduced
//!    [`capacity_fraction`](NewtonSystem::capacity_fraction).
//! 5. **Serialization.** The memory controller serializes AiM and
//!    conventional request streams (the SK hynix AiM scheduling rule):
//!    conventional bursts due since the last batch drain *before* the
//!    next AiM batch may issue, inflating tail latency under mixed
//!    traffic.
//!
//! All scheduling state advances in simulated command-clock cycles via
//! [`NewtonSystem::now`] / [`NewtonSystem::advance_all_to`], so reports
//! are byte-identical across timing engines and thread widths.

use std::collections::VecDeque;

use newton_bf16::Bf16;
use newton_core::config::NewtonConfig;
use newton_core::system::{LoadedMatrix, NewtonSystem, SystemRun};
use newton_core::{AimError, RecoveryReport};
use newton_dram::faults::{self, CampaignSpec};
use newton_trace::sink::{RequestClass, TraceEvent};
use newton_trace::{MetricsSnapshot, TimeSeries, DEFAULT_WINDOW_CYCLES};
use newton_workloads::arrivals::ArrivalPattern;
use newton_workloads::generator;

use crate::chaos::{ChaosAction, ChaosPlan};
use crate::request::{Request, ServeError};

/// Typed-error samples kept in the report (counters stay authoritative;
/// the samples make failures debuggable without unbounded growth).
const ERROR_SAMPLE_CAP: usize = 32;

/// Background conventional-DRAM traffic sharing the channels with AiM
/// work. The controller serializes the two request classes, so each due
/// burst stalls the next AiM batch for `burst_cycles`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConventionalTraffic {
    /// One burst becomes due every `interval_ns` of simulated time.
    pub interval_ns: f64,
    /// Serialized drain cost per burst, in command-clock cycles.
    pub burst_cycles: u64,
}

/// One serving experiment: the arrival process, SLO, and scheduler
/// knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Open-loop arrival pattern.
    pub pattern: ArrivalPattern,
    /// Total queries offered.
    pub requests: usize,
    /// Arrival-trace seed.
    pub seed: u64,
    /// Per-query deadline (SLO), simulated nanoseconds from arrival.
    pub deadline_ns: f64,
    /// Admission-queue bound; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Maximum queries dispatched per batch.
    pub max_batch: usize,
    /// Base backoff per retry attempt, command-clock cycles (doubles per
    /// extra attempt within one query's recovery).
    pub retry_backoff_cycles: u64,
    /// Optional conventional-DRAM traffic serialized against AiM work.
    pub conventional: Option<ConventionalTraffic>,
}

impl TrafficConfig {
    /// A steady-Poisson config with serving defaults: 100 µs deadline,
    /// queue of 64, batches of 8, 256-cycle base backoff, no
    /// conventional traffic.
    #[must_use]
    pub fn poisson(rate_per_us: f64, requests: usize, seed: u64) -> TrafficConfig {
        TrafficConfig {
            pattern: ArrivalPattern::Poisson { rate_per_us },
            requests,
            seed,
            deadline_ns: 100_000.0,
            queue_capacity: 64,
            max_batch: 8,
            retry_backoff_cycles: 256,
            conventional: None,
        }
    }

    fn validate(&self) -> Result<(), String> {
        self.pattern.validate()?;
        if !(self.deadline_ns.is_finite() && self.deadline_ns > 0.0) {
            return Err(format!(
                "deadline_ns must be finite and > 0, got {}",
                self.deadline_ns
            ));
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be >= 1".to_string());
        }
        if self.max_batch == 0 {
            return Err("max_batch must be >= 1".to_string());
        }
        if let Some(c) = self.conventional {
            if !(c.interval_ns.is_finite() && c.interval_ns > 0.0) {
                return Err(format!(
                    "conventional interval_ns must be finite and > 0, got {}",
                    c.interval_ns
                ));
            }
        }
        Ok(())
    }
}

/// Everything a serving run is accountable for. The admission invariant
/// `offered == completed + shed + expired` holds for every successful
/// run (checked in [`Server::serve`]); nothing is dropped off the books.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Queries in the arrival trace.
    pub offered: u64,
    /// Queries accepted into the queue.
    pub admitted: u64,
    /// Queries refused at admission (queue full).
    pub shed: u64,
    /// Queries expired in queue past their deadline (never dispatched).
    pub expired: u64,
    /// Queries that ran to completion.
    pub completed: u64,
    /// Completed queries that finished after their deadline.
    pub late_completions: u64,
    /// Extra full-run attempts spent in the recovery ladder.
    pub retries: u64,
    /// Conventional-DRAM bursts serialized against AiM batches.
    pub conventional_bursts: u64,
    /// Faults injected by the chaos plan.
    pub injected_faults: u64,
    /// Matrix re-plans after bank retirements.
    pub replans: u64,
    /// Dispatches served from the compiled-schedule replay cache
    /// (summed per-channel hits across all completed runs).
    pub schedule_hits: u64,
    /// Dispatches that drained live (cold cache, invalidated entry, or
    /// observer bypass), summed per channel.
    pub schedule_misses: u64,
    /// Compiled entries dropped by weight writes, engine flips, or
    /// re-plans, summed per channel.
    pub schedule_invalidations: u64,
    /// Commands applied via folded replay trains instead of live issue.
    pub replayed_commands: u64,
    /// Output words differing from the pristine golden (silent data
    /// corruption; must be 0 with ECC on).
    pub sdc: u64,
    /// Median completion latency, simulated nanoseconds.
    pub p50_ns: f64,
    /// 99th-percentile completion latency, simulated nanoseconds.
    pub p99_ns: f64,
    /// 99.9th-percentile completion latency, simulated nanoseconds.
    pub p999_ns: f64,
    /// Worst completion latency, simulated nanoseconds.
    pub max_ns: f64,
    /// Completed queries per simulated second.
    pub qps: f64,
    /// Simulated span of the whole run, nanoseconds.
    pub span_ns: f64,
    /// Whole-run DRAM energy (dynamic + refresh) in picojoules, from the
    /// streamed telemetry; 0 when telemetry is disabled.
    pub energy_pj: f64,
    /// `energy_pj` per completed query, in joules.
    pub joules_per_query: f64,
    /// Aggregated recovery ladder outcome (attempts, scrubs, retired
    /// banks, final capacity fraction).
    pub recovery: RecoveryReport,
    /// Per-window request-event series (arrivals, admissions, sheds,
    /// deadline misses, retries) for JSON/Perfetto export.
    pub request_series: TimeSeries,
    /// First [`ERROR_SAMPLE_CAP`] typed errors, in occurrence order.
    pub errors: Vec<ServeError>,
}

impl ServeReport {
    /// Serializes the report into `snap` under `prefix`, including the
    /// nested [`RecoveryReport`], so serving runs are auditable from
    /// snapshot JSON alone.
    pub fn record_into(&self, snap: &mut MetricsSnapshot, prefix: &str) {
        snap.count(&format!("{prefix}/offered"), self.offered)
            .count(&format!("{prefix}/admitted"), self.admitted)
            .count(&format!("{prefix}/shed"), self.shed)
            .count(&format!("{prefix}/expired"), self.expired)
            .count(&format!("{prefix}/completed"), self.completed)
            .count(&format!("{prefix}/late_completions"), self.late_completions)
            .count(&format!("{prefix}/retries"), self.retries)
            .count(
                &format!("{prefix}/conventional_bursts"),
                self.conventional_bursts,
            )
            .count(&format!("{prefix}/injected_faults"), self.injected_faults)
            .count(&format!("{prefix}/replans"), self.replans)
            .count(&format!("{prefix}/schedule_cache/hits"), self.schedule_hits)
            .count(
                &format!("{prefix}/schedule_cache/misses"),
                self.schedule_misses,
            )
            .count(
                &format!("{prefix}/schedule_cache/invalidations"),
                self.schedule_invalidations,
            )
            .count(
                &format!("{prefix}/schedule_cache/replayed_commands"),
                self.replayed_commands,
            )
            .count(&format!("{prefix}/sdc"), self.sdc)
            .scalar(&format!("{prefix}/p50_ns"), self.p50_ns)
            .scalar(&format!("{prefix}/p99_ns"), self.p99_ns)
            .scalar(&format!("{prefix}/p999_ns"), self.p999_ns)
            .scalar(&format!("{prefix}/max_ns"), self.max_ns)
            .scalar(&format!("{prefix}/qps"), self.qps)
            .scalar(&format!("{prefix}/span_ns"), self.span_ns)
            .scalar(&format!("{prefix}/energy_pj"), self.energy_pj)
            .scalar(&format!("{prefix}/joules_per_query"), self.joules_per_query);
        self.recovery
            .record_into(snap, &format!("{prefix}/recovery"));
    }

    /// This report with the schedule-cache counters zeroed — the only
    /// fields allowed to differ between replay-on and replay-off runs
    /// (the determinism suite compares sanitized reports for equality).
    #[must_use]
    pub fn sans_schedule_cache(&self) -> ServeReport {
        ServeReport {
            schedule_hits: 0,
            schedule_misses: 0,
            schedule_invalidations: 0,
            replayed_commands: 0,
            ..self.clone()
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice; 0 for empty.
fn percentile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// An online inference server: a [`NewtonSystem`] with resident weights,
/// the clean weight copy, canonical inputs, and pristine goldens.
#[derive(Debug)]
pub struct Server {
    sys: NewtonSystem,
    matrix: Vec<Bf16>,
    m: usize,
    n: usize,
    loaded: LoadedMatrix,
    inputs: Vec<Vec<Bf16>>,
    goldens: Vec<Vec<u32>>,
}

impl Server {
    /// Builds a server: loads the `m x n` matrix resident, generates
    /// `distinct_inputs` canonical input vectors from `input_seed`, and
    /// computes golden outputs on a pristine twin system (same config,
    /// no faults) so silent corruption is detectable bit-exactly for the
    /// rest of the server's life — including after re-plans, whose
    /// outputs are mapping-invariant.
    ///
    /// # Errors
    ///
    /// Configuration, shape, or capacity errors from system construction
    /// and matrix loading.
    pub fn new(
        config: NewtonConfig,
        matrix: Vec<Bf16>,
        m: usize,
        n: usize,
        distinct_inputs: usize,
        input_seed: u64,
    ) -> Result<Server, AimError> {
        if distinct_inputs == 0 {
            return Err(AimError::InvalidConfig(
                "distinct_inputs must be >= 1".to_string(),
            ));
        }
        let inputs: Vec<Vec<Bf16>> = (0..distinct_inputs)
            .map(|i| generator::vector(n, input_seed.wrapping_add(i as u64)))
            .collect();
        let mut twin = NewtonSystem::new(config.clone())?;
        let twin_loaded = twin.load_matrix(&matrix, m, n)?;
        let mut goldens = Vec::with_capacity(distinct_inputs);
        for v in &inputs {
            let run = twin.run_resident(&twin_loaded, v)?;
            goldens.push(run.output.iter().map(|x| x.to_bits()).collect());
        }
        let mut sys = NewtonSystem::new(config)?;
        let loaded = sys.load_matrix(&matrix, m, n)?;
        Ok(Server {
            sys,
            matrix,
            m,
            n,
            loaded,
            inputs,
            goldens,
        })
    }

    /// The underlying system (for inspection: clocks, retired banks,
    /// capacity).
    #[must_use]
    pub fn system(&self) -> &NewtonSystem {
        &self.sys
    }

    /// Mutable access to the underlying system (tests and harnesses:
    /// timing-engine selection, out-of-band fault injection).
    pub fn system_mut(&mut self) -> &mut NewtonSystem {
        &mut self.sys
    }

    /// Injects a fault campaign into every channel at the current
    /// simulated time (chaos path; also usable out of band).
    ///
    /// # Errors
    ///
    /// Fault-plane errors from [`faults::inject`].
    pub fn inject_faults(&mut self, spec: &CampaignSpec) -> Result<u64, AimError> {
        let mut injected = 0u64;
        for ch in 0..self.sys.config().channels {
            let per = spec.for_channel(ch);
            let now = self.sys.channels()[ch].now();
            let faults = faults::inject(self.sys.channels_mut()[ch].channel_mut(), now, &per)?;
            injected += faults.len() as u64;
        }
        Ok(injected)
    }

    /// Plants a hard double-bit fault in `(channel, bank)`: bits 0 and 1
    /// of the first allocated row are stuck at the complement of their
    /// stored values, so the word is uncorrectable under SECDED and
    /// survives every scrub-rewrite — forcing the retirement rung.
    /// Returns the number of cells planted (always 2).
    ///
    /// # Errors
    ///
    /// [`AimError::InvalidConfig`] when the bank holds no allocated rows;
    /// storage errors for out-of-range targets.
    pub fn plant_stuck_word(&mut self, channel: usize, bank: usize) -> Result<u64, AimError> {
        if channel >= self.sys.config().channels {
            return Err(AimError::InvalidConfig(format!(
                "stuck-word channel {channel} out of range"
            )));
        }
        let storage = self.sys.channels_mut()[channel].channel_mut().storage_mut();
        let row = storage
            .allocated_row_indices()
            .into_iter()
            .find_map(|(b, r)| (b == bank).then_some(r))
            .ok_or_else(|| {
                AimError::InvalidConfig(format!(
                    "stuck-word target bank {bank} on channel {channel} has no allocated rows"
                ))
            })?;
        let byte0 = storage.row(bank, row)?[0];
        storage.set_stuck(bank, row, 0, byte0 & 0x01 == 0)?;
        storage.set_stuck(bank, row, 1, byte0 & 0x02 == 0)?;
        Ok(2)
    }

    /// Replays an arrival trace through the deadline scheduler and
    /// returns the full accounting. See the module docs for the loop's
    /// five obligations.
    ///
    /// # Errors
    ///
    /// [`ServeError::Fatal`] when configuration is malformed or the
    /// resilience ladder is exhausted mid-run. Sheds and deadline misses
    /// are *not* errors; they are reported outcomes.
    ///
    /// # Panics
    ///
    /// If the admission accounting invariant
    /// `offered == completed + shed + expired` is violated (a scheduler
    /// logic error, not an input condition).
    pub fn serve(
        &mut self,
        traffic: &TrafficConfig,
        chaos: &ChaosPlan,
    ) -> Result<ServeReport, ServeError> {
        traffic
            .validate()
            .map_err(|e| ServeError::Fatal(AimError::InvalidConfig(e)))?;
        let cfg = self.sys.config();
        let tck = cfg.dram.timing.tck_ns;
        let window = cfg
            .telemetry
            .as_ref()
            .map_or(DEFAULT_WINDOW_CYCLES, |t| t.window_cycles);
        let mut series = TimeSeries::new(window, cfg.dram.banks);

        let arrivals_ns = traffic
            .pattern
            .arrival_times_ns(traffic.seed, traffic.requests)
            .map_err(|e| ServeError::Fatal(AimError::InvalidConfig(e)))?;
        let origin = self.sys.now();
        let arr: Vec<u64> = arrivals_ns
            .iter()
            .map(|&ns| origin + (ns as f64 / tck).ceil() as u64)
            .collect();
        let deadline_cycles = ((traffic.deadline_ns / tck).ceil() as u64).max(1);
        let conv = traffic.conventional.map(|c| {
            let interval = ((c.interval_ns / tck).ceil() as u64).max(1);
            (interval, c.burst_cycles)
        });
        let mut next_conv_due = conv.map(|(interval, _)| origin + interval);

        let mut queue: VecDeque<Request> = VecDeque::new();
        let mut next = 0usize;
        let mut fired = vec![false; chaos.events.len()];
        let mut errors: Vec<ServeError> = Vec::new();
        let mut latencies: Vec<u64> = Vec::with_capacity(traffic.requests);
        let mut last_run: Option<SystemRun> = None;

        let (mut shed, mut expired, mut completed, mut late, mut retries) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        let (mut attempts_total, mut scrub_rewrites, mut replans) = (0u64, 0u64, 0u64);
        let mut retired: Vec<(usize, usize)> = Vec::new();
        let (mut conventional_bursts, mut injected_faults, mut sdc) = (0u64, 0u64, 0u64);
        let (mut sched_hits, mut sched_misses, mut sched_invalidations, mut replayed_cmds) =
            (0u64, 0u64, 0u64, 0u64);

        loop {
            let now = self.sys.now();

            // 1. Admission: ingest every arrival due by `now`.
            while next < arr.len() && arr[next] <= now {
                let id = next as u64;
                let cycle = arr[next];
                series.record(&TraceEvent::Request {
                    cycle,
                    class: RequestClass::Arrival,
                });
                if queue.len() >= traffic.queue_capacity {
                    shed += 1;
                    series.record(&TraceEvent::Request {
                        cycle,
                        class: RequestClass::Shed,
                    });
                    if errors.len() < ERROR_SAMPLE_CAP {
                        errors.push(ServeError::Shed {
                            id,
                            queue_depth: queue.len(),
                        });
                    }
                } else {
                    series.record(&TraceEvent::Request {
                        cycle,
                        class: RequestClass::Admission,
                    });
                    queue.push_back(Request {
                        id,
                        arrival_cycle: cycle,
                        deadline_cycle: cycle + deadline_cycles,
                        input: (id as usize) % self.inputs.len(),
                    });
                }
                next += 1;
            }

            // 2. Idle: nothing queued — advance to the next arrival so
            // refresh obligations accrue across the gap, or finish.
            if queue.is_empty() {
                if next >= arr.len() {
                    break;
                }
                self.sys.advance_all_to(arr[next]);
                continue;
            }

            // 3. Chaos actions whose completed-count threshold crossed.
            for (i, ev) in chaos.events.iter().enumerate() {
                if !fired[i] && completed >= ev.after_completed {
                    fired[i] = true;
                    match ev.action {
                        ChaosAction::Faults(spec) => {
                            injected_faults +=
                                self.inject_faults(&spec).map_err(ServeError::Fatal)?;
                        }
                        ChaosAction::StuckWord { channel, bank } => {
                            injected_faults += self
                                .plant_stuck_word(channel, bank)
                                .map_err(ServeError::Fatal)?;
                        }
                        ChaosAction::IdleGap { cycles } => {
                            let cur = self.sys.now();
                            self.sys.advance_all_to(cur + cycles);
                        }
                    }
                }
            }

            // 4. AiM-vs-conventional serialization: drain every due
            // conventional burst before the next AiM batch may issue.
            if let (Some((interval, burst_cycles)), Some(due)) = (conv, next_conv_due.as_mut()) {
                while *due <= self.sys.now() {
                    let cur = self.sys.now();
                    self.sys.advance_all_to(cur + burst_cycles);
                    conventional_bursts += 1;
                    *due += interval;
                }
            }

            // 5. Expire queued queries already past deadline (FIFO queue
            // + uniform deadline ⇒ expirees sit at the front).
            let now = self.sys.now();
            while let Some(r) = queue.front() {
                if r.deadline_cycle >= now {
                    break;
                }
                let r = queue.pop_front().expect("front checked");
                expired += 1;
                series.record(&TraceEvent::Request {
                    cycle: now,
                    class: RequestClass::DeadlineMiss,
                });
                if errors.len() < ERROR_SAMPLE_CAP {
                    errors.push(ServeError::DeadlineExceeded {
                        id: r.id,
                        deadline_cycle: r.deadline_cycle,
                        lateness_cycles: now - r.deadline_cycle,
                    });
                }
            }

            // 6. Dispatch one batch through the resilience ladder.
            let batch_len = queue.len().min(traffic.max_batch);
            for _ in 0..batch_len {
                let r = queue.pop_front().expect("batch_len <= queue.len()");
                let input = &self.inputs[r.input];
                let (run, rep) = self
                    .sys
                    .run_resident_resilient(&self.loaded, &self.matrix, input)
                    .map_err(ServeError::Fatal)?;
                attempts_total += rep.attempts;
                scrub_rewrites += rep.scrub_rewrites;
                sched_hits += run.stats.schedule_hits;
                sched_misses += run.stats.schedule_misses;
                sched_invalidations += run.stats.schedule_invalidations;
                replayed_cmds += run.stats.replayed_commands;
                if rep.attempts > 1 {
                    let extra = rep.attempts - 1;
                    retries += extra;
                    let cycle = self.sys.now();
                    for _ in 0..extra {
                        series.record(&TraceEvent::Request {
                            cycle,
                            class: RequestClass::Retry,
                        });
                    }
                    // Exponential backoff: base · (2^extra − 1) cycles of
                    // simulated cool-down, shift-capped against overflow.
                    let shift = extra.min(16) as u32;
                    let backoff = traffic
                        .retry_backoff_cycles
                        .saturating_mul((1u64 << shift) - 1);
                    self.sys.advance_all_to(cycle + backoff);
                }
                if !rep.retired_banks.is_empty() {
                    // Graceful degradation: the resident mapping is stale
                    // after retirement — re-plan onto surviving banks and
                    // keep serving at reduced capacity.
                    retired.extend(rep.retired_banks.iter().copied());
                    self.loaded = self
                        .sys
                        .load_matrix(&self.matrix, self.m, self.n)
                        .map_err(ServeError::Fatal)?;
                    replans += 1;
                }
                let done = self.sys.now();
                latencies.push(done - r.arrival_cycle);
                if done > r.deadline_cycle {
                    late += 1;
                    series.record(&TraceEvent::Request {
                        cycle: done,
                        class: RequestClass::DeadlineMiss,
                    });
                }
                sdc += run
                    .output
                    .iter()
                    .zip(&self.goldens[r.input])
                    .filter(|(v, &g)| v.to_bits() != g)
                    .count() as u64;
                completed += 1;
                last_run = Some(run);
            }
        }

        let offered = arr.len() as u64;
        assert_eq!(
            offered,
            completed + shed + expired,
            "admission accounting must balance"
        );
        let span_cycles = self.sys.now() - origin;
        let span_ns = span_cycles as f64 * tck;
        latencies.sort_unstable();
        let to_ns = |c: u64| c as f64 * tck;
        let energy_pj = last_run
            .as_ref()
            .and_then(SystemRun::merged_telemetry)
            .map_or(0.0, |t| {
                let tot = t.totals();
                (tot.energy_milli_pj + tot.refresh_milli_pj) as f64 / 1000.0
            });
        let qps = if span_ns > 0.0 {
            completed as f64 / (span_ns * 1e-9)
        } else {
            0.0
        };
        let joules_per_query = if completed > 0 {
            energy_pj * 1e-12 / completed as f64
        } else {
            0.0
        };
        Ok(ServeReport {
            offered,
            admitted: offered - shed,
            shed,
            expired,
            completed,
            late_completions: late,
            retries,
            conventional_bursts,
            injected_faults,
            replans,
            schedule_hits: sched_hits,
            schedule_misses: sched_misses,
            schedule_invalidations: sched_invalidations,
            replayed_commands: replayed_cmds,
            sdc,
            p50_ns: to_ns(percentile_sorted(&latencies, 0.50)),
            p99_ns: to_ns(percentile_sorted(&latencies, 0.99)),
            p999_ns: to_ns(percentile_sorted(&latencies, 0.999)),
            max_ns: to_ns(latencies.last().copied().unwrap_or(0)),
            qps,
            span_ns,
            energy_pj,
            joules_per_query,
            recovery: RecoveryReport {
                attempts: attempts_total,
                scrub_rewrites,
                retired_banks: retired,
                capacity_fraction: self.sys.capacity_fraction(),
            },
            request_series: series,
            errors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        assert_eq!(percentile_sorted(&[], 0.5), 0);
        let one = [42u64];
        assert_eq!(percentile_sorted(&one, 0.5), 42);
        assert_eq!(percentile_sorted(&one, 0.999), 42);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_sorted(&v, 0.50), 50);
        assert_eq!(percentile_sorted(&v, 0.99), 99);
        assert_eq!(percentile_sorted(&v, 0.999), 100);
    }

    #[test]
    fn traffic_validation_rejects_nonsense() {
        let mut t = TrafficConfig::poisson(1.0, 10, 1);
        assert!(t.validate().is_ok());
        t.deadline_ns = 0.0;
        assert!(t.validate().is_err());
        t.deadline_ns = 1000.0;
        t.queue_capacity = 0;
        assert!(t.validate().is_err());
        t.queue_capacity = 4;
        t.max_batch = 0;
        assert!(t.validate().is_err());
        t.max_batch = 2;
        t.conventional = Some(ConventionalTraffic {
            interval_ns: f64::NAN,
            burst_cycles: 10,
        });
        assert!(t.validate().is_err());
    }
}
