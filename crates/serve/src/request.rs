//! Request lifecycle vocabulary: queries, deadlines, and the typed
//! errors a resilient server is allowed to answer with.
//!
//! The admission-control contract is that every offered query ends in
//! exactly one of four accounted outcomes — completed, shed at
//! admission, expired in queue, or lost to a fatal substrate error —
//! and the first three are *normal operation* under overload, reported
//! with typed errors rather than silently dropped.

use newton_core::AimError;

/// One inference query in flight: admitted at `arrival_cycle`, due by
/// `deadline_cycle`, carrying the index of its canonical input vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Monotonic query id (trace order).
    pub id: u64,
    /// Simulated cycle the query entered the admission queue.
    pub arrival_cycle: u64,
    /// Simulated cycle after which completing the query no longer meets
    /// its SLO.
    pub deadline_cycle: u64,
    /// Index into the server's canonical input set.
    pub input: usize,
}

/// Typed serving errors. Deadline misses and load shedding are expected
/// overload outcomes; `Fatal` means the resilience ladder itself was
/// exhausted (the run cannot continue).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The query sat in the admission queue past its deadline and was
    /// expired before dispatch.
    DeadlineExceeded {
        /// Query id.
        id: u64,
        /// The missed deadline, in simulated cycles.
        deadline_cycle: u64,
        /// How late the scheduler noticed, in cycles past the deadline.
        lateness_cycles: u64,
    },
    /// The admission queue was full when the query arrived; admission
    /// control shed it explicitly.
    Shed {
        /// Query id.
        id: u64,
        /// Queue depth at the shed decision (== configured capacity).
        queue_depth: usize,
    },
    /// The substrate failed in a way the scrub → retry → retirement
    /// ladder could not absorb; serving cannot continue.
    Fatal(AimError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::DeadlineExceeded {
                id,
                deadline_cycle,
                lateness_cycles,
            } => write!(
                f,
                "query {id} expired in queue: deadline cycle {deadline_cycle} \
                 missed by {lateness_cycles} cycles"
            ),
            ServeError::Shed { id, queue_depth } => write!(
                f,
                "query {id} shed at admission: queue full at depth {queue_depth}"
            ),
            ServeError::Fatal(e) => write!(f, "fatal substrate error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Fatal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AimError> for ServeError {
    fn from(e: AimError) -> ServeError {
        ServeError::Fatal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_accounting() {
        let d = ServeError::DeadlineExceeded {
            id: 7,
            deadline_cycle: 100,
            lateness_cycles: 12,
        };
        assert!(d.to_string().contains("query 7"));
        assert!(d.to_string().contains("12 cycles"));
        let s = ServeError::Shed {
            id: 9,
            queue_depth: 64,
        };
        assert!(s.to_string().contains("depth 64"));
        let f = ServeError::Fatal(AimError::InvalidConfig("x".into()));
        assert!(std::error::Error::source(&f).is_some());
        assert!(std::error::Error::source(&s).is_none());
    }
}
