//! Deterministic chaos schedules for serving runs.
//!
//! A chaos plan is a list of actions fired once each when the server's
//! *completed-query* count crosses the action's threshold. Triggering on
//! completion counts (not wall cycles) makes the schedule identical
//! under both timing engines and every thread width — the whole serving
//! path stays inside the repo's bit-exactness contract even while
//! faults land mid-traffic.
//!
//! Two action kinds cover the campaign axes of the ISSUE:
//!
//! * [`ChaosAction::Faults`] — a [`CampaignSpec`] injected into every
//!   channel (seed offset per channel via `for_channel`), against the
//!   *live* resident matrix. Transient flips exercise in-line SECDED
//!   correction and the scrub-rewrite rung; stuck cells survive rewrites
//!   and force bank retirement, which the scheduler must absorb by
//!   re-planning.
//! * [`ChaosAction::IdleGap`] — a forced idle window. Refresh
//!   obligations accrue across the gap (one per elapsed tREFI), so the
//!   next batch collides with a refresh burst — the tREFI-collision case
//!   of the serving SLO story.

use newton_dram::faults::CampaignSpec;

/// One chaos action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosAction {
    /// Inject this campaign into every channel of the live system.
    Faults(CampaignSpec),
    /// Plant a guaranteed *hard* double-bit fault: two cells of the first
    /// allocated row's first ECC word in `(channel, bank)` are stuck at
    /// the complement of their stored data. SECDED detects but cannot
    /// correct it, and scrub-rewrites cannot clear it — the deterministic
    /// trigger for the bank-retirement rung (randomly placed
    /// [`ChaosAction::Faults`] stuck cells usually land one-per-word,
    /// which in-line correction absorbs silently).
    StuckWord {
        /// Target channel.
        channel: usize,
        /// Target bank within the channel.
        bank: usize,
    },
    /// Advance simulated time by this many command-clock cycles with no
    /// traffic, accruing refresh debt that collides with the next batch.
    IdleGap {
        /// Gap width in command-clock cycles.
        cycles: u64,
    },
}

/// A chaos action armed to fire once the completed-query count reaches
/// `after_completed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosEvent {
    /// Completed-query threshold (fires before dispatching the batch
    /// that follows the threshold crossing).
    pub after_completed: u64,
    /// What to do.
    pub action: ChaosAction,
}

/// An ordered chaos schedule; each event fires exactly once.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosPlan {
    /// Events, fired in list order as their thresholds are crossed.
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// The empty plan (fault-free serving).
    #[must_use]
    pub fn none() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// A plan with a single fault campaign fired after `after_completed`
    /// queries.
    #[must_use]
    pub fn faults_after(after_completed: u64, spec: CampaignSpec) -> ChaosPlan {
        ChaosPlan {
            events: vec![ChaosEvent {
                after_completed,
                action: ChaosAction::Faults(spec),
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_build_and_compare() {
        assert!(ChaosPlan::none().events.is_empty());
        let spec = CampaignSpec {
            seed: 1,
            single_bit_flips: 2,
            double_bit_words: 0,
            stuck_cells: 0,
            retention: None,
        };
        let p = ChaosPlan::faults_after(5, spec);
        assert_eq!(p.events.len(), 1);
        assert_eq!(p.events[0].after_completed, 5);
        assert_eq!(p.events[0].action, ChaosAction::Faults(spec));
    }
}
