//! Online inference serving for the Newton AiM reproduction.
//!
//! The paper's headline claim is *interactive* ML inference served from
//! memory (Sec. I), yet a batch harness never has to answer the serving
//! questions: what happens when queries arrive faster than the array
//! drains, when a refresh window lands mid-batch, or when a bank starts
//! throwing uncorrectable ECC errors under live traffic? This crate is
//! the open-loop serving layer that answers them, with one headline
//! property: **stay correct and within SLO while things go wrong.**
//!
//! * [`request`] — the request lifecycle vocabulary: [`Request`],
//!   typed [`ServeError`]s (deadline misses and load shedding are
//!   reportable outcomes, never silent drops).
//! * [`chaos`] — deterministic chaos schedules: fault campaigns
//!   ([`newton_dram::faults`]) and forced idle gaps (tREFI collisions)
//!   injected *between batches of live traffic*, triggered by completed
//!   query counts so every timing engine and thread width sees the same
//!   schedule.
//! * [`server`] — the scheduler itself: open-loop arrivals
//!   ([`newton_workloads::arrivals`]) feed an admission queue with
//!   explicit load-shedding; admitted queries pack into Newton batches
//!   against resident weights (`run_resident_resilient`, so
//!   uncorrectable errors escalate through the PR 5
//!   scrub → retry → bank-retirement ladder with exponential backoff);
//!   after a retirement the scheduler re-plans the resident matrix onto
//!   the surviving banks and keeps serving at reduced
//!   `capacity_fraction` instead of failing the run.
//!
//! Everything is simulated-time deterministic: the same configuration
//! produces byte-identical [`ServeReport`]s at any `NEWTON_THREADS`
//! width and under both timing engines (Reference and EventSkipping),
//! which the bench determinism suite pins.
//!
//! [`newton_dram::faults`]: https://docs.rs/newton-dram

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod chaos;
pub mod request;
pub mod server;

pub use chaos::{ChaosAction, ChaosEvent, ChaosPlan};
pub use request::{Request, ServeError};
pub use server::{ConventionalTraffic, ServeReport, Server, TrafficConfig};
