//! Cross-layer determinism suite (PR 4): N-thread execution must be
//! bit-exact against the serial reference at every observable surface —
//! outputs, cycle counts, AiM stats, per-channel DRAM summaries, command
//! traces, and rendered snapshot JSON — including across random
//! interleavings of storage writes and COMPs.
//!
//! Every system here pins its pool width with [`ParallelPolicy::exact`],
//! which ignores `NEWTON_THREADS`, so the suite passes identically under
//! `NEWTON_THREADS=1` (the CI serial leg) and the default environment.

use newton_bf16::Bf16;
use newton_core::config::NewtonConfig;
use newton_core::parallel::{env_threads, ParallelPolicy, THREADS_ENV};
use newton_core::system::{LoadedMatrix, NewtonSystem, SystemRun};
use newton_core::{RecoveryReport, TelemetryConfig};
use newton_dram::faults::{self, CampaignSpec, InjectedFault};
use newton_dram::TimingEngine;
use newton_model::power::ActivityCounts;
use newton_trace::{EnergyModel, MetricsSnapshot};
use newton_workloads::{generator, Benchmark, MvShape};
use proptest::prelude::*;

/// An 8-channel system with the worker-pool width pinned to `threads`.
fn system(threads: usize) -> NewtonSystem {
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 8;
    cfg.parallel = ParallelPolicy::exact(threads);
    NewtonSystem::new(cfg).expect("system")
}

/// Everything observable about one traced run, rendered to comparable
/// form: the run itself, every channel's command trace, and a snapshot
/// document built from the run's metrics.
fn observe(run: &SystemRun, traces: Vec<String>) -> (Vec<u32>, u64, u64, String, Vec<String>) {
    let bits: Vec<u32> = run.output.iter().map(|v| v.to_bits()).collect();
    let mut snap = MetricsSnapshot::new("determinism_probe");
    snap.count("cycles", run.cycles)
        .count("gwrites", run.stats.gwrite_commands)
        .count("comps", run.stats.compute_commands)
        .count("readres", run.stats.readres_commands)
        .count("activates", run.stats.activate_commands)
        .count("row_sets", run.stats.row_sets)
        .count("refreshes", run.stats.refreshes)
        .scalar("elapsed_ns", run.elapsed_ns);
    for (i, s) in run.channel_summaries.iter().enumerate() {
        snap.count(&format!("ch{i}/commands"), s.commands);
    }
    (
        bits,
        run.cycles,
        run.stats.compute_commands,
        snap.render(),
        traces,
    )
}

/// Runs one Table II layer (DLRM s1, the smallest paper shape) with
/// tracing on and returns the full observation.
fn traced_layer_run(threads: usize) -> (Vec<u32>, u64, u64, String, Vec<String>) {
    let b = Benchmark::DlrmS1;
    let shape = b.shape();
    let matrix = generator::matrix(shape, b.seed());
    let vector = generator::vector(shape.n, b.seed());
    let mut sys = system(threads);
    for ch in sys.channels_mut() {
        ch.enable_trace();
    }
    let run = sys
        .run_mv(&matrix, shape.m, shape.n, &vector)
        .expect("layer run");
    let traces: Vec<String> = sys
        .channels_mut()
        .iter()
        .map(|ch| ch.trace().render())
        .collect();
    observe(&run, traces)
}

#[test]
fn table_ii_layer_is_bit_exact_across_thread_counts() {
    let serial = traced_layer_run(1);
    assert!(!serial.0.is_empty());
    assert_eq!(serial.4.len(), 8, "one trace per channel");
    for threads in [2, 8] {
        let par = traced_layer_run(threads);
        assert_eq!(par.0, serial.0, "output bits, threads={threads}");
        assert_eq!(par.1, serial.1, "cycles, threads={threads}");
        assert_eq!(par.2, serial.2, "COMP count, threads={threads}");
        assert_eq!(par.3, serial.3, "snapshot JSON, threads={threads}");
        assert_eq!(par.4, serial.4, "command traces, threads={threads}");
    }
}

#[test]
fn idle_channels_stay_bit_exact_across_thread_counts() {
    // Fewer matrix rows than channels: the trailing channels get no
    // mapping, spawn no work, and must still appear in the summaries at
    // the common end cycle.
    let (m, n) = (3, 64);
    let matrix = generator::matrix(MvShape::new(m, n), 11);
    let vector = generator::vector(n, 11);
    let run_with = |threads: usize| {
        let mut sys = system(threads);
        let run = sys.run_mv(&matrix, m, n, &vector).expect("idle run");
        assert_eq!(run.channel_summaries.len(), 8);
        assert_eq!(run.output.len(), m);
        run
    };
    let serial = run_with(1);
    for threads in [2, 8] {
        let par = run_with(threads);
        let a: Vec<u32> = serial.output.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = par.output.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "threads={threads}");
        assert_eq!(serial.cycles, par.cycles, "threads={threads}");
        assert_eq!(serial.stats, par.stats, "threads={threads}");
        assert_eq!(
            serial.channel_summaries, par.channel_summaries,
            "threads={threads}"
        );
    }
}

/// `NEWTON_THREADS` parsing and precedence, in one test (env mutation is
/// process-global, so it is not spread across parallel test threads).
#[test]
fn newton_threads_env_controls_default_policy_only() {
    let host = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let old = std::env::var(THREADS_ENV).ok();
    std::env::set_var(THREADS_ENV, "3");
    assert_eq!(env_threads(), Some(3));
    // Environment requests are capped at the host's cores; only exact()
    // may oversubscribe.
    assert_eq!(ParallelPolicy::default().threads(), 3.min(host));
    // exact() pins the width regardless of the environment or the host.
    assert_eq!(ParallelPolicy::exact(2).threads(), 2);
    assert_eq!(ParallelPolicy::exact(host * 4).threads(), host * 4);
    std::env::set_var(THREADS_ENV, "1");
    assert_eq!(env_threads(), Some(1));
    assert_eq!(ParallelPolicy::default().threads(), 1);
    // Unparseable or zero values fall back to auto-detection.
    std::env::set_var(THREADS_ENV, "0");
    assert_eq!(env_threads(), None);
    std::env::set_var(THREADS_ENV, "lots");
    assert_eq!(env_threads(), None);
    match old {
        Some(v) => std::env::set_var(THREADS_ENV, v),
        None => std::env::remove_var(THREADS_ENV),
    }
}

/// An 8-channel system with streaming telemetry enabled and the pool
/// width pinned to `threads`.
fn telemetry_system(threads: usize) -> NewtonSystem {
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 8;
    cfg.parallel = ParallelPolicy::exact(threads);
    cfg.telemetry = Some(TelemetryConfig::default());
    NewtonSystem::new(cfg).expect("system")
}

/// Everything simulation-deterministic about one telemetry-enabled run:
/// the merged time series (windows, counts, energy), its rendered JSON
/// export, and the host-phase digest (phase names and call counts; wall
/// nanoseconds are host-dependent and excluded by design).
fn telemetry_observation(threads: usize) -> (newton_trace::TimeSeries, String, u64, u64, String) {
    let b = Benchmark::DlrmS1;
    let shape = b.shape();
    let matrix = generator::matrix(shape, b.seed());
    let vector = generator::vector(shape.n, b.seed());
    let mut sys = telemetry_system(threads);
    let run = sys
        .run_mv(&matrix, shape.m, shape.n, &vector)
        .expect("telemetry run");
    let merged = run.merged_telemetry().expect("telemetry enabled");
    let model = EnergyModel::new();
    let json = merged
        .to_json(run.channel_summaries[0].tck_ns, &model)
        .render();
    let totals = merged.totals();
    let digest = sys.host_phases().digest();
    (
        merged,
        json,
        totals.energy_milli_pj,
        totals.refresh_milli_pj,
        digest,
    )
}

#[test]
fn telemetry_is_bit_exact_across_thread_counts() {
    let serial = telemetry_observation(1);
    assert!(!serial.0.windows().is_empty(), "series must have windows");
    assert!(serial.2 > 0, "a COMP workload must attribute energy");
    for threads in [2, 8] {
        let par = telemetry_observation(threads);
        assert_eq!(par.0, serial.0, "merged time series, threads={threads}");
        assert_eq!(par.1, serial.1, "telemetry JSON, threads={threads}");
        assert_eq!(par.2, serial.2, "energy totals, threads={threads}");
        assert_eq!(par.3, serial.3, "refresh energy, threads={threads}");
        assert_eq!(par.4, serial.4, "host-phase digest, threads={threads}");
    }
}

/// Everything observable about one fault campaign: the concrete fault
/// list, output bits, stats, recovery report, and per-channel
/// (corrected, uncorrectable) ECC counters.
type CampaignObservation = (
    Vec<InjectedFault>,
    Vec<u32>,
    newton_core::controller::AimStats,
    RecoveryReport,
    Vec<(u64, u64)>,
);

/// A full fault-injection campaign — load, deterministic injection from
/// a seeded [`CampaignSpec`], ECC-resilient run — observed end to end.
fn campaign_run(threads: usize, seed: u64) -> CampaignObservation {
    let (m, n) = (32, 1024);
    let matrix = generator::matrix(MvShape::new(m, n), 31);
    let vector = generator::vector(n, 31);
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 8;
    cfg.ecc = true;
    cfg.parallel = ParallelPolicy::exact(threads);
    let mut sys = NewtonSystem::new(cfg).expect("system");
    let loaded = sys.load_matrix(&matrix, m, n).expect("load");

    let spec = CampaignSpec {
        seed,
        single_bit_flips: 5,
        double_bit_words: 1,
        stuck_cells: 0,
        retention: None,
    };
    let mut faults = Vec::new();
    for ch in 0..8 {
        let per_channel = spec.for_channel(ch);
        let now = sys.channels()[ch].now();
        faults.extend(
            faults::inject(sys.channels_mut()[ch].channel_mut(), now, &per_channel)
                .expect("inject"),
        );
    }

    let (run, report) = sys
        .run_resident_resilient(&loaded, &matrix, &vector)
        .expect("resilient run");
    let ecc: Vec<(u64, u64)> = sys
        .channels()
        .iter()
        .map(|c| {
            let s = c.channel().stats();
            (s.ecc_corrected, s.ecc_uncorrectable)
        })
        .collect();
    let bits = run.output.iter().map(|v| v.to_bits()).collect();
    (faults, bits, run.stats, report, ecc)
}

#[test]
fn fault_campaigns_are_bit_exact_across_thread_counts() {
    // Same seed => byte-identical injected faults, corrected/uncorrectable
    // counters, recovery reports and output bits at 1, 2 and 8 workers.
    let serial = campaign_run(1, 0xFA17);
    assert!(!serial.0.is_empty(), "campaign must inject something");
    assert!(
        serial.4.iter().map(|(c, _)| c).sum::<u64>() > 0,
        "ECC must correct the injected single-bit faults"
    );
    for threads in [2, 8] {
        let par = campaign_run(threads, 0xFA17);
        assert_eq!(par.0, serial.0, "fault list, threads={threads}");
        assert_eq!(par.1, serial.1, "output bits, threads={threads}");
        assert_eq!(par.2, serial.2, "stats, threads={threads}");
        assert_eq!(par.3, serial.3, "recovery report, threads={threads}");
        assert_eq!(par.4, serial.4, "ECC counters, threads={threads}");
    }
    // A different seed must produce a different campaign (the stream is
    // counter-based, not degenerate).
    let other = campaign_run(1, 0x5EED);
    assert_ne!(other.0, serial.0, "distinct seeds, distinct fault lists");
}

/// One step of the random interleaving, applied identically to every
/// system under comparison.
#[derive(Debug, Clone)]
enum Mutation {
    WriteRow {
        channel: usize,
        bank: usize,
        seed: u8,
    },
    FlipBit {
        channel: usize,
        bank: usize,
        bit: usize,
    },
    /// Host-side storage readback of one row — must agree byte-for-byte
    /// across every system under comparison.
    Read {
        channel: usize,
        bank: usize,
    },
    Comp,
}

fn mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        2 => (0usize..8, 0usize..16, any::<u8>())
            .prop_map(|(channel, bank, seed)| Mutation::WriteRow { channel, bank, seed }),
        1 => (0usize..8, 0usize..16, 0usize..4096)
            .prop_map(|(channel, bank, bit)| Mutation::FlipBit { channel, bank, bit }),
        1 => (0usize..8, 0usize..16)
            .prop_map(|(channel, bank)| Mutation::Read { channel, bank }),
        3 => Just(Mutation::Comp),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The streamed (windowed) energy attribution must agree with the
    /// postprocessed Fig. 13 power model on arbitrary layer shapes: the
    /// underlying activity counts bit-for-bit, and the picojoule totals
    /// within the per-command milli-pJ rounding budget (0.1%).
    #[test]
    fn streamed_energy_matches_postprocessed_model(
        m in 1usize..24,
        n_pow in 6u32..10,
        seed in 0u64..1024,
    ) {
        let n = 1usize << n_pow;
        let matrix = generator::matrix(MvShape::new(m, n), seed);
        let vector = generator::vector(n, seed);
        let mut sys = telemetry_system(1);
        let run = sys.run_mv(&matrix, m, n, &vector).expect("telemetry run");

        let streamed = ActivityCounts::from_aim_telemetry(&run.channel_summaries)
            .expect("telemetry enabled on every channel");
        let post = ActivityCounts::from_aim_summaries(&run.channel_summaries);
        prop_assert_eq!(streamed, post, "streamed counts must equal postprocessed counts");

        let model = EnergyModel::new();
        let merged = run.merged_telemetry().expect("telemetry enabled");
        let streamed_pj = merged.totals().energy_milli_pj as f64 / 1000.0;
        let model_pj = merged.dynamic_energy_pj(&model);
        if model_pj > 0.0 {
            let divergence = (streamed_pj - model_pj).abs() / model_pj;
            prop_assert!(
                divergence <= 1e-3,
                "streamed {} pJ vs model {} pJ (divergence {})",
                streamed_pj, model_pj, divergence
            );
        }
    }

    /// Random interleavings of storage writes and COMPs against a
    /// resident matrix: systems at 1, 2 and 8 workers stay bit-identical
    /// at every COMP (writes go through the same storage paths; the only
    /// degree of freedom is the pool width, which must not be
    /// observable).
    #[test]
    fn random_write_comp_interleavings_are_thread_invariant(
        ops in prop::collection::vec(mutation(), 1..16)
    ) {
        let (m, n) = (32, 256);
        let matrix = generator::matrix(MvShape::new(m, n), 23);
        let vector = generator::vector(n, 23);

        let mut systems: Vec<NewtonSystem> = [1usize, 2, 8].iter().map(|&t| system(t)).collect();
        let loaded: Vec<_> = systems
            .iter_mut()
            .map(|s| s.load_matrix(&matrix, m, n).expect("load"))
            .collect();
        let row_bytes = systems[0].config().row_elems() * 2;

        let compare = |systems: &mut Vec<NewtonSystem>, loaded: &[newton_core::system::LoadedMatrix], vector: &[Bf16]| {
            let runs: Vec<SystemRun> = systems
                .iter_mut()
                .zip(loaded)
                .map(|(s, l)| s.run_resident(l, vector).expect("resident run"))
                .collect();
            let bits: Vec<Vec<u32>> = runs
                .iter()
                .map(|r| r.output.iter().map(|v| v.to_bits()).collect())
                .collect();
            for r in &runs[1..] {
                assert_eq!(
                    bits[0],
                    r.output.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
                );
                assert_eq!(runs[0].cycles, r.cycles);
                assert_eq!(runs[0].stats, r.stats);
                assert_eq!(runs[0].channel_summaries, r.channel_summaries);
            }
        };

        for op in &ops {
            match op {
                Mutation::Read { channel, bank } => {
                    let rows: Vec<Option<Vec<u8>>> = systems
                        .iter()
                        .map(|s| {
                            s.channels()[*channel]
                                .channel()
                                .storage()
                                .row(*bank, 0)
                                .ok()
                                .map(<[u8]>::to_vec)
                        })
                        .collect();
                    prop_assert!(rows.windows(2).all(|w| w[0] == w[1]));
                }
                Mutation::WriteRow { channel, bank, seed } => {
                    let data: Vec<u8> =
                        (0..row_bytes).map(|i| (i as u8).wrapping_mul(*seed)).collect();
                    // A write may legitimately land on an unallocated row;
                    // what matters is that every system agrees.
                    let outcomes: Vec<bool> = systems
                        .iter_mut()
                        .map(|s| {
                            s.channels_mut()[*channel]
                                .channel_mut()
                                .storage_mut()
                                .write_row(*bank, 0, &data)
                                .is_ok()
                        })
                        .collect();
                    prop_assert!(outcomes.windows(2).all(|w| w[0] == w[1]));
                }
                Mutation::FlipBit { channel, bank, bit } => {
                    let outcomes: Vec<bool> = systems
                        .iter_mut()
                        .map(|s| {
                            s.channels_mut()[*channel]
                                .channel_mut()
                                .storage_mut()
                                .flip_bit(*bank, 0, *bit)
                                .is_ok()
                        })
                        .collect();
                    prop_assert!(outcomes.windows(2).all(|w| w[0] == w[1]));
                }
                Mutation::Comp => compare(&mut systems, &loaded, &vector),
            }
        }
        // Always end on a COMP so trailing writes are exercised.
        compare(&mut systems, &loaded, &vector);
    }

    /// PR 7 tentpole gate: the event-skipping timing engine must be
    /// byte-identical to the reference (full-rescan) oracle on random
    /// write/COMP/read interleavings — with ECC enabled, refresh
    /// interposition in flight, streaming telemetry and command traces on,
    /// at pool widths 1, 2 and 8 — across *every* observable surface:
    /// output bits, cycle counts, AiM stats, rendered traces, telemetry
    /// windows, and energy totals. A second engine pair runs bare (no
    /// ECC/trace/telemetry) so the batched COMP-burst fast path is
    /// compared too, not just the fully-observed slow path.
    #[test]
    fn timing_engines_byte_identical_under_random_interleavings(
        ops in prop::collection::vec(mutation(), 1..10)
    ) {
        // 64x8192 makes each resident run ~4.8k cycles — past the tREFI
        // window, so refresh interposition is live in every comparison.
        let (m, n) = (64, 8192);
        let matrix = generator::matrix(MvShape::new(m, n), 29);
        let vector = generator::vector(n, 29);

        let engines = [TimingEngine::EventSkipping, TimingEngine::Reference];
        // Fully-observed systems: engines x widths, ECC + telemetry + traces.
        let mut observed: Vec<NewtonSystem> = Vec::new();
        for &engine in &engines {
            for &threads in &[1usize, 2, 8] {
                let mut cfg = NewtonConfig::paper_default();
                cfg.channels = 8;
                cfg.ecc = true;
                cfg.parallel = ParallelPolicy::exact(threads);
                cfg.telemetry = Some(TelemetryConfig::default());
                let mut sys = NewtonSystem::new(cfg).expect("system");
                sys.set_timing_engine(engine);
                for ch in sys.channels_mut() {
                    ch.enable_trace();
                }
                observed.push(sys);
            }
        }
        // Bare systems: engine pair with the COMP-burst fast path armed.
        let mut bare: Vec<NewtonSystem> = engines
            .iter()
            .map(|&engine| {
                let mut sys = system(1);
                sys.set_timing_engine(engine);
                sys
            })
            .collect();

        let loaded_obs: Vec<LoadedMatrix> = observed
            .iter_mut()
            .map(|s| s.load_matrix(&matrix, m, n).expect("load"))
            .collect();
        let loaded_bare: Vec<LoadedMatrix> = bare
            .iter_mut()
            .map(|s| s.load_matrix(&matrix, m, n).expect("load"))
            .collect();
        let row_bytes = observed[0].config().row_elems() * 2;

        let compare_all = |observed: &mut Vec<NewtonSystem>,
                           bare: &mut Vec<NewtonSystem>,
                           loaded_obs: &[LoadedMatrix],
                           loaded_bare: &[LoadedMatrix],
                           vector: &[Bf16]| {
            type Surface = (Vec<u32>, u64, newton_core::controller::AimStats,
                            Vec<String>, newton_trace::TimeSeries, u64, u64);
            let surfaces: Vec<Surface> = observed
                .iter_mut()
                .zip(loaded_obs)
                .map(|(s, l)| {
                    let run = s.run_resident(l, vector).expect("observed run");
                    let traces: Vec<String> = s
                        .channels_mut()
                        .iter()
                        .map(|ch| ch.trace().render())
                        .collect();
                    let merged = run.merged_telemetry().expect("telemetry enabled");
                    let totals = merged.totals();
                    assert!(run.stats.refreshes >= 1, "run must cross a tREFI window");
                    (
                        run.output.iter().map(|v| v.to_bits()).collect(),
                        run.cycles,
                        run.stats,
                        traces,
                        merged,
                        totals.energy_milli_pj,
                        totals.refresh_milli_pj,
                    )
                })
                .collect();
            for (i, s) in surfaces.iter().enumerate().skip(1) {
                assert_eq!(s.0, surfaces[0].0, "output bits, system {i}");
                assert_eq!(s.1, surfaces[0].1, "cycles, system {i}");
                assert_eq!(s.2, surfaces[0].2, "AiM stats, system {i}");
                assert_eq!(s.3, surfaces[0].3, "command traces, system {i}");
                assert_eq!(s.4, surfaces[0].4, "telemetry windows, system {i}");
                assert_eq!(s.5, surfaces[0].5, "energy totals, system {i}");
                assert_eq!(s.6, surfaces[0].6, "refresh energy, system {i}");
            }
            let bare_runs: Vec<SystemRun> = bare
                .iter_mut()
                .zip(loaded_bare)
                .map(|(s, l)| s.run_resident(l, vector).expect("bare run"))
                .collect();
            let (fast, oracle) = (&bare_runs[0], &bare_runs[1]);
            assert_eq!(
                fast.output.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
                oracle.output.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
                "fast-path output bits"
            );
            assert_eq!(fast.cycles, oracle.cycles, "fast-path cycles");
            assert_eq!(fast.stats, oracle.stats, "fast-path stats");
            assert_eq!(
                fast.channel_summaries, oracle.channel_summaries,
                "fast-path channel summaries"
            );
        };

        for op in &ops {
            match op {
                Mutation::Read { channel, bank } => {
                    let rows: Vec<Option<Vec<u8>>> = observed
                        .iter()
                        .chain(bare.iter())
                        .map(|s| {
                            s.channels()[*channel]
                                .channel()
                                .storage()
                                .row(*bank, 0)
                                .ok()
                                .map(<[u8]>::to_vec)
                        })
                        .collect();
                    prop_assert!(rows.windows(2).all(|w| w[0] == w[1]));
                }
                Mutation::WriteRow { channel, bank, seed } => {
                    let data: Vec<u8> =
                        (0..row_bytes).map(|i| (i as u8).wrapping_mul(*seed)).collect();
                    let outcomes: Vec<bool> = observed
                        .iter_mut()
                        .chain(bare.iter_mut())
                        .map(|s| {
                            s.channels_mut()[*channel]
                                .channel_mut()
                                .storage_mut()
                                .write_row(*bank, 0, &data)
                                .is_ok()
                        })
                        .collect();
                    prop_assert!(outcomes.windows(2).all(|w| w[0] == w[1]));
                }
                Mutation::FlipBit { channel, bank, bit } => {
                    let outcomes: Vec<bool> = observed
                        .iter_mut()
                        .chain(bare.iter_mut())
                        .map(|s| {
                            s.channels_mut()[*channel]
                                .channel_mut()
                                .storage_mut()
                                .flip_bit(*bank, 0, *bit)
                                .is_ok()
                        })
                        .collect();
                    prop_assert!(outcomes.windows(2).all(|w| w[0] == w[1]));
                }
                Mutation::Comp => compare_all(
                    &mut observed,
                    &mut bare,
                    &loaded_obs,
                    &loaded_bare,
                    &vector,
                ),
            }
        }
        compare_all(&mut observed, &mut bare, &loaded_obs, &loaded_bare, &vector);
    }
}

// ---------------------------------------------------------------------
// Serving path (PR 8): the deadline scheduler, admission control, chaos
// injection, and the recovery ladder must produce byte-identical
// BENCH_pr8-style snapshots across both timing engines and every thread
// width — latency percentiles, shed/retry counters, energy, all of it.
// ---------------------------------------------------------------------

/// One serving cell under an explicit engine and pool width: mid-traffic
/// BER faults plus a hard stuck word (so scrub, retry, backoff, AND the
/// retirement/re-plan rungs all execute), rendered to the same snapshot
/// form the `serve` bench bin writes.
fn serving_observation(
    engine: TimingEngine,
    threads: usize,
    replay: bool,
) -> (newton_serve::ServeReport, String) {
    use newton_serve::{ChaosAction, ChaosEvent, ChaosPlan, Server, TrafficConfig};
    use newton_workloads::arrivals::ArrivalPattern;

    let (m, n) = (32, 512);
    let matrix = generator::matrix(MvShape::new(m, n), 31);
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 4;
    cfg.ecc = true;
    cfg.parallel = ParallelPolicy::exact(threads);
    cfg.telemetry = Some(TelemetryConfig::default());
    let mut server = Server::new(cfg, matrix, m, n, 3, 33).expect("server");
    server.system_mut().set_timing_engine(engine);
    server.system_mut().set_schedule_replay(replay);

    let traffic = TrafficConfig {
        pattern: ArrivalPattern::Bursty {
            base_rate_per_us: 0.01,
            peak_rate_per_us: 2.0,
            period_us: 100.0,
            burst_fraction: 0.25,
        },
        requests: 25,
        seed: 35,
        deadline_ns: 100_000.0,
        queue_capacity: 16,
        max_batch: 4,
        retry_backoff_cycles: 256,
        conventional: None,
    };
    let chaos = ChaosPlan {
        events: vec![
            ChaosEvent {
                after_completed: 4,
                action: ChaosAction::Faults(CampaignSpec {
                    seed: 37,
                    single_bit_flips: 6,
                    double_bit_words: 2,
                    stuck_cells: 0,
                    retention: None,
                }),
            },
            ChaosEvent {
                after_completed: 10,
                action: ChaosAction::StuckWord {
                    channel: 1,
                    bank: 3,
                },
            },
        ],
    };
    let report = server.serve(&traffic, &chaos).expect("serves");
    let mut snap = MetricsSnapshot::new("serving_determinism");
    report.record_into(&mut snap, "serve");
    let rendered = snap.render();
    (report, rendered)
}

#[test]
fn serving_reports_byte_identical_across_engines_and_widths() {
    let mut all: Vec<(newton_serve::ServeReport, String)> = Vec::new();
    for engine in [TimingEngine::EventSkipping, TimingEngine::Reference] {
        for threads in [1usize, 2, 8] {
            all.push(serving_observation(engine, threads, true));
        }
    }
    let (first_report, first_snap) = &all[0];
    // The cell must actually exercise the interesting machinery, or the
    // equality below proves nothing.
    assert!(first_report.retries > 0, "chaos must force retries");
    assert!(
        !first_report.recovery.retired_banks.is_empty(),
        "the stuck word must retire a bank"
    );
    assert_eq!(first_report.sdc, 0, "ECC on: zero silent corruption");
    assert_eq!(
        first_report.offered,
        first_report.completed + first_report.shed + first_report.expired
    );
    for (i, (report, rendered)) in all.iter().enumerate().skip(1) {
        assert_eq!(
            report, first_report,
            "serving report diverged at engine/width combo {i}"
        );
        assert_eq!(
            rendered, first_snap,
            "rendered snapshot diverged at combo {i}"
        );
    }
}

// ---------------------------------------------------------------------
// Compiled-schedule replay cache (PR 9): replay-on must be byte-identical
// to replay-off (the never-cached oracle) on every observable surface —
// across both timing engines, thread widths {1, 2, 8}, invalidation
// edges (weight writes, retirement mid-chaos, engine flips, ECC on/off),
// and observer bypasses (audit logs, conventional traffic).
// ---------------------------------------------------------------------

/// A resident-matrix pair: the same config run with replay on and off.
/// `ecc`/`engine`/`threads` shape the cell; both systems see identical
/// mutations through the returned handles.
fn replay_pair(
    ecc: bool,
    engine: TimingEngine,
    threads: usize,
    m: usize,
    n: usize,
    matrix: &[Bf16],
) -> (Vec<NewtonSystem>, Vec<LoadedMatrix>) {
    let mut systems: Vec<NewtonSystem> = [false, true]
        .iter()
        .map(|&replay| {
            let mut cfg = NewtonConfig::paper_default();
            cfg.channels = 2;
            cfg.ecc = ecc;
            cfg.parallel = ParallelPolicy::exact(threads);
            cfg.telemetry = Some(TelemetryConfig::default());
            let mut sys = NewtonSystem::new(cfg).expect("system");
            sys.set_timing_engine(engine);
            sys.set_schedule_replay(replay);
            sys
        })
        .collect();
    let loaded: Vec<LoadedMatrix> = systems
        .iter_mut()
        .map(|s| s.load_matrix(matrix, m, n).expect("load"))
        .collect();
    (systems, loaded)
}

/// Runs one vector through both systems of a pair and asserts every
/// surface agrees modulo the schedule-cache counters; returns the
/// replay-on run for counter assertions.
fn assert_replay_identical(
    systems: &mut [NewtonSystem],
    loaded: &[LoadedMatrix],
    vector: &[Bf16],
    what: &str,
) -> SystemRun {
    let runs: Vec<SystemRun> = systems
        .iter_mut()
        .zip(loaded)
        .map(|(s, l)| s.run_resident(l, vector).expect("resident run"))
        .collect();
    let (off, on) = (&runs[0], &runs[1]);
    let bits = |r: &SystemRun| r.output.iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
    assert_eq!(bits(off), bits(on), "{what}: output bits");
    assert_eq!(off.cycles, on.cycles, "{what}: cycles");
    assert_eq!(
        off.stats.sans_schedule_cache(),
        on.stats.sans_schedule_cache(),
        "{what}: stats"
    );
    assert_eq!(
        off.stats,
        off.stats.sans_schedule_cache(),
        "{what}: replay-off must never touch the cache counters"
    );
    for (a, b) in off.channel_summaries.iter().zip(&on.channel_summaries) {
        let mut a = a.clone();
        let mut b = b.clone();
        a.telemetry = a.telemetry.map(|t| t.sans_schedule_cache());
        b.telemetry = b.telemetry.map(|t| t.sans_schedule_cache());
        assert_eq!(a, b, "{what}: channel summaries");
    }
    runs.into_iter().nth(1).expect("two runs")
}

#[test]
fn replay_invalidation_edges_stay_live_and_byte_identical() {
    use newton_workloads::DecodeStreamSpec;

    let spec = DecodeStreamSpec::new(32, 512, 8, 41);
    let matrix = spec.matrix();
    for engine in [TimingEngine::EventSkipping, TimingEngine::Reference] {
        for threads in [1usize, 2, 8] {
            let (mut systems, loaded) = replay_pair(true, engine, threads, 32, 512, &matrix);
            let what = format!("engine {engine:?} threads {threads}");

            // Warm: capture, then hit.
            assert_replay_identical(&mut systems, &loaded, &spec.token_input(0), &what);
            let run = assert_replay_identical(&mut systems, &loaded, &spec.token_input(1), &what);
            assert_eq!(run.stats.schedule_hits, 2, "{what}: steady stream hits");

            // Weight rewrite mid-stream (correctable single-bit flip on
            // channel 0, applied identically to both systems): the next
            // token must fall back to a live drain, stay byte-identical,
            // and report the invalidation.
            for sys in &mut systems {
                sys.channels_mut()[0]
                    .channel_mut()
                    .storage_mut()
                    .flip_bit(1, 0, 3)
                    .expect("flip");
            }
            let run = assert_replay_identical(&mut systems, &loaded, &spec.token_input(2), &what);
            assert_eq!(run.stats.schedule_invalidations, 1, "{what}: weight write");
            assert_eq!(run.stats.schedule_hits, 1, "{what}: untouched channel hits");
            assert!(run.stats.ecc_corrected > 0, "{what}: live drain corrects");

            // The dirty drain must not have captured; the next clean one
            // does, and the stream returns to full hits.
            let run = assert_replay_identical(&mut systems, &loaded, &spec.token_input(3), &what);
            assert_eq!(run.stats.schedule_misses, 1, "{what}: re-capture drain");
            let run = assert_replay_identical(&mut systems, &loaded, &spec.token_input(4), &what);
            assert_eq!(run.stats.schedule_hits, 2, "{what}: recovered");

            // `NEWTON_TIMING_ENGINE`-style flip mid-stream: every entry
            // invalidates once, the fallback drains live and identical.
            let other = match engine {
                TimingEngine::Reference => TimingEngine::EventSkipping,
                TimingEngine::EventSkipping => TimingEngine::Reference,
            };
            for sys in &mut systems {
                sys.set_timing_engine(other);
            }
            let run = assert_replay_identical(&mut systems, &loaded, &spec.token_input(5), &what);
            assert_eq!(run.stats.schedule_invalidations, 2, "{what}: engine flip");
            let run = assert_replay_identical(&mut systems, &loaded, &spec.token_input(6), &what);
            assert_eq!(run.stats.schedule_hits, 2, "{what}: re-armed after flip");
        }
    }

    // ECC-off toggle (a construction-time config change): a fresh pair
    // without ECC must agree the same way, including through a raw
    // mid-stream row rewrite (no check words to stay consistent with).
    let (mut systems, loaded) =
        replay_pair(false, TimingEngine::EventSkipping, 1, 32, 512, &matrix);
    assert_replay_identical(&mut systems, &loaded, &spec.token_input(0), "ecc off");
    let run = assert_replay_identical(&mut systems, &loaded, &spec.token_input(1), "ecc off");
    assert_eq!(run.stats.schedule_hits, 2, "ecc off: hits");
    let row_bytes = systems[0].config().row_elems() * 2;
    let data: Vec<u8> = (0..row_bytes).map(|i| (i as u8).wrapping_mul(7)).collect();
    for sys in &mut systems {
        sys.channels_mut()[0]
            .channel_mut()
            .storage_mut()
            .write_row(0, 0, &data)
            .expect("rewrite");
    }
    let run = assert_replay_identical(&mut systems, &loaded, &spec.token_input(2), "ecc off");
    assert_eq!(run.stats.schedule_invalidations, 1, "ecc off: row rewrite");
}

#[test]
fn replay_serving_chaos_byte_identical_across_engines_and_widths() {
    // The PR 8 chaos cell (BER faults + stuck word -> scrub, retry,
    // retirement, re-plan) with replay off is the never-cached oracle;
    // replay on must match it modulo the cache counters, at every engine
    // and width.
    for engine in [TimingEngine::EventSkipping, TimingEngine::Reference] {
        for threads in [1usize, 2, 8] {
            let (off, _) = serving_observation(engine, threads, false);
            let (on, _) = serving_observation(engine, threads, true);
            assert_eq!(
                off.sans_schedule_cache(),
                on.sans_schedule_cache(),
                "engine {engine:?} threads {threads}: sanitized reports"
            );
            assert_eq!(
                off,
                off.sans_schedule_cache(),
                "replay-off serving must never touch the cache"
            );
            assert!(
                on.schedule_hits > 0,
                "engine {engine:?} threads {threads}: resident serving must hit"
            );
            assert!(
                on.schedule_invalidations > 0,
                "engine {engine:?} threads {threads}: chaos must invalidate"
            );
            assert!(
                !on.recovery.retired_banks.is_empty(),
                "the cell must exercise retirement mid-chaos"
            );
        }
    }
}

#[test]
fn replay_bypasses_for_audit_and_conventional_traffic() {
    use newton_serve::{ChaosPlan, ConventionalTraffic, Server, TrafficConfig};

    // Audit log attached: replay must bypass (the batched appliers cannot
    // reproduce per-command audit events) while staying byte-identical to
    // an audited never-cached run — and the audit stream itself must be
    // identical, so the observer sees the same command history.
    let (m, n) = (32, 512);
    let matrix = generator::matrix(MvShape::new(m, n), 43);
    let vector = generator::vector(n, 43);
    let (mut systems, loaded) = replay_pair(true, TimingEngine::EventSkipping, 1, m, n, &matrix);
    for sys in &mut systems {
        for ch in sys.channels_mut() {
            ch.channel_mut().enable_audit();
        }
    }
    for _ in 0..2 {
        let run = assert_replay_identical(&mut systems, &loaded, &vector, "audit");
        assert_eq!(run.stats.schedule_hits, 0, "audit must bypass replay");
        assert_eq!(run.stats.schedule_misses, 2, "audited runs count as misses");
    }
    let audits: Vec<Vec<usize>> = systems
        .iter()
        .map(|s| {
            s.channels()
                .iter()
                .map(|c| c.channel().audit().expect("audit on").len())
                .collect()
        })
        .collect();
    assert_eq!(audits[0], audits[1], "audit event streams must agree");
    assert!(audits[0].iter().sum::<usize>() > 0, "audit must record");

    // Conventional-DRAM traffic interleaving at the serving layer: the
    // controller advances clocks between AiM batches; replay's per-train
    // first-command scans absorb that, so the cache stays hot and the
    // reports agree byte-for-byte.
    let run_conv = |replay: bool| {
        let mut cfg = NewtonConfig::paper_default();
        cfg.channels = 2;
        cfg.ecc = true;
        cfg.parallel = ParallelPolicy::exact(1);
        cfg.telemetry = Some(TelemetryConfig::default());
        let matrix = generator::matrix(MvShape::new(m, n), 47);
        let mut server = Server::new(cfg, matrix, m, n, 3, 49).expect("server");
        server.system_mut().set_schedule_replay(replay);
        let mut traffic = TrafficConfig::poisson(0.05, 24, 51);
        traffic.conventional = Some(ConventionalTraffic {
            interval_ns: 4_000.0,
            burst_cycles: 64,
        });
        server.serve(&traffic, &ChaosPlan::none()).expect("serves")
    };
    let off = run_conv(false);
    let on = run_conv(true);
    assert_eq!(
        off.sans_schedule_cache(),
        on.sans_schedule_cache(),
        "conventional-traffic reports"
    );
    assert!(on.conventional_bursts > 0, "cell must interleave bursts");
    assert!(on.schedule_hits > 0, "replay stays hot across bursts");
}

// ---------------------------------------------------------------------
// Trace-driven ISA frontend (PR 10): a Table II layer lowered to `.aim`
// text, parsed back, and physically replayed must be byte-identical to
// the API-driven `run_mv` path — outputs, cycles, AiM stats, per-channel
// summaries, and merged telemetry — across both timing engines and pool
// widths {1, 2, 8}.
// ---------------------------------------------------------------------

#[test]
fn lowered_bert_trace_is_byte_identical_across_engines_and_widths() {
    use newton_isa::{generate, harness, mv, Program};

    let b = Benchmark::BertS1;
    let shape = b.shape();
    let mut base = NewtonConfig::paper_default();
    base.channels = 8;

    // Lower once, round-trip through text once: the trace under test is
    // the *parsed* artifact, not the in-memory original.
    let matrix = generator::matrix(shape, b.seed());
    let vector = generator::vector(shape.n, b.seed() + 1);
    let program = generate::lower_mv(&base, &matrix, shape.m, shape.n, &vector).expect("lower");
    let program = Program::parse(&program.render()).expect("round trip");
    let trace = mv::recognize(&program).expect("recognize");
    assert_eq!(trace.matrix, matrix, "trace must carry the exact matrix");
    assert_eq!(trace.vector, vector, "trace must carry the exact vector");

    for engine in [TimingEngine::Reference, TimingEngine::EventSkipping] {
        for threads in [1usize, 2, 8] {
            let what = format!("engine {engine:?} threads {threads}");
            let build = || {
                let mut cfg = base.clone();
                cfg.parallel = ParallelPolicy::exact(threads);
                cfg.telemetry = Some(TelemetryConfig::default());
                let mut sys = NewtonSystem::new(cfg).expect("system");
                sys.set_timing_engine(engine);
                sys
            };

            let mut sys_trace = build();
            let loaded = trace.apply_physical(&mut sys_trace).expect("replay");
            let run_trace = sys_trace
                .run_resident(&loaded, &trace.vector)
                .expect("trace run");

            let mut sys_api = build();
            let run_api = sys_api
                .run_mv(&matrix, shape.m, shape.n, &vector)
                .expect("api run");

            let bits = |r: &SystemRun| r.output.iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
            assert_eq!(bits(&run_trace), bits(&run_api), "{what}: output bits");
            assert_eq!(run_trace.cycles, run_api.cycles, "{what}: cycles");
            assert_eq!(run_trace.stats, run_api.stats, "{what}: AiM stats");
            assert_eq!(
                run_trace.channel_summaries, run_api.channel_summaries,
                "{what}: channel summaries"
            );
            assert_eq!(
                run_trace.merged_telemetry(),
                run_api.merged_telemetry(),
                "{what}: merged telemetry"
            );
            assert_eq!(
                harness::conformance_snapshot(&run_trace).render(),
                harness::conformance_snapshot(&run_api).render(),
                "{what}: conformance snapshot"
            );
        }
    }
}
