//! Table rendering and small statistics helpers for experiment output.

/// Geometric mean of positive values; 0 for an empty slice.
///
/// # Example
///
/// ```
/// let g = newton_bench::report::geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// A plain-text table builder with right-aligned numeric columns.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        self.rows.push(cells.to_vec());
        self
    }

    /// The column headers.
    #[must_use]
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The rows appended so far.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders with column alignment: first column left, rest right.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[0]));
                } else {
                    line.push_str(&format!("  {:>w$}", c, w = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a speedup as `12.3x`.
#[must_use]
pub fn fx(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats nanoseconds with an adaptive unit.
#[must_use]
pub fn fns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-9);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".into(), "1.0x".into()]);
        t.row(&["b".into(), "123.4x".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Right alignment: both value cells end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(fx(10.0), "10.00x");
        assert_eq!(fns(500.0), "500 ns");
        assert_eq!(fns(5_000.0), "5.00 us");
        assert_eq!(fns(5_000_000.0), "5.00 ms");
    }
}
