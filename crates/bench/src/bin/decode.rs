//! Decode-stream replay benchmark (PR 9): the compiled-schedule replay
//! cache measured on its target workloads, with byte-identity between
//! replay-on and replay-off *asserted*, not implied.
//!
//! Two sections, one JSON snapshot:
//!
//! 1. **Decode stream.** An autoregressive token stream
//!    ([`DecodeStreamSpec`]) — N per-token GEMVs against one resident
//!    matrix, ECC and streaming telemetry on — run twice: replay off
//!    (every token pays a live FR-FCFS drain) and replay on (token 0
//!    captures, tokens 1.. replay the compiled train). Outputs,
//!    per-token simulated cycles, machine stats, and windowed telemetry
//!    (modulo the cache counter track) must agree bit for bit; outputs
//!    are additionally checked against the stream's `f64` oracle. The
//!    headline is simulated-cycles-per-wall-second, replay on vs off.
//! 2. **Serving cell.** The BENCH_pr8 `poisson/no_fault` cell (steady
//!    Poisson arrivals, 100 µs SLO, ECC + telemetry) served twice on
//!    identical fresh servers, replay off and on, with sanitized
//!    [`ServeReport`]s asserted equal; the headline is completed
//!    queries per wall second.
//!
//! Speedup gates are *soft* here (recorded in the snapshot, enforced as
//! log-only warnings by CI); the zero-divergence gates are hard asserts
//! in this binary.
//!
//! Usage:
//!
//! ```sh
//! decode                # full workload (64x1024, 2 channels, 192 tokens)
//! decode --quick        # small workload for CI smoke (32x512, 48 tokens)
//! decode --seed N       # stream/arrival seed (default 9)
//! decode --out PATH     # snapshot path (default BENCH_pr9.json)
//! ```

use newton_core::config::NewtonConfig;
use newton_core::system::{NewtonSystem, SystemRun};
use newton_core::TelemetryConfig;
use newton_dram::faults::mix64;
use newton_serve::{ChaosPlan, ServeReport, Server, TrafficConfig};
use newton_trace::{MetricsSnapshot, TimeSeries};
use newton_workloads::arrivals::ArrivalPattern;
use newton_workloads::{generator, DecodeStreamSpec, MvShape};
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    quick: bool,
    out: PathBuf,
    seed: u64,
}

impl Args {
    fn from_env() -> Args {
        let mut quick = false;
        let mut out = PathBuf::from("BENCH_pr9.json");
        let mut seed = 9u64;
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--out" => match it.next() {
                    Some(v) => out = PathBuf::from(v),
                    None => {
                        eprintln!("error: --out requires a path");
                        std::process::exit(2);
                    }
                },
                "--seed" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                    Some(v) => seed = v,
                    None => {
                        eprintln!("error: --seed requires an integer");
                        std::process::exit(2);
                    }
                },
                other => {
                    eprintln!(
                        "error: unknown argument {other:?} (try --quick / --seed N / --out PATH)"
                    );
                    std::process::exit(2);
                }
            }
        }
        Args { quick, out, seed }
    }
}

/// Everything one decode pass is compared and scored on.
struct DecodePass {
    wall_seconds: f64,
    sim_cycles: u64,
    /// Per-token (output bits, simulated cycles).
    tokens: Vec<(Vec<u32>, u64)>,
    /// Per-token machine stats with the cache counters zeroed.
    stats_sans: Vec<newton_core::controller::AimStats>,
    /// Final-token merged telemetry, cache counter track zeroed.
    telemetry_sans: Option<TimeSeries>,
    schedule_hits: u64,
    schedule_misses: u64,
    replayed_commands: u64,
}

/// Runs the full decode stream on a fresh system. The matrix load and a
/// first token (the replay capture) are untimed — a resident-weight
/// serving system pays both once per model — then every token runs
/// against the resident matrix, timed wall-clock.
fn run_decode(cfg: &NewtonConfig, spec: &DecodeStreamSpec, replay: bool) -> DecodePass {
    let mut sys = NewtonSystem::new(cfg.clone()).expect("config accepted");
    sys.set_schedule_replay(replay);
    let matrix = spec.matrix();
    let inputs = spec.token_inputs();
    let loaded = sys.load_matrix(&matrix, spec.m, spec.n).expect("load");
    // Untimed warm-up token: pages storage in and, with replay on,
    // captures the compiled schedule.
    let _ = sys.run_resident(&loaded, &inputs[0]).expect("warm token");

    let start = Instant::now();
    let runs: Vec<SystemRun> = inputs
        .iter()
        .map(|v| sys.run_resident(&loaded, v).expect("token run"))
        .collect();
    let wall_seconds = start.elapsed().as_secs_f64();

    let tokens: Vec<(Vec<u32>, u64)> = runs
        .iter()
        .map(|r| (r.output.iter().map(|x| x.to_bits()).collect(), r.cycles))
        .collect();
    DecodePass {
        wall_seconds,
        sim_cycles: runs.iter().map(|r| r.cycles).sum(),
        stats_sans: runs.iter().map(|r| r.stats.sans_schedule_cache()).collect(),
        telemetry_sans: runs
            .last()
            .and_then(SystemRun::merged_telemetry)
            .map(|t| t.sans_schedule_cache()),
        schedule_hits: runs.iter().map(|r| r.stats.schedule_hits).sum(),
        schedule_misses: runs.iter().map(|r| r.stats.schedule_misses).sum(),
        replayed_commands: runs.iter().map(|r| r.stats.replayed_commands).sum(),
        tokens,
    }
}

fn main() {
    let args = Args::from_env();
    let (m, n, channels, tokens, requests, desc) = if args.quick {
        (
            32,
            512,
            2,
            48usize,
            40usize,
            "quick 32x512, 2 channels, 48 tokens",
        )
    } else {
        (
            64,
            1024,
            2,
            192usize,
            160usize,
            "64x1024, 2 channels, 192 tokens",
        )
    };
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = channels;
    cfg.ecc = true;
    cfg.telemetry = Some(TelemetryConfig::default());
    let spec = DecodeStreamSpec::new(m, n, tokens, mix64(args.seed));

    println!(
        "newton decode-stream replay benchmark: {desc}, seed {}",
        args.seed
    );
    let t0 = Instant::now();

    // ------------------------------------------------------------------
    // Section 1: decode stream, replay off vs on.
    // ------------------------------------------------------------------
    let off = run_decode(&cfg, &spec, false);
    let on = run_decode(&cfg, &spec, true);

    // Hard gate: zero divergence, token by token.
    assert_eq!(off.tokens.len(), on.tokens.len());
    let mut divergence = 0u64;
    for (t, (a, b)) in off.tokens.iter().zip(&on.tokens).enumerate() {
        assert_eq!(a.0, b.0, "token {t}: output bits diverge under replay");
        assert_eq!(a.1, b.1, "token {t}: simulated cycles diverge under replay");
        divergence += u64::from(a.0 != b.0) + u64::from(a.1 != b.1);
    }
    assert_eq!(
        off.stats_sans, on.stats_sans,
        "machine stats diverge under replay"
    );
    assert_eq!(
        off.telemetry_sans, on.telemetry_sans,
        "telemetry diverges under replay"
    );
    assert_eq!(off.schedule_hits, 0, "replay-off must never hit the cache");
    assert!(
        on.schedule_hits >= (tokens as u64) * (channels as u64),
        "replay-on decode must serve the stream from the cache \
         (hits {}, expected >= {})",
        on.schedule_hits,
        (tokens as u64) * (channels as u64),
    );
    assert!(on.replayed_commands > 0, "replay must fold command trains");

    // Oracle check: simulator outputs within the bf16 accumulation bound
    // of the exact f64 per-token products.
    let oracle = spec.reference_outputs();
    let tol = spec.tolerance();
    for (t, (bits, _)) in on.tokens.iter().enumerate() {
        for (i, &b) in bits.iter().enumerate() {
            let got = f64::from(f32::from_bits(b));
            let want = oracle[t][i];
            assert!(
                (got - want).abs() <= tol,
                "token {t} element {i}: {got} vs oracle {want} (tol {tol})"
            );
        }
    }

    let off_rate = off.sim_cycles as f64 / off.wall_seconds;
    let on_rate = on.sim_cycles as f64 / on.wall_seconds;
    let decode_speedup = off.wall_seconds / on.wall_seconds;
    println!(
        "  replay off: {:>8.3} s  {:>14.0} sim-cycles/s  ({} tokens, {} sim-cycles)",
        off.wall_seconds, off_rate, tokens, off.sim_cycles
    );
    println!(
        "  replay on : {:>8.3} s  {:>14.0} sim-cycles/s  (hits {}, {} folded commands)",
        on.wall_seconds, on_rate, on.schedule_hits, on.replayed_commands
    );
    println!("  decode speedup (replay on vs off): {decode_speedup:.2}x  [soft gate: >= 2x]");
    println!("  decode divergence: {divergence} (hard gate: 0)");

    // ------------------------------------------------------------------
    // Section 2: the BENCH_pr8 poisson/no_fault serving cell, replay off
    // vs on, sanitized reports asserted equal.
    // ------------------------------------------------------------------
    let (serve_off, serve_off_wall) = run_serve_cell_at(m, n, &cfg, args.seed, requests, false);
    let (serve_on, serve_on_wall) = run_serve_cell_at(m, n, &cfg, args.seed, requests, true);
    assert_eq!(
        serve_off.sans_schedule_cache(),
        serve_on.sans_schedule_cache(),
        "serving reports diverge under replay"
    );
    assert_eq!(serve_off.schedule_hits, 0);
    assert!(
        serve_on.schedule_hits > 0,
        "replay-on serving must hit the cache"
    );
    let off_qps = serve_off.completed as f64 / serve_off_wall;
    let on_qps = serve_on.completed as f64 / serve_on_wall;
    let serve_speedup = serve_off_wall / serve_on_wall;
    println!(
        "  serve poisson/no_fault replay off: {:>8.3} s  {:>8.0} q/wall-s",
        serve_off_wall, off_qps
    );
    println!(
        "  serve poisson/no_fault replay on : {:>8.3} s  {:>8.0} q/wall-s  (hits {})",
        serve_on_wall, on_qps, serve_on.schedule_hits
    );
    println!("  serving speedup (replay on vs off): {serve_speedup:.2}x  [soft gate: >= 3x]");

    // ------------------------------------------------------------------
    // Snapshot.
    // ------------------------------------------------------------------
    let mut snap = MetricsSnapshot::new("bench_pr9");
    snap.text("workload", desc)
        .count("seed", args.seed)
        .count("host_cores", host_cores as u64)
        .count("channels", channels as u64)
        .count("matrix_rows", m as u64)
        .count("matrix_cols", n as u64)
        .count("tokens", tokens as u64)
        .count("serve_requests", requests as u64)
        .count("decode/divergence", divergence)
        .count("decode/sim_cycles", on.sim_cycles)
        .scalar("decode/replay_off/wall_seconds", off.wall_seconds)
        .scalar("decode/replay_off/sim_cycles_per_sec", off_rate)
        .scalar(
            "decode/replay_off/tokens_per_sec",
            tokens as f64 / off.wall_seconds,
        )
        .scalar("decode/replay_on/wall_seconds", on.wall_seconds)
        .scalar("decode/replay_on/sim_cycles_per_sec", on_rate)
        .scalar(
            "decode/replay_on/tokens_per_sec",
            tokens as f64 / on.wall_seconds,
        )
        .scalar("decode/speedup", decode_speedup)
        .count("decode/schedule_cache/hits", on.schedule_hits)
        .count("decode/schedule_cache/misses", on.schedule_misses)
        .count(
            "decode/schedule_cache/replayed_commands",
            on.replayed_commands,
        )
        .count("serve/divergence", 0)
        .scalar("serve/replay_off/wall_seconds", serve_off_wall)
        .scalar("serve/replay_off/wall_qps", off_qps)
        .scalar("serve/replay_on/wall_seconds", serve_on_wall)
        .scalar("serve/replay_on/wall_qps", on_qps)
        .scalar("serve/speedup", serve_speedup)
        .count("serve/schedule_cache/hits", serve_on.schedule_hits)
        .count("serve/schedule_cache/misses", serve_on.schedule_misses)
        .count(
            "serve/schedule_cache/replayed_commands",
            serve_on.replayed_commands,
        );

    let columns: Vec<String> = ["section", "replay", "wall_s", "throughput", "speedup"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let rows = vec![
        vec![
            "decode".to_string(),
            "off".to_string(),
            format!("{:.3}", off.wall_seconds),
            format!("{off_rate:.0} sim-cycles/s"),
            String::new(),
        ],
        vec![
            "decode".to_string(),
            "on".to_string(),
            format!("{:.3}", on.wall_seconds),
            format!("{on_rate:.0} sim-cycles/s"),
            format!("{decode_speedup:.2}x"),
        ],
        vec![
            "serve poisson/no_fault".to_string(),
            "off".to_string(),
            format!("{serve_off_wall:.3}"),
            format!("{off_qps:.0} q/wall-s"),
            String::new(),
        ],
        vec![
            "serve poisson/no_fault".to_string(),
            "on".to_string(),
            format!("{serve_on_wall:.3}"),
            format!("{on_qps:.0} q/wall-s"),
            format!("{serve_speedup:.2}x"),
        ],
    ];
    snap.table(
        "Compiled-schedule replay: on vs off, zero divergence",
        &columns,
        &rows,
    );

    let rendered = snap.render();
    if let Err(e) = std::fs::write(&args.out, &rendered) {
        eprintln!("error: cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    println!(
        "wrote {} ({:.1} s)",
        args.out.display(),
        t0.elapsed().as_secs_f64()
    );
}

/// Serves the `poisson/no_fault` cell with the given matrix shape.
fn run_serve_cell_at(
    m: usize,
    n: usize,
    cfg: &NewtonConfig,
    seed: u64,
    requests: usize,
    replay: bool,
) -> (ServeReport, f64) {
    let matrix = generator::matrix(MvShape::new(m, n), mix64(seed ^ 0xA));
    let traffic = TrafficConfig {
        pattern: ArrivalPattern::Poisson { rate_per_us: 0.05 },
        requests,
        seed: seed ^ 1,
        deadline_ns: 100_000.0,
        queue_capacity: 32,
        max_batch: 8,
        retry_backoff_cycles: 256,
        conventional: None,
    };
    let mut server = Server::new(cfg.clone(), matrix, m, n, 4, mix64(seed)).expect("server builds");
    server.system_mut().set_schedule_replay(replay);
    let start = Instant::now();
    let report = server
        .serve(&traffic, &ChaosPlan::none())
        .expect("cell serves");
    (report, start.elapsed().as_secs_f64())
}
