//! Online-serving chaos sweep (PR 8): open-loop traffic against a
//! resident matrix, with live fault injection, deadline SLOs, admission
//! control, and graceful degradation after bank retirement.
//!
//! The sweep runs five cells, all with SECDED ECC on and streaming
//! telemetry enabled:
//!
//! | cell                    | arrivals        | chaos                          |
//! |-------------------------|-----------------|--------------------------------|
//! | `poisson/no_fault`      | steady Poisson  | none                           |
//! | `poisson/ber_1e5_ecc`   | steady Poisson  | BER 1e-5 campaign mid-traffic  |
//! | `bursty/no_fault`       | square bursts   | none                           |
//! | `bursty/ber_1e5_ecc`    | square bursts   | BER 1e-5 campaign mid-traffic  |
//! | `degraded/stuck_ecc`    | steady Poisson  | hard stuck word → retirement   |
//!
//! Each cell reports p50/p99/p99.9 completion latency, queries per
//! simulated second, shed/expired/retry counters, silent-data-corruption
//! counts against pristine goldens, and joules-per-query from the
//! streamed energy telemetry. Headline guarantees are *asserted*, not
//! implied: zero SDC in every cell (ECC is on everywhere), faults
//! actually injected in the chaos cells, and — in the degraded cell — at
//! least one bank retired mid-run with serving continuing to completion
//! at reduced capacity.
//!
//! Everything is a pure function of `--seed`: reports and the JSON
//! snapshot are byte-identical for every `NEWTON_THREADS` width and both
//! timing engines (wall-clock is printed but never persisted).
//!
//! Usage:
//!
//! ```sh
//! serve                 # full sweep (64x1024, 2 channels, 160 queries/cell)
//! serve --quick         # small sweep for CI smoke (32x512, 40 queries/cell)
//! serve --seed N        # arrival/fault stream seed (default 8)
//! serve --out PATH      # snapshot path (default BENCH_pr8.json)
//! ```

use newton_bf16::Bf16;
use newton_core::config::NewtonConfig;
use newton_core::TelemetryConfig;
use newton_dram::faults::{mix64, CampaignSpec};
use newton_serve::{ChaosAction, ChaosEvent, ChaosPlan, ServeReport, Server, TrafficConfig};
use newton_trace::MetricsSnapshot;
use newton_workloads::arrivals::ArrivalPattern;
use newton_workloads::{generator, MvShape};
use std::path::PathBuf;

struct Args {
    quick: bool,
    out: PathBuf,
    seed: u64,
}

impl Args {
    fn from_env() -> Args {
        let mut quick = false;
        let mut out = PathBuf::from("BENCH_pr8.json");
        let mut seed = 8u64;
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--out" => match it.next() {
                    Some(v) => out = PathBuf::from(v),
                    None => {
                        eprintln!("error: --out requires a path");
                        std::process::exit(2);
                    }
                },
                "--seed" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                    Some(v) => seed = v,
                    None => {
                        eprintln!("error: --seed requires an integer");
                        std::process::exit(2);
                    }
                },
                other => {
                    eprintln!(
                        "error: unknown argument {other:?} (try --quick / --seed N / --out PATH)"
                    );
                    std::process::exit(2);
                }
            }
        }
        Args { quick, out, seed }
    }
}

/// One sweep cell: a named traffic shape plus a chaos plan.
struct Cell {
    name: &'static str,
    traffic: TrafficConfig,
    chaos: ChaosPlan,
    /// Whether this cell must inject faults (asserted).
    expects_faults: bool,
    /// Whether this cell must retire at least one bank (asserted).
    expects_retirement: bool,
}

/// The BER 1e-5 campaign sized to the resident matrix, with a floor of
/// one double-bit word so the scrub/retry rung is exercised even in the
/// quick geometry.
fn ber_1e5_spec(seed: u64, m: usize, n: usize, channels: usize) -> CampaignSpec {
    // Resident data bits per channel (matrix bf16 payload split evenly).
    let bits_per_channel = (m * n * 16 / channels) as f64;
    let singles = (1e-5 * bits_per_channel).round() as usize;
    let doubles = (singles / 8).max(1);
    CampaignSpec {
        seed,
        single_bit_flips: singles.saturating_sub(2 * doubles),
        double_bit_words: doubles,
        stuck_cells: 0,
        retention: None,
    }
}

fn run_cell(
    cell: &Cell,
    cfg: &NewtonConfig,
    matrix: &[Bf16],
    m: usize,
    n: usize,
    seed: u64,
) -> ServeReport {
    let mut server =
        Server::new(cfg.clone(), matrix.to_vec(), m, n, 4, mix64(seed)).expect("server builds");
    let report = server
        .serve(&cell.traffic, &cell.chaos)
        .expect("cell serves to completion");

    // Headline guarantees, enforced per cell.
    assert_eq!(
        report.sdc, 0,
        "{}: ECC on — silent data corruption must be zero",
        cell.name
    );
    assert_eq!(
        report.offered,
        report.completed + report.shed + report.expired,
        "{}: admission accounting must balance",
        cell.name
    );
    if cell.expects_faults {
        assert!(
            report.injected_faults > 0,
            "{}: chaos cell must inject faults",
            cell.name
        );
        // Fault injection moves the weight data epoch, so the replay
        // cache must drop compiled entries (and the hit rate dips until
        // a clean drain re-captures).
        assert!(
            report.schedule_invalidations > 0,
            "{}: fault injection must invalidate the replay cache",
            cell.name
        );
    } else {
        assert_eq!(report.injected_faults, 0, "{}: clean cell", cell.name);
        assert_eq!(report.retries, 0, "{}: clean cell never retries", cell.name);
    }
    // Replay (on by default) must carry steady resident-weight serving.
    assert!(
        report.schedule_hits > 0,
        "{}: resident serving must hit the replay cache",
        cell.name
    );
    if cell.expects_retirement {
        assert!(
            !report.recovery.retired_banks.is_empty(),
            "{}: hard fault must retire a bank",
            cell.name
        );
        assert!(
            report.recovery.capacity_fraction < 1.0,
            "{}: retirement must shrink capacity",
            cell.name
        );
        assert!(
            report.completed > report.offered / 2,
            "{}: the degraded system must keep serving (completed {} of {})",
            cell.name,
            report.completed,
            report.offered
        );
    }
    report
}

fn main() {
    let args = Args::from_env();
    let (m, n, channels, requests, desc) = if args.quick {
        (32, 512, 2, 40usize, "quick 32x512, 2 channels, 40 q/cell")
    } else {
        (64, 1024, 2, 160usize, "64x1024, 2 channels, 160 q/cell")
    };
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = channels;
    cfg.ecc = true;
    cfg.telemetry = Some(TelemetryConfig::default());
    let matrix = generator::matrix(MvShape::new(m, n), mix64(args.seed ^ 0xA));

    println!("newton serving sweep: {desc}, seed {}", args.seed);
    let t0 = std::time::Instant::now();

    // Shared scheduler knobs: 100 µs SLO, bounded queue, batched
    // dispatch, exponential retry backoff from a 256-cycle base.
    let base = |pattern: ArrivalPattern, seed: u64| TrafficConfig {
        pattern,
        requests,
        seed,
        deadline_ns: 100_000.0,
        queue_capacity: 32,
        max_batch: 8,
        retry_backoff_cycles: 256,
        conventional: None,
    };
    let poisson = ArrivalPattern::Poisson { rate_per_us: 0.05 };
    let bursty = ArrivalPattern::Bursty {
        base_rate_per_us: 0.01,
        peak_rate_per_us: 1.0,
        period_us: 200.0,
        burst_fraction: 0.2,
    };
    let fault_after = (requests / 8) as u64;
    let spec = ber_1e5_spec(mix64(args.seed ^ 0xB), m, n, channels);

    let cells = [
        Cell {
            name: "poisson/no_fault",
            traffic: base(poisson, args.seed ^ 1),
            chaos: ChaosPlan::none(),
            expects_faults: false,
            expects_retirement: false,
        },
        Cell {
            name: "poisson/ber_1e5_ecc",
            traffic: base(poisson, args.seed ^ 1),
            chaos: ChaosPlan::faults_after(fault_after, spec),
            expects_faults: true,
            expects_retirement: false,
        },
        Cell {
            name: "bursty/no_fault",
            traffic: base(bursty, args.seed ^ 2),
            chaos: ChaosPlan::none(),
            expects_faults: false,
            expects_retirement: false,
        },
        Cell {
            name: "bursty/ber_1e5_ecc",
            traffic: base(bursty, args.seed ^ 2),
            chaos: ChaosPlan::faults_after(fault_after, spec),
            expects_faults: true,
            expects_retirement: false,
        },
        Cell {
            name: "degraded/stuck_ecc",
            traffic: base(poisson, args.seed ^ 3),
            chaos: ChaosPlan {
                events: vec![ChaosEvent {
                    after_completed: fault_after,
                    action: ChaosAction::StuckWord {
                        channel: 0,
                        bank: 2,
                    },
                }],
            },
            expects_faults: true,
            expects_retirement: true,
        },
    ];

    let mut snap = MetricsSnapshot::new("bench_pr8");
    snap.text("workload", desc)
        .count("seed", args.seed)
        .count("channels", channels as u64)
        .count("matrix_rows", m as u64)
        .count("matrix_cols", n as u64)
        .count("requests_per_cell", requests as u64)
        .scalar("slo_deadline_ns", 100_000.0);

    let columns: Vec<String> = [
        "cell",
        "completed",
        "shed",
        "expired",
        "retries",
        "retired",
        "sched_hits",
        "sched_miss",
        "sched_inv",
        "sdc",
        "p50_ns",
        "p99_ns",
        "p999_ns",
        "qps",
        "j_per_q",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let mut rows: Vec<Vec<String>> = Vec::new();

    for cell in &cells {
        let r = run_cell(cell, &cfg, &matrix, m, n, args.seed);
        println!(
            "  {:<22} completed {:>4}/{:<4} shed {:>3}  expired {:>3}  retries {:>2}  \
             retired {}  sched {}h/{}m/{}i  sdc {}  p50 {:>9.0} ns  p99 {:>9.0} ns  \
             qps {:>8.0}  {:.3e} J/q",
            cell.name,
            r.completed,
            r.offered,
            r.shed,
            r.expired,
            r.retries,
            r.recovery.retired_banks.len(),
            r.schedule_hits,
            r.schedule_misses,
            r.schedule_invalidations,
            r.sdc,
            r.p50_ns,
            r.p99_ns,
            r.qps,
            r.joules_per_query,
        );
        r.record_into(&mut snap, cell.name);
        rows.push(vec![
            cell.name.to_string(),
            r.completed.to_string(),
            r.shed.to_string(),
            r.expired.to_string(),
            r.retries.to_string(),
            r.recovery.retired_banks.len().to_string(),
            r.schedule_hits.to_string(),
            r.schedule_misses.to_string(),
            r.schedule_invalidations.to_string(),
            r.sdc.to_string(),
            format!("{:.0}", r.p50_ns),
            format!("{:.0}", r.p99_ns),
            format!("{:.0}", r.p999_ns),
            format!("{:.0}", r.qps),
            format!("{:.3e}", r.joules_per_query),
        ]);
    }
    snap.table(
        "Serving sweep: arrivals x chaos, ECC on, 100 us SLO",
        &columns,
        &rows,
    );

    let rendered = snap.render();
    if let Err(e) = std::fs::write(&args.out, &rendered) {
        eprintln!("error: cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    println!(
        "wrote {} ({:.1} s)",
        args.out.display(),
        t0.elapsed().as_secs_f64()
    );
}
