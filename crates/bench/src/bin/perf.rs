//! Performance regression harness for the functional hot path (PR 2),
//! the deterministic parallel evaluation pipeline (PR 4), and the
//! event-skipping timing engine + SIMD COMP kernels (PR 7).
//!
//! Four sections, one JSON snapshot:
//!
//! 1. **Engine × mode matrix** (PR 7): a Table II-representative
//!    matrix–vector workload (BERT small-batch layer shape, 1024 x 1024)
//!    end to end under every [`FunctionalMode`] (`Reference`, `Uncached`,
//!    `Cached`, `Simd`) crossed with both [`TimingEngine`]s (`Reference`,
//!    `EventSkipping`), verifying bit-identical outputs and identical
//!    simulated cycles across all cells. The PR 2/PR 4 keys
//!    (`reference/…`, `uncached/…`, `cached/…`) are preserved — measured
//!    on the reference timing engine, the honest "before" baseline —
//!    and the PR 7 headline `simd/…` is the Simd mode on the
//!    event-skipping engine.
//! 2. **Thread scaling** (PR 4): the same workload on 8 channels with
//!    the worker pool pinned to each `--threads` entry
//!    (`ParallelPolicy::exact`), in the PR 7 default configuration
//!    (Simd + event-skipping), verifying outputs, simulated cycles and
//!    COMP counts are bit-identical at every width.
//! 3. **Reproduce wall clock** (PR 4): the experiment harness
//!    (`newton_bench::harness`) end to end at 1 worker vs the widest
//!    requested width, verifying report text and snapshots are
//!    byte-identical and recording experiments/sec.
//! 4. **Telemetry + host phases**: one telemetry-enabled run recording
//!    the windowed series, the streamed energy (validated against the
//!    postprocessed model within 0.1%), and the host-time breakdown by
//!    simulation phase — both absolute seconds and fractional
//!    `phase_share/…` entries.
//!
//! Host caveat: `host_cores` is recorded in the snapshot; on a 1-core
//! host the scaling curve is honestly flat (the determinism assertions
//! still exercise the multi-threaded merge paths).
//!
//! Usage:
//!
//! ```sh
//! perf                   # full workload (release advisable)
//! perf --quick           # small workload for CI smoke
//! perf --threads 1,2,4,8 # worker widths for the scaling curve (default)
//! perf --out PATH        # snapshot path (default BENCH_pr7.json)
//! ```
//!
//! The snapshot is a [`newton_trace::MetricsSnapshot`] document (schema
//! version [`newton_trace::SNAPSHOT_SCHEMA_VERSION`]) so runs diff
//! across commits.

use newton_bench::harness::{run_experiments, HarnessOptions};
use newton_bf16::Bf16;
use newton_core::controller::FunctionalMode;
use newton_core::parallel::ParallelPolicy;
use newton_core::{config::NewtonConfig, system::NewtonSystem};
use newton_dram::TimingEngine;
use newton_trace::MetricsSnapshot;
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    quick: bool,
    out: PathBuf,
    threads: Vec<usize>,
}

impl Args {
    fn from_env() -> Args {
        let mut quick = false;
        let mut out = PathBuf::from("BENCH_pr7.json");
        let mut threads = vec![1, 2, 4, 8];
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--out" => match it.next() {
                    Some(v) => out = PathBuf::from(v),
                    None => {
                        eprintln!("error: --out requires a path");
                        std::process::exit(2);
                    }
                },
                "--threads" => {
                    let parsed: Option<Vec<usize>> = it.next().map(|v| {
                        v.split(',')
                            .map(|s| s.trim().parse::<usize>().ok().filter(|&n| n >= 1))
                            .collect::<Option<Vec<usize>>>()
                            .unwrap_or_default()
                    });
                    match parsed {
                        Some(list) if !list.is_empty() => threads = list,
                        _ => {
                            eprintln!(
                                "error: --threads requires a comma list of positive integers"
                            );
                            std::process::exit(2);
                        }
                    }
                }
                other => {
                    eprintln!(
                        "error: unknown argument {other:?} (try --quick / --threads LIST / --out PATH)"
                    );
                    std::process::exit(2);
                }
            }
        }
        Args {
            quick,
            out,
            threads,
        }
    }
}

/// Deterministic pseudo-random bf16 in roughly [-2, 2): keeps the adder
/// tree numerically busy without relying on any RNG crate.
fn det_bf16(seed: u64, i: u64) -> Bf16 {
    let h = (seed ^ i)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .rotate_left(31)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let frac = (h >> 40) as f32 / (1u64 << 24) as f32;
    Bf16::from_f32(frac * 4.0 - 2.0)
}

struct RunResult {
    wall_seconds: f64,
    sim_cycles: u64,
    comps: u64,
    output_bits: Vec<u32>,
}

impl RunResult {
    fn sim_cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.wall_seconds
    }
}

/// One timed measurement of steady-state simulator throughput: the matrix
/// is loaded once (untimed — a resident-weight accelerator pays that cost
/// once per model, not per inference), then `reps` batches of inferences
/// run against the resident matrix and are timed wall-clock. Every
/// configuration measures the identical command-stream workload.
#[allow(clippy::too_many_arguments)]
fn run_workload(
    cfg: &NewtonConfig,
    mode: FunctionalMode,
    engine: TimingEngine,
    m: usize,
    n: usize,
    matrix: &[Bf16],
    vectors: &[Vec<Bf16>],
    reps: usize,
) -> RunResult {
    let mut system = NewtonSystem::new(cfg.clone()).expect("config accepted");
    system.set_functional_mode(mode);
    system.set_timing_engine(engine);
    let loaded = system.load_matrix(matrix, m, n).expect("matrix load");
    // Warm-up pass, untimed (page-in, allocator steady state) — also the
    // reference output the timed runs are checked against.
    let warm: Vec<_> = vectors
        .iter()
        .map(|v| system.run_resident(&loaded, v).expect("warm-up run"))
        .collect();
    let output_bits: Vec<u32> = warm
        .iter()
        .flat_map(|r| r.output.iter().map(|x| x.to_bits()))
        .collect();

    let mut sim_cycles = 0u64;
    let mut comps = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        for vector in vectors {
            let run = system.run_resident(&loaded, vector).expect("timed run");
            sim_cycles += run.cycles;
            comps += run.stats.compute_commands;
        }
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    RunResult {
        wall_seconds,
        sim_cycles,
        comps,
        output_bits,
    }
}

fn mode_key(mode: FunctionalMode) -> &'static str {
    match mode {
        FunctionalMode::Reference => "reference",
        FunctionalMode::Uncached => "uncached",
        FunctionalMode::Cached => "cached",
        FunctionalMode::Simd => "simd",
    }
}

fn engine_key(engine: TimingEngine) -> &'static str {
    match engine {
        TimingEngine::Reference => "reference",
        TimingEngine::EventSkipping => "event_skipping",
    }
}

fn main() {
    let args = Args::from_env();
    let (m, n, batch, reps, workload) = if args.quick {
        (64, 512, 2, 1, "quick 64x512")
    } else {
        (1024, 1024, 4, 8, "BERT S1 layer 1024x1024 (Table II)")
    };
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let matrix: Vec<Bf16> = (0..m * n).map(|i| det_bf16(1, i as u64)).collect();
    let vectors: Vec<Vec<Bf16>> = (0..batch)
        .map(|b| (0..n).map(|i| det_bf16(100 + b as u64, i as u64)).collect())
        .collect();

    let mut snap = MetricsSnapshot::new("bench_pr7");

    // ------------------------------------------------------------------
    // Section 1: engine x mode matrix (single channel, serial). The PR 2
    // keys (reference/uncached/cached on the reference timing engine)
    // stay comparable across snapshots; the PR 7 headline is Simd mode
    // on the event-skipping engine. Every cell must agree bit-for-bit.
    // ------------------------------------------------------------------
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 1;
    cfg.parallel = ParallelPolicy::exact(1);

    println!("newton perf: {workload}, batch {batch}, {reps} rep(s) per cell");
    let engines = [TimingEngine::Reference, TimingEngine::EventSkipping];
    let modes = [
        FunctionalMode::Reference,
        FunctionalMode::Uncached,
        FunctionalMode::Cached,
        FunctionalMode::Simd,
    ];
    let mut cells: Vec<(TimingEngine, FunctionalMode, RunResult)> = Vec::new();
    for &engine in &engines {
        for &mode in &modes {
            let r = run_workload(&cfg, mode, engine, m, n, &matrix, &vectors, reps);
            println!(
                "  {:<14} {:<10} {:>8.3} s  {:>14.0} sim-cycles/s  {:>12.0} COMPs/s",
                engine_key(engine),
                mode_key(mode),
                r.wall_seconds,
                r.sim_cycles_per_sec(),
                r.comps as f64 / r.wall_seconds,
            );
            cells.push((engine, mode, r));
        }
    }

    // Bit-exactness gate: every (engine, mode) cell must agree with the
    // (reference engine, reference mode) oracle on output bits, simulated
    // cycles and COMP counts.
    let oracle = &cells[0].2;
    for (engine, mode, r) in &cells[1..] {
        let cell = format!("{}/{}", engine_key(*engine), mode_key(*mode));
        assert_eq!(
            r.output_bits, oracle.output_bits,
            "{cell} output differs from reference"
        );
        assert_eq!(
            r.sim_cycles, oracle.sim_cycles,
            "{cell} simulated cycles differ from reference"
        );
        assert_eq!(
            r.comps, oracle.comps,
            "{cell} COMP count differs from reference"
        );
    }

    let cell = |engine: TimingEngine, mode: FunctionalMode| -> &RunResult {
        &cells
            .iter()
            .find(|(e, mo, _)| *e == engine && *mo == mode)
            .expect("cell measured")
            .2
    };
    let reference = cell(TimingEngine::Reference, FunctionalMode::Reference);
    let cached = cell(TimingEngine::Reference, FunctionalMode::Cached);
    let simd = cell(TimingEngine::EventSkipping, FunctionalMode::Simd);
    let speedup_cached = reference.wall_seconds / cached.wall_seconds;
    let speedup_simd_vs_reference = reference.wall_seconds / simd.wall_seconds;
    let speedup_simd_vs_cached = cached.wall_seconds / simd.wall_seconds;
    println!("  speedup (cached vs reference): {speedup_cached:.2}x");
    println!("  speedup (simd+event-skipping vs reference): {speedup_simd_vs_reference:.2}x");
    println!("  speedup (simd+event-skipping vs cached): {speedup_simd_vs_cached:.2}x");

    snap.text("workload", workload)
        .text("modes", "reference, uncached, cached, simd")
        .text("engines", "reference, event_skipping")
        .count("host_cores", host_cores as u64)
        .count("matrix_rows", m as u64)
        .count("matrix_cols", n as u64)
        .count("batch", batch as u64)
        .count("reps", reps as u64)
        .count("sim_cycles_per_mode", reference.sim_cycles)
        .count("comps_per_mode", reference.comps)
        .scalar("speedup_cached_vs_reference", speedup_cached)
        .scalar("speedup_simd_vs_reference", speedup_simd_vs_reference)
        .scalar("speedup_simd_vs_cached", speedup_simd_vs_cached);
    // PR 2/PR 4-compatible per-mode keys: reference timing engine, plus
    // the PR 7 `simd/…` headline on the event-skipping engine.
    for (mo, r) in [
        (FunctionalMode::Reference, reference),
        (
            FunctionalMode::Uncached,
            cell(TimingEngine::Reference, FunctionalMode::Uncached),
        ),
        (FunctionalMode::Cached, cached),
        (FunctionalMode::Simd, simd),
    ] {
        let key = mode_key(mo);
        snap.scalar(&format!("{key}/wall_seconds"), r.wall_seconds)
            .scalar(&format!("{key}/sim_cycles_per_sec"), r.sim_cycles_per_sec())
            .scalar(
                &format!("{key}/comps_per_sec"),
                r.comps as f64 / r.wall_seconds,
            );
    }
    // The full matrix, one throughput scalar per cell.
    for (engine, mode, r) in &cells {
        snap.scalar(
            &format!(
                "engine/{}/{}/sim_cycles_per_sec",
                engine_key(*engine),
                mode_key(*mode)
            ),
            r.sim_cycles_per_sec(),
        );
    }

    // ------------------------------------------------------------------
    // Section 2: thread scaling on the channel-parallel data plane
    // (8 channels so the pool has work; ParallelPolicy::exact pins the
    // width and ignores NEWTON_THREADS), in the PR 7 default
    // configuration (Simd mode, event-skipping engine). Requested widths
    // are capped at the host's cores: oversubscribing scoped workers
    // only adds context switches (a 1-core host ran `--threads 8` 2.4x
    // slower than serial before this cap), and the determinism suite
    // already proves oversubscribed widths stay bit-exact.
    // ------------------------------------------------------------------
    let mut threads_list: Vec<usize> = Vec::new();
    for &t in &args.threads {
        let capped = t.min(host_cores);
        if !threads_list.contains(&capped) {
            threads_list.push(capped);
        }
    }
    if threads_list.len() < args.threads.len() {
        println!("note: thread widths capped at {host_cores} host core(s)");
    }
    let list_text = threads_list
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");
    println!(
        "thread scaling: {workload} on 8 channels, widths [{list_text}] (host cores: {host_cores})"
    );
    let mut par_cfg = NewtonConfig::paper_default();
    par_cfg.channels = 8;
    // One discarded pass pages in the 8-channel storage footprint so the
    // first curve point is not charged for it.
    par_cfg.parallel = ParallelPolicy::exact(threads_list[0]);
    let _ = run_workload(
        &par_cfg,
        FunctionalMode::Simd,
        TimingEngine::EventSkipping,
        m,
        n,
        &matrix,
        &vectors,
        1,
    );
    let mut first: Option<RunResult> = None;
    for &t in &threads_list {
        par_cfg.parallel = ParallelPolicy::exact(t);
        let r = run_workload(
            &par_cfg,
            FunctionalMode::Simd,
            TimingEngine::EventSkipping,
            m,
            n,
            &matrix,
            &vectors,
            reps,
        );
        println!(
            "  threads={t:<2} {:>8.3} s  {:>14.0} sim-cycles/s",
            r.wall_seconds,
            r.sim_cycles_per_sec(),
        );
        snap.scalar(&format!("threads/{t}/wall_seconds"), r.wall_seconds)
            .scalar(
                &format!("threads/{t}/sim_cycles_per_sec"),
                r.sim_cycles_per_sec(),
            );
        if let Some(base) = &first {
            assert_eq!(
                r.output_bits, base.output_bits,
                "threads={t} output differs from threads={}",
                threads_list[0]
            );
            assert_eq!(
                r.sim_cycles, base.sim_cycles,
                "threads={t} simulated cycles differ from threads={}",
                threads_list[0]
            );
            assert_eq!(
                r.comps, base.comps,
                "threads={t} COMP count differs from threads={}",
                threads_list[0]
            );
        } else {
            first = Some(r);
        }
    }
    snap.text("threads_list", &list_text);

    // ------------------------------------------------------------------
    // Section 3: experiment-harness wall clock, 1 worker vs the widest
    // requested width, with byte-identical reports asserted.
    // ------------------------------------------------------------------
    let wide = threads_list.iter().copied().max().unwrap_or(1);
    let experiments: Vec<String> = if args.quick {
        ["table2", "table3", "fig07"]
            .iter()
            .map(|s| (*s).to_string())
            .collect()
    } else {
        Vec::new() // empty filter = the full canonical experiment list
    };
    let scope = if args.quick {
        "subset table2,table3,fig07"
    } else {
        "all experiments"
    };
    println!("reproduce harness ({scope}): 1 worker vs {wide}");
    let mut harness_runs = Vec::new();
    for &t in &[1usize, wide] {
        let opts = HarnessOptions {
            filter: experiments.clone(),
            threads: Some(t),
            audit: false,
            telemetry: false,
        };
        let start = Instant::now();
        let reports = run_experiments(&opts).expect("harness run");
        let wall = start.elapsed().as_secs_f64();
        println!(
            "  threads={t:<2} {:>8.3} s  {:>6.2} experiments/s",
            wall,
            reports.len() as f64 / wall,
        );
        snap.scalar(&format!("reproduce/threads_{t}/wall_seconds"), wall)
            .scalar(
                &format!("reproduce/threads_{t}/experiments_per_sec"),
                reports.len() as f64 / wall,
            );
        harness_runs.push(reports);
    }
    let (serial, parallel) = (&harness_runs[0], &harness_runs[1]);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(parallel) {
        assert_eq!(a.name, b.name);
        assert_eq!(
            a.text, b.text,
            "{}: report text differs across widths",
            a.name
        );
        assert_eq!(
            a.snapshot.render(),
            b.snapshot.render(),
            "{}: snapshot differs across widths",
            a.name
        );
    }
    println!("  reports byte-identical across widths: ok");

    // ------------------------------------------------------------------
    // Section 4: streaming telemetry + host-phase self-profiling. One
    // telemetry-enabled run of the workload records the windowed series,
    // the streamed energy (validated against the postprocessed model
    // within the Fig. 13 0.1% divergence gate), and the host-time
    // breakdown by simulation phase — absolute and as fractional shares.
    // ------------------------------------------------------------------
    println!("telemetry: windowed series + host-phase breakdown");
    let mut tel_cfg = NewtonConfig::paper_default();
    tel_cfg.channels = 8;
    tel_cfg.parallel = ParallelPolicy::serial();
    tel_cfg.telemetry = Some(newton_core::TelemetryConfig::default());
    let mut system = NewtonSystem::new(tel_cfg).expect("config accepted");
    let runs = system
        .run_mv_batch(&matrix, m, n, &vectors)
        .expect("telemetry run");
    let series = runs
        .last()
        .and_then(newton_core::system::SystemRun::merged_telemetry)
        .expect("telemetry enabled");
    let energy_model = newton_trace::EnergyModel::new();
    let streamed_pj = series.totals().energy_milli_pj as f64 / 1000.0;
    let model_pj = series.dynamic_energy_pj(&energy_model);
    let divergence = if model_pj == 0.0 {
        0.0
    } else {
        (streamed_pj - model_pj).abs() / model_pj
    };
    assert!(
        divergence <= 1e-3,
        "streamed energy {streamed_pj} pJ diverges from model {model_pj} pJ"
    );
    println!(
        "  {} windows of {} cycles; streamed {:.0} pJ vs model {:.0} pJ (divergence {:.2e})",
        series.windows().len(),
        series.window_cycles(),
        streamed_pj,
        model_pj,
        divergence,
    );
    snap.count("telemetry/window_cycles", series.window_cycles())
        .count("telemetry/windows", series.windows().len() as u64)
        .scalar("telemetry/streamed_energy_pj", streamed_pj)
        .scalar("telemetry/model_energy_pj", model_pj)
        .scalar("telemetry/energy_divergence", divergence)
        .count(
            "telemetry/refresh_energy_milli_pj",
            series.totals().refresh_milli_pj,
        );
    let phases = system.host_phases();
    let total = phases.total_nanos().max(1) as f64;
    for p in phases.phases() {
        let share = p.nanos as f64 / total;
        println!(
            "  phase {:<8} {:>6} call(s) {:>9.3} s  {:>5.1}%",
            p.name,
            p.calls,
            p.nanos as f64 / 1e9,
            share * 100.0,
        );
        snap.count(&format!("telemetry/phase/{}/calls", p.name), p.calls)
            .scalar(
                &format!("telemetry/phase/{}/seconds", p.name),
                p.nanos as f64 / 1e9,
            )
            .scalar(&format!("phase_share/{}", p.name), share);
    }

    let rendered = snap.render();
    if let Err(e) = std::fs::write(&args.out, &rendered) {
        eprintln!("error: cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    println!("wrote {}", args.out.display());
}
