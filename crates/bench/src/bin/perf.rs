//! Performance regression harness for the functional hot path (PR 2).
//!
//! Runs a Table II-representative matrix–vector workload (BERT
//! small-batch layer shape, 1024 x 1024) end to end under each
//! [`FunctionalMode`] — `Reference` (the pre-cache per-COMP decode
//! oracle), `Uncached` (stack-only kernels over raw row bytes) and
//! `Cached` (decoded-weight row cache, the default) — verifies the three
//! produce bit-identical outputs and identical simulated cycles, then
//! reports simulated-cycles/sec and COMPs/sec of host wall-clock time
//! for each and writes a versioned JSON snapshot.
//!
//! Usage:
//!
//! ```sh
//! perf                  # full workload (1024 x 1024, release advisable)
//! perf --quick          # small workload for CI smoke (64 x 512)
//! perf --out PATH       # snapshot path (default BENCH_pr2.json)
//! ```
//!
//! The snapshot is a [`newton_trace::MetricsSnapshot`] document (schema
//! version [`newton_trace::SNAPSHOT_SCHEMA_VERSION`]) so runs diff
//! across commits.

use newton_bf16::Bf16;
use newton_core::controller::FunctionalMode;
use newton_core::{config::NewtonConfig, system::NewtonSystem};
use newton_trace::MetricsSnapshot;
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    quick: bool,
    out: PathBuf,
}

impl Args {
    fn from_env() -> Args {
        let mut quick = false;
        let mut out = PathBuf::from("BENCH_pr2.json");
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--out" => match it.next() {
                    Some(v) => out = PathBuf::from(v),
                    None => {
                        eprintln!("error: --out requires a path");
                        std::process::exit(2);
                    }
                },
                other => {
                    eprintln!("error: unknown argument {other:?} (try --quick / --out PATH)");
                    std::process::exit(2);
                }
            }
        }
        Args { quick, out }
    }
}

/// Deterministic pseudo-random bf16 in roughly [-2, 2): keeps the adder
/// tree numerically busy without relying on any RNG crate.
fn det_bf16(seed: u64, i: u64) -> Bf16 {
    let h = (seed ^ i)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .rotate_left(31)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let frac = (h >> 40) as f32 / (1u64 << 24) as f32;
    Bf16::from_f32(frac * 4.0 - 2.0)
}

struct ModeResult {
    mode: FunctionalMode,
    wall_seconds: f64,
    sim_cycles: u64,
    comps: u64,
    output_bits: Vec<u32>,
}

/// One timed end-to-end measurement: matrix load plus a batch of
/// inferences against the resident matrix, repeated `reps` times on a
/// fresh system per repetition (so every mode pays the same load cost).
fn run_mode(
    cfg: &NewtonConfig,
    mode: FunctionalMode,
    m: usize,
    n: usize,
    matrix: &[Bf16],
    vectors: &[Vec<Bf16>],
    reps: usize,
) -> ModeResult {
    // Warm-up pass, untimed (page-in, allocator steady state).
    let mut system = NewtonSystem::new(cfg.clone()).expect("config accepted");
    system.set_functional_mode(mode);
    let warm = system
        .run_mv_batch(matrix, m, n, vectors)
        .expect("warm-up run");
    let output_bits: Vec<u32> = warm
        .iter()
        .flat_map(|r| r.output.iter().map(|x| x.to_bits()))
        .collect();

    let mut sim_cycles = 0u64;
    let mut comps = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        let mut system = NewtonSystem::new(cfg.clone()).expect("config accepted");
        system.set_functional_mode(mode);
        let runs = system
            .run_mv_batch(matrix, m, n, vectors)
            .expect("timed run");
        for run in &runs {
            sim_cycles += run.cycles;
            comps += run.stats.compute_commands;
        }
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    ModeResult {
        mode,
        wall_seconds,
        sim_cycles,
        comps,
        output_bits,
    }
}

fn mode_key(mode: FunctionalMode) -> &'static str {
    match mode {
        FunctionalMode::Reference => "reference",
        FunctionalMode::Uncached => "uncached",
        FunctionalMode::Cached => "cached",
    }
}

fn main() {
    let args = Args::from_env();
    let (m, n, batch, reps, workload) = if args.quick {
        (64, 512, 2, 1, "quick 64x512")
    } else {
        (1024, 1024, 4, 3, "BERT S1 layer 1024x1024 (Table II)")
    };

    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 1;

    let matrix: Vec<Bf16> = (0..m * n).map(|i| det_bf16(1, i as u64)).collect();
    let vectors: Vec<Vec<Bf16>> = (0..batch)
        .map(|b| (0..n).map(|i| det_bf16(100 + b as u64, i as u64)).collect())
        .collect();

    println!("newton perf: {workload}, batch {batch}, {reps} rep(s) per mode");
    let modes = [
        FunctionalMode::Reference,
        FunctionalMode::Uncached,
        FunctionalMode::Cached,
    ];
    let results: Vec<ModeResult> = modes
        .iter()
        .map(|&mode| {
            let r = run_mode(&cfg, mode, m, n, &matrix, &vectors, reps);
            println!(
                "  {:<10} {:>8.3} s  {:>14.0} sim-cycles/s  {:>12.0} COMPs/s",
                mode_key(mode),
                r.wall_seconds,
                r.sim_cycles as f64 / r.wall_seconds,
                r.comps as f64 / r.wall_seconds,
            );
            r
        })
        .collect();

    // Bit-exactness gate: every mode must agree with the reference oracle
    // on output bits, simulated cycles and COMP counts.
    let reference = &results[0];
    for r in &results[1..] {
        assert_eq!(
            r.output_bits,
            reference.output_bits,
            "{} output differs from reference",
            mode_key(r.mode)
        );
        assert_eq!(
            r.sim_cycles,
            reference.sim_cycles,
            "{} simulated cycles differ from reference",
            mode_key(r.mode)
        );
        assert_eq!(
            r.comps,
            reference.comps,
            "{} COMP count differs from reference",
            mode_key(r.mode)
        );
    }

    let cached = results
        .iter()
        .find(|r| r.mode == FunctionalMode::Cached)
        .expect("cached mode measured");
    let speedup = reference.wall_seconds / cached.wall_seconds;
    println!("  speedup (cached vs reference): {speedup:.2}x");

    let mut snap = MetricsSnapshot::new("bench_pr2");
    snap.text("workload", workload)
        .text("modes", "reference, uncached, cached")
        .count("matrix_rows", m as u64)
        .count("matrix_cols", n as u64)
        .count("batch", batch as u64)
        .count("reps", reps as u64)
        .count("sim_cycles_per_mode", reference.sim_cycles)
        .count("comps_per_mode", reference.comps)
        .scalar("speedup_cached_vs_reference", speedup);
    for r in &results {
        let key = mode_key(r.mode);
        snap.scalar(&format!("{key}/wall_seconds"), r.wall_seconds)
            .scalar(
                &format!("{key}/sim_cycles_per_sec"),
                r.sim_cycles as f64 / r.wall_seconds,
            )
            .scalar(
                &format!("{key}/comps_per_sec"),
                r.comps as f64 / r.wall_seconds,
            );
    }
    let rendered = snap.render();
    if let Err(e) = std::fs::write(&args.out, &rendered) {
        eprintln!("error: cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    println!("wrote {}", args.out.display());
}
