//! Fault-injection campaign sweep (PR 5): raw bit-error rate vs
//! silent-data-corruption, with SECDED ECC off and on.
//!
//! For each raw bit-error rate the campaign injects a deterministic set
//! of faults (single-bit flips plus a proportion of double-bit words,
//! drawn from the counter-based stream in `newton_dram::faults`) into
//! the resident matrix of a freshly loaded system, then runs the same
//! inference and compares output bits against the fault-free golden run:
//!
//! * **ECC off** — faults flow straight into the adder trees; corrupted
//!   output elements are counted as silent data corruption (SDC).
//! * **ECC on** — every activate scrubs the row through the SECDED
//!   (72,64) code and every COMP operand fetch is checked; single-bit
//!   faults are corrected in place, double-bit faults surface as typed
//!   uncorrectable errors and the resilient run path (scrub-rewrite,
//!   then bank retirement) retries to a clean result. The campaign
//!   asserts **zero** SDC in every ECC-on cell.
//!
//! The sweep is a pure function of the `--seed`: outputs, counters and
//! the JSON snapshot are byte-identical for every `NEWTON_THREADS`
//! width (wall-clock is printed but never persisted).
//!
//! Usage:
//!
//! ```sh
//! campaign                 # full sweep (64x1024, 2 channels)
//! campaign --quick         # small sweep for CI smoke
//! campaign --seed N        # campaign stream seed (default 5)
//! campaign --out PATH      # snapshot path (default BENCH_pr5.json)
//! ```

use newton_bf16::Bf16;
use newton_core::system::{LoadedMatrix, NewtonSystem};
use newton_core::{config::NewtonConfig, AimError, RecoveryReport};
use newton_dram::faults::{self, mix64, CampaignSpec};
use newton_trace::MetricsSnapshot;
use std::path::PathBuf;

struct Args {
    quick: bool,
    out: PathBuf,
    seed: u64,
}

impl Args {
    fn from_env() -> Args {
        let mut quick = false;
        let mut out = PathBuf::from("BENCH_pr5.json");
        let mut seed = 5u64;
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--out" => match it.next() {
                    Some(v) => out = PathBuf::from(v),
                    None => {
                        eprintln!("error: --out requires a path");
                        std::process::exit(2);
                    }
                },
                "--seed" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                    Some(v) => seed = v,
                    None => {
                        eprintln!("error: --seed requires an integer");
                        std::process::exit(2);
                    }
                },
                other => {
                    eprintln!(
                        "error: unknown argument {other:?} (try --quick / --seed N / --out PATH)"
                    );
                    std::process::exit(2);
                }
            }
        }
        Args { quick, out, seed }
    }
}

/// Deterministic pseudo-random bf16 in roughly [-2, 2) (same generator
/// as the perf harness; no RNG crate).
fn det_bf16(seed: u64, i: u64) -> Bf16 {
    let h = (seed ^ i)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .rotate_left(31)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let frac = (h >> 40) as f32 / (1u64 << 24) as f32;
    Bf16::from_f32(frac * 4.0 - 2.0)
}

/// The raw bit-error rates swept, as (label, rate) pairs.
const RATES: &[(&str, f64)] = &[("0", 0.0), ("1e-6", 1e-6), ("1e-5", 1e-5), ("1e-4", 1e-4)];

/// One campaign cell's measured outcome. The recovery ladder's work is
/// kept as a full [`RecoveryReport`] so the snapshot serialization is the
/// shared `record_into` path (auditable keys identical across harnesses).
struct Outcome {
    injected: u64,
    sdc: u64,
    corrected: u64,
    uncorrectable: u64,
    report: RecoveryReport,
}

/// Resident-matrix bits per channel (the fault universe the rate
/// applies to).
fn resident_bits(sys: &NewtonSystem) -> Vec<u64> {
    sys.channels()
        .iter()
        .map(|ch| {
            let s = ch.channel().storage();
            (s.allocated_row_indices().len() * s.row_bytes() * 8) as u64
        })
        .collect()
}

fn build_system(
    ecc: bool,
    channels: usize,
    matrix: &[Bf16],
    m: usize,
    n: usize,
) -> Result<(NewtonSystem, LoadedMatrix), AimError> {
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = channels;
    cfg.ecc = ecc;
    let mut sys = NewtonSystem::new(cfg)?;
    let loaded = sys.load_matrix(matrix, m, n)?;
    Ok((sys, loaded))
}

/// The fixed workload every campaign cell runs: the clean matrix and
/// vector, their shape, and the golden output bits.
struct Workload {
    channels: usize,
    m: usize,
    n: usize,
    matrix: Vec<Bf16>,
    vector: Vec<Bf16>,
    golden: Vec<u32>,
}

fn run_cell(ecc: bool, rate: f64, cell_seed: u64, w: &Workload) -> Result<Outcome, AimError> {
    let (mut sys, loaded) = build_system(ecc, w.channels, &w.matrix, w.m, w.n)?;
    let bits = resident_bits(&sys);
    let mut injected = 0u64;
    for (ch, &channel_bits) in bits.iter().enumerate() {
        #[expect(
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss,
            reason = "flip counts are tiny (rate <= 1e-4 of a few Mbit)"
        )]
        let singles = (rate * channel_bits as f64).round() as usize;
        // A slice of the error budget lands as double-bit words, so the
        // uncorrectable path is exercised at realistic rates too.
        let doubles = singles / 8;
        let spec = CampaignSpec {
            seed: cell_seed,
            single_bit_flips: singles - 2 * doubles,
            double_bit_words: doubles,
            stuck_cells: 0,
            retention: None,
        }
        .for_channel(ch);
        let now = sys.channels()[ch].now();
        let faults = faults::inject(sys.channels_mut()[ch].channel_mut(), now, &spec)?;
        injected += faults.len() as u64;
    }

    let (run, report) = if ecc {
        sys.run_resident_resilient(&loaded, &w.matrix, &w.vector)?
    } else {
        // Without ECC nothing is detected, so the ladder never engages:
        // one attempt, nothing scrubbed or retired.
        let run = sys.run_resident(&loaded, &w.vector)?;
        (
            run,
            RecoveryReport {
                attempts: 1,
                scrub_rewrites: 0,
                retired_banks: Vec::new(),
                capacity_fraction: 1.0,
            },
        )
    };

    let sdc = run
        .output
        .iter()
        .zip(&w.golden)
        .filter(|(v, &g)| v.to_bits() != g)
        .count() as u64;
    let (mut corrected, mut uncorrectable) = (0u64, 0u64);
    for ch in sys.channels() {
        corrected += ch.channel().stats().ecc_corrected;
        uncorrectable += ch.channel().stats().ecc_uncorrectable;
    }
    Ok(Outcome {
        injected,
        sdc,
        corrected,
        uncorrectable,
        report,
    })
}

fn main() {
    let args = Args::from_env();
    let (m, n, channels, desc) = if args.quick {
        (32, 512, 2, "quick 32x512, 2 channels")
    } else {
        (64, 1024, 2, "64x1024, 2 channels")
    };
    let matrix: Vec<Bf16> = (0..m * n).map(|i| det_bf16(2, i as u64)).collect();
    let vector: Vec<Bf16> = (0..n).map(|i| det_bf16(3, i as u64)).collect();

    println!("newton fault campaign: {desc}, seed {}", args.seed);
    let t0 = std::time::Instant::now();

    // The fault-free golden run every cell is compared against, bit for
    // bit. ECC on a clean system is output-invariant, so one golden
    // serves both columns.
    let (mut sys, loaded) = build_system(false, channels, &matrix, m, n).expect("golden system");
    let golden: Vec<u32> = sys
        .run_resident(&loaded, &vector)
        .expect("golden run")
        .output
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let w = Workload {
        channels,
        m,
        n,
        matrix,
        vector,
        golden,
    };

    let mut snap = MetricsSnapshot::new("bench_pr5");
    snap.text("workload", desc)
        .count("seed", args.seed)
        .count("channels", channels as u64)
        .count("matrix_rows", m as u64)
        .count("matrix_cols", n as u64);

    let columns: Vec<String> = [
        "rate",
        "ecc",
        "injected",
        "sdc",
        "corrected",
        "uncorr",
        "attempts",
        "scrubs",
        "retired",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let mut rows: Vec<Vec<String>> = Vec::new();

    for (ri, &(label, rate)) in RATES.iter().enumerate() {
        for ecc in [false, true] {
            let cell_seed = mix64(args.seed ^ ((ri as u64) << 1 | u64::from(ecc)));
            let out = run_cell(ecc, rate, cell_seed, &w).expect("campaign cell");
            let ecc_key = if ecc { "on" } else { "off" };
            println!(
                "  rate {label:>5}  ecc {ecc_key:<3}  injected {:>4}  sdc {:>3}  corrected {:>4}  \
                 uncorrectable {:>2}  attempts {}  scrubs {}  retired {}",
                out.injected,
                out.sdc,
                out.corrected,
                out.uncorrectable,
                out.report.attempts,
                out.report.scrub_rewrites,
                out.report.retired_banks.len(),
            );

            // The campaign's headline guarantees, enforced, not implied.
            if ecc {
                assert_eq!(
                    out.sdc, 0,
                    "rate {label}: ECC must never let corrupted data reach an output"
                );
            }
            if !ecc && rate >= 1e-5 {
                assert!(
                    out.sdc > 0,
                    "rate {label}: without ECC the campaign must measure nonzero SDC"
                );
            }
            if rate == 0.0 {
                assert_eq!(out.injected, 0);
                assert_eq!(out.sdc, 0, "fault-free runs match golden bit for bit");
            }

            let p = format!("rate_{label}/ecc_{ecc_key}");
            snap.count(&format!("{p}/injected"), out.injected)
                .count(&format!("{p}/sdc"), out.sdc)
                .count(&format!("{p}/corrected"), out.corrected)
                .count(&format!("{p}/uncorrectable"), out.uncorrectable);
            out.report.record_into(&mut snap, &p);
            rows.push(vec![
                label.to_string(),
                ecc_key.to_string(),
                out.injected.to_string(),
                out.sdc.to_string(),
                out.corrected.to_string(),
                out.uncorrectable.to_string(),
                out.report.attempts.to_string(),
                out.report.scrub_rewrites.to_string(),
                out.report.retired_banks.len().to_string(),
            ]);
        }
    }
    snap.table("Fault campaign: BER sweep, ECC off/on", &columns, &rows);

    let rendered = snap.render();
    if let Err(e) = std::fs::write(&args.out, &rendered) {
        eprintln!("error: cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    println!(
        "wrote {} ({:.1} s)",
        args.out.display(),
        t0.elapsed().as_secs_f64()
    );
}
