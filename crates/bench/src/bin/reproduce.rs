//! Regenerates every table and figure of the Newton (MICRO 2020)
//! evaluation in one run. See EXPERIMENTS.md for the paper-vs-measured
//! record.
//!
//! Usage:
//!
//! ```sh
//! reproduce                        # everything (~35 s in release)
//! reproduce --list                 # list experiment names
//! reproduce --only fig09          # any subset, by substring (comma-separated)
//! reproduce --threads N           # worker-pool width (default: NEWTON_THREADS or host cores)
//! reproduce --snapshot-dir DIR    # where metrics snapshots go (default target/snapshots)
//! reproduce --no-snapshots        # skip snapshot files
//! reproduce --audit               # timing-audit every channel's command stream
//! reproduce --telemetry           # windowed time-series + energy attribution
//! ```
//!
//! With `--telemetry`, every channel collects a windowed time series
//! (bandwidth, bank utilization, queue depth, ganged-ACT width, ECC
//! corrections) with per-command energy attribution, and the Fig. 13
//! experiment validates the streamed energy against the postprocessed
//! power model: event counts bit-for-bit, picojoules within 0.1%.
//!
//! With `--audit`, every channel records its full command stream and
//! re-validates it against the raw timing constraints (tRCD, tRP, tRAS,
//! tCCD, tRRD, tFAW, tRTP, tWR, tRFC, tREFI) at the end of each run; a
//! violation aborts the experiment with a typed error instead of
//! producing silently-wrong timing numbers.
//!
//! The experiments run on a bounded worker pool
//! (`newton_bench::harness`); reports and snapshot files are merged in
//! the canonical order, so the output is byte-identical for every
//! `--threads` value (`--threads 1` is the fully serial reference).
//!
//! Besides the printed tables, every experiment writes a versioned JSON
//! metrics snapshot (`<snapshot-dir>/<experiment>.json`, schema version
//! `newton_trace::SNAPSHOT_SCHEMA_VERSION`) so results diff across
//! commits.

use newton_bench::harness::{run_experiments, HarnessOptions, EXPERIMENTS};
use newton_bench::snapshot::SnapshotWriter;
use std::path::PathBuf;

struct Args {
    opts: HarnessOptions,
    snapshot_dir: Option<PathBuf>,
}

impl Args {
    fn from_env() -> Args {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--list") {
            println!("experiments: {}", EXPERIMENTS.join(", "));
            std::process::exit(0);
        }
        let mut only = Vec::new();
        let mut threads = None;
        let mut audit = false;
        let mut telemetry = false;
        let mut snapshot_dir = Some(PathBuf::from("target/snapshots"));
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--only" => match it.next() {
                    Some(v) => only.extend(v.split(',').map(|s| s.trim().to_string())),
                    None => {
                        eprintln!("error: --only requires a value (try --list)");
                        std::process::exit(2);
                    }
                },
                "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => threads = Some(n),
                    _ => {
                        eprintln!("error: --threads requires a positive integer");
                        std::process::exit(2);
                    }
                },
                "--snapshot-dir" => match it.next() {
                    Some(v) => snapshot_dir = Some(PathBuf::from(v)),
                    None => {
                        eprintln!("error: --snapshot-dir requires a path");
                        std::process::exit(2);
                    }
                },
                "--no-snapshots" => snapshot_dir = None,
                "--audit" => audit = true,
                "--telemetry" => telemetry = true,
                _ => {}
            }
        }
        // Reject filters that match nothing rather than silently running
        // an empty evaluation.
        for f in &only {
            if !EXPERIMENTS.iter().any(|e| e.contains(f.as_str())) {
                eprintln!("error: no experiment matches {f:?} (try --list)");
                std::process::exit(2);
            }
        }
        Args {
            opts: HarnessOptions {
                filter: only,
                threads,
                audit,
                telemetry,
            },
            snapshot_dir,
        }
    }
}

fn main() {
    let args = Args::from_env();
    let t0 = std::time::Instant::now();
    println!("Newton (MICRO 2020) reproduction\n");

    let reports = match run_experiments(&args.opts) {
        Ok(reports) => reports,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    // Reports arrive in canonical order regardless of the pool width:
    // print, then persist, in that same order.
    let mut snapshots = SnapshotWriter::new(args.snapshot_dir.as_deref());
    for r in &reports {
        print!("{}", r.text);
        if let Err(e) = snapshots.write(&r.snapshot) {
            eprintln!(
                "warning: snapshot {} not written: {e}",
                r.snapshot.experiment()
            );
        }
    }

    if !snapshots.written().is_empty() {
        println!(
            "metrics snapshots: {} file(s) in {}",
            snapshots.written().len(),
            args.snapshot_dir
                .as_deref()
                .map(|p| p.display().to_string())
                .unwrap_or_default()
        );
    }
    println!(
        "workers: {} thread(s); total wall time: {:.1} s",
        args.opts.threads(),
        t0.elapsed().as_secs_f64()
    );
}
