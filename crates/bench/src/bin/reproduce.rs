//! Regenerates every table and figure of the Newton (MICRO 2020)
//! evaluation in one run. See EXPERIMENTS.md for the paper-vs-measured
//! record.
//!
//! Usage:
//!
//! ```sh
//! reproduce                        # everything (~35 s in release)
//! reproduce --list                 # list experiment names
//! reproduce --only fig09          # any subset, by substring (comma-separated)
//! reproduce --snapshot-dir DIR    # where metrics snapshots go (default target/snapshots)
//! reproduce --no-snapshots        # skip snapshot files
//! ```
//!
//! Besides the printed tables, every experiment writes a versioned JSON
//! metrics snapshot (`<snapshot-dir>/<experiment>.json`, schema version
//! `newton_trace::SNAPSHOT_SCHEMA_VERSION`) so results diff across
//! commits.

use newton_bench::report::{fns, fx, geomean, Table};
use newton_bench::snapshot::{add_table, SnapshotWriter};
use newton_bench::*;
use newton_trace::MetricsSnapshot;
use newton_workloads::Benchmark;
use std::path::PathBuf;

const EXPERIMENTS: &[&str] = &[
    "table2",
    "table3",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "ablations",
    "extensions",
];

struct Args {
    only: Vec<String>,
    snapshot_dir: Option<PathBuf>,
}

impl Args {
    fn from_env() -> Args {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--list") {
            println!("experiments: {}", EXPERIMENTS.join(", "));
            std::process::exit(0);
        }
        let mut only = Vec::new();
        let mut snapshot_dir = Some(PathBuf::from("target/snapshots"));
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--only" => match it.next() {
                    Some(v) => only.extend(v.split(',').map(|s| s.trim().to_string())),
                    None => {
                        eprintln!("error: --only requires a value (try --list)");
                        std::process::exit(2);
                    }
                },
                "--snapshot-dir" => match it.next() {
                    Some(v) => snapshot_dir = Some(PathBuf::from(v)),
                    None => {
                        eprintln!("error: --snapshot-dir requires a path");
                        std::process::exit(2);
                    }
                },
                "--no-snapshots" => snapshot_dir = None,
                _ => {}
            }
        }
        // Reject filters that match nothing rather than silently running
        // an empty evaluation.
        for f in &only {
            if !EXPERIMENTS.iter().any(|e| e.contains(f.as_str())) {
                eprintln!("error: no experiment matches {f:?} (try --list)");
                std::process::exit(2);
            }
        }
        Args { only, snapshot_dir }
    }

    fn wants(&self, name: &str) -> bool {
        self.only.is_empty() || self.only.iter().any(|f| name.contains(f.as_str()))
    }
}

fn main() {
    let args = Args::from_env();
    let filter = &args;
    let mut snapshots = SnapshotWriter::new(args.snapshot_dir.as_deref());
    let mut save = |snap: &MetricsSnapshot| {
        if let Err(e) = snapshots.write(snap) {
            eprintln!("warning: snapshot {} not written: {e}", snap.experiment());
        }
    };
    let t0 = std::time::Instant::now();
    println!("Newton (MICRO 2020) reproduction\n");

    if filter.wants("table2") {
        let mut t = Table::new(&["Table II workload", "matrix", "vector", "weights"]);
        for b in Benchmark::all() {
            let s = b.shape();
            t.row(&[
                b.name().into(),
                format!("{} x {}", s.m, s.n),
                format!("{} x 1", s.n),
                format!("{:.1} MB", s.matrix_bytes() as f64 / 1e6),
            ]);
        }
        println!("{}", t.render());
        let mut snap = MetricsSnapshot::new("table2");
        snap.count("workloads", Benchmark::all().len() as u64);
        add_table(&mut snap, "Table II: workloads", &t);
        save(&snap);
    }

    if filter.wants("table3") {
        let mv = model_validation().expect("model validation");
        println!("Sec. III-F model vs simulator (speedup over Ideal Non-PIM):");
        println!("  paper formula : {}", fx(mv.paper_model_x));
        println!("  refined model : {}", fx(mv.refined_model_x));
        println!("  measured      : {}\n", fx(mv.measured_x));
        let mut snap = MetricsSnapshot::new("table3");
        snap.scalar("paper_model_x", mv.paper_model_x)
            .scalar("refined_model_x", mv.refined_model_x)
            .scalar("measured_x", mv.measured_x);
        save(&snap);
    }

    if filter.wants("fig07") {
        println!("Fig. 7 command timeline (one DRAM row across all banks, first 44 commands):");
        let trace = fig07_command_trace().expect("fig07");
        for line in trace.lines().take(44) {
            println!("  {line}");
        }
        println!();
        let mut snap = MetricsSnapshot::new("fig07");
        snap.count("commands", trace.lines().count() as u64);
        save(&snap);
    }

    let needs_layers = filter.wants("fig08")
        || filter.wants("fig11")
        || filter.wants("fig12")
        || filter.wants("fig13");
    let layers = if needs_layers {
        let layers = measure_all_layers(&newton_core::NewtonConfig::paper_default())
            .expect("layer measurements");
        for m in &layers {
            assert!(
                m.numerics_ok,
                "{}: numeric error {} out of bounds",
                m.benchmark.name(),
                m.max_numeric_error
            );
        }
        layers
    } else {
        Vec::new()
    };

    if filter.wants("fig08") {
        println!("Fig. 8 (left): per-layer speedup over the Titan-V-like GPU");
        let rows = fig08_layers(&layers).expect("fig08 layers");
        let mut snap = MetricsSnapshot::new("fig08");
        snap.scalar(
            "geomean_newton_x",
            geomean(&rows.iter().map(|r| r.newton_x).collect::<Vec<_>>()),
        )
        .scalar(
            "geomean_ideal_x",
            geomean(&rows.iter().map(|r| r.ideal_x).collect::<Vec<_>>()),
        );
        let mut t = Table::new(&["layer", "Newton", "Ideal Non-PIM", "Non-opt-Newton"]);
        for r in &rows {
            t.row(&[
                r.name.clone(),
                fx(r.newton_x),
                fx(r.ideal_x),
                fx(r.nonopt_x),
            ]);
        }
        println!("{}", t.render());
        println!("paper: geomean Newton 54x, Ideal 5.4x, Non-opt 1.48x\n");
        add_table(&mut snap, "Fig. 8 (left): per-layer speedup vs GPU", &t);

        // Cycle attribution behind the speedups: where Newton's banks spend
        // their time, and the bandwidth the Ideal stream actually sustained.
        let mut attr = Table::new(&[
            "layer",
            "Newton bank util",
            "Newton acts",
            "Ideal ext BW (B/ns)",
        ]);
        for m in &layers {
            let util = if m.newton_summaries.is_empty() {
                0.0
            } else {
                m.newton_summaries
                    .iter()
                    .map(newton_dram::stats::RunSummary::bank_utilization)
                    .sum::<f64>()
                    / m.newton_summaries.len() as f64
            };
            let acts: u64 = m.newton_summaries.iter().map(|s| s.stats.activates).sum();
            attr.row(&[
                m.benchmark.name().into(),
                format!("{util:.3}"),
                acts.to_string(),
                format!("{:.2}", m.ideal_summary.external_bandwidth()),
            ]);
        }
        add_table(
            &mut snap,
            "Attribution: Newton vs Ideal DRAM activity",
            &attr,
        );

        println!("Fig. 8 (right): end-to-end speedup over the Titan-V-like GPU");
        let rows = fig08_end_to_end().expect("fig08 e2e");
        let mut t = Table::new(&["model", "Newton", "Ideal Non-PIM", "Non-opt-Newton"]);
        for r in &rows {
            t.row(&[
                r.name.clone(),
                fx(r.newton_x),
                fx(r.ideal_x),
                fx(r.nonopt_x),
            ]);
        }
        println!("{}", t.render());
        println!("paper: DLRM 47x, AlexNet 1.2x, mean(all) 20x, mean(key targets) 49x\n");
        add_table(&mut snap, "Fig. 8 (right): end-to-end speedup vs GPU", &t);
        save(&snap);
    }

    if filter.wants("fig09") {
        println!("Fig. 9: isolating Newton's optimizations (geomean over layers)");
        let rows = fig09_ladder().expect("fig09");
        let mut t = Table::new(&["configuration", "speedup vs GPU"]);
        for r in &rows {
            t.row(&[r.level.label().into(), fx(r.speedup_x)]);
        }
        println!("{}", t.render());
        let mut snap = MetricsSnapshot::new("fig09");
        add_table(&mut snap, "Fig. 9: optimization ladder", &t);
        save(&snap);
    }

    if filter.wants("fig10") {
        println!("Fig. 10: sensitivity to banks per channel");
        let rows = fig10_bank_sweep().expect("fig10");
        let mut t = Table::new(&["layer", "8 banks", "16 banks", "32 banks"]);
        for r in &rows {
            t.row(&[
                r.name.clone(),
                fx(r.speedup_x[0]),
                fx(r.speedup_x[1]),
                fx(r.speedup_x[2]),
            ]);
        }
        println!("{}", t.render());
        println!("paper: geomean 28x / 54x / 96x\n");
        let mut snap = MetricsSnapshot::new("fig10");
        add_table(&mut snap, "Fig. 10: banks-per-channel sensitivity", &t);
        save(&snap);
    }

    let batch_header = || -> Vec<String> {
        ["layer", "arch"]
            .iter()
            .map(|s| (*s).to_string())
            .chain(BATCH_SIZES.iter().map(|k| format!("k={k}")))
            .collect()
    };

    if filter.wants("fig11") {
        println!("Fig. 11: batch sensitivity vs Ideal Non-PIM (perf normalized to GPU @ k=1)");
        let rows = fig11_batch_vs_ideal(&layers).expect("fig11");
        let header = batch_header();
        let hrefs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(&hrefs);
        for r in &rows {
            let mut newton = vec![r.name.clone(), "Newton".into()];
            newton.extend(r.newton.iter().map(|v| fx(*v)));
            t.row(&newton);
            let mut ideal = vec![String::new(), "Ideal".into()];
            ideal.extend(r.other.iter().map(|v| fx(*v)));
            t.row(&ideal);
        }
        println!("{}", t.render());
        println!("paper: Ideal nearly catches Newton at k=8, ~1.6x ahead at k=16\n");
        let mut snap = MetricsSnapshot::new("fig11");
        add_table(&mut snap, "Fig. 11: batch sensitivity vs Ideal Non-PIM", &t);
        save(&snap);
    }

    if filter.wants("fig12") {
        println!("Fig. 12: batch sensitivity vs GPU (perf normalized to GPU @ k=1)");
        let rows = fig12_batch_vs_gpu(&layers);
        let header = batch_header();
        let hrefs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(&hrefs);
        for r in &rows {
            let mut newton = vec![r.name.clone(), "Newton".into()];
            newton.extend(r.newton.iter().map(|v| fx(*v)));
            t.row(&newton);
            let mut gpu = vec![String::new(), "GPU".into()];
            gpu.extend(r.other.iter().map(|v| fx(*v)));
            t.row(&gpu);
        }
        println!("{}", t.render());
        println!("paper: the GPU needs batch 64 to outperform Newton\n");
        let mut snap = MetricsSnapshot::new("fig12");
        add_table(&mut snap, "Fig. 12: batch sensitivity vs GPU", &t);
        save(&snap);
    }

    if filter.wants("fig13") {
        println!("Fig. 13: Newton average power normalized to conventional DRAM");
        let rows = fig13_power(&layers);
        let mut t = Table::new(&["workload", "normalized power"]);
        for r in &rows {
            t.row(&[r.name.clone(), format!("{:.2}x", r.normalized_power)]);
        }
        println!("{}", t.render());
        println!("paper: ~2.8x mean\n");
        let mut snap = MetricsSnapshot::new("fig13");
        snap.scalar(
            "mean_normalized_power",
            rows.iter().map(|r| r.normalized_power).sum::<f64>() / rows.len().max(1) as f64,
        );
        add_table(&mut snap, "Fig. 13: normalized power", &t);
        save(&snap);
    }

    if filter.wants("ablations") {
        println!("Ablation (Sec. III-C): interleaved full-reuse vs Newton-no-reuse");
        let rows = ablation_layout().expect("ablation layout");
        let mut snap = MetricsSnapshot::new("ablations");
        let mut t = Table::new(&["layer", "Newton", "no-reuse", "slowdown"]);
        let mut slow = Vec::new();
        for r in &rows {
            slow.push(r.slowdown());
            t.row(&[
                r.name.clone(),
                fns(r.newton_ns),
                fns(r.variant_ns),
                fx(r.slowdown()),
            ]);
        }
        t.row(&[
            "geomean".into(),
            String::new(),
            String::new(),
            fx(geomean(&slow)),
        ]);
        println!("{}", t.render());
        snap.scalar("no_reuse_geomean_slowdown", geomean(&slow));
        add_table(
            &mut snap,
            "Ablation: interleaved full-reuse vs no-reuse",
            &t,
        );

        println!("Ablation (Sec. III-C): four result latches per bank vs full Newton");
        let rows = ablation_latches().expect("ablation latches");
        let mut t = Table::new(&["layer", "Newton", "4-latch", "ratio"]);
        for r in &rows {
            t.row(&[
                r.name.clone(),
                fns(r.newton_ns),
                fns(r.variant_ns),
                fx(r.slowdown()),
            ]);
        }
        println!("{}", t.render());
        add_table(&mut snap, "Ablation: four result latches per bank", &t);
        save(&snap);
    }

    if filter.wants("extensions") {
        println!("Extension (Sec. III-E): Newton across DRAM families");
        let rows = ext_dram_families().expect("families");
        let mut snap = MetricsSnapshot::new("extensions");
        let mut t = Table::new(&["family", "banks", "measured", "model"]);
        for r in &rows {
            t.row(&[
                r.name.into(),
                r.banks.to_string(),
                fx(r.measured_x),
                fx(r.predicted_x),
            ]);
        }
        println!("{}", t.render());
        add_table(&mut snap, "Extension: DRAM families", &t);

        println!("Extension (Sec. V-C): channel scaling (GNMTs1)");
        let rows = ext_channel_sweep().expect("sweep");
        let mut t = Table::new(&["channels", "layer time", "efficiency"]);
        for r in &rows {
            t.row(&[
                r.channels.to_string(),
                fns(r.newton_ns),
                format!("{:.0}%", r.efficiency * 100.0),
            ]);
        }
        println!("{}", t.render());
        add_table(&mut snap, "Extension: channel scaling", &t);
        save(&snap);
    }

    if !snapshots.written().is_empty() {
        println!(
            "metrics snapshots: {} file(s) in {}",
            snapshots.written().len(),
            args.snapshot_dir
                .as_deref()
                .map(|p| p.display().to_string())
                .unwrap_or_default()
        );
    }
    println!("total wall time: {:.1} s", t0.elapsed().as_secs_f64());
}
