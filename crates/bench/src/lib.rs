//! The experiment harness: one function per table/figure of the Newton
//! paper's evaluation, shared by the `cargo bench` targets, the
//! `reproduce` binary, and the integration tests.
//!
//! Every experiment returns plain data rows so callers can print, assert,
//! or serialize them. See `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured record produced by these functions.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod experiments;
pub mod harness;
pub mod report;
pub mod snapshot;

pub use experiments::*;
