//! Metrics-snapshot writing for the `reproduce` harness.
//!
//! Every experiment `reproduce` runs can be captured as a versioned JSON
//! document ([`newton_trace::MetricsSnapshot`], schema version
//! [`newton_trace::SNAPSHOT_SCHEMA_VERSION`]) next to its printed
//! figure/table, so results diff across commits instead of being
//! eyeballed from terminal output.

use crate::report::Table;
use newton_trace::MetricsSnapshot;
use std::io;
use std::path::{Path, PathBuf};

/// Adds a rendered [`Table`] to `snap` under `title`.
pub fn add_table(snap: &mut MetricsSnapshot, title: &str, table: &Table) {
    snap.table(title, table.header(), table.rows());
}

/// Writes one snapshot file per experiment into a directory.
#[derive(Debug)]
pub struct SnapshotWriter {
    dir: Option<PathBuf>,
    written: Vec<PathBuf>,
}

impl SnapshotWriter {
    /// A writer targeting `dir`; `None` disables writing entirely.
    #[must_use]
    pub fn new(dir: Option<&Path>) -> SnapshotWriter {
        SnapshotWriter {
            dir: dir.map(Path::to_path_buf),
            written: Vec::new(),
        }
    }

    /// Serializes `snap` to `<dir>/<experiment>.json` (creating the
    /// directory on first use). A disabled writer is a no-op.
    ///
    /// # Errors
    ///
    /// I/O errors from directory creation or the file write.
    pub fn write(&mut self, snap: &MetricsSnapshot) -> io::Result<()> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", snap.experiment()));
        std::fs::write(&path, snap.render())?;
        self.written.push(path);
        Ok(())
    }

    /// Paths written so far, in write order.
    #[must_use]
    pub fn written(&self) -> &[PathBuf] {
        &self.written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_trace::{JsonValue, SNAPSHOT_SCHEMA_VERSION};

    #[test]
    fn disabled_writer_writes_nothing() {
        let mut w = SnapshotWriter::new(None);
        w.write(&MetricsSnapshot::new("x")).unwrap();
        assert!(w.written().is_empty());
    }

    #[test]
    fn writes_versioned_json_per_experiment() {
        let dir = std::env::temp_dir().join("newton-snapshot-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = SnapshotWriter::new(Some(&dir));

        let mut table = Table::new(&["workload", "speedup"]);
        table.row(&["GNMTs1".into(), "10.00x".into()]);
        let mut snap = MetricsSnapshot::new("fig99");
        snap.scalar("geomean", 10.0);
        add_table(&mut snap, "Fig. 99", &table);
        w.write(&snap).unwrap();

        assert_eq!(w.written().len(), 1);
        let text = std::fs::read_to_string(&w.written()[0]).unwrap();
        let doc = JsonValue::parse(&text).unwrap();
        assert_eq!(
            doc.get("schema_version").unwrap().as_f64(),
            Some(SNAPSHOT_SCHEMA_VERSION as f64)
        );
        assert_eq!(doc.get("experiment").unwrap().as_str(), Some("fig99"));
        let tables = doc.get("tables").unwrap().as_array().unwrap();
        assert_eq!(
            tables[0].get("columns").unwrap().as_array().unwrap()[0].as_str(),
            Some("workload")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
