//! The deterministic parallel experiment harness behind the `reproduce`
//! binary.
//!
//! Each table/figure of the evaluation is an independent job: it renders
//! its printed text into a [`String`] and collects its metrics into a
//! [`MetricsSnapshot`] instead of writing to stdout directly. Jobs run on
//! a bounded worker pool ([`newton_core::parallel`]) and their reports
//! are merged back in the canonical [`EXPERIMENTS`] order — never in
//! completion order — so the printed output, the snapshot files, and any
//! error surfaced are byte-identical for every worker count (including
//! `NEWTON_THREADS=1`, the fully serial reference).
//!
//! Shared heavy work is hoisted: the full-Newton Table II layer
//! measurements feed Figs. 8/11/12/13 and are computed once (themselves
//! in parallel, one layer per worker) before the job pool starts.

use std::fmt::Write as _;

use newton_core::config::NewtonConfig;
use newton_core::parallel::{self, ParallelPolicy};
use newton_core::AimError;
use newton_trace::MetricsSnapshot;
use newton_workloads::Benchmark;

use crate::experiments::{
    ablation_latches_with, ablation_layout_with, ext_channel_sweep_with, ext_dram_families_with,
    fig07_command_trace, fig08_end_to_end_with, fig08_layers_with, fig09_ladder_with,
    fig10_bank_sweep_with, fig11_batch_vs_ideal, fig12_batch_vs_gpu, fig13_energy_validation,
    fig13_power, measure_all_layers_with, model_validation, LayerMeasurement, BATCH_SIZES,
};
use crate::report::{fns, fx, geomean, Table};
use crate::snapshot::add_table;

/// Every experiment name, in the canonical report order.
pub const EXPERIMENTS: &[&str] = &[
    "table2",
    "table3",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "ablations",
    "extensions",
];

/// One experiment's rendered output: the text that would previously have
/// gone straight to stdout, plus the versioned metrics snapshot.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// The canonical experiment name (an [`EXPERIMENTS`] entry).
    pub name: &'static str,
    /// The printed report, exactly as the serial harness would emit it.
    pub text: String,
    /// The metrics snapshot (`<snapshot-dir>/<name>.json`).
    pub snapshot: MetricsSnapshot,
}

/// Harness selection and worker-pool options.
#[derive(Debug, Clone, Default)]
pub struct HarnessOptions {
    /// Substring filters over [`EXPERIMENTS`]; empty selects everything.
    pub filter: Vec<String>,
    /// Worker-pool width. `None` resolves through the default
    /// [`ParallelPolicy`], so `NEWTON_THREADS` applies; `Some(n)` pins
    /// the width regardless of the environment.
    pub threads: Option<usize>,
    /// Run every experiment with the channel timing audit enabled
    /// (`reproduce --audit`): each channel records its full command
    /// stream and re-validates it against the raw timing constraints at
    /// the end of every run; any violation aborts the experiment with
    /// [`AimError::AuditFailed`](newton_core::AimError::AuditFailed).
    pub audit: bool,
    /// Run every experiment with streaming telemetry enabled
    /// (`reproduce --telemetry`): each channel collects a windowed
    /// time series with per-command energy attribution, and Fig. 13
    /// additionally validates the streamed energy against the
    /// postprocessed model (counts bit-for-bit, pJ within 0.1%).
    pub telemetry: bool,
}

impl HarnessOptions {
    /// Whether `name` passes the filter.
    #[must_use]
    pub fn wants(&self, name: &str) -> bool {
        self.filter.is_empty() || self.filter.iter().any(|f| name.contains(f.as_str()))
    }

    /// The selected experiments, always in canonical order (the filter
    /// narrows the set; it never reorders).
    #[must_use]
    pub fn selected(&self) -> Vec<&'static str> {
        EXPERIMENTS
            .iter()
            .copied()
            .filter(|e| self.wants(e))
            .collect()
    }

    /// The resolved worker-pool width. Explicit `--threads` requests are
    /// capped at the host's available parallelism — oversubscribing the
    /// job pool cannot help and measurably hurts on small hosts (the
    /// determinism suite, which *wants* oversubscription, pins widths
    /// through [`ParallelPolicy::exact`] instead).
    #[must_use]
    pub fn threads(&self) -> usize {
        let host = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        self.threads
            .unwrap_or_else(|| ParallelPolicy::default().threads())
            .min(host)
            .max(1)
    }
}

/// Runs the selected experiments on a bounded worker pool and returns
/// their reports in canonical order.
///
/// Determinism contract: for a fixed repository state the returned
/// reports (text bytes, snapshot contents, and error — if any — in
/// index order) are identical for every `threads` value.
///
/// # Errors
///
/// Propagates the lowest-canonical-order simulator error.
///
/// # Panics
///
/// Panics if a Table II layer fails its numeric check against the `f64`
/// reference (the same gate the serial harness applied).
pub fn run_experiments(opts: &HarnessOptions) -> Result<Vec<ExperimentReport>, AimError> {
    newton_core::set_audit_mode(opts.audit);
    newton_core::set_telemetry_mode(opts.telemetry);
    let names = opts.selected();
    let threads = opts.threads();

    // Figs. 8/11/12/13 share the full-Newton layer measurements; compute
    // them once, before the job pool, layer-parallel.
    let needs_layers = names
        .iter()
        .any(|n| matches!(*n, "fig08" | "fig11" | "fig12" | "fig13"));
    let layers = if needs_layers {
        let layers = measure_all_layers_with(&NewtonConfig::paper_default(), threads)?;
        for m in &layers {
            assert!(
                m.numerics_ok,
                "{}: numeric error {} out of bounds",
                m.benchmark.name(),
                m.max_numeric_error
            );
        }
        layers
    } else {
        Vec::new()
    };
    let layers: &[LayerMeasurement] = &layers;

    type Job<'a> = Box<dyn Fn() -> Result<ExperimentReport, AimError> + Sync + 'a>;
    let jobs: Vec<Job<'_>> = names
        .iter()
        .map(|&name| -> Job<'_> {
            match name {
                "table2" => Box::new(report_table2),
                "table3" => Box::new(report_table3),
                "fig07" => Box::new(report_fig07),
                "fig08" => Box::new(move || report_fig08(layers, threads)),
                "fig09" => Box::new(move || report_fig09(threads)),
                "fig10" => Box::new(move || report_fig10(threads)),
                "fig11" => Box::new(move || report_fig11(layers)),
                "fig12" => Box::new(move || report_fig12(layers)),
                "fig13" => Box::new(move || report_fig13(layers)),
                "ablations" => Box::new(move || report_ablations(threads)),
                "extensions" => Box::new(move || report_extensions(threads)),
                other => unreachable!("unknown experiment {other}"),
            }
        })
        .collect();
    parallel::par_map_indexed(jobs.len(), threads, |i| jobs[i]())
        .into_iter()
        .collect()
}

fn report_table2() -> Result<ExperimentReport, AimError> {
    let mut t = Table::new(&["Table II workload", "matrix", "vector", "weights"]);
    for b in Benchmark::all() {
        let s = b.shape();
        t.row(&[
            b.name().into(),
            format!("{} x {}", s.m, s.n),
            format!("{} x 1", s.n),
            format!("{:.1} MB", s.matrix_bytes() as f64 / 1e6),
        ]);
    }
    let mut text = String::new();
    let _ = writeln!(text, "{}", t.render());
    let mut snap = MetricsSnapshot::new("table2");
    snap.count("workloads", Benchmark::all().len() as u64);
    add_table(&mut snap, "Table II: workloads", &t);
    Ok(ExperimentReport {
        name: "table2",
        text,
        snapshot: snap,
    })
}

fn report_table3() -> Result<ExperimentReport, AimError> {
    let mv = model_validation()?;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Sec. III-F model vs simulator (speedup over Ideal Non-PIM):"
    );
    let _ = writeln!(text, "  paper formula : {}", fx(mv.paper_model_x));
    let _ = writeln!(text, "  refined model : {}", fx(mv.refined_model_x));
    let _ = writeln!(text, "  measured      : {}\n", fx(mv.measured_x));
    let mut snap = MetricsSnapshot::new("table3");
    snap.scalar("paper_model_x", mv.paper_model_x)
        .scalar("refined_model_x", mv.refined_model_x)
        .scalar("measured_x", mv.measured_x);
    Ok(ExperimentReport {
        name: "table3",
        text,
        snapshot: snap,
    })
}

fn report_fig07() -> Result<ExperimentReport, AimError> {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Fig. 7 command timeline (one DRAM row across all banks, first 44 commands):"
    );
    let trace = fig07_command_trace()?;
    for line in trace.lines().take(44) {
        let _ = writeln!(text, "  {line}");
    }
    let _ = writeln!(text);
    let mut snap = MetricsSnapshot::new("fig07");
    snap.count("commands", trace.lines().count() as u64);
    Ok(ExperimentReport {
        name: "fig07",
        text,
        snapshot: snap,
    })
}

fn report_fig08(layers: &[LayerMeasurement], threads: usize) -> Result<ExperimentReport, AimError> {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Fig. 8 (left): per-layer speedup over the Titan-V-like GPU"
    );
    let rows = fig08_layers_with(layers, threads)?;
    let mut snap = MetricsSnapshot::new("fig08");
    snap.scalar(
        "geomean_newton_x",
        geomean(&rows.iter().map(|r| r.newton_x).collect::<Vec<_>>()),
    )
    .scalar(
        "geomean_ideal_x",
        geomean(&rows.iter().map(|r| r.ideal_x).collect::<Vec<_>>()),
    );
    let mut t = Table::new(&["layer", "Newton", "Ideal Non-PIM", "Non-opt-Newton"]);
    for r in &rows {
        t.row(&[
            r.name.clone(),
            fx(r.newton_x),
            fx(r.ideal_x),
            fx(r.nonopt_x),
        ]);
    }
    let _ = writeln!(text, "{}", t.render());
    let _ = writeln!(
        text,
        "paper: geomean Newton 54x, Ideal 5.4x, Non-opt 1.48x\n"
    );
    add_table(&mut snap, "Fig. 8 (left): per-layer speedup vs GPU", &t);

    // Cycle attribution behind the speedups: where Newton's banks spend
    // their time, and the bandwidth the Ideal stream actually sustained.
    let mut attr = Table::new(&[
        "layer",
        "Newton bank util",
        "Newton acts",
        "Ideal ext BW (B/ns)",
    ]);
    for m in layers {
        let util = if m.newton_summaries.is_empty() {
            0.0
        } else {
            m.newton_summaries
                .iter()
                .map(newton_dram::stats::RunSummary::bank_utilization)
                .sum::<f64>()
                / m.newton_summaries.len() as f64
        };
        let acts: u64 = m.newton_summaries.iter().map(|s| s.stats.activates).sum();
        attr.row(&[
            m.benchmark.name().into(),
            format!("{util:.3}"),
            acts.to_string(),
            format!("{:.2}", m.ideal_summary.external_bandwidth()),
        ]);
    }
    add_table(
        &mut snap,
        "Attribution: Newton vs Ideal DRAM activity",
        &attr,
    );

    let _ = writeln!(
        text,
        "Fig. 8 (right): end-to-end speedup over the Titan-V-like GPU"
    );
    let rows = fig08_end_to_end_with(threads)?;
    let mut t = Table::new(&["model", "Newton", "Ideal Non-PIM", "Non-opt-Newton"]);
    for r in &rows {
        t.row(&[
            r.name.clone(),
            fx(r.newton_x),
            fx(r.ideal_x),
            fx(r.nonopt_x),
        ]);
    }
    let _ = writeln!(text, "{}", t.render());
    let _ = writeln!(
        text,
        "paper: DLRM 47x, AlexNet 1.2x, mean(all) 20x, mean(key targets) 49x\n"
    );
    add_table(&mut snap, "Fig. 8 (right): end-to-end speedup vs GPU", &t);
    Ok(ExperimentReport {
        name: "fig08",
        text,
        snapshot: snap,
    })
}

fn report_fig09(threads: usize) -> Result<ExperimentReport, AimError> {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Fig. 9: isolating Newton's optimizations (geomean over layers)"
    );
    let rows = fig09_ladder_with(threads)?;
    let mut t = Table::new(&["configuration", "speedup vs GPU"]);
    for r in &rows {
        t.row(&[r.level.label().into(), fx(r.speedup_x)]);
    }
    let _ = writeln!(text, "{}", t.render());
    let mut snap = MetricsSnapshot::new("fig09");
    add_table(&mut snap, "Fig. 9: optimization ladder", &t);
    Ok(ExperimentReport {
        name: "fig09",
        text,
        snapshot: snap,
    })
}

fn report_fig10(threads: usize) -> Result<ExperimentReport, AimError> {
    let mut text = String::new();
    let _ = writeln!(text, "Fig. 10: sensitivity to banks per channel");
    let rows = fig10_bank_sweep_with(threads)?;
    let mut t = Table::new(&["layer", "8 banks", "16 banks", "32 banks"]);
    for r in &rows {
        t.row(&[
            r.name.clone(),
            fx(r.speedup_x[0]),
            fx(r.speedup_x[1]),
            fx(r.speedup_x[2]),
        ]);
    }
    let _ = writeln!(text, "{}", t.render());
    let _ = writeln!(text, "paper: geomean 28x / 54x / 96x\n");
    let mut snap = MetricsSnapshot::new("fig10");
    add_table(&mut snap, "Fig. 10: banks-per-channel sensitivity", &t);
    Ok(ExperimentReport {
        name: "fig10",
        text,
        snapshot: snap,
    })
}

fn batch_header() -> Vec<String> {
    ["layer", "arch"]
        .iter()
        .map(|s| (*s).to_string())
        .chain(BATCH_SIZES.iter().map(|k| format!("k={k}")))
        .collect()
}

fn report_fig11(layers: &[LayerMeasurement]) -> Result<ExperimentReport, AimError> {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Fig. 11: batch sensitivity vs Ideal Non-PIM (perf normalized to GPU @ k=1)"
    );
    let rows = fig11_batch_vs_ideal(layers)?;
    let header = batch_header();
    let hrefs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&hrefs);
    for r in &rows {
        let mut newton = vec![r.name.clone(), "Newton".into()];
        newton.extend(r.newton.iter().map(|v| fx(*v)));
        t.row(&newton);
        let mut ideal = vec![String::new(), "Ideal".into()];
        ideal.extend(r.other.iter().map(|v| fx(*v)));
        t.row(&ideal);
    }
    let _ = writeln!(text, "{}", t.render());
    let _ = writeln!(
        text,
        "paper: Ideal nearly catches Newton at k=8, ~1.6x ahead at k=16\n"
    );
    let mut snap = MetricsSnapshot::new("fig11");
    add_table(&mut snap, "Fig. 11: batch sensitivity vs Ideal Non-PIM", &t);
    Ok(ExperimentReport {
        name: "fig11",
        text,
        snapshot: snap,
    })
}

fn report_fig12(layers: &[LayerMeasurement]) -> Result<ExperimentReport, AimError> {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Fig. 12: batch sensitivity vs GPU (perf normalized to GPU @ k=1)"
    );
    let rows = fig12_batch_vs_gpu(layers);
    let header = batch_header();
    let hrefs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&hrefs);
    for r in &rows {
        let mut newton = vec![r.name.clone(), "Newton".into()];
        newton.extend(r.newton.iter().map(|v| fx(*v)));
        t.row(&newton);
        let mut gpu = vec![String::new(), "GPU".into()];
        gpu.extend(r.other.iter().map(|v| fx(*v)));
        t.row(&gpu);
    }
    let _ = writeln!(text, "{}", t.render());
    let _ = writeln!(text, "paper: the GPU needs batch 64 to outperform Newton\n");
    let mut snap = MetricsSnapshot::new("fig12");
    add_table(&mut snap, "Fig. 12: batch sensitivity vs GPU", &t);
    Ok(ExperimentReport {
        name: "fig12",
        text,
        snapshot: snap,
    })
}

fn report_fig13(layers: &[LayerMeasurement]) -> Result<ExperimentReport, AimError> {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Fig. 13: Newton average power normalized to conventional DRAM"
    );
    let rows = fig13_power(layers);
    let mut t = Table::new(&["workload", "normalized power"]);
    for r in &rows {
        t.row(&[r.name.clone(), format!("{:.2}x", r.normalized_power)]);
    }
    let _ = writeln!(text, "{}", t.render());
    let _ = writeln!(text, "paper: ~2.8x mean\n");
    // Fig. 13 is an asserted validation target, not just a printout: the
    // measured mean must stay in a band around the paper's ~2.8x (the
    // calibration anchors pin the synthetic steady state to 2.4..3.1;
    // real Table II layers include readout/turnaround slack, so the band
    // here is a little wider).
    let mean = rows
        .iter()
        .find(|r| r.name == "mean")
        .map_or(0.0, |r| r.normalized_power);
    assert!(
        (2.0..=3.4).contains(&mean),
        "Fig. 13 mean normalized power {mean:.3} left the validated 2.0..=3.4 band"
    );
    let mut snap = MetricsSnapshot::new("fig13");
    snap.scalar(
        "mean_normalized_power",
        rows.iter().map(|r| r.normalized_power).sum::<f64>() / rows.len().max(1) as f64,
    );
    add_table(&mut snap, "Fig. 13: normalized power", &t);

    // With --telemetry the layers carry windowed series: validate the
    // streamed per-command energy against the postprocessed model. The
    // event *counts* must agree bit-for-bit; the pJ totals differ only by
    // per-command milli-pJ rounding, bounded at 0.1%.
    if let Some(validation) = fig13_energy_validation(layers) {
        let _ = writeln!(
            text,
            "Energy validation: streamed per-command attribution vs postprocessed model"
        );
        let mut vt = Table::new(&["workload", "streamed pJ", "model pJ", "divergence"]);
        let mut worst = 0.0f64;
        for r in &validation {
            assert!(
                r.counts_bit_exact,
                "{}: streamed activity counts diverge from the run counters",
                r.name
            );
            worst = worst.max(r.divergence);
            vt.row(&[
                r.name.clone(),
                format!("{:.1}", r.streamed_pj),
                format!("{:.1}", r.model_pj),
                format!("{:.2e}", r.divergence),
            ]);
        }
        assert!(
            worst <= 1e-3,
            "streamed energy diverges from the postprocessed model by {worst:.2e} (> 0.1%)"
        );
        let _ = writeln!(text, "{}", vt.render());
        let _ = writeln!(text, "counts bit-exact; worst divergence {worst:.2e}\n");
        snap.scalar("max_energy_divergence", worst)
            .count("energy_validated_workloads", validation.len() as u64);
        add_table(
            &mut snap,
            "Energy validation: streamed vs postprocessed",
            &vt,
        );
    }
    Ok(ExperimentReport {
        name: "fig13",
        text,
        snapshot: snap,
    })
}

fn report_ablations(threads: usize) -> Result<ExperimentReport, AimError> {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Ablation (Sec. III-C): interleaved full-reuse vs Newton-no-reuse"
    );
    let rows = ablation_layout_with(threads)?;
    let mut snap = MetricsSnapshot::new("ablations");
    let mut t = Table::new(&["layer", "Newton", "no-reuse", "slowdown"]);
    let mut slow = Vec::new();
    for r in &rows {
        slow.push(r.slowdown());
        t.row(&[
            r.name.clone(),
            fns(r.newton_ns),
            fns(r.variant_ns),
            fx(r.slowdown()),
        ]);
    }
    t.row(&[
        "geomean".into(),
        String::new(),
        String::new(),
        fx(geomean(&slow)),
    ]);
    let _ = writeln!(text, "{}", t.render());
    snap.scalar("no_reuse_geomean_slowdown", geomean(&slow));
    add_table(
        &mut snap,
        "Ablation: interleaved full-reuse vs no-reuse",
        &t,
    );

    let _ = writeln!(
        text,
        "Ablation (Sec. III-C): four result latches per bank vs full Newton"
    );
    let rows = ablation_latches_with(threads)?;
    let mut t = Table::new(&["layer", "Newton", "4-latch", "ratio"]);
    for r in &rows {
        t.row(&[
            r.name.clone(),
            fns(r.newton_ns),
            fns(r.variant_ns),
            fx(r.slowdown()),
        ]);
    }
    let _ = writeln!(text, "{}", t.render());
    add_table(&mut snap, "Ablation: four result latches per bank", &t);
    Ok(ExperimentReport {
        name: "ablations",
        text,
        snapshot: snap,
    })
}

fn report_extensions(threads: usize) -> Result<ExperimentReport, AimError> {
    let mut text = String::new();
    let _ = writeln!(text, "Extension (Sec. III-E): Newton across DRAM families");
    let rows = ext_dram_families_with(threads)?;
    let mut snap = MetricsSnapshot::new("extensions");
    let mut t = Table::new(&["family", "banks", "measured", "model"]);
    for r in &rows {
        t.row(&[
            r.name.into(),
            r.banks.to_string(),
            fx(r.measured_x),
            fx(r.predicted_x),
        ]);
    }
    let _ = writeln!(text, "{}", t.render());
    add_table(&mut snap, "Extension: DRAM families", &t);

    let _ = writeln!(text, "Extension (Sec. V-C): channel scaling (GNMTs1)");
    let rows = ext_channel_sweep_with(threads)?;
    let mut t = Table::new(&["channels", "layer time", "efficiency"]);
    for r in &rows {
        t.row(&[
            r.channels.to_string(),
            fns(r.newton_ns),
            format!("{:.0}%", r.efficiency * 100.0),
        ]);
    }
    let _ = writeln!(text, "{}", t.render());
    add_table(&mut snap, "Extension: channel scaling", &t);
    Ok(ExperimentReport {
        name: "extensions",
        text,
        snapshot: snap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_is_canonical_order_and_substring_matched() {
        let all = HarnessOptions::default();
        assert_eq!(all.selected(), EXPERIMENTS);
        let figs = HarnessOptions {
            filter: vec!["fig1".into()],
            ..HarnessOptions::default()
        };
        assert_eq!(figs.selected(), ["fig10", "fig11", "fig12", "fig13"]);
        // Filter order never reorders the canonical sequence.
        let rev = HarnessOptions {
            filter: vec!["table3".into(), "table2".into()],
            ..HarnessOptions::default()
        };
        assert_eq!(rev.selected(), ["table2", "table3"]);
        assert!(!rev.wants("fig08"));
    }

    #[test]
    fn reports_are_identical_across_worker_counts() {
        // table2 + fig07 are cheap enough for a debug test and exercise
        // both a pure-table job and a simulation-backed job.
        let run = |threads: usize| {
            let opts = HarnessOptions {
                filter: vec!["table2".into(), "fig07".into()],
                threads: Some(threads),
                audit: false,
                telemetry: false,
            };
            run_experiments(&opts).expect("harness run")
        };
        let serial = run(1);
        assert_eq!(serial.len(), 2);
        assert_eq!(serial[0].name, "table2");
        assert_eq!(serial[1].name, "fig07");
        for threads in [2, 8] {
            let par = run(threads);
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.text, b.text, "text differs at {threads} threads");
                assert_eq!(
                    a.snapshot.render(),
                    b.snapshot.render(),
                    "snapshot differs at {threads} threads"
                );
            }
        }
    }
}
