//! One function per evaluated table/figure.
//!
//! Experiment index (see DESIGN.md §4):
//!
//! | paper | function |
//! |-------|----------|
//! | Fig. 7 | [`fig07_command_trace`] |
//! | Fig. 8 (layers) | [`fig08_layers`] |
//! | Fig. 8 (end-to-end) | [`fig08_end_to_end`] |
//! | Fig. 9 | [`fig09_ladder`] |
//! | Fig. 10 | [`fig10_bank_sweep`] |
//! | Fig. 11 | [`fig11_batch_vs_ideal`] |
//! | Fig. 12 | [`fig12_batch_vs_gpu`] |
//! | Fig. 13 | [`fig13_power`] |
//! | Sec. III-F / Table III | [`model_validation`] |
//! | Sec. III-C ablations | [`ablation_layout`], [`ablation_latches`] |

use newton_baselines::{IdealNonPim, TitanVModel};
use newton_core::config::{NewtonConfig, OptLevel};
use newton_core::lut::ActivationKind;
use newton_core::parallel::{self, ParallelPolicy};
use newton_core::system::{MvProblem, NewtonSystem, SystemRun};
use newton_core::AimError;
use newton_dram::stats::RunSummary;
use newton_model::power::ActivityCounts;
use newton_model::{PerfModel, PowerModel};
use newton_workloads::models::EndToEndModel;
use newton_workloads::reference::{self, Activation};
use newton_workloads::{generator, Benchmark};

use crate::report::geomean;

/// The harness-wide default worker count: the [`ParallelPolicy`]
/// default, so `NEWTON_THREADS` applies to every `*_with`-less entry
/// point (and `NEWTON_THREADS=1` forces the historical serial order).
#[must_use]
pub fn default_threads() -> usize {
    ParallelPolicy::default().threads()
}

/// Runs `f(0..n)` on up to `threads` workers and collects index-ordered
/// results. Merging by index (never completion order) plus surfacing the
/// lowest-index error makes the outcome identical to a serial loop for
/// every thread count — the determinism contract every experiment here
/// relies on.
fn try_par_indexed<T: Send>(
    n: usize,
    threads: usize,
    f: impl Fn(usize) -> Result<T, AimError> + Sync,
) -> Result<Vec<T>, AimError> {
    parallel::par_map_indexed(n, threads, f)
        .into_iter()
        .collect()
}

/// Converts a workloads activation to the core device's kind.
#[must_use]
pub fn to_activation_kind(a: Activation) -> ActivationKind {
    match a {
        Activation::Identity => ActivationKind::Identity,
        Activation::Relu => ActivationKind::Relu,
        Activation::Sigmoid => ActivationKind::Sigmoid,
        Activation::Tanh => ActivationKind::Tanh,
    }
}

/// One fully measured Table II layer.
#[derive(Debug, Clone)]
pub struct LayerMeasurement {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Newton single-inference time (measured, cycle simulator), ns.
    pub newton_ns: f64,
    /// Ideal Non-PIM time (measured, cycle simulator), ns.
    pub ideal_ns: f64,
    /// Titan-V-like GPU time (calibrated model), ns.
    pub gpu_ns: f64,
    /// Largest |simulated − reference| over the output vector.
    pub max_numeric_error: f64,
    /// Whether the numeric error stayed within the bf16 error envelope.
    pub numerics_ok: bool,
    /// Per-channel DRAM summaries from the Newton run (power model input).
    pub newton_summaries: Vec<RunSummary>,
    /// DRAM summary of the Ideal Non-PIM (conventional) stream.
    pub ideal_summary: RunSummary,
}

/// Measures one Table II layer on a Newton configuration.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure_layer(cfg: &NewtonConfig, b: Benchmark) -> Result<LayerMeasurement, AimError> {
    let shape = b.shape();
    let matrix = generator::matrix(shape, b.seed());
    let vector = generator::vector(shape.n, b.seed());

    let mut sys = NewtonSystem::new(cfg.clone())?;
    let run = sys.run_mv(&matrix, shape.m, shape.n, &vector)?;

    // Numerical verification against the f64 reference.
    let expect = reference::mv_f64(&matrix, shape.m, shape.n, &vector);
    let mut max_err = 0.0f64;
    let mut ok = true;
    for (got, want) in run.output.iter().zip(&expect) {
        let err = (*got as f64 - want).abs();
        max_err = max_err.max(err);
        let bound = newton_bf16::reduce::dot_error_bound(shape.n, 16, want.abs().max(1.0));
        ok &= err <= bound;
    }

    let ideal = IdealNonPim::new(cfg.dram.clone(), cfg.channels);
    let (ideal_out, ideal_summary) = ideal.run_layer_detailed(shape.m, shape.n)?;
    let gpu = TitanVModel::new();

    Ok(LayerMeasurement {
        benchmark: b,
        newton_ns: run.elapsed_ns,
        ideal_ns: ideal_out.time_ns,
        gpu_ns: gpu.mv_time_ns(shape, 1),
        max_numeric_error: max_err,
        numerics_ok: ok,
        newton_summaries: run.channel_summaries.clone(),
        ideal_summary,
    })
}

/// Measures all Table II layers under the full Newton configuration,
/// using the [`default_threads`] worker count.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure_all_layers(cfg: &NewtonConfig) -> Result<Vec<LayerMeasurement>, AimError> {
    measure_all_layers_with(cfg, default_threads())
}

/// [`measure_all_layers`] on an explicit worker count. Results are
/// bit-identical for every `threads` value (layers are independent
/// simulations merged in benchmark order).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure_all_layers_with(
    cfg: &NewtonConfig,
    threads: usize,
) -> Result<Vec<LayerMeasurement>, AimError> {
    let all = Benchmark::all();
    try_par_indexed(all.len(), threads, |i| measure_layer(cfg, all[i]))
}

// ----------------------------------------------------------------------
// Figure 8
// ----------------------------------------------------------------------

/// One bar group of Fig. 8: speedups over the GPU.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Workload name.
    pub name: String,
    /// Full Newton speedup over the GPU.
    pub newton_x: f64,
    /// Ideal Non-PIM speedup over the GPU.
    pub ideal_x: f64,
    /// Non-opt-Newton speedup over the GPU.
    pub nonopt_x: f64,
}

/// Fig. 8, left section: per-layer speedups over the Titan-V-like GPU
/// for Newton, Non-opt-Newton and Ideal Non-PIM. The final row is the
/// geometric mean.
///
/// Takes pre-computed full-Newton measurements (from
/// [`measure_all_layers`]) so the expensive cycle simulations are shared
/// with the other figures; only the Non-opt runs are measured here.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig08_layers(layers: &[LayerMeasurement]) -> Result<Vec<SpeedupRow>, AimError> {
    fig08_layers_with(layers, default_threads())
}

/// [`fig08_layers`] on an explicit worker count: the Non-opt runs (the
/// only simulations this figure adds) are measured in parallel and
/// merged in layer order.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig08_layers_with(
    layers: &[LayerMeasurement],
    threads: usize,
) -> Result<Vec<SpeedupRow>, AimError> {
    let nonopt = NewtonConfig::at_level(OptLevel::NonOpt);
    let nons = try_par_indexed(layers.len(), threads, |i| {
        measure_layer(&nonopt, layers[i].benchmark)
    })?;
    let mut rows = Vec::new();
    let (mut sn, mut si, mut so) = (Vec::new(), Vec::new(), Vec::new());
    for (m, non) in layers.iter().zip(&nons) {
        let row = SpeedupRow {
            name: m.benchmark.name().to_string(),
            newton_x: m.gpu_ns / m.newton_ns,
            ideal_x: m.gpu_ns / m.ideal_ns,
            nonopt_x: non.gpu_ns / non.newton_ns,
        };
        sn.push(row.newton_x);
        si.push(row.ideal_x);
        so.push(row.nonopt_x);
        rows.push(row);
    }
    rows.push(SpeedupRow {
        name: "geomean".into(),
        newton_x: geomean(&sn),
        ideal_x: geomean(&si),
        nonopt_x: geomean(&so),
    });
    Ok(rows)
}

/// One prepared layer: the owned weight matrix plus the `MvProblem`
/// fields (m, n, activation, batch-norm, output-keep).
type LayerProblem = (
    Vec<newton_bf16::Bf16>,
    usize,
    usize,
    Activation,
    bool,
    Option<usize>,
);

/// Builds the `MvProblem` list (and owned matrices) for an end-to-end
/// model. Weight matrices are shared per unique benchmark shape (the
/// timing is identical; host memory stays bounded).
fn model_problems(model: &EndToEndModel) -> Vec<LayerProblem> {
    model
        .layers
        .iter()
        .map(|l| {
            (
                generator::matrix(l.shape, l.benchmark.seed()),
                l.shape.m,
                l.shape.n,
                l.activation,
                l.batch_norm,
                l.output_keep,
            )
        })
        .collect()
}

/// An end-to-end measurement for one model.
#[derive(Debug, Clone)]
pub struct EndToEndMeasurement {
    /// The speedup bars.
    pub row: SpeedupRow,
    /// Newton FC time (measured), ns.
    pub newton_fc_ns: f64,
    /// GPU total model time (incl. non-FC), ns.
    pub gpu_total_ns: f64,
    /// Refreshes interposed during the Newton run.
    pub refreshes: u64,
    /// The raw Newton system run.
    pub run: SystemRun,
}

/// Runs one end-to-end model on Newton (measured) and composes the
/// GPU/Ideal comparisons, applying Amdahl's law for the non-FC fraction.
///
/// `nonopt_layer_times` maps Table II benchmarks to their measured
/// Non-opt-Newton layer times (running the 144-layer BERT at 48x command
/// traffic end-to-end is composed from per-layer measurements instead of
/// simulated, which is exact because layers are serialized anyway).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure_end_to_end(
    model: &EndToEndModel,
    nonopt_layer_times: &[(Benchmark, f64)],
) -> Result<EndToEndMeasurement, AimError> {
    let cfg = NewtonConfig::paper_default();
    let mut sys = NewtonSystem::new(cfg.clone())?;
    let problems = model_problems(model);
    let mv: Vec<MvProblem<'_>> = problems
        .iter()
        .map(|(w, m, n, act, bn, keep)| MvProblem {
            matrix: w,
            m: *m,
            n: *n,
            activation: to_activation_kind(*act),
            batch_norm: *bn,
            output_keep: *keep,
        })
        .collect();
    let input = generator::vector(model.input_len(), 0xE2E);
    let run = sys.run_model(&mv, &input)?;

    let gpu = TitanVModel::new();
    let gpu_total = gpu.model_time_ns(model, 1);
    let non_fc = gpu.non_fc_time_ns(model, 1);

    // Newton executes the FC layers; the non-FC portion still runs on the
    // host GPU (Sec. IV: AlexNet's conv layers are compute-bound and
    // unsuited for any PIM).
    let newton_total = run.elapsed_ns + non_fc;

    // Ideal Non-PIM end-to-end: stream every layer's matrix.
    let ideal = IdealNonPim::new(cfg.dram.clone(), cfg.channels);
    let shapes: Vec<(usize, usize)> = model
        .layers
        .iter()
        .map(|l| (l.shape.m, l.shape.n))
        .collect();
    let ideal_total = ideal.run_model(&shapes)?.time_ns + non_fc;

    // Non-opt Newton end-to-end: serialized per-layer times.
    let nonopt_fc: f64 = model
        .layers
        .iter()
        .map(|l| {
            nonopt_layer_times
                .iter()
                .find(|(b, _)| *b == l.benchmark)
                .map_or(0.0, |(_, t)| *t)
        })
        .sum();
    let nonopt_total = nonopt_fc + non_fc;

    Ok(EndToEndMeasurement {
        row: SpeedupRow {
            name: model.name.to_string(),
            newton_x: gpu_total / newton_total,
            ideal_x: gpu_total / ideal_total,
            nonopt_x: gpu_total / nonopt_total,
        },
        newton_fc_ns: run.elapsed_ns,
        gpu_total_ns: gpu_total,
        refreshes: run.stats.refreshes,
        run,
    })
}

/// Fig. 8, right section: end-to-end speedups for GNMT, BERT, AlexNet and
/// DLRM, plus the overall mean and the key-target (BERT/GNMT/DLRM) mean.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig08_end_to_end() -> Result<Vec<SpeedupRow>, AimError> {
    fig08_end_to_end_with(default_threads())
}

/// [`fig08_end_to_end`] on an explicit worker count: the Non-opt layer
/// times and the four end-to-end models are measured in parallel and
/// merged in their canonical order.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig08_end_to_end_with(threads: usize) -> Result<Vec<SpeedupRow>, AimError> {
    let nonopt = NewtonConfig::at_level(OptLevel::NonOpt);
    let all = Benchmark::all();
    let nonopt_times: Vec<(Benchmark, f64)> = try_par_indexed(all.len(), threads, |i| {
        measure_layer(&nonopt, all[i]).map(|m| (all[i], m.newton_ns))
    })?;

    let models = EndToEndModel::all();
    let measured = try_par_indexed(models.len(), threads, |i| {
        measure_end_to_end(&models[i], &nonopt_times)
    })?;
    let mut rows = Vec::new();
    let (mut all_n, mut all_i, mut all_o, mut key_n) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for (model, m) in models.iter().zip(measured) {
        all_n.push(m.row.newton_x);
        all_i.push(m.row.ideal_x);
        all_o.push(m.row.nonopt_x);
        if model.name != "AlexNet" {
            key_n.push(m.row.newton_x);
        }
        rows.push(m.row);
    }
    rows.push(SpeedupRow {
        name: "mean (all)".into(),
        newton_x: geomean(&all_n),
        ideal_x: geomean(&all_i),
        nonopt_x: geomean(&all_o),
    });
    rows.push(SpeedupRow {
        name: "mean (key targets)".into(),
        newton_x: geomean(&key_n),
        ideal_x: 0.0,
        nonopt_x: 0.0,
    });
    Ok(rows)
}

// ----------------------------------------------------------------------
// Figure 9
// ----------------------------------------------------------------------

/// One rung of the Fig. 9 optimization ladder.
#[derive(Debug, Clone)]
pub struct LadderRow {
    /// The cumulative optimization level.
    pub level: OptLevel,
    /// Geomean speedup over the GPU across the Table II layers.
    pub speedup_x: f64,
}

/// Fig. 9: isolating Newton's optimizations by progressively enabling
/// them (geomean over the Table II layers at each rung).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig09_ladder() -> Result<Vec<LadderRow>, AimError> {
    fig09_ladder_with(default_threads())
}

/// [`fig09_ladder`] on an explicit worker count: all
/// `ladder-rung x layer` simulations run in parallel (48 independent
/// measurements) and fold into per-rung geomeans in ladder order.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig09_ladder_with(threads: usize) -> Result<Vec<LadderRow>, AimError> {
    let levels = OptLevel::ladder();
    let benches = Benchmark::all();
    let speedups = try_par_indexed(levels.len() * benches.len(), threads, |k| {
        let cfg = NewtonConfig::at_level(levels[k / benches.len()]);
        let m = measure_layer(&cfg, benches[k % benches.len()])?;
        Ok(m.gpu_ns / m.newton_ns)
    })?;
    Ok(levels
        .iter()
        .zip(speedups.chunks(benches.len()))
        .map(|(&level, per_layer)| LadderRow {
            level,
            speedup_x: geomean(per_layer),
        })
        .collect())
}

// ----------------------------------------------------------------------
// Figure 10
// ----------------------------------------------------------------------

/// One bank-count column of Fig. 10.
#[derive(Debug, Clone)]
pub struct BankSweepRow {
    /// Benchmark name (or "geomean").
    pub name: String,
    /// Speedup over the GPU at 8, 16 and 32 banks per channel.
    pub speedup_x: [f64; 3],
}

/// Fig. 10: sensitivity to the number of banks per channel (8/16/32).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig10_bank_sweep() -> Result<Vec<BankSweepRow>, AimError> {
    fig10_bank_sweep_with(default_threads())
}

/// [`fig10_bank_sweep`] on an explicit worker count: all
/// `bank-count x layer` simulations run in parallel and fold into the
/// sweep rows in the serial (bank-count outer, layer inner) order.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig10_bank_sweep_with(threads: usize) -> Result<Vec<BankSweepRow>, AimError> {
    let bank_counts = [8usize, 16, 32];
    let benches = Benchmark::all();
    let speedups = try_par_indexed(bank_counts.len() * benches.len(), threads, |idx| {
        let mut cfg = NewtonConfig::paper_default();
        cfg.dram = cfg.dram.with_banks(bank_counts[idx / benches.len()]);
        let m = measure_layer(&cfg, benches[idx % benches.len()])?;
        Ok(m.gpu_ns / m.newton_ns)
    })?;
    let mut per_bench: Vec<BankSweepRow> = benches
        .iter()
        .map(|b| BankSweepRow {
            name: b.name().to_string(),
            speedup_x: [0.0; 3],
        })
        .collect();
    let mut means = [Vec::new(), Vec::new(), Vec::new()];
    for (k, mean) in means.iter_mut().enumerate() {
        for (j, row) in per_bench.iter_mut().enumerate() {
            let s = speedups[k * benches.len() + j];
            row.speedup_x[k] = s;
            mean.push(s);
        }
    }
    per_bench.push(BankSweepRow {
        name: "geomean".into(),
        speedup_x: [geomean(&means[0]), geomean(&means[1]), geomean(&means[2])],
    });
    Ok(per_bench)
}

// ----------------------------------------------------------------------
// Figures 11 & 12
// ----------------------------------------------------------------------

/// The batch sizes both batch figures sweep.
pub const BATCH_SIZES: [usize; 6] = [1, 2, 4, 8, 16, 64];

/// One benchmark's batch sweep: performance normalized to the GPU at
/// batch 1 (higher is better), for Newton and a comparison architecture.
#[derive(Debug, Clone)]
pub struct BatchRow {
    /// Benchmark name.
    pub name: String,
    /// Newton normalized performance per batch size (constant in k —
    /// Newton cannot exploit batch reuse, Sec. V-D).
    pub newton: Vec<f64>,
    /// Comparison architecture normalized performance per batch size.
    pub other: Vec<f64>,
}

/// Fig. 11: batch-size sensitivity against Ideal Non-PIM.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig11_batch_vs_ideal(layers: &[LayerMeasurement]) -> Result<Vec<BatchRow>, AimError> {
    let cfg = NewtonConfig::paper_default();
    let ideal = IdealNonPim::new(cfg.dram.clone(), cfg.channels);
    let mut rows = Vec::new();
    for m in layers {
        let shape = m.benchmark.shape();
        let newton: Vec<f64> = BATCH_SIZES.iter().map(|_| m.gpu_ns / m.newton_ns).collect();
        let other: Vec<f64> = BATCH_SIZES
            .iter()
            .map(|&k| Ok(m.gpu_ns / ideal.per_inference_ns(shape.m, shape.n, k)?))
            .collect::<Result<_, newton_dram::DramError>>()?;
        rows.push(BatchRow {
            name: m.benchmark.name().to_string(),
            newton,
            other,
        });
    }
    Ok(rows)
}

/// Fig. 12: batch-size sensitivity against the Titan-V-like GPU.
#[must_use]
pub fn fig12_batch_vs_gpu(layers: &[LayerMeasurement]) -> Vec<BatchRow> {
    let gpu = TitanVModel::new();
    layers
        .iter()
        .map(|m| {
            let shape = m.benchmark.shape();
            BatchRow {
                name: m.benchmark.name().to_string(),
                newton: BATCH_SIZES.iter().map(|_| m.gpu_ns / m.newton_ns).collect(),
                other: BATCH_SIZES
                    .iter()
                    .map(|&k| m.gpu_ns / gpu.per_inference_ns(shape, k))
                    .collect(),
            }
        })
        .collect()
}

// ----------------------------------------------------------------------
// Figure 13
// ----------------------------------------------------------------------

/// One bar of Fig. 13.
#[derive(Debug, Clone)]
pub struct PowerRow {
    /// Benchmark name (or "mean").
    pub name: String,
    /// Newton average power normalized to conventional DRAM at the same
    /// workload.
    pub normalized_power: f64,
}

/// Fig. 13: Newton's average power normalized to conventional DRAM.
#[must_use]
pub fn fig13_power(layers: &[LayerMeasurement]) -> Vec<PowerRow> {
    let model = PowerModel::new();
    let mut rows = Vec::new();
    let mut vals = Vec::new();
    for m in layers {
        let newton = ActivityCounts::from_aim_summaries(&m.newton_summaries);
        let conventional =
            ActivityCounts::from_conventional_summaries(std::slice::from_ref(&m.ideal_summary));
        let r = model.normalized(&newton, &conventional);
        vals.push(r);
        rows.push(PowerRow {
            name: m.benchmark.name().to_string(),
            normalized_power: r,
        });
    }
    rows.push(PowerRow {
        name: "mean".into(),
        normalized_power: vals.iter().sum::<f64>() / vals.len().max(1) as f64,
    });
    rows
}

/// One row of the streamed-vs-postprocessed energy validation: the
/// windowed per-command energy accumulated at issue time against the same
/// quantity recomputed from the end-of-run counters through the Fig. 13
/// model.
#[derive(Debug, Clone)]
pub struct EnergyValidationRow {
    /// Benchmark name.
    pub name: String,
    /// Streamed dynamic energy (sum of per-command milli-pJ attributions
    /// over every window and channel), pJ.
    pub streamed_pj: f64,
    /// The same dynamic energy recomputed from the postprocessed activity
    /// counts with the Fig. 13 coefficients, pJ.
    pub model_pj: f64,
    /// `|streamed - model| / model` (0 when the model energy is 0).
    pub divergence: f64,
    /// Whether the streamed event *counts* equal the postprocessed
    /// counters bit-for-bit (the stronger guarantee behind the pJ
    /// comparison; the pJ themselves differ only by per-command
    /// milli-pJ rounding).
    pub counts_bit_exact: bool,
}

/// Validates the streamed per-command energy attribution against the
/// postprocessed Fig. 13 model for every measured layer. Returns `None`
/// when the measurements carry no telemetry (the harness ran without
/// `--telemetry`).
#[must_use]
pub fn fig13_energy_validation(layers: &[LayerMeasurement]) -> Option<Vec<EnergyValidationRow>> {
    let model = newton_trace::EnergyModel::new();
    let mut rows = Vec::new();
    for m in layers {
        let streamed_counts = ActivityCounts::from_aim_telemetry(&m.newton_summaries)?;
        let post_counts = ActivityCounts::from_aim_summaries(&m.newton_summaries);
        let streamed_pj = m
            .newton_summaries
            .iter()
            .filter_map(|s| s.telemetry.as_ref())
            .map(|t| t.totals().energy_milli_pj)
            .sum::<u64>() as f64
            / 1000.0;
        let model_pj = model.e_act * post_counts.activates
            + model.e_array * post_counts.array_accesses
            + model.e_mac * post_counts.mac_ops
            + model.e_phy * post_counts.phy_bytes / model.col_bytes;
        let divergence = if model_pj == 0.0 {
            0.0
        } else {
            (streamed_pj - model_pj).abs() / model_pj
        };
        rows.push(EnergyValidationRow {
            name: m.benchmark.name().to_string(),
            streamed_pj,
            model_pj,
            divergence,
            counts_bit_exact: streamed_counts == post_counts,
        });
    }
    Some(rows)
}

// ----------------------------------------------------------------------
// Sec. III-F model validation (Table III configuration)
// ----------------------------------------------------------------------

/// Analytical-model-vs-simulator comparison (Sec. III-F / Sec. V-A).
#[derive(Debug, Clone, Copy)]
pub struct ModelValidation {
    /// Paper-formula predicted speedup over Ideal Non-PIM.
    pub paper_model_x: f64,
    /// Refined-formula prediction (adds the precharge turnaround the
    /// cycle simulator faithfully exposes).
    pub refined_model_x: f64,
    /// Measured speedup over Ideal Non-PIM (cycle simulator, large
    /// single-chunk layer, refresh disabled to match the model's scope).
    pub measured_x: f64,
}

/// Validates the Sec. III-F analytical model against the simulator.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn model_validation() -> Result<ModelValidation, AimError> {
    let model = PerfModel::paper_default();

    // A large single-chunk matrix on one channel isolates the steady-state
    // row-set period the model describes.
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 1;
    let (m, n) = (16 * 64, 512);
    let matrix = generator::matrix(newton_workloads::MvShape::new(m, n), 1);
    let vector = generator::vector(n, 1);

    let mut sys = NewtonSystem::new(cfg.clone())?;
    for ch in sys.channels_mut() {
        ch.channel_mut().disable_refresh();
    }
    let run = sys.run_mv(&matrix, m, n, &vector)?;

    // Ideal bound for the same data: the analytic col*tCCD per row (the
    // model's denominator), measured refresh-free.
    let rows = (m * n * 2) / 1024;
    let ideal_ns = rows as f64 * cfg.dram.cols_per_row as f64 * cfg.dram.timing.t_ccd_ns;

    Ok(ModelValidation {
        paper_model_x: model.speedup_vs_ideal(),
        refined_model_x: model.speedup_vs_ideal_refined(),
        measured_x: ideal_ns / run.elapsed_ns,
    })
}

// ----------------------------------------------------------------------
// Fig. 7 command trace
// ----------------------------------------------------------------------

/// Renders the Fig. 7-style command timeline for one DRAM row across all
/// banks (GWRITEs, 4 G_ACTs, 32 COMPs, READRES).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig07_command_trace() -> Result<String, AimError> {
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 1;
    let (m, n) = (16, 512);
    let matrix = generator::matrix(newton_workloads::MvShape::new(m, n), 7);
    let vector = generator::vector(n, 7);

    use newton_core::controller::NewtonChannel;
    use newton_core::layout::MatrixMapping;
    use newton_core::tiling::{Schedule, ScheduleKind};
    let mapping = MatrixMapping::new(
        ScheduleKind::InterleavedFullReuse.layout(),
        m,
        n,
        cfg.dram.banks,
        cfg.row_elems(),
        0,
    )?;
    let schedule = Schedule::build(ScheduleKind::InterleavedFullReuse, &mapping);
    let mut ch = NewtonChannel::new(&cfg, ActivationKind::Identity)?;
    ch.enable_trace();
    ch.load_matrix(&mapping, &matrix)?;
    ch.run_mv(&mapping, &schedule, &vector, false)?;
    Ok(ch.trace().render())
}

// ----------------------------------------------------------------------
// Ablations (Sec. III-C design alternatives)
// ----------------------------------------------------------------------

/// One ablation comparison row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Benchmark name.
    pub name: String,
    /// Baseline (full Newton) time, ns.
    pub newton_ns: f64,
    /// Variant time, ns.
    pub variant_ns: f64,
}

impl AblationRow {
    /// Variant slowdown relative to full Newton (>1 = variant slower).
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        self.variant_ns / self.newton_ns
    }
}

/// Sec. III-C: full-reuse interleaved layout vs Newton-no-reuse (the
/// input-refetch traffic dominates the output-traffic savings).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn ablation_layout() -> Result<Vec<AblationRow>, AimError> {
    ablation_layout_with(default_threads())
}

/// [`ablation_layout`] on an explicit worker count.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn ablation_layout_with(threads: usize) -> Result<Vec<AblationRow>, AimError> {
    let mut no_reuse = NewtonConfig::paper_default();
    no_reuse.opts.interleaved_reuse = false;
    ablation_with(&no_reuse, threads)
}

/// Measures every Table II layer under full Newton and under `variant`,
/// pairing the times per layer. Layer pairs run in parallel and merge in
/// benchmark order.
fn ablation_with(variant: &NewtonConfig, threads: usize) -> Result<Vec<AblationRow>, AimError> {
    let full = NewtonConfig::paper_default();
    let benches = Benchmark::all();
    try_par_indexed(benches.len(), threads, |i| {
        let b = benches[i];
        let base = measure_layer(&full, b)?;
        let var = measure_layer(variant, b)?;
        Ok(AblationRow {
            name: b.name().to_string(),
            newton_ns: base.newton_ns,
            variant_ns: var.newton_ns,
        })
    })
}

/// One row of the DRAM-family what-if (Sec. III-E extension).
#[derive(Debug, Clone)]
pub struct FamilyRow {
    /// Family label.
    pub name: &'static str,
    /// Banks per channel.
    pub banks: usize,
    /// Measured Newton time for the probe layer, ns (single channel).
    pub newton_ns: f64,
    /// Analytic external-bandwidth bound for the same data, ns.
    pub ideal_ns: f64,
    /// Measured speedup over the external-bandwidth bound.
    pub measured_x: f64,
    /// Refined-model prediction for this family.
    pub predicted_x: f64,
}

/// Sec. III-E extension: Newton's internal-vs-external bandwidth
/// advantage on other DRAM families (GDDR6-, LPDDR4-, DDR4-like), with
/// the refined analytical model's prediction alongside the measurement.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn ext_dram_families() -> Result<Vec<FamilyRow>, AimError> {
    ext_dram_families_with(default_threads())
}

/// [`ext_dram_families`] on an explicit worker count: the four family
/// probes run in parallel and merge in the fixed family order.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn ext_dram_families_with(threads: usize) -> Result<Vec<FamilyRow>, AimError> {
    use newton_dram::DramConfig;
    use newton_model::PerfModel;
    let families: [(&'static str, DramConfig); 4] = [
        ("HBM2E-like", DramConfig::hbm2e_like()),
        ("GDDR6-like", DramConfig::gddr6_like()),
        ("LPDDR4-like", DramConfig::lpddr4_like()),
        ("DDR4-like", DramConfig::ddr4_like()),
    ];
    try_par_indexed(families.len(), threads, |i| {
        let (name, dram) = &families[i];
        let mut cfg = NewtonConfig::paper_default();
        cfg.dram = dram.clone();
        cfg.channels = 1;
        let banks = dram.banks;
        // Probe: a single-chunk matrix spanning many row groups, refresh
        // disabled so the steady-state period is isolated.
        let n = cfg.row_elems();
        let m = banks * 48;
        let matrix = generator::matrix(newton_workloads::MvShape::new(m, n), 3);
        let vector = generator::vector(n, 3);
        let mut sys = NewtonSystem::new(cfg.clone())?;
        for ch in sys.channels_mut() {
            ch.channel_mut().disable_refresh();
        }
        let run = sys.run_mv(&matrix, m, n, &vector)?;
        let rows_needed = (m * n * 2) / dram.row_bytes();
        let ideal_ns = rows_needed as f64 * dram.cols_per_row as f64 * dram.timing.t_ccd_ns;
        let model = PerfModel::new(cfg.effective_dram());
        Ok(FamilyRow {
            name,
            banks,
            newton_ns: run.elapsed_ns,
            ideal_ns,
            measured_x: ideal_ns / run.elapsed_ns,
            predicted_x: model.speedup_vs_ideal_refined(),
        })
    })
}

/// One row of the channel-scaling extension (the paper's Sec. V-C note
/// that "adding channels remains an option" free of the Amdahl effect).
#[derive(Debug, Clone)]
pub struct ChannelSweepRow {
    /// Channel count.
    pub channels: usize,
    /// Measured layer time, ns.
    pub newton_ns: f64,
    /// Throughput relative to the 8-channel point.
    pub scaling: f64,
    /// Parallel efficiency vs linear scaling from 8 channels.
    pub efficiency: f64,
}

/// Channel-count scaling for one layer (GNMTs1): unlike the bank sweep
/// of Fig. 10, channel scaling avoids the activation-overhead Amdahl
/// bottleneck and stays near-linear.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn ext_channel_sweep() -> Result<Vec<ChannelSweepRow>, AimError> {
    ext_channel_sweep_with(default_threads())
}

/// [`ext_channel_sweep`] on an explicit worker count: the channel-count
/// points are simulated in parallel; scaling/efficiency (relative to the
/// first point) are derived afterwards, so the rows match the serial
/// sweep exactly.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn ext_channel_sweep_with(threads: usize) -> Result<Vec<ChannelSweepRow>, AimError> {
    let shape = Benchmark::GnmtS1.shape();
    let matrix = generator::matrix(shape, 5);
    let vector = generator::vector(shape.n, 5);
    let counts = [8usize, 16, 24, 32, 48];
    let times = try_par_indexed(counts.len(), threads, |i| {
        let mut cfg = NewtonConfig::paper_default();
        cfg.channels = counts[i];
        let mut sys = NewtonSystem::new(cfg)?;
        Ok(sys.run_mv(&matrix, shape.m, shape.n, &vector)?.elapsed_ns)
    })?;
    let base = times.first().copied().unwrap_or(0.0);
    Ok(counts
        .iter()
        .zip(&times)
        .map(|(&channels, &newton_ns)| {
            let scaling = base / newton_ns;
            let linear = channels as f64 / counts[0] as f64;
            ChannelSweepRow {
                channels,
                newton_ns,
                scaling,
                efficiency: scaling / linear,
            }
        })
        .collect())
}

/// Sec. III-C: the four-result-latch "option in between" vs full Newton
/// (the paper found them virtually similar and kept the single latch).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn ablation_latches() -> Result<Vec<AblationRow>, AimError> {
    ablation_latches_with(default_threads())
}

/// [`ablation_latches`] on an explicit worker count.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn ablation_latches_with(threads: usize) -> Result<Vec<AblationRow>, AimError> {
    let mut four = NewtonConfig::paper_default();
    four.result_latches_per_bank = 4;
    four.opts.interleaved_reuse = false; // four-latch runs the grouped layout
    ablation_with(&four, threads)
}
