//! Figure 13: Newton's average power normalized to conventional DRAM.
//!
//! Paper reference points: ~2.8x mean over the benchmarks — despite 10x
//! speedup over any non-PIM system — anchored to COMP streaming drawing
//! ~4x the power of peak-bandwidth conventional reads (Sec. IV).

use newton_bench::report::Table;
use newton_bench::{fig13_power, measure_all_layers};
use newton_core::NewtonConfig;

fn main() {
    println!("=== Fig. 13: average power normalized to conventional DRAM ===");
    let layers = measure_all_layers(&NewtonConfig::paper_default()).expect("layers");
    let rows = fig13_power(&layers);
    let mut t = Table::new(&["workload", "normalized power"]);
    for r in &rows {
        t.row(&[r.name.clone(), format!("{:.2}x", r.normalized_power)]);
    }
    println!("{}", t.render());
    println!("paper: ~2.8x mean (COMP streaming anchored at 4x peak-read power)");

    let mean = rows.last().expect("mean row").normalized_power;
    assert!(
        (1.5..4.0).contains(&mean),
        "mean normalized power {mean} outside the plausible band around the paper's 2.8x"
    );
    // Every per-benchmark value must stay below the 4x COMP-streaming
    // ceiling (overheads only dilute power).
    for r in &rows {
        assert!(
            r.normalized_power < 4.2,
            "{}: {}",
            r.name,
            r.normalized_power
        );
    }
}
