//! Ablation (Sec. III-C): the four-result-latch "option in between" vs
//! full Newton.
//!
//! Paper reference: "the former [full reuse, one latch] performs
//! virtually similarly to the latter while avoiding the latter's extra
//! result latches. Therefore, we do not pursue this option further."

use newton_bench::ablation_latches;
use newton_bench::report::{fns, fx, geomean, Table};

fn main() {
    println!("=== Ablation: 4 result latches per bank vs full Newton (1 latch) ===");
    let rows = ablation_latches().expect("ablation");
    let mut t = Table::new(&["layer", "Newton (1 latch)", "4-latch option", "ratio"]);
    let mut ratios = Vec::new();
    for r in &rows {
        ratios.push(r.slowdown());
        t.row(&[
            r.name.clone(),
            fns(r.newton_ns),
            fns(r.variant_ns),
            fx(r.slowdown()),
        ]);
    }
    t.row(&[
        "geomean".into(),
        String::new(),
        String::new(),
        fx(geomean(&ratios)),
    ]);
    println!("{}", t.render());
    println!("paper: the two options perform virtually similarly");

    let g = geomean(&ratios);
    assert!(
        (0.8..1.6).contains(&g),
        "the 4-latch option should be roughly comparable to full Newton, got {g}"
    );
}
