//! Figure 11: batch-size sensitivity against Ideal Non-PIM, normalized
//! to the GPU at batch 1.
//!
//! Paper reference points: Newton's performance is flat in k (its compute
//! cannot exploit batch reuse); Ideal Non-PIM scales linearly, nearly
//! catching Newton at k = 8 and passing it ~1.6x at k = 16.

use newton_bench::report::{fx, Table};
use newton_bench::{fig11_batch_vs_ideal, measure_all_layers, BATCH_SIZES};
use newton_core::NewtonConfig;

fn main() {
    println!("=== Fig. 11: batch sensitivity (Ideal Non-PIM), perf normalized to GPU @ k=1 ===");
    let layers = measure_all_layers(&NewtonConfig::paper_default()).expect("layers");
    let rows = fig11_batch_vs_ideal(&layers).expect("fig11");
    let header: Vec<String> = ["layer", "arch"]
        .iter()
        .map(|s| (*s).to_string())
        .chain(BATCH_SIZES.iter().map(|k| format!("k={k}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for r in &rows {
        let mut newton = vec![r.name.clone(), "Newton".into()];
        newton.extend(r.newton.iter().map(|v| fx(*v)));
        t.row(&newton);
        let mut ideal = vec![String::new(), "Ideal".into()];
        ideal.extend(r.other.iter().map(|v| fx(*v)));
        t.row(&ideal);
    }
    println!("{}", t.render());
    println!("paper: Ideal Non-PIM nearly catches Newton at k=8 and is ~1.6x faster at k=16");

    // Crossover-shape assertions (aggregate over layers).
    let ratio_at = |k_idx: usize| -> f64 {
        let mut rs = Vec::new();
        for r in &rows {
            rs.push(r.other[k_idx] / r.newton[k_idx]);
        }
        newton_bench::report::geomean(&rs)
    };
    let at1 = ratio_at(0);
    let at16 = ratio_at(4);
    assert!(at1 < 0.5, "at k=1 Ideal is far behind Newton: {at1}");
    assert!(at16 > 1.0, "at k=16 Ideal has passed Newton: {at16}");
}
