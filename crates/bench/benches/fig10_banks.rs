//! Figure 10: sensitivity to the number of banks per channel.
//!
//! Paper reference points: geomean speedup over the GPU of 28x at 8
//! banks, 54x at 16, 96x at 32 — sublinear in banks because of the
//! Amdahl's-law effect of the activation overheads (Sec. III-F's `o`).

use newton_bench::fig10_bank_sweep;
use newton_bench::report::{fx, Table};

fn main() {
    println!("=== Fig. 10: speedup vs GPU as banks/channel scale ===");
    let rows = fig10_bank_sweep().expect("fig10");
    let mut t = Table::new(&["layer", "8 banks", "16 banks", "32 banks"]);
    for r in &rows {
        t.row(&[
            r.name.clone(),
            fx(r.speedup_x[0]),
            fx(r.speedup_x[1]),
            fx(r.speedup_x[2]),
        ]);
    }
    println!("{}", t.render());
    println!("paper: geomean 28x / 54x / 96x — sublinear scaling (Amdahl on activation overhead)");

    let g = rows.last().expect("geomean row");
    assert!(g.speedup_x[0] < g.speedup_x[1] && g.speedup_x[1] < g.speedup_x[2]);
    // Sublinear: doubling banks must less-than-double the speedup.
    assert!(g.speedup_x[1] / g.speedup_x[0] < 2.0);
    assert!(g.speedup_x[2] / g.speedup_x[1] < 2.0);
}
