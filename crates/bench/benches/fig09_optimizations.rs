//! Figure 9: isolating Newton's optimizations by progressively enabling
//! them — gang, complex, reuse, four-bank, aggressive tFAW.
//!
//! Paper reference points: Non-opt-Newton at 1.48x over the GPU, each
//! optimization improving performance (ganged compute the largest single
//! step: 16x command-bandwidth reduction; complex commands a further 3x),
//! reaching 54x at full Newton.

use newton_bench::fig09_ladder;
use newton_bench::report::{fx, Table};

fn main() {
    println!("=== Fig. 9: the optimization ladder (geomean over Table II layers) ===");
    let rows = fig09_ladder().expect("fig09");
    let mut t = Table::new(&["configuration", "speedup vs GPU", "step gain"]);
    let mut prev: Option<f64> = None;
    for r in &rows {
        let gain = prev.map_or("-".to_string(), |p| format!("{:.2}x", r.speedup_x / p));
        t.row(&[r.level.label().into(), fx(r.speedup_x), gain]);
        prev = Some(r.speedup_x);
    }
    println!("{}", t.render());
    println!("paper: 1.48x (non-opt) rising monotonically to 54x (full), gang the largest step");

    // Invariant the paper states: every optimization helps.
    for w in rows.windows(2) {
        assert!(
            w[1].speedup_x >= w[0].speedup_x * 0.999,
            "{:?} regressed vs {:?}",
            w[1].level,
            w[0].level
        );
    }
    // And ganged compute is the largest single step.
    let gains: Vec<f64> = rows
        .windows(2)
        .map(|w| w[1].speedup_x / w[0].speedup_x)
        .collect();
    let max = gains.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        (gains[0] - max).abs() < 1e-9,
        "gang should be the largest step: {gains:?}"
    );
}
