//! Criterion microbenchmarks of the bf16 substrate: scalar conversion,
//! arithmetic, and the 16-input adder-tree reduction used by every COMP —
//! including the PR 2 fixed-arity stack-only kernels, with a counting
//! allocator proving they perform zero heap allocation per call.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use newton_bf16::reduce::TreePrecision;
use newton_bf16::{reduce, simd, Bf16};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts bytes handed out by the real system allocator, so benches can
/// assert a code path never touches the heap.
struct CountingAlloc;

static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation unchanged to the system allocator;
// the only addition is a relaxed byte counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap bytes allocated while running `f`.
fn alloc_delta<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATED_BYTES.load(Ordering::Relaxed);
    let r = f();
    (ALLOCATED_BYTES.load(Ordering::Relaxed) - before, r)
}

fn bench_bf16(c: &mut Criterion) {
    let xs: Vec<f32> = (0..1024).map(|i| (i as f32).sin()).collect();
    c.bench_function("bf16/from_f32 x1024", |b| {
        b.iter(|| {
            let mut acc = 0u16;
            for &x in &xs {
                acc ^= Bf16::from_f32(black_box(x)).to_bits();
            }
            acc
        })
    });

    let bf: Vec<Bf16> = xs.iter().map(|&x| Bf16::from_f32(x)).collect();
    c.bench_function("bf16/scalar mul-add x1024", |b| {
        b.iter(|| {
            let mut acc = Bf16::ZERO;
            for w in bf.chunks_exact(2) {
                acc = acc.accumulate_wide(w[0].mul_round(w[1]).to_f32());
            }
            acc
        })
    });

    let weights = &bf[..16];
    let inputs = &bf[16..32];
    c.bench_function("bf16/dot_chunk_wide (one COMP step)", |b| {
        b.iter(|| reduce::dot_chunk_wide(black_box(weights), black_box(inputs)))
    });
    c.bench_function("bf16/tree_reduce_bf16 x16", |b| {
        b.iter(|| reduce::tree_reduce_bf16(black_box(weights)))
    });

    // PR 2 fixed-arity kernels: same arithmetic, no heap traffic.
    c.bench_function("bf16/dot16_wide (stack-only)", |b| {
        b.iter(|| reduce::dot16_wide(black_box(weights), black_box(inputs)))
    });
    c.bench_function("bf16/dot16_per_stage (stack-only)", |b| {
        b.iter(|| reduce::dot16_per_stage(black_box(weights), black_box(inputs)))
    });
    let chunk_w = &bf[..64.min(bf.len())];
    let chunk_v = &bf[64..128];
    c.bench_function("bf16/comp_step_noalloc x64 (one COMP)", |b| {
        b.iter(|| {
            reduce::comp_step_noalloc(
                black_box(Bf16::ZERO),
                black_box(chunk_w),
                black_box(chunk_v),
                TreePrecision::Wide,
            )
        })
    });
}

/// PR 7 SIMD kernels: lane-array dot products, the batched row fold, and
/// the gang fold that interleaves per-bank latch chains.
fn bench_bf16_simd(c: &mut Criterion) {
    let mut w16 = [Bf16::ZERO; 16];
    let mut v16 = [Bf16::ZERO; 16];
    for i in 0..16 {
        w16[i] = Bf16::from_f32((i as f32 * 0.37).sin());
        v16[i] = Bf16::from_f32((i as f32 * 0.11).cos());
    }
    let w16p = w16.map(|x| x.to_f32());
    let v16p = v16.map(|x| x.to_f32());

    c.bench_function("bf16/dot16_wide_simd", |b| {
        b.iter(|| simd::dot16_wide_simd(black_box(&w16), black_box(&v16)))
    });
    c.bench_function("bf16/dot16_per_stage_simd", |b| {
        b.iter(|| simd::dot16_per_stage_simd(black_box(&w16), black_box(&v16)))
    });
    c.bench_function("bf16/dot16_wide_planes_simd", |b| {
        b.iter(|| simd::dot16_wide_planes_simd(black_box(&w16p), black_box(&v16p)))
    });
    c.bench_function("bf16/dot16_per_stage_planes_simd", |b| {
        b.iter(|| simd::dot16_per_stage_planes_simd(black_box(&w16p), black_box(&v16p)))
    });

    // One hbm2e-like row: 32 sub-chunks x 16 elements.
    let row_w: Vec<f32> = (0..512)
        .map(|i| Bf16::from_f32((i as f32 * 0.37).sin()).to_f32())
        .collect();
    let row_v: Vec<f32> = (0..512)
        .map(|i| Bf16::from_f32((i as f32 * 0.11).cos()).to_f32())
        .collect();
    for (name, prec) in [
        (
            "bf16/comp_subchunks16 x32 wide (one bank-row)",
            TreePrecision::Wide,
        ),
        (
            "bf16/comp_subchunks16 x32 per-stage (one bank-row)",
            TreePrecision::PerStage,
        ),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                simd::comp_subchunks16(
                    black_box(Bf16::ZERO),
                    black_box(&row_w),
                    black_box(&row_v),
                    prec,
                )
            })
        });
    }

    // Full 16-bank gang of one row-set (the event-skipping COMP payload).
    let planes: Vec<Vec<f32>> = (0..16)
        .map(|k| {
            (0..512)
                .map(|i| Bf16::from_f32(((i + 37 * k) as f32 * 0.29).sin()).to_f32())
                .collect()
        })
        .collect();
    let refs: Vec<&[f32]> = planes.iter().map(Vec::as_slice).collect();
    c.bench_function("bf16/comp_subchunks16_multi 16 banks (one row-set)", |b| {
        b.iter(|| {
            let mut latches = [Bf16::ZERO; 16];
            simd::comp_subchunks16_multi(
                black_box(&mut latches),
                black_box(&refs),
                black_box(&row_v),
                TreePrecision::Wide,
            );
            latches
        })
    });
}

/// Not a timing bench: proves the dot16/comp_step kernels never allocate.
/// Runs under `--test` too, so `cargo test` exercises the assertion.
fn bench_zero_alloc_proof(c: &mut Criterion) {
    let xs: Vec<f32> = (0..128).map(|i| (i as f32).cos()).collect();
    let bf: Vec<Bf16> = xs.iter().map(|&x| Bf16::from_f32(x)).collect();
    let (weights, inputs) = (&bf[..16], &bf[16..32]);
    let (chunk_w, chunk_v) = (&bf[..64], &bf[64..128]);

    // SIMD operands (plain slices/arrays built before the counted region).
    let mut w16 = [Bf16::ZERO; 16];
    let mut v16 = [Bf16::ZERO; 16];
    w16.copy_from_slice(&bf[..16]);
    v16.copy_from_slice(&bf[16..32]);
    let (w16p, v16p) = (w16.map(|x| x.to_f32()), v16.map(|x| x.to_f32()));
    let row_w: Vec<f32> = bf.iter().cycle().take(512).map(|x| x.to_f32()).collect();
    let row_v: Vec<f32> = bf
        .iter()
        .rev()
        .cycle()
        .take(512)
        .map(|x| x.to_f32())
        .collect();
    let planes: Vec<&[f32]> = (0..16).map(|_| row_w.as_slice()).collect();

    let (bytes, sink) = alloc_delta(|| {
        let mut acc = 0.0f32;
        let mut acc_bits = 0u16;
        let mut latches = [Bf16::ZERO; 16];
        for _ in 0..1_000 {
            acc += reduce::dot16_wide(black_box(weights), black_box(inputs));
            acc_bits ^= reduce::dot16_per_stage(black_box(weights), black_box(inputs)).to_bits();
            acc_bits ^= reduce::comp_step_noalloc(
                Bf16::ZERO,
                black_box(chunk_w),
                black_box(chunk_v),
                TreePrecision::Wide,
            )
            .to_bits();
            acc_bits ^= reduce::comp_step_noalloc(
                Bf16::ZERO,
                black_box(chunk_w),
                black_box(chunk_v),
                TreePrecision::PerStage,
            )
            .to_bits();
            // PR 7 SIMD kernels are stack-only too, batched folds included.
            acc += simd::dot16_wide_simd(black_box(&w16), black_box(&v16));
            acc_bits ^= simd::dot16_per_stage_simd(black_box(&w16), black_box(&v16)).to_bits();
            acc += simd::dot16_wide_planes_simd(black_box(&w16p), black_box(&v16p));
            acc_bits ^=
                simd::dot16_per_stage_planes_simd(black_box(&w16p), black_box(&v16p)).to_bits();
            acc_bits ^= simd::comp_subchunks16(
                Bf16::ZERO,
                black_box(&row_w),
                black_box(&row_v),
                TreePrecision::Wide,
            )
            .to_bits();
            acc_bits ^= simd::comp_subchunks16(
                Bf16::ZERO,
                black_box(&row_w),
                black_box(&row_v),
                TreePrecision::PerStage,
            )
            .to_bits();
            simd::comp_subchunks16_multi(
                black_box(&mut latches),
                black_box(&planes),
                black_box(&row_v),
                TreePrecision::Wide,
            );
            acc_bits ^= latches[0].to_bits();
        }
        (acc, acc_bits)
    });
    black_box(sink);
    assert_eq!(
        bytes, 0,
        "dot16/comp_step/SIMD kernels allocated {bytes} heap bytes over 1000 iterations"
    );
    println!("bf16/zero-alloc proof: 0 heap bytes across 11000 kernel calls");
    // Keep the harness aware this 'bench' ran (and give --test a hook).
    c.bench_function("bf16/zero-alloc proof (see assert above)", |b| {
        b.iter(|| alloc_delta(|| reduce::dot16_wide(black_box(weights), black_box(inputs))).0)
    });
}

criterion_group!(benches, bench_bf16, bench_bf16_simd, bench_zero_alloc_proof);
criterion_main!(benches);
