//! Criterion microbenchmarks of the bf16 substrate: scalar conversion,
//! arithmetic, and the 16-input adder-tree reduction used by every COMP.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use newton_bf16::{reduce, Bf16};

fn bench_bf16(c: &mut Criterion) {
    let xs: Vec<f32> = (0..1024).map(|i| (i as f32).sin()).collect();
    c.bench_function("bf16/from_f32 x1024", |b| {
        b.iter(|| {
            let mut acc = 0u16;
            for &x in &xs {
                acc ^= Bf16::from_f32(black_box(x)).to_bits();
            }
            acc
        })
    });

    let bf: Vec<Bf16> = xs.iter().map(|&x| Bf16::from_f32(x)).collect();
    c.bench_function("bf16/scalar mul-add x1024", |b| {
        b.iter(|| {
            let mut acc = Bf16::ZERO;
            for w in bf.chunks_exact(2) {
                acc = acc.accumulate_wide(w[0].mul_round(w[1]).to_f32());
            }
            acc
        })
    });

    let weights = &bf[..16];
    let inputs = &bf[16..32];
    c.bench_function("bf16/dot_chunk_wide (one COMP step)", |b| {
        b.iter(|| reduce::dot_chunk_wide(black_box(weights), black_box(inputs)))
    });
    c.bench_function("bf16/tree_reduce_bf16 x16", |b| {
        b.iter(|| reduce::tree_reduce_bf16(black_box(weights)))
    });
}

criterion_group!(benches, bench_bf16);
criterion_main!(benches);
