//! Ablation (Sec. III-C): the chunk-interleaved full-reuse layout vs the
//! Newton-no-reuse alternative.
//!
//! Paper reference: "The input traffic rise in Newton-no-reuse far
//! exceeds the output traffic fall ... causing significant performance
//! drop" — an entire input chunk is refetched per matrix DRAM row versus
//! one sub-chunk of output read out per row.

use newton_bench::ablation_layout;
use newton_bench::report::{fns, fx, geomean, Table};

fn main() {
    println!("=== Ablation: interleaved full-reuse vs Newton-no-reuse ===");
    let rows = ablation_layout().expect("ablation");
    let mut t = Table::new(&["layer", "Newton", "no-reuse", "slowdown"]);
    let mut slow = Vec::new();
    for r in &rows {
        slow.push(r.slowdown());
        t.row(&[
            r.name.clone(),
            fns(r.newton_ns),
            fns(r.variant_ns),
            fx(r.slowdown()),
        ]);
    }
    t.row(&[
        "geomean".into(),
        String::new(),
        String::new(),
        fx(geomean(&slow)),
    ]);
    println!("{}", t.render());
    println!("paper: significant performance drop for Newton-no-reuse");

    // Multi-chunk layers must slow down materially without reuse; a
    // single-chunk layer (DLRM) loses little (nothing to refetch). Our
    // penalty is milder than the paper's "significant drop" because the
    // split row/column command buses let GWRITE reloads overlap the
    // activation chain — see EXPERIMENTS.md.
    let g = geomean(&slow);
    assert!(g > 1.05, "no-reuse should cost noticeably overall, got {g}");
    for r in &rows {
        assert!(
            r.slowdown() > 0.95,
            "{}: no-reuse cannot be meaningfully faster ({})",
            r.name,
            r.slowdown()
        );
    }
}
