//! Figure 7: Newton's computation timing for one DRAM row across all
//! banks — the command timeline GWRITE* / G_ACT0..3 / COMP0..31 /
//! READRES, with G_ACTs spaced by tFAW and COMPs at the tCCD cadence.

use newton_bench::fig07_command_trace;

fn main() {
    println!("=== Fig. 7: command timeline, one DRAM row across all banks ===");
    let trace = fig07_command_trace().expect("fig07");
    println!("{trace}");

    // Structural checks mirroring the figure.
    let lines: Vec<&str> = trace.lines().collect();
    let count = |needle: &str| lines.iter().filter(|l| l.contains(needle)).count();
    assert_eq!(
        count("GWRITE"),
        32,
        "a 512-element chunk loads in 32 GWRITEs"
    );
    assert_eq!(count("G_ACT"), 4, "four ganged activations cover 16 banks");
    assert_eq!(count("COMP"), 32, "one COMP per column I/O of the row");
    assert_eq!(count("READRES"), 1, "one ganged result read per row-set");

    // COMPs stream at the tCCD cadence (4 ns apart).
    let comp_times: Vec<u64> = lines
        .iter()
        .filter(|l| l.contains("COMP"))
        .map(|l| l.split_whitespace().next().unwrap().parse().unwrap())
        .collect();
    for w in comp_times.windows(2) {
        assert_eq!(w[1] - w[0], 4, "COMP cadence must be tCCD");
    }
    println!("checks passed: 32 GWRITE, 4 G_ACT (tFAW-spaced), 32 COMP @ tCCD, 1 READRES");
}
