//! Extension (Sec. V-C): "if more parallelism is needed, adding channels
//! remains an option. With additional channels, Newton benefits from the
//! best of both worlds — increased compute parallelism without
//! exacerbating the Amdahl's Law bottleneck." This bench measures
//! channel-count scaling and contrasts it with Fig. 10's sublinear bank
//! scaling.

use newton_bench::ext_channel_sweep;
use newton_bench::report::{fns, Table};

fn main() {
    println!("=== Extension: channel scaling (GNMTs1) ===");
    let rows = ext_channel_sweep().expect("sweep");
    let mut t = Table::new(&["channels", "layer time", "scaling vs 8ch", "efficiency"]);
    for r in &rows {
        t.row(&[
            r.channels.to_string(),
            fns(r.newton_ns),
            format!("{:.2}x", r.scaling),
            format!("{:.0}%", r.efficiency * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper (Sec. V-C): channel scaling avoids the activation-overhead Amdahl effect\n\
         that makes bank scaling sublinear (Fig. 10)"
    );

    // Near-linear: 6x the channels must keep >= 70% parallel efficiency
    // (the residue is row-group quantization, not an Amdahl term).
    let last = rows.last().unwrap();
    assert!(
        last.efficiency > 0.7,
        "channel scaling efficiency {:.2} at {} channels",
        last.efficiency,
        last.channels
    );
    // And monotone.
    for w in rows.windows(2) {
        assert!(w[1].newton_ns <= w[0].newton_ns * 1.001);
    }
}
