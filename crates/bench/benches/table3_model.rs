//! Table III configuration echo + Sec. III-F analytical-model validation.
//!
//! Paper reference points: the model predicts 9.8x speedup over Ideal
//! Non-PIM at the Table III configuration; the paper's simulator measures
//! 10x ("within 2%"). Our simulator additionally exposes the precharge
//! turnaround between row-sets; the refined model (paper formula +
//! tRTP + tRP − tCCD) matches our measurement within ~2%.

use newton_bench::model_validation;
use newton_bench::report::Table;
use newton_dram::DramConfig;

fn main() {
    println!("=== Table III: DRAM configuration (HBM2E-like) ===");
    let cfg = DramConfig::hbm2e_like();
    let mut t = Table::new(&["parameter", "value"]);
    t.row(&["ranks".into(), "1".into()]);
    t.row(&["banks".into(), cfg.banks.to_string()]);
    t.row(&["rows per bank".into(), cfg.rows_per_bank.to_string()]);
    t.row(&["column I/Os per row".into(), cfg.cols_per_row.to_string()]);
    t.row(&[
        "column I/O width".into(),
        format!("{} b (16 bf16)", cfg.col_io_bits),
    ]);
    t.row(&["multipliers per bank".into(), "16".into()]);
    t.row(&[
        "tRCD / tRP".into(),
        format!("{} / {} ns", cfg.timing.t_rcd_ns, cfg.timing.t_rp_ns),
    ]);
    t.row(&["tRAS".into(), format!("{} ns", cfg.timing.t_ras_ns)]);
    t.row(&[
        "tAA".into(),
        format!("{} ns (paper range 22-29)", cfg.timing.t_aa_ns),
    ]);
    t.row(&["tFAW (base / aggressive)".into(), "30 / 22 ns".into()]);
    println!("{}", t.render());

    println!("=== Sec. III-F: analytical model vs cycle simulator ===");
    let v = model_validation().expect("model validation");
    let mut t = Table::new(&["prediction", "speedup vs Ideal Non-PIM"]);
    t.row(&[
        "paper formula n/(o+1)".into(),
        format!("{:.2}x", v.paper_model_x),
    ]);
    t.row(&[
        "refined (+ tRTP + tRP - tCCD)".into(),
        format!("{:.2}x", v.refined_model_x),
    ]);
    t.row(&[
        "measured (cycle simulator)".into(),
        format!("{:.2}x", v.measured_x),
    ]);
    println!("{}", t.render());
    println!("paper: model 9.8x vs simulator 10x (within 2%)");

    let rel = (v.refined_model_x - v.measured_x).abs() / v.measured_x;
    assert!(
        rel < 0.03,
        "refined model should match the simulator within ~2-3%, got {:.1}%",
        rel * 100.0
    );
    assert!((9.0..10.5).contains(&v.paper_model_x));
}
