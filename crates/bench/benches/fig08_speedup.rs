//! Figure 8: speedup over a Titan-V-like GPU — per-layer (left) and
//! end-to-end (right) — for Newton, Non-opt-Newton, and Ideal Non-PIM.
//!
//! Paper reference points: per-layer geomeans of 54x (Newton), 5.4x
//! (Ideal Non-PIM), 1.48x (Non-opt-Newton); end-to-end DLRM 47x, AlexNet
//! 1.2x, overall mean 20x, key-target mean 49x.

use newton_bench::report::{fx, Table};
use newton_bench::{fig08_end_to_end, fig08_layers, measure_all_layers};

fn main() {
    println!("=== Fig. 8 (left): per-layer speedup over the GPU ===");
    let layers = measure_all_layers(&newton_core::NewtonConfig::paper_default())
        .expect("layer measurements");
    let rows = fig08_layers(&layers).expect("fig08 layers");
    let mut t = Table::new(&["layer", "Newton", "Ideal Non-PIM", "Non-opt-Newton"]);
    for r in &rows {
        t.row(&[
            r.name.clone(),
            fx(r.newton_x),
            fx(r.ideal_x),
            fx(r.nonopt_x),
        ]);
    }
    println!("{}", t.render());
    let g = rows.last().expect("geomean row");
    println!(
        "paper: geomean Newton 54x, Ideal 5.4x, Non-opt 1.48x\n\
         ours : geomean Newton {}, Ideal {}, Non-opt {}\n",
        fx(g.newton_x),
        fx(g.ideal_x),
        fx(g.nonopt_x)
    );

    println!("=== Fig. 8 (right): end-to-end speedup over the GPU ===");
    let rows = fig08_end_to_end().expect("fig08 e2e");
    let mut t = Table::new(&["model", "Newton", "Ideal Non-PIM", "Non-opt-Newton"]);
    for r in &rows {
        t.row(&[
            r.name.clone(),
            fx(r.newton_x),
            fx(r.ideal_x),
            fx(r.nonopt_x),
        ]);
    }
    println!("{}", t.render());
    println!("paper: DLRM 47x, AlexNet 1.2x, mean(all) 20x, mean(key targets) 49x");
}
