//! Figure 12: batch-size sensitivity against the Titan-V-like GPU,
//! normalized to the GPU at batch 1.
//!
//! Paper reference point: "a large batch size of 64 is needed for the GPU
//! to outperform Newton" — Newton remains significantly faster at batch
//! sizes of 8 and lower.

use newton_bench::report::{fx, geomean, Table};
use newton_bench::{fig12_batch_vs_gpu, measure_all_layers, BATCH_SIZES};
use newton_core::NewtonConfig;

fn main() {
    println!("=== Fig. 12: batch sensitivity (GPU), perf normalized to GPU @ k=1 ===");
    let layers = measure_all_layers(&NewtonConfig::paper_default()).expect("layers");
    let rows = fig12_batch_vs_gpu(&layers);
    let header: Vec<String> = ["layer", "arch"]
        .iter()
        .map(|s| (*s).to_string())
        .chain(BATCH_SIZES.iter().map(|k| format!("k={k}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for r in &rows {
        let mut newton = vec![r.name.clone(), "Newton".into()];
        newton.extend(r.newton.iter().map(|v| fx(*v)));
        t.row(&newton);
        let mut gpu = vec![String::new(), "GPU".into()];
        gpu.extend(r.other.iter().map(|v| fx(*v)));
        t.row(&gpu);
    }
    println!("{}", t.render());
    println!("paper: the GPU needs batch 64 to outperform Newton; Newton wins at k <= 8");

    let ratio_at = |k_idx: usize| -> f64 {
        let rs: Vec<f64> = rows
            .iter()
            .map(|r| r.other[k_idx] / r.newton[k_idx])
            .collect();
        geomean(&rs)
    };
    assert!(
        ratio_at(3) < 1.0,
        "at k=8 Newton still wins: {}",
        ratio_at(3)
    );
    assert!(
        ratio_at(5) > 1.0,
        "at k=64 the GPU has passed Newton: {}",
        ratio_at(5)
    );
}
