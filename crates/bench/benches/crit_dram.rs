//! Criterion microbenchmarks of the DRAM timing engine: command issue
//! throughput and full-row streaming.

use criterion::{criterion_group, criterion_main, Criterion};
use newton_dram::stream::StreamReader;
use newton_dram::{Channel, DramConfig};

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram/activate+read+precharge cycle", |b| {
        b.iter_batched(
            || {
                let mut ch = Channel::new(DramConfig::hbm2e_like()).unwrap();
                ch.disable_refresh();
                ch
            },
            |mut ch| {
                let mut now = 0;
                for i in 0..64 {
                    let bank = i % 16;
                    let a = ch.earliest_activate(bank).max(now);
                    ch.issue_activate(a, bank, i / 16).unwrap();
                    let r = ch.earliest_column_read(a, bank);
                    ch.issue_column_read_external(r, bank, 0).unwrap();
                    let p = ch.earliest_precharge(bank);
                    ch.issue_precharge(p, bank).unwrap();
                    now = r;
                }
                ch
            },
            criterion::BatchSize::SmallInput,
        )
    });

    c.bench_function("dram/stream 64 rows (ideal non-PIM path)", |b| {
        b.iter_batched(
            || {
                let mut ch = Channel::new(DramConfig::hbm2e_like()).unwrap();
                ch.disable_refresh();
                ch
            },
            |mut ch| {
                let rows: Vec<(usize, usize)> = (0..64).map(|i| (i % 16, i / 16)).collect();
                let mut reader = StreamReader::new(&mut ch);
                reader.read_rows(0, &rows, |_, _, _| {}).unwrap()
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_dram);
criterion_main!(benches);
