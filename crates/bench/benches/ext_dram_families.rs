//! Extension (Sec. III-E): "Newton's key ideas are applicable to other
//! DRAM families such as LPDDR, DDR, and GDDR, with low-level differences
//! based on the internal bandwidth." This bench runs the same Newton
//! microarchitecture on GDDR6-, LPDDR4-, and DDR4-like channels and
//! compares the measured internal-vs-external speedup with the refined
//! analytical model per family.

use newton_bench::ext_dram_families;
use newton_bench::report::{fns, fx, Table};

fn main() {
    println!("=== Extension: Newton across DRAM families (single channel) ===");
    let rows = ext_dram_families().expect("families");
    let mut t = Table::new(&[
        "family",
        "banks",
        "Newton",
        "ext-BW bound",
        "measured",
        "model",
    ]);
    for r in &rows {
        t.row(&[
            r.name.into(),
            r.banks.to_string(),
            fns(r.newton_ns),
            fns(r.ideal_ns),
            fx(r.measured_x),
            fx(r.predicted_x),
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper (Sec. III-E): the AiM ideas transfer across families; the advantage tracks\n\
         the internal/external bandwidth ratio (bank count) minus activation overheads"
    );

    for r in &rows {
        // Measurement within 10% of the per-family refined model.
        let rel = (r.measured_x - r.predicted_x).abs() / r.predicted_x;
        assert!(
            rel < 0.10,
            "{}: measured {} vs model {}",
            r.name,
            r.measured_x,
            r.predicted_x
        );
        // Every family must show a clear PIM advantage.
        assert!(r.measured_x > 2.0, "{}: {}", r.name, r.measured_x);
    }
    // LPDDR's slow column cadence hides more of the activation overhead:
    // its speedup-vs-own-ideal should be the closest to its bank count.
    let lp = rows.iter().find(|r| r.name.starts_with("LPDDR")).unwrap();
    let hbm = rows.iter().find(|r| r.name.starts_with("HBM")).unwrap();
    assert!(lp.measured_x / lp.banks as f64 > hbm.measured_x / hbm.banks as f64);
}
