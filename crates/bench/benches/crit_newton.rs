//! Criterion microbenchmark of the end-to-end Newton simulator: simulated
//! DLRM layers per second (the full pipeline — layout, command stream,
//! timing validation, bf16 arithmetic, host reduction).

use criterion::{criterion_group, criterion_main, Criterion};
use newton_core::config::NewtonConfig;
use newton_core::system::NewtonSystem;
use newton_workloads::{generator, Benchmark};

fn bench_newton(c: &mut Criterion) {
    let shape = Benchmark::DlrmS1.shape();
    let matrix = generator::matrix(shape, 1);
    let vector = generator::vector(shape.n, 1);
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 4;

    c.bench_function("newton/simulate DLRM layer (4 channels)", |b| {
        b.iter(|| {
            let mut sys = NewtonSystem::new(cfg.clone()).unwrap();
            sys.run_mv(&matrix, shape.m, shape.n, &vector).unwrap()
        })
    });

    let mut cfg1 = NewtonConfig::paper_default();
    cfg1.channels = 1;
    let bshape = Benchmark::BertS1.shape();
    let bmatrix = generator::matrix(bshape, 2);
    let bvector = generator::vector(bshape.n, 2);
    c.bench_function("newton/simulate BERTs1 layer (1 channel)", |b| {
        b.iter(|| {
            let mut sys = NewtonSystem::new(cfg1.clone()).unwrap();
            sys.run_mv(&bmatrix, bshape.m, bshape.n, &bvector).unwrap()
        })
    });
}

criterion_group!(benches, bench_newton);
criterion_main!(benches);
