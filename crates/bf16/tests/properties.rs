//! Property-based tests for the bf16 scalar and reduction semantics.

use newton_bf16::{reduce, slice, Bf16};
use proptest::prelude::*;

/// Strategy producing finite, "reasonable magnitude" f32 values that stay
/// finite in bf16 (|x| <= 2^30), covering zero, subnormals-after-rounding,
/// and both signs.
fn finite_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        5 => -1.0e9_f32..1.0e9_f32,
        1 => -1.0_f32..1.0_f32,
        1 => Just(0.0_f32),
        1 => Just(-0.0_f32),
    ]
}

fn finite_bf16() -> impl Strategy<Value = Bf16> {
    finite_f32().prop_map(Bf16::from_f32)
}

/// Arbitrary non-NaN bf16 bit patterns — including infinities, subnormals,
/// and both zeros. NaN *inputs* are excluded from cross-kernel
/// bit-exactness properties: when both operands of an f32 addition are
/// NaN, hardware keeps one operand's payload, and which one depends on
/// codegen operand order, so two differently compiled kernels cannot
/// promise matching NaN payloads (see the `newton_bf16::simd` module docs;
/// NaNs *created* mid-tree from non-NaN inputs canonicalize identically
/// and stay covered here via the infinity patterns).
fn any_non_nan_bits() -> impl Strategy<Value = u16> {
    any::<u16>().prop_map(|b| if Bf16::from_bits(b).is_nan() { 0 } else { b })
}

proptest! {
    /// from_f32 always returns the nearest representable bf16: the error is
    /// at most half the gap to either neighboring representable value.
    #[test]
    fn conversion_is_nearest(x in finite_f32()) {
        let r = Bf16::from_f32(x);
        prop_assume!(r.is_finite());
        let down = Bf16::from_bits(r.to_bits().wrapping_sub(1));
        let up = Bf16::from_bits(r.to_bits().wrapping_add(1));
        let err = (r.to_f64() - x as f64).abs();
        if down.is_finite() && down.to_bits() & 0x7FFF != 0x7FFF {
            let alt = (down.to_f64() - x as f64).abs();
            prop_assert!(err <= alt + f64::EPSILON * err.max(1.0));
        }
        if up.is_finite() {
            let alt = (up.to_f64() - x as f64).abs();
            prop_assert!(err <= alt + f64::EPSILON * err.max(1.0));
        }
    }

    /// Round-trip bf16 -> f32 -> bf16 is the identity for non-NaN values.
    #[test]
    fn f32_roundtrip_identity(bits in any::<u16>()) {
        let x = Bf16::from_bits(bits);
        prop_assume!(!x.is_nan());
        prop_assert_eq!(Bf16::from_f32(x.to_f32()), x);
    }

    /// Addition and multiplication are commutative (they reduce to f32 ops).
    #[test]
    fn add_mul_commutative(a in finite_bf16(), b in finite_bf16()) {
        let s1 = a + b;
        let s2 = b + a;
        prop_assert!(s1 == s2 || (s1.is_nan() && s2.is_nan()));
        let p1 = a * b;
        let p2 = b * a;
        prop_assert!(p1 == p2 || (p1.is_nan() && p2.is_nan()));
    }

    /// Negation is exact and an involution.
    #[test]
    fn neg_involution(a in finite_bf16()) {
        prop_assert_eq!(-(-a), a);
        prop_assert_eq!((-a).to_f32(), -(a.to_f32()));
    }

    /// x + 0 == x and x * 1 == x exactly (identity elements survive
    /// rounding because the result is already representable). The one IEEE
    /// exception: (-0) + (+0) is +0, so zeros compare by value only.
    #[test]
    fn identities(a in finite_bf16()) {
        if a.is_zero() {
            prop_assert!((a + Bf16::ZERO).is_zero());
        } else {
            prop_assert_eq!(a + Bf16::ZERO, a);
        }
        prop_assert_eq!(a * Bf16::ONE, a);
    }

    /// Conversion is monotonic: x <= y implies bf16(x) <= bf16(y).
    #[test]
    fn conversion_monotonic(x in finite_f32(), y in finite_f32()) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(Bf16::from_f32(lo) <= Bf16::from_f32(hi));
    }

    /// total_cmp agrees with f32::total_cmp on the widened values.
    #[test]
    fn total_cmp_matches_f32(a in any::<u16>(), b in any::<u16>()) {
        let x = Bf16::from_bits(a);
        let y = Bf16::from_bits(b);
        prop_assert_eq!(x.total_cmp(&y), x.to_f32().total_cmp(&y.to_f32()));
    }

    /// Wide tree reduction equals the f64 pairwise sum up to f32 rounding
    /// of the inputs (the tree itself carries f32 which is exact for
    /// sums of <= 2^15 bf16 values of bounded magnitude).
    #[test]
    fn wide_tree_close_to_exact(xs in prop::collection::vec(-100.0f32..100.0, 0..64)) {
        let bf: Vec<Bf16> = xs.iter().copied().map(Bf16::from_f32).collect();
        let exact: f64 = bf.iter().map(|v| v.to_f64()).sum();
        let got = reduce::tree_reduce_wide(&bf) as f64;
        // f32 tree error bound: tiny relative to the magnitude involved.
        let mag: f64 = bf.iter().map(|v| v.to_f64().abs()).sum::<f64>().max(1.0);
        prop_assert!((got - exact).abs() <= mag * 1e-5);
    }

    /// Per-stage tree reduction stays within the analytic error envelope.
    #[test]
    fn staged_tree_within_error_bound(xs in prop::collection::vec(-8.0f32..8.0, 1..33)) {
        let bf: Vec<Bf16> = xs.iter().copied().map(Bf16::from_f32).collect();
        let exact: f64 = bf.iter().map(|v| v.to_f64()).sum();
        let got = reduce::tree_reduce_bf16(&bf).to_f64();
        let mag: f64 = bf.iter().map(|v| v.to_f64().abs()).sum::<f64>().max(1.0);
        let bound = reduce::dot_error_bound(bf.len(), 16, mag);
        prop_assert!((got - exact).abs() <= bound, "got {got}, exact {exact}, bound {bound}");
    }

    /// dot_chunk_wide equals the exact f64 dot of the *rounded products*
    /// up to f32 tree arithmetic error.
    #[test]
    fn dot_chunk_wide_matches_rounded_products(
        pairs in prop::collection::vec((-16.0f32..16.0, -16.0f32..16.0), 16)
    ) {
        let w: Vec<Bf16> = pairs.iter().map(|(a, _)| Bf16::from_f32(*a)).collect();
        let v: Vec<Bf16> = pairs.iter().map(|(_, b)| Bf16::from_f32(*b)).collect();
        let exact: f64 = w.iter().zip(&v).map(|(a, b)| a.mul_round(*b).to_f64()).sum();
        let got = reduce::dot_chunk_wide(&w, &v) as f64;
        prop_assert!((got - exact).abs() <= exact.abs().max(1.0) * 1e-5);
    }

    /// pack/unpack round-trips arbitrary bit patterns (including NaNs —
    /// storage must be bit-exact even for non-numeric payloads).
    #[test]
    fn pack_unpack_bit_exact(bits in prop::collection::vec(any::<u16>(), 0..256)) {
        let vals: Vec<Bf16> = bits.iter().copied().map(Bf16::from_bits).collect();
        let bytes = slice::pack(&vals);
        let back = slice::unpack(&bytes).unwrap();
        prop_assert_eq!(vals, back);
    }

    /// The in-place tree reducers are bit-exact with the Vec-per-level
    /// references for every length 0..=64 (covering every bypass-lane
    /// pattern of the 16-to-1 tree and beyond) and arbitrary non-NaN bit
    /// patterns including infinities.
    #[test]
    fn into_reducers_bit_exact_with_reference(
        bits in prop::collection::vec(any_non_nan_bits(), 0..=64)
    ) {
        let xs: Vec<Bf16> = bits.iter().copied().map(Bf16::from_bits).collect();
        let mut wide_buf: Vec<f32> = xs.iter().map(|x| x.to_f32()).collect();
        prop_assert_eq!(
            reduce::tree_reduce_wide_into(&mut wide_buf).to_bits(),
            reduce::tree_reduce_wide(&xs).to_bits()
        );
        let mut bf_buf: Vec<Bf16> = xs.clone();
        prop_assert_eq!(
            reduce::tree_reduce_bf16_into(&mut bf_buf).to_bits(),
            reduce::tree_reduce_bf16(&xs).to_bits()
        );
    }

    /// The fixed-arity dot16 kernels (including the pre-widened-weight
    /// variant the decoded-weight cache uses) are bit-exact with the
    /// allocating chunk references for every length 0..=16.
    #[test]
    fn dot16_kernels_bit_exact_with_reference(
        pairs in prop::collection::vec((any_non_nan_bits(), any_non_nan_bits()), 0..=16)
    ) {
        let w: Vec<Bf16> = pairs.iter().map(|(a, _)| Bf16::from_bits(*a)).collect();
        let v: Vec<Bf16> = pairs.iter().map(|(_, b)| Bf16::from_bits(*b)).collect();
        prop_assert_eq!(
            reduce::dot16_wide(&w, &v).to_bits(),
            reduce::dot_chunk_wide(&w, &v).to_bits()
        );
        prop_assert_eq!(
            reduce::dot16_per_stage(&w, &v).to_bits(),
            reduce::dot_chunk_bf16(&w, &v).to_bits()
        );
        let widened: Vec<f32> = w.iter().map(|x| x.to_f32()).collect();
        prop_assert_eq!(
            reduce::dot16_wide_prewidened(&widened, &v).to_bits(),
            reduce::dot_chunk_wide(&w, &v).to_bits()
        );
    }

    /// comp_step_noalloc is bit-exact with comp_step across both precision
    /// disciplines for every chunk width 0..=64 and arbitrary latch state.
    #[test]
    fn comp_step_noalloc_bit_exact_with_reference(
        pairs in prop::collection::vec((any_non_nan_bits(), any_non_nan_bits()), 0..=64),
        latch_bits in any_non_nan_bits(),
        per_stage in any::<bool>(),
    ) {
        let w: Vec<Bf16> = pairs.iter().map(|(a, _)| Bf16::from_bits(*a)).collect();
        let v: Vec<Bf16> = pairs.iter().map(|(_, b)| Bf16::from_bits(*b)).collect();
        let latch = Bf16::from_bits(latch_bits);
        let precision = if per_stage {
            reduce::TreePrecision::PerStage
        } else {
            reduce::TreePrecision::Wide
        };
        prop_assert_eq!(
            reduce::comp_step_noalloc(latch, &w, &v, precision).to_bits(),
            reduce::comp_step(latch, &w, &v, precision).to_bits()
        );
        let widened: Vec<f32> = w.iter().map(|x| x.to_f32()).collect();
        prop_assert_eq!(
            reduce::comp_step_prewidened(latch, &widened, &v, precision).to_bits(),
            reduce::comp_step(latch, &w, &v, precision).to_bits()
        );
    }
}
