//! Exhaustive bf16 conversion tests: every one of the 2^16 bit patterns,
//! plus round-to-nearest-even checked at *every* rounding boundary.
//!
//! The unit tests spot-check conversions; this suite proves them. For
//! each of the 65536 bf16 patterns it verifies the f32 round-trip, the
//! byte encoding, and the classification predicates against the `f32`
//! reference implementations. For each pair of adjacent bf16 values it
//! then probes the five adversarial f32 points of the interval between
//! them — one ulp above the lower value, just below the tie, the exact
//! tie, just above the tie, and one ulp below the upper value — and
//! checks `from_f32` lands on the mathematically nearest neighbour
//! (ties to the even mantissa). That is the complete definition of
//! RNE, tested on every interval of the format rather than a sample.

use newton_bf16::Bf16;

/// All 2^16 bit patterns.
fn all_patterns() -> impl Iterator<Item = u16> {
    0..=u16::MAX
}

#[test]
fn every_pattern_round_trips_through_f32() {
    for bits in all_patterns() {
        let x = Bf16::from_bits(bits);
        let f = x.to_f32();
        // to_f32 is exact by construction: upper half of the f32 format.
        assert_eq!(f.to_bits(), (bits as u32) << 16, "bits {bits:#06x}");
        let back = Bf16::from_f32(f);
        if x.is_nan() {
            // NaNs keep NaN-ness, sign, and gain the quiet bit.
            assert!(back.is_nan(), "bits {bits:#06x}");
            assert_eq!(
                back.is_sign_negative(),
                x.is_sign_negative(),
                "bits {bits:#06x}"
            );
            assert_ne!(back.to_bits() & 0x0040, 0, "bits {bits:#06x} not quiet");
        } else {
            assert_eq!(back, x, "bits {bits:#06x}");
        }
    }
}

#[test]
fn every_pattern_round_trips_through_le_bytes() {
    for bits in all_patterns() {
        let x = Bf16::from_bits(bits);
        assert_eq!(Bf16::from_le_bytes(x.to_le_bytes()), x, "bits {bits:#06x}");
        assert_eq!(x.to_le_bytes(), bits.to_le_bytes(), "bits {bits:#06x}");
    }
}

#[test]
fn every_pattern_classifies_like_its_f32_image() {
    for bits in all_patterns() {
        let x = Bf16::from_bits(bits);
        let f = x.to_f32();
        assert_eq!(x.is_nan(), f.is_nan(), "bits {bits:#06x}");
        assert_eq!(x.is_infinite(), f.is_infinite(), "bits {bits:#06x}");
        assert_eq!(x.is_finite(), f.is_finite(), "bits {bits:#06x}");
        assert_eq!(x.is_zero(), f == 0.0, "bits {bits:#06x}");
        assert_eq!(
            x.is_sign_negative(),
            f.is_sign_negative(),
            "bits {bits:#06x}"
        );
        // abs and neg are pure sign-bit operations.
        assert_eq!(x.abs().to_bits(), bits & 0x7FFF, "bits {bits:#06x}");
        assert_eq!((-x).to_bits(), bits ^ 0x8000, "bits {bits:#06x}");
    }
}

/// Round-to-nearest-even at every rounding boundary of the format.
///
/// For adjacent finite-magnitude patterns `lo` and `lo + 1` (same sign),
/// the f32 values strictly between them all have bit patterns
/// `(lo << 16) + d` for `d` in `1..=0xFFFF`, and the arithmetic midpoint
/// is exactly `d = 0x8000` (the f32 grid between two adjacent bf16
/// values is uniform even across a binade step at the top end).
#[test]
fn round_to_nearest_even_holds_on_every_interval() {
    for lo in all_patterns() {
        // Skip the max-exponent encodings: above `lo` sits inf/NaN space,
        // handled by the overflow test below.
        if lo & 0x7F80 == 0x7F80 {
            continue;
        }
        let hi = lo + 1;
        let base = (lo as u32) << 16;
        let even = if lo & 1 == 0 { lo } else { hi };
        for (delta, expect) in [
            (0x0001, lo),   // one f32 ulp above the lower value
            (0x7FFF, lo),   // just below the tie
            (0x8000, even), // the exact tie: to even
            (0x8001, hi),   // just above the tie
            (0xFFFF, hi),   // one f32 ulp below the upper value
        ] {
            let probe = f32::from_bits(base + delta);
            let got = Bf16::from_f32(probe);
            let want = Bf16::from_bits(expect);
            if want.is_nan() {
                // hi may be a NaN encoding (lo = ±MAX's neighbours are
                // excluded above, so this only covers signalling space).
                assert!(got.is_nan(), "lo {lo:#06x} delta {delta:#06x}");
            } else {
                assert_eq!(got, want, "lo {lo:#06x} delta {delta:#06x}");
            }
        }
    }
}

#[test]
fn values_beyond_max_round_to_infinity() {
    // The interval above +MAX: its tie (halfway to the infinity
    // encoding) and everything beyond round to infinity, matching
    // IEEE-754 round-to-nearest overflow behaviour.
    let above_max = (Bf16::MAX.to_bits() as u32) << 16;
    assert_eq!(
        Bf16::from_f32(f32::from_bits(above_max + 0x7FFF)),
        Bf16::MAX
    );
    assert_eq!(
        Bf16::from_f32(f32::from_bits(above_max + 0x8000)),
        Bf16::INFINITY
    );
    assert_eq!(Bf16::from_f32(f32::MAX), Bf16::INFINITY);
    assert_eq!(Bf16::from_f32(f32::INFINITY), Bf16::INFINITY);
    let below_min = (Bf16::MIN.to_bits() as u32) << 16;
    assert_eq!(
        Bf16::from_f32(f32::from_bits(below_min + 0x8000)),
        Bf16::NEG_INFINITY
    );
    assert_eq!(Bf16::from_f32(-f32::MAX), Bf16::NEG_INFINITY);
    assert_eq!(Bf16::from_f32(f32::NEG_INFINITY), Bf16::NEG_INFINITY);
}

#[test]
fn subnormal_boundaries_round_to_nearest_even() {
    // The interval between +0 and the smallest positive subnormal is a
    // rounding boundary like any other: its tie goes to zero (even).
    let min_sub = Bf16::from_bits(0x0001);
    assert!(min_sub.to_f32() > 0.0);
    assert_eq!(Bf16::from_f32(min_sub.to_f32() / 2.0), Bf16::ZERO);
    assert_eq!(Bf16::from_f32(-min_sub.to_f32() / 2.0), Bf16::NEG_ZERO);
    // The subnormal/normal seam (0x007F -> 0x0080) is uniform too.
    let seam_tie = f32::from_bits((0x007F_u32 << 16) + 0x8000);
    assert_eq!(Bf16::from_f32(seam_tie), Bf16::from_bits(0x0080));
    // And the smallest f32 subnormal is far below bf16's floor.
    assert_eq!(Bf16::from_f32(f32::from_bits(1)), Bf16::ZERO);
}

#[test]
fn from_f32_is_monotone_over_bf16_samples() {
    // Monotonicity of the rounding function, checked over every adjacent
    // pair of non-NaN bf16 values in total order: rounding the midpoint
    // region never produces a value outside the bracketing pair, so
    // from_f32 can never invert an ordering.
    let mut ordered: Vec<Bf16> = all_patterns()
        .map(Bf16::from_bits)
        .filter(|x| !x.is_nan())
        .collect();
    ordered.sort_by(Bf16::total_cmp);
    for w in ordered.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a.to_f32() == b.to_f32() {
            continue; // -0.0 / +0.0 (equal as numbers, distinct patterns)
        }
        assert!(a.to_f32() < b.to_f32(), "{a:?} < {b:?}");
        let mid = a.to_f32() / 2.0 + b.to_f32() / 2.0;
        if mid.is_finite() {
            let r = Bf16::from_f32(mid);
            assert!(
                r.total_cmp(&a) != std::cmp::Ordering::Less
                    && r.total_cmp(&b) != std::cmp::Ordering::Greater,
                "midpoint of {a:?} and {b:?} rounded outside the pair: {r:?}"
            );
        }
    }
}

#[test]
fn nan_payloads_never_truncate_to_infinity() {
    // Every f32 NaN whose payload lives only in the low 16 bits would
    // truncate to an infinity encoding; from_f32 must quieten instead.
    // Probe all 2^7 - 1 high-mantissa-clear payload classes via their
    // low-bit representative, both signs.
    for sign in [0u32, 0x8000_0000] {
        for low in [1u32, 2, 0x00FF, 0x7FFF, 0xFFFF] {
            let f = f32::from_bits(sign | 0x7F80_0000 | low);
            assert!(f.is_nan());
            let x = Bf16::from_f32(f);
            assert!(x.is_nan(), "payload {low:#06x}");
            assert_eq!(x.is_sign_negative(), sign != 0, "payload {low:#06x}");
        }
    }
}
