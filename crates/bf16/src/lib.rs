//! Software `bfloat16` arithmetic for the Newton AiM simulator.
//!
//! The Newton paper (MICRO 2020) computes matrix–vector products in 16-bit
//! floating point: "1 KB = 8 Kb = 512 x 16 bits = 512 bfloat16 elements per
//! DRAM row" (Sec. III-C), with 16 multipliers per bank feeding a pipelined
//! adder tree whose result is held in "one scalar bfloat16 register" per bank.
//! This crate provides that number format from scratch — no external float
//! crates — together with the reduction semantics the per-bank compute unit
//! needs:
//!
//! * [`Bf16`]: the storage type (1 sign, 8 exponent, 7 mantissa bits) with
//!   round-to-nearest-even conversions and arithmetic implemented by
//!   computing in `f32` and rounding back (the standard software model for
//!   bf16 hardware datapaths, which keep wide internal products).
//! * [`reduce`]: 16-input adder-tree reduction in the two precisions a
//!   hardware tree might use (wide `f32` carry within a round, or strict
//!   per-stage bf16 rounding), plus the result-latch accumulation step.
//! * [`simd`]: explicit-width, branch-free variants of the COMP kernels
//!   over fixed lane arrays the autovectorizer can lower to SIMD, proven
//!   bit-exact against the scalar oracles above.
//! * [`mod@slice`]: bulk conversions and the little-endian byte packing used by
//!   the DRAM row storage in `newton-dram`.
//!
//! # Example
//!
//! ```
//! use newton_bf16::{Bf16, reduce};
//!
//! let weights: Vec<Bf16> = (0..16).map(|i| Bf16::from_f32(i as f32)).collect();
//! let inputs = vec![Bf16::from_f32(0.5); 16];
//! // One COMP step of a Newton bank: 16 products reduced through the tree.
//! let partial = reduce::dot_chunk_wide(&weights, &inputs);
//! assert_eq!(partial, (0..16).map(|i| i as f32 * 0.5).sum::<f32>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod scalar;

pub mod reduce;
pub mod simd;
pub mod slice;

pub use scalar::{Bf16, ParseBf16Error};
