//! The [`Bf16`] scalar type: bit layout, conversions, and arithmetic.

use std::cmp::Ordering;
use std::error::Error;
use std::fmt;
use std::iter::{Product, Sum};
use std::num::ParseFloatError;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// A 16-bit brain floating point number (1 sign, 8 exponent, 7 mantissa bits).
///
/// `Bf16` is a bit-exact storage format: the upper half of an IEEE-754
/// `f32`. Conversions from `f32` use round-to-nearest-even, matching the
/// rounding performed by bf16 hardware datapaths. Arithmetic operators
/// compute in `f32` and round the result back to `Bf16`, which models a
/// hardware unit with wide internal precision and a bf16 result register —
/// exactly the shape of Newton's per-bank multiply/adder-tree datapath.
///
/// # Example
///
/// ```
/// use newton_bf16::Bf16;
///
/// let a = Bf16::from_f32(1.5);
/// let b = Bf16::from_f32(2.25);
/// assert_eq!((a * b).to_f32(), 3.375);
/// // bf16 has only 8 significand bits, so fine detail rounds away:
/// assert_eq!(Bf16::from_f32(1.0 + 1.0 / 512.0), Bf16::ONE);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(transparent)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: Bf16 = Bf16(0x8000);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Negative one.
    pub const NEG_ONE: Bf16 = Bf16(0xBF80);
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7F80);
    /// Negative infinity.
    pub const NEG_INFINITY: Bf16 = Bf16(0xFF80);
    /// A quiet NaN.
    pub const NAN: Bf16 = Bf16(0x7FC0);
    /// The largest finite value, `(2 - 2^-7) * 2^127` ≈ 3.3895e38.
    pub const MAX: Bf16 = Bf16(0x7F7F);
    /// The smallest finite value (`-MAX`).
    pub const MIN: Bf16 = Bf16(0xFF7F);
    /// The smallest positive normal value, `2^-126` ≈ 1.1755e-38.
    pub const MIN_POSITIVE: Bf16 = Bf16(0x0080);
    /// The difference between 1.0 and the next larger representable value,
    /// `2^-7`.
    pub const EPSILON: Bf16 = Bf16(0x3C00);
    /// Number of explicit significand digits (the leading 1 is implicit).
    pub const MANTISSA_DIGITS: u32 = 8;

    /// Creates a `Bf16` from its raw bit pattern.
    ///
    /// # Example
    ///
    /// ```
    /// use newton_bf16::Bf16;
    /// assert_eq!(Bf16::from_bits(0x3F80), Bf16::ONE);
    /// ```
    #[inline]
    #[must_use]
    pub const fn from_bits(bits: u16) -> Bf16 {
        Bf16(bits)
    }

    /// Returns the raw bit pattern.
    ///
    /// # Example
    ///
    /// ```
    /// use newton_bf16::Bf16;
    /// assert_eq!(Bf16::ONE.to_bits(), 0x3F80);
    /// ```
    #[inline]
    #[must_use]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to `Bf16` with round-to-nearest-even.
    ///
    /// NaN inputs map to a quiet NaN (the payload's top mantissa bit is
    /// forced so the result stays a NaN after truncation). Values whose
    /// magnitude exceeds [`Bf16::MAX`] round to infinity, as in IEEE-754.
    ///
    /// # Example
    ///
    /// ```
    /// use newton_bf16::Bf16;
    /// // Exactly halfway between two bf16 values rounds to the even one.
    /// let halfway = f32::from_bits(0x3F80_8000); // 1.00390625
    /// assert_eq!(Bf16::from_f32(halfway), Bf16::ONE);
    /// ```
    #[inline]
    #[must_use]
    pub fn from_f32(value: f32) -> Bf16 {
        let bits = value.to_bits();
        if value.is_nan() {
            // Preserve sign and signal a quiet NaN; keep some payload bits.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest, ties to even: add 0x7FFF plus the parity of the
        // bit that will become the LSB.
        let round_bias = 0x7FFF + ((bits >> 16) & 1);
        Bf16(((bits + round_bias) >> 16) as u16)
    }

    /// Converts to `f32` exactly (every `Bf16` value is representable).
    ///
    /// # Example
    ///
    /// ```
    /// use newton_bf16::Bf16;
    /// assert_eq!(Bf16::from_f32(-2.5).to_f32(), -2.5);
    /// ```
    #[inline]
    #[must_use]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Converts to `f64` exactly.
    #[inline]
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// Converts an `f64` to `Bf16` (via `f32`, then round-to-nearest-even).
    ///
    /// Double rounding through `f32` is exact for bf16 because `f32` keeps
    /// 24 significand bits — more than twice bf16's 8 — so no value lands on
    /// a new tie.
    #[inline]
    #[must_use]
    pub fn from_f64(value: f64) -> Bf16 {
        Bf16::from_f32(value as f32)
    }

    /// The little-endian byte encoding used by DRAM row storage.
    #[inline]
    #[must_use]
    pub const fn to_le_bytes(self) -> [u8; 2] {
        self.0.to_le_bytes()
    }

    /// Decodes from the little-endian byte encoding.
    #[inline]
    #[must_use]
    pub const fn from_le_bytes(bytes: [u8; 2]) -> Bf16 {
        Bf16(u16::from_le_bytes(bytes))
    }

    /// Returns `true` if this value is NaN.
    #[inline]
    #[must_use]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7F80) == 0x7F80 && (self.0 & 0x007F) != 0
    }

    /// Returns `true` if this value is positive or negative infinity.
    #[inline]
    #[must_use]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7F80
    }

    /// Returns `true` if this value is neither infinite nor NaN.
    #[inline]
    #[must_use]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7F80) != 0x7F80
    }

    /// Returns `true` for positive or negative zero.
    #[inline]
    #[must_use]
    pub fn is_zero(self) -> bool {
        (self.0 & 0x7FFF) == 0
    }

    /// Returns `true` if the sign bit is set (including `-0.0` and NaNs with
    /// the sign bit set).
    #[inline]
    #[must_use]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & 0x8000) != 0
    }

    /// Returns the absolute value.
    #[inline]
    #[must_use]
    pub fn abs(self) -> Bf16 {
        Bf16(self.0 & 0x7FFF)
    }

    /// Fused multiply-round: computes `self * rhs` in `f32` and rounds the
    /// product to bf16 — the operation one Newton multiplier performs per
    /// COMP step before the adder tree.
    #[inline]
    #[must_use]
    pub fn mul_round(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() * rhs.to_f32())
    }

    /// Result-latch accumulation: adds a wide (`f32`) partial sum into a
    /// bf16 accumulator register, rounding on every step. This models
    /// Newton's per-bank "single scalar bfloat16 register" that accumulates
    /// the adder-tree output over the 32 COMP rounds of a DRAM row.
    #[inline]
    #[must_use]
    pub fn accumulate_wide(self, partial: f32) -> Bf16 {
        Bf16::from_f32(self.to_f32() + partial)
    }

    /// Total ordering over bit patterns (IEEE-754 `totalOrder`), mirroring
    /// [`f32::total_cmp`]. Useful for sorting buffers that may contain NaN.
    #[inline]
    #[must_use]
    pub fn total_cmp(&self, other: &Bf16) -> Ordering {
        let mut l = self.0 as i16;
        let mut r = other.0 as i16;
        l ^= (((l >> 15) as u16) >> 1) as i16;
        r ^= (((r >> 15) as u16) >> 1) as i16;
        l.cmp(&r)
    }

    /// Returns the larger of two values, propagating numbers over NaN (like
    /// [`f32::max`]).
    #[inline]
    #[must_use]
    pub fn max(self, other: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32().max(other.to_f32()))
    }

    /// Returns the smaller of two values, propagating numbers over NaN (like
    /// [`f32::min`]).
    #[inline]
    #[must_use]
    pub fn min(self, other: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32().min(other.to_f32()))
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bf16({})", self.to_f32())
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl fmt::LowerHex for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

impl PartialOrd for Bf16 {
    #[inline]
    fn partial_cmp(&self, other: &Bf16) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl From<Bf16> for f32 {
    #[inline]
    fn from(value: Bf16) -> f32 {
        value.to_f32()
    }
}

impl From<Bf16> for f64 {
    #[inline]
    fn from(value: Bf16) -> f64 {
        value.to_f64()
    }
}

impl From<i8> for Bf16 {
    #[inline]
    fn from(value: i8) -> Bf16 {
        Bf16::from_f32(value as f32)
    }
}

impl From<u8> for Bf16 {
    #[inline]
    fn from(value: u8) -> Bf16 {
        Bf16::from_f32(value as f32)
    }
}

/// An error parsing a [`Bf16`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBf16Error(ParseFloatError);

impl fmt::Display for ParseBf16Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid bfloat16 literal: {}", self.0)
    }
}

impl Error for ParseBf16Error {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.0)
    }
}

impl FromStr for Bf16 {
    type Err = ParseBf16Error;

    /// Parses a decimal literal and rounds it to bf16.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBf16Error`] when the input is not a valid float
    /// literal (same grammar as [`f32::from_str`]).
    fn from_str(s: &str) -> Result<Bf16, ParseBf16Error> {
        s.parse::<f32>().map(Bf16::from_f32).map_err(ParseBf16Error)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $trait for Bf16 {
            type Output = Bf16;
            #[inline]
            fn $method(self, rhs: Bf16) -> Bf16 {
                Bf16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }

        impl $assign_trait for Bf16 {
            #[inline]
            fn $assign_method(&mut self, rhs: Bf16) {
                *self = *self $op rhs;
            }
        }
    };
}

impl_binop!(Add, add, AddAssign, add_assign, +);
impl_binop!(Sub, sub, SubAssign, sub_assign, -);
impl_binop!(Mul, mul, MulAssign, mul_assign, *);
impl_binop!(Div, div, DivAssign, div_assign, /);

impl Neg for Bf16 {
    type Output = Bf16;
    #[inline]
    fn neg(self) -> Bf16 {
        Bf16(self.0 ^ 0x8000)
    }
}

impl Sum for Bf16 {
    /// Sequential left-to-right sum with bf16 rounding at each step.
    ///
    /// Note: Newton hardware reduces through a *tree*; use
    /// [`crate::reduce`] when tree semantics matter.
    fn sum<I: Iterator<Item = Bf16>>(iter: I) -> Bf16 {
        iter.fold(Bf16::ZERO, |acc, x| acc + x)
    }
}

impl Product for Bf16 {
    fn product<I: Iterator<Item = Bf16>>(iter: I) -> Bf16 {
        iter.fold(Bf16::ONE, |acc, x| acc * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_reference_values() {
        assert_eq!(Bf16::ZERO.to_f32(), 0.0);
        assert!(Bf16::ZERO.to_f32().is_sign_positive());
        assert!(Bf16::NEG_ZERO.to_f32().is_sign_negative());
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
        assert_eq!(Bf16::NEG_ONE.to_f32(), -1.0);
        assert_eq!(Bf16::INFINITY.to_f32(), f32::INFINITY);
        assert_eq!(Bf16::NEG_INFINITY.to_f32(), f32::NEG_INFINITY);
        assert!(Bf16::NAN.is_nan());
        assert_eq!(Bf16::EPSILON.to_f32(), 2.0_f32.powi(-7));
        assert_eq!(Bf16::MIN_POSITIVE.to_f32(), 2.0_f32.powi(-126));
        assert_eq!(Bf16::MAX.to_f32(), 3.389_531_4e38);
        assert_eq!(Bf16::MIN.to_f32(), -Bf16::MAX.to_f32());
    }

    #[test]
    fn round_to_nearest_even_at_ties() {
        // 1.0 + 2^-9 is exactly halfway between 1.0 and 1.0 + 2^-8 in a
        // hypothetical 9-bit significand; in bf16 the tie is between
        // 1.0 (even LSB) and 1.0078125.
        let halfway_down = f32::from_bits(0x3F80_8000);
        assert_eq!(Bf16::from_f32(halfway_down), Bf16::from_bits(0x3F80));
        // Halfway above an odd LSB rounds up to the even neighbor.
        let halfway_up = f32::from_bits(0x3F81_8000);
        assert_eq!(Bf16::from_f32(halfway_up), Bf16::from_bits(0x3F82));
        // Just below/above the tie round toward the nearer value.
        assert_eq!(
            Bf16::from_f32(f32::from_bits(0x3F80_7FFF)),
            Bf16::from_bits(0x3F80)
        );
        assert_eq!(
            Bf16::from_f32(f32::from_bits(0x3F80_8001)),
            Bf16::from_bits(0x3F81)
        );
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        let just_above_max = f32::from_bits(0x7F7F_8000); // tie toward inf
        assert_eq!(Bf16::from_f32(just_above_max), Bf16::INFINITY);
        assert_eq!(Bf16::from_f32(f32::MAX), Bf16::INFINITY);
        assert_eq!(Bf16::from_f32(-f32::MAX), Bf16::NEG_INFINITY);
    }

    #[test]
    fn nan_conversion_stays_nan_and_keeps_sign() {
        let neg_nan = f32::from_bits(0xFF80_0001);
        let converted = Bf16::from_f32(neg_nan);
        assert!(converted.is_nan());
        assert!(converted.is_sign_negative());
        // A NaN whose payload lives only in the low 16 bits must not
        // truncate to infinity.
        let low_payload_nan = f32::from_bits(0x7F80_0001);
        assert!(Bf16::from_f32(low_payload_nan).is_nan());
    }

    #[test]
    fn roundtrip_through_f32_is_identity_for_non_nan() {
        for bits in 0..=u16::MAX {
            let x = Bf16::from_bits(bits);
            if x.is_nan() {
                assert!(Bf16::from_f32(x.to_f32()).is_nan());
            } else {
                assert_eq!(Bf16::from_f32(x.to_f32()), x, "bits {bits:#06x}");
            }
        }
    }

    #[test]
    fn arithmetic_matches_f32_then_round() {
        let a = Bf16::from_f32(3.25);
        let b = Bf16::from_f32(-1.5);
        assert_eq!((a + b).to_f32(), 1.75);
        assert_eq!((a - b).to_f32(), 4.75);
        assert_eq!((a * b).to_f32(), -4.875);
        assert_eq!((a / b).to_f32(), Bf16::from_f32(3.25 / -1.5).to_f32());
        assert_eq!((-a).to_f32(), -3.25);
    }

    #[test]
    fn classification_predicates() {
        assert!(Bf16::ZERO.is_zero() && Bf16::NEG_ZERO.is_zero());
        assert!(Bf16::INFINITY.is_infinite() && !Bf16::INFINITY.is_finite());
        assert!(Bf16::ONE.is_finite() && !Bf16::ONE.is_nan());
        assert!(Bf16::NEG_ONE.is_sign_negative());
        assert!(!Bf16::NAN.is_infinite());
        assert_eq!(Bf16::from_f32(-7.0).abs(), Bf16::from_f32(7.0));
    }

    #[test]
    fn total_cmp_orders_like_f32_total_cmp() {
        let samples = [
            Bf16::NEG_INFINITY,
            Bf16::MIN,
            Bf16::NEG_ONE,
            Bf16::NEG_ZERO,
            Bf16::ZERO,
            Bf16::MIN_POSITIVE,
            Bf16::ONE,
            Bf16::MAX,
            Bf16::INFINITY,
        ];
        for w in samples.windows(2) {
            assert_eq!(
                w[0].total_cmp(&w[1]),
                Ordering::Less,
                "{:?} < {:?}",
                w[0],
                w[1]
            );
        }
        assert_eq!(Bf16::NAN.total_cmp(&Bf16::NAN), Ordering::Equal);
    }

    #[test]
    fn byte_encoding_is_little_endian() {
        let x = Bf16::from_bits(0xABCD);
        assert_eq!(x.to_le_bytes(), [0xCD, 0xAB]);
        assert_eq!(Bf16::from_le_bytes([0xCD, 0xAB]), x);
    }

    #[test]
    fn parse_rounds_decimal_literals() {
        assert_eq!("1.5".parse::<Bf16>().unwrap(), Bf16::from_f32(1.5));
        assert_eq!("-0.3359375".parse::<Bf16>().unwrap().to_f32(), -0.3359375);
        let err = "not-a-number".parse::<Bf16>().unwrap_err();
        assert!(err.to_string().contains("invalid bfloat16 literal"));
    }

    #[test]
    fn sum_and_product_fold_sequentially() {
        let xs: Vec<Bf16> = (1..=4).map(|i| Bf16::from_f32(i as f32)).collect();
        assert_eq!(xs.iter().copied().sum::<Bf16>().to_f32(), 10.0);
        assert_eq!(xs.iter().copied().product::<Bf16>().to_f32(), 24.0);
    }

    #[test]
    fn subnormal_f32_rounds_toward_zero_or_min_subnormal() {
        // f32 subnormals sit far below bf16's subnormal range floor only
        // in mantissa precision; the smallest f32 subnormal rounds to +0,
        // while values near bf16's own subnormal steps round to them.
        let tiny = f32::from_bits(1); // smallest positive f32 subnormal
        assert_eq!(Bf16::from_f32(tiny), Bf16::ZERO);
        // Smallest positive bf16 subnormal is 2^-133 (bits 0x0001).
        let bf_min_sub = Bf16::from_bits(0x0001);
        assert_eq!(Bf16::from_f32(bf_min_sub.to_f32()), bf_min_sub);
        // Halfway between 0 and the min subnormal rounds to even (zero).
        let halfway = bf_min_sub.to_f32() / 2.0;
        assert_eq!(Bf16::from_f32(halfway), Bf16::ZERO);
        // Negative side mirrors.
        assert_eq!(Bf16::from_f32(-tiny), Bf16::NEG_ZERO);
    }

    #[test]
    fn arithmetic_saturates_to_infinity_not_garbage() {
        let big = Bf16::MAX;
        assert_eq!(big + big, Bf16::INFINITY);
        assert_eq!(big * big, Bf16::INFINITY);
        assert_eq!(-big - big, Bf16::NEG_INFINITY);
        // inf - inf is NaN, propagated.
        assert!((Bf16::INFINITY - Bf16::INFINITY).is_nan());
        // Division by zero follows IEEE.
        assert_eq!(Bf16::ONE / Bf16::ZERO, Bf16::INFINITY);
        assert!((Bf16::ZERO / Bf16::ZERO).is_nan());
    }

    #[test]
    fn mul_round_and_accumulate_wide_model_the_datapath() {
        let w = Bf16::from_f32(1.0078125); // 1 + 2^-7
        let v = Bf16::from_f32(1.0078125);
        // Product 1.01563... rounds to nearest bf16.
        let p = w.mul_round(v);
        assert_eq!(p.to_f32(), Bf16::from_f32(1.0157471).to_f32());
        let latch = Bf16::from_f32(100.0);
        // Adding a partial too small to register leaves the latch unchanged,
        // demonstrating the rounding the result latch really performs.
        assert_eq!(latch.accumulate_wide(0.001), latch);
        assert_eq!(latch.accumulate_wide(1.0).to_f32(), 101.0);
    }
}
