//! Explicit-width, autovectorizer-friendly bf16 COMP kernels.
//!
//! The scalar kernels in [`reduce`](crate::reduce) walk the 16-wide MAC
//! tree through `Bf16` values one element at a time, with a data-dependent
//! branch (the NaN check) inside every rounding step. These kernels compute
//! the *same arithmetic DAG* over fixed-width lane arrays (`[u32; 8]` /
//! `[f32; 16]` blocks with straight-line tree levels) and a branchless
//! rounding select, so the compiler's autovectorizer can emit SIMD code on
//! stable Rust — no nightly features, no `unsafe`, no target-specific
//! intrinsics.
//!
//! Bit-exactness contract: every function here is proven (exhaustively for
//! the rounding lane, property-tested for the kernels) to produce the same
//! bits as its scalar oracle in [`reduce`](crate::reduce):
//!
//! * [`round_bf16_f32`] ≡ `Bf16::from_f32(x).to_f32()` for **all** `f32`
//!   bit patterns, including NaN quieting and overflow-to-infinity.
//! * [`dot16_wide_simd`] ≡ [`dot16_wide`](crate::reduce::dot16_wide) —
//!   identical product rounding and the identical `(0,1)(2,3)…` pairwise
//!   tree-level structure of
//!   [`tree_reduce_wide_into`](crate::reduce::tree_reduce_wide_into).
//! * [`dot16_per_stage_simd`] ≡
//!   [`dot16_per_stage`](crate::reduce::dot16_per_stage), preserving the
//!   per-stage bf16 rounding order of the paper's 16-wide adder tree.
//! * The batched [`comp_subchunks16_wide`] / [`comp_subchunks16_per_stage`]
//!   fold a whole row of sub-chunk COMPs in one pass and equal the
//!   corresponding `comp_step_*` loop step for step, latch value included.
//!
//! The wide-plane variants take `f32` slices holding *exact* widenings of
//! bf16 values (`Bf16::to_f32` is exact, so no information is lost); the
//! decoded-weight cache and the device global buffer maintain such planes.
//!
//! One carve-out: NaN **inputs** are outside the cross-kernel contract.
//! When both operands of an `f32` addition are NaN, hardware returns one
//! operand's payload, and which operand that is depends on codegen operand
//! order — it is ambiguous even between two differently compiled *scalar*
//! kernels, so no kernel pair can promise matching payloads there. NaNs
//! *produced* from non-NaN inputs are not affected: `inf - inf` and
//! `0 × inf` yield the single canonical indefinite NaN in every path, and
//! additions over identical NaN bit patterns are order-insensitive, so
//! bit-exactness holds for all non-NaN inputs including infinities,
//! subnormals, and mid-tree NaN creation (covered by tests below). Each
//! kernel individually remains fully deterministic for any input.

use crate::reduce::{TreePrecision, TREE_ARITY};
use crate::scalar::Bf16;

/// Lane width of the explicit-width rounding blocks. Eight `u32` lanes map
/// onto two SSE2 vectors or one AVX2 vector without the compiler having to
/// guess a profitable width.
pub const LANES: usize = 8;

/// Branchless `Bf16::from_f32(x).to_f32()` on raw `f32` bits.
///
/// For non-NaN inputs this is round-to-nearest-even to the top 16 bits
/// (`bits + 0x7FFF + lsb` then truncate), which also carries overflow into
/// the infinity encoding exactly like the scalar path. NaNs keep their top
/// bits and gain the quiet bit, again exactly like the scalar path. The NaN
/// select is a mask blend, not a branch, so a lane loop over this function
/// vectorizes.
#[inline]
#[must_use]
pub fn round_bf16_bits(bits: u32) -> u32 {
    let is_nan = u32::from((bits & 0x7FFF_FFFF) > 0x7F80_0000).wrapping_neg();
    let rounded = bits.wrapping_add(0x7FFF + ((bits >> 16) & 1)) & 0xFFFF_0000;
    let quiet = ((bits >> 16) | 0x0040) << 16;
    (rounded & !is_nan) | (quiet & is_nan)
}

/// [`round_bf16_bits`] lifted to `f32`: the value `x` rounds to when stored
/// in a bf16 register and read back.
#[inline]
#[must_use]
pub fn round_bf16_f32(x: f32) -> f32 {
    f32::from_bits(round_bf16_bits(x.to_bits()))
}

/// Rounds [`LANES`] packed `f32` bit patterns to bf16-valued bit patterns
/// in place — the `u32x8`-style block the kernels below are built from.
#[inline]
pub fn round_bf16_lanes(lanes: &mut [u32; LANES]) {
    for lane in lanes.iter_mut() {
        *lane = round_bf16_bits(*lane);
    }
}

/// Rounds every element of an `f32` slice to its bf16 value in place,
/// processing [`LANES`]-wide blocks (the remainder goes through the same
/// scalar lane function, so the result is identical for any length).
#[inline]
pub fn round_bf16_slice(values: &mut [f32]) {
    let mut chunks = values.chunks_exact_mut(LANES);
    for chunk in &mut chunks {
        let mut lanes = [0u32; LANES];
        for (l, v) in lanes.iter_mut().zip(chunk.iter()) {
            *l = v.to_bits();
        }
        round_bf16_lanes(&mut lanes);
        for (v, l) in chunk.iter_mut().zip(lanes.iter()) {
            *v = f32::from_bits(*l);
        }
    }
    for v in chunks.into_remainder() {
        *v = round_bf16_f32(*v);
    }
}

/// One straight-line pass of the 16-input wide adder tree: the exact
/// `(0,1)(2,3)…` pairing of
/// [`tree_reduce_wide_into`](crate::reduce::tree_reduce_wide_into) for a
/// full 16-element level, unrolled into fixed 8/4/2/1 levels so there is no
/// loop-carried dependence for the vectorizer to trip over.
#[inline]
#[must_use]
fn tree16_wide(p: &[f32; TREE_ARITY]) -> f32 {
    let mut l1 = [0f32; 8];
    for i in 0..8 {
        l1[i] = p[2 * i] + p[2 * i + 1];
    }
    let mut l2 = [0f32; 4];
    for i in 0..4 {
        l2[i] = l1[2 * i] + l1[2 * i + 1];
    }
    let l3 = [l2[0] + l2[1], l2[2] + l2[3]];
    l3[0] + l3[1]
}

/// The same tree with strict per-stage bf16 rounding: every adder output is
/// rounded back to a bf16 value before feeding the next stage, matching
/// [`tree_reduce_bf16_into`](crate::reduce::tree_reduce_bf16_into) on a
/// full 16-element level. Inputs must already be bf16-valued.
#[inline]
#[must_use]
fn tree16_per_stage(p: &[f32; TREE_ARITY]) -> f32 {
    let mut l1 = [0u32; 8];
    for i in 0..8 {
        l1[i] = (p[2 * i] + p[2 * i + 1]).to_bits();
    }
    round_bf16_lanes(&mut l1);
    let mut l2 = [0f32; 4];
    for i in 0..4 {
        l2[i] = round_bf16_f32(f32::from_bits(l1[2 * i]) + f32::from_bits(l1[2 * i + 1]));
    }
    let l3 = [round_bf16_f32(l2[0] + l2[1]), round_bf16_f32(l2[2] + l2[3])];
    round_bf16_f32(l3[0] + l3[1])
}

/// The 16 rounded products `round(w[i] * v[i])` of a COMP step, from exact
/// `f32` planes. Each product is rounded to its bf16 value exactly as
/// `Bf16::mul_round` does.
#[inline]
#[must_use]
fn products16(weights: &[f32; TREE_ARITY], inputs: &[f32; TREE_ARITY]) -> [f32; TREE_ARITY] {
    let mut bits = [[0u32; LANES]; 2];
    for (half, lanes) in bits.iter_mut().enumerate() {
        for (i, b) in lanes.iter_mut().enumerate() {
            let j = half * LANES + i;
            *b = (weights[j] * inputs[j]).to_bits();
        }
        round_bf16_lanes(lanes);
    }
    let mut p = [0f32; TREE_ARITY];
    for (j, v) in p.iter_mut().enumerate() {
        *v = f32::from_bits(bits[j / LANES][j % LANES]);
    }
    p
}

#[inline]
fn widen16(values: &[Bf16; TREE_ARITY]) -> [f32; TREE_ARITY] {
    let mut wide = [0f32; TREE_ARITY];
    for (w, v) in wide.iter_mut().zip(values.iter()) {
        *w = v.to_f32();
    }
    wide
}

/// SIMD-friendly [`dot16_wide`](crate::reduce::dot16_wide): one full COMP
/// step (16 rounded products, wide `f32` tree) over exact `f32` planes.
#[inline]
#[must_use]
pub fn dot16_wide_planes_simd(weights: &[f32; TREE_ARITY], inputs: &[f32; TREE_ARITY]) -> f32 {
    tree16_wide(&products16(weights, inputs))
}

/// SIMD-friendly [`dot16_wide`](crate::reduce::dot16_wide) over bf16
/// operands (widened on entry; `Bf16::to_f32` is exact).
#[inline]
#[must_use]
pub fn dot16_wide_simd(weights: &[Bf16; TREE_ARITY], inputs: &[Bf16; TREE_ARITY]) -> f32 {
    dot16_wide_planes_simd(&widen16(weights), &widen16(inputs))
}

/// SIMD-friendly [`dot16_per_stage`](crate::reduce::dot16_per_stage) over
/// exact `f32` planes: rounded products, then per-stage rounded tree. The
/// root is a bf16-valued `f32`; `Bf16::from_f32` on it is the identity.
#[inline]
#[must_use]
pub fn dot16_per_stage_planes_simd(
    weights: &[f32; TREE_ARITY],
    inputs: &[f32; TREE_ARITY],
) -> Bf16 {
    Bf16::from_f32(tree16_per_stage(&products16(weights, inputs)))
}

/// SIMD-friendly [`dot16_per_stage`](crate::reduce::dot16_per_stage) over
/// bf16 operands.
#[inline]
#[must_use]
pub fn dot16_per_stage_simd(weights: &[Bf16; TREE_ARITY], inputs: &[Bf16; TREE_ARITY]) -> Bf16 {
    dot16_per_stage_planes_simd(&widen16(weights), &widen16(inputs))
}

/// Folds a whole row of 16-wide COMP steps into the result latch in one
/// pass: for each consecutive 16-element sub-chunk of `weights` × `inputs`
/// (exact `f32` planes), performs one tree reduction and one latch
/// accumulation in the given `precision` — step for step identical to
/// calling [`comp_step_prewidened`](crate::reduce::comp_step_prewidened)
/// (Wide) or [`comp_step_noalloc`](crate::reduce::comp_step_noalloc)
/// (PerStage, with the bf16 weights these planes widen) once per sub-chunk,
/// in sub-chunk order.
///
/// # Panics
///
/// Panics if the slices differ in length or the length is not a multiple
/// of [`TREE_ARITY`].
#[must_use]
pub fn comp_subchunks16(
    latch: Bf16,
    weights: &[f32],
    inputs: &[f32],
    precision: TreePrecision,
) -> Bf16 {
    assert_eq!(
        weights.len(),
        inputs.len(),
        "weight/input planes must pair up"
    );
    assert_eq!(
        weights.len() % TREE_ARITY,
        0,
        "batched COMP planes must be whole 16-element sub-chunks"
    );
    match precision {
        TreePrecision::Wide => comp_subchunks16_wide(latch, weights, inputs),
        TreePrecision::PerStage => comp_subchunks16_per_stage(latch, weights, inputs),
    }
}

/// Sub-chunks per batched-fold block: the flat per-level passes below run
/// over fixed stack scratch of this many sub-chunks at a time (32 × 16
/// `f32` = 2 KiB — a whole hbm2e-like row), so the fold allocates nothing
/// regardless of row width.
const BLOCK_SUBS: usize = 32;
const BLOCK_ELEMS: usize = BLOCK_SUBS * TREE_ARITY;

/// One flat adder-tree level over a block: `out[i] = in[2i] + in[2i+1]`
/// for `i in 0..n`, rounded per element when `ROUND`. Because sub-chunks
/// are laid out contiguously and every level width divides 16, adjacent
/// global pairs never straddle a sub-chunk boundary — the per-sub tree
/// levels of the whole block collapse into one vectorizable pass.
#[inline]
fn tree_level_flat<const ROUND: bool>(input: &[f32], out: &mut [f32], n: usize) {
    for (o, pair) in out[..n].iter_mut().zip(input[..2 * n].chunks_exact(2)) {
        let s = pair[0] + pair[1];
        *o = if ROUND { round_bf16_f32(s) } else { s };
    }
}

/// Fused products + first adder level over a block: for each operand pair
/// `(2i, 2i+1)`, round the two products and emit their sum (rounded when
/// `ROUND`). Identical arithmetic to a [`products16`]-style pass followed
/// by [`tree_level_flat`], but the rounded products never round-trip
/// through memory — the level-1 value is formed in registers.
#[inline]
fn products_level1_flat<const ROUND: bool>(
    weights: &[f32],
    inputs: &[f32],
    out: &mut [f32],
    n: usize,
) {
    for ((o, w), v) in out[..n]
        .iter_mut()
        .zip(weights[..2 * n].chunks_exact(2))
        .zip(inputs[..2 * n].chunks_exact(2))
    {
        let p0 = f32::from_bits(round_bf16_bits((w[0] * v[0]).to_bits()));
        let p1 = f32::from_bits(round_bf16_bits((w[1] * v[1]).to_bits()));
        let s = p0 + p1;
        *o = if ROUND { round_bf16_f32(s) } else { s };
    }
}

/// [`round_bf16_bits`] minus the NaN blend: correct for every input whose
/// exponent field is below `0xFF` (anything but infinities and NaNs),
/// including values that round-carry *into* the infinity encoding. Five
/// integer ops per lane instead of the full select — the clean-block fast
/// path below proves no special value is present before trusting it.
#[inline]
#[must_use]
fn round_bf16_bits_finite(bits: u32) -> u32 {
    bits.wrapping_add(0x7FFF + ((bits >> 16) & 1)) & 0xFFFF_0000
}

/// The clean-block variant of [`products_level1_flat`]: rounds products
/// with [`round_bf16_bits_finite`] while OR-accumulating an
/// exponent-is-all-ones detector over the raw product bits. Returns `true`
/// if any product was infinite or NaN — in which case the output is
/// untrusted and the caller must redo the block through the full path.
/// When it returns `false`, the output is bit-identical to
/// [`products_level1_flat`] (level-1 sums are always rounded through the
/// full [`round_bf16_f32`], since sums can overflow independently).
#[inline]
fn products_level1_flat_clean<const ROUND: bool>(
    weights: &[f32],
    inputs: &[f32],
    out: &mut [f32],
    n: usize,
) -> bool {
    let mut special = 0u32;
    for ((o, w), v) in out[..n]
        .iter_mut()
        .zip(weights[..2 * n].chunks_exact(2))
        .zip(inputs[..2 * n].chunks_exact(2))
    {
        let b0 = (w[0] * v[0]).to_bits();
        let b1 = (w[1] * v[1]).to_bits();
        special |= u32::from(b0 & 0x7F80_0000 == 0x7F80_0000);
        special |= u32::from(b1 & 0x7F80_0000 == 0x7F80_0000);
        let s =
            f32::from_bits(round_bf16_bits_finite(b0)) + f32::from_bits(round_bf16_bits_finite(b1));
        *o = if ROUND { round_bf16_f32(s) } else { s };
    }
    special != 0
}

/// Adder-tree roots of one block: products + four flat tree levels, with
/// rounding per level when `ROUND` (per-stage discipline). `roots[s]` is
/// the tree output of sub-chunk `s`; only the first `wb.len() / 16` slots
/// are written. The clean-path product pass handles the common all-finite
/// case; if any product hits the inf/NaN encoding the block is redone
/// through the full rounding path (identical bits in every case).
#[inline]
fn block_roots<const ROUND: bool>(wb: &[f32], vb: &[f32], roots: &mut [f32; BLOCK_SUBS]) {
    let elems = wb.len();
    let mut l1 = [0f32; BLOCK_ELEMS / 2];
    let mut l2 = [0f32; BLOCK_ELEMS / 4];
    let mut l3 = [0f32; BLOCK_ELEMS / 8];
    if products_level1_flat_clean::<ROUND>(wb, vb, &mut l1, elems / 2) {
        products_level1_flat::<ROUND>(wb, vb, &mut l1, elems / 2);
    }
    tree_level_flat::<ROUND>(&l1, &mut l2, elems / 4);
    tree_level_flat::<ROUND>(&l2, &mut l3, elems / 8);
    tree_level_flat::<ROUND>(&l3, roots, elems / 16);
}

/// Wide-discipline batched fold: `latch ← round(latch + tree(sub))` per
/// sub-chunk. The latch stays a bf16-valued `f32` across iterations, so
/// each step is exactly `Bf16::accumulate_wide`. Internally the fold runs
/// level by level over [`BLOCK_SUBS`]-sub-chunk blocks (products for every
/// sub-chunk, then each tree level flat across the block) — the same
/// arithmetic DAG per sub-chunk, so bit-exactness with the per-sub-chunk
/// scalar steps is preserved, but every pass is a straight-line lane loop.
#[inline]
#[must_use]
fn comp_subchunks16_wide(latch: Bf16, weights: &[f32], inputs: &[f32]) -> Bf16 {
    let mut acc = latch.to_f32();
    for (wb, vb) in weights.chunks(BLOCK_ELEMS).zip(inputs.chunks(BLOCK_ELEMS)) {
        let mut roots = [0f32; BLOCK_SUBS];
        block_roots::<false>(wb, vb, &mut roots);
        for &root in roots.iter().take(wb.len() / 16) {
            acc = round_bf16_f32(acc + root);
        }
    }
    Bf16::from_f32(acc)
}

/// Per-stage batched fold: `latch ← round(latch + root)` per sub-chunk,
/// where `root` is the per-stage-rounded tree output — exactly the
/// `latch + tree` bf16 addition of the scalar per-stage step. Flattened
/// across [`BLOCK_SUBS`]-sub-chunk blocks like the wide fold, with every
/// adder output rounded before the next level.
#[inline]
#[must_use]
fn comp_subchunks16_per_stage(latch: Bf16, weights: &[f32], inputs: &[f32]) -> Bf16 {
    let mut acc = latch.to_f32();
    for (wb, vb) in weights.chunks(BLOCK_ELEMS).zip(inputs.chunks(BLOCK_ELEMS)) {
        let mut roots = [0f32; BLOCK_SUBS];
        block_roots::<true>(wb, vb, &mut roots);
        for &root in roots.iter().take(wb.len() / 16) {
            acc = round_bf16_f32(acc + root);
        }
    }
    Bf16::from_f32(acc)
}

/// Bank gangs larger than this fall back to independent per-bank folds in
/// [`comp_subchunks16_multi`] (Newton gangs all 16 banks of a channel, so
/// the interleaved path covers every real configuration).
pub const MULTI_MAX_BANKS: usize = 16;

/// Multi-bank batched fold: one [`comp_subchunks16`] per bank, computed
/// together. `latches[k]` is folded against `weights[k]` (bank `k`'s row
/// plane) and the shared `inputs` plane — bit-exact with calling
/// [`comp_subchunks16`] once per bank, because banks never interact: the
/// per-bank arithmetic DAG is [`block_roots`] plus the same serial latch
/// chain, only *scheduled* differently.
///
/// The point of computing banks together is the latch chain. Per bank it
/// is a true serial dependence — `acc = round(acc + root)` cannot overlap
/// with itself — so folding banks one at a time leaves the core waiting
/// on ~10-cycle round-trips, 32 per row. Interleaving transposes the
/// chain: for each sub-chunk, all banks' latch updates happen side by
/// side (a flat, vectorizable pass over [`MULTI_MAX_BANKS`] independent
/// accumulators), so the serial latency is paid once per sub-chunk for
/// the whole gang instead of once per (bank, sub-chunk).
///
/// # Panics
///
/// Panics if `latches` and `weights` differ in length, any plane's length
/// differs from `inputs.len()`, or the length is not a multiple of
/// [`TREE_ARITY`].
pub fn comp_subchunks16_multi(
    latches: &mut [Bf16],
    weights: &[&[f32]],
    inputs: &[f32],
    precision: TreePrecision,
) {
    assert_eq!(
        latches.len(),
        weights.len(),
        "one latch per bank weight plane"
    );
    for plane in weights {
        assert_eq!(
            plane.len(),
            inputs.len(),
            "weight/input planes must pair up"
        );
    }
    assert_eq!(
        inputs.len() % TREE_ARITY,
        0,
        "batched COMP planes must be whole 16-element sub-chunks"
    );
    let nb = latches.len();
    if nb == 0 {
        return;
    }
    if nb > MULTI_MAX_BANKS {
        for (latch, plane) in latches.iter_mut().zip(weights) {
            *latch = comp_subchunks16(*latch, plane, inputs, precision);
        }
        return;
    }
    let mut acc = [0f32; MULTI_MAX_BANKS];
    for (a, l) in acc.iter_mut().zip(latches.iter()) {
        *a = l.to_f32();
    }
    let mut base = 0usize;
    while base < inputs.len() {
        let elems = (inputs.len() - base).min(BLOCK_ELEMS);
        let n_sub = elems / TREE_ARITY;
        let vb = &inputs[base..base + elems];
        // Roots transposed to `[sub][bank]` so the latch pass below walks
        // contiguous rows of independent accumulators.
        let mut roots_t = [0f32; BLOCK_SUBS * MULTI_MAX_BANKS];
        let mut roots = [0f32; BLOCK_SUBS];
        for (k, plane) in weights.iter().enumerate() {
            match precision {
                TreePrecision::Wide => {
                    block_roots::<false>(&plane[base..base + elems], vb, &mut roots);
                }
                TreePrecision::PerStage => {
                    block_roots::<true>(&plane[base..base + elems], vb, &mut roots);
                }
            }
            for (sub, &r) in roots.iter().take(n_sub).enumerate() {
                roots_t[sub * nb + k] = r;
            }
        }
        for sub in 0..n_sub {
            let row = &roots_t[sub * nb..(sub + 1) * nb];
            for (a, &r) in acc[..nb].iter_mut().zip(row) {
                *a = round_bf16_f32(*a + r);
            }
        }
        base += elems;
    }
    for (l, &a) in latches.iter_mut().zip(acc.iter()) {
        *l = Bf16::from_f32(a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::{
        comp_step_noalloc, comp_step_prewidened, dot16_per_stage, dot16_wide, dot16_wide_prewidened,
    };

    /// Deterministic 64-bit mixer (splitmix64 finalizer) — no external
    /// crates on the bf16 test path.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform over all non-NaN bf16 bit patterns (NaN inputs are outside
    /// the cross-kernel contract — see the module docs).
    fn random_bf16(state: &mut u64) -> Bf16 {
        let b = Bf16::from_bits(mix(state) as u16);
        if b.is_nan() {
            Bf16::ZERO
        } else {
            b
        }
    }

    fn bits_of(b: Bf16) -> u16 {
        b.to_bits()
    }

    #[test]
    fn round_lane_matches_scalar_for_every_high_half_and_tie_pattern() {
        // Every possible top-16-bit pattern (sign, exponent, mantissa head)
        // crossed with the low-half patterns that exercise every rounding
        // case: exact, just-below-tie, tie (even and odd), just-above-tie,
        // and all-ones (carry propagation).
        for hi in 0..=0xFFFFu32 {
            for lo in [0x0000u32, 0x0001, 0x7FFF, 0x8000, 0x8001, 0xFFFF] {
                let x = f32::from_bits((hi << 16) | lo);
                let oracle = Bf16::from_f32(x).to_f32().to_bits();
                assert_eq!(
                    round_bf16_bits(x.to_bits()),
                    oracle,
                    "bits {:#010x}",
                    (hi << 16) | lo
                );
            }
        }
    }

    #[test]
    fn round_lane_matches_scalar_on_random_f32_bits() {
        let mut state = 0x00D1_CE00u64;
        for _ in 0..1_000_000 {
            let bits = mix(&mut state) as u32;
            let x = f32::from_bits(bits);
            assert_eq!(
                round_bf16_bits(bits),
                Bf16::from_f32(x).to_f32().to_bits(),
                "bits {bits:#010x}"
            );
        }
    }

    #[test]
    fn round_slice_matches_lane_for_ragged_lengths() {
        let mut state = 7u64;
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 64] {
            let values: Vec<f32> = (0..len)
                .map(|_| f32::from_bits(mix(&mut state) as u32))
                .collect();
            let mut rounded = values.clone();
            round_bf16_slice(&mut rounded);
            for (r, v) in rounded.iter().zip(values.iter()) {
                assert_eq!(r.to_bits(), round_bf16_f32(*v).to_bits());
            }
        }
    }

    #[test]
    fn dot16_kernels_match_scalar_oracles_on_random_operands() {
        let mut state = 0xAB5E_11E5u64;
        for _ in 0..20_000 {
            let w: [Bf16; 16] = core::array::from_fn(|_| random_bf16(&mut state));
            let v: [Bf16; 16] = core::array::from_fn(|_| random_bf16(&mut state));
            let wide = dot16_wide(&w, &v);
            assert_eq!(dot16_wide_simd(&w, &v).to_bits(), wide.to_bits());
            let w_plane: [f32; 16] = core::array::from_fn(|i| w[i].to_f32());
            let v_plane: [f32; 16] = core::array::from_fn(|i| v[i].to_f32());
            assert_eq!(
                dot16_wide_planes_simd(&w_plane, &v_plane).to_bits(),
                dot16_wide_prewidened(&w_plane, &v).to_bits()
            );
            let staged = dot16_per_stage(&w, &v);
            assert_eq!(bits_of(dot16_per_stage_simd(&w, &v)), bits_of(staged));
            assert_eq!(
                bits_of(dot16_per_stage_planes_simd(&w_plane, &v_plane)),
                bits_of(staged)
            );
        }
    }

    #[test]
    fn dot16_kernels_match_scalar_oracles_on_special_values() {
        // No NaN *inputs* (outside the contract, see module docs) — but
        // plenty of NaN *creation*: 0 × inf products and inf - inf adder
        // stages, which canonicalize identically in every path.
        let specials = [
            Bf16::ZERO,
            Bf16::NEG_ZERO,
            Bf16::ONE,
            Bf16::INFINITY,
            Bf16::NEG_INFINITY,
            Bf16::MAX,
            Bf16::MIN_POSITIVE,
            Bf16::from_bits(0x0001), // smallest subnormal
            Bf16::from_f32(-2.5),
        ];
        let mut state = 0x5EEDu64;
        for _ in 0..5_000 {
            let w: [Bf16; 16] =
                core::array::from_fn(|_| specials[(mix(&mut state) as usize) % specials.len()]);
            let v: [Bf16; 16] =
                core::array::from_fn(|_| specials[(mix(&mut state) as usize) % specials.len()]);
            assert_eq!(
                dot16_wide_simd(&w, &v).to_bits(),
                dot16_wide(&w, &v).to_bits()
            );
            assert_eq!(
                bits_of(dot16_per_stage_simd(&w, &v)),
                bits_of(dot16_per_stage(&w, &v))
            );
        }
    }

    #[test]
    fn batched_wide_fold_matches_per_subchunk_scalar_steps() {
        let mut state = 0xB47C_4ED0u64;
        for n_sub in [1usize, 2, 3, 7, 32] {
            let w: Vec<Bf16> = (0..n_sub * 16).map(|_| random_bf16(&mut state)).collect();
            let v: Vec<Bf16> = (0..n_sub * 16).map(|_| random_bf16(&mut state)).collect();
            let w_plane: Vec<f32> = w.iter().map(|x| x.to_f32()).collect();
            let v_plane: Vec<f32> = v.iter().map(|x| x.to_f32()).collect();
            let latch0 = random_bf16(&mut state);

            let mut oracle = latch0;
            for s in 0..n_sub {
                oracle = comp_step_prewidened(
                    oracle,
                    &w_plane[s * 16..(s + 1) * 16],
                    &v[s * 16..(s + 1) * 16],
                    TreePrecision::Wide,
                );
            }
            let batched = comp_subchunks16(latch0, &w_plane, &v_plane, TreePrecision::Wide);
            assert_eq!(bits_of(batched), bits_of(oracle), "n_sub={n_sub}");
        }
    }

    #[test]
    fn batched_per_stage_fold_matches_per_subchunk_scalar_steps() {
        let mut state = 0x9E15_7A6Eu64;
        for n_sub in [1usize, 2, 5, 32] {
            let w: Vec<Bf16> = (0..n_sub * 16).map(|_| random_bf16(&mut state)).collect();
            let v: Vec<Bf16> = (0..n_sub * 16).map(|_| random_bf16(&mut state)).collect();
            let w_plane: Vec<f32> = w.iter().map(|x| x.to_f32()).collect();
            let v_plane: Vec<f32> = v.iter().map(|x| x.to_f32()).collect();
            let latch0 = random_bf16(&mut state);

            let mut oracle = latch0;
            for s in 0..n_sub {
                oracle = comp_step_noalloc(
                    oracle,
                    &w[s * 16..(s + 1) * 16],
                    &v[s * 16..(s + 1) * 16],
                    TreePrecision::PerStage,
                );
            }
            let batched = comp_subchunks16(latch0, &w_plane, &v_plane, TreePrecision::PerStage);
            assert_eq!(bits_of(batched), bits_of(oracle), "n_sub={n_sub}");
        }
    }

    #[test]
    fn batched_fold_with_zero_subchunks_returns_the_latch() {
        let latch = Bf16::from_f32(1.625);
        assert_eq!(
            bits_of(comp_subchunks16(latch, &[], &[], TreePrecision::Wide)),
            bits_of(latch)
        );
    }

    #[test]
    #[should_panic(expected = "whole 16-element sub-chunks")]
    fn batched_fold_rejects_ragged_planes() {
        let _ = comp_subchunks16(Bf16::ZERO, &[0.0; 8], &[0.0; 8], TreePrecision::Wide);
    }

    #[test]
    fn multi_bank_fold_matches_per_bank_folds() {
        let mut state = 0x5151_u64;
        // Cover the interleaved path at gang sizes 1, 3, and the full 16,
        // plus the >MULTI_MAX_BANKS fallback, at row widths that exercise
        // partial and multiple blocks.
        for &nb in &[1usize, 3, 16, MULTI_MAX_BANKS + 2] {
            for &n_sub in &[1usize, 7, 32, 45] {
                for &precision in &[TreePrecision::Wide, TreePrecision::PerStage] {
                    let planes: Vec<Vec<f32>> = (0..nb)
                        .map(|_| {
                            (0..n_sub * 16)
                                .map(|_| random_bf16(&mut state).to_f32())
                                .collect()
                        })
                        .collect();
                    let inputs: Vec<f32> = (0..n_sub * 16)
                        .map(|_| random_bf16(&mut state).to_f32())
                        .collect();
                    let latches0: Vec<Bf16> = (0..nb).map(|_| random_bf16(&mut state)).collect();

                    let refs: Vec<&[f32]> = planes.iter().map(Vec::as_slice).collect();
                    let mut multi = latches0.clone();
                    comp_subchunks16_multi(&mut multi, &refs, &inputs, precision);

                    for k in 0..nb {
                        let single = comp_subchunks16(latches0[k], &planes[k], &inputs, precision);
                        assert_eq!(
                            bits_of(multi[k]),
                            bits_of(single),
                            "nb={nb} n_sub={n_sub} bank={k} {precision:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn multi_bank_fold_matches_per_bank_folds_on_special_values() {
        // One bank's plane carries infinities and NaNs (forcing the
        // full-path redo of its blocks), the neighbours stay finite — the
        // interleaved schedule must not let the special bank perturb them.
        let n_sub = 32;
        let mut state = 0x7272_u64;
        let mut planes: Vec<Vec<f32>> = (0..4)
            .map(|_| {
                (0..n_sub * 16)
                    .map(|_| random_bf16(&mut state).to_f32())
                    .collect()
            })
            .collect();
        planes[1][5] = f32::INFINITY;
        planes[1][100] = f32::NAN;
        planes[1][300] = f32::NEG_INFINITY;
        let inputs: Vec<f32> = (0..n_sub * 16)
            .map(|_| random_bf16(&mut state).to_f32())
            .collect();
        let latches0: Vec<Bf16> = (0..4).map(|_| random_bf16(&mut state)).collect();

        for &precision in &[TreePrecision::Wide, TreePrecision::PerStage] {
            let refs: Vec<&[f32]> = planes.iter().map(Vec::as_slice).collect();
            let mut multi = latches0.clone();
            comp_subchunks16_multi(&mut multi, &refs, &inputs, precision);
            for k in 0..4 {
                let single = comp_subchunks16(latches0[k], &planes[k], &inputs, precision);
                assert_eq!(bits_of(multi[k]), bits_of(single), "bank={k} {precision:?}");
            }
        }
    }
}
