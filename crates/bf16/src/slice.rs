//! Bulk conversions and DRAM-row byte packing for bf16 buffers.
//!
//! Newton's DRAM rows store matrix chunks as contiguous little-endian bf16
//! words ("512 bfloat16 elements per DRAM row", Sec. III-C). These helpers
//! convert between `f32` host data, [`Bf16`] buffers, and the raw row bytes
//! that `newton-dram` banks store.

use crate::Bf16;
use std::error::Error;
use std::fmt;

/// An error decoding bf16 elements from raw bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeBytesError {
    len: usize,
}

impl fmt::Display for DecodeBytesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "byte buffer length {} is not a multiple of 2 (bf16 element size)",
            self.len
        )
    }
}

impl Error for DecodeBytesError {}

/// Converts a slice of `f32` to a vector of [`Bf16`] (round-to-nearest-even
/// per element).
///
/// # Example
///
/// ```
/// use newton_bf16::{Bf16, slice};
/// let v = slice::from_f32(&[1.0, 2.0]);
/// assert_eq!(v, vec![Bf16::ONE, Bf16::from_f32(2.0)]);
/// ```
#[must_use]
pub fn from_f32(values: &[f32]) -> Vec<Bf16> {
    values.iter().copied().map(Bf16::from_f32).collect()
}

/// Converts a slice of [`Bf16`] to a vector of `f32` (exact).
#[must_use]
pub fn to_f32(values: &[Bf16]) -> Vec<f32> {
    values.iter().map(|v| v.to_f32()).collect()
}

/// Converts `f32` values into a caller-provided [`Bf16`] buffer, the
/// allocation-free form of [`from_f32`] for hot loops that reuse scratch.
///
/// # Panics
///
/// Panics if the buffers have different lengths.
pub fn from_f32_into(values: &[f32], out: &mut [Bf16]) {
    assert_eq!(
        values.len(),
        out.len(),
        "from_f32_into: input/output length mismatch"
    );
    for (o, v) in out.iter_mut().zip(values) {
        *o = Bf16::from_f32(*v);
    }
}

/// Converts [`Bf16`] values into a caller-provided `f32` buffer, the
/// allocation-free form of [`to_f32`] for hot loops that reuse scratch.
///
/// # Panics
///
/// Panics if the buffers have different lengths.
pub fn to_f32_into(values: &[Bf16], out: &mut [f32]) {
    assert_eq!(
        values.len(),
        out.len(),
        "to_f32_into: input/output length mismatch"
    );
    for (o, v) in out.iter_mut().zip(values) {
        *o = v.to_f32();
    }
}

/// Converts a slice of [`Bf16`] to a vector of `f64` (exact).
#[must_use]
pub fn to_f64(values: &[Bf16]) -> Vec<f64> {
    values.iter().map(|v| v.to_f64()).collect()
}

/// Packs bf16 elements into little-endian bytes, the layout DRAM rows use.
///
/// # Example
///
/// ```
/// use newton_bf16::{Bf16, slice};
/// let bytes = slice::pack(&[Bf16::from_bits(0x0201)]);
/// assert_eq!(bytes, vec![0x01, 0x02]);
/// ```
#[must_use]
pub fn pack(values: &[Bf16]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Packs bf16 elements into a pre-existing byte buffer region.
///
/// # Panics
///
/// Panics if `out.len() != values.len() * 2`.
pub fn pack_into(values: &[Bf16], out: &mut [u8]) {
    assert_eq!(
        out.len(),
        values.len() * 2,
        "pack_into: output buffer must be exactly 2 bytes per element"
    );
    for (v, chunk) in values.iter().zip(out.chunks_exact_mut(2)) {
        chunk.copy_from_slice(&v.to_le_bytes());
    }
}

/// Unpacks little-endian bytes into bf16 elements.
///
/// # Errors
///
/// Returns [`DecodeBytesError`] if `bytes.len()` is odd.
///
/// # Example
///
/// ```
/// use newton_bf16::{Bf16, slice};
/// let vals = slice::unpack(&[0x80, 0x3F]).unwrap();
/// assert_eq!(vals, vec![Bf16::ONE]);
/// ```
pub fn unpack(bytes: &[u8]) -> Result<Vec<Bf16>, DecodeBytesError> {
    if !bytes.len().is_multiple_of(2) {
        return Err(DecodeBytesError { len: bytes.len() });
    }
    Ok(bytes
        .chunks_exact(2)
        .map(|c| Bf16::from_le_bytes([c[0], c[1]]))
        .collect())
}

/// Maximum absolute difference between a bf16 buffer and an `f64` reference.
///
/// Returns `None` when the buffers have different lengths (a shape bug the
/// caller should surface, not silently clamp).
#[must_use]
pub fn max_abs_error(values: &[Bf16], reference: &[f64]) -> Option<f64> {
    if values.len() != reference.len() {
        return None;
    }
    Some(
        values
            .iter()
            .zip(reference)
            .map(|(v, r)| (v.to_f64() - r).abs())
            .fold(0.0, f64::max),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip_preserves_representable_values() {
        let input = [0.0_f32, 1.0, -2.5, 0.15625, 1024.0];
        let bf = from_f32(&input);
        assert_eq!(to_f32(&bf), input.to_vec());
        assert_eq!(
            to_f64(&bf),
            input.iter().map(|&x| x as f64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn into_conversions_match_allocating_forms() {
        let input = [0.0_f32, 1.0, -2.5, 0.15625, 1024.0];
        let mut bf_buf = [Bf16::ZERO; 5];
        from_f32_into(&input, &mut bf_buf);
        assert_eq!(bf_buf.to_vec(), from_f32(&input));
        let mut f32_buf = [0.0f32; 5];
        to_f32_into(&bf_buf, &mut f32_buf);
        assert_eq!(f32_buf.to_vec(), to_f32(&bf_buf));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn into_conversions_reject_mismatched_lengths() {
        from_f32_into(&[1.0], &mut [Bf16::ZERO; 2]);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let values: Vec<Bf16> = (0..512u16).map(Bf16::from_bits).collect();
        let bytes = pack(&values);
        assert_eq!(bytes.len(), 1024);
        assert_eq!(unpack(&bytes).unwrap(), values);
    }

    #[test]
    fn pack_into_writes_exact_region() {
        let values = [Bf16::ONE, Bf16::NEG_ONE];
        let mut buf = [0u8; 4];
        pack_into(&values, &mut buf);
        assert_eq!(unpack(&buf).unwrap(), values.to_vec());
    }

    #[test]
    #[should_panic(expected = "2 bytes per element")]
    fn pack_into_rejects_wrong_size() {
        pack_into(&[Bf16::ONE], &mut [0u8; 4]);
    }

    #[test]
    fn unpack_rejects_odd_lengths() {
        let err = unpack(&[1, 2, 3]).unwrap_err();
        assert!(err.to_string().contains("not a multiple of 2"));
    }

    #[test]
    fn max_abs_error_detects_shape_mismatch_and_errors() {
        let vals = from_f32(&[1.0, 2.0]);
        assert_eq!(max_abs_error(&vals, &[1.0]), None);
        let err = max_abs_error(&vals, &[1.0, 2.5]).unwrap();
        assert_eq!(err, 0.5);
    }
}
