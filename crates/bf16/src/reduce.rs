//! Adder-tree reduction semantics for Newton's per-bank compute unit.
//!
//! Each Newton bank multiplies a 16-element matrix sub-chunk by the matching
//! 16 input-vector elements and reduces the products "through a pipelined
//! adder tree" (paper Fig. 4): a 16-to-1 tree needs 15 adders plus one more
//! for accumulation into the result latch. This module provides the tree in
//! the two precision disciplines a hardware implementation might use:
//!
//! * **Wide** ([`dot_chunk_wide`], [`tree_reduce_wide`]): multipliers round
//!   products to bf16 but the tree carries `f32` (wide carry-save adders),
//!   rounding only at the result latch. This is the simulator's default.
//! * **Per-stage** ([`dot_chunk_bf16`], [`tree_reduce_bf16`]): every adder
//!   output is rounded back to bf16, the most conservative hardware model.
//!
//! Both disciplines reduce in *tree order* (pairwise), which differs from a
//! sequential sum once rounding is involved; tests pin the distinction.

use crate::Bf16;

/// Hardware arity of the adder tree: 16 multipliers feed a 16-to-1 tree
/// (Fig. 4). The fixed-arity [`dot16_wide`]/[`dot16_per_stage`] kernels
/// accept at most this many elements.
pub const TREE_ARITY: usize = 16;

/// Upper bound on the sub-chunk width any caller may reduce through the
/// stack-only kernels ([`comp_step_noalloc`] and the `MacUnit` hot path):
/// four tree passes worth of elements, matching the widest column I/O the
/// device model accepts.
pub const MAX_CHUNK: usize = 64;

/// Precision discipline for the adder tree.
///
/// See the [module docs](self) for the hardware interpretation of each mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TreePrecision {
    /// Products rounded to bf16; tree carries `f32`; result latch rounds.
    #[default]
    Wide,
    /// Every tree stage rounds its output to bf16.
    PerStage,
}

/// Reduces values pairwise (tree order) carrying `f32` through the tree.
///
/// For a non-power-of-two length the trailing element of an odd level is
/// carried to the next level unchanged, as a hardware tree with a bypassed
/// lane would do.
///
/// # Example
///
/// ```
/// use newton_bf16::{Bf16, reduce};
/// let xs: Vec<Bf16> = (1..=5).map(|i| Bf16::from_f32(i as f32)).collect();
/// assert_eq!(reduce::tree_reduce_wide(&xs), 15.0);
/// ```
#[must_use]
pub fn tree_reduce_wide(values: &[Bf16]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let mut level: Vec<f32> = values.iter().map(|v| v.to_f32()).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            next.push(if pair.len() == 2 {
                pair[0] + pair[1]
            } else {
                pair[0]
            });
        }
        level = next;
    }
    level[0]
}

/// Reduces values pairwise (tree order) rounding each stage to bf16.
///
/// # Example
///
/// ```
/// use newton_bf16::{Bf16, reduce};
/// let xs = vec![Bf16::ONE; 16];
/// assert_eq!(reduce::tree_reduce_bf16(&xs).to_f32(), 16.0);
/// ```
#[must_use]
pub fn tree_reduce_bf16(values: &[Bf16]) -> Bf16 {
    if values.is_empty() {
        return Bf16::ZERO;
    }
    let mut level: Vec<Bf16> = values.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            next.push(if pair.len() == 2 {
                pair[0] + pair[1]
            } else {
                pair[0]
            });
        }
        level = next;
    }
    level[0]
}

/// In-place, allocation-free form of [`tree_reduce_wide`]: reduces
/// `level[..]` pairwise in tree order, reusing the slice as the scratch
/// for every tree stage. Bit-exact with the reference for every length
/// (the pairing — including the bypassed odd-tail lane — is identical).
///
/// The slice contents are clobbered. Returns the root of the tree, `0.0`
/// for an empty slice.
///
/// # Example
///
/// ```
/// use newton_bf16::reduce;
/// let mut buf = [1.0f32, 2.0, 3.0, 4.0, 5.0];
/// assert_eq!(reduce::tree_reduce_wide_into(&mut buf), 15.0);
/// ```
#[must_use]
pub fn tree_reduce_wide_into(level: &mut [f32]) -> f32 {
    let mut n = level.len();
    if n == 0 {
        return 0.0;
    }
    while n > 1 {
        let mut read = 0;
        let mut write = 0;
        while read + 1 < n {
            level[write] = level[read] + level[read + 1];
            read += 2;
            write += 1;
        }
        if read < n {
            // Odd tail: the bypassed lane carries to the next stage.
            level[write] = level[read];
            write += 1;
        }
        n = write;
    }
    level[0]
}

/// In-place, allocation-free form of [`tree_reduce_bf16`]: every stage
/// rounds to bf16, reusing `level` as the scratch. Bit-exact with the
/// reference; clobbers the slice. Returns [`Bf16::ZERO`] for an empty
/// slice.
#[must_use]
pub fn tree_reduce_bf16_into(level: &mut [Bf16]) -> Bf16 {
    let mut n = level.len();
    if n == 0 {
        return Bf16::ZERO;
    }
    while n > 1 {
        let mut read = 0;
        let mut write = 0;
        while read + 1 < n {
            level[write] = level[read] + level[read + 1];
            read += 2;
            write += 1;
        }
        if read < n {
            level[write] = level[read];
            write += 1;
        }
        n = write;
    }
    level[0]
}

/// Fixed-arity COMP kernel, wide discipline: up to [`TREE_ARITY`] products
/// rounded to bf16, reduced through an `f32` tree held entirely on the
/// stack. Bit-exact with [`dot_chunk_wide`]; allocates nothing.
///
/// # Panics
///
/// Panics if the lengths differ or exceed [`TREE_ARITY`].
///
/// # Example
///
/// ```
/// use newton_bf16::{Bf16, reduce};
/// let w = [Bf16::from_f32(2.0); 16];
/// let v = [Bf16::from_f32(3.0); 16];
/// assert_eq!(reduce::dot16_wide(&w, &v), 96.0);
/// ```
#[must_use]
pub fn dot16_wide(weights: &[Bf16], inputs: &[Bf16]) -> f32 {
    assert_eq!(
        weights.len(),
        inputs.len(),
        "dot16_wide: weight/input length mismatch"
    );
    assert!(
        weights.len() <= TREE_ARITY,
        "dot16_wide: {} elements exceed the tree arity {TREE_ARITY}",
        weights.len()
    );
    let mut products = [0.0f32; TREE_ARITY];
    for (p, (w, v)) in products.iter_mut().zip(weights.iter().zip(inputs)) {
        *p = w.mul_round(*v).to_f32();
    }
    tree_reduce_wide_into(&mut products[..weights.len()])
}

/// Fixed-arity COMP kernel over pre-widened weights: `weights` must hold
/// exactly `bf16.to_f32()` of each weight (the decoded-weight cache's wide
/// plane), so the multiplier sees the identical `f32` operands and the
/// result is bit-exact with [`dot16_wide`] on the unwidened weights.
///
/// # Panics
///
/// Panics if the lengths differ or exceed [`TREE_ARITY`].
#[must_use]
pub fn dot16_wide_prewidened(weights: &[f32], inputs: &[Bf16]) -> f32 {
    assert_eq!(
        weights.len(),
        inputs.len(),
        "dot16_wide_prewidened: weight/input length mismatch"
    );
    assert!(
        weights.len() <= TREE_ARITY,
        "dot16_wide_prewidened: {} elements exceed the tree arity {TREE_ARITY}",
        weights.len()
    );
    let mut products = [0.0f32; TREE_ARITY];
    for (p, (w, v)) in products.iter_mut().zip(weights.iter().zip(inputs)) {
        // mul_round(w, v) == from_f32(w.to_f32() * v.to_f32()), and the
        // cache stores w.to_f32() exactly, so this is the same multiply.
        *p = Bf16::from_f32(*w * v.to_f32()).to_f32();
    }
    tree_reduce_wide_into(&mut products[..weights.len()])
}

/// Fixed-arity COMP kernel, per-stage discipline: bf16 products, bf16
/// adders, stack scratch only. Bit-exact with [`dot_chunk_bf16`].
///
/// # Panics
///
/// Panics if the lengths differ or exceed [`TREE_ARITY`].
#[must_use]
pub fn dot16_per_stage(weights: &[Bf16], inputs: &[Bf16]) -> Bf16 {
    assert_eq!(
        weights.len(),
        inputs.len(),
        "dot16_per_stage: weight/input length mismatch"
    );
    assert!(
        weights.len() <= TREE_ARITY,
        "dot16_per_stage: {} elements exceed the tree arity {TREE_ARITY}",
        weights.len()
    );
    let mut products = [Bf16::ZERO; TREE_ARITY];
    for (p, (w, v)) in products.iter_mut().zip(weights.iter().zip(inputs)) {
        *p = w.mul_round(*v);
    }
    tree_reduce_bf16_into(&mut products[..weights.len()])
}

/// Allocation-free form of [`comp_step`] for chunks up to [`MAX_CHUNK`]
/// elements: identical semantics (bf16 products, tree reduction in the
/// chosen discipline, bf16 rounding at the result latch) with all scratch
/// on the stack. Bit-exact with the reference on every input.
///
/// # Panics
///
/// Panics if the lengths differ or exceed [`MAX_CHUNK`].
#[must_use]
pub fn comp_step_noalloc(
    latch: Bf16,
    weights: &[Bf16],
    inputs: &[Bf16],
    precision: TreePrecision,
) -> Bf16 {
    assert_eq!(
        weights.len(),
        inputs.len(),
        "comp_step_noalloc: weight/input length mismatch"
    );
    assert!(
        weights.len() <= MAX_CHUNK,
        "comp_step_noalloc: {} elements exceed MAX_CHUNK {MAX_CHUNK}",
        weights.len()
    );
    let n = weights.len();
    match precision {
        TreePrecision::Wide => {
            let mut products = [0.0f32; MAX_CHUNK];
            for (p, (w, v)) in products.iter_mut().zip(weights.iter().zip(inputs)) {
                *p = w.mul_round(*v).to_f32();
            }
            latch.accumulate_wide(tree_reduce_wide_into(&mut products[..n]))
        }
        TreePrecision::PerStage => {
            let mut products = [Bf16::ZERO; MAX_CHUNK];
            for (p, (w, v)) in products.iter_mut().zip(weights.iter().zip(inputs)) {
                *p = w.mul_round(*v);
            }
            latch + tree_reduce_bf16_into(&mut products[..n])
        }
    }
}

/// [`comp_step_noalloc`] over pre-widened weights: `weights[i]` must hold
/// exactly `w.to_f32()` of the original bf16 weight `w` (the decoded-weight
/// cache's wide plane). Since `mul_round(w, v)` is defined as
/// `from_f32(w.to_f32() * v.to_f32())`, every product — and therefore the
/// whole step — is bit-exact with [`comp_step`] on the unwidened weights,
/// in both disciplines.
///
/// # Panics
///
/// Panics if the lengths differ or exceed [`MAX_CHUNK`].
#[must_use]
pub fn comp_step_prewidened(
    latch: Bf16,
    weights: &[f32],
    inputs: &[Bf16],
    precision: TreePrecision,
) -> Bf16 {
    assert_eq!(
        weights.len(),
        inputs.len(),
        "comp_step_prewidened: weight/input length mismatch"
    );
    assert!(
        weights.len() <= MAX_CHUNK,
        "comp_step_prewidened: {} elements exceed MAX_CHUNK {MAX_CHUNK}",
        weights.len()
    );
    let n = weights.len();
    match precision {
        TreePrecision::Wide => {
            let mut products = [0.0f32; MAX_CHUNK];
            for (p, (w, v)) in products.iter_mut().zip(weights.iter().zip(inputs)) {
                *p = Bf16::from_f32(*w * v.to_f32()).to_f32();
            }
            latch.accumulate_wide(tree_reduce_wide_into(&mut products[..n]))
        }
        TreePrecision::PerStage => {
            let mut products = [Bf16::ZERO; MAX_CHUNK];
            for (p, (w, v)) in products.iter_mut().zip(weights.iter().zip(inputs)) {
                *p = Bf16::from_f32(*w * v.to_f32());
            }
            latch + tree_reduce_bf16_into(&mut products[..n])
        }
    }
}

/// One COMP step in the wide discipline: multiply element-wise (rounding
/// each product to bf16, as the 16 multipliers do), then tree-reduce in
/// `f32`. Returns the wide partial sum destined for the result latch.
///
/// # Panics
///
/// Panics if `weights` and `inputs` have different lengths.
///
/// # Example
///
/// ```
/// use newton_bf16::{Bf16, reduce};
/// let w = vec![Bf16::from_f32(2.0); 16];
/// let v = vec![Bf16::from_f32(3.0); 16];
/// assert_eq!(reduce::dot_chunk_wide(&w, &v), 96.0);
/// ```
#[must_use]
pub fn dot_chunk_wide(weights: &[Bf16], inputs: &[Bf16]) -> f32 {
    assert_eq!(
        weights.len(),
        inputs.len(),
        "dot_chunk_wide: weight/input length mismatch"
    );
    let products: Vec<Bf16> = weights
        .iter()
        .zip(inputs)
        .map(|(w, v)| w.mul_round(*v))
        .collect();
    tree_reduce_wide(&products)
}

/// One COMP step in the per-stage discipline: bf16 products, bf16 adders.
///
/// # Panics
///
/// Panics if `weights` and `inputs` have different lengths.
#[must_use]
pub fn dot_chunk_bf16(weights: &[Bf16], inputs: &[Bf16]) -> Bf16 {
    assert_eq!(
        weights.len(),
        inputs.len(),
        "dot_chunk_bf16: weight/input length mismatch"
    );
    let products: Vec<Bf16> = weights
        .iter()
        .zip(inputs)
        .map(|(w, v)| w.mul_round(*v))
        .collect();
    tree_reduce_bf16(&products)
}

/// One COMP step under either discipline, returning the new result-latch
/// value after accumulating into `latch` (bf16 rounding at the latch in
/// both cases, per the paper's "single scalar bfloat16 register").
///
/// # Panics
///
/// Panics if `weights` and `inputs` have different lengths.
///
/// # Example
///
/// ```
/// use newton_bf16::{Bf16, reduce::{comp_step, TreePrecision}};
/// let w = vec![Bf16::ONE; 16];
/// let v = vec![Bf16::ONE; 16];
/// let latch = comp_step(Bf16::ZERO, &w, &v, TreePrecision::Wide);
/// assert_eq!(latch.to_f32(), 16.0);
/// ```
#[must_use]
pub fn comp_step(latch: Bf16, weights: &[Bf16], inputs: &[Bf16], precision: TreePrecision) -> Bf16 {
    match precision {
        TreePrecision::Wide => latch.accumulate_wide(dot_chunk_wide(weights, inputs)),
        TreePrecision::PerStage => latch + dot_chunk_bf16(weights, inputs),
    }
}

/// Upper bound on the absolute error of a bf16 dot product of length `n`
/// against an exact (`f64`) reference, assuming wide-tree semantics.
///
/// Derivation: each of `n` products incurs at most half a ULP of relative
/// error (2^-9 relative bound for bf16's 8-bit significand), the `f32`
/// tree adds negligible error at these lengths, and each of the
/// `ceil(n / chunk)` latch accumulations rounds once more. The bound is
/// expressed relative to the accumulated magnitude `magnitude`.
///
/// This is deliberately loose (a safety envelope for tests), not a tight
/// numerical-analysis bound.
#[must_use]
pub fn dot_error_bound(n: usize, chunk: usize, magnitude: f64) -> f64 {
    let product_rounds = n as f64;
    let latch_rounds = (n as f64 / chunk.max(1) as f64).ceil();
    let ulp_rel = 2.0_f64.powi(-8); // one full ULP per rounding, conservative
    (product_rounds + latch_rounds) * ulp_rel * magnitude
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bf(v: f32) -> Bf16 {
        Bf16::from_f32(v)
    }

    #[test]
    fn empty_reductions_are_zero() {
        assert_eq!(tree_reduce_wide(&[]), 0.0);
        assert_eq!(tree_reduce_bf16(&[]), Bf16::ZERO);
    }

    #[test]
    fn single_element_passes_through() {
        assert_eq!(tree_reduce_wide(&[bf(7.5)]), 7.5);
        assert_eq!(tree_reduce_bf16(&[bf(-7.5)]), bf(-7.5));
    }

    #[test]
    fn sixteen_ones_sum_exactly() {
        let xs = vec![Bf16::ONE; 16];
        assert_eq!(tree_reduce_wide(&xs), 16.0);
        assert_eq!(tree_reduce_bf16(&xs).to_f32(), 16.0);
    }

    #[test]
    fn odd_lengths_carry_the_tail() {
        let xs: Vec<Bf16> = (1..=7).map(|i| bf(i as f32)).collect();
        assert_eq!(tree_reduce_wide(&xs), 28.0);
        assert_eq!(tree_reduce_bf16(&xs).to_f32(), 28.0);
    }

    #[test]
    fn tree_order_differs_from_sequential_under_rounding() {
        // 256 + 1 + 1 + 1: sequentially in bf16, each +1 is absorbed
        // (256 + 1 rounds back to 256); the tree pairs (256+1) and (1+1),
        // and 2 is large enough to register against 257-rounded-to-256...
        // Construct a case where the results provably differ.
        let xs = [bf(256.0), bf(1.0), bf(1.0), bf(1.0)];
        let sequential: Bf16 = xs.iter().copied().sum();
        let tree = tree_reduce_bf16(&xs);
        // Sequential: 256+1=257->256(RNE ties-to-even), +1 -> 256, +1 -> 256.
        assert_eq!(sequential.to_f32(), 256.0);
        // Tree: (256+1)->256, (1+1)=2, 256+2=258 representable.
        assert_eq!(tree.to_f32(), 258.0);
    }

    #[test]
    fn wide_tree_is_more_accurate_than_per_stage() {
        let xs: Vec<Bf16> = (0..16).map(|i| bf(1.0 + i as f32 / 128.0)).collect();
        let exact: f64 = xs.iter().map(|x| x.to_f64()).sum();
        let wide = tree_reduce_wide(&xs) as f64;
        let staged = tree_reduce_bf16(&xs).to_f64();
        assert!((wide - exact).abs() <= (staged - exact).abs() + 1e-9);
    }

    #[test]
    fn dot_chunk_wide_matches_manual_expansion() {
        let w: Vec<Bf16> = (0..16).map(|i| bf(i as f32 * 0.25)).collect();
        let v: Vec<Bf16> = (0..16).map(|i| bf((15 - i) as f32 * 0.5)).collect();
        let manual: f32 = w
            .iter()
            .zip(&v)
            .map(|(a, b)| a.mul_round(*b).to_f32())
            .sum();
        // All values here are exact in f32, so tree order == sequential.
        assert_eq!(dot_chunk_wide(&w, &v), manual);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_chunk_rejects_mismatched_lengths() {
        let _ = dot_chunk_wide(&[Bf16::ONE; 16], &[Bf16::ONE; 8]);
    }

    #[test]
    fn comp_step_accumulates_into_latch() {
        let w = vec![bf(0.5); 16];
        let v = vec![bf(2.0); 16];
        let mut latch = Bf16::ZERO;
        for _ in 0..4 {
            latch = comp_step(latch, &w, &v, TreePrecision::Wide);
        }
        assert_eq!(latch.to_f32(), 64.0);
        let staged = comp_step(Bf16::ZERO, &w, &v, TreePrecision::PerStage);
        assert_eq!(staged.to_f32(), 16.0);
    }

    #[test]
    fn into_reducers_match_reference_on_selected_lengths() {
        // Powers of two, odd tails, and the full MAX_CHUNK width.
        for n in [0usize, 1, 2, 3, 5, 7, 8, 13, 15, 16, 17, 31, 33, 63, 64] {
            let xs: Vec<Bf16> = (0..n).map(|i| bf((i as f32 - 7.3) * 0.37)).collect();
            let mut wide_buf: Vec<f32> = xs.iter().map(|x| x.to_f32()).collect();
            assert_eq!(
                tree_reduce_wide_into(&mut wide_buf).to_bits(),
                tree_reduce_wide(&xs).to_bits(),
                "wide mismatch at n={n}"
            );
            let mut bf_buf: Vec<Bf16> = xs.clone();
            assert_eq!(
                tree_reduce_bf16_into(&mut bf_buf),
                tree_reduce_bf16(&xs),
                "per-stage mismatch at n={n}"
            );
        }
    }

    #[test]
    fn dot16_kernels_match_chunk_references() {
        for n in 0..=TREE_ARITY {
            let w: Vec<Bf16> = (0..n).map(|i| bf(i as f32 * 0.75 - 4.0)).collect();
            let v: Vec<Bf16> = (0..n).map(|i| bf(2.5 - i as f32 * 0.3)).collect();
            assert_eq!(
                dot16_wide(&w, &v).to_bits(),
                dot_chunk_wide(&w, &v).to_bits(),
                "wide mismatch at n={n}"
            );
            assert_eq!(
                dot16_per_stage(&w, &v),
                dot_chunk_bf16(&w, &v),
                "per-stage mismatch at n={n}"
            );
            let widened: Vec<f32> = w.iter().map(|x| x.to_f32()).collect();
            assert_eq!(
                dot16_wide_prewidened(&widened, &v).to_bits(),
                dot_chunk_wide(&w, &v).to_bits(),
                "prewidened mismatch at n={n}"
            );
        }
    }

    #[test]
    fn comp_step_noalloc_matches_comp_step() {
        for n in [0usize, 1, 15, 16, 17, 48, 64] {
            let w: Vec<Bf16> = (0..n).map(|i| bf((i as f32).sin() * 3.0)).collect();
            let v: Vec<Bf16> = (0..n).map(|i| bf((i as f32).cos() * 2.0)).collect();
            let widened: Vec<f32> = w.iter().map(|x| x.to_f32()).collect();
            for precision in [TreePrecision::Wide, TreePrecision::PerStage] {
                let latch = bf(1.625);
                assert_eq!(
                    comp_step_noalloc(latch, &w, &v, precision),
                    comp_step(latch, &w, &v, precision),
                    "mismatch at n={n}, {precision:?}"
                );
                assert_eq!(
                    comp_step_prewidened(latch, &widened, &v, precision),
                    comp_step(latch, &w, &v, precision),
                    "prewidened mismatch at n={n}, {precision:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceed the tree arity")]
    fn dot16_rejects_oversized_chunks() {
        let _ = dot16_wide(&[Bf16::ONE; 17], &[Bf16::ONE; 17]);
    }

    #[test]
    #[should_panic(expected = "exceed MAX_CHUNK")]
    fn comp_step_noalloc_rejects_oversized_chunks() {
        let _ = comp_step_noalloc(
            Bf16::ZERO,
            &[Bf16::ONE; 65],
            &[Bf16::ONE; 65],
            TreePrecision::Wide,
        );
    }

    #[test]
    fn error_bound_scales_with_length_and_magnitude() {
        assert!(dot_error_bound(1024, 16, 1.0) > dot_error_bound(16, 16, 1.0));
        assert!(dot_error_bound(16, 16, 10.0) > dot_error_bound(16, 16, 1.0));
        assert!(dot_error_bound(0, 16, 1.0) >= 0.0);
    }
}
