//! Adder-tree reduction semantics for Newton's per-bank compute unit.
//!
//! Each Newton bank multiplies a 16-element matrix sub-chunk by the matching
//! 16 input-vector elements and reduces the products "through a pipelined
//! adder tree" (paper Fig. 4): a 16-to-1 tree needs 15 adders plus one more
//! for accumulation into the result latch. This module provides the tree in
//! the two precision disciplines a hardware implementation might use:
//!
//! * **Wide** ([`dot_chunk_wide`], [`tree_reduce_wide`]): multipliers round
//!   products to bf16 but the tree carries `f32` (wide carry-save adders),
//!   rounding only at the result latch. This is the simulator's default.
//! * **Per-stage** ([`dot_chunk_bf16`], [`tree_reduce_bf16`]): every adder
//!   output is rounded back to bf16, the most conservative hardware model.
//!
//! Both disciplines reduce in *tree order* (pairwise), which differs from a
//! sequential sum once rounding is involved; tests pin the distinction.

use crate::Bf16;

/// Precision discipline for the adder tree.
///
/// See the [module docs](self) for the hardware interpretation of each mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TreePrecision {
    /// Products rounded to bf16; tree carries `f32`; result latch rounds.
    #[default]
    Wide,
    /// Every tree stage rounds its output to bf16.
    PerStage,
}

/// Reduces values pairwise (tree order) carrying `f32` through the tree.
///
/// For a non-power-of-two length the trailing element of an odd level is
/// carried to the next level unchanged, as a hardware tree with a bypassed
/// lane would do.
///
/// # Example
///
/// ```
/// use newton_bf16::{Bf16, reduce};
/// let xs: Vec<Bf16> = (1..=5).map(|i| Bf16::from_f32(i as f32)).collect();
/// assert_eq!(reduce::tree_reduce_wide(&xs), 15.0);
/// ```
#[must_use]
pub fn tree_reduce_wide(values: &[Bf16]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let mut level: Vec<f32> = values.iter().map(|v| v.to_f32()).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            next.push(if pair.len() == 2 {
                pair[0] + pair[1]
            } else {
                pair[0]
            });
        }
        level = next;
    }
    level[0]
}

/// Reduces values pairwise (tree order) rounding each stage to bf16.
///
/// # Example
///
/// ```
/// use newton_bf16::{Bf16, reduce};
/// let xs = vec![Bf16::ONE; 16];
/// assert_eq!(reduce::tree_reduce_bf16(&xs).to_f32(), 16.0);
/// ```
#[must_use]
pub fn tree_reduce_bf16(values: &[Bf16]) -> Bf16 {
    if values.is_empty() {
        return Bf16::ZERO;
    }
    let mut level: Vec<Bf16> = values.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            next.push(if pair.len() == 2 {
                pair[0] + pair[1]
            } else {
                pair[0]
            });
        }
        level = next;
    }
    level[0]
}

/// One COMP step in the wide discipline: multiply element-wise (rounding
/// each product to bf16, as the 16 multipliers do), then tree-reduce in
/// `f32`. Returns the wide partial sum destined for the result latch.
///
/// # Panics
///
/// Panics if `weights` and `inputs` have different lengths.
///
/// # Example
///
/// ```
/// use newton_bf16::{Bf16, reduce};
/// let w = vec![Bf16::from_f32(2.0); 16];
/// let v = vec![Bf16::from_f32(3.0); 16];
/// assert_eq!(reduce::dot_chunk_wide(&w, &v), 96.0);
/// ```
#[must_use]
pub fn dot_chunk_wide(weights: &[Bf16], inputs: &[Bf16]) -> f32 {
    assert_eq!(
        weights.len(),
        inputs.len(),
        "dot_chunk_wide: weight/input length mismatch"
    );
    let products: Vec<Bf16> = weights
        .iter()
        .zip(inputs)
        .map(|(w, v)| w.mul_round(*v))
        .collect();
    tree_reduce_wide(&products)
}

/// One COMP step in the per-stage discipline: bf16 products, bf16 adders.
///
/// # Panics
///
/// Panics if `weights` and `inputs` have different lengths.
#[must_use]
pub fn dot_chunk_bf16(weights: &[Bf16], inputs: &[Bf16]) -> Bf16 {
    assert_eq!(
        weights.len(),
        inputs.len(),
        "dot_chunk_bf16: weight/input length mismatch"
    );
    let products: Vec<Bf16> = weights
        .iter()
        .zip(inputs)
        .map(|(w, v)| w.mul_round(*v))
        .collect();
    tree_reduce_bf16(&products)
}

/// One COMP step under either discipline, returning the new result-latch
/// value after accumulating into `latch` (bf16 rounding at the latch in
/// both cases, per the paper's "single scalar bfloat16 register").
///
/// # Panics
///
/// Panics if `weights` and `inputs` have different lengths.
///
/// # Example
///
/// ```
/// use newton_bf16::{Bf16, reduce::{comp_step, TreePrecision}};
/// let w = vec![Bf16::ONE; 16];
/// let v = vec![Bf16::ONE; 16];
/// let latch = comp_step(Bf16::ZERO, &w, &v, TreePrecision::Wide);
/// assert_eq!(latch.to_f32(), 16.0);
/// ```
#[must_use]
pub fn comp_step(latch: Bf16, weights: &[Bf16], inputs: &[Bf16], precision: TreePrecision) -> Bf16 {
    match precision {
        TreePrecision::Wide => latch.accumulate_wide(dot_chunk_wide(weights, inputs)),
        TreePrecision::PerStage => latch + dot_chunk_bf16(weights, inputs),
    }
}

/// Upper bound on the absolute error of a bf16 dot product of length `n`
/// against an exact (`f64`) reference, assuming wide-tree semantics.
///
/// Derivation: each of `n` products incurs at most half a ULP of relative
/// error (2^-9 relative bound for bf16's 8-bit significand), the `f32`
/// tree adds negligible error at these lengths, and each of the
/// `ceil(n / chunk)` latch accumulations rounds once more. The bound is
/// expressed relative to the accumulated magnitude `magnitude`.
///
/// This is deliberately loose (a safety envelope for tests), not a tight
/// numerical-analysis bound.
#[must_use]
pub fn dot_error_bound(n: usize, chunk: usize, magnitude: f64) -> f64 {
    let product_rounds = n as f64;
    let latch_rounds = (n as f64 / chunk.max(1) as f64).ceil();
    let ulp_rel = 2.0_f64.powi(-8); // one full ULP per rounding, conservative
    (product_rounds + latch_rounds) * ulp_rel * magnitude
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bf(v: f32) -> Bf16 {
        Bf16::from_f32(v)
    }

    #[test]
    fn empty_reductions_are_zero() {
        assert_eq!(tree_reduce_wide(&[]), 0.0);
        assert_eq!(tree_reduce_bf16(&[]), Bf16::ZERO);
    }

    #[test]
    fn single_element_passes_through() {
        assert_eq!(tree_reduce_wide(&[bf(7.5)]), 7.5);
        assert_eq!(tree_reduce_bf16(&[bf(-7.5)]), bf(-7.5));
    }

    #[test]
    fn sixteen_ones_sum_exactly() {
        let xs = vec![Bf16::ONE; 16];
        assert_eq!(tree_reduce_wide(&xs), 16.0);
        assert_eq!(tree_reduce_bf16(&xs).to_f32(), 16.0);
    }

    #[test]
    fn odd_lengths_carry_the_tail() {
        let xs: Vec<Bf16> = (1..=7).map(|i| bf(i as f32)).collect();
        assert_eq!(tree_reduce_wide(&xs), 28.0);
        assert_eq!(tree_reduce_bf16(&xs).to_f32(), 28.0);
    }

    #[test]
    fn tree_order_differs_from_sequential_under_rounding() {
        // 256 + 1 + 1 + 1: sequentially in bf16, each +1 is absorbed
        // (256 + 1 rounds back to 256); the tree pairs (256+1) and (1+1),
        // and 2 is large enough to register against 257-rounded-to-256...
        // Construct a case where the results provably differ.
        let xs = [bf(256.0), bf(1.0), bf(1.0), bf(1.0)];
        let sequential: Bf16 = xs.iter().copied().sum();
        let tree = tree_reduce_bf16(&xs);
        // Sequential: 256+1=257->256(RNE ties-to-even), +1 -> 256, +1 -> 256.
        assert_eq!(sequential.to_f32(), 256.0);
        // Tree: (256+1)->256, (1+1)=2, 256+2=258 representable.
        assert_eq!(tree.to_f32(), 258.0);
    }

    #[test]
    fn wide_tree_is_more_accurate_than_per_stage() {
        let xs: Vec<Bf16> = (0..16).map(|i| bf(1.0 + i as f32 / 128.0)).collect();
        let exact: f64 = xs.iter().map(|x| x.to_f64()).sum();
        let wide = tree_reduce_wide(&xs) as f64;
        let staged = tree_reduce_bf16(&xs).to_f64();
        assert!((wide - exact).abs() <= (staged - exact).abs() + 1e-9);
    }

    #[test]
    fn dot_chunk_wide_matches_manual_expansion() {
        let w: Vec<Bf16> = (0..16).map(|i| bf(i as f32 * 0.25)).collect();
        let v: Vec<Bf16> = (0..16).map(|i| bf((15 - i) as f32 * 0.5)).collect();
        let manual: f32 = w
            .iter()
            .zip(&v)
            .map(|(a, b)| a.mul_round(*b).to_f32())
            .sum();
        // All values here are exact in f32, so tree order == sequential.
        assert_eq!(dot_chunk_wide(&w, &v), manual);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_chunk_rejects_mismatched_lengths() {
        let _ = dot_chunk_wide(&[Bf16::ONE; 16], &[Bf16::ONE; 8]);
    }

    #[test]
    fn comp_step_accumulates_into_latch() {
        let w = vec![bf(0.5); 16];
        let v = vec![bf(2.0); 16];
        let mut latch = Bf16::ZERO;
        for _ in 0..4 {
            latch = comp_step(latch, &w, &v, TreePrecision::Wide);
        }
        assert_eq!(latch.to_f32(), 64.0);
        let staged = comp_step(Bf16::ZERO, &w, &v, TreePrecision::PerStage);
        assert_eq!(staged.to_f32(), 16.0);
    }

    #[test]
    fn error_bound_scales_with_length_and_magnitude() {
        assert!(dot_error_bound(1024, 16, 1.0) > dot_error_bound(16, 16, 1.0));
        assert!(dot_error_bound(16, 16, 10.0) > dot_error_bound(16, 16, 1.0));
        assert!(dot_error_bound(0, 16, 1.0) >= 0.0);
    }
}
