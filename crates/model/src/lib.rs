//! Analytical models from the Newton paper: the Sec. III-F performance
//! model and the Fig. 13 average-power model.
//!
//! * [`perf`]: the paper's closed-form speedup prediction over Ideal
//!   Non-PIM (`n / (o + 1)` with `o` the activation-overhead ratio),
//!   plus a *refined* variant that also charges the precharge turnaround
//!   our cycle simulator faithfully exposes.
//! * [`power`]: a component power model anchored to the one ratio the
//!   paper publishes — all-bank COMP streaming draws ≈ 4× the power of a
//!   conventional DRAM reading at peak external bandwidth — and used to
//!   reproduce Fig. 13's ~2.8× mean normalized average power.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod perf;
pub mod power;

pub use perf::PerfModel;
pub use power::PowerModel;
