//! The Sec. III-F analytical performance model.
//!
//! For one DRAM row processed across all `n` banks:
//!
//! ```text
//! t_ideal-non-PIM = col * tCCD
//! t_newton        = max(tRRD, tFAW) * (n/4 - 1) + tACT + col * tCCD
//! o               = (max(tRRD, tFAW) * (n/4 - 1) + tACT) / (col * tCCD)
//! speedup         = n / (o + 1)
//! ```
//!
//! The paper reports the model predicts 9.8× at 16 banks, within 2% of
//! its simulator's 10×. Our simulator additionally exposes the
//! read-to-precharge + precharge turnaround between consecutive row-sets
//! in the same banks (the paper's model folds this away); the *refined*
//! model adds that term so model-vs-simulator agreement can be verified
//! tightly here too.

use newton_dram::DramConfig;

/// Closed-form Newton performance model over a DRAM configuration.
#[derive(Debug, Clone)]
pub struct PerfModel {
    dram: DramConfig,
}

impl PerfModel {
    /// Creates the model for a channel configuration.
    #[must_use]
    pub fn new(dram: DramConfig) -> PerfModel {
        PerfModel { dram }
    }

    /// The paper's configuration with Newton's aggressive tFAW.
    #[must_use]
    pub fn paper_default() -> PerfModel {
        PerfModel::new(DramConfig::hbm2e_like_aggressive_tfaw())
    }

    /// `t_ideal` per DRAM row: `col * tCCD`, in nanoseconds.
    #[must_use]
    pub fn t_ideal_ns(&self) -> f64 {
        self.dram.cols_per_row as f64 * self.dram.timing.t_ccd_ns
    }

    /// The activation-phase overhead `max(tRRD, tFAW) * (n/4 - 1) + tACT`
    /// in nanoseconds (tACT = tRCD: last G_ACT to first column command).
    #[must_use]
    pub fn activation_overhead_ns(&self) -> f64 {
        let t = &self.dram.timing;
        let gangs = (self.dram.banks as f64 / 4.0).ceil();
        t.t_rrd_ns.max(t.t_faw_ns) * (gangs - 1.0) + t.t_rcd_ns
    }

    /// `t_newton` per DRAM row across all banks (paper formula), ns.
    #[must_use]
    pub fn t_newton_ns(&self) -> f64 {
        self.activation_overhead_ns() + self.t_ideal_ns()
    }

    /// The overhead ratio `o`.
    #[must_use]
    pub fn overhead_ratio(&self) -> f64 {
        self.activation_overhead_ns() / self.t_ideal_ns()
    }

    /// Predicted speedup over Ideal Non-PIM: `n / (o + 1)`.
    #[must_use]
    pub fn speedup_vs_ideal(&self) -> f64 {
        self.dram.banks as f64 / (self.overhead_ratio() + 1.0)
    }

    /// Refined per-row-set time: the paper formula plus the
    /// read-to-precharge and precharge turnaround (`tRTP + tRP - tCCD`)
    /// that consecutive row-sets in the same banks expose in a
    /// non-double-buffered design.
    #[must_use]
    pub fn t_newton_refined_ns(&self) -> f64 {
        let t = &self.dram.timing;
        self.t_newton_ns() + t.t_rtp_ns + t.t_rp_ns - t.t_ccd_ns
    }

    /// Refined speedup prediction.
    #[must_use]
    pub fn speedup_vs_ideal_refined(&self) -> f64 {
        self.dram.banks as f64 * self.t_ideal_ns() / self.t_newton_refined_ns()
    }

    /// The same model at a different bank count (Fig. 10's sweep).
    #[must_use]
    pub fn with_banks(&self, banks: usize) -> PerfModel {
        PerfModel::new(self.dram.clone().with_banks(banks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_predict_close_to_ten_x() {
        let model = PerfModel::paper_default();
        // col*tCCD = 32*4 = 128 ns; overhead = 22*3 + 14 = 80 ns.
        assert_eq!(model.t_ideal_ns(), 128.0);
        assert_eq!(model.activation_overhead_ns(), 80.0);
        assert_eq!(model.t_newton_ns(), 208.0);
        let s = model.speedup_vs_ideal();
        assert!(
            (9.5..10.1).contains(&s),
            "paper-model speedup {s} should be ~9.8"
        );
    }

    #[test]
    fn refined_model_charges_the_precharge_turnaround() {
        let model = PerfModel::paper_default();
        // + tRTP(6) + tRP(14) - tCCD(4) = +16 ns.
        assert_eq!(model.t_newton_refined_ns(), 224.0);
        let s = model.speedup_vs_ideal_refined();
        assert!((8.9..9.4).contains(&s), "refined speedup {s}");
        assert!(s < model.speedup_vs_ideal());
    }

    #[test]
    fn amdahl_dampens_bank_scaling() {
        let model = PerfModel::paper_default();
        let s8 = model.with_banks(8).speedup_vs_ideal();
        let s16 = model.with_banks(16).speedup_vs_ideal();
        let s32 = model.with_banks(32).speedup_vs_ideal();
        assert!(s8 < s16 && s16 < s32);
        // Sub-linear: doubling banks less than doubles speedup.
        assert!(s16 / s8 < 2.0);
        assert!(s32 / s16 < 2.0);
    }

    #[test]
    fn baseline_tfaw_is_slower() {
        let aggressive = PerfModel::paper_default();
        let baseline = PerfModel::new(DramConfig::hbm2e_like());
        assert!(baseline.speedup_vs_ideal() < aggressive.speedup_vs_ideal());
    }

    #[test]
    fn overhead_ratio_definition() {
        let model = PerfModel::paper_default();
        let o = model.overhead_ratio();
        assert!((o - 80.0 / 128.0).abs() < 1e-12);
        assert!((model.speedup_vs_ideal() - 16.0 / (o + 1.0)).abs() < 1e-12);
    }
}
