//! The Fig. 13 average-power model.
//!
//! The paper's power parameters are proprietary; the one published anchor
//! is that "Newton when performing the all-bank parallel computation
//! (i.e., when executing the COMP command) consumes about 4x as much
//! power as Ideal Non-PIM when reading DRAM at peak bandwidth" (Sec. IV).
//! We express power in units of that baseline (conventional DRAM
//! streaming at peak external bandwidth ≡ 1.0) and decompose it into
//! components whose *rates* the simulator counts:
//!
//! | component | what it scales with |
//! |-----------|----------------------|
//! | background | elapsed time |
//! | bank-open  | open-bank · ns (Newton holds all banks open — Sec. IV) |
//! | activation | row activations |
//! | array      | bank-array column accesses (internal or external) |
//! | PHY        | bytes crossing the external interface |
//! | MAC        | per-bank COMP operations |
//!
//! The constants below are solved from two calibration equations:
//! conventional peak-read streaming ≡ 1.0, and the *COMP phase* of a
//! row-set (the window where all banks stream column reads into their
//! MACs) ≡ 4.0 instantaneous — the paper's "when executing the COMP
//! command" anchor. Averaged over a full row-set (activation chain,
//! readout, turnaround), steady-state Newton lands near the paper's
//! ~2.8×; both anchors are verified by unit tests. Everything else — the
//! per-benchmark variation of Fig. 13 — emerges from measured activity
//! counts.

use newton_dram::stats::RunSummary;

/// Aggregate activity over a run (summed across channels).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ActivityCounts {
    /// Wall-clock duration, ns.
    pub elapsed_ns: f64,
    /// Row activations.
    pub activates: f64,
    /// Bank-array column accesses (internal + external).
    pub array_accesses: f64,
    /// Per-bank COMP operations (0 for non-PIM runs).
    pub mac_ops: f64,
    /// Bytes crossing the external PHY.
    pub phy_bytes: f64,
    /// Integrated open-bank time, bank·ns.
    pub bank_open_ns: f64,
    /// Number of channels the counts cover (power is reported per
    /// channel so different systems compare fairly).
    pub channels: f64,
}

impl ActivityCounts {
    /// Builds counts from per-channel DRAM summaries of an AiM run
    /// (internal column reads are COMP operations).
    #[must_use]
    pub fn from_aim_summaries(summaries: &[RunSummary]) -> ActivityCounts {
        Self::from_summaries(summaries, true)
    }

    /// Builds counts from per-channel DRAM summaries of a conventional
    /// (non-PIM) run.
    #[must_use]
    pub fn from_conventional_summaries(summaries: &[RunSummary]) -> ActivityCounts {
        Self::from_summaries(summaries, false)
    }

    fn from_summaries(summaries: &[RunSummary], aim: bool) -> ActivityCounts {
        let mut c = ActivityCounts {
            channels: summaries.len() as f64,
            ..ActivityCounts::default()
        };
        for s in summaries {
            c.elapsed_ns = c.elapsed_ns.max(s.elapsed_ns());
            c.activates += s.stats.activates as f64;
            c.array_accesses += (s.stats.col_reads_internal
                + s.stats.col_reads_external
                + s.stats.col_writes_external) as f64;
            if aim {
                c.mac_ops += s.stats.col_reads_internal as f64;
            }
            c.phy_bytes += s.external_bytes as f64;
            c.bank_open_ns += s.bank_open_cycles as f64 * s.tck_ns;
        }
        c
    }

    /// Builds AiM counts from the *streamed telemetry* of per-channel
    /// summaries instead of the end-of-run counters. Returns `None` if
    /// any summary lacks a telemetry series.
    ///
    /// Each per-summary accumulation mirrors [`from_aim_summaries`]
    /// term-for-term in the same order, and every telemetry total is an
    /// exact `u64` event count equal to its `ChannelStats` counterpart —
    /// so the result is **bit-for-bit identical** to the postprocessed
    /// counts (identical f64 sums of identical terms), which the property
    /// suite asserts across the Table II workloads.
    ///
    /// [`from_aim_summaries`]: ActivityCounts::from_aim_summaries
    #[must_use]
    pub fn from_aim_telemetry(summaries: &[RunSummary]) -> Option<ActivityCounts> {
        let mut c = ActivityCounts {
            channels: summaries.len() as f64,
            ..ActivityCounts::default()
        };
        for s in summaries {
            let t = s.telemetry.as_ref()?.totals();
            c.elapsed_ns = c.elapsed_ns.max(s.elapsed_ns());
            c.activates += t.activates as f64;
            c.array_accesses += t.array_accesses as f64;
            c.mac_ops += t.comp_ops as f64;
            c.phy_bytes += t.bus_bytes as f64;
            c.bank_open_ns += t.bank_open_cycles as f64 * s.tck_ns;
        }
        Some(c)
    }
}

/// Average power decomposed by component, in units of the conventional
/// peak-read baseline, per channel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerBreakdown {
    /// Static background power.
    pub background: f64,
    /// Open-bank (activated-row) standby power.
    pub bank_open: f64,
    /// Row-activation power.
    pub activation: f64,
    /// Bank-array column access power.
    pub array: f64,
    /// External-interface transfer power.
    pub phy: f64,
    /// Multiply/adder-tree power.
    pub mac: f64,
}

impl PowerBreakdown {
    /// Total average power.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.background + self.bank_open + self.activation + self.array + self.phy + self.mac
    }
}

/// The component power model (see module docs for the calibration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Background power (fraction of baseline).
    pub p_background: f64,
    /// Open-bank power per bank (fraction of baseline).
    pub p_open_per_bank: f64,
    /// Energy per activation (baseline-power · ns).
    pub e_act: f64,
    /// Energy per bank-array column access.
    pub e_array: f64,
    /// Energy per column-I/O worth of bytes over the PHY.
    pub e_phy: f64,
    /// Energy per per-bank COMP (multipliers + adder tree).
    pub e_mac: f64,
    /// Bytes per column I/O (PHY energy granularity).
    pub col_bytes: f64,
}

impl Default for PowerModel {
    /// Constants solved from the two calibration equations in the module
    /// docs (conventional peak streaming = 1.0; COMP streaming = 4.0).
    ///
    /// The per-event coefficients are shared with the streaming
    /// [`newton_trace::EnergyModel`] consulted at command-issue time, so
    /// the windowed energy series and this postprocessed model can never
    /// drift apart (an equality test pins them).
    fn default() -> PowerModel {
        let e = newton_trace::EnergyModel::default();
        PowerModel {
            p_background: e.p_background,
            p_open_per_bank: e.p_open_per_bank,
            e_act: e.e_act,
            e_array: e.e_array,
            e_phy: e.e_phy,
            e_mac: e.e_mac,
            col_bytes: e.col_bytes,
        }
    }
}

impl PowerModel {
    /// Creates the calibrated model.
    #[must_use]
    pub fn new() -> PowerModel {
        PowerModel::default()
    }

    /// Average power (per channel, normalized to the conventional
    /// peak-read baseline) for the given activity.
    #[must_use]
    pub fn average_power(&self, c: &ActivityCounts) -> PowerBreakdown {
        if c.elapsed_ns <= 0.0 {
            return PowerBreakdown::default();
        }
        let per_channel_time = c.elapsed_ns * c.channels.max(1.0);
        PowerBreakdown {
            background: self.p_background,
            bank_open: self.p_open_per_bank * c.bank_open_ns / c.elapsed_ns / c.channels.max(1.0),
            activation: self.e_act * c.activates / per_channel_time,
            array: self.e_array * c.array_accesses / per_channel_time,
            phy: self.e_phy * (c.phy_bytes / self.col_bytes) / per_channel_time,
            mac: self.e_mac * c.mac_ops / per_channel_time,
        }
    }

    /// Newton's average power normalized to a measured conventional
    /// baseline run (Fig. 13's y-axis).
    #[must_use]
    pub fn normalized(&self, newton: &ActivityCounts, conventional: &ActivityCounts) -> f64 {
        let n = self.average_power(newton).total();
        let c = self.average_power(conventional).total();
        if c == 0.0 {
            0.0
        } else {
            n / c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic counts for conventional DRAM streaming reads at peak:
    /// per 128 ns window — 1 activation, 32 external column accesses,
    /// ~2 banks open (current + pre-activated next).
    fn conventional_streaming(windows: f64) -> ActivityCounts {
        ActivityCounts {
            elapsed_ns: 128.0 * windows,
            activates: windows,
            array_accesses: 32.0 * windows,
            mac_ops: 0.0,
            phy_bytes: 32.0 * 32.0 * windows,
            bank_open_ns: 2.0 * 128.0 * windows,
            channels: 1.0,
        }
    }

    /// Synthetic counts for the pure COMP phase: 32 ganged COMPs over
    /// 128 ns — 512 bank-array reads + MACs, all 16 banks open, no
    /// activations (those belong to the preceding activation phase).
    fn comp_phase(windows: f64) -> ActivityCounts {
        ActivityCounts {
            elapsed_ns: 128.0 * windows,
            activates: 0.0,
            array_accesses: 512.0 * windows,
            mac_ops: 512.0 * windows,
            phy_bytes: 0.0,
            bank_open_ns: 16.0 * 128.0 * windows,
            channels: 1.0,
        }
    }

    /// Synthetic counts for a full steady-state Newton row-set (~232 ns):
    /// the COMP phase plus 16 activations, a READRES, and the precharge
    /// turnaround.
    fn rowset_streaming(row_sets: f64) -> ActivityCounts {
        ActivityCounts {
            elapsed_ns: 232.0 * row_sets,
            activates: 16.0 * row_sets,
            array_accesses: 512.0 * row_sets,
            mac_ops: 512.0 * row_sets,
            phy_bytes: 2.0 * 32.0 * row_sets, // READRES + amortized GWRITE
            bank_open_ns: 16.0 * 232.0 * row_sets,
            channels: 1.0,
        }
    }

    #[test]
    fn power_model_and_streaming_energy_model_share_coefficients() {
        // The postprocessed Fig. 13 model and the command-issue-time
        // energy model must be the same numbers, or the streamed series
        // would drift from the validated averages.
        let p = PowerModel::default();
        let e = newton_trace::EnergyModel::default();
        assert_eq!(p.p_background, e.p_background);
        assert_eq!(p.p_open_per_bank, e.p_open_per_bank);
        assert_eq!(p.e_act, e.e_act);
        assert_eq!(p.e_array, e.e_array);
        assert_eq!(p.e_phy, e.e_phy);
        assert_eq!(p.e_mac, e.e_mac);
        assert_eq!(p.col_bytes, e.col_bytes);
    }

    #[test]
    fn telemetry_counts_match_postprocessed_counts_bit_for_bit() {
        use newton_trace::{TimeSeries, TraceBus, TraceEvent};
        // Build a summary whose telemetry series streamed exactly the
        // events the end-of-run counters describe.
        let mut series = TimeSeries::new(64, 4);
        for (cycle, bus, label, bank_ops) in [
            (0, TraceBus::Row, "G_ACT", 4u32),
            (20, TraceBus::Column, "COMP", 4),
            (40, TraceBus::Column, "COMP", 4),
        ] {
            series.record(&TraceEvent::Command {
                cycle,
                bus,
                label,
                bank_ops,
            });
        }
        series.record(&TraceEvent::DataBurst {
            cycle: 60,
            bytes: 64,
        });
        series.record(&TraceEvent::Command {
            cycle: 60,
            bus: TraceBus::Column,
            label: "RD",
            bank_ops: 1,
        });
        let summary = RunSummary {
            stats: newton_dram::stats::ChannelStats {
                activates: 4,
                col_reads_internal: 8,
                col_reads_external: 1,
                ..Default::default()
            },
            external_bytes: 64,
            bank_open_cycles: 0,
            end_cycle: 100,
            tck_ns: 1.25,
            telemetry: Some(series.sampled(100)),
            ..RunSummary::default()
        };
        let summaries = vec![summary.clone(), summary];
        let streamed = ActivityCounts::from_aim_telemetry(&summaries).unwrap();
        let post = ActivityCounts::from_aim_summaries(&summaries);
        assert_eq!(streamed, post, "same counts, same order, same f64s");
        // A summary without telemetry yields None, never a partial count.
        assert!(ActivityCounts::from_aim_telemetry(&[RunSummary::default()]).is_none());
    }

    #[test]
    fn conventional_peak_streaming_is_the_unit_baseline() {
        let model = PowerModel::new();
        let p = model.average_power(&conventional_streaming(100.0)).total();
        assert!((p - 1.0).abs() < 0.02, "baseline power {p} should be 1.0");
    }

    #[test]
    fn comp_phase_is_four_times_baseline() {
        // The paper's anchor: "when executing the COMP command" Newton
        // draws ~4x peak-read power.
        let model = PowerModel::new();
        let p = model.average_power(&comp_phase(100.0)).total();
        assert!((p - 4.0).abs() < 0.1, "COMP-phase power {p} should be ~4.0");
    }

    #[test]
    fn steady_rowset_average_is_near_the_papers_mean() {
        // Averaged over the whole row-set the paper's Fig. 13 mean of
        // ~2.8x emerges.
        let model = PowerModel::new();
        let r = model.normalized(&rowset_streaming(10.0), &conventional_streaming(10.0));
        assert!((2.4..3.1).contains(&r), "{r}");
    }

    #[test]
    fn idle_time_dilutes_average_power() {
        let model = PowerModel::new();
        let mut c = rowset_streaming(10.0);
        c.elapsed_ns *= 2.0; // same work over twice the time
        let p = model.average_power(&c).total();
        assert!(p < 2.0, "{p}");
        assert!(p > model.p_background);
    }

    #[test]
    fn zero_elapsed_is_zero_power() {
        let model = PowerModel::new();
        let p = model.average_power(&ActivityCounts::default());
        assert_eq!(p.total(), 0.0);
        assert_eq!(
            model.normalized(&ActivityCounts::default(), &ActivityCounts::default()),
            0.0
        );
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let model = PowerModel::new();
        let b = model.average_power(&rowset_streaming(5.0));
        let sum = b.background + b.bank_open + b.activation + b.array + b.phy + b.mac;
        assert!((sum - b.total()).abs() < 1e-12);
        assert!(b.mac > 0.0 && b.array > b.phy);
    }
}
