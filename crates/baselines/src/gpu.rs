//! The Titan-V-like GPU baseline.
//!
//! The paper simulates a Titan V (80 SMs, 24 memory channels) in GPGPUsim
//! with the same DRAM timing as Newton, runs Cutlass 1.3 kernels, and
//! subtracts Cutlass's constant launch overheads (Sec. IV). What remains,
//! for a memory-bound MV kernel, is characterized by:
//!
//! * the *achieved* DRAM bandwidth, which for skinny GEMV kernels is a
//!   small and working-set-dependent fraction of peak (uncoalesced row
//!   activations, low occupancy on short rows, tail quantization across
//!   80 SMs);
//! * a compute roofline that takes over under batching, when the k-way
//!   weight reuse turns the kernel compute-bound (Sec. V-D);
//! * a small residual per-kernel cost that the paper's subtraction cannot
//!   remove (scheduling, L2 warmup), which dominates only for tiny
//!   matrices — "especially pronounced in DLRMs1" (Sec. V-A).
//!
//! [`GpuCalibration`] holds the only tuned constants in this repository.
//! They are set once so the Ideal-Non-PIM-to-GPU geomean gap over the
//! Table II layers matches the paper's published 5.4×; every Newton
//! number is then produced by the cycle simulator, not by fiat.

use newton_workloads::models::EndToEndModel;
use newton_workloads::MvShape;

/// Tuned constants of the GPU model (see module docs; DESIGN.md §2 and
/// §6 document the calibration procedure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuCalibration {
    /// Peak external DRAM bandwidth in bytes/ns (24 channels of the
    /// Table III device: 24 x 32 B / 4 ns = 192 B/ns).
    pub bandwidth_bytes_per_ns: f64,
    /// Asymptotic achieved-bandwidth fraction for large streaming GEMV.
    pub eff_max: f64,
    /// Working-set size (bytes) at which half of `eff_max` is achieved.
    pub s_half_bytes: f64,
    /// Residual per-kernel cost (ns) after the paper's constant-overhead
    /// subtraction.
    pub kernel_overhead_ns: f64,
    /// Sustained fp16 FLOP/ns on skinny batched GEMM (well below the
    /// 110 TFLOP/s tensor-core peak).
    pub compute_flops_per_ns: f64,
}

impl Default for GpuCalibration {
    fn default() -> GpuCalibration {
        GpuCalibration {
            bandwidth_bytes_per_ns: 192.0,
            eff_max: 0.23,
            s_half_bytes: 512.0 * 1024.0,
            kernel_overhead_ns: 2_000.0,
            compute_flops_per_ns: 15_000.0,
        }
    }
}

/// The Titan-V-like GPU performance model.
#[derive(Debug, Clone, Copy, Default)]
pub struct TitanVModel {
    cal: GpuCalibration,
}

impl TitanVModel {
    /// Creates the model with the default (paper-matching) calibration.
    #[must_use]
    pub fn new() -> TitanVModel {
        TitanVModel::default()
    }

    /// Creates the model with explicit calibration constants.
    #[must_use]
    pub fn with_calibration(cal: GpuCalibration) -> TitanVModel {
        TitanVModel { cal }
    }

    /// The calibration in use.
    #[must_use]
    pub fn calibration(&self) -> &GpuCalibration {
        &self.cal
    }

    /// Achieved-bandwidth fraction for a working set of `bytes`.
    #[must_use]
    pub fn efficiency(&self, bytes: f64) -> f64 {
        self.cal.eff_max * bytes / (bytes + self.cal.s_half_bytes)
    }

    /// Kernel time (ns) for one `[m x n] * [n x k]` product at batch `k`
    /// (the whole batch, not per inference).
    #[must_use]
    pub fn mv_time_ns(&self, shape: MvShape, batch: usize) -> f64 {
        let batch = batch.max(1) as f64;
        let bytes = shape.matrix_bytes() as f64;
        let t_mem = bytes / (self.cal.bandwidth_bytes_per_ns * self.efficiency(bytes));
        let flops = 2.0 * shape.macs() as f64 * batch;
        let t_comp = flops / self.cal.compute_flops_per_ns;
        t_mem.max(t_comp) + self.cal.kernel_overhead_ns
    }

    /// Per-inference time (ns) at batch `k` (matrix reuse amortized).
    #[must_use]
    pub fn per_inference_ns(&self, shape: MvShape, batch: usize) -> f64 {
        self.mv_time_ns(shape, batch) / batch.max(1) as f64
    }

    /// End-to-end model inference time (ns) at batch `k`, including the
    /// non-FC (e.g. convolutional) portion via the model's published FC
    /// time fraction.
    #[must_use]
    pub fn model_time_ns(&self, model: &EndToEndModel, batch: usize) -> f64 {
        let fc: f64 = model
            .layers
            .iter()
            .map(|l| self.per_inference_ns(l.shape, batch))
            .sum();
        fc / model.fc_fraction_gpu
    }

    /// The non-FC portion of a model's inference time (ns) at batch `k`
    /// (what runs on the GPU even in a Newton system — e.g. AlexNet's
    /// conv layers).
    #[must_use]
    pub fn non_fc_time_ns(&self, model: &EndToEndModel, batch: usize) -> f64 {
        self.model_time_ns(model, batch) * (1.0 - model.fc_fraction_gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_workloads::Benchmark;

    fn geomean(xs: &[f64]) -> f64 {
        (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
    }

    /// The one calibration contract: Ideal Non-PIM (analytic, bytes/BW)
    /// is ~5.4x faster than the GPU, geomean over the Table II layers
    /// (paper Fig. 8), with DLRM the most pronounced outlier (Sec. V-A).
    #[test]
    fn calibration_reproduces_the_published_ideal_vs_gpu_gap() {
        let gpu = TitanVModel::new();
        let bw = gpu.calibration().bandwidth_bytes_per_ns;
        let mut ratios = Vec::new();
        let mut dlrm_ratio = 0.0;
        for b in Benchmark::all() {
            let s = b.shape();
            let ideal = s.matrix_bytes() as f64 / bw;
            let r = gpu.mv_time_ns(s, 1) / ideal;
            if b == Benchmark::DlrmS1 {
                dlrm_ratio = r;
            }
            ratios.push(r);
        }
        let g = geomean(&ratios);
        assert!((5.0..5.9).contains(&g), "geomean {g} should be ~5.4");
        assert!(
            ratios.iter().all(|&r| r <= dlrm_ratio),
            "DLRM must be the most pronounced: {ratios:?}"
        );
    }

    #[test]
    fn efficiency_grows_with_working_set() {
        let gpu = TitanVModel::new();
        assert!(gpu.efficiency(1e6) < gpu.efficiency(1e8));
        assert!(gpu.efficiency(1e12) <= gpu.calibration().eff_max);
    }

    #[test]
    fn batching_amortizes_memory_until_compute_bound() {
        let gpu = TitanVModel::new();
        let s = Benchmark::GnmtS1.shape();
        let t1 = gpu.per_inference_ns(s, 1);
        let t8 = gpu.per_inference_ns(s, 8);
        let t1024 = gpu.per_inference_ns(s, 1024);
        assert!(t8 < t1 / 6.0, "near-linear at small k: {t1} -> {t8}");
        // Compute floor: 2mn / flops.
        let floor = 2.0 * s.macs() as f64 / gpu.calibration().compute_flops_per_ns;
        assert!(t1024 >= floor && t1024 < floor * 1.5, "{t1024} vs {floor}");
    }

    #[test]
    fn alexnet_model_time_is_conv_dominated() {
        let gpu = TitanVModel::new();
        let alex = EndToEndModel::alexnet();
        let total = gpu.model_time_ns(&alex, 1);
        let non_fc = gpu.non_fc_time_ns(&alex, 1);
        assert!((non_fc / total - 0.85).abs() < 1e-9);
        // NLP models are FC-dominated.
        let bert = EndToEndModel::bert();
        assert!(gpu.non_fc_time_ns(&bert, 1) / gpu.model_time_ns(&bert, 1) < 0.01);
    }

    #[test]
    fn kernel_overhead_dominates_only_tiny_kernels() {
        let gpu = TitanVModel::new();
        let dlrm = gpu.mv_time_ns(Benchmark::DlrmS1.shape(), 1);
        let big = gpu.mv_time_ns(Benchmark::AlexNetL6.shape(), 1);
        let oh = gpu.calibration().kernel_overhead_ns;
        assert!(oh / dlrm > 0.05, "overhead visible on DLRM");
        assert!(oh / big < 0.01, "overhead negligible on AlexNetL6");
    }
}
