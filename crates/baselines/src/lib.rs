//! Comparison architectures for the Newton evaluation.
//!
//! * [`ideal`]: **Ideal Non-PIM** (Sec. IV) — a host with infinite compute
//!   limited only by the DRAM's external bandwidth. Its time is *measured*
//!   on the same cycle-accurate DRAM simulator Newton runs on (streaming
//!   full rows through the serialized global bus, refresh included),
//!   which is exactly how the paper models it; the paper notes measured
//!   Ideal Non-PIM is slightly slower than the analytic `col * tCCD`
//!   bound because of refresh.
//! * [`gpu`]: a **Titan-V-like GPU** — the paper uses GPGPUsim 4.0 +
//!   Cutlass 1.3 with constant kernel overheads factored out. We replace
//!   the cycle-level GPU with a calibrated analytical model (see
//!   DESIGN.md §2): achieved-bandwidth efficiency as a function of working
//!   set, a compute roofline for batching, and a small residual kernel
//!   cost. The single calibration target is the published 5.4× geomean
//!   gap between Ideal Non-PIM and the GPU; everything else is emergent.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod gpu;
pub mod ideal;

pub use gpu::{GpuCalibration, TitanVModel};
pub use ideal::IdealNonPim;
