//! The Ideal Non-PIM baseline, measured on the DRAM simulator.
//!
//! "To model an upper-bound on performance of any non-PIM architecture
//! ... Ideal Non-PIM assumes infinite compute bandwidth and is limited
//! only by the DRAM's external bandwidth. Thus its execution time is
//! modeled as the time to transfer DRAM data to the host." (Sec. IV.)
//!
//! The matrix is bank-interleaved so consecutive rows come from different
//! banks, activations hide under column streaming, and the channel's
//! external bus runs at its ceiling; refresh interposes exactly as for
//! Newton. Channels are symmetric: the system time is the worst channel's
//! time (the channel holding `ceil(m / channels)` matrix rows).

use newton_dram::stream::StreamReader;
use newton_dram::{Channel, DramConfig, DramError};

/// The Ideal Non-PIM system: infinite compute over the same DRAM.
#[derive(Debug, Clone)]
pub struct IdealNonPim {
    dram: DramConfig,
    channels: usize,
}

/// Outcome of an Ideal Non-PIM measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealOutcome {
    /// Wall-clock time for one inference, in nanoseconds.
    pub time_ns: f64,
    /// DRAM rows streamed in the measured (worst) channel.
    pub rows_streamed: usize,
    /// Refreshes interposed in the measured channel.
    pub refreshes: u64,
}

impl IdealNonPim {
    /// Creates the baseline over `channels` channels of `dram`.
    #[must_use]
    pub fn new(dram: DramConfig, channels: usize) -> IdealNonPim {
        IdealNonPim {
            dram,
            channels: channels.max(1),
        }
    }

    /// The paper's configuration: 24 channels of the Table III device.
    #[must_use]
    pub fn paper_default() -> IdealNonPim {
        IdealNonPim::new(DramConfig::hbm2e_like(), 24)
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Peak external bandwidth of the whole system, bytes per ns.
    #[must_use]
    pub fn system_bandwidth(&self) -> f64 {
        self.dram.external_bandwidth_bytes_per_ns() * self.channels as f64
    }

    /// DRAM rows the worst channel must stream for an `m x n` bf16 matrix.
    fn rows_for(&self, m: usize, n: usize) -> usize {
        let m_c = m.div_ceil(self.channels);
        let bytes = m_c * n * 2;
        bytes.div_ceil(self.dram.row_bytes())
    }

    /// Builds the bank-interleaved row list for a streaming run starting
    /// at `base_row`.
    fn row_list(&self, rows: usize, base_row: usize) -> Vec<(usize, usize)> {
        (0..rows)
            .map(|i| (i % self.dram.banks, base_row + i / self.dram.banks))
            .collect()
    }

    /// Measures one matrix–vector inference (`m x n` matrix) on the
    /// simulator.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (configuration problems; a correct
    /// stream cannot otherwise fail).
    pub fn run_layer(&self, m: usize, n: usize) -> Result<IdealOutcome, DramError> {
        Ok(self.run_layer_detailed(m, n)?.0)
    }

    /// Like [`IdealNonPim::run_layer`], additionally returning the
    /// measured channel's DRAM summary (for power accounting — the
    /// "conventional DRAM" baseline of Fig. 13).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run_layer_detailed(
        &self,
        m: usize,
        n: usize,
    ) -> Result<(IdealOutcome, newton_dram::stats::RunSummary), DramError> {
        let mut channel = Channel::new(self.dram.clone())?;
        let rows = self.rows_for(m, n);
        let list = self.row_list(rows, 0);
        let mut reader = StreamReader::new(&mut channel);
        let out = reader.read_rows(0, &list, |_, _, _| {})?;
        let summary = channel.summary(out.end_cycle);
        Ok((
            IdealOutcome {
                time_ns: out.end_cycle as f64 * self.dram.timing.tck_ns,
                rows_streamed: rows,
                refreshes: out.refreshes,
            },
            summary,
        ))
    }

    /// Per-inference time with `batch`-way batching: the matrix streams
    /// once per batch (infinite compute exploits the k-way reuse
    /// perfectly, so performance scales linearly with k — Fig. 11).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn per_inference_ns(&self, m: usize, n: usize, batch: usize) -> Result<f64, DramError> {
        Ok(self.run_layer(m, n)?.time_ns / batch.max(1) as f64)
    }

    /// Measures an end-to-end sequence of layers (matrices resident at
    /// stacked rows, refresh state carried across layers).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (e.g. capacity exhaustion).
    pub fn run_model(&self, shapes: &[(usize, usize)]) -> Result<IdealOutcome, DramError> {
        let mut channel = Channel::new(self.dram.clone())?;
        let mut base_row = 0;
        let mut start = 0;
        let mut total_rows = 0;
        let mut refreshes = 0;
        let mut end = 0;
        for &(m, n) in shapes {
            let rows = self.rows_for(m, n);
            let list = self.row_list(rows, base_row);
            let mut reader = StreamReader::new(&mut channel);
            let out = reader.read_rows(start, &list, |_, _, _| {})?;
            start = out.end_cycle;
            end = out.end_cycle;
            base_row += rows.div_ceil(self.dram.banks);
            total_rows += rows;
            refreshes += out.refreshes;
        }
        Ok(IdealOutcome {
            time_ns: end as f64 * self.dram.timing.tck_ns,
            rows_streamed: total_rows,
            refreshes,
        })
    }

    /// The closed-form lower bound `bytes / external bandwidth` (Sec.
    /// III-F's `col * tCCD` per row), for model-vs-measurement checks.
    #[must_use]
    pub fn analytic_time_ns(&self, m: usize, n: usize) -> f64 {
        let rows = self.rows_for(m, n);
        rows as f64 * self.dram.cols_per_row as f64 * self.dram.timing.t_ccd_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_time_close_to_but_above_analytic_bound() {
        let ideal = IdealNonPim::paper_default();
        // GNMTs1-sized layer.
        let out = ideal.run_layer(4096, 1024).unwrap();
        let bound = ideal.analytic_time_ns(4096, 1024);
        assert!(out.time_ns >= bound, "{} < {}", out.time_ns, bound);
        // Within a few percent: pipeline fill + refresh only.
        assert!(out.time_ns <= bound * 1.15, "{} vs {}", out.time_ns, bound);
    }

    #[test]
    fn long_streams_see_refresh() {
        let ideal = IdealNonPim::paper_default();
        // AlexNetL6: ~459 µs of streaming per channel >> tREFI.
        let out = ideal.run_layer(21632, 2048).unwrap();
        assert!(out.refreshes > 50, "{}", out.refreshes);
    }

    #[test]
    fn batching_scales_linearly() {
        let ideal = IdealNonPim::paper_default();
        let t1 = ideal.per_inference_ns(1024, 1024, 1).unwrap();
        let t8 = ideal.per_inference_ns(1024, 1024, 8).unwrap();
        assert!((t1 / t8 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn more_channels_is_proportionally_faster() {
        let a = IdealNonPim::new(DramConfig::hbm2e_like(), 1);
        let b = IdealNonPim::new(DramConfig::hbm2e_like(), 24);
        let ta = a.run_layer(4096, 1024).unwrap().time_ns;
        let tb = b.run_layer(4096, 1024).unwrap().time_ns;
        let ratio = ta / tb;
        assert!((20.0..28.0).contains(&ratio), "{ratio}");
        assert_eq!(b.system_bandwidth(), 24.0 * 8.0);
    }

    #[test]
    fn model_run_sums_layers_and_carries_refresh() {
        let ideal = IdealNonPim::paper_default();
        let single = ideal.run_layer(4096, 1024).unwrap();
        let model = ideal.run_model(&[(4096, 1024), (4096, 1024)]).unwrap();
        assert!(model.time_ns >= 1.9 * single.time_ns);
        assert_eq!(model.rows_streamed, 2 * single.rows_streamed);
    }

    #[test]
    fn tiny_layers_round_up_to_whole_rows() {
        let ideal = IdealNonPim::paper_default();
        // DLRM: 512x256 over 24 channels = 22 matrix rows x 512 B = 11 KB
        // -> 11 DRAM rows.
        let out = ideal.run_layer(512, 256).unwrap();
        assert_eq!(out.rows_streamed, 11);
    }
}
