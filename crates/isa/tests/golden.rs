//! The golden `.aim` corpus: each checked-in trace's interpreter log is
//! pinned byte-for-byte against its `.expected` sibling.
//!
//! The interpreter never branches on `TimingEngine` or thread width, so
//! these logs are stable across every simulator configuration the suite
//! sweeps. Regenerate (after an intentional semantic change) with:
//!
//! ```text
//! cargo run -p newton-isa --bin newton -- run crates/isa/tests/traces/<name>.aim \
//!     > crates/isa/tests/traces/<name>.expected
//! ```

use newton_core::config::NewtonConfig;
use newton_isa::{interp, IsaError, Program};

fn golden(name: &str) {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/traces");
    let trace = std::fs::read_to_string(format!("{dir}/{name}.aim")).unwrap();
    let expected = std::fs::read_to_string(format!("{dir}/{name}.expected")).unwrap();
    let program = Program::parse(&trace).unwrap();
    let run = interp::interpret(&program, NewtonConfig::paper_default()).unwrap();
    assert_eq!(run.log, expected, "golden log drift for {name}.aim");
}

#[test]
fn single_bank_write_read() {
    golden("single_bank");
}

#[test]
fn ganged_all_bank_comp() {
    golden("ganged_comp");
}

#[test]
fn global_buffer_roundtrip() {
    golden("gb_roundtrip");
}

#[test]
fn bias_preload_and_mac_readout() {
    golden("bias_mac");
}

#[test]
fn mixed_aim_and_conventional_traffic() {
    golden("mixed_host");
}

#[test]
fn malformed_trace_is_a_typed_line_error() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/traces");
    let trace = std::fs::read_to_string(format!("{dir}/malformed.aim")).unwrap();
    match Program::parse(&trace) {
        Err(IsaError::Parse { line, msg }) => {
            assert_eq!(line, 6, "bad instruction sits on source line 6");
            assert!(msg.contains("hex"), "{msg}");
        }
        other => panic!("expected a parse error, got {other:?}"),
    }
}

/// The serialization rule, observed through the golden log itself: the
/// host responses in `mixed_host.expected` must precede the MAC readout
/// (conventional traffic drains before the next AiM instruction).
#[test]
fn serialization_rule_orders_host_before_mac() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/traces");
    let log = std::fs::read_to_string(format!("{dir}/mixed_host.expected")).unwrap();
    let host = log.find("HOST ch=0 RD").expect("host read logged");
    let mac = log.find("RD_MAC").expect("mac readout logged");
    assert!(host < mac, "host queue must drain before the MAC readout");
}
