//! One trace, many backends — and the byte-identity core claim.
//!
//! The same lowered `.aim` trace executes on the cycle-accurate
//! Newton-HBM2E system (physical byte replay), a Newton-on-GDDR6
//! system (logical relayout), and the two analytic baselines. The
//! HBM2E replay must be **byte-identical** to the API-driven
//! `run_mv` path: outputs, cycles, stats, per-channel summaries.

use newton_core::config::NewtonConfig;
use newton_core::system::NewtonSystem;
use newton_isa::backend::{self, Backend};
use newton_isa::{generate, harness, mv};
use newton_workloads::{generator, MvShape};

fn lowered(m: usize, n: usize, channels: usize, seed: u64) -> (NewtonConfig, mv::MvTrace) {
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = channels;
    let shape = MvShape::new(m, n);
    let matrix = generator::matrix(shape, seed);
    let vector = generator::vector(n, seed + 1);
    let program = generate::lower_mv(&cfg, &matrix, m, n, &vector).unwrap();
    // The text round trip is part of the contract: parse(render(p)) == p.
    let reparsed = newton_isa::Program::parse(&program.render()).unwrap();
    assert_eq!(reparsed, program);
    (cfg, mv::recognize(&reparsed).unwrap())
}

#[test]
fn trace_replay_is_byte_identical_to_api_path() {
    let (cfg, trace) = lowered(48, 160, 4, 11);
    let (m, n) = (trace.geometry.m, trace.geometry.n);

    let mut sys_trace = NewtonSystem::new(cfg.clone()).unwrap();
    let loaded = trace.apply_physical(&mut sys_trace).unwrap();
    let run_trace = sys_trace.run_resident(&loaded, &trace.vector).unwrap();

    let mut sys_api = NewtonSystem::new(cfg).unwrap();
    let run_api = sys_api.run_mv(&trace.matrix, m, n, &trace.vector).unwrap();

    // Bit-exact outputs, not approximately-equal outputs.
    let bits = |o: &[f32]| o.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&run_trace.output), bits(&run_api.output));
    assert_eq!(run_trace.cycles, run_api.cycles);
    assert_eq!(run_trace.stats, run_api.stats);
    assert_eq!(run_trace.channel_summaries, run_api.channel_summaries);
    assert_eq!(
        harness::conformance_snapshot(&run_trace).render(),
        harness::conformance_snapshot(&run_api).render()
    );
}

#[test]
fn same_trace_runs_on_at_least_three_backends() {
    let (_cfg, trace) = lowered(32, 96, 4, 5);
    // Note: geometry declares 4 channels, so the stock HBM2E backend
    // (8 channels) exercises the relayout path while a matched-config
    // backend exercises physical replay.
    let mut matched_cfg = NewtonConfig::paper_default();
    matched_cfg.channels = 4;
    let mut backends: Vec<Box<dyn Backend>> = vec![
        Box::new(backend::NewtonBackend::with_config(
            "newton-hbm2e-4ch",
            matched_cfg,
        )),
        Box::new(backend::NewtonBackend::hbm2e()),
        Box::new(backend::NewtonBackend::gddr6()),
        Box::new(backend::IdealBackend::paper_default()),
        Box::new(backend::GpuBackend::titan_v()),
    ];
    let report = harness::run_backends(&trace, &mut backends).unwrap();
    assert_eq!(report.runs.len(), 5);
    for (run, err) in report.runs.iter().zip(&report.max_abs_err) {
        assert_eq!(run.outputs.len(), 32, "{}", run.backend);
        assert!(run.elapsed_ns > 0.0, "{}", run.backend);
        // bf16 accumulation tolerance for n=96 dot products.
        assert!(*err < 0.25, "{}: max_abs_err {err}", run.backend);
    }
    // Cycle-accurate backends report cycles+stats; analytic ones don't.
    assert!(report.runs[0].cycles.is_some());
    assert!(report.runs[3].cycles.is_none());
    let snap = report.snapshot(&trace).render();
    assert!(snap.contains("isa_backends"));
    assert!(snap.contains("newton-gddr6"));
}

#[test]
fn foreign_geometry_falls_back_to_relayout() {
    // Trace lowered for 4-channel HBM2E, replayed on 16-channel GDDR6.
    let (_cfg, trace) = lowered(64, 128, 4, 3);
    assert!(!trace.geometry.matches(&NewtonConfig::gddr6_aim()));
    let mut b = backend::NewtonBackend::gddr6();
    let run = b.run(&trace).unwrap();
    assert_eq!(run.outputs.len(), 64);
    // Same operands, different silicon: outputs agree to bf16 tolerance.
    let reference: Vec<f32> = {
        let vector: Vec<f32> = trace.vector.iter().map(|v| v.to_f32()).collect();
        (0..64)
            .map(|i| {
                trace.matrix[i * 128..(i + 1) * 128]
                    .iter()
                    .zip(&vector)
                    .map(|(w, x)| w.to_f32() * x)
                    .sum()
            })
            .collect()
    };
    for (o, r) in run.outputs.iter().zip(&reference) {
        assert!((o - r).abs() < 0.25, "{o} vs {r}");
    }
}

#[test]
fn tampered_mac_stream_is_rejected() {
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 2;
    let matrix = generator::matrix(MvShape::new(8, 64), 1);
    let vector = generator::vector(64, 2);
    let mut program = generate::lower_mv(&cfg, &matrix, 8, 64, &vector).unwrap();
    // Corrupt the first MAC_ABK's row: the schedule checker must notice.
    for instr in &mut program.instrs {
        if let newton_isa::Instr::MacAbk { row, .. } = instr {
            *row += 1;
            break;
        }
    }
    match mv::recognize(&program) {
        Err(newton_isa::IsaError::ScheduleMismatch { .. }) => {}
        other => panic!("expected ScheduleMismatch, got {other:?}"),
    }
}
