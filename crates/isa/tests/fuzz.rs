//! Property-based ISA fuzzing (satellite of the trace frontend).
//!
//! Three contracts, seeded through the offline proptest shim's
//! counter-mode RNG so every failure reproduces from its case number:
//!
//! 1. Well-formed random programs round-trip `Instr -> text -> Instr`
//!    losslessly.
//! 2. The decoder/interpreter never panics: any outcome is `Ok` or a
//!    typed [`IsaError`].
//! 3. Out-of-range operands (banks, rows, columns, GPRs, latches,
//!    channel masks) are rejected with the matching typed variant.

use newton_core::config::NewtonConfig;
use newton_isa::{generate, interp, Instr, IsaError, Program};
use proptest::prelude::*;

fn small_config() -> NewtonConfig {
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 2;
    cfg
}

/// A trace with the geometry header plus one arbitrary instruction.
fn one_instr_program(instr: Instr) -> Program {
    let cfg = small_config();
    let mut program = generate::random_program(&cfg, 0, 0);
    // random_program ends with EOC; splice the probe before it.
    program.instrs.insert(program.instrs.len() - 1, instr);
    program
}

proptest! {
    /// Random well-formed programs survive render -> parse unchanged.
    #[test]
    fn render_parse_round_trip(seed in any::<u64>(), len in 1usize..48) {
        let program = generate::random_program(&small_config(), seed, len);
        let text = program.render();
        let reparsed = Program::parse(&text).unwrap();
        prop_assert_eq!(reparsed, program);
    }

    /// Interpretation of any well-formed random program terminates
    /// without panicking (typed errors allowed, aborts are not).
    #[test]
    fn interpreter_never_panics(seed in any::<u64>(), len in 1usize..32) {
        let cfg = small_config();
        let program = generate::random_program(&cfg, seed, len);
        let _ = interp::interpret(&program, cfg);
    }

    /// Truncating or corrupting any single instruction line yields a
    /// typed parse error carrying that line's number — never a panic.
    #[test]
    fn corrupted_lines_fail_typed(seed in any::<u64>(), len in 2usize..24) {
        let program = generate::random_program(&small_config(), seed, len);
        let text = program.render();
        let lines: Vec<&str> = text.lines().collect();
        // Corrupt the last instruction body line (never the magic).
        let victim = 1 + (seed as usize % (lines.len() - 1));
        let mut mutated: Vec<String> = lines.iter().map(ToString::to_string).collect();
        mutated[victim] = format!("{}garbage!", &mutated[victim][..mutated[victim].len() / 2]);
        let mutated = mutated.join("\n");
        match Program::parse(&mutated) {
            Ok(p) => prop_assert_eq!(p.instrs.len(), len + 7), // corrupted into a comment-free valid line is impossible: '!' parses nowhere
            Err(IsaError::Parse { line, .. }) => prop_assert_eq!(line, victim + 1),
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// Out-of-range banks are a typed rejection.
    #[test]
    fn bank_out_of_range_is_typed(bank in 16usize..256) {
        let p = one_instr_program(Instr::WrSbk { gpr: 0, channels: 0x1, bank, row: 0, col: 0 });
        match interp::interpret(&p, small_config()) {
            Err(IsaError::BankOutOfRange { bank: b, banks: 16 }) => assert_eq!(b, bank),
            other => panic!("expected BankOutOfRange, got {other:?}"),
        }
    }

    /// Out-of-range rows are a typed rejection.
    #[test]
    fn row_out_of_range_is_typed(row in 32_768usize..100_000) {
        let p = one_instr_program(Instr::MacSbk { channels: 0x1, bank: 0, row, n_sub: 1 });
        match interp::interpret(&p, small_config()) {
            Err(IsaError::RowOutOfRange { row: r, .. }) => assert_eq!(r, row),
            other => panic!("expected RowOutOfRange, got {other:?}"),
        }
    }

    /// Out-of-range columns are a typed rejection.
    #[test]
    fn col_out_of_range_is_typed(col in 32usize..1000) {
        let p = one_instr_program(Instr::RdSbk { gpr: 0, channels: 0x1, bank: 0, row: 0, col });
        match interp::interpret(&p, small_config()) {
            Err(IsaError::ColOutOfRange { col: c, cols: 32 }) => assert_eq!(c, col),
            other => panic!("expected ColOutOfRange, got {other:?}"),
        }
    }

    /// Out-of-range GPRs are a typed rejection.
    #[test]
    fn gpr_out_of_range_is_typed(gpr in 64usize..1024) {
        let p = one_instr_program(Instr::WrGpr { gpr, data: [0; 32] });
        match interp::interpret(&p, small_config()) {
            Err(IsaError::GprOutOfRange { gpr: g, count: 64 }) => assert_eq!(g, gpr),
            other => panic!("expected GprOutOfRange, got {other:?}"),
        }
    }

    /// Channel masks addressing unconfigured channels are rejected.
    #[test]
    fn channel_mask_out_of_range_is_typed(extra in 2u32..63) {
        let mask = 1u64 << extra; // config has 2 channels
        let p = one_instr_program(Instr::RdMac { gpr: 0, channels: mask, latch: 0 });
        match interp::interpret(&p, small_config()) {
            Err(IsaError::ChannelMaskOutOfRange { channels: 2, .. }) => {}
            other => panic!("expected ChannelMaskOutOfRange, got {other:?}"),
        }
    }

    /// Out-of-range result latches are rejected.
    #[test]
    fn latch_out_of_range_is_typed(latch in 1usize..64) {
        // paper_default has a single result latch per bank.
        let p = one_instr_program(Instr::RdMac { gpr: 0, channels: 0x1, latch });
        match interp::interpret(&p, small_config()) {
            Err(IsaError::LatchOutOfRange { latch: l, latches: 1 }) => assert_eq!(l, latch),
            other => panic!("expected LatchOutOfRange, got {other:?}"),
        }
    }
}
