//! The typed AiM host-instruction set and its canonical text form.
//!
//! One `.aim` line is one instruction. The vocabulary follows the ISR
//! layer of SK hynix's AiM simulator — host-visible instructions that a
//! memory controller unrolls into DRAM(-like) command streams:
//!
//! | instruction | operands | meaning |
//! |---|---|---|
//! | `WR_CFR` | `idx value` | write configuration register |
//! | `WR_GPR` | `g <64 hex>` | load 256-bit host GPR `g` |
//! | `WR_SBK` | `g mask bank row col` | GPR → one bank's column |
//! | `WR_ABK` | `g mask row col` | GPR → same column of *all* banks |
//! | `WR_GB`  | `g mask off` | GPR → global-buffer sub-chunk `off` |
//! | `WR_BIAS`| `g mask` | GPR's 16 bf16 → each bank's MAC latch |
//! | `MAC_ABK`| `mask row chunk latch nsub flags` | ganged COMP row-set |
//! | `MAC_SBK`| `mask bank row nsub` | single-bank COMP burst |
//! | `RD_MAC` | `g mask latch` | 16 banks' latches → GPR |
//! | `RD_AF`  | `g mask latch` | same, through the activation LUT |
//! | `RD_SBK` | `g mask bank row col` | one bank's column → GPR |
//! | `COPY_BKGB` | `mask bank row off nsub` | bank row → global buffer |
//! | `COPY_GBBK` | `mask bank row off nsub` | global buffer → bank row |
//! | `WR` | `g mask bank row col` | *conventional* host write (queued) |
//! | `RD` | `mask bank row col` | *conventional* host read (queued) |
//! | `EOC` | | end of command stream |
//!
//! Channel masks are hex (`0x3` = channels 0 and 1). GPR payloads are 64
//! hex characters: 32 bytes in storage order, i.e. 16 little-endian bf16
//! elements. `MAC_ABK` flags are two characters — `L`/`-` (load the
//! input chunk via GWRITE) then `R`/`-` (reset the latch first).
//!
//! Rendering ([`fmt::Display`]) and parsing ([`Instr::parse_line`]) are
//! exact inverses: `Instr → text → Instr` is lossless, property-tested
//! by the fuzzer.

use std::fmt;

/// Host general-purpose registers (256-bit each).
pub const GPR_COUNT: usize = 64;
/// Configuration registers.
pub const CFR_COUNT: usize = 16;
/// Bytes in one GPR (256 bits).
pub const GPR_BYTES: usize = 32;

/// Well-known CFR indices: the trace geometry header.
pub mod cfr {
    /// Matrix rows of the lowered workload.
    pub const M: usize = 0;
    /// Matrix columns of the lowered workload.
    pub const N: usize = 1;
    /// Channels of the origin device.
    pub const CHANNELS: usize = 2;
    /// Banks per channel of the origin device.
    pub const BANKS: usize = 3;
    /// Elements per DRAM row of the origin device.
    pub const ROW_ELEMS: usize = 4;
    /// Schedule kind: 0 interleaved-full-reuse, 1 no-reuse, 2 four-latch.
    pub const SCHEDULE: usize = 5;
}

/// One AiM host instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// Configuration-register write.
    WrCfr {
        /// Register index.
        idx: usize,
        /// Value.
        value: u64,
    },
    /// 256-bit GPR load from the host.
    WrGpr {
        /// Register index.
        gpr: usize,
        /// Payload, in storage byte order.
        data: [u8; GPR_BYTES],
    },
    /// GPR → one bank's column (single-bank weight deposit).
    WrSbk {
        /// Source GPR.
        gpr: usize,
        /// Channel mask.
        channels: u64,
        /// Bank.
        bank: usize,
        /// DRAM row.
        row: usize,
        /// Column (256-bit units).
        col: usize,
    },
    /// GPR → the same column of every bank.
    WrAbk {
        /// Source GPR.
        gpr: usize,
        /// Channel mask.
        channels: u64,
        /// DRAM row.
        row: usize,
        /// Column (256-bit units).
        col: usize,
    },
    /// GPR → global-buffer sub-chunk.
    WrGb {
        /// Source GPR.
        gpr: usize,
        /// Channel mask.
        channels: u64,
        /// Sub-chunk offset within the buffer.
        offset: usize,
    },
    /// GPR's 16 bf16 lanes → the 16 banks' MAC latches (bias preload).
    WrBias {
        /// Source GPR.
        gpr: usize,
        /// Channel mask.
        channels: u64,
    },
    /// One ganged COMP row-set: activate `row` in all banks, stream
    /// `n_sub` sub-chunk COMPs against the global buffer, precharge.
    MacAbk {
        /// Channel mask.
        channels: u64,
        /// DRAM row to activate.
        row: usize,
        /// Input-vector chunk this row-set consumes (descriptive; the
        /// conformance layer checks it against the rebuilt schedule).
        chunk: usize,
        /// Result latch accumulated into.
        latch: usize,
        /// Sub-chunk COMPs to stream.
        n_sub: usize,
        /// Spend GWRITE commands loading the chunk first.
        load_chunk: bool,
        /// Clear the latch before the first COMP.
        reset_latch: bool,
    },
    /// Single-bank COMP burst into latch 0.
    MacSbk {
        /// Channel mask.
        channels: u64,
        /// Bank.
        bank: usize,
        /// DRAM row to activate.
        row: usize,
        /// Sub-chunk COMPs to stream.
        n_sub: usize,
    },
    /// 16 banks' result latches → GPR (READRES data path).
    RdMac {
        /// Destination GPR.
        gpr: usize,
        /// Channel mask.
        channels: u64,
        /// Latch to read.
        latch: usize,
    },
    /// Same as [`Instr::RdMac`] but through the activation LUT.
    RdAf {
        /// Destination GPR.
        gpr: usize,
        /// Channel mask.
        channels: u64,
        /// Latch to read.
        latch: usize,
    },
    /// One bank's column → GPR.
    RdSbk {
        /// Destination GPR.
        gpr: usize,
        /// Channel mask.
        channels: u64,
        /// Bank.
        bank: usize,
        /// DRAM row.
        row: usize,
        /// Column (256-bit units).
        col: usize,
    },
    /// Bank row sub-chunks → global buffer.
    CopyBkGb {
        /// Channel mask.
        channels: u64,
        /// Bank.
        bank: usize,
        /// DRAM row.
        row: usize,
        /// First global-buffer sub-chunk written.
        offset: usize,
        /// Sub-chunks copied.
        n_sub: usize,
    },
    /// Global buffer sub-chunks → bank row.
    CopyGbBk {
        /// Channel mask.
        channels: u64,
        /// Bank.
        bank: usize,
        /// DRAM row.
        row: usize,
        /// First global-buffer sub-chunk read.
        offset: usize,
        /// Sub-chunks copied.
        n_sub: usize,
    },
    /// Conventional host write: queued, serviced before the next AiM
    /// instruction (the serialization rule).
    WrHost {
        /// Source GPR.
        gpr: usize,
        /// Channel mask.
        channels: u64,
        /// Bank.
        bank: usize,
        /// DRAM row.
        row: usize,
        /// Column (256-bit units).
        col: usize,
    },
    /// Conventional host read: queued, serviced before the next AiM
    /// instruction.
    RdHost {
        /// Channel mask.
        channels: u64,
        /// Bank.
        bank: usize,
        /// DRAM row.
        row: usize,
        /// Column (256-bit units).
        col: usize,
    },
    /// End of command stream: drain queued host requests, settle.
    Eoc,
}

/// Renders 32 bytes as 64 lowercase hex characters in storage order.
#[must_use]
pub fn hex32(data: &[u8; GPR_BYTES]) -> String {
    let mut s = String::with_capacity(GPR_BYTES * 2);
    for b in data {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn parse_hex32(tok: &str) -> Result<[u8; GPR_BYTES], String> {
    if tok.len() != GPR_BYTES * 2 {
        return Err(format!(
            "GPR payload must be {} hex chars, got {}",
            GPR_BYTES * 2,
            tok.len()
        ));
    }
    let mut out = [0u8; GPR_BYTES];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = u8::from_str_radix(&tok[2 * i..2 * i + 2], 16)
            .map_err(|_| format!("bad hex byte {:?}", &tok[2 * i..2 * i + 2]))?;
    }
    Ok(out)
}

fn parse_usize(tok: &str, what: &str) -> Result<usize, String> {
    tok.parse::<usize>()
        .map_err(|_| format!("bad {what} {tok:?}"))
}

fn parse_u64(tok: &str, what: &str) -> Result<u64, String> {
    tok.parse::<u64>()
        .map_err(|_| format!("bad {what} {tok:?}"))
}

fn parse_mask(tok: &str) -> Result<u64, String> {
    let hex = tok
        .strip_prefix("0x")
        .ok_or_else(|| format!("channel mask must be 0x-hex, got {tok:?}"))?;
    u64::from_str_radix(hex, 16).map_err(|_| format!("bad channel mask {tok:?}"))
}

fn parse_flags(tok: &str) -> Result<(bool, bool), String> {
    let b = tok.as_bytes();
    if b.len() != 2 || !(b[0] == b'L' || b[0] == b'-') || !(b[1] == b'R' || b[1] == b'-') {
        return Err(format!("flags must be two chars L/- then R/-, got {tok:?}"));
    }
    Ok((b[0] == b'L', b[1] == b'R'))
}

impl Instr {
    /// Parses one instruction line (no comments, already trimmed).
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformation; the caller
    /// ([`crate::Program::parse`]) attaches the source line number.
    pub fn parse_line(line: &str) -> Result<Instr, String> {
        let toks: Vec<&str> = line.split_whitespace().collect();
        let Some((&op, args)) = toks.split_first() else {
            return Err("empty instruction".into());
        };
        let want = |n: usize| -> Result<(), String> {
            if args.len() == n {
                Ok(())
            } else {
                Err(format!("{op} takes {n} operands, got {}", args.len()))
            }
        };
        match op {
            "WR_CFR" => {
                want(2)?;
                Ok(Instr::WrCfr {
                    idx: parse_usize(args[0], "CFR index")?,
                    value: parse_u64(args[1], "CFR value")?,
                })
            }
            "WR_GPR" => {
                want(2)?;
                Ok(Instr::WrGpr {
                    gpr: parse_usize(args[0], "GPR index")?,
                    data: parse_hex32(args[1])?,
                })
            }
            "WR_SBK" => {
                want(5)?;
                Ok(Instr::WrSbk {
                    gpr: parse_usize(args[0], "GPR index")?,
                    channels: parse_mask(args[1])?,
                    bank: parse_usize(args[2], "bank")?,
                    row: parse_usize(args[3], "row")?,
                    col: parse_usize(args[4], "column")?,
                })
            }
            "WR_ABK" => {
                want(4)?;
                Ok(Instr::WrAbk {
                    gpr: parse_usize(args[0], "GPR index")?,
                    channels: parse_mask(args[1])?,
                    row: parse_usize(args[2], "row")?,
                    col: parse_usize(args[3], "column")?,
                })
            }
            "WR_GB" => {
                want(3)?;
                Ok(Instr::WrGb {
                    gpr: parse_usize(args[0], "GPR index")?,
                    channels: parse_mask(args[1])?,
                    offset: parse_usize(args[2], "sub-chunk offset")?,
                })
            }
            "WR_BIAS" => {
                want(2)?;
                Ok(Instr::WrBias {
                    gpr: parse_usize(args[0], "GPR index")?,
                    channels: parse_mask(args[1])?,
                })
            }
            "MAC_ABK" => {
                want(6)?;
                let (load_chunk, reset_latch) = parse_flags(args[5])?;
                Ok(Instr::MacAbk {
                    channels: parse_mask(args[0])?,
                    row: parse_usize(args[1], "row")?,
                    chunk: parse_usize(args[2], "chunk")?,
                    latch: parse_usize(args[3], "latch")?,
                    n_sub: parse_usize(args[4], "sub-chunk count")?,
                    load_chunk,
                    reset_latch,
                })
            }
            "MAC_SBK" => {
                want(4)?;
                Ok(Instr::MacSbk {
                    channels: parse_mask(args[0])?,
                    bank: parse_usize(args[1], "bank")?,
                    row: parse_usize(args[2], "row")?,
                    n_sub: parse_usize(args[3], "sub-chunk count")?,
                })
            }
            "RD_MAC" => {
                want(3)?;
                Ok(Instr::RdMac {
                    gpr: parse_usize(args[0], "GPR index")?,
                    channels: parse_mask(args[1])?,
                    latch: parse_usize(args[2], "latch")?,
                })
            }
            "RD_AF" => {
                want(3)?;
                Ok(Instr::RdAf {
                    gpr: parse_usize(args[0], "GPR index")?,
                    channels: parse_mask(args[1])?,
                    latch: parse_usize(args[2], "latch")?,
                })
            }
            "RD_SBK" => {
                want(5)?;
                Ok(Instr::RdSbk {
                    gpr: parse_usize(args[0], "GPR index")?,
                    channels: parse_mask(args[1])?,
                    bank: parse_usize(args[2], "bank")?,
                    row: parse_usize(args[3], "row")?,
                    col: parse_usize(args[4], "column")?,
                })
            }
            "COPY_BKGB" => {
                want(5)?;
                Ok(Instr::CopyBkGb {
                    channels: parse_mask(args[0])?,
                    bank: parse_usize(args[1], "bank")?,
                    row: parse_usize(args[2], "row")?,
                    offset: parse_usize(args[3], "sub-chunk offset")?,
                    n_sub: parse_usize(args[4], "sub-chunk count")?,
                })
            }
            "COPY_GBBK" => {
                want(5)?;
                Ok(Instr::CopyGbBk {
                    channels: parse_mask(args[0])?,
                    bank: parse_usize(args[1], "bank")?,
                    row: parse_usize(args[2], "row")?,
                    offset: parse_usize(args[3], "sub-chunk offset")?,
                    n_sub: parse_usize(args[4], "sub-chunk count")?,
                })
            }
            "WR" => {
                want(5)?;
                Ok(Instr::WrHost {
                    gpr: parse_usize(args[0], "GPR index")?,
                    channels: parse_mask(args[1])?,
                    bank: parse_usize(args[2], "bank")?,
                    row: parse_usize(args[3], "row")?,
                    col: parse_usize(args[4], "column")?,
                })
            }
            "RD" => {
                want(4)?;
                Ok(Instr::RdHost {
                    channels: parse_mask(args[0])?,
                    bank: parse_usize(args[1], "bank")?,
                    row: parse_usize(args[2], "row")?,
                    col: parse_usize(args[3], "column")?,
                })
            }
            "EOC" => {
                want(0)?;
                Ok(Instr::Eoc)
            }
            other => Err(format!("unknown instruction {other:?}")),
        }
    }

    /// Whether this instruction touches the AiM side of the controller
    /// (and must therefore wait for queued conventional traffic — the
    /// serialization rule).
    #[must_use]
    pub fn is_aim(&self) -> bool {
        !matches!(
            self,
            Instr::WrCfr { .. }
                | Instr::WrGpr { .. }
                | Instr::WrHost { .. }
                | Instr::RdHost { .. }
                | Instr::Eoc
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::WrCfr { idx, value } => write!(f, "WR_CFR {idx} {value}"),
            Instr::WrGpr { gpr, data } => write!(f, "WR_GPR {gpr} {}", hex32(data)),
            Instr::WrSbk {
                gpr,
                channels,
                bank,
                row,
                col,
            } => write!(f, "WR_SBK {gpr} {channels:#x} {bank} {row} {col}"),
            Instr::WrAbk {
                gpr,
                channels,
                row,
                col,
            } => write!(f, "WR_ABK {gpr} {channels:#x} {row} {col}"),
            Instr::WrGb {
                gpr,
                channels,
                offset,
            } => write!(f, "WR_GB {gpr} {channels:#x} {offset}"),
            Instr::WrBias { gpr, channels } => write!(f, "WR_BIAS {gpr} {channels:#x}"),
            Instr::MacAbk {
                channels,
                row,
                chunk,
                latch,
                n_sub,
                load_chunk,
                reset_latch,
            } => write!(
                f,
                "MAC_ABK {channels:#x} {row} {chunk} {latch} {n_sub} {}{}",
                if *load_chunk { 'L' } else { '-' },
                if *reset_latch { 'R' } else { '-' },
            ),
            Instr::MacSbk {
                channels,
                bank,
                row,
                n_sub,
            } => write!(f, "MAC_SBK {channels:#x} {bank} {row} {n_sub}"),
            Instr::RdMac {
                gpr,
                channels,
                latch,
            } => write!(f, "RD_MAC {gpr} {channels:#x} {latch}"),
            Instr::RdAf {
                gpr,
                channels,
                latch,
            } => write!(f, "RD_AF {gpr} {channels:#x} {latch}"),
            Instr::RdSbk {
                gpr,
                channels,
                bank,
                row,
                col,
            } => write!(f, "RD_SBK {gpr} {channels:#x} {bank} {row} {col}"),
            Instr::CopyBkGb {
                channels,
                bank,
                row,
                offset,
                n_sub,
            } => write!(f, "COPY_BKGB {channels:#x} {bank} {row} {offset} {n_sub}"),
            Instr::CopyGbBk {
                channels,
                bank,
                row,
                offset,
                n_sub,
            } => write!(f, "COPY_GBBK {channels:#x} {bank} {row} {offset} {n_sub}"),
            Instr::WrHost {
                gpr,
                channels,
                bank,
                row,
                col,
            } => write!(f, "WR {gpr} {channels:#x} {bank} {row} {col}"),
            Instr::RdHost {
                channels,
                bank,
                row,
                col,
            } => write!(f, "RD {channels:#x} {bank} {row} {col}"),
            Instr::Eoc => write!(f, "EOC"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_variant() {
        let samples = [
            Instr::WrCfr { idx: 2, value: 24 },
            Instr::WrGpr {
                gpr: 63,
                data: [0xab; GPR_BYTES],
            },
            Instr::WrSbk {
                gpr: 1,
                channels: 0x3,
                bank: 5,
                row: 17,
                col: 2,
            },
            Instr::WrAbk {
                gpr: 0,
                channels: 0x1,
                row: 4,
                col: 0,
            },
            Instr::WrGb {
                gpr: 9,
                channels: 0xff,
                offset: 31,
            },
            Instr::WrBias {
                gpr: 2,
                channels: 0x1,
            },
            Instr::MacAbk {
                channels: 0xffffff,
                row: 7,
                chunk: 1,
                latch: 0,
                n_sub: 32,
                load_chunk: true,
                reset_latch: false,
            },
            Instr::MacSbk {
                channels: 0x2,
                bank: 15,
                row: 0,
                n_sub: 4,
            },
            Instr::RdMac {
                gpr: 3,
                channels: 0x1,
                latch: 0,
            },
            Instr::RdAf {
                gpr: 4,
                channels: 0x1,
                latch: 0,
            },
            Instr::RdSbk {
                gpr: 5,
                channels: 0x1,
                bank: 0,
                row: 1,
                col: 3,
            },
            Instr::CopyBkGb {
                channels: 0x1,
                bank: 2,
                row: 9,
                offset: 0,
                n_sub: 8,
            },
            Instr::CopyGbBk {
                channels: 0x1,
                bank: 2,
                row: 9,
                offset: 0,
                n_sub: 8,
            },
            Instr::WrHost {
                gpr: 6,
                channels: 0x1,
                bank: 1,
                row: 100,
                col: 0,
            },
            Instr::RdHost {
                channels: 0x1,
                bank: 1,
                row: 100,
                col: 0,
            },
            Instr::Eoc,
        ];
        for i in &samples {
            let text = i.to_string();
            let back = Instr::parse_line(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(&back, i, "{text}");
        }
    }

    #[test]
    fn malformed_lines_rejected() {
        for bad in [
            "FROB 1 2",
            "WR_GPR 0 zz",
            "WR_SBK 0 3 0 0 0", // mask missing 0x
            "MAC_ABK 0x1 0 0 0 4 X-",
            "EOC now",
            "",
        ] {
            assert!(Instr::parse_line(bad).is_err(), "{bad:?}");
        }
    }
}
