//! Trace generation: lowering matrix–vector workloads to `.aim` text.
//!
//! `lower_mv` is the inverse of [`crate::mv::recognize`]: it emits the
//! CFR geometry header, the per-channel `WR_GPR`/`WR_SBK` matrix
//! residency stream in **exactly** the order `MatrixMapping::load_strided`
//! writes storage (so physical replay is byte-identical to the API
//! path), the `WR_GB` vector staging stream, the `MAC_ABK` stream read
//! off the same `Schedule` the system compiles, and the `RD_MAC`/`EOC`
//! epilogue.
//!
//! `random_program` derives well-formed-but-arbitrary instruction
//! sequences from a [`CounterRng`] seed for the fuzzer and the CLI's
//! `fuzz` subcommand.

use newton_bf16::{slice, Bf16};
use newton_core::config::NewtonConfig;
use newton_core::tiling::Schedule;
use newton_workloads::generator;
use newton_workloads::rng::CounterRng;
use newton_workloads::Benchmark;

use crate::error::IsaError;
use crate::instr::{Instr, GPR_BYTES, GPR_COUNT};
use crate::mv::GPR_ELEMS;
use crate::program::{Program, TraceGeometry};

/// Packs up to 16 elements into a zero-padded 32-byte GPR image.
fn gpr_image(elems: &[Bf16]) -> [u8; GPR_BYTES] {
    let mut out = [0u8; GPR_BYTES];
    slice::pack_into(&elems[..elems.len().min(GPR_ELEMS)], &mut out);
    out
}

/// Lowers one `m x n` matrix–vector workload against `cfg` to a trace.
///
/// The emitted program satisfies [`crate::mv::recognize`] and, replayed
/// on a system with the same geometry, produces byte-identical outputs,
/// cycle counts, and stats to `NewtonSystem::run_mv` on the same
/// operands (the differential conformance suite pins this).
///
/// # Errors
///
/// Shape/geometry errors when the operands don't fit the configuration.
pub fn lower_mv(
    cfg: &NewtonConfig,
    matrix: &[Bf16],
    m: usize,
    n: usize,
    vector: &[Bf16],
) -> Result<Program, IsaError> {
    if matrix.len() != m * n {
        return Err(IsaError::Geometry(format!(
            "matrix has {} elements, expected {m}x{n}",
            matrix.len()
        )));
    }
    if vector.len() != n {
        return Err(IsaError::Geometry(format!(
            "vector has {} elements, expected {n}",
            vector.len()
        )));
    }
    if cfg.dram.col_bytes() != GPR_BYTES {
        return Err(IsaError::Geometry(format!(
            "trace lowering requires {GPR_BYTES}-byte column IO, config has {}",
            cfg.dram.col_bytes()
        )));
    }
    let geometry = TraceGeometry::from_config(cfg, m, n);
    let mut instrs = geometry.header();
    let mut gpr = 0usize;
    let mut alloc_gpr = || {
        let g = gpr;
        gpr = (gpr + 1) % GPR_COUNT;
        g
    };

    // Matrix residency, one channel at a time, mirroring load_strided's
    // (local row, chunk) write order so storage bytes match the API path.
    let row_elems = geometry.row_elems;
    for ch in 0..geometry.channels {
        let Some(mapping) = geometry.mapping(ch)? else {
            continue;
        };
        let mask = 1u64 << ch;
        for li in 0..mapping.m() {
            let gi = ch + li * geometry.channels;
            for c in 0..mapping.num_chunks() {
                let (bank, dram_row, _) = mapping.location(li, c * row_elems)?;
                let len = mapping.chunk_elems(c);
                let src = &matrix[gi * n + c * row_elems..][..len];
                for (col, piece) in src.chunks(GPR_ELEMS).enumerate() {
                    let g = alloc_gpr();
                    instrs.push(Instr::WrGpr {
                        gpr: g,
                        data: gpr_image(piece),
                    });
                    instrs.push(Instr::WrSbk {
                        gpr: g,
                        channels: mask,
                        bank,
                        row: dram_row,
                        col,
                    });
                }
            }
        }
    }

    // Vector staging, broadcast to every channel.
    let all = if geometry.channels == 64 {
        u64::MAX
    } else {
        (1u64 << geometry.channels) - 1
    };
    for (offset, piece) in vector.chunks(GPR_ELEMS).enumerate() {
        let g = alloc_gpr();
        instrs.push(Instr::WrGpr {
            gpr: g,
            data: gpr_image(piece),
        });
        instrs.push(Instr::WrGb {
            gpr: g,
            channels: all,
            offset,
        });
    }

    // MAC stream: read the row-sets off the same schedule the system
    // compiles for channel 0 (all channels share it at base row 0).
    let mapping0 = geometry
        .mapping(0)?
        .ok_or_else(|| IsaError::Geometry("channel 0 has no rows".into()))?;
    let schedule = Schedule::build(geometry.schedule, &mapping0);
    for rs in schedule.row_sets() {
        instrs.push(Instr::MacAbk {
            channels: all,
            row: rs.dram_row,
            chunk: rs.chunk,
            latch: rs.latch,
            n_sub: mapping0.chunk_elems(rs.chunk).div_ceil(GPR_ELEMS),
            load_chunk: rs.load_chunk,
            reset_latch: rs.reset_latch,
        });
    }

    instrs.push(Instr::RdMac {
        gpr: alloc_gpr(),
        channels: all,
        latch: 0,
    });
    instrs.push(Instr::Eoc);
    Ok(Program { instrs })
}

/// Lowers one Table II benchmark with its canonical seeded operands.
///
/// # Errors
///
/// Propagates [`lower_mv`] errors.
pub fn lower_benchmark(bench: Benchmark, cfg: &NewtonConfig) -> Result<Program, IsaError> {
    let shape = bench.shape();
    let matrix = generator::matrix(shape, bench.seed());
    let vector = generator::vector(shape.n, bench.seed() + 1);
    lower_mv(cfg, &matrix, shape.m, shape.n, &vector)
}

/// Derives a well-formed random program from a counter-mode seed: every
/// operand lands inside `cfg`'s geometry, so interpretation must not
/// panic (the fuzzer's contract), and rendering round-trips losslessly.
#[must_use]
pub fn random_program(cfg: &NewtonConfig, seed: u64, len: usize) -> Program {
    let rng = CounterRng::new(seed);
    let g = TraceGeometry::from_config(cfg, 16, cfg.row_elems());
    let mut instrs = g.header();
    let banks = cfg.dram.banks;
    let rows = cfg.dram.rows_per_bank.min(64);
    let cols = cfg.dram.cols_per_row;
    let subchunks = cfg.row_elems() / GPR_ELEMS;
    let latches = cfg.result_latches_per_bank;
    let mask_all = if cfg.channels == 64 {
        u64::MAX
    } else {
        (1u64 << cfg.channels) - 1
    };
    let mut k = 0u64;
    let mut next = |modulus: u64| -> u64 {
        let v = rng.u64_at(k);
        k += 1;
        if modulus == 0 {
            v
        } else {
            v % modulus
        }
    };
    for _ in 0..len {
        let mask = (next(0) & mask_all).max(1);
        let gpr = next(GPR_COUNT as u64) as usize;
        let bank = next(banks as u64) as usize;
        let row = next(rows as u64) as usize;
        let col = next(cols as u64) as usize;
        let latch = next(latches as u64) as usize;
        let n_sub = next(subchunks as u64) as usize + 1;
        let offset = next(subchunks as u64) as usize;
        let mut data = [0u8; GPR_BYTES];
        for b in &mut data {
            *b = (next(256)) as u8;
        }
        let instr = match next(12) {
            0 => Instr::WrGpr { gpr, data },
            1 => Instr::WrSbk {
                gpr,
                channels: mask,
                bank,
                row,
                col,
            },
            2 => Instr::WrAbk {
                gpr,
                channels: mask,
                row,
                col,
            },
            3 => Instr::WrGb {
                gpr,
                channels: mask,
                offset,
            },
            4 => Instr::WrBias {
                gpr,
                channels: mask,
            },
            5 => Instr::MacSbk {
                channels: mask,
                bank,
                row,
                n_sub,
            },
            6 => Instr::MacAbk {
                channels: mask,
                row,
                chunk: 0,
                latch,
                n_sub,
                load_chunk: next(2) == 1,
                reset_latch: next(2) == 1,
            },
            7 => Instr::RdMac {
                gpr,
                channels: mask,
                latch,
            },
            8 => Instr::RdAf {
                gpr,
                channels: mask,
                latch,
            },
            9 => Instr::RdSbk {
                gpr,
                channels: mask,
                bank,
                row,
                col,
            },
            10 => Instr::WrHost {
                gpr,
                channels: mask,
                bank,
                row,
                col,
            },
            _ => Instr::RdHost {
                channels: mask,
                bank,
                row,
                col,
            },
        };
        instrs.push(instr);
    }
    instrs.push(Instr::Eoc);
    Program { instrs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mv;

    #[test]
    fn lowered_trace_is_recognizable() {
        let mut cfg = NewtonConfig::paper_default();
        cfg.channels = 2;
        let shape = newton_workloads::MvShape::new(8, 96);
        let matrix = generator::matrix(shape, 7);
        let vector = generator::vector(shape.n, 8);
        let p = lower_mv(&cfg, &matrix, shape.m, shape.n, &vector).unwrap();
        let mv = mv::recognize(&p).unwrap();
        assert_eq!(mv.geometry.m, 8);
        assert_eq!(mv.geometry.n, 96);
        assert_eq!(mv.matrix, matrix);
        assert_eq!(mv.vector, vector);
        assert!(mv.mac_sets > 0);
    }

    #[test]
    fn lowered_trace_round_trips_as_text() {
        let mut cfg = NewtonConfig::paper_default();
        cfg.channels = 2;
        let matrix = generator::matrix(newton_workloads::MvShape::new(4, 32), 1);
        let vector = generator::vector(32, 2);
        let p = lower_mv(&cfg, &matrix, 4, 32, &vector).unwrap();
        let text = p.render();
        assert_eq!(Program::parse(&text).unwrap(), p);
    }

    #[test]
    fn random_programs_render_and_parse() {
        let cfg = NewtonConfig::paper_default();
        for seed in 0..4 {
            let p = random_program(&cfg, seed, 24);
            assert_eq!(Program::parse(&p.render()).unwrap(), p);
        }
    }
}
