//! The comparison harness: one trace, many backends, versioned snapshots.
//!
//! Two snapshot shapes ship:
//!
//! * [`snapshot`] — the multi-backend comparison (`isa_backends`): one
//!   table row per backend plus the max absolute error of each backend's
//!   outputs against a host f64 reference.
//! * [`conformance_snapshot`] — the byte-identity probe
//!   (`isa_conformance`): cycles, every [`AimStats`] counter, and an
//!   FNV-1a digest of the output bits. The CLI's `diff` subcommand
//!   renders this snapshot for the trace-driven and API-driven paths
//!   into two directories and `diff -r` proves them identical.

use newton_core::system::SystemRun;
use newton_trace::MetricsSnapshot;

use crate::backend::{Backend, BackendRun};
use crate::error::IsaError;
use crate::mv::MvTrace;

/// All backends' runs of one trace, plus host-reference error bounds.
#[derive(Debug)]
pub struct BackendReport {
    /// One run per backend, in execution order.
    pub runs: Vec<BackendRun>,
    /// Host f64 reference outputs.
    pub reference: Vec<f64>,
    /// Per-backend max absolute error vs the reference.
    pub max_abs_err: Vec<f64>,
}

/// Runs `trace` on every backend and collects error bounds.
///
/// # Errors
///
/// The first backend failure aborts the report.
pub fn run_backends(
    trace: &MvTrace,
    backends: &mut [Box<dyn Backend>],
) -> Result<BackendReport, IsaError> {
    let (m, n) = (trace.geometry.m, trace.geometry.n);
    let vector: Vec<f64> = trace.vector.iter().map(|v| f64::from(v.to_f32())).collect();
    let reference: Vec<f64> = (0..m)
        .map(|i| {
            trace.matrix[i * n..(i + 1) * n]
                .iter()
                .zip(&vector)
                .map(|(w, x)| f64::from(w.to_f32()) * x)
                .sum()
        })
        .collect();
    let mut runs = Vec::with_capacity(backends.len());
    let mut max_abs_err = Vec::with_capacity(backends.len());
    for backend in backends {
        let run = backend.run(trace)?;
        let err = run
            .outputs
            .iter()
            .zip(&reference)
            .map(|(o, r)| (f64::from(*o) - r).abs())
            .fold(0.0_f64, f64::max);
        max_abs_err.push(err);
        runs.push(run);
    }
    Ok(BackendReport {
        runs,
        reference,
        max_abs_err,
    })
}

impl BackendReport {
    /// The versioned multi-backend comparison snapshot.
    #[must_use]
    pub fn snapshot(&self, trace: &MvTrace) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new("isa_backends");
        snap.count("m", trace.geometry.m as u64)
            .count("n", trace.geometry.n as u64)
            .count("backends", self.runs.len() as u64)
            .count("mac_sets", trace.mac_sets as u64);
        let columns: Vec<String> = ["backend", "elapsed_ns", "cycles", "max_abs_err"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let rows: Vec<Vec<String>> = self
            .runs
            .iter()
            .zip(&self.max_abs_err)
            .map(|(run, err)| {
                vec![
                    run.backend.clone(),
                    format!("{:.3}", run.elapsed_ns),
                    run.cycles.map_or_else(|| "-".into(), |c| c.to_string()),
                    format!("{err:.6e}"),
                ]
            })
            .collect();
        snap.table("backend comparison", &columns, &rows);
        snap
    }
}

/// FNV-1a 64-bit over the exact little-endian f32 bit patterns.
#[must_use]
pub fn output_digest(outputs: &[f32]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for v in outputs {
        for b in v.to_bits().to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// The byte-identity snapshot for one `SystemRun`: identical runs render
/// identical snapshots, so `diff -r` over two snapshot directories is a
/// conformance check.
#[must_use]
pub fn conformance_snapshot(run: &SystemRun) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::new("isa_conformance");
    let s = &run.stats;
    snap.count("cycles", run.cycles)
        .scalar("elapsed_ns", run.elapsed_ns)
        .count("outputs", run.output.len() as u64)
        .text(
            "output_digest",
            &format!("{:016x}", output_digest(&run.output)),
        )
        .count("gwrite_commands", s.gwrite_commands)
        .count("compute_commands", s.compute_commands)
        .count("readres_commands", s.readres_commands)
        .count("activate_commands", s.activate_commands)
        .count("row_sets", s.row_sets)
        .count("refreshes", s.refreshes)
        .count("ecc_corrected", s.ecc_corrected)
        .count("ecc_uncorrectable", s.ecc_uncorrectable)
        .count("schedule_hits", s.schedule_hits)
        .count("schedule_misses", s.schedule_misses)
        .count("schedule_invalidations", s.schedule_invalidations)
        .count("replayed_commands", s.replayed_commands)
        .count("channels", run.channel_summaries.len() as u64);
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_bit_sensitive() {
        let a = output_digest(&[1.0, 2.0]);
        let b = output_digest(&[1.0, 2.000_000_2]);
        assert_ne!(a, b);
        assert_eq!(a, output_digest(&[1.0, 2.0]));
        // +0.0 and -0.0 compare equal but are different bit patterns —
        // the digest must see through float equality.
        assert_ne!(output_digest(&[0.0]), output_digest(&[-0.0]));
    }
}
