//! The `newton` CLI: execute, lower, compare, and fuzz `.aim` traces.
//!
//! ```text
//! newton run <trace.aim> [--channels N] [--gddr6]
//! newton mv <trace.aim> [--backend hbm2e|gddr6|ideal|gpu|all]
//! newton lower (--bench NAME | --m M --n N [--seed S]) [--channels N] [--out FILE]
//! newton diff <trace.aim> --out-dir DIR
//! newton fuzz [--seed S] [--cases N]
//! ```
//!
//! `diff` is the conformance entry point CI drives: it renders the
//! byte-identity snapshot of the trace-driven and API-driven executions
//! into `DIR/trace/` and `DIR/api/` and exits nonzero when they differ
//! (so `diff -r DIR/trace DIR/api` is redundant but cheap insurance).

use std::process::ExitCode;

use newton_core::config::NewtonConfig;
use newton_core::system::NewtonSystem;
use newton_isa::backend::{self, Backend};
use newton_isa::generate;
use newton_isa::harness;
use newton_isa::interp;
use newton_isa::mv;
use newton_isa::Program;
use newton_workloads::{Benchmark, MvShape};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  newton run <trace.aim> [--channels N] [--gddr6]\n  \
         newton mv <trace.aim> [--backend hbm2e|gddr6|ideal|gpu|all]\n  \
         newton lower (--bench NAME | --m M --n N [--seed S]) [--channels N] [--out FILE]\n  \
         newton diff <trace.aim> --out-dir DIR\n  \
         newton fuzz [--seed S] [--cases N]"
    );
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

/// Pulls `--flag VALUE` out of `args`, removing both tokens.
fn take_opt(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} requires a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

/// Pulls a bare `--flag` out of `args`.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn parse_usize(s: &str, what: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("{what}: bad number {s:?}"))
}

fn load_program(path: &str) -> Result<Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Program::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn base_config(args: &mut Vec<String>) -> Result<NewtonConfig, String> {
    let mut cfg = if take_switch(args, "--gddr6") {
        NewtonConfig::gddr6_aim()
    } else {
        NewtonConfig::paper_default()
    };
    if let Some(c) = take_opt(args, "--channels")? {
        cfg.channels = parse_usize(&c, "--channels")?;
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "run" => cmd_run(args),
        "mv" => cmd_mv(args),
        "lower" => cmd_lower(args),
        "diff" => cmd_diff(args),
        "fuzz" => cmd_fuzz(args),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(msg) => fail(&msg),
    }
}

fn cmd_run(mut args: Vec<String>) -> Result<ExitCode, String> {
    let cfg = base_config(&mut args)?;
    let [path] = args.as_slice() else {
        return Ok(usage());
    };
    let program = load_program(path)?;
    let run = interp::interpret(&program, cfg).map_err(|e| e.to_string())?;
    print!("{}", run.log);
    Ok(ExitCode::SUCCESS)
}

fn cmd_mv(mut args: Vec<String>) -> Result<ExitCode, String> {
    let which = take_opt(&mut args, "--backend")?.unwrap_or_else(|| "all".into());
    let [path] = args.as_slice() else {
        return Ok(usage());
    };
    let program = load_program(path)?;
    let trace = mv::recognize(&program).map_err(|e| e.to_string())?;
    let mut backends: Vec<Box<dyn Backend>> = match which.as_str() {
        "all" => backend::default_backends(),
        "hbm2e" => vec![Box::new(backend::NewtonBackend::hbm2e())],
        "gddr6" => vec![Box::new(backend::NewtonBackend::gddr6())],
        "ideal" => vec![Box::new(backend::IdealBackend::paper_default())],
        "gpu" => vec![Box::new(backend::GpuBackend::titan_v())],
        other => return Err(format!("unknown backend {other:?}")),
    };
    let report = harness::run_backends(&trace, &mut backends).map_err(|e| e.to_string())?;
    print!("{}", report.snapshot(&trace).render());
    Ok(ExitCode::SUCCESS)
}

fn cmd_lower(mut args: Vec<String>) -> Result<ExitCode, String> {
    let mut cfg = base_config(&mut args)?;
    let bench = take_opt(&mut args, "--bench")?;
    let m = take_opt(&mut args, "--m")?;
    let n = take_opt(&mut args, "--n")?;
    let seed = take_opt(&mut args, "--seed")?;
    let out = take_opt(&mut args, "--out")?;
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }
    let program = if let Some(name) = bench {
        let bench = Benchmark::all()
            .into_iter()
            .find(|b| b.name() == name)
            .ok_or_else(|| {
                let names: Vec<&str> = Benchmark::all().iter().map(|b| b.name()).collect();
                format!("unknown benchmark {name:?}; known: {names:?}")
            })?;
        generate::lower_benchmark(bench, &cfg).map_err(|e| e.to_string())?
    } else {
        let (Some(m), Some(n)) = (m, n) else {
            return Err("lower needs --bench NAME or --m M --n N".into());
        };
        let m = parse_usize(&m, "--m")?;
        let n = parse_usize(&n, "--n")?;
        let seed: u64 = seed
            .as_deref()
            .unwrap_or("1")
            .parse()
            .map_err(|_| "--seed: bad number".to_string())?;
        // A short matrix wastes idle channels; clamp so every channel
        // holds at least one row (mirrors how experiments size systems).
        if m < cfg.channels {
            cfg.channels = m;
        }
        let shape = MvShape::new(m, n);
        let matrix = newton_workloads::generator::matrix(shape, seed);
        let vector = newton_workloads::generator::vector(n, seed + 1);
        generate::lower_mv(&cfg, &matrix, m, n, &vector).map_err(|e| e.to_string())?
    };
    let text = program.render();
    match out {
        Some(path) => {
            std::fs::write(&path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path} ({} instructions)", program.instrs.len());
        }
        None => print!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(mut args: Vec<String>) -> Result<ExitCode, String> {
    let out_dir = take_opt(&mut args, "--out-dir")?.ok_or("diff requires --out-dir DIR")?;
    let [path] = args.as_slice() else {
        return Ok(usage());
    };
    let program = load_program(path)?;
    let trace = mv::recognize(&program).map_err(|e| e.to_string())?;

    // Both paths execute on the geometry the trace declares.
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = trace.geometry.channels;
    if !trace.geometry.matches(&cfg) {
        cfg = NewtonConfig::gddr6_aim();
        cfg.channels = trace.geometry.channels;
    }
    if !trace.geometry.matches(&cfg) {
        return Err("trace geometry matches neither HBM2E nor GDDR6 presets".into());
    }

    // Trace-driven: physical byte replay of the WR_SBK stream.
    let mut sys_trace = NewtonSystem::new(cfg.clone()).map_err(|e| e.to_string())?;
    let loaded = trace
        .apply_physical(&mut sys_trace)
        .map_err(|e| e.to_string())?;
    let run_trace = sys_trace
        .run_resident(&loaded, &trace.vector)
        .map_err(|e| e.to_string())?;

    // API-driven: the ordinary load_matrix + run_mv pipeline.
    let mut sys_api = NewtonSystem::new(cfg).map_err(|e| e.to_string())?;
    let run_api = sys_api
        .run_mv(
            &trace.matrix,
            trace.geometry.m,
            trace.geometry.n,
            &trace.vector,
        )
        .map_err(|e| e.to_string())?;

    let snap_trace = harness::conformance_snapshot(&run_trace).render();
    let snap_api = harness::conformance_snapshot(&run_api).render();
    for (sub, text) in [("trace", &snap_trace), ("api", &snap_api)] {
        let dir = format!("{out_dir}/{sub}");
        std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
        let file = format!("{dir}/conformance.json");
        std::fs::write(&file, text).map_err(|e| format!("cannot write {file}: {e}"))?;
    }
    if snap_trace == snap_api {
        println!(
            "conformant: trace and API paths are byte-identical ({} outputs, {} cycles)",
            run_trace.output.len(),
            run_trace.cycles
        );
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("MISMATCH: trace-driven and API-driven snapshots differ under {out_dir}");
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_fuzz(mut args: Vec<String>) -> Result<ExitCode, String> {
    let seed: u64 = take_opt(&mut args, "--seed")?
        .as_deref()
        .unwrap_or("1")
        .parse()
        .map_err(|_| "--seed: bad number".to_string())?;
    let cases: usize = take_opt(&mut args, "--cases")?
        .as_deref()
        .unwrap_or("64")
        .parse()
        .map_err(|_| "--cases: bad number".to_string())?;
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }
    let mut cfg = NewtonConfig::paper_default();
    cfg.channels = 2; // keep fuzz systems small and fast
    let mut errors = 0usize;
    for i in 0..cases as u64 {
        let program = generate::random_program(&cfg, seed.wrapping_add(i), 24);
        let text = program.render();
        let reparsed = Program::parse(&text)
            .map_err(|e| format!("case {i}: render/parse round-trip failed: {e}"))?;
        if reparsed != program {
            return Err(format!("case {i}: round-trip changed the program"));
        }
        // Typed errors are acceptable; panics are not (and would abort).
        if interp::interpret(&program, cfg.clone()).is_err() {
            errors += 1;
        }
    }
    println!("fuzz ok: {cases} cases, {errors} rejected with typed errors, 0 panics");
    Ok(ExitCode::SUCCESS)
}
