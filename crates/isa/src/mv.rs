//! Recognition and replay of a lowered matrix–vector trace.
//!
//! [`crate::generate::lower_mv`] emits a canonical instruction sequence:
//! a CFR geometry header, a `WR_GPR`/`WR_SBK` stream depositing the
//! matrix, a `WR_GPR`/`WR_GB` stream carrying the input vector, the
//! `MAC_ABK` row-set stream, then `RD_MAC` + `EOC`. This module walks
//! that sequence back into an executable workload:
//!
//! * the **physical** path ([`MvTrace::apply_physical`]) deposits the
//!   trace's bytes into channel storage in exactly the order and
//!   granularity of `MatrixMapping::load_strided`, then plans with
//!   `NewtonSystem::plan_resident` — so a subsequent `run_resident` is
//!   byte-identical to the API-driven `run_mv` (outputs, cycles, stats,
//!   summaries, telemetry);
//! * the **logical** recovery ([`MvTrace::matrix`]/[`MvTrace::vector`])
//!   reconstructs the row-major workload through the origin mapping, so
//!   backends with *different* geometry (GDDR6/AiM, Ideal, GPU) can run
//!   the same trace.
//!
//! Recognition also re-verifies the trace's `MAC_ABK` stream against a
//! freshly built [`Schedule`] for the declared geometry — a trace whose
//! compute stream disagrees with what the controller would issue is
//! rejected with [`IsaError::ScheduleMismatch`].

use std::collections::BTreeMap;

use newton_bf16::{slice, Bf16};
use newton_core::layout::MatrixMapping;
use newton_core::system::{LoadedMatrix, NewtonSystem};
use newton_core::tiling::Schedule;

use crate::error::IsaError;
use crate::instr::{Instr, GPR_BYTES, GPR_COUNT};
use crate::program::{Program, TraceGeometry};

/// Sub-chunk elements carried by one GPR (16 bf16 in 256 bits).
pub const GPR_ELEMS: usize = GPR_BYTES / 2;

/// A recognized matrix–vector trace.
#[derive(Debug, Clone)]
pub struct MvTrace {
    /// The declared origin geometry.
    pub geometry: TraceGeometry,
    /// Deposited row bytes, keyed by `(channel, bank, dram_row)`; rows
    /// never written stay logically zero (fresh DRAM arrays materialize
    /// zero rows, and `load_strided` zero-fills its staging buffer).
    rows: BTreeMap<(usize, usize, usize), Vec<u8>>,
    /// The recovered logical `m x n` matrix (row-major).
    pub matrix: Vec<Bf16>,
    /// The recovered input vector (length `n`).
    pub vector: Vec<Bf16>,
    /// Row-sets carried by the `MAC_ABK` stream (after verification).
    pub mac_sets: usize,
}

/// Iterates the channels named by a mask, validating the bound.
fn mask_channels(mask: u64, channels: usize) -> Result<Vec<usize>, IsaError> {
    if channels < 64 && mask >> channels != 0 {
        return Err(IsaError::ChannelMaskOutOfRange { mask, channels });
    }
    Ok((0..channels.min(64))
        .filter(|c| mask >> c & 1 == 1)
        .collect())
}

/// Recognizes a lowered MV program.
///
/// # Errors
///
/// Typed [`IsaError`]s for missing geometry, out-of-range addresses,
/// instructions outside the canonical MV vocabulary
/// ([`IsaError::NotMv`]), or a compute stream that disagrees with the
/// rebuilt schedule ([`IsaError::ScheduleMismatch`]).
pub fn recognize(program: &Program) -> Result<MvTrace, IsaError> {
    let geometry = program.geometry()?;
    let row_bytes = geometry.row_elems * 2;
    let cols_per_row = row_bytes / GPR_BYTES;
    let mut mappings: Vec<Option<MatrixMapping>> = Vec::with_capacity(geometry.channels);
    for ch in 0..geometry.channels {
        mappings.push(geometry.mapping(ch)?);
    }

    let mut gprs = vec![[0u8; GPR_BYTES]; GPR_COUNT];
    let mut rows: BTreeMap<(usize, usize, usize), Vec<u8>> = BTreeMap::new();
    let mut vector = vec![Bf16::ZERO; geometry.n];
    let mut mac_stream: Vec<(usize, Instr)> = Vec::new();
    for (index, instr) in program.instrs.iter().enumerate() {
        match instr {
            Instr::WrCfr { .. } => {}
            Instr::WrGpr { gpr, data } => {
                if *gpr >= GPR_COUNT {
                    return Err(IsaError::GprOutOfRange {
                        gpr: *gpr,
                        count: GPR_COUNT,
                    });
                }
                gprs[*gpr] = *data;
            }
            Instr::WrSbk {
                gpr,
                channels,
                bank,
                row,
                col,
            } => {
                if *gpr >= GPR_COUNT {
                    return Err(IsaError::GprOutOfRange {
                        gpr: *gpr,
                        count: GPR_COUNT,
                    });
                }
                if *bank >= geometry.banks {
                    return Err(IsaError::BankOutOfRange {
                        bank: *bank,
                        banks: geometry.banks,
                    });
                }
                if *col >= cols_per_row {
                    return Err(IsaError::ColOutOfRange {
                        col: *col,
                        cols: cols_per_row,
                    });
                }
                for ch in mask_channels(*channels, geometry.channels)? {
                    let rows_used = mappings[ch]
                        .as_ref()
                        .map_or(0, MatrixMapping::rows_per_bank);
                    if *row >= rows_used {
                        return Err(IsaError::RowOutOfRange {
                            row: *row,
                            rows: rows_used,
                        });
                    }
                    let slot = rows
                        .entry((ch, *bank, *row))
                        .or_insert_with(|| vec![0u8; row_bytes]);
                    slot[col * GPR_BYTES..(col + 1) * GPR_BYTES].copy_from_slice(&gprs[*gpr]);
                }
            }
            Instr::WrGb {
                gpr,
                channels,
                offset,
            } => {
                if *gpr >= GPR_COUNT {
                    return Err(IsaError::GprOutOfRange {
                        gpr: *gpr,
                        count: GPR_COUNT,
                    });
                }
                mask_channels(*channels, geometry.channels)?;
                let subchunks = geometry.n.div_ceil(GPR_ELEMS);
                if *offset >= subchunks {
                    return Err(IsaError::GbOffsetOutOfRange {
                        offset: *offset,
                        subchunks,
                    });
                }
                let elems = slice::unpack(&gprs[*gpr])
                    .map_err(|e| IsaError::Geometry(format!("GPR payload: {e:?}")))?;
                let start = offset * GPR_ELEMS;
                let len = GPR_ELEMS.min(geometry.n - start);
                vector[start..start + len].copy_from_slice(&elems[..len]);
            }
            Instr::MacAbk { .. } => mac_stream.push((index, instr.clone())),
            Instr::RdMac { .. } | Instr::Eoc => break,
            other => {
                return Err(IsaError::NotMv(format!(
                    "instruction {index} ({other}) is outside the lowered-MV vocabulary"
                )))
            }
        }
    }

    verify_mac_stream(&geometry, &mappings, &mac_stream)?;
    let matrix = recover_matrix(&geometry, &mappings, &rows)?;
    Ok(MvTrace {
        geometry,
        rows,
        matrix,
        vector,
        mac_sets: mac_stream.len(),
    })
}

/// Checks the trace's `MAC_ABK` stream 1:1 against the schedule the
/// declared geometry implies (built for the widest channel, channel 0 —
/// all channels share the traversal structure).
fn verify_mac_stream(
    geometry: &TraceGeometry,
    mappings: &[Option<MatrixMapping>],
    stream: &[(usize, Instr)],
) -> Result<(), IsaError> {
    let Some(mapping0) = mappings.first().and_then(Option::as_ref) else {
        return Ok(());
    };
    let schedule = Schedule::build(geometry.schedule, mapping0);
    let row_sets = schedule.row_sets();
    if stream.len() != row_sets.len() {
        return Err(IsaError::ScheduleMismatch {
            index: stream.len().min(row_sets.len()),
            detail: format!(
                "trace carries {} MAC_ABK row-sets, schedule has {}",
                stream.len(),
                row_sets.len()
            ),
        });
    }
    for (i, ((_, instr), rs)) in stream.iter().zip(row_sets).enumerate() {
        let Instr::MacAbk {
            row,
            chunk,
            latch,
            n_sub,
            load_chunk,
            reset_latch,
            ..
        } = instr
        else {
            unreachable!("stream holds only MacAbk");
        };
        let want_sub = mapping0.chunk_elems(rs.chunk).div_ceil(GPR_ELEMS);
        if (*row, *chunk, *latch, *n_sub, *load_chunk, *reset_latch)
            != (
                rs.dram_row,
                rs.chunk,
                rs.latch,
                want_sub,
                rs.load_chunk,
                rs.reset_latch,
            )
        {
            return Err(IsaError::ScheduleMismatch {
                index: i,
                detail: format!(
                    "trace (row {row}, chunk {chunk}, latch {latch}, n_sub {n_sub}, \
                     flags {load_chunk}/{reset_latch}) vs schedule (row {}, chunk {}, \
                     latch {}, n_sub {want_sub}, flags {}/{})",
                    rs.dram_row, rs.chunk, rs.latch, rs.load_chunk, rs.reset_latch
                ),
            });
        }
    }
    Ok(())
}

/// Rebuilds the logical row-major matrix from the deposited bytes
/// through the origin mapping (the inverse of `load_strided`).
fn recover_matrix(
    geometry: &TraceGeometry,
    mappings: &[Option<MatrixMapping>],
    rows: &BTreeMap<(usize, usize, usize), Vec<u8>>,
) -> Result<Vec<Bf16>, IsaError> {
    let (m, n, c) = (geometry.m, geometry.n, geometry.channels);
    let mut matrix = vec![Bf16::ZERO; m * n];
    let zero_row = vec![0u8; geometry.row_elems * 2];
    for (ch, mapping) in mappings.iter().enumerate() {
        let Some(map) = mapping else { continue };
        for li in 0..map.m() {
            let gi = ch + li * c;
            for chunk in 0..map.num_chunks() {
                let (bank, dram_row, offset) = map.location(li, chunk * map.row_elems())?;
                let bytes = rows
                    .get(&(ch, bank, dram_row))
                    .map_or(zero_row.as_slice(), Vec::as_slice);
                let len = map.chunk_elems(chunk);
                let elems = slice::unpack(&bytes[offset * 2..(offset + len) * 2])
                    .map_err(|e| IsaError::Geometry(format!("stored row bytes: {e:?}")))?;
                matrix[gi * n + chunk * map.row_elems()..][..len].copy_from_slice(&elems);
            }
        }
    }
    Ok(matrix)
}

impl MvTrace {
    /// Deposits the trace's physical bytes into `system`'s channel
    /// storage and returns the resident-matrix plan — the byte-exact
    /// mirror of `NewtonSystem::load_matrix`.
    ///
    /// Rows are written whole, zero-padded, in the `(local row, chunk)`
    /// order of `MatrixMapping::load_strided`, so storage contents (and
    /// write-epoch counts) match the API path exactly; running the
    /// returned plan with `run_resident` is then byte-identical to
    /// `run_mv` on the same inputs.
    ///
    /// # Errors
    ///
    /// [`IsaError::Geometry`] when `system`'s geometry differs from the
    /// trace's (use the logical [`MvTrace::matrix`] + `load_matrix`
    /// relayout path instead); substrate errors otherwise.
    pub fn apply_physical(&self, system: &mut NewtonSystem) -> Result<LoadedMatrix, IsaError> {
        if !self.geometry.matches(system.config()) {
            return Err(IsaError::Geometry(format!(
                "trace geometry ({} ch, {} banks, {} row elems) does not match the system \
                 ({} ch, {} banks, {} row elems) — relayout through MvTrace::matrix instead",
                self.geometry.channels,
                self.geometry.banks,
                self.geometry.row_elems,
                system.config().channels,
                system.config().dram.banks,
                system.config().row_elems()
            )));
        }
        let row_bytes = self.geometry.row_elems * 2;
        let mut buf = vec![0u8; row_bytes];
        for ch in 0..self.geometry.channels {
            let Some(map) = self.geometry.mapping(ch)? else {
                continue;
            };
            let channel = &mut system.channels_mut()[ch];
            for li in 0..map.m() {
                for chunk in 0..map.num_chunks() {
                    let (bank, dram_row, _) = map.location(li, chunk * map.row_elems())?;
                    buf.fill(0);
                    if let Some(bytes) = self.rows.get(&(ch, bank, dram_row)) {
                        buf.copy_from_slice(bytes);
                    }
                    channel
                        .channel_mut()
                        .storage_mut()
                        .write_row(bank, dram_row, &buf)?;
                }
            }
        }
        system
            .plan_resident(self.geometry.m, self.geometry.n)
            .map_err(IsaError::from)
    }
}
