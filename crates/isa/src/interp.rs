//! The free-form timed interpreter behind `newton run`.
//!
//! Executes an arbitrary (not necessarily MV-shaped) `.aim` program on a
//! `NewtonSystem`, unrolling each instruction into the existing command
//! stream: MAC instructions issue real ACT / ganged-column-read /
//! precharge commands through the DRAM constraint engine, result reads
//! spend READRES slots, and conventional `WR`/`RD` requests ride the
//! controller's host queue. The **serialization rule** modeled in
//! `newton-serve` is honored literally: queued conventional requests
//! drain (timed, with refresh interposition) before the next AiM
//! instruction may issue.
//!
//! Register/storage deposits (`WR_GPR`, `WR_SBK`, `WR_GB`, `WR_BIAS`,
//! `RD_SBK`) are *untimed*, mirroring the API path where matrix
//! residency is not part of any measured experiment (see
//! `newton_core::layout`); only MAC/READRES/COPY/host traffic spends
//! cycles.
//!
//! Every readout appends a deterministic log line; golden traces under
//! `tests/traces/` pin these logs byte-for-byte.

use std::fmt::Write as _;

use newton_bf16::{slice, Bf16};
use newton_core::config::NewtonConfig;
use newton_core::controller::HostRequest;
use newton_core::system::NewtonSystem;
use newton_dram::timing::Cycle;

use crate::error::IsaError;
use crate::instr::{cfr, hex32, Instr, CFR_COUNT, GPR_BYTES, GPR_COUNT};
use crate::mv::GPR_ELEMS;
use crate::program::Program;

/// Outcome of interpreting one program.
#[derive(Debug, Clone)]
pub struct InterpRun {
    /// The deterministic readout log, one event per line.
    pub log: String,
    /// Final cycle cursor of every channel.
    pub end_cycles: Vec<Cycle>,
    /// AiM-class instructions executed.
    pub aim_ops: u64,
    /// Conventional host requests serviced.
    pub host_ops: u64,
}

/// Interprets `program` on a system derived from `base`: if the trace
/// writes `WR_CFR 2` (CHANNELS) before its first device instruction,
/// that channel count overrides `base.channels`, so checked-in traces
/// pin their own system size.
///
/// # Errors
///
/// Typed [`IsaError`]s for out-of-range operands; substrate errors from
/// the command stream. Never panics on malformed input.
pub fn interpret(program: &Program, base: NewtonConfig) -> Result<InterpRun, IsaError> {
    Interp::new(base).run(program)
}

struct Interp {
    base: NewtonConfig,
    system: Option<NewtonSystem>,
    /// Per-channel command cursor for directly issued commands.
    cursors: Vec<Cycle>,
    gprs: Vec<[u8; GPR_BYTES]>,
    cfrs: [u64; CFR_COUNT],
    /// Logical input-vector staging written by `WR_GB`; `MAC_ABK`'s `L`
    /// flag broadcasts the addressed chunk's slice into the physical
    /// global buffer (exactly what the API path's chunk broadcast does).
    staged: Vec<Bf16>,
    pending_hosts: bool,
    log: String,
    aim_ops: u64,
    host_ops: u64,
}

impl Interp {
    fn new(base: NewtonConfig) -> Interp {
        Interp {
            base,
            system: None,
            cursors: Vec::new(),
            gprs: vec![[0u8; GPR_BYTES]; GPR_COUNT],
            cfrs: [0; CFR_COUNT],
            staged: Vec::new(),
            pending_hosts: false,
            log: String::new(),
            aim_ops: 0,
            host_ops: 0,
        }
    }

    /// Builds the system on first use (CFR channel override applies).
    fn system(&mut self) -> Result<&mut NewtonSystem, IsaError> {
        if self.system.is_none() {
            let mut cfg = self.base.clone();
            let declared = self.cfrs[cfr::CHANNELS];
            if declared != 0 {
                if declared > 64 {
                    return Err(IsaError::Geometry(format!(
                        "CFR CHANNELS = {declared} must be in 1..=64"
                    )));
                }
                cfg.channels = declared as usize;
            }
            if cfg.dram.col_bytes() != GPR_BYTES {
                return Err(IsaError::Geometry(format!(
                    "ISA frontend requires {GPR_BYTES}-byte column IO, config has {}",
                    cfg.dram.col_bytes()
                )));
            }
            let system = NewtonSystem::new(cfg).map_err(IsaError::from)?;
            self.cursors = system.channels().iter().map(|c| c.now()).collect();
            self.system = Some(system);
        }
        Ok(self.system.as_mut().expect("just built"))
    }

    fn channels_of(&mut self, mask: u64) -> Result<Vec<usize>, IsaError> {
        let n = self.system()?.config().channels;
        if n < 64 && mask >> n != 0 {
            return Err(IsaError::ChannelMaskOutOfRange { mask, channels: n });
        }
        Ok((0..n.min(64)).filter(|c| mask >> c & 1 == 1).collect())
    }

    fn check_gpr(&self, gpr: usize) -> Result<(), IsaError> {
        if gpr >= GPR_COUNT {
            return Err(IsaError::GprOutOfRange {
                gpr,
                count: GPR_COUNT,
            });
        }
        Ok(())
    }

    /// Validates a (bank, row, col) triple against the device geometry.
    fn check_addr(
        &mut self,
        bank: usize,
        row: Option<usize>,
        col: Option<usize>,
    ) -> Result<(), IsaError> {
        let cfg = self.system()?.config().dram.clone();
        if bank >= cfg.banks {
            return Err(IsaError::BankOutOfRange {
                bank,
                banks: cfg.banks,
            });
        }
        if let Some(row) = row {
            if row >= cfg.rows_per_bank {
                return Err(IsaError::RowOutOfRange {
                    row,
                    rows: cfg.rows_per_bank,
                });
            }
        }
        if let Some(col) = col {
            if col >= cfg.cols_per_row {
                return Err(IsaError::ColOutOfRange {
                    col,
                    cols: cfg.cols_per_row,
                });
            }
        }
        Ok(())
    }

    /// The serialization fence: every queued conventional request drains
    /// (timed) before an AiM instruction may issue.
    fn fence(&mut self) -> Result<(), IsaError> {
        if !self.pending_hosts {
            return Ok(());
        }
        self.pending_hosts = false;
        let system = self.system.as_mut().expect("pending implies system");
        for ch in 0..system.config().channels {
            let nc = &mut system.channels_mut()[ch];
            nc.advance_to(self.cursors[ch]);
            nc.service_host_requests()?;
            for resp in nc.take_host_responses() {
                self.host_ops += 1;
                let kind = if resp.request.write.is_some() {
                    "WR"
                } else {
                    "RD"
                };
                let mut line = format!(
                    "HOST ch={ch} {kind} bank={} row={} col={} cycle={}",
                    resp.request.bank, resp.request.row, resp.request.col, resp.cycle
                );
                if !resp.data.is_empty() {
                    let mut fixed = [0u8; GPR_BYTES];
                    let n = resp.data.len().min(GPR_BYTES);
                    fixed[..n].copy_from_slice(&resp.data[..n]);
                    let _ = write!(line, " data={}", hex32(&fixed));
                }
                line.push('\n');
                self.log.push_str(&line);
            }
            self.cursors[ch] = self.cursors[ch].max(nc.now());
        }
        Ok(())
    }

    fn gpr_elems(&self, gpr: usize) -> Vec<Bf16> {
        slice::unpack(&self.gprs[gpr]).expect("GPR payload is 32 aligned bytes")
    }

    fn log_readout(&mut self, op: &str, ch: usize, gpr: usize, values: &[Bf16]) {
        let floats: Vec<f32> = values.iter().map(|v| v.to_f32()).collect();
        let mut fixed = [0u8; GPR_BYTES];
        slice::pack_into(&values[..GPR_ELEMS.min(values.len())], &mut fixed);
        let _ = writeln!(
            self.log,
            "{op} ch={ch} gpr={gpr} data={} values={floats:?}",
            hex32(&fixed)
        );
    }

    fn run(mut self, program: &Program) -> Result<InterpRun, IsaError> {
        for instr in &program.instrs {
            if instr.is_aim() {
                self.fence()?;
                self.aim_ops += 1;
            }
            self.step(instr)?;
            if matches!(instr, Instr::Eoc) {
                break;
            }
        }
        self.fence()?;
        let end_cycles = match &self.system {
            Some(system) => system
                .channels()
                .iter()
                .zip(&self.cursors)
                .map(|(c, cur)| c.now().max(*cur))
                .collect(),
            None => Vec::new(),
        };
        let _ = writeln!(
            self.log,
            "EOC cycles={end_cycles:?} aim_ops={} host_ops={}",
            self.aim_ops, self.host_ops
        );
        Ok(InterpRun {
            log: self.log,
            end_cycles,
            aim_ops: self.aim_ops,
            host_ops: self.host_ops,
        })
    }

    #[allow(clippy::too_many_lines)]
    fn step(&mut self, instr: &Instr) -> Result<(), IsaError> {
        match instr {
            Instr::WrCfr { idx, value } => {
                if *idx >= CFR_COUNT {
                    return Err(IsaError::CfrOutOfRange {
                        idx: *idx,
                        count: CFR_COUNT,
                    });
                }
                if self.system.is_some() && *idx == cfr::CHANNELS {
                    return Err(IsaError::Geometry(
                        "WR_CFR CHANNELS after the first device instruction".into(),
                    ));
                }
                self.cfrs[*idx] = *value;
            }
            Instr::WrGpr { gpr, data } => {
                self.check_gpr(*gpr)?;
                self.gprs[*gpr] = *data;
            }
            Instr::WrSbk {
                gpr,
                channels,
                bank,
                row,
                col,
            } => {
                self.check_gpr(*gpr)?;
                self.check_addr(*bank, Some(*row), Some(*col))?;
                let data = self.gprs[*gpr];
                for ch in self.channels_of(*channels)? {
                    let system = self.system.as_mut().expect("built");
                    system.channels_mut()[ch]
                        .channel_mut()
                        .storage_mut()
                        .write_column(*bank, *row, *col, &data)?;
                }
            }
            Instr::WrAbk {
                gpr,
                channels,
                row,
                col,
            } => {
                self.check_gpr(*gpr)?;
                self.check_addr(0, Some(*row), Some(*col))?;
                let data = self.gprs[*gpr];
                let banks = self.system()?.config().dram.banks;
                for ch in self.channels_of(*channels)? {
                    let system = self.system.as_mut().expect("built");
                    let storage = system.channels_mut()[ch].channel_mut().storage_mut();
                    for bank in 0..banks {
                        storage.write_column(bank, *row, *col, &data)?;
                    }
                }
            }
            Instr::WrGb {
                gpr,
                channels,
                offset,
            } => {
                self.check_gpr(*gpr)?;
                let subchunks = self.system()?.config().row_elems() / GPR_ELEMS;
                // Staging may extend past one physical GB window when the
                // trace declares a wider logical vector (CFR N); the MAC
                // `L` flag later broadcasts the right slice per chunk.
                let declared_n = usize::try_from(self.cfrs[cfr::N]).unwrap_or(0);
                let bound = subchunks.max(declared_n.div_ceil(GPR_ELEMS));
                if *offset >= bound {
                    return Err(IsaError::GbOffsetOutOfRange {
                        offset: *offset,
                        subchunks: bound,
                    });
                }
                let elems = self.gpr_elems(*gpr);
                if self.staged.len() < (*offset + 1) * GPR_ELEMS {
                    self.staged.resize((*offset + 1) * GPR_ELEMS, Bf16::ZERO);
                }
                self.staged[*offset * GPR_ELEMS..(*offset + 1) * GPR_ELEMS].copy_from_slice(&elems);
                if *offset < subchunks {
                    for ch in self.channels_of(*channels)? {
                        let system = self.system.as_mut().expect("built");
                        system.channels_mut()[ch]
                            .device_mut()
                            .global_buffer_mut()
                            .write_subchunk(*offset, &elems)?;
                    }
                }
            }
            Instr::WrBias { gpr, channels } => {
                self.check_gpr(*gpr)?;
                let banks = self.system()?.config().dram.banks;
                let elems = self.gpr_elems(*gpr);
                for ch in self.channels_of(*channels)? {
                    let system = self.system.as_mut().expect("built");
                    let device = system.channels_mut()[ch].device_mut();
                    for (bank, &bias) in elems.iter().take(banks).enumerate() {
                        device.preload_bias(bank, 0, bias);
                    }
                }
            }
            Instr::MacSbk {
                channels,
                bank,
                row,
                n_sub,
            } => {
                self.check_addr(*bank, Some(*row), None)?;
                self.check_subchunks(*n_sub)?;
                for ch in self.channels_of(*channels)? {
                    self.mac_banks(ch, &[*bank], *row, 0, 0, *n_sub, false, false)?;
                }
            }
            Instr::MacAbk {
                channels,
                row,
                chunk,
                latch,
                n_sub,
                load_chunk,
                reset_latch,
            } => {
                self.check_addr(0, Some(*row), None)?;
                self.check_subchunks(*n_sub)?;
                let cfg = self.system()?.config();
                let banks: Vec<usize> = (0..cfg.dram.banks).collect();
                let latches = cfg.result_latches_per_bank;
                if *latch >= latches {
                    return Err(IsaError::LatchOutOfRange {
                        latch: *latch,
                        latches,
                    });
                }
                for ch in self.channels_of(*channels)? {
                    self.mac_banks(
                        ch,
                        &banks,
                        *row,
                        *chunk,
                        *latch,
                        *n_sub,
                        *load_chunk,
                        *reset_latch,
                    )?;
                }
            }
            Instr::RdMac {
                gpr,
                channels,
                latch,
            }
            | Instr::RdAf {
                gpr,
                channels,
                latch,
            } => {
                let through_lut = matches!(instr, Instr::RdAf { .. });
                self.check_gpr(*gpr)?;
                let cfg = self.system()?.config();
                let banks = cfg.dram.banks;
                let latches = cfg.result_latches_per_bank;
                if *latch >= latches {
                    return Err(IsaError::LatchOutOfRange {
                        latch: *latch,
                        latches,
                    });
                }
                let targets = self.channels_of(*channels)?;
                let mut first = true;
                for ch in targets {
                    let cur = self.cursors[ch];
                    let system = self.system.as_mut().expect("built");
                    let nc = &mut system.channels_mut()[ch];
                    let at = nc.channel().earliest_result_read(cur);
                    let end = nc.channel_mut().issue_result_read(at, banks * 2)?;
                    self.cursors[ch] = end;
                    nc.advance_to(end);
                    let values: Vec<Bf16> = (0..banks)
                        .map(|b| nc.device().read_result(b, *latch, through_lut))
                        .collect();
                    if first {
                        let mut fixed = [0u8; GPR_BYTES];
                        slice::pack_into(&values[..GPR_ELEMS.min(values.len())], &mut fixed);
                        self.gprs[*gpr] = fixed;
                        first = false;
                    }
                    let op = if through_lut { "RD_AF" } else { "RD_MAC" };
                    self.log_readout(op, ch, *gpr, &values);
                }
            }
            Instr::RdSbk {
                gpr,
                channels,
                bank,
                row,
                col,
            } => {
                self.check_gpr(*gpr)?;
                self.check_addr(*bank, Some(*row), Some(*col))?;
                let targets = self.channels_of(*channels)?;
                let mut first = true;
                for ch in targets {
                    let system = self.system.as_mut().expect("built");
                    let bytes = system.channels_mut()[ch]
                        .channel()
                        .storage()
                        .column(*bank, *row, *col)?
                        .to_vec();
                    let values = slice::unpack(&bytes)
                        .map_err(|e| IsaError::Geometry(format!("stored column: {e:?}")))?;
                    if first {
                        let mut fixed = [0u8; GPR_BYTES];
                        let n = bytes.len().min(GPR_BYTES);
                        fixed[..n].copy_from_slice(&bytes[..n]);
                        self.gprs[*gpr] = fixed;
                        first = false;
                    }
                    self.log_readout("RD_SBK", ch, *gpr, &values);
                }
            }
            Instr::CopyBkGb {
                channels,
                bank,
                row,
                offset,
                n_sub,
            } => {
                self.check_addr(*bank, Some(*row), None)?;
                self.check_copy_span(*offset, *n_sub)?;
                for ch in self.channels_of(*channels)? {
                    self.copy_bk_gb(ch, *bank, *row, *offset, *n_sub)?;
                }
            }
            Instr::CopyGbBk {
                channels,
                bank,
                row,
                offset,
                n_sub,
            } => {
                self.check_addr(*bank, Some(*row), None)?;
                self.check_copy_span(*offset, *n_sub)?;
                for ch in self.channels_of(*channels)? {
                    self.copy_gb_bk(ch, *bank, *row, *offset, *n_sub)?;
                }
            }
            Instr::WrHost {
                gpr,
                channels,
                bank,
                row,
                col,
            } => {
                self.check_gpr(*gpr)?;
                self.check_addr(*bank, Some(*row), Some(*col))?;
                let data = self.gprs[*gpr].to_vec();
                for ch in self.channels_of(*channels)? {
                    let system = self.system.as_mut().expect("built");
                    system.channels_mut()[ch].enqueue_host_request(HostRequest {
                        bank: *bank,
                        row: *row,
                        col: *col,
                        write: Some(data.clone()),
                    });
                }
                self.pending_hosts = true;
            }
            Instr::RdHost {
                channels,
                bank,
                row,
                col,
            } => {
                self.check_addr(*bank, Some(*row), Some(*col))?;
                for ch in self.channels_of(*channels)? {
                    let system = self.system.as_mut().expect("built");
                    system.channels_mut()[ch].enqueue_host_request(HostRequest {
                        bank: *bank,
                        row: *row,
                        col: *col,
                        write: None,
                    });
                }
                self.pending_hosts = true;
            }
            Instr::Eoc => {}
        }
        Ok(())
    }

    fn check_subchunks(&mut self, n_sub: usize) -> Result<(), IsaError> {
        let subchunks = self.system()?.config().row_elems() / GPR_ELEMS;
        if n_sub == 0 || n_sub > subchunks {
            return Err(IsaError::GbOffsetOutOfRange {
                offset: n_sub,
                subchunks,
            });
        }
        Ok(())
    }

    fn check_copy_span(&mut self, offset: usize, n_sub: usize) -> Result<(), IsaError> {
        let subchunks = self.system()?.config().row_elems() / GPR_ELEMS;
        if n_sub == 0 || offset + n_sub > subchunks {
            return Err(IsaError::GbOffsetOutOfRange {
                offset: offset + n_sub,
                subchunks,
            });
        }
        Ok(())
    }

    /// One timed COMP row-set over `banks`: activate (ganged in 4-bank
    /// clusters when the config gangs activations), stream `n_sub`
    /// ganged internal column reads, precharge — then fold the
    /// functional MACs against the global buffer. The `L` flag first
    /// broadcasts chunk `chunk` of the staged vector into the GB.
    #[allow(clippy::too_many_arguments)]
    fn mac_banks(
        &mut self,
        ch: usize,
        banks: &[usize],
        row: usize,
        chunk: usize,
        latch: usize,
        n_sub: usize,
        load_chunk: bool,
        reset_latch: bool,
    ) -> Result<(), IsaError> {
        let row_elems = self.system()?.config().row_elems();
        let system = self.system.as_mut().expect("built");
        let ganged_act = system.config().opts.ganged_act && banks.len() > 1;
        let nc = &mut system.channels_mut()[ch];
        let mut cur = self.cursors[ch];

        // Functional operands first (storage reads don't touch timing).
        let mut rows: Vec<Vec<u8>> = Vec::with_capacity(banks.len());
        for &bank in banks {
            rows.push(nc.channel().storage().row(bank, row)?.to_vec());
        }

        let timing = *nc.channel().timing();
        let channel = nc.channel_mut();
        if load_chunk {
            for _ in 0..n_sub {
                let t = channel.earliest_broadcast_write(cur);
                channel.issue_broadcast_write(t, GPR_BYTES)?;
                cur = t;
            }
        }
        if ganged_act {
            for cluster in banks.chunks(4) {
                let t = channel.earliest_ganged_activate(cluster).max(cur);
                let pairs: Vec<(usize, usize)> = cluster.iter().map(|&b| (b, row)).collect();
                channel.issue_ganged_activate(t, &pairs)?;
                cur = t;
            }
        } else {
            for &bank in banks {
                let t = channel.earliest_activate(bank).max(cur);
                channel.issue_activate(t, bank, row)?;
                cur = t;
            }
        }
        let mut last_col = cur;
        for sub in 0..n_sub {
            let pairs: Vec<(usize, usize)> = banks.iter().map(|&b| (b, sub)).collect();
            let t = channel.earliest_ganged_column_read(cur, banks);
            channel.issue_ganged_column_read_internal(t, &pairs, |_, _| {})?;
            cur = t;
            last_col = t;
        }
        let p = channel
            .earliest_precharge_all()
            .max(last_col + timing.t_rtp);
        channel.issue_precharge_all(p)?;
        cur = p + timing.t_rp;
        self.cursors[ch] = cur;
        nc.advance_to(cur);

        // Functional fold: each bank multiply-accumulates its row's
        // sub-chunks against the global buffer into `latch`. The `L`
        // flag first broadcasts the chunk's staged vector slice.
        let device = nc.device_mut();
        if load_chunk && !self.staged.is_empty() {
            for sub in 0..n_sub {
                let mut inputs = [Bf16::ZERO; GPR_ELEMS];
                let start = chunk * row_elems + sub * GPR_ELEMS;
                for (k, slot) in inputs.iter_mut().enumerate() {
                    if let Some(v) = self.staged.get(start + k) {
                        *slot = *v;
                    }
                }
                device.global_buffer_mut().write_subchunk(sub, &inputs)?;
            }
        }
        for (&bank, bytes) in banks.iter().zip(&rows) {
            if reset_latch {
                device.reset_latch(bank, latch);
            }
            for sub in 0..n_sub {
                device.comp_bank(
                    bank,
                    latch,
                    sub,
                    &bytes[sub * GPR_BYTES..(sub + 1) * GPR_BYTES],
                );
            }
        }
        Ok(())
    }

    /// Timed bank-row → global-buffer copy (internal column reads).
    fn copy_bk_gb(
        &mut self,
        ch: usize,
        bank: usize,
        row: usize,
        offset: usize,
        n_sub: usize,
    ) -> Result<(), IsaError> {
        let system = self.system.as_mut().expect("built");
        let nc = &mut system.channels_mut()[ch];
        let mut cur = self.cursors[ch];
        let bytes = nc.channel().storage().row(bank, row)?.to_vec();
        let timing = *nc.channel().timing();
        let channel = nc.channel_mut();
        let t = channel.earliest_activate(bank).max(cur);
        channel.issue_activate(t, bank, row)?;
        cur = t;
        for sub in 0..n_sub {
            let t = channel.earliest_ganged_column_read(cur, &[bank]);
            channel.issue_ganged_column_read_internal(t, &[(bank, sub)], |_, _| {})?;
            cur = t;
        }
        let p = channel.earliest_precharge(bank).max(cur + timing.t_rtp);
        channel.issue_precharge(p, bank)?;
        cur = p + timing.t_rp;
        self.cursors[ch] = cur;
        nc.advance_to(cur);
        let device = nc.device_mut();
        for sub in 0..n_sub {
            let elems = slice::unpack(&bytes[sub * GPR_BYTES..(sub + 1) * GPR_BYTES])
                .map_err(|e| IsaError::Geometry(format!("stored row bytes: {e:?}")))?;
            device
                .global_buffer_mut()
                .write_subchunk(offset + sub, &elems)?;
        }
        Ok(())
    }

    /// Timed global-buffer → bank-row copy (external column writes).
    fn copy_gb_bk(
        &mut self,
        ch: usize,
        bank: usize,
        row: usize,
        offset: usize,
        n_sub: usize,
    ) -> Result<(), IsaError> {
        let system = self.system.as_mut().expect("built");
        let nc = &mut system.channels_mut()[ch];
        let mut cur = self.cursors[ch];
        let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(n_sub);
        for sub in 0..n_sub {
            payloads.push(slice::pack(
                nc.device().global_buffer().subchunk(offset + sub),
            ));
        }
        let timing = *nc.channel().timing();
        let channel = nc.channel_mut();
        let t = channel.earliest_activate(bank).max(cur);
        channel.issue_activate(t, bank, row)?;
        cur = t;
        for (sub, data) in payloads.iter().enumerate() {
            let t = channel.earliest_column_read(cur, bank);
            channel.issue_column_write_external(t, bank, sub, data)?;
            cur = t;
        }
        let p = channel.earliest_precharge(bank).max(cur + timing.t_wr);
        channel.issue_precharge(p, bank)?;
        cur = p + timing.t_rp;
        self.cursors[ch] = cur;
        nc.advance_to(cur);
        Ok(())
    }
}
