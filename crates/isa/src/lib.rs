//! Trace-driven AiM ISA frontend for the Newton reproduction.
//!
//! Every workload so far drove the controller through Rust APIs. This
//! crate speaks the *instruction set* instead: the ISR layer of SK
//! hynix's AiM simulator (the productized descendant of Newton) — host
//! instructions like `WR_SBK`, `WR_ABK`, `WR_GB`, `WR_BIAS`, `RD_MAC`,
//! `RD_AF` carrying 256-bit GPR payloads, channel masks, and CFR
//! configuration writes — serialized as line-oriented `.aim` text
//! traces.
//!
//! Module map:
//!
//! * [`instr`]: the typed [`Instr`](instr::Instr) enum, its canonical
//!   text rendering, and the lossless line parser.
//! * [`program`]: whole-trace parsing ([`Program`](program::Program))
//!   and the CFR-declared trace geometry.
//! * [`mv`]: recognition of a lowered matrix–vector trace
//!   ([`MvTrace`](mv::MvTrace)) and its *physical* replay into channel
//!   storage — the path that is byte-identical to the API-driven
//!   `NewtonSystem::run_mv`.
//! * [`interp`]: the free-form timed interpreter (`newton run`): every
//!   instruction unrolls into `newton-core`/`newton-dram` commands,
//!   honoring the AiM-vs-conventional serialization rule modeled in
//!   `newton-serve` (queued conventional requests drain before the next
//!   AiM instruction may issue).
//! * [`generate`]: the trace-generation library — lowers Table II
//!   workloads (seeded by `CounterRng`) to `.aim` traces and builds
//!   random well-formed programs for the fuzzer.
//! * [`backend`]: the [`Backend`](backend::Backend) trait plus four
//!   implementations — Newton-HBM2E, GDDR6/AiM, Ideal Non-PIM, and the
//!   Titan-V-like GPU — so one trace executes on every device model.
//! * [`harness`]: the comparison harness emitting versioned
//!   [`MetricsSnapshot`](newton_trace::MetricsSnapshot)s.
//!
//! # Conformance methodology
//!
//! Matrix residency is untimed in the API path (`load_matrix` writes
//! storage; only the drain spends cycles), so a trace whose `WR_SBK`
//! stream deposits byte-identical rows, followed by
//! `NewtonSystem::plan_resident` + `run_resident`, executes the *same*
//! command stream as `run_mv` — outputs, cycles, `AimStats`, channel
//! summaries, and telemetry are all byte-identical, for both timing
//! engines and every host-thread width. The differential suite in
//! `crates/bench/tests/determinism.rs` proves exactly that on the
//! Table II shapes.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod backend;
pub mod error;
pub mod generate;
pub mod harness;
pub mod instr;
pub mod interp;
pub mod mv;
pub mod program;

/// Alias preserving the spelling used in the tracking issue.
pub use generate as genarate;

pub use error::IsaError;
pub use instr::Instr;
pub use program::{Program, TraceGeometry};
