//! The multi-backend execution surface for lowered MV traces.
//!
//! A [`Backend`] consumes one recognized [`MvTrace`] and produces a
//! [`BackendRun`]. Three families ship:
//!
//! * [`NewtonBackend`] — the cycle-accurate simulator. When the trace's
//!   declared geometry matches the backend's configuration, the stored
//!   bytes are replayed **physically** (byte-identical to the API path);
//!   otherwise the recovered logical matrix is re-laid-out for the
//!   backend's own geometry (e.g. replaying an HBM2E trace on GDDR6).
//! * [`IdealBackend`] — the Ideal Non-PIM roofline (analytic timing,
//!   host-computed f32 reference outputs).
//! * [`GpuBackend`] — the calibrated Titan V model (analytic timing,
//!   host-computed outputs).

use newton_baselines::{IdealNonPim, TitanVModel};
use newton_core::config::NewtonConfig;
use newton_core::controller::AimStats;
use newton_core::system::NewtonSystem;
use newton_dram::timing::Cycle;
use newton_workloads::MvShape;

use crate::error::IsaError;
use crate::mv::MvTrace;

/// One backend's execution of a trace.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// Which backend produced this run.
    pub backend: String,
    /// The output vector (raw accumulator sums, host precision).
    pub outputs: Vec<f32>,
    /// Modeled wall-clock time in nanoseconds.
    pub elapsed_ns: f64,
    /// End-to-end cycles (cycle-accurate backends only).
    pub cycles: Option<Cycle>,
    /// AiM command counters (cycle-accurate backends only).
    pub stats: Option<AimStats>,
}

/// Anything that can execute a recognized MV trace.
pub trait Backend {
    /// Stable display name (used in snapshots and reports).
    fn name(&self) -> &str;

    /// Executes the trace.
    ///
    /// # Errors
    ///
    /// Backend-specific shape or substrate errors.
    fn run(&mut self, trace: &MvTrace) -> Result<BackendRun, IsaError>;
}

impl std::fmt::Debug for dyn Backend + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Backend({})", self.name())
    }
}

/// The cycle-accurate Newton simulator as a trace backend.
#[derive(Debug)]
pub struct NewtonBackend {
    name: String,
    config: NewtonConfig,
}

impl NewtonBackend {
    /// The paper-default Newton-on-HBM2E system.
    #[must_use]
    pub fn hbm2e() -> NewtonBackend {
        NewtonBackend::with_config("newton-hbm2e", NewtonConfig::paper_default())
    }

    /// Newton mapped onto a GDDR6-like device (16 channels, 2 KiB rows).
    #[must_use]
    pub fn gddr6() -> NewtonBackend {
        NewtonBackend::with_config("newton-gddr6", NewtonConfig::gddr6_aim())
    }

    /// Any configuration under any display name.
    #[must_use]
    pub fn with_config(name: &str, config: NewtonConfig) -> NewtonBackend {
        NewtonBackend {
            name: name.to_string(),
            config,
        }
    }
}

impl Backend for NewtonBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, trace: &MvTrace) -> Result<BackendRun, IsaError> {
        let mut system = NewtonSystem::new(self.config.clone())?;
        let run = if trace.geometry.matches(&self.config) {
            // Same geometry: replay the trace's stored bytes physically.
            let loaded = trace.apply_physical(&mut system)?;
            system.run_resident(&loaded, &trace.vector)?
        } else {
            // Foreign geometry: re-lay-out the recovered logical matrix.
            let loaded = system.load_matrix(&trace.matrix, trace.geometry.m, trace.geometry.n)?;
            system.run_resident(&loaded, &trace.vector)?
        };
        Ok(BackendRun {
            backend: self.name.clone(),
            outputs: run.output,
            elapsed_ns: run.elapsed_ns,
            cycles: Some(run.cycles),
            stats: Some(run.stats),
        })
    }
}

/// Host-side f32 reference product (what the analytic backends emit).
fn host_outputs(trace: &MvTrace) -> Vec<f32> {
    let (m, n) = (trace.geometry.m, trace.geometry.n);
    let vector: Vec<f32> = trace.vector.iter().map(|v| v.to_f32()).collect();
    (0..m)
        .map(|i| {
            trace.matrix[i * n..(i + 1) * n]
                .iter()
                .zip(&vector)
                .map(|(w, x)| w.to_f32() * x)
                .sum()
        })
        .collect()
}

/// The Ideal Non-PIM roofline as a trace backend.
#[derive(Debug)]
pub struct IdealBackend {
    model: IdealNonPim,
}

impl IdealBackend {
    /// The paper-default roofline.
    #[must_use]
    pub fn paper_default() -> IdealBackend {
        IdealBackend {
            model: IdealNonPim::paper_default(),
        }
    }
}

impl Backend for IdealBackend {
    fn name(&self) -> &str {
        "ideal-non-pim"
    }

    fn run(&mut self, trace: &MvTrace) -> Result<BackendRun, IsaError> {
        let outcome = self
            .model
            .run_layer(trace.geometry.m, trace.geometry.n)
            .map_err(IsaError::from)?;
        Ok(BackendRun {
            backend: self.name().to_string(),
            outputs: host_outputs(trace),
            elapsed_ns: outcome.time_ns,
            cycles: None,
            stats: None,
        })
    }
}

/// The calibrated Titan V GPU model as a trace backend.
#[derive(Debug)]
pub struct GpuBackend {
    model: TitanVModel,
}

impl GpuBackend {
    /// The published-calibration model.
    #[must_use]
    pub fn titan_v() -> GpuBackend {
        GpuBackend {
            model: TitanVModel::new(),
        }
    }
}

impl Backend for GpuBackend {
    fn name(&self) -> &str {
        "gpu-titan-v"
    }

    fn run(&mut self, trace: &MvTrace) -> Result<BackendRun, IsaError> {
        let shape = MvShape::new(trace.geometry.m, trace.geometry.n);
        Ok(BackendRun {
            backend: self.name().to_string(),
            outputs: host_outputs(trace),
            elapsed_ns: self.model.mv_time_ns(shape, 1),
            cycles: None,
            stats: None,
        })
    }
}

/// The default comparison fleet: Newton-HBM2E, Newton-GDDR6, the Ideal
/// Non-PIM roofline, and the Titan V model.
#[must_use]
pub fn default_backends() -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(NewtonBackend::hbm2e()),
        Box::new(NewtonBackend::gddr6()),
        Box::new(IdealBackend::paper_default()),
        Box::new(GpuBackend::titan_v()),
    ]
}
