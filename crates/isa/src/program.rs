//! Whole-trace parsing and the CFR-declared geometry header.
//!
//! An `.aim` file is line-oriented text: `#` starts a comment, blank
//! lines are ignored, and the first effective line must be the magic
//! `AIM 1`. Everything after is one instruction per line
//! (see [`crate::instr`]).

use std::fmt;
use std::str::FromStr;

use newton_core::config::NewtonConfig;
use newton_core::layout::MatrixMapping;
use newton_core::tiling::ScheduleKind;

use crate::error::IsaError;
use crate::instr::{cfr, Instr, CFR_COUNT};

/// Trace format magic and version.
pub const MAGIC: &str = "AIM 1";

/// A parsed `.aim` program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// The instruction stream, in source order.
    pub instrs: Vec<Instr>,
}

impl Program {
    /// Parses trace text.
    ///
    /// # Errors
    ///
    /// [`IsaError::Parse`] with the 1-based source line of the first
    /// malformed line (or a missing/wrong magic header).
    pub fn parse(text: &str) -> Result<Program, IsaError> {
        let mut instrs = Vec::new();
        let mut saw_magic = false;
        for (i, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                Some(at) => &raw[..at],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if !saw_magic {
                if line != MAGIC {
                    return Err(IsaError::Parse {
                        line: i + 1,
                        msg: format!("expected header {MAGIC:?}, got {line:?}"),
                    });
                }
                saw_magic = true;
                continue;
            }
            let instr =
                Instr::parse_line(line).map_err(|msg| IsaError::Parse { line: i + 1, msg })?;
            instrs.push(instr);
        }
        if !saw_magic {
            return Err(IsaError::Parse {
                line: 1,
                msg: format!("empty trace: expected header {MAGIC:?}"),
            });
        }
        Ok(Program { instrs })
    }

    /// Renders the program back to canonical trace text (parse ∘ render
    /// is the identity; property-tested by the fuzzer).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(MAGIC);
        out.push('\n');
        for i in &self.instrs {
            out.push_str(&i.to_string());
            out.push('\n');
        }
        out
    }

    /// The geometry declared by the leading `WR_CFR` header, if all six
    /// geometry registers were written (later writes win, matching CFR
    /// register semantics).
    ///
    /// # Errors
    ///
    /// [`IsaError::Geometry`] when a required register is missing or
    /// holds an unrepresentable value.
    pub fn geometry(&self) -> Result<TraceGeometry, IsaError> {
        let mut cfrs = [None::<u64>; CFR_COUNT];
        for i in &self.instrs {
            if let Instr::WrCfr { idx, value } = i {
                if *idx >= CFR_COUNT {
                    return Err(IsaError::CfrOutOfRange {
                        idx: *idx,
                        count: CFR_COUNT,
                    });
                }
                cfrs[*idx] = Some(*value);
            }
        }
        let need = |idx: usize, name: &str| -> Result<usize, IsaError> {
            let v = cfrs[idx]
                .ok_or_else(|| IsaError::Geometry(format!("CFR {idx} ({name}) never written")))?;
            usize::try_from(v)
                .map_err(|_| IsaError::Geometry(format!("CFR {idx} ({name}) = {v} overflows")))
        };
        let schedule = match need(cfr::SCHEDULE, "SCHEDULE")? {
            0 => ScheduleKind::InterleavedFullReuse,
            1 => ScheduleKind::NoReuse,
            2 => ScheduleKind::FourLatch,
            other => {
                return Err(IsaError::Geometry(format!(
                    "CFR {} (SCHEDULE) = {other} is not 0/1/2",
                    cfr::SCHEDULE
                )))
            }
        };
        let g = TraceGeometry {
            m: need(cfr::M, "M")?,
            n: need(cfr::N, "N")?,
            channels: need(cfr::CHANNELS, "CHANNELS")?,
            banks: need(cfr::BANKS, "BANKS")?,
            row_elems: need(cfr::ROW_ELEMS, "ROW_ELEMS")?,
            schedule,
        };
        g.validate()?;
        Ok(g)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl FromStr for Program {
    type Err = IsaError;

    fn from_str(s: &str) -> Result<Program, IsaError> {
        Program::parse(s)
    }
}

/// The device geometry a lowered trace was generated against, declared
/// through the CFR header so any backend can reconstruct the logical
/// workload (and the origin backend can replay the physical bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceGeometry {
    /// Matrix rows.
    pub m: usize,
    /// Matrix columns.
    pub n: usize,
    /// Channels of the origin device.
    pub channels: usize,
    /// Banks per channel.
    pub banks: usize,
    /// Elements per DRAM row.
    pub row_elems: usize,
    /// The tiled traversal the trace's MAC stream encodes.
    pub schedule: ScheduleKind,
}

impl TraceGeometry {
    /// The geometry a configuration implies for an `m x n` workload.
    #[must_use]
    pub fn from_config(cfg: &NewtonConfig, m: usize, n: usize) -> TraceGeometry {
        TraceGeometry {
            m,
            n,
            channels: cfg.channels,
            banks: cfg.dram.banks,
            row_elems: cfg.row_elems(),
            schedule: config_schedule_kind(cfg),
        }
    }

    /// The CFR header encoding this geometry (render these first).
    #[must_use]
    pub fn header(&self) -> Vec<Instr> {
        let sched = match self.schedule {
            ScheduleKind::InterleavedFullReuse => 0,
            ScheduleKind::NoReuse => 1,
            ScheduleKind::FourLatch => 2,
        };
        [
            (cfr::M, self.m as u64),
            (cfr::N, self.n as u64),
            (cfr::CHANNELS, self.channels as u64),
            (cfr::BANKS, self.banks as u64),
            (cfr::ROW_ELEMS, self.row_elems as u64),
            (cfr::SCHEDULE, sched),
        ]
        .into_iter()
        .map(|(idx, value)| Instr::WrCfr { idx, value })
        .collect()
    }

    /// Whether `cfg` has this exact device geometry (the precondition
    /// for physical byte replay rather than relayout).
    #[must_use]
    pub fn matches(&self, cfg: &NewtonConfig) -> bool {
        self.channels == cfg.channels
            && self.banks == cfg.dram.banks
            && self.row_elems == cfg.row_elems()
            && self.schedule == config_schedule_kind(cfg)
    }

    /// Matrix rows assigned to `channel` (round-robin, exactly as
    /// `NewtonSystem` distributes them).
    #[must_use]
    pub fn channel_rows(&self, channel: usize) -> usize {
        self.m / self.channels + usize::from(self.m % self.channels > channel)
    }

    /// The channel-local matrix mapping at base row 0 (`None` for idle
    /// trailing channels of a short matrix) — bit-compatible with the
    /// mapping `NewtonSystem` builds for the same geometry.
    ///
    /// # Errors
    ///
    /// Shape errors from the layout layer.
    pub fn mapping(&self, channel: usize) -> Result<Option<MatrixMapping>, IsaError> {
        let local_m = self.channel_rows(channel);
        if local_m == 0 {
            return Ok(None);
        }
        let bank_map: Vec<usize> = (0..self.banks).collect();
        MatrixMapping::with_bank_map(
            self.schedule.layout(),
            local_m,
            self.n,
            bank_map,
            self.row_elems,
            0,
        )
        .map(Some)
        .map_err(IsaError::from)
    }

    fn validate(&self) -> Result<(), IsaError> {
        if self.m == 0 || self.n == 0 {
            return Err(IsaError::Geometry("M and N must be positive".into()));
        }
        if self.channels == 0 || self.channels > 64 {
            return Err(IsaError::Geometry(format!(
                "CHANNELS = {} must be in 1..=64 (channel masks are 64-bit)",
                self.channels
            )));
        }
        if self.banks == 0 {
            return Err(IsaError::Geometry("BANKS must be positive".into()));
        }
        if self.row_elems == 0 || !self.row_elems.is_multiple_of(16) {
            return Err(IsaError::Geometry(format!(
                "ROW_ELEMS = {} must be a positive multiple of 16",
                self.row_elems
            )));
        }
        Ok(())
    }
}

/// The schedule kind a configuration implies (mirrors
/// `NewtonSystem::schedule_kind`, usable without constructing a system).
#[must_use]
pub fn config_schedule_kind(cfg: &NewtonConfig) -> ScheduleKind {
    if cfg.result_latches_per_bank == 4 {
        ScheduleKind::FourLatch
    } else if cfg.opts.interleaved_reuse {
        ScheduleKind::InterleavedFullReuse
    } else {
        ScheduleKind::NoReuse
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_requires_magic() {
        assert!(matches!(
            Program::parse("WR_CFR 0 1\n"),
            Err(IsaError::Parse { line: 1, .. })
        ));
        assert!(Program::parse("# comment\nAIM 1\nEOC\n").is_ok());
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "AIM 1\nWR_CFR 0 8\nBOGUS\n";
        match Program::parse(text) {
            Err(IsaError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn geometry_round_trips_through_header() {
        let cfg = NewtonConfig::paper_default();
        let g = TraceGeometry::from_config(&cfg, 96, 1024);
        let mut p = Program::default();
        p.instrs.extend(g.header());
        p.instrs.push(Instr::Eoc);
        assert_eq!(p.geometry().unwrap(), g);
        assert!(g.matches(&cfg));
        // Round-robin row split matches the system's distribution.
        let total: usize = (0..g.channels).map(|c| g.channel_rows(c)).sum();
        assert_eq!(total, g.m);
    }

    #[test]
    fn geometry_missing_register_is_typed() {
        let p = Program::parse("AIM 1\nWR_CFR 0 8\nEOC\n").unwrap();
        assert!(matches!(p.geometry(), Err(IsaError::Geometry(_))));
    }
}
