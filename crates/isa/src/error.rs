//! Typed errors of the ISA layer.
//!
//! The fuzzer's contract is that malformed or out-of-range programs are
//! rejected with one of these variants — never a panic or abort — so
//! every variant names the offending value and its legal bound.

use std::fmt;

use newton_core::AimError;
use newton_dram::DramError;

/// Everything that can go wrong parsing, validating, or executing an
/// `.aim` trace.
#[derive(Debug)]
#[non_exhaustive]
pub enum IsaError {
    /// A line failed to parse (1-based line number of the trace text).
    Parse {
        /// 1-based source line.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
    /// A GPR index exceeded the register file.
    GprOutOfRange {
        /// Offending index.
        gpr: usize,
        /// Registers available.
        count: usize,
    },
    /// A CFR index exceeded the register file.
    CfrOutOfRange {
        /// Offending index.
        idx: usize,
        /// Registers available.
        count: usize,
    },
    /// A channel mask addressed channels beyond the configured count.
    ChannelMaskOutOfRange {
        /// Offending mask.
        mask: u64,
        /// Channels configured.
        channels: usize,
    },
    /// A bank index exceeded the per-channel bank count.
    BankOutOfRange {
        /// Offending bank.
        bank: usize,
        /// Banks per channel.
        banks: usize,
    },
    /// A DRAM row index exceeded the addressable rows.
    RowOutOfRange {
        /// Offending row.
        row: usize,
        /// Rows available.
        rows: usize,
    },
    /// A column index exceeded the columns of one row.
    ColOutOfRange {
        /// Offending column.
        col: usize,
        /// Columns per row.
        cols: usize,
    },
    /// A result-latch index exceeded the per-bank latch count.
    LatchOutOfRange {
        /// Offending latch.
        latch: usize,
        /// Latches per bank.
        latches: usize,
    },
    /// A global-buffer sub-chunk offset exceeded the buffer.
    GbOffsetOutOfRange {
        /// Offending sub-chunk offset.
        offset: usize,
        /// Sub-chunks in the global buffer.
        subchunks: usize,
    },
    /// The trace declared no (or an inconsistent) geometry header.
    Geometry(String),
    /// The trace's `MAC_ABK` stream disagrees with the schedule the
    /// declared geometry implies — the conformance teeth of the MV path.
    ScheduleMismatch {
        /// Index of the offending `MAC_ABK` in the stream.
        index: usize,
        /// What differed.
        detail: String,
    },
    /// The trace is not a recognizable lowered matrix–vector program.
    NotMv(String),
    /// An error surfaced from the simulated substrate.
    Core(AimError),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            IsaError::GprOutOfRange { gpr, count } => {
                write!(f, "GPR {gpr} out of range (register file has {count})")
            }
            IsaError::CfrOutOfRange { idx, count } => {
                write!(f, "CFR {idx} out of range (register file has {count})")
            }
            IsaError::ChannelMaskOutOfRange { mask, channels } => write!(
                f,
                "channel mask {mask:#x} addresses channels beyond the configured {channels}"
            ),
            IsaError::BankOutOfRange { bank, banks } => {
                write!(f, "bank {bank} out of range ({banks} banks per channel)")
            }
            IsaError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range ({rows} rows addressable)")
            }
            IsaError::ColOutOfRange { col, cols } => {
                write!(f, "column {col} out of range ({cols} columns per row)")
            }
            IsaError::LatchOutOfRange { latch, latches } => {
                write!(f, "latch {latch} out of range ({latches} latches per bank)")
            }
            IsaError::GbOffsetOutOfRange { offset, subchunks } => write!(
                f,
                "global-buffer sub-chunk {offset} out of range ({subchunks} sub-chunks)"
            ),
            IsaError::Geometry(detail) => write!(f, "trace geometry error: {detail}"),
            IsaError::ScheduleMismatch { index, detail } => {
                write!(
                    f,
                    "MAC_ABK stream mismatch at instruction {index}: {detail}"
                )
            }
            IsaError::NotMv(detail) => write!(f, "not a lowered MV trace: {detail}"),
            IsaError::Core(e) => write!(f, "substrate error: {e}"),
        }
    }
}

impl std::error::Error for IsaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IsaError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AimError> for IsaError {
    fn from(e: AimError) -> IsaError {
        IsaError::Core(e)
    }
}

impl From<DramError> for IsaError {
    fn from(e: DramError) -> IsaError {
        IsaError::Core(AimError::from(e))
    }
}
