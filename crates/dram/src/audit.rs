//! Independent post-hoc timing audit.
//!
//! The channel's constraint engine computes earliest-legal cycles
//! incrementally; the audit re-derives every constraint from the raw event
//! log with simple quadratic-ish scans. The two implementations share no
//! code, so agreement is strong evidence the incremental engine is right.
//! Tests enable the audit on every scenario; long benchmark runs leave it
//! off.

use crate::timing::{Cycle, Timing};

/// One primitive device event, as recorded at issue time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditEvent {
    /// Row activation on `bank`.
    Act {
        /// Bank index.
        bank: usize,
        /// Row opened.
        row: usize,
        /// Issue cycle.
        cycle: Cycle,
    },
    /// Precharge on `bank`.
    Pre {
        /// Bank index.
        bank: usize,
        /// Issue cycle.
        cycle: Cycle,
    },
    /// Column read on `bank` (`external` = data crossed the PHY).
    ColRd {
        /// Bank index.
        bank: usize,
        /// Issue cycle.
        cycle: Cycle,
        /// Whether the data used the external bus.
        external: bool,
    },
    /// Column write on `bank`.
    ColWr {
        /// Bank index.
        bank: usize,
        /// Issue cycle.
        cycle: Cycle,
    },
    /// All-bank refresh.
    Ref {
        /// Issue cycle.
        cycle: Cycle,
    },
    /// A command-bus slot was consumed (one per command, ganged or not).
    Slot {
        /// Issue cycle.
        cycle: Cycle,
        /// Which command bus carried the command.
        bus: BusKind,
    },
}

/// Which of the two HBM command buses a command used (HBM splits row
/// commands — ACT/PRE/REF — from column commands — RD/WR and the AiM
/// column-class commands).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusKind {
    /// The row-command bus (ACT, PRE, REF).
    Row,
    /// The column-command bus (RD, WR, COMP, GWRITE, READRES).
    Column,
}

impl AuditEvent {
    fn cycle(&self) -> Cycle {
        match *self {
            AuditEvent::Act { cycle, .. }
            | AuditEvent::Pre { cycle, .. }
            | AuditEvent::ColRd { cycle, .. }
            | AuditEvent::ColWr { cycle, .. }
            | AuditEvent::Ref { cycle }
            | AuditEvent::Slot { cycle, .. } => cycle,
        }
    }
}

/// A violation found by the audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Name of the violated constraint.
    pub constraint: &'static str,
    /// Description with the cycles involved.
    pub detail: String,
}

/// Collects events and re-validates them against the raw constraint
/// definitions.
#[derive(Debug, Default)]
pub struct Audit {
    events: Vec<AuditEvent>,
}

impl Audit {
    /// Creates an empty audit log.
    #[must_use]
    pub fn new() -> Audit {
        Audit::default()
    }

    /// Records one event.
    pub fn record(&mut self, event: AuditEvent) {
        self.events.push(event);
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Recorded events, in issue order.
    #[must_use]
    pub fn events(&self) -> &[AuditEvent] {
        &self.events
    }

    /// Re-validates every recorded event. Returns all violations found
    /// (empty = clean).
    #[must_use]
    pub fn validate(&self, t: &Timing) -> Vec<AuditViolation> {
        let mut violations = Vec::new();
        let mut events = self.events.clone();
        events.sort_by_key(AuditEvent::cycle);

        self.check_command_slots(&events, t, &mut violations);
        self.check_faw(&events, t, &mut violations);
        self.check_per_bank(&events, t, &mut violations);
        self.check_refresh(&events, t, &mut violations);
        violations
    }

    fn check_command_slots(
        &self,
        events: &[AuditEvent],
        t: &Timing,
        out: &mut Vec<AuditViolation>,
    ) {
        for kind in [BusKind::Row, BusKind::Column] {
            let slots: Vec<Cycle> = events
                .iter()
                .filter_map(|e| match e {
                    AuditEvent::Slot { cycle, bus } if *bus == kind => Some(*cycle),
                    _ => None,
                })
                .collect();
            for w in slots.windows(2) {
                if w[1] < w[0] + t.t_cmd {
                    out.push(AuditViolation {
                        constraint: "tCMD",
                        detail: format!(
                            "{kind:?}-bus command slots at {} and {} closer than tCMD={}",
                            w[0], w[1], t.t_cmd
                        ),
                    });
                }
            }
        }
    }

    fn check_faw(&self, events: &[AuditEvent], t: &Timing, out: &mut Vec<AuditViolation>) {
        let acts: Vec<Cycle> = events
            .iter()
            .filter_map(|e| match e {
                AuditEvent::Act { cycle, .. } => Some(*cycle),
                _ => None,
            })
            .collect();
        // tFAW: any 5 consecutive activations must span more than tFAW
        // (i.e. acts[i+4] >= acts[i] + tFAW).
        for i in 0..acts.len().saturating_sub(4) {
            if acts[i + 4] < acts[i] + t.t_faw {
                out.push(AuditViolation {
                    constraint: "tFAW",
                    detail: format!(
                        "5th activation at {} within tFAW={} of activation at {}",
                        acts[i + 4],
                        t.t_faw,
                        acts[i]
                    ),
                });
            }
        }
        // tRRD between activations at *different* cycles (ganged
        // activations share a cycle by design).
        for w in acts.windows(2) {
            if w[1] != w[0] && w[1] < w[0] + t.t_rrd {
                out.push(AuditViolation {
                    constraint: "tRRD",
                    detail: format!(
                        "activations at {} and {} closer than tRRD={}",
                        w[0], w[1], t.t_rrd
                    ),
                });
            }
        }
    }

    fn check_per_bank(&self, events: &[AuditEvent], t: &Timing, out: &mut Vec<AuditViolation>) {
        let max_bank = events
            .iter()
            .filter_map(|e| match e {
                AuditEvent::Act { bank, .. }
                | AuditEvent::Pre { bank, .. }
                | AuditEvent::ColRd { bank, .. }
                | AuditEvent::ColWr { bank, .. } => Some(*bank),
                _ => None,
            })
            .max();
        let Some(max_bank) = max_bank else { return };

        for bank in 0..=max_bank {
            let mut last_act: Option<Cycle> = None;
            let mut last_col: Option<Cycle> = None;
            let mut last_rd: Option<Cycle> = None;
            let mut last_wr: Option<Cycle> = None;
            let mut last_pre: Option<Cycle> = None;
            let mut open = false;
            for e in events {
                match *e {
                    AuditEvent::Act { bank: b, cycle, .. } if b == bank => {
                        if open {
                            out.push(AuditViolation {
                                constraint: "ACT-on-open",
                                detail: format!(
                                    "bank {bank}: activate at {cycle} while a row is open"
                                ),
                            });
                        }
                        if let Some(p) = last_pre {
                            if cycle < p + t.t_rp {
                                out.push(AuditViolation {
                                    constraint: "tRP",
                                    detail: format!(
                                        "bank {bank}: ACT at {cycle} < PRE {p} + tRP {}",
                                        t.t_rp
                                    ),
                                });
                            }
                        }
                        if let Some(a) = last_act {
                            if cycle < a + t.t_rc() {
                                out.push(AuditViolation {
                                    constraint: "tRC",
                                    detail: format!(
                                        "bank {bank}: ACT at {cycle} < ACT {a} + tRC {}",
                                        t.t_rc()
                                    ),
                                });
                            }
                        }
                        last_act = Some(cycle);
                        open = true;
                    }
                    AuditEvent::Pre { bank: b, cycle } if b == bank => {
                        if !open {
                            out.push(AuditViolation {
                                constraint: "PRE-on-idle",
                                detail: format!(
                                    "bank {bank}: precharge at {cycle} with no open row"
                                ),
                            });
                        }
                        if let Some(a) = last_act {
                            if cycle < a + t.t_ras {
                                out.push(AuditViolation {
                                    constraint: "tRAS",
                                    detail: format!(
                                        "bank {bank}: PRE at {cycle} < ACT {a} + tRAS {}",
                                        t.t_ras
                                    ),
                                });
                            }
                        }
                        if let Some(r) = last_rd {
                            if cycle < r + t.t_rtp {
                                out.push(AuditViolation {
                                    constraint: "tRTP",
                                    detail: format!(
                                        "bank {bank}: PRE at {cycle} < RD {r} + tRTP {}",
                                        t.t_rtp
                                    ),
                                });
                            }
                        }
                        if let Some(wcyc) = last_wr {
                            if cycle < wcyc + t.t_aa + t.t_wr {
                                out.push(AuditViolation {
                                    constraint: "tWR",
                                    detail: format!(
                                        "bank {bank}: PRE at {cycle} < WR {wcyc} + tAA+tWR {}",
                                        t.t_aa + t.t_wr
                                    ),
                                });
                            }
                        }
                        last_pre = Some(cycle);
                        open = false;
                        last_col = None;
                        last_rd = None;
                        last_wr = None;
                    }
                    AuditEvent::ColRd { bank: b, cycle, .. } if b == bank => {
                        self.check_column(bank, cycle, open, last_act, last_col, t, out);
                        last_col = Some(cycle);
                        last_rd = Some(cycle);
                    }
                    AuditEvent::ColWr { bank: b, cycle } if b == bank => {
                        self.check_column(bank, cycle, open, last_act, last_col, t, out);
                        last_col = Some(cycle);
                        last_wr = Some(cycle);
                    }
                    _ => {}
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_column(
        &self,
        bank: usize,
        cycle: Cycle,
        open: bool,
        last_act: Option<Cycle>,
        last_col: Option<Cycle>,
        t: &Timing,
        out: &mut Vec<AuditViolation>,
    ) {
        if !open {
            out.push(AuditViolation {
                constraint: "COL-on-idle",
                detail: format!("bank {bank}: column access at {cycle} with no open row"),
            });
        }
        if let Some(a) = last_act {
            if cycle < a + t.t_rcd {
                out.push(AuditViolation {
                    constraint: "tRCD",
                    detail: format!(
                        "bank {bank}: column at {cycle} < ACT {a} + tRCD {}",
                        t.t_rcd
                    ),
                });
            }
        }
        if let Some(c) = last_col {
            if cycle < c + t.t_ccd {
                out.push(AuditViolation {
                    constraint: "tCCD",
                    detail: format!(
                        "bank {bank}: column at {cycle} < column {c} + tCCD {}",
                        t.t_ccd
                    ),
                });
            }
        }
    }

    fn check_refresh(&self, events: &[AuditEvent], t: &Timing, out: &mut Vec<AuditViolation>) {
        if t.t_refi == 0 {
            return;
        }
        let refs: Vec<Cycle> = events
            .iter()
            .filter_map(|e| match e {
                AuditEvent::Ref { cycle } => Some(*cycle),
                _ => None,
            })
            .collect();
        // During tRFC after a refresh, no activation may occur.
        let acts: Vec<Cycle> = events
            .iter()
            .filter_map(|e| match e {
                AuditEvent::Act { cycle, .. } => Some(*cycle),
                _ => None,
            })
            .collect();
        for &r in &refs {
            for &a in &acts {
                if a >= r && a < r + t.t_rfc {
                    out.push(AuditViolation {
                        constraint: "tRFC",
                        detail: format!("activation at {a} during refresh [{r}, {})", r + t.t_rfc),
                    });
                }
            }
        }
        // tREFI deadline: mirroring the channel's rule, an activation may
        // not be issued after the current refresh deadline has passed (the
        // deadline starts at tREFI and advances to ref + tREFI on each
        // refresh; a late refresh itself is permitted, pull-in semantics).
        let mut deadline = t.t_refi;
        let mut next_ref = 0;
        for &a in &acts {
            while next_ref < refs.len() && refs[next_ref] <= a {
                deadline = refs[next_ref] + t.t_refi;
                next_ref += 1;
            }
            if a > deadline {
                out.push(AuditViolation {
                    constraint: "tREFI",
                    detail: format!("activation at {a} after refresh deadline {deadline}"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingParams;

    fn timing() -> Timing {
        TimingParams::hbm2e_like().to_cycles().unwrap()
    }

    #[test]
    fn clean_sequence_passes() {
        let t = timing();
        let mut audit = Audit::new();
        audit.record(AuditEvent::Slot {
            cycle: 0,
            bus: BusKind::Row,
        });
        audit.record(AuditEvent::Act {
            bank: 0,
            row: 0,
            cycle: 0,
        });
        audit.record(AuditEvent::Slot {
            cycle: t.t_rcd,
            bus: BusKind::Column,
        });
        audit.record(AuditEvent::ColRd {
            bank: 0,
            cycle: t.t_rcd,
            external: true,
        });
        audit.record(AuditEvent::Slot {
            cycle: t.t_ras,
            bus: BusKind::Row,
        });
        audit.record(AuditEvent::Pre {
            bank: 0,
            cycle: t.t_ras,
        });
        assert_eq!(audit.validate(&t), vec![]);
        assert_eq!(audit.len(), 6);
    }

    #[test]
    fn trcd_violation_detected() {
        let t = timing();
        let mut audit = Audit::new();
        audit.record(AuditEvent::Act {
            bank: 0,
            row: 0,
            cycle: 0,
        });
        audit.record(AuditEvent::ColRd {
            bank: 0,
            cycle: t.t_rcd - 1,
            external: false,
        });
        let v = audit.validate(&t);
        assert!(v.iter().any(|x| x.constraint == "tRCD"), "{v:?}");
    }

    #[test]
    fn faw_violation_detected() {
        let t = timing();
        let mut audit = Audit::new();
        for i in 0..5 {
            audit.record(AuditEvent::Act {
                bank: i,
                row: 0,
                cycle: (i as Cycle) * t.t_rrd,
            });
        }
        let v = audit.validate(&t);
        assert!(v.iter().any(|x| x.constraint == "tFAW"), "{v:?}");
    }

    #[test]
    fn ganged_acts_at_same_cycle_do_not_trip_trrd() {
        let t = timing();
        let mut audit = Audit::new();
        for bank in 0..4 {
            audit.record(AuditEvent::Act {
                bank,
                row: 0,
                cycle: 100,
            });
        }
        let v = audit.validate(&t);
        assert!(v.iter().all(|x| x.constraint != "tRRD"), "{v:?}");
    }

    #[test]
    fn command_slot_crowding_detected() {
        let t = timing();
        let mut audit = Audit::new();
        audit.record(AuditEvent::Slot {
            cycle: 0,
            bus: BusKind::Column,
        });
        audit.record(AuditEvent::Slot {
            cycle: 1,
            bus: BusKind::Column,
        });
        let v = audit.validate(&t);
        assert!(v.iter().any(|x| x.constraint == "tCMD"), "{v:?}");
        // Different buses never contend for slots.
        let mut audit = Audit::new();
        audit.record(AuditEvent::Slot {
            cycle: 0,
            bus: BusKind::Row,
        });
        audit.record(AuditEvent::Slot {
            cycle: 1,
            bus: BusKind::Column,
        });
        assert!(audit.validate(&t).is_empty());
    }

    #[test]
    fn activation_during_refresh_detected() {
        let t = timing();
        let mut audit = Audit::new();
        audit.record(AuditEvent::Ref { cycle: 1000 });
        audit.record(AuditEvent::Act {
            bank: 0,
            row: 0,
            cycle: 1000 + t.t_rfc - 1,
        });
        let v = audit.validate(&t);
        assert!(v.iter().any(|x| x.constraint == "tRFC"), "{v:?}");
    }

    #[test]
    fn column_on_idle_bank_detected() {
        let t = timing();
        let mut audit = Audit::new();
        audit.record(AuditEvent::ColRd {
            bank: 0,
            cycle: 50,
            external: true,
        });
        let v = audit.validate(&t);
        assert!(v.iter().any(|x| x.constraint == "COL-on-idle"), "{v:?}");
    }
}
