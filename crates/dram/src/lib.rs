//! Cycle-accurate, event-driven DRAM channel simulator — the substrate the
//! Newton AiM model is built on.
//!
//! The Newton paper (MICRO 2020, Sec. IV) evaluates on a simulator "based on
//! the cycle-level DRAMsim2 simulator" configured as an HBM2E-like device
//! (Table III). This crate rebuilds that substrate from scratch in Rust:
//!
//! * [`timing`]: DRAM timing parameters in nanoseconds and their
//!   cycle-domain derivation, with an HBM2E-like preset matching Table III
//!   (16 banks, 32 column I/Os of 256 bits per 1 KB row, tRP = tRCD = 14 ns,
//!   tRAS = 33 ns, tAA in the published 22–29 ns range).
//! * [`config`]: channel geometry (banks, rows, columns) and validation.
//! * [`bank`]: per-bank state machines with the full inter-command
//!   constraint set (tRCD, tRP, tRAS, tRC, tCCD, tRTP, tWR).
//! * [`faw`]: the rolling four-activation-window (tFAW) tracker, including
//!   the ganged multi-activation accounting Newton's G_ACT command needs.
//! * [`bus`]: the command bus (one command per command slot — the scarce
//!   resource Newton's ganged/complex commands conserve) and the external
//!   data bus.
//! * [`channel`]: the assembled channel: banks + storage + refresh +
//!   statistics, with both *query* (earliest legal issue cycle) and *issue*
//!   (validated, stateful) APIs, plus ganged issue paths that consume a
//!   single command slot.
//! * [`storage`]: functional row storage (lazily allocated; rows hold real
//!   bytes so compute-in-memory models produce real numbers).
//! * [`stream`]: a streaming read controller used to model the paper's
//!   *Ideal Non-PIM* baseline (external-bandwidth-bound, activations hidden).
//! * [`address`]: physical address mapping and super-page allocation
//!   (Sec. III-E: the matrix layout "expects physical address contiguity").
//! * [`audit`]: an independent post-hoc validator that rechecks every issued
//!   command against the raw constraint definitions (used throughout the
//!   test suite).
//! * [`ecc`]: a SECDED (72,64) on-die ECC model — check bytes per 64-bit
//!   word, scrub on activation, check on every read and COMP operand fetch.
//! * [`faults`]: deterministic fault-injection campaigns (bit flips,
//!   stuck-at cells, retention decay) over resident rows.
//!
//! This crate knows nothing about machine learning: it exposes banks,
//! timing, and buses. The AiM command set lives in `newton-core`, layered on
//! top exactly as the paper argues AiM should be — as DRAM-like commands.
//!
//! # Example
//!
//! ```
//! use newton_dram::{Channel, DramConfig};
//!
//! let mut ch = Channel::new(DramConfig::hbm2e_like())?;
//! // Write a row, read a column back, with full timing accounting.
//! let row_bytes = vec![0xA5u8; ch.config().row_bytes()];
//! ch.storage_mut().write_row(0, 10, &row_bytes)?;
//! let t_act = ch.earliest_activate(0);
//! let t_act = ch.issue_activate(t_act, 0, 10)?;
//! let t_rd = ch.earliest_column_read(t_act, 0);
//! let (t_rd, data) = ch.issue_column_read_external(t_rd, 0, 3)?;
//! assert!(t_rd > t_act);
//! assert_eq!(data, vec![0xA5u8; ch.config().col_bytes()]);
//! # Ok::<(), newton_dram::DramError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod address;
pub mod audit;
pub mod bank;
pub mod bus;
pub mod channel;
pub mod config;
pub mod controller;
pub mod ecc;
pub mod error;
pub mod faults;
pub mod faw;
pub mod ini;
pub mod stats;
pub mod storage;
pub mod stream;
pub mod timing;

pub use channel::Channel;
pub use config::DramConfig;
pub use controller::TimingEngine;
pub use ecc::{EccCounters, Secded};
pub use error::DramError;
pub use faults::{CampaignSpec, FaultKind, InjectedFault, RetentionSpec};
pub use storage::Storage;
pub use timing::{Cycle, TimingParams};
