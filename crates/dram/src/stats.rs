//! Event counters for performance and energy accounting.

use crate::timing::Cycle;

/// Raw event counts accumulated by a [`crate::Channel`].
///
/// These are mechanical counts; derived metrics (bandwidth, average power)
/// are computed by `newton-model` from these counters plus elapsed time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Row activations (each bank counted, even when ganged).
    pub activates: u64,
    /// Row precharges (each bank counted, even in precharge-all).
    pub precharges: u64,
    /// External column reads (data crossed the channel PHY).
    pub col_reads_external: u64,
    /// External column writes.
    pub col_writes_external: u64,
    /// Internal column reads (consumed by in-DRAM compute; each bank
    /// counted, even when ganged).
    pub col_reads_internal: u64,
    /// All-bank refresh operations.
    pub refreshes: u64,
    /// Commands that ganged multiple bank operations into one slot.
    pub ganged_commands: u64,
    /// Bytes written into on-die buffers via broadcast-class commands
    /// (e.g. Newton's GWRITE); counted separately from column writes
    /// because they do not touch bank arrays.
    pub broadcast_bytes: u64,
}

impl ChannelStats {
    /// Total column accesses of any kind.
    #[must_use]
    pub fn total_columns(&self) -> u64 {
        self.col_reads_external + self.col_writes_external + self.col_reads_internal
    }
}

/// A completed-run summary: counters plus the time span they cover.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Event counts.
    pub stats: ChannelStats,
    /// Total commands issued on the command bus.
    pub commands: u64,
    /// Bytes moved over the external data bus.
    pub external_bytes: u64,
    /// Aggregate bank-open time (sum over banks), in cycles.
    pub bank_open_cycles: Cycle,
    /// Completion cycle of the measured activity.
    pub end_cycle: Cycle,
    /// Command-clock period, for converting to wall-clock.
    pub tck_ns: f64,
}

impl RunSummary {
    /// Elapsed simulated time in nanoseconds.
    #[must_use]
    pub fn elapsed_ns(&self) -> f64 {
        self.end_cycle as f64 * self.tck_ns
    }

    /// Achieved external bandwidth in bytes per nanosecond.
    #[must_use]
    pub fn external_bandwidth(&self) -> f64 {
        if self.end_cycle == 0 {
            0.0
        } else {
            self.external_bytes as f64 / self.elapsed_ns()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_bandwidth() {
        let stats = ChannelStats {
            col_reads_external: 10,
            col_writes_external: 5,
            col_reads_internal: 100,
            ..ChannelStats::default()
        };
        assert_eq!(stats.total_columns(), 115);

        let summary = RunSummary {
            stats,
            commands: 50,
            external_bytes: 4800,
            bank_open_cycles: 0,
            end_cycle: 600,
            tck_ns: 1.0,
        };
        assert_eq!(summary.elapsed_ns(), 600.0);
        assert_eq!(summary.external_bandwidth(), 8.0);
    }

    #[test]
    fn zero_time_bandwidth_is_zero() {
        let summary = RunSummary {
            stats: ChannelStats::default(),
            commands: 0,
            external_bytes: 0,
            bank_open_cycles: 0,
            end_cycle: 0,
            tck_ns: 1.0,
        };
        assert_eq!(summary.external_bandwidth(), 0.0);
    }
}
