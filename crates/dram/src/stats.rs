//! Event counters for performance and energy accounting.

use crate::ecc::EccCounters;
use crate::timing::Cycle;
use newton_trace::{Log2Histogram, Residency, TimeSeries};

/// Raw event counts accumulated by a [`crate::Channel`].
///
/// These are mechanical counts; derived metrics (bandwidth, average power)
/// are computed by `newton-model` from these counters plus elapsed time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Row activations (each bank counted, even when ganged).
    pub activates: u64,
    /// Row precharges (each bank counted, even in precharge-all).
    pub precharges: u64,
    /// External column reads (data crossed the channel PHY).
    pub col_reads_external: u64,
    /// External column writes.
    pub col_writes_external: u64,
    /// Internal column reads (consumed by in-DRAM compute; each bank
    /// counted, even when ganged).
    pub col_reads_internal: u64,
    /// All-bank refresh operations.
    pub refreshes: u64,
    /// Commands that ganged multiple bank operations into one slot.
    pub ganged_commands: u64,
    /// Bytes written into on-die buffers via broadcast-class commands
    /// (e.g. Newton's GWRITE); counted separately from column writes
    /// because they do not touch bank arrays.
    pub broadcast_bytes: u64,
    /// SECDED-corrected single-bit errors (64-bit words corrected), total
    /// across banks. Zero while the ECC model is off.
    pub ecc_corrected: u64,
    /// Detected-uncorrectable ECC errors, total across banks.
    pub ecc_uncorrectable: u64,
}

impl ChannelStats {
    /// Total column accesses of any kind.
    #[must_use]
    pub fn total_columns(&self) -> u64 {
        self.col_reads_external + self.col_writes_external + self.col_reads_internal
    }
}

/// A completed-run summary: counters plus the time span they cover.
///
/// Holds per-bank cycle attribution and latency histograms, so it is
/// `Clone` rather than `Copy`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunSummary {
    /// Event counts.
    pub stats: ChannelStats,
    /// Total commands issued on the command bus.
    pub commands: u64,
    /// Bytes moved over the external data bus.
    pub external_bytes: u64,
    /// Aggregate bank-open time (sum over banks), in cycles.
    pub bank_open_cycles: Cycle,
    /// Cycle of the first command issued (0 when nothing ran).
    pub activity_start: Cycle,
    /// Completion cycle of the measured activity.
    pub end_cycle: Cycle,
    /// Command-clock period, for converting to wall-clock.
    pub tck_ns: f64,
    /// Per-bank cycle attribution from cycle 0 to `end_cycle`; one entry
    /// per bank, each summing to `end_cycle`.
    pub residency: Vec<Residency>,
    /// Distribution of request queue latencies (issue − arrival), in
    /// cycles, over requests drained by a scheduling controller.
    pub queue_latency: Log2Histogram,
    /// Inter-slot gaps on the row command bus.
    pub row_slot_gaps: Log2Histogram,
    /// Inter-slot gaps on the column command bus.
    pub col_slot_gaps: Log2Histogram,
    /// Gaps between consecutive activate commands (any bank).
    pub act_gaps: Log2Histogram,
    /// Per-bank ECC correction/detection counters (empty vectors in a
    /// default summary; one entry per bank when produced by a channel).
    pub ecc: EccCounters,
    /// Windowed telemetry series sampled through `end_cycle`; present
    /// only when the channel ran with streaming telemetry enabled.
    pub telemetry: Option<TimeSeries>,
}

impl RunSummary {
    /// Elapsed simulated time in nanoseconds.
    #[must_use]
    pub fn elapsed_ns(&self) -> f64 {
        self.end_cycle as f64 * self.tck_ns
    }

    /// Cycles between the first command and completion — the span actual
    /// work occupied, excluding any leading idle prefix.
    #[must_use]
    pub fn activity_span(&self) -> Cycle {
        self.end_cycle.saturating_sub(self.activity_start)
    }

    /// Achieved external bandwidth in bytes per nanosecond, measured over
    /// the activity span (first command to completion) rather than from
    /// cycle 0, so a late-starting run is not under-reported.
    #[must_use]
    pub fn external_bandwidth(&self) -> f64 {
        let span = self.activity_span();
        if span == 0 {
            0.0
        } else {
            self.external_bytes as f64 / (span as f64 * self.tck_ns)
        }
    }

    /// Mean fraction of bank-cycles spent with a row open: aggregate open
    /// time divided by `banks × end_cycle`. Zero when no time elapsed or
    /// the summary carries no per-bank data.
    #[must_use]
    pub fn bank_utilization(&self) -> f64 {
        let banks = self.residency.len() as u64;
        if banks == 0 || self.end_cycle == 0 {
            return 0.0;
        }
        self.bank_open_cycles as f64 / (banks * self.end_cycle) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_bandwidth() {
        let stats = ChannelStats {
            col_reads_external: 10,
            col_writes_external: 5,
            col_reads_internal: 100,
            ..ChannelStats::default()
        };
        assert_eq!(stats.total_columns(), 115);

        let summary = RunSummary {
            stats,
            commands: 50,
            external_bytes: 4800,
            end_cycle: 600,
            tck_ns: 1.0,
            ..RunSummary::default()
        };
        assert_eq!(summary.elapsed_ns(), 600.0);
        assert_eq!(summary.external_bandwidth(), 8.0);
    }

    #[test]
    fn bandwidth_uses_activity_span_not_cycle_zero() {
        // Work starts at cycle 400 and ends at 600: 4800 bytes over a
        // 200-cycle span, not the 600-cycle wall.
        let summary = RunSummary {
            external_bytes: 4800,
            activity_start: 400,
            end_cycle: 600,
            tck_ns: 1.0,
            ..RunSummary::default()
        };
        assert_eq!(summary.activity_span(), 200);
        assert_eq!(summary.external_bandwidth(), 24.0);
    }

    #[test]
    fn zero_time_bandwidth_is_zero() {
        let summary = RunSummary {
            tck_ns: 1.0,
            ..RunSummary::default()
        };
        assert_eq!(summary.external_bandwidth(), 0.0);
        // A degenerate span (start == end) is also zero, not a div-by-zero.
        let degenerate = RunSummary {
            external_bytes: 100,
            activity_start: 500,
            end_cycle: 500,
            tck_ns: 1.0,
            ..RunSummary::default()
        };
        assert_eq!(degenerate.external_bandwidth(), 0.0);
    }

    #[test]
    fn bank_utilization_handles_zero_elapsed_and_empty_banks() {
        use newton_trace::Residency;
        // No banks, no time: both degenerate cases return 0.0.
        assert_eq!(RunSummary::default().bank_utilization(), 0.0);
        let no_time = RunSummary {
            bank_open_cycles: 100,
            residency: vec![Residency::default(); 4],
            ..RunSummary::default()
        };
        assert_eq!(no_time.bank_utilization(), 0.0);
        // 2 banks, 100 cycles each, 50 aggregate open cycles = 25%.
        let busy = RunSummary {
            bank_open_cycles: 50,
            end_cycle: 100,
            residency: vec![Residency::default(); 2],
            ..RunSummary::default()
        };
        assert_eq!(busy.bank_utilization(), 0.25);
    }
}
