//! Streaming full-row reads at external-bandwidth: the machinery behind
//! the paper's *Ideal Non-PIM* baseline.
//!
//! Ideal Non-PIM (Sec. IV) is "an ideal non-PIM host with unlimited compute
//! bandwidth ... limited only by the DRAM's external bandwidth". Its
//! execution time is the time to stream the matrix over the channel PHY.
//! [`StreamReader`] reads a sequence of `(bank, row)` pairs front to back:
//!
//! * column reads proceed back-to-back at the tCCD cadence (the external
//!   bus ceiling);
//! * the next row's activation is issued on the row bus *during* the
//!   current row's reads, so tRCD/tRP are hidden exactly as the paper's
//!   model assumes ("the long latency of retrieving the entire DRAM row
//!   completely hides the activation latency of a DRAM row in the next
//!   bank");
//! * refresshes are interposed when they fall due, which is the effect the
//!   paper notes makes measured Ideal Non-PIM slightly *slower* than the
//!   analytical model.

use crate::channel::Channel;
use crate::error::DramError;
use crate::timing::Cycle;

/// Outcome of a streaming run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Cycle at which the last data beat completes.
    pub end_cycle: Cycle,
    /// Rows fully read.
    pub rows_read: usize,
    /// Refreshes interposed during the stream.
    pub refreshes: u64,
}

/// Streams whole rows out of a channel at peak external bandwidth.
#[derive(Debug)]
pub struct StreamReader<'a> {
    channel: &'a mut Channel,
    /// Rows already activated ahead of their read turn.
    activated_ahead: Option<usize>,
}

impl<'a> StreamReader<'a> {
    /// Creates a reader over `channel`.
    pub fn new(channel: &'a mut Channel) -> StreamReader<'a> {
        StreamReader {
            channel,
            activated_ahead: None,
        }
    }

    /// Reads every row in `rows` (in order), delivering each column's bytes
    /// to `sink(row_index, col, data)`. Starts no earlier than `start`.
    ///
    /// Consecutive entries should name different banks for full pipelining
    /// (the bank-interleaved layout guarantees this); same-bank neighbors
    /// still work but expose tRC.
    ///
    /// # Errors
    ///
    /// Propagates any [`DramError`] — with a correct controller (this one)
    /// the only expected sources are out-of-range rows in the input.
    pub fn read_rows(
        &mut self,
        start: Cycle,
        rows: &[(usize, usize)],
        mut sink: impl FnMut(usize, usize, &[u8]),
    ) -> Result<StreamOutcome, DramError> {
        let t = *self.channel.timing();
        let cols = self.channel.config().cols_per_row;
        let refreshes_before = self.channel.stats().refreshes;
        let mut now = start;
        let mut end = start;
        self.activated_ahead = None;

        // Cycles one fully-pipelined row read takes: used as the refresh
        // look-ahead window.
        let row_cycles = cols as Cycle * t.t_ccd;

        let mut i = 0;
        while i < rows.len() {
            // Refresh policy (paper Sec. III-E): if the pending refresh
            // would mature inside the upcoming operation, service it first.
            if self.channel.refresh_due() <= now + row_cycles {
                now = self.service_refresh(now)?;
            }

            let (bank, row) = rows[i];
            // Activate the current row unless a previous iteration already
            // activated it ahead of time.
            if self.activated_ahead != Some(i) {
                let a = self.channel.earliest_activate(bank).max(now);
                self.channel.issue_activate(a, bank, row)?;
                now = now.max(a);
            }
            self.activated_ahead = None;

            // Activate the *next* row now, so its tRCD hides under our
            // column reads — unless it's the same bank (must wait for our
            // precharge) or a refresh will interpose first.
            if let Some(&(nbank, nrow)) = rows.get(i + 1) {
                if nbank != bank && self.channel.refresh_due() > now + 2 * row_cycles {
                    let a = self.channel.earliest_activate(nbank).max(now);
                    self.channel.issue_activate(a, nbank, nrow)?;
                    self.activated_ahead = Some(i + 1);
                }
            }

            // Stream all columns of the current row.
            let mut rd = now;
            for col in 0..cols {
                rd = self.channel.earliest_column_read(rd, bank);
                let (_, data) = self.channel.issue_column_read_external(rd, bank, col)?;
                sink(i, col, &data);
            }
            end = rd + t.t_aa + t.t_ccd; // last data beat completes
            now = rd;

            // Precharge the row we just finished; tRP overlaps the next
            // row's reads (different bank).
            let p = self.channel.earliest_precharge(bank).max(now);
            self.channel.issue_precharge(p, bank)?;

            i += 1;
        }
        // Close any row left open by look-ahead (refresh interposed).
        if self.activated_ahead.is_some() {
            let p = self.channel.earliest_precharge_all();
            self.channel.issue_precharge_all(p)?;
            self.activated_ahead = None;
        }

        Ok(StreamOutcome {
            end_cycle: end,
            rows_read: rows.len(),
            refreshes: self.channel.stats().refreshes - refreshes_before,
        })
    }

    /// Precharges everything and services one all-bank refresh; returns the
    /// cycle at which banks become usable again.
    fn service_refresh(&mut self, now: Cycle) -> Result<Cycle, DramError> {
        let t = *self.channel.timing();
        let any_open = (0..self.channel.config().banks).any(|b| self.channel.open_row(b).is_some());
        let mut at = now;
        if any_open {
            let p = self.channel.earliest_precharge_all().max(now);
            self.channel.issue_precharge_all(p)?;
            at = p + t.t_rp;
        }
        self.activated_ahead = None;
        let r = at.max(now);
        // The row bus needs a free slot.
        let r = self
            .channel
            .issue_refresh_all(r.max(self.refresh_slot_hint(r)))?;
        Ok(r + t.t_rfc)
    }

    fn refresh_slot_hint(&self, hint: Cycle) -> Cycle {
        // earliest_precharge_all doubles as "earliest row-bus slot" here:
        // with all banks idle it returns just the bus constraint.
        self.channel.earliest_precharge_all().max(hint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;
    use crate::timing::TimingParams;

    fn channel() -> Channel {
        let mut ch = Channel::new(DramConfig::hbm2e_like()).unwrap();
        ch.enable_audit();
        ch
    }

    #[test]
    fn single_row_takes_trcd_plus_col_reads() {
        let mut ch = channel();
        let t = TimingParams::hbm2e_like().to_cycles().unwrap();
        let mut reader = StreamReader::new(&mut ch);
        let out = reader.read_rows(0, &[(0, 0)], |_, _, _| {}).unwrap();
        // ACT at 0, first RD at tRCD, last RD at tRCD + 31*tCCD, data done
        // tAA + tCCD later.
        assert_eq!(out.end_cycle, t.t_rcd + 31 * t.t_ccd + t.t_aa + t.t_ccd);
        assert_eq!(out.rows_read, 1);
        assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
    }

    #[test]
    fn pipelined_rows_hit_external_bandwidth_ceiling() {
        let mut ch = channel();
        // 32 rows x 128 ns > tREFI would interpose a refresh; disable it to
        // measure the pure bandwidth ceiling.
        ch.disable_refresh();
        let t = TimingParams::hbm2e_like().to_cycles().unwrap();
        let rows: Vec<(usize, usize)> = (0..32).map(|i| (i % 16, i / 16)).collect();
        let mut reader = StreamReader::new(&mut ch);
        let out = reader.read_rows(0, &rows, |_, _, _| {}).unwrap();
        // Ideal model: col * tCCD per row once the pipeline fills. Allow
        // the one-time tRCD fill and data-drain tail.
        let ideal = 32 * 32 * t.t_ccd;
        let overhead = out.end_cycle - ideal;
        assert!(
            overhead <= t.t_rcd + t.t_aa + t.t_ccd,
            "overhead {overhead} exceeds fill+drain"
        );
        assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
    }

    #[test]
    fn data_is_delivered_in_order() {
        let mut ch = channel();
        for bank in 0..2 {
            let row: Vec<u8> = (0..1024).map(|i| (bank * 100 + i / 512) as u8).collect();
            ch.storage_mut().write_row(bank, 0, &row).unwrap();
        }
        let mut got = Vec::new();
        let mut reader = StreamReader::new(&mut ch);
        reader
            .read_rows(0, &[(0, 0), (1, 0)], |row_idx, col, data| {
                got.push((row_idx, col, data[0]));
            })
            .unwrap();
        assert_eq!(got.len(), 64);
        assert_eq!(got[0], (0, 0, 0));
        assert_eq!(got[31], (0, 31, 1));
        assert_eq!(got[32], (1, 0, 100));
        assert_eq!(got[63], (1, 31, 101));
    }

    #[test]
    fn long_stream_interposes_refreshes() {
        let mut ch = channel();
        let t = TimingParams::hbm2e_like().to_cycles().unwrap();
        // 64 row-reads ≈ 64 * 128 ns = 8.2 µs > 2 * tREFI: at least 2
        // refreshes must occur.
        let rows: Vec<(usize, usize)> = (0..64).map(|i| (i % 16, i / 16)).collect();
        let mut reader = StreamReader::new(&mut ch);
        let out = reader.read_rows(0, &rows, |_, _, _| {}).unwrap();
        assert!(out.refreshes >= 2, "got {} refreshes", out.refreshes);
        assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
        // Refresh must have cost time: end beyond the no-refresh ideal
        // by at least refreshes * tRFC.
        let ideal = 64 * 32 * t.t_ccd;
        assert!(out.end_cycle >= ideal + out.refreshes * t.t_rfc);
    }

    #[test]
    fn same_bank_consecutive_rows_expose_trc_but_stay_legal() {
        let mut ch = channel();
        let t = TimingParams::hbm2e_like().to_cycles().unwrap();
        let mut reader = StreamReader::new(&mut ch);
        let out = reader
            .read_rows(0, &[(0, 0), (0, 1)], |_, _, _| {})
            .unwrap();
        assert_eq!(out.rows_read, 2);
        assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
    }

    #[test]
    fn starts_no_earlier_than_start_cycle() {
        let mut ch = channel();
        let t = TimingParams::hbm2e_like().to_cycles().unwrap();
        let mut reader = StreamReader::new(&mut ch);
        let out = reader.read_rows(500, &[(0, 0)], |_, _, _| {}).unwrap();
        assert!(out.end_cycle >= 500 + t.t_rcd);
    }
}
