//! Physical address mapping and super-page allocation.
//!
//! Newton's matrix layout "expects physical address contiguity", which the
//! paper guarantees with super pages (Sec. III-E). This module provides the
//! address decomposition a memory controller performs — physical byte
//! address to `(bank, row, column, offset)` — and a simple super-page
//! allocator that hands out physically contiguous row ranges.

use crate::config::DramConfig;
use crate::error::DramError;

/// How consecutive row-sized blocks of the physical address space map onto
/// banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Interleave {
    /// Consecutive rows rotate across banks (row N of the address space is
    /// row N / banks of bank N % banks). This is the mapping Newton's
    /// chunk-interleaved matrix layout relies on: consecutive 1 KB chunks
    /// land in consecutive banks.
    #[default]
    BankInterleaved,
    /// Each bank's rows are contiguous in the address space (bank 0's rows
    /// first, then bank 1's, ...).
    BankSequential,
}

/// A decoded physical location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Bank index.
    pub bank: usize,
    /// Row within the bank.
    pub row: usize,
    /// Column I/O index within the row.
    pub col: usize,
    /// Byte offset within the column I/O.
    pub offset: usize,
}

/// Maps physical byte addresses to channel coordinates and back.
#[derive(Debug, Clone)]
pub struct AddressMapper {
    row_bytes: usize,
    col_bytes: usize,
    banks: usize,
    rows_per_bank: usize,
    interleave: Interleave,
}

impl AddressMapper {
    /// Creates a mapper for the given geometry and interleave scheme.
    #[must_use]
    pub fn new(config: &DramConfig, interleave: Interleave) -> AddressMapper {
        AddressMapper {
            row_bytes: config.row_bytes(),
            col_bytes: config.col_bytes(),
            banks: config.banks,
            rows_per_bank: config.rows_per_bank,
            interleave,
        }
    }

    /// Total mappable bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.banks * self.rows_per_bank * self.row_bytes
    }

    /// Decodes a physical byte address.
    ///
    /// # Errors
    ///
    /// [`DramError::AddressOutOfRange`] when `addr` exceeds capacity.
    pub fn decode(&self, addr: usize) -> Result<Location, DramError> {
        if addr >= self.capacity() {
            return Err(DramError::AddressOutOfRange {
                kind: "physical address",
                index: addr,
                limit: self.capacity(),
            });
        }
        let row_block = addr / self.row_bytes;
        let within = addr % self.row_bytes;
        let (bank, row) = match self.interleave {
            Interleave::BankInterleaved => (row_block % self.banks, row_block / self.banks),
            Interleave::BankSequential => (
                row_block / self.rows_per_bank,
                row_block % self.rows_per_bank,
            ),
        };
        Ok(Location {
            bank,
            row,
            col: within / self.col_bytes,
            offset: within % self.col_bytes,
        })
    }

    /// Encodes channel coordinates back to a physical byte address.
    ///
    /// # Errors
    ///
    /// [`DramError::AddressOutOfRange`] for any out-of-range coordinate.
    pub fn encode(&self, loc: Location) -> Result<usize, DramError> {
        if loc.bank >= self.banks {
            return Err(DramError::AddressOutOfRange {
                kind: "bank",
                index: loc.bank,
                limit: self.banks,
            });
        }
        if loc.row >= self.rows_per_bank {
            return Err(DramError::AddressOutOfRange {
                kind: "row",
                index: loc.row,
                limit: self.rows_per_bank,
            });
        }
        let cols_per_row = self.row_bytes / self.col_bytes;
        if loc.col >= cols_per_row {
            return Err(DramError::AddressOutOfRange {
                kind: "column",
                index: loc.col,
                limit: cols_per_row,
            });
        }
        if loc.offset >= self.col_bytes {
            return Err(DramError::AddressOutOfRange {
                kind: "offset",
                index: loc.offset,
                limit: self.col_bytes,
            });
        }
        let row_block = match self.interleave {
            Interleave::BankInterleaved => loc.row * self.banks + loc.bank,
            Interleave::BankSequential => loc.bank * self.rows_per_bank + loc.row,
        };
        Ok(row_block * self.row_bytes + loc.col * self.col_bytes + loc.offset)
    }
}

/// A physically contiguous allocation, in row-sized units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperPage {
    /// First physical byte address of the allocation.
    pub base: usize,
    /// Length in bytes (a multiple of the row size).
    pub len: usize,
}

/// Bump allocator handing out physically contiguous super pages.
///
/// Models the paper's use of super pages "to allocate the matrix
/// guaranteeing physical address contiguity" (Sec. III-E); it never splits
/// an allocation, so a matrix mapped through [`AddressMapper`] lands on the
/// interleaved layout the AiM schedule expects.
#[derive(Debug, Clone)]
pub struct SuperPageAllocator {
    row_bytes: usize,
    capacity: usize,
    next: usize,
}

impl SuperPageAllocator {
    /// Creates an allocator over the whole channel.
    #[must_use]
    pub fn new(config: &DramConfig) -> SuperPageAllocator {
        SuperPageAllocator {
            row_bytes: config.row_bytes(),
            capacity: config.banks * config.rows_per_bank * config.row_bytes(),
            next: 0,
        }
    }

    /// Allocates `bytes` rounded up to whole rows.
    ///
    /// # Errors
    ///
    /// [`DramError::AddressOutOfRange`] when the channel is exhausted.
    pub fn allocate(&mut self, bytes: usize) -> Result<SuperPage, DramError> {
        let len = bytes.div_ceil(self.row_bytes) * self.row_bytes;
        if self.next + len > self.capacity {
            return Err(DramError::AddressOutOfRange {
                kind: "super-page allocation",
                index: self.next + len,
                limit: self.capacity,
            });
        }
        let page = SuperPage {
            base: self.next,
            len,
        };
        self.next += len;
        Ok(page)
    }

    /// Bytes still available.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.capacity - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapper(il: Interleave) -> AddressMapper {
        AddressMapper::new(&DramConfig::hbm2e_like(), il)
    }

    #[test]
    fn bank_interleaved_rotates_consecutive_rows() {
        let m = mapper(Interleave::BankInterleaved);
        // First 1 KB row block -> bank 0 row 0; next -> bank 1 row 0; ...
        for bank in 0..16 {
            let loc = m.decode(bank * 1024).unwrap();
            assert_eq!((loc.bank, loc.row, loc.col, loc.offset), (bank, 0, 0, 0));
        }
        // The 17th row block wraps to bank 0 row 1.
        let loc = m.decode(16 * 1024).unwrap();
        assert_eq!((loc.bank, loc.row), (0, 1));
    }

    #[test]
    fn bank_sequential_fills_one_bank_first() {
        let m = mapper(Interleave::BankSequential);
        let loc = m.decode(1024).unwrap();
        assert_eq!((loc.bank, loc.row), (0, 1));
        let loc = m.decode(32_768 * 1024).unwrap();
        assert_eq!((loc.bank, loc.row), (1, 0));
    }

    #[test]
    fn decode_encode_roundtrip_both_schemes() {
        for il in [Interleave::BankInterleaved, Interleave::BankSequential] {
            let m = mapper(il);
            for addr in [0usize, 31, 32, 1023, 1024, 123_456, m.capacity() - 1] {
                let loc = m.decode(addr).unwrap();
                assert_eq!(m.encode(loc).unwrap(), addr, "{il:?} addr {addr}");
            }
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let m = mapper(Interleave::BankInterleaved);
        assert!(m.decode(m.capacity()).is_err());
        assert!(m
            .encode(Location {
                bank: 16,
                row: 0,
                col: 0,
                offset: 0
            })
            .is_err());
        assert!(m
            .encode(Location {
                bank: 0,
                row: 40_000,
                col: 0,
                offset: 0
            })
            .is_err());
        assert!(m
            .encode(Location {
                bank: 0,
                row: 0,
                col: 32,
                offset: 0
            })
            .is_err());
        assert!(m
            .encode(Location {
                bank: 0,
                row: 0,
                col: 0,
                offset: 32
            })
            .is_err());
    }

    #[test]
    fn column_and_offset_decode_within_row() {
        let m = mapper(Interleave::BankInterleaved);
        let loc = m.decode(3 * 32 + 7).unwrap();
        assert_eq!((loc.bank, loc.row, loc.col, loc.offset), (0, 0, 3, 7));
    }

    #[test]
    fn super_pages_are_contiguous_and_row_aligned() {
        let cfg = DramConfig::hbm2e_like();
        let mut alloc = SuperPageAllocator::new(&cfg);
        let a = alloc.allocate(1000).unwrap(); // rounds to 1 KB
        assert_eq!((a.base, a.len), (0, 1024));
        let b = alloc.allocate(4096).unwrap();
        assert_eq!(b.base, 1024);
        assert_eq!(alloc.remaining(), cfg.capacity_bytes() - 5 * 1024);
    }

    #[test]
    fn allocator_exhaustion_is_an_error() {
        let cfg = DramConfig::hbm2e_like();
        let mut alloc = SuperPageAllocator::new(&cfg);
        alloc.allocate(cfg.capacity_bytes()).unwrap();
        assert!(alloc.allocate(1).is_err());
    }
}
