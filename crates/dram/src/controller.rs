//! A conventional FR-FCFS memory controller over the channel model.
//!
//! The Newton paper's host still performs ordinary reads and writes
//! (inputs, outputs, the non-AiM data that may share banks with the
//! matrix), and its Ideal Non-PIM baseline is "any non-PIM architecture"
//! fed by a real memory controller. This module provides the classic
//! First-Ready, First-Come-First-Served scheduler over [`Channel`]:
//!
//! * requests that *hit* an open row go first (first-ready);
//! * among equals, the oldest request wins (FCFS);
//! * open-page or closed-page row-buffer management;
//! * refresh interposed at its deadline;
//! * per-request latency accounting and row-buffer hit statistics.
//!
//! The scheduler issues one primitive per step — always the pending
//! primitive with the earliest feasible cycle — so activations in one
//! bank naturally overlap column bursts in another, exactly the
//! bank-level parallelism conventional DRAM offers (Sec. II-A).

use std::collections::VecDeque;

use crate::channel::Channel;
use crate::error::DramError;
use crate::timing::Cycle;

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PagePolicy {
    /// Leave rows open after access (bet on locality).
    #[default]
    Open,
    /// Precharge as soon as the access completes (bet against it).
    Closed,
}

/// One host memory request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-chosen identifier, echoed in the [`Completion`].
    pub id: u64,
    /// Bank to access.
    pub bank: usize,
    /// Row within the bank.
    pub row: usize,
    /// Column I/O index.
    pub col: usize,
    /// `Some(data)` writes the column; `None` reads it.
    pub write: Option<Vec<u8>>,
    /// Cycle the request becomes visible to the controller.
    pub arrival: Cycle,
}

/// A completed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The request id.
    pub id: u64,
    /// Cycle the column command issued.
    pub issue_cycle: Cycle,
    /// Cycle the data beat completed (read data valid / write data
    /// consumed).
    pub data_cycle: Cycle,
    /// Read data (empty for writes).
    pub data: Vec<u8>,
    /// Whether the access hit an already-open row.
    pub row_hit: bool,
}

/// Scheduler statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that opened a row in an idle bank.
    pub row_misses: u64,
    /// Accesses that had to close a different row first.
    pub row_conflicts: u64,
    /// Refreshes interposed while draining.
    pub refreshes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Precharge,
    Activate,
    Column,
}

impl Step {
    /// Dense index for the per-(bank, step) memo table.
    fn index(self) -> usize {
        match self {
            Step::Precharge => 0,
            Step::Activate => 1,
            Step::Column => 2,
        }
    }
}

/// A queued request plus its first-touch classification (hit / miss /
/// conflict), fixed the first time the scheduler issues a primitive for
/// it.
#[derive(Debug, Clone)]
struct Pending {
    req: Request,
    first_step: Option<Step>,
}

/// The FR-FCFS controller. Owns its request queue; borrows the channel
/// per drain call so callers can interleave other uses.
#[derive(Debug, Default)]
pub struct FrFcfs {
    policy: PagePolicy,
    queue: VecDeque<Pending>,
    stats: SchedulerStats,
    /// Per-(bank, step) memo of `earliest_*` results, valid for one queue
    /// scan (the channel is read-only during a scan, so every entry in
    /// the same bank wanting the same primitive shares one computation).
    /// Reused across scans to keep the drain loop allocation-free.
    earliest_memo: Vec<[Option<Cycle>; 3]>,
}

impl FrFcfs {
    /// Creates a controller with the given page policy.
    #[must_use]
    pub fn new(policy: PagePolicy) -> FrFcfs {
        FrFcfs {
            policy,
            ..FrFcfs::default()
        }
    }

    /// The page policy in use.
    #[must_use]
    pub fn policy(&self) -> PagePolicy {
        self.policy
    }

    /// Enqueues a request.
    pub fn enqueue(&mut self, request: Request) {
        self.queue.push_back(Pending {
            req: request,
            first_step: None,
        });
    }

    /// Pending request count.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Scheduler statistics so far.
    #[must_use]
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }

    /// The next primitive a request needs given the bank state, and
    /// whether the eventual column access will be a row hit.
    fn next_step(channel: &Channel, r: &Request) -> (Step, bool) {
        match channel.open_row(r.bank) {
            Some(open) if open == r.row => (Step::Column, true),
            Some(_) => (Step::Precharge, false),
            None => (Step::Activate, false),
        }
    }

    /// Earliest feasible cycle for a primitive on a bank (request-
    /// independent; the caller folds in arrival and the floor).
    fn earliest_raw(channel: &Channel, bank: usize, step: Step) -> Cycle {
        match step {
            Step::Precharge => channel.earliest_precharge(bank),
            Step::Activate => channel.earliest_activate(bank),
            Step::Column => channel.earliest_column_read(0, bank),
        }
    }

    /// Drains every queued request, returning completions in finish
    /// order. `start` lower-bounds all activity.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors (bad addresses; a correct scheduler
    /// cannot otherwise fail).
    pub fn drain(
        &mut self,
        channel: &mut Channel,
        start: Cycle,
    ) -> Result<Vec<Completion>, DramError> {
        let t = *channel.timing();
        let mut completions = Vec::with_capacity(self.queue.len());
        let mut floor = start;
        self.earliest_memo.clear();
        self.earliest_memo.resize(channel.config().banks, [None; 3]);

        while !self.queue.is_empty() {
            // Pick the pending primitive with the earliest feasible cycle;
            // FR-FCFS tie-break: row hits first, then queue (arrival)
            // order. The channel state is constant within the scan, so
            // earliest_* is computed at most once per (bank, step).
            for m in &mut self.earliest_memo {
                *m = [None; 3];
            }
            let memo = &mut self.earliest_memo;
            let mut best: Option<(usize, Step, Cycle, bool)> = None;
            for (idx, p) in self.queue.iter().enumerate() {
                let (step, hit) = Self::next_step(channel, &p.req);
                let slot = &mut memo[p.req.bank][step.index()];
                let e = match *slot {
                    Some(e) => e,
                    None => {
                        let e = Self::earliest_raw(channel, p.req.bank, step);
                        *slot = Some(e);
                        e
                    }
                };
                let at = e.max(p.req.arrival).max(floor);
                let better = match &best {
                    None => true,
                    Some((best_idx, _, best_at, best_hit)) => {
                        (at, !hit, idx) < (*best_at, !best_hit, *best_idx)
                    }
                };
                if better {
                    best = Some((idx, step, at, hit));
                }
            }
            let (idx, step, at, _) = best.expect("queue is non-empty");

            // Refresh first if the deadline would mature inside this
            // request's worst-case service window (Sec. III-E policy).
            let margin = t.t_rp + t.t_rc() + 8 * t.t_cmd;
            if channel.refresh_due() <= at + margin {
                let any_open = (0..channel.config().banks).any(|b| channel.open_row(b).is_some());
                let ready = if any_open {
                    let p = channel.earliest_precharge_all().max(floor);
                    channel.issue_precharge_all(p)?;
                    p + t.t_rp
                } else {
                    channel.earliest_precharge_all().max(floor)
                };
                let r = ready.max(channel.refresh_due());
                channel.issue_refresh_all(r)?;
                self.stats.refreshes += 1;
                floor = r + t.t_rfc;
                continue;
            }
            // First-touch classification drives the hit/miss statistics.
            if self.queue[idx].first_step.is_none() {
                self.queue[idx].first_step = Some(step);
                match step {
                    Step::Precharge => self.stats.row_conflicts += 1,
                    Step::Activate => self.stats.row_misses += 1,
                    Step::Column => self.stats.row_hits += 1,
                }
            }
            // Precharge/activate need only Copy fields; the Column step
            // takes ownership of the entry, so the write payload is moved
            // — never cloned — into the substrate.
            match step {
                Step::Precharge => {
                    let bank = self.queue[idx].req.bank;
                    channel.issue_precharge(at, bank)?;
                }
                Step::Activate => {
                    let (bank, row) = {
                        let r = &self.queue[idx].req;
                        (r.bank, r.row)
                    };
                    channel.issue_activate(at, bank, row)?;
                }
                Step::Column => {
                    let pending = self.queue.remove(idx).expect("idx is in range");
                    let r = pending.req;
                    let (issue_cycle, data) = match &r.write {
                        Some(data) => {
                            let c = channel.issue_column_write_external(at, r.bank, r.col, data)?;
                            (c, Vec::new())
                        }
                        None => channel.issue_column_read_external(at, r.bank, r.col)?,
                    };
                    channel.record_queue_latency(issue_cycle, issue_cycle - r.arrival);
                    completions.push(Completion {
                        id: r.id,
                        issue_cycle,
                        data_cycle: issue_cycle + t.t_aa + t.t_ccd,
                        data,
                        row_hit: pending.first_step == Some(Step::Column),
                    });
                    if self.policy == PagePolicy::Closed {
                        let p = channel.earliest_precharge(r.bank);
                        channel.issue_precharge(p, r.bank)?;
                    }
                }
            }
        }
        Ok(completions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn channel() -> Channel {
        let mut ch = Channel::new(DramConfig::hbm2e_like()).unwrap();
        ch.enable_audit();
        ch
    }

    fn read(id: u64, bank: usize, row: usize, col: usize) -> Request {
        Request {
            id,
            bank,
            row,
            col,
            write: None,
            arrival: 0,
        }
    }

    #[test]
    fn pin_mixed_trace_order_and_cycles() {
        let mut ch = channel();
        let mut mc = FrFcfs::new(PagePolicy::Open);
        // Mixed trace: hits (same row re-reads), misses (idle banks),
        // conflicts (other row, same bank), staggered arrivals.
        let reqs = [
            (0u64, 0usize, 5usize, 0usize, 0u64),
            (1, 0, 5, 1, 0),
            (2, 0, 9, 0, 0),
            (3, 1, 3, 2, 0),
            (4, 0, 5, 2, 10),
            (5, 2, 7, 0, 40),
            (6, 1, 4, 0, 40),
            (7, 2, 7, 3, 60),
            (8, 0, 9, 1, 80),
            (9, 3, 1, 0, 200),
        ];
        for &(id, bank, row, col, arrival) in &reqs {
            mc.enqueue(Request {
                id,
                bank,
                row,
                col,
                write: None,
                arrival,
            });
        }
        let done = mc.drain(&mut ch, 0).unwrap();
        let got: Vec<(u64, u64, bool)> = done
            .iter()
            .map(|c| (c.id, c.issue_cycle, c.row_hit))
            .collect();
        // Captured from the pre-optimization scheduler: the memoized scan
        // must reproduce this completion order, every issue cycle, every
        // hit flag, and the statistics exactly.
        assert_eq!(
            got,
            vec![
                (0, 14, false),
                (1, 18, true),
                (3, 22, false),
                (4, 26, true),
                (5, 54, false),
                (7, 60, true),
                (2, 64, false),
                (6, 72, false),
                (8, 80, true),
                (9, 214, false),
            ]
        );
        assert_eq!(
            mc.stats(),
            &SchedulerStats {
                row_hits: 4,
                row_misses: 4,
                row_conflicts: 2,
                refreshes: 0,
            }
        );
        assert_eq!(ch.audit().unwrap().validate(ch.timing()), vec![]);
    }

    #[test]
    fn single_read_completes_with_miss_latency() {
        let mut ch = channel();
        let t = *ch.timing();
        let mut mc = FrFcfs::new(PagePolicy::Open);
        mc.enqueue(read(1, 0, 10, 3));
        let done = mc.drain(&mut ch, 0).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 1);
        assert!(!done[0].row_hit);
        assert_eq!(done[0].issue_cycle, t.t_rcd, "ACT at 0, RD at tRCD");
        assert_eq!(mc.stats().row_misses, 1);
        assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
    }

    #[test]
    fn fr_fcfs_prefers_row_hits_over_older_conflicts() {
        let mut ch = channel();
        let t = *ch.timing();
        let mut mc = FrFcfs::new(PagePolicy::Open);
        // Oldest: row 5. Then a conflict (row 9, same bank). Then another
        // row-5 access that FR-FCFS should promote over the conflict.
        mc.enqueue(read(1, 0, 5, 0));
        mc.enqueue(read(2, 0, 9, 0));
        mc.enqueue(read(3, 0, 5, 1));
        let done = mc.drain(&mut ch, 0).unwrap();
        let order: Vec<u64> = done.iter().map(|c| c.id).collect();
        assert_eq!(order, vec![1, 3, 2], "row hit promoted: {order:?}");
        assert_eq!(mc.stats().row_hits, 1);
        assert_eq!(mc.stats().row_conflicts, 1);
        assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
    }

    #[test]
    fn bank_parallelism_beats_same_bank_serialization() {
        let run = |banks: [usize; 4]| {
            let mut ch = channel();
            let mut mc = FrFcfs::new(PagePolicy::Open);
            for (i, &b) in banks.iter().enumerate() {
                mc.enqueue(read(i as u64, b, i, 0));
            }
            let done = mc.drain(&mut ch, 0).unwrap();
            done.iter().map(|c| c.data_cycle).max().unwrap()
        };
        let parallel = run([0, 1, 2, 3]);
        let serial = run([0, 0, 0, 0]); // four different rows, one bank
        assert!(
            serial > 2 * parallel,
            "same-bank conflicts must serialize: {serial} vs {parallel}"
        );
    }

    #[test]
    fn closed_page_precharges_after_each_access() {
        let mut ch = channel();
        let mut mc = FrFcfs::new(PagePolicy::Closed);
        mc.enqueue(read(1, 2, 7, 0));
        mc.drain(&mut ch, 0).unwrap();
        assert_eq!(ch.open_row(2), None);
        // Open page would have left it open.
        let mut ch = channel();
        let mut mc = FrFcfs::new(PagePolicy::Open);
        mc.enqueue(read(1, 2, 7, 0));
        mc.drain(&mut ch, 0).unwrap();
        assert_eq!(ch.open_row(2), Some(7));
    }

    #[test]
    fn writes_store_data_and_reads_return_it() {
        let mut ch = channel();
        let mut mc = FrFcfs::new(PagePolicy::Open);
        mc.enqueue(Request {
            id: 1,
            bank: 4,
            row: 2,
            col: 6,
            write: Some(vec![0xABu8; 32]),
            arrival: 0,
        });
        mc.enqueue(read(2, 4, 2, 6));
        let done = mc.drain(&mut ch, 0).unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(done[1].data, vec![0xABu8; 32]);
        assert!(done[1].row_hit, "the read hits the row the write opened");
        assert_eq!(ch.audit().unwrap().validate(ch.timing()), vec![]);
    }

    #[test]
    fn long_drains_interpose_refresh_and_stay_legal() {
        let mut ch = channel();
        let t = *ch.timing();
        let mut mc = FrFcfs::new(PagePolicy::Closed);
        // 1000 row misses: even with 16-bank parallelism (tFAW-limited
        // to ~4 activations per 30 ns) this spans > tREFI.
        for i in 0..1000u64 {
            mc.enqueue(read(i, (i % 16) as usize, (i / 16) as usize, 0));
        }
        let done = mc.drain(&mut ch, 0).unwrap();
        assert_eq!(done.len(), 1000);
        assert!(mc.stats().refreshes >= 1, "{:?}", mc.stats());
        assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
    }

    #[test]
    fn arrival_times_gate_issue() {
        let mut ch = channel();
        let mut mc = FrFcfs::new(PagePolicy::Open);
        mc.enqueue(Request {
            id: 1,
            bank: 0,
            row: 0,
            col: 0,
            write: None,
            arrival: 5000,
        });
        let done = mc.drain(&mut ch, 0).unwrap();
        assert!(done[0].issue_cycle >= 5000);
    }

    #[test]
    fn back_to_back_hits_stream_at_tccd() {
        let mut ch = channel();
        let t = *ch.timing();
        let mut mc = FrFcfs::new(PagePolicy::Open);
        for i in 0..8u64 {
            mc.enqueue(read(i, 0, 0, i as usize));
        }
        let done = mc.drain(&mut ch, 0).unwrap();
        let issues: Vec<Cycle> = done.iter().map(|c| c.issue_cycle).collect();
        for w in issues.windows(2) {
            assert_eq!(w[1] - w[0], t.t_ccd, "hits stream at the column cadence");
        }
        assert_eq!(mc.stats().row_hits, 7);
    }

    #[test]
    fn drain_records_queue_latency_per_completion() {
        let mut ch = channel();
        let mut mc = FrFcfs::new(PagePolicy::Open);
        for i in 0..8u64 {
            mc.enqueue(read(i, 0, 0, i as usize));
        }
        let done = mc.drain(&mut ch, 0).unwrap();
        let s = ch.summary(done.iter().map(|c| c.data_cycle).max().unwrap());
        assert_eq!(s.queue_latency.count(), 8);
        // Every request arrived at 0, so waited == issue cycle; later
        // requests waited strictly longer than the first.
        assert_eq!(
            s.queue_latency.max(),
            done.iter().map(|c| c.issue_cycle).max().unwrap()
        );
    }
}
