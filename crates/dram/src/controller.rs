//! A conventional FR-FCFS memory controller over the channel model.
//!
//! The Newton paper's host still performs ordinary reads and writes
//! (inputs, outputs, the non-AiM data that may share banks with the
//! matrix), and its Ideal Non-PIM baseline is "any non-PIM architecture"
//! fed by a real memory controller. This module provides the classic
//! First-Ready, First-Come-First-Served scheduler over [`Channel`]:
//!
//! * requests that *hit* an open row go first (first-ready);
//! * among equals, the oldest request wins (FCFS);
//! * open-page or closed-page row-buffer management;
//! * refresh interposed at its deadline;
//! * per-request latency accounting and row-buffer hit statistics.
//!
//! The scheduler issues one primitive per step — always the pending
//! primitive with the earliest feasible cycle — so activations in one
//! bank naturally overlap column bursts in another, exactly the
//! bank-level parallelism conventional DRAM offers (Sec. II-A).
//!
//! # Timing engines
//!
//! Two schedulers produce that stream, selected by [`TimingEngine`] and
//! proven byte-identical against each other:
//!
//! * [`TimingEngine::Reference`]: the original full-queue rescan, with a
//!   persistent per-(bank, step) memo of `earliest_*` results that is
//!   invalidated *selectively* — an issue clears only the entries whose
//!   channel inputs it moved (the issuing bank; every bank's PRE/ACT
//!   after a row-bus slot, which also covers the tFAW window; every
//!   bank's column gate after a column-bus/data-bus slot).
//! * [`TimingEngine::EventSkipping`] (the default): a next-event
//!   structure. Per-bank candidate lists are maintained incrementally in
//!   arrival order; each round computes the shared scheduling floors
//!   once ([`Channel::scheduling_floors`]) and finds each bank's best
//!   candidate per primitive class with an early-exit scan, so a round
//!   costs O(banks) instead of O(queue).
//!
//! The `reference-timing` cargo feature flips the default engine, and the
//! `NEWTON_TIMING_ENGINE` environment variable overrides both — the
//! reference engine stays available as a byte-identity oracle in any
//! build.

use std::collections::VecDeque;

use crate::channel::Channel;
use crate::error::DramError;
use crate::timing::Cycle;

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PagePolicy {
    /// Leave rows open after access (bet on locality).
    #[default]
    Open,
    /// Precharge as soon as the access completes (bet against it).
    Closed,
}

/// Which drain algorithm the FR-FCFS controller runs. Both engines emit
/// byte-identical command streams, completions, and statistics; they
/// differ only in host-side work per scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimingEngine {
    /// Next-event scheduling: shared floors computed once per round plus
    /// per-bank candidate lists with early-exit scans. The default.
    EventSkipping,
    /// The original full-queue rescan (with memoized `earliest_*`
    /// queries), kept as the byte-identity oracle.
    Reference,
}

impl TimingEngine {
    /// The engine picked by build configuration and environment: the
    /// `reference-timing` cargo feature flips the default to
    /// [`TimingEngine::Reference`], and the `NEWTON_TIMING_ENGINE`
    /// environment variable (`"reference"` or `"event-skipping"`,
    /// case-insensitive; unknown values are ignored) overrides both.
    #[must_use]
    pub fn default_engine() -> TimingEngine {
        let base = if cfg!(feature = "reference-timing") {
            TimingEngine::Reference
        } else {
            TimingEngine::EventSkipping
        };
        match std::env::var("NEWTON_TIMING_ENGINE") {
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "reference" => TimingEngine::Reference,
                "event-skipping" | "event_skipping" | "eventskipping" => {
                    TimingEngine::EventSkipping
                }
                _ => base,
            },
            Err(_) => base,
        }
    }
}

impl Default for TimingEngine {
    fn default() -> TimingEngine {
        TimingEngine::default_engine()
    }
}

/// One host memory request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-chosen identifier, echoed in the [`Completion`].
    pub id: u64,
    /// Bank to access.
    pub bank: usize,
    /// Row within the bank.
    pub row: usize,
    /// Column I/O index.
    pub col: usize,
    /// `Some(data)` writes the column; `None` reads it.
    pub write: Option<Vec<u8>>,
    /// Cycle the request becomes visible to the controller.
    pub arrival: Cycle,
}

/// A completed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The request id.
    pub id: u64,
    /// Cycle the column command issued.
    pub issue_cycle: Cycle,
    /// Cycle the data beat completed (read data valid / write data
    /// consumed).
    pub data_cycle: Cycle,
    /// Read data (empty for writes).
    pub data: Vec<u8>,
    /// Whether the access hit an already-open row.
    pub row_hit: bool,
}

/// Scheduler statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that opened a row in an idle bank.
    pub row_misses: u64,
    /// Accesses that had to close a different row first.
    pub row_conflicts: u64,
    /// Refreshes interposed while draining.
    pub refreshes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Precharge,
    Activate,
    Column,
}

impl Step {
    /// Dense index for the per-(bank, step) memo table.
    fn index(self) -> usize {
        match self {
            Step::Precharge => 0,
            Step::Activate => 1,
            Step::Column => 2,
        }
    }
}

/// A queued request plus its first-touch classification (hit / miss /
/// conflict), fixed the first time the scheduler issues a primitive for
/// it.
#[derive(Debug, Clone)]
struct Pending {
    req: Request,
    first_step: Option<Step>,
}

/// The FR-FCFS controller. Owns its request queue; borrows the channel
/// per drain call so callers can interleave other uses.
#[derive(Debug, Default)]
pub struct FrFcfs {
    policy: PagePolicy,
    engine: TimingEngine,
    queue: VecDeque<Pending>,
    stats: SchedulerStats,
    /// Per-(bank, step) memo of `earliest_*` results for the reference
    /// drain, persistent across scheduling rounds: entries stay valid
    /// until an issue moves one of their channel inputs, at which point
    /// exactly the affected `(bank, step)` slots are cleared. Reused
    /// across drains to keep the loop allocation-free.
    earliest_memo: Vec<[Option<Cycle>; 3]>,
}

impl FrFcfs {
    /// Creates a controller with the given page policy and the default
    /// timing engine (see [`TimingEngine::default_engine`]).
    #[must_use]
    pub fn new(policy: PagePolicy) -> FrFcfs {
        FrFcfs {
            policy,
            ..FrFcfs::default()
        }
    }

    /// Creates a controller with an explicit timing engine.
    #[must_use]
    pub fn with_engine(policy: PagePolicy, engine: TimingEngine) -> FrFcfs {
        FrFcfs {
            policy,
            engine,
            ..FrFcfs::default()
        }
    }

    /// The page policy in use.
    #[must_use]
    pub fn policy(&self) -> PagePolicy {
        self.policy
    }

    /// The timing engine in use.
    #[must_use]
    pub fn engine(&self) -> TimingEngine {
        self.engine
    }

    /// Enqueues a request.
    pub fn enqueue(&mut self, request: Request) {
        self.queue.push_back(Pending {
            req: request,
            first_step: None,
        });
    }

    /// Pending request count.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Scheduler statistics so far.
    #[must_use]
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }

    /// The next primitive a request needs given the bank state, and
    /// whether the eventual column access will be a row hit.
    fn next_step(channel: &Channel, r: &Request) -> (Step, bool) {
        match channel.open_row(r.bank) {
            Some(open) if open == r.row => (Step::Column, true),
            Some(_) => (Step::Precharge, false),
            None => (Step::Activate, false),
        }
    }

    /// Earliest feasible cycle for a primitive on a bank (request-
    /// independent; the caller folds in arrival and the floor).
    fn earliest_raw(channel: &Channel, bank: usize, step: Step) -> Cycle {
        match step {
            Step::Precharge => channel.earliest_precharge(bank),
            Step::Activate => channel.earliest_activate(bank),
            Step::Column => channel.earliest_column_read(0, bank),
        }
    }

    /// Invalidates memo entries after a row-bus command on `bank`: the
    /// row-bus slot gates PRE and ACT on *every* bank (and an ACT also
    /// moves the tFAW window, which the same entries carry), while the
    /// issuing bank's own gates all moved.
    fn invalidate_row_bus(memo: &mut [[Option<Cycle>; 3]], bank: usize) {
        for m in memo.iter_mut() {
            m[Step::Precharge.index()] = None;
            m[Step::Activate.index()] = None;
        }
        memo[bank] = [None; 3];
    }

    /// Invalidates memo entries after a column command on `bank`: the
    /// column-bus slot and the data bus gate every bank's column access,
    /// and the issuing bank's own gates (tCCD, tRTP/tWR) moved.
    fn invalidate_column(memo: &mut [[Option<Cycle>; 3]], bank: usize) {
        for m in memo.iter_mut() {
            m[Step::Column.index()] = None;
        }
        memo[bank] = [None; 3];
    }

    /// Drains every queued request, returning completions in finish
    /// order. `start` lower-bounds all activity.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors (bad addresses; a correct scheduler
    /// cannot otherwise fail).
    pub fn drain(
        &mut self,
        channel: &mut Channel,
        start: Cycle,
    ) -> Result<Vec<Completion>, DramError> {
        match self.engine {
            TimingEngine::Reference => self.drain_reference(channel, start),
            TimingEngine::EventSkipping => self.drain_event_skipping(channel, start),
        }
    }

    /// The reference drain: full-queue rescan per round with a
    /// persistent, selectively invalidated `earliest_*` memo.
    fn drain_reference(
        &mut self,
        channel: &mut Channel,
        start: Cycle,
    ) -> Result<Vec<Completion>, DramError> {
        let t = *channel.timing();
        let mut completions = Vec::with_capacity(self.queue.len());
        let mut floor = start;
        self.earliest_memo.clear();
        self.earliest_memo.resize(channel.config().banks, [None; 3]);

        while !self.queue.is_empty() {
            // Pick the pending primitive with the earliest feasible cycle;
            // FR-FCFS tie-break: row hits first, then queue (arrival)
            // order. Memo entries persist across rounds — the issue arms
            // below clear exactly the (bank, step) slots they move.
            let memo = &mut self.earliest_memo;
            let mut best: Option<(usize, Step, Cycle, bool)> = None;
            for (idx, p) in self.queue.iter().enumerate() {
                let (step, hit) = Self::next_step(channel, &p.req);
                let slot = &mut memo[p.req.bank][step.index()];
                let e = match *slot {
                    Some(e) => e,
                    None => {
                        let e = Self::earliest_raw(channel, p.req.bank, step);
                        *slot = Some(e);
                        e
                    }
                };
                let at = e.max(p.req.arrival).max(floor);
                let better = match &best {
                    None => true,
                    Some((best_idx, _, best_at, best_hit)) => {
                        (at, !hit, idx) < (*best_at, !best_hit, *best_idx)
                    }
                };
                if better {
                    best = Some((idx, step, at, hit));
                }
            }
            let (idx, step, at, _) = best.expect("queue is non-empty");

            // Refresh first if the deadline would mature inside this
            // request's worst-case service window (Sec. III-E policy).
            let margin = t.t_rp + t.t_rc() + 8 * t.t_cmd;
            if channel.refresh_due() <= at + margin {
                let any_open = (0..channel.config().banks).any(|b| channel.open_row(b).is_some());
                let ready = if any_open {
                    let p = channel.earliest_precharge_all().max(floor);
                    channel.issue_precharge_all(p)?;
                    p + t.t_rp
                } else {
                    channel.earliest_precharge_all().max(floor)
                };
                let r = ready.max(channel.refresh_due());
                channel.issue_refresh_all(r)?;
                self.stats.refreshes += 1;
                floor = r + t.t_rfc;
                for m in &mut self.earliest_memo {
                    *m = [None; 3];
                }
                continue;
            }
            // First-touch classification drives the hit/miss statistics.
            if self.queue[idx].first_step.is_none() {
                self.queue[idx].first_step = Some(step);
                match step {
                    Step::Precharge => self.stats.row_conflicts += 1,
                    Step::Activate => self.stats.row_misses += 1,
                    Step::Column => self.stats.row_hits += 1,
                }
            }
            // Precharge/activate need only Copy fields; the Column step
            // takes ownership of the entry, so the write payload is moved
            // — never cloned — into the substrate.
            match step {
                Step::Precharge => {
                    let bank = self.queue[idx].req.bank;
                    channel.issue_precharge(at, bank)?;
                    Self::invalidate_row_bus(&mut self.earliest_memo, bank);
                }
                Step::Activate => {
                    let (bank, row) = {
                        let r = &self.queue[idx].req;
                        (r.bank, r.row)
                    };
                    channel.issue_activate(at, bank, row)?;
                    Self::invalidate_row_bus(&mut self.earliest_memo, bank);
                }
                Step::Column => {
                    let pending = self.queue.remove(idx).expect("idx is in range");
                    let r = pending.req;
                    let (issue_cycle, data) = match &r.write {
                        Some(data) => {
                            let c = channel.issue_column_write_external(at, r.bank, r.col, data)?;
                            (c, Vec::new())
                        }
                        None => channel.issue_column_read_external(at, r.bank, r.col)?,
                    };
                    channel.record_queue_latency(issue_cycle, issue_cycle - r.arrival);
                    completions.push(Completion {
                        id: r.id,
                        issue_cycle,
                        data_cycle: issue_cycle + t.t_aa + t.t_ccd,
                        data,
                        row_hit: pending.first_step == Some(Step::Column),
                    });
                    Self::invalidate_column(&mut self.earliest_memo, r.bank);
                    if self.policy == PagePolicy::Closed {
                        let p = channel.earliest_precharge(r.bank);
                        channel.issue_precharge(p, r.bank)?;
                        Self::invalidate_row_bus(&mut self.earliest_memo, r.bank);
                    }
                }
            }
        }
        Ok(completions)
    }

    /// The event-skipping drain. The queue moves into a slab indexed in
    /// arrival order; per-bank member lists keep those indices sorted, so
    /// the FCFS tie-break is a plain index comparison (the reference
    /// queue preserves relative order on removal, so slab-index
    /// comparisons reproduce its queue-index comparisons exactly). Each
    /// round computes the shared floors once, then every bank nominates
    /// its best candidate per primitive class: within a (bank, class)
    /// group the earliest cycle and the row-hit flag are shared, so the
    /// first member in arrival order whose arrival is at or below the
    /// shared base is unbeatable and the scan exits there.
    fn drain_event_skipping(
        &mut self,
        channel: &mut Channel,
        start: Cycle,
    ) -> Result<Vec<Completion>, DramError> {
        let t = *channel.timing();
        let n_banks = channel.config().banks;
        let mut completions = Vec::with_capacity(self.queue.len());
        let mut floor = start;

        let mut slab: Vec<Option<Pending>> = self.queue.drain(..).map(Some).collect();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_banks];
        for (seq, slot) in slab.iter().enumerate() {
            members[slot.as_ref().expect("freshly filled").req.bank].push(seq);
        }
        let mut remaining = slab.len();

        while remaining > 0 {
            let floors = channel.scheduling_floors();
            let mut best: Option<(usize, Step, Cycle, bool)> = None;
            let mut merge = |cand: Option<(Cycle, usize)>, step: Step, hit: bool| {
                if let Some((at, seq)) = cand {
                    let better = match &best {
                        None => true,
                        Some((best_seq, _, best_at, best_hit)) => {
                            (at, !hit, seq) < (*best_at, !best_hit, *best_seq)
                        }
                    };
                    if better {
                        best = Some((seq, step, at, hit));
                    }
                }
            };
            for (bank, list) in members.iter().enumerate() {
                if list.is_empty() {
                    continue;
                }
                let (act_gate, col_gate, pre_gate) = channel.bank_gates(bank);
                match channel.open_row(bank) {
                    None => {
                        // Idle bank: every member wants Activate.
                        let base = act_gate.max(floors.act[0]).max(floors.row_slot).max(floor);
                        let mut cand: Option<(Cycle, usize)> = None;
                        for &seq in list {
                            let arrival = slab[seq].as_ref().expect("member is live").req.arrival;
                            if arrival <= base {
                                cand = Some((base, seq));
                                break;
                            }
                            if cand.is_none_or(|(c_at, _)| arrival < c_at) {
                                cand = Some((arrival, seq));
                            }
                        }
                        merge(cand, Step::Activate, false);
                    }
                    Some(open) => {
                        // Open bank: members split into row hits (Column)
                        // and conflicts (Precharge).
                        let col_base = col_gate
                            .max(floors.col_slot)
                            .max(floors.col_data)
                            .max(floor);
                        let pre_base = pre_gate.max(floors.row_slot).max(floor);
                        let mut col: Option<(Cycle, usize)> = None;
                        let mut col_done = false;
                        let mut pre: Option<(Cycle, usize)> = None;
                        let mut pre_done = false;
                        for &seq in list {
                            let req = &slab[seq].as_ref().expect("member is live").req;
                            if req.row == open {
                                if col_done {
                                    continue;
                                }
                                if req.arrival <= col_base {
                                    col = Some((col_base, seq));
                                    col_done = true;
                                } else if col.is_none_or(|(at, _)| req.arrival < at) {
                                    col = Some((req.arrival, seq));
                                }
                            } else {
                                if pre_done {
                                    continue;
                                }
                                if req.arrival <= pre_base {
                                    pre = Some((pre_base, seq));
                                    pre_done = true;
                                } else if pre.is_none_or(|(at, _)| req.arrival < at) {
                                    pre = Some((req.arrival, seq));
                                }
                            }
                            if col_done && pre_done {
                                break;
                            }
                        }
                        merge(col, Step::Column, true);
                        merge(pre, Step::Precharge, false);
                    }
                }
            }
            let (seq, step, at, _) = best.expect("remaining > 0 members exist");
            let bank = slab[seq].as_ref().expect("chosen member is live").req.bank;
            debug_assert_eq!(
                at,
                Self::earliest_raw(channel, bank, step)
                    .max(
                        slab[seq]
                            .as_ref()
                            .expect("chosen member is live")
                            .req
                            .arrival
                    )
                    .max(floor),
                "floor decomposition must reproduce the channel's earliest_* query"
            );

            // Refresh interposition: identical policy to the reference.
            let margin = t.t_rp + t.t_rc() + 8 * t.t_cmd;
            if channel.refresh_due() <= at + margin {
                let any_open = (0..n_banks).any(|b| channel.open_row(b).is_some());
                let ready = if any_open {
                    let p = channel.earliest_precharge_all().max(floor);
                    channel.issue_precharge_all(p)?;
                    p + t.t_rp
                } else {
                    channel.earliest_precharge_all().max(floor)
                };
                let r = ready.max(channel.refresh_due());
                channel.issue_refresh_all(r)?;
                self.stats.refreshes += 1;
                floor = r + t.t_rfc;
                continue;
            }
            let pending = slab[seq].as_mut().expect("chosen member is live");
            if pending.first_step.is_none() {
                pending.first_step = Some(step);
                match step {
                    Step::Precharge => self.stats.row_conflicts += 1,
                    Step::Activate => self.stats.row_misses += 1,
                    Step::Column => self.stats.row_hits += 1,
                }
            }
            match step {
                Step::Precharge => {
                    channel.issue_precharge(at, bank)?;
                }
                Step::Activate => {
                    let row = pending.req.row;
                    channel.issue_activate(at, bank, row)?;
                }
                Step::Column => {
                    let pending = slab[seq].take().expect("chosen member is live");
                    let list = &mut members[bank];
                    let pos = list
                        .iter()
                        .position(|&s| s == seq)
                        .expect("member list tracks the slab");
                    list.remove(pos);
                    remaining -= 1;
                    let r = pending.req;
                    let (issue_cycle, data) = match &r.write {
                        Some(data) => {
                            let c = channel.issue_column_write_external(at, r.bank, r.col, data)?;
                            (c, Vec::new())
                        }
                        None => channel.issue_column_read_external(at, r.bank, r.col)?,
                    };
                    channel.record_queue_latency(issue_cycle, issue_cycle - r.arrival);
                    completions.push(Completion {
                        id: r.id,
                        issue_cycle,
                        data_cycle: issue_cycle + t.t_aa + t.t_ccd,
                        data,
                        row_hit: pending.first_step == Some(Step::Column),
                    });
                    if self.policy == PagePolicy::Closed {
                        let p = channel.earliest_precharge(r.bank);
                        channel.issue_precharge(p, r.bank)?;
                    }
                }
            }
        }
        Ok(completions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn channel() -> Channel {
        let mut ch = Channel::new(DramConfig::hbm2e_like()).unwrap();
        ch.enable_audit();
        ch
    }

    fn read(id: u64, bank: usize, row: usize, col: usize) -> Request {
        Request {
            id,
            bank,
            row,
            col,
            write: None,
            arrival: 0,
        }
    }

    const ENGINES: [TimingEngine; 2] = [TimingEngine::Reference, TimingEngine::EventSkipping];

    #[test]
    fn pin_mixed_trace_order_and_cycles() {
        for engine in ENGINES {
            let mut ch = channel();
            let mut mc = FrFcfs::with_engine(PagePolicy::Open, engine);
            // Mixed trace: hits (same row re-reads), misses (idle banks),
            // conflicts (other row, same bank), staggered arrivals.
            let reqs = [
                (0u64, 0usize, 5usize, 0usize, 0u64),
                (1, 0, 5, 1, 0),
                (2, 0, 9, 0, 0),
                (3, 1, 3, 2, 0),
                (4, 0, 5, 2, 10),
                (5, 2, 7, 0, 40),
                (6, 1, 4, 0, 40),
                (7, 2, 7, 3, 60),
                (8, 0, 9, 1, 80),
                (9, 3, 1, 0, 200),
            ];
            for &(id, bank, row, col, arrival) in &reqs {
                mc.enqueue(Request {
                    id,
                    bank,
                    row,
                    col,
                    write: None,
                    arrival,
                });
            }
            let done = mc.drain(&mut ch, 0).unwrap();
            let got: Vec<(u64, u64, bool)> = done
                .iter()
                .map(|c| (c.id, c.issue_cycle, c.row_hit))
                .collect();
            // Captured from the pre-optimization scheduler: both engines
            // must reproduce this completion order, every issue cycle,
            // every hit flag, and the statistics exactly.
            assert_eq!(
                got,
                vec![
                    (0, 14, false),
                    (1, 18, true),
                    (3, 22, false),
                    (4, 26, true),
                    (5, 54, false),
                    (7, 60, true),
                    (2, 64, false),
                    (6, 72, false),
                    (8, 80, true),
                    (9, 214, false),
                ],
                "engine {engine:?}"
            );
            assert_eq!(
                mc.stats(),
                &SchedulerStats {
                    row_hits: 4,
                    row_misses: 4,
                    row_conflicts: 2,
                    refreshes: 0,
                },
                "engine {engine:?}"
            );
            assert_eq!(ch.audit().unwrap().validate(ch.timing()), vec![]);
        }
    }

    /// Deterministic splitmix64 for reproducible mixed workloads.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn random_mixed_requests(seed: u64, n: usize) -> Vec<Request> {
        let mut s = seed;
        let mut arrival = 0u64;
        (0..n as u64)
            .map(|id| {
                let r = mix(&mut s);
                arrival += r % 7; // slowly advancing, frequently equal
                Request {
                    id,
                    bank: (r >> 8) as usize % 16,
                    row: (r >> 16) as usize % 6,
                    col: (r >> 24) as usize % 32,
                    write: if r & 1 == 0 {
                        Some(vec![(r >> 32) as u8; 32])
                    } else {
                        None
                    },
                    arrival,
                }
            })
            .collect()
    }

    /// Satellite regression for the memoized reference drain and the
    /// event-skipping engine: on a long mixed read/write queue (with
    /// refresh interposition) every engine produces identical
    /// completions, cycles, data, scheduler stats, substrate stats, and
    /// a clean audit.
    #[test]
    fn engines_identical_on_long_mixed_read_write_queue() {
        for policy in [PagePolicy::Open, PagePolicy::Closed] {
            for seed in [1u64, 42, 9_000_000_000] {
                let mut results = Vec::new();
                for engine in ENGINES {
                    let mut ch = channel();
                    let mut mc = FrFcfs::with_engine(policy, engine);
                    for r in random_mixed_requests(seed, 1500) {
                        mc.enqueue(r);
                    }
                    let done = mc.drain(&mut ch, 0).unwrap();
                    assert_eq!(done.len(), 1500);
                    assert_eq!(ch.audit().unwrap().validate(ch.timing()), vec![]);
                    results.push((done, *mc.stats(), *ch.stats()));
                }
                let (ref_done, ref_stats, ref_ch) = &results[0];
                let (ev_done, ev_stats, ev_ch) = &results[1];
                assert_eq!(ref_done, ev_done, "policy {policy:?} seed {seed}");
                assert_eq!(ref_stats, ev_stats, "policy {policy:?} seed {seed}");
                assert_eq!(ref_ch, ev_ch, "policy {policy:?} seed {seed}");
                assert!(
                    ref_stats.refreshes >= 1,
                    "long queues must interpose refresh: {ref_stats:?}"
                );
            }
        }
    }

    #[test]
    fn with_engine_overrides_the_default() {
        let mc = FrFcfs::with_engine(PagePolicy::Open, TimingEngine::Reference);
        assert_eq!(mc.engine(), TimingEngine::Reference);
        let mc = FrFcfs::with_engine(PagePolicy::Closed, TimingEngine::EventSkipping);
        assert_eq!(mc.engine(), TimingEngine::EventSkipping);
        assert_eq!(
            FrFcfs::new(PagePolicy::Open).engine(),
            TimingEngine::default_engine()
        );
    }

    #[test]
    fn single_read_completes_with_miss_latency() {
        let mut ch = channel();
        let t = *ch.timing();
        let mut mc = FrFcfs::new(PagePolicy::Open);
        mc.enqueue(read(1, 0, 10, 3));
        let done = mc.drain(&mut ch, 0).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 1);
        assert!(!done[0].row_hit);
        assert_eq!(done[0].issue_cycle, t.t_rcd, "ACT at 0, RD at tRCD");
        assert_eq!(mc.stats().row_misses, 1);
        assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
    }

    #[test]
    fn fr_fcfs_prefers_row_hits_over_older_conflicts() {
        for engine in ENGINES {
            let mut ch = channel();
            let t = *ch.timing();
            let mut mc = FrFcfs::with_engine(PagePolicy::Open, engine);
            // Oldest: row 5. Then a conflict (row 9, same bank). Then another
            // row-5 access that FR-FCFS should promote over the conflict.
            mc.enqueue(read(1, 0, 5, 0));
            mc.enqueue(read(2, 0, 9, 0));
            mc.enqueue(read(3, 0, 5, 1));
            let done = mc.drain(&mut ch, 0).unwrap();
            let order: Vec<u64> = done.iter().map(|c| c.id).collect();
            assert_eq!(order, vec![1, 3, 2], "row hit promoted: {order:?}");
            assert_eq!(mc.stats().row_hits, 1);
            assert_eq!(mc.stats().row_conflicts, 1);
            assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
        }
    }

    #[test]
    fn bank_parallelism_beats_same_bank_serialization() {
        let run = |banks: [usize; 4]| {
            let mut ch = channel();
            let mut mc = FrFcfs::new(PagePolicy::Open);
            for (i, &b) in banks.iter().enumerate() {
                mc.enqueue(read(i as u64, b, i, 0));
            }
            let done = mc.drain(&mut ch, 0).unwrap();
            done.iter().map(|c| c.data_cycle).max().unwrap()
        };
        let parallel = run([0, 1, 2, 3]);
        let serial = run([0, 0, 0, 0]); // four different rows, one bank
        assert!(
            serial > 2 * parallel,
            "same-bank conflicts must serialize: {serial} vs {parallel}"
        );
    }

    #[test]
    fn closed_page_precharges_after_each_access() {
        for engine in ENGINES {
            let mut ch = channel();
            let mut mc = FrFcfs::with_engine(PagePolicy::Closed, engine);
            mc.enqueue(read(1, 2, 7, 0));
            mc.drain(&mut ch, 0).unwrap();
            assert_eq!(ch.open_row(2), None);
            // Open page would have left it open.
            let mut ch = channel();
            let mut mc = FrFcfs::with_engine(PagePolicy::Open, engine);
            mc.enqueue(read(1, 2, 7, 0));
            mc.drain(&mut ch, 0).unwrap();
            assert_eq!(ch.open_row(2), Some(7));
        }
    }

    #[test]
    fn writes_store_data_and_reads_return_it() {
        for engine in ENGINES {
            let mut ch = channel();
            let mut mc = FrFcfs::with_engine(PagePolicy::Open, engine);
            mc.enqueue(Request {
                id: 1,
                bank: 4,
                row: 2,
                col: 6,
                write: Some(vec![0xABu8; 32]),
                arrival: 0,
            });
            mc.enqueue(read(2, 4, 2, 6));
            let done = mc.drain(&mut ch, 0).unwrap();
            assert_eq!(done.len(), 2);
            assert_eq!(done[1].data, vec![0xABu8; 32]);
            assert!(done[1].row_hit, "the read hits the row the write opened");
            assert_eq!(ch.audit().unwrap().validate(ch.timing()), vec![]);
        }
    }

    #[test]
    fn long_drains_interpose_refresh_and_stay_legal() {
        for engine in ENGINES {
            let mut ch = channel();
            let t = *ch.timing();
            let mut mc = FrFcfs::with_engine(PagePolicy::Closed, engine);
            // 1000 row misses: even with 16-bank parallelism (tFAW-limited
            // to ~4 activations per 30 ns) this spans > tREFI.
            for i in 0..1000u64 {
                mc.enqueue(read(i, (i % 16) as usize, (i / 16) as usize, 0));
            }
            let done = mc.drain(&mut ch, 0).unwrap();
            assert_eq!(done.len(), 1000);
            assert!(mc.stats().refreshes >= 1, "{:?}", mc.stats());
            assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
        }
    }

    #[test]
    fn arrival_times_gate_issue() {
        for engine in ENGINES {
            let mut ch = channel();
            let mut mc = FrFcfs::with_engine(PagePolicy::Open, engine);
            mc.enqueue(Request {
                id: 1,
                bank: 0,
                row: 0,
                col: 0,
                write: None,
                arrival: 5000,
            });
            let done = mc.drain(&mut ch, 0).unwrap();
            assert!(done[0].issue_cycle >= 5000);
        }
    }

    #[test]
    fn back_to_back_hits_stream_at_tccd() {
        for engine in ENGINES {
            let mut ch = channel();
            let t = *ch.timing();
            let mut mc = FrFcfs::with_engine(PagePolicy::Open, engine);
            for i in 0..8u64 {
                mc.enqueue(read(i, 0, 0, i as usize));
            }
            let done = mc.drain(&mut ch, 0).unwrap();
            let issues: Vec<Cycle> = done.iter().map(|c| c.issue_cycle).collect();
            for w in issues.windows(2) {
                assert_eq!(w[1] - w[0], t.t_ccd, "hits stream at the column cadence");
            }
            assert_eq!(mc.stats().row_hits, 7);
        }
    }

    #[test]
    fn drain_records_queue_latency_per_completion() {
        let mut ch = channel();
        let mut mc = FrFcfs::new(PagePolicy::Open);
        for i in 0..8u64 {
            mc.enqueue(read(i, 0, 0, i as usize));
        }
        let done = mc.drain(&mut ch, 0).unwrap();
        let s = ch.summary(done.iter().map(|c| c.data_cycle).max().unwrap());
        assert_eq!(s.queue_latency.count(), 8);
        // Every request arrived at 0, so waited == issue cycle; later
        // requests waited strictly longer than the first.
        assert_eq!(
            s.queue_latency.max(),
            done.iter().map(|c| c.issue_cycle).max().unwrap()
        );
    }
}
