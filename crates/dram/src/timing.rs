//! DRAM timing parameters and their cycle-domain derivation.
//!
//! Parameters are specified in nanoseconds (the unit DRAM datasheets and the
//! paper's Table III use) and converted to integer [`Cycle`]s of the command
//! clock with ceiling rounding, as a real memory controller does.
//!
//! Table III of the paper discloses tRP = tRCD = 14 ns, tRAS = 33 ns, and a
//! tAA range of 22–29 ns; the remaining values are proprietary. The
//! [`TimingParams::hbm2e_like`] preset fills the gaps with public
//! HBM2/HBM2E-class values chosen so the paper's own analytical model
//! (Sec. III-F) reproduces its published 9.8× speedup prediction — see
//! DESIGN.md §2 for the derivation.

use crate::error::DramError;

/// A point in simulated time, in integer command-clock cycles.
pub type Cycle = u64;

/// DRAM timing parameters in nanoseconds.
///
/// Use [`TimingParams::hbm2e_like`] for the paper's configuration, then
/// derive integer-cycle values with [`TimingParams::to_cycles`].
///
/// # Example
///
/// ```
/// use newton_dram::TimingParams;
/// let t = TimingParams::hbm2e_like();
/// let cyc = t.to_cycles().unwrap();
/// assert_eq!(cyc.t_rcd, 14);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimingParams {
    /// Command-clock period. All other parameters are ceiling-divided by
    /// this to obtain cycles.
    pub tck_ns: f64,
    /// Row-to-column delay: ACT to first column command on the same bank.
    pub t_rcd_ns: f64,
    /// Row precharge time: PRE to ACT on the same bank.
    pub t_rp_ns: f64,
    /// Row active time: ACT to PRE on the same bank.
    pub t_ras_ns: f64,
    /// Column-to-column delay: successive column accesses on the same bank
    /// group / channel (the data-burst cadence).
    pub t_ccd_ns: f64,
    /// Activate-to-activate delay between *different* banks.
    pub t_rrd_ns: f64,
    /// Four-activation window: at most four ACTs in any window of this
    /// length (rank-wide power constraint, Sec. III-D).
    pub t_faw_ns: f64,
    /// Read-to-precharge delay on the same bank.
    pub t_rtp_ns: f64,
    /// Write recovery: end of write data to PRE on the same bank.
    pub t_wr_ns: f64,
    /// Column access latency (CAS latency / tAA): column command to first
    /// data beat.
    pub t_aa_ns: f64,
    /// Average periodic refresh interval.
    pub t_refi_ns: f64,
    /// Refresh cycle time: duration an all-bank refresh occupies the rank.
    pub t_rfc_ns: f64,
    /// Command-bus slot: minimum spacing between any two commands
    /// ("DRAM commands must be separated by a specified delay (e.g., 4
    /// cycles)", Sec. III-D). Expressed in nanoseconds for symmetry.
    pub t_cmd_ns: f64,
}

impl TimingParams {
    /// The paper's HBM2E-like configuration (Table III plus public
    /// HBM2E-class values for undisclosed parameters).
    ///
    /// * Disclosed by Table III: tRP = tRCD = 14 ns, tRAS = 33 ns,
    ///   tAA ∈ [22, 29] ns (we use 25 ns, mid-range).
    /// * Chosen (public HBM2E class): tCK = 1 ns, tCCD = 4 ns per 256-bit
    ///   column I/O, tRRD = 4 ns, tFAW = 30 ns, tRTP = 6 ns, tWR = 15 ns,
    ///   tREFI = 3900 ns, tRFC = 350 ns, command slot = 4 ns.
    #[must_use]
    pub fn hbm2e_like() -> TimingParams {
        TimingParams {
            tck_ns: 1.0,
            t_rcd_ns: 14.0,
            t_rp_ns: 14.0,
            t_ras_ns: 33.0,
            t_ccd_ns: 4.0,
            t_rrd_ns: 4.0,
            t_faw_ns: 30.0,
            t_rtp_ns: 6.0,
            t_wr_ns: 15.0,
            t_aa_ns: 25.0,
            t_refi_ns: 3900.0,
            t_rfc_ns: 350.0,
            t_cmd_ns: 4.0,
        }
    }

    /// The same configuration with Newton's aggressive tFAW reduction
    /// (Sec. III-D: stronger internal voltage generators shorten recovery;
    /// "improving tFAW comes with the cost of higher die area").
    ///
    /// 22 ns reproduces the paper's analytical-model speedup of ≈ 9.8×
    /// over Ideal Non-PIM at 16 banks (see `newton-model::perf`).
    #[must_use]
    pub fn hbm2e_like_aggressive_tfaw() -> TimingParams {
        TimingParams {
            t_faw_ns: 22.0,
            ..TimingParams::hbm2e_like()
        }
    }

    /// A GDDR6-class device (the family SK hynix's production AiM chip,
    /// GDDR6-AiM, eventually shipped in). Shorter column cadence and
    /// command slot, slightly longer core timings than HBM2E.
    ///
    /// Values are public-datasheet-class, for the Sec. III-E "other DRAM
    /// families" what-if — not a calibrated GDDR6-AiM model.
    #[must_use]
    pub fn gddr6_like() -> TimingParams {
        TimingParams {
            tck_ns: 1.0,
            t_rcd_ns: 18.0,
            t_rp_ns: 18.0,
            t_ras_ns: 32.0,
            t_ccd_ns: 2.0,
            t_rrd_ns: 6.0,
            t_faw_ns: 24.0,
            t_rtp_ns: 8.0,
            t_wr_ns: 18.0,
            t_aa_ns: 20.0,
            t_refi_ns: 1900.0,
            t_rfc_ns: 280.0,
            t_cmd_ns: 2.0,
        }
    }

    /// An LPDDR4-class device: fewer banks, slower column cadence, longer
    /// activation-rate windows (mobile power limits).
    #[must_use]
    pub fn lpddr4_like() -> TimingParams {
        TimingParams {
            tck_ns: 1.0,
            t_rcd_ns: 18.0,
            t_rp_ns: 21.0,
            t_ras_ns: 42.0,
            t_ccd_ns: 8.0,
            t_rrd_ns: 10.0,
            t_faw_ns: 40.0,
            t_rtp_ns: 8.0,
            t_wr_ns: 18.0,
            t_aa_ns: 28.0,
            t_refi_ns: 3904.0,
            t_rfc_ns: 210.0,
            t_cmd_ns: 8.0,
        }
    }

    /// A DDR4-class device.
    #[must_use]
    pub fn ddr4_like() -> TimingParams {
        TimingParams {
            tck_ns: 1.0,
            t_rcd_ns: 14.0,
            t_rp_ns: 14.0,
            t_ras_ns: 32.0,
            t_ccd_ns: 5.0,
            t_rrd_ns: 5.0,
            t_faw_ns: 30.0,
            t_rtp_ns: 8.0,
            t_wr_ns: 15.0,
            t_aa_ns: 14.0,
            t_refi_ns: 7800.0,
            t_rfc_ns: 350.0,
            t_cmd_ns: 5.0,
        }
    }

    /// Converts all parameters to integer cycles with ceiling rounding.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if any parameter is negative,
    /// non-finite, or if `tck_ns` is not strictly positive, or if derived
    /// relationships are inconsistent (e.g. `t_ras < t_rcd`).
    pub fn to_cycles(&self) -> Result<Timing, DramError> {
        if !(self.tck_ns.is_finite() && self.tck_ns > 0.0) {
            return Err(DramError::InvalidConfig(format!(
                "tCK must be positive and finite, got {}",
                self.tck_ns
            )));
        }
        let conv = |name: &str, ns: f64| -> Result<Cycle, DramError> {
            if !ns.is_finite() || ns < 0.0 {
                return Err(DramError::InvalidConfig(format!(
                    "{name} must be non-negative and finite, got {ns}"
                )));
            }
            Ok((ns / self.tck_ns).ceil() as Cycle)
        };
        let t = Timing {
            t_rcd: conv("tRCD", self.t_rcd_ns)?,
            t_rp: conv("tRP", self.t_rp_ns)?,
            t_ras: conv("tRAS", self.t_ras_ns)?,
            t_ccd: conv("tCCD", self.t_ccd_ns)?.max(1),
            t_rrd: conv("tRRD", self.t_rrd_ns)?.max(1),
            t_faw: conv("tFAW", self.t_faw_ns)?,
            t_rtp: conv("tRTP", self.t_rtp_ns)?,
            t_wr: conv("tWR", self.t_wr_ns)?,
            t_aa: conv("tAA", self.t_aa_ns)?,
            t_refi: conv("tREFI", self.t_refi_ns)?,
            t_rfc: conv("tRFC", self.t_rfc_ns)?,
            t_cmd: conv("tCMD", self.t_cmd_ns)?.max(1),
            tck_ns: self.tck_ns,
        };
        if t.t_ras < t.t_rcd {
            return Err(DramError::InvalidConfig(format!(
                "tRAS ({}) must be >= tRCD ({})",
                t.t_ras, t.t_rcd
            )));
        }
        if t.t_faw < t.t_rrd {
            return Err(DramError::InvalidConfig(format!(
                "tFAW ({}) must be >= tRRD ({})",
                t.t_faw, t.t_rrd
            )));
        }
        if t.t_refi > 0 && t.t_rfc >= t.t_refi {
            return Err(DramError::InvalidConfig(format!(
                "tRFC ({}) must be < tREFI ({})",
                t.t_rfc, t.t_refi
            )));
        }
        Ok(t)
    }
}

impl Default for TimingParams {
    /// Defaults to the paper's HBM2E-like configuration.
    fn default() -> TimingParams {
        TimingParams::hbm2e_like()
    }
}

/// Integer-cycle timing values derived from [`TimingParams`].
///
/// Field meanings match the corresponding `*_ns` fields of
/// [`TimingParams`]; see those docs.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)]
pub struct Timing {
    pub t_rcd: Cycle,
    pub t_rp: Cycle,
    pub t_ras: Cycle,
    pub t_ccd: Cycle,
    pub t_rrd: Cycle,
    pub t_faw: Cycle,
    pub t_rtp: Cycle,
    pub t_wr: Cycle,
    pub t_aa: Cycle,
    pub t_refi: Cycle,
    pub t_rfc: Cycle,
    pub t_cmd: Cycle,
    /// Command-clock period in nanoseconds (for converting results back to
    /// wall-clock time).
    pub tck_ns: f64,
}

impl Timing {
    /// Row cycle time tRC = tRAS + tRP: minimum ACT-to-ACT on one bank.
    #[must_use]
    pub fn t_rc(&self) -> Cycle {
        self.t_ras + self.t_rp
    }

    /// Cadence of a saturated internal column stream: successive ganged
    /// COMP-style column commands are spaced by the larger of the bank
    /// column cadence (tCCD) and the command-bus slot (tCMD). This is the
    /// event-skipping cursor step for the AiM COMP fast path.
    #[must_use]
    pub fn col_step(&self) -> Cycle {
        self.t_ccd.max(self.t_cmd)
    }

    /// Converts a cycle count to nanoseconds.
    #[must_use]
    pub fn cycles_to_ns(&self, cycles: Cycle) -> f64 {
        cycles as f64 * self.tck_ns
    }

    /// Converts a cycle count to seconds.
    #[must_use]
    pub fn cycles_to_seconds(&self, cycles: Cycle) -> f64 {
        self.cycles_to_ns(cycles) * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm2e_preset_matches_table_iii_disclosures() {
        let t = TimingParams::hbm2e_like();
        assert_eq!(t.t_rcd_ns, 14.0);
        assert_eq!(t.t_rp_ns, 14.0);
        assert_eq!(t.t_ras_ns, 33.0);
        assert!(
            (22.0..=29.0).contains(&t.t_aa_ns),
            "tAA within Table III range"
        );
    }

    #[test]
    fn aggressive_tfaw_only_changes_tfaw() {
        let base = TimingParams::hbm2e_like();
        let aggr = TimingParams::hbm2e_like_aggressive_tfaw();
        assert!(aggr.t_faw_ns < base.t_faw_ns);
        assert_eq!(aggr.t_rcd_ns, base.t_rcd_ns);
        assert_eq!(aggr.t_ccd_ns, base.t_ccd_ns);
    }

    #[test]
    fn conversion_uses_ceiling_rounding() {
        let mut p = TimingParams::hbm2e_like();
        p.tck_ns = 0.8;
        let t = p.to_cycles().unwrap();
        // 14 / 0.8 = 17.5 -> 18
        assert_eq!(t.t_rcd, 18);
        // 33 / 0.8 = 41.25 -> 42
        assert_eq!(t.t_ras, 42);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut p = TimingParams::hbm2e_like();
        p.tck_ns = 0.0;
        assert!(p.to_cycles().is_err());

        let mut p = TimingParams::hbm2e_like();
        p.t_rcd_ns = -1.0;
        assert!(p.to_cycles().is_err());

        let mut p = TimingParams::hbm2e_like();
        p.t_ras_ns = 5.0; // < tRCD
        assert!(p.to_cycles().is_err());

        let mut p = TimingParams::hbm2e_like();
        p.t_faw_ns = 1.0; // < tRRD
        assert!(p.to_cycles().is_err());

        let mut p = TimingParams::hbm2e_like();
        p.t_rfc_ns = 5000.0; // >= tREFI
        assert!(p.to_cycles().is_err());
    }

    #[test]
    fn derived_trc_and_time_conversions() {
        let t = TimingParams::hbm2e_like().to_cycles().unwrap();
        assert_eq!(t.t_rc(), t.t_ras + t.t_rp);
        assert_eq!(t.cycles_to_ns(100), 100.0);
        assert_eq!(t.cycles_to_seconds(1_000_000_000), 1.0);
    }

    #[test]
    fn default_is_hbm2e_like() {
        assert_eq!(TimingParams::default(), TimingParams::hbm2e_like());
    }
}
