//! SECDED (72,64) extended-Hamming code over 64-bit storage words.
//!
//! Newton computes on real DRAM cells, and a DRAM maker ships nothing
//! without an error-correction story: every 64-bit word of a row is
//! protected by 8 check bits — 7 positional Hamming parities plus one
//! overall parity — giving single-error correction and double-error
//! detection (SECDED), the standard on-die ECC geometry for HBM2E-class
//! parts.
//!
//! Construction: the 64 data bits occupy codeword positions `1..=71`
//! skipping the powers of two; parity bit `j` (stored at check-byte bit
//! `j`, codeword position `2^j`) covers every position with bit `j` set.
//! Check-byte bit 7 is the overall parity of the other 71 bits, which is
//! what upgrades plain Hamming SEC to SECDED.
//!
//! Decoding a received `(data, check)` pair:
//!
//! * syndrome 0, overall parity even → clean;
//! * overall parity odd → exactly one bit flipped: the syndrome names its
//!   codeword position (0 = the overall-parity bit itself), so the error
//!   is corrected in data or check;
//! * syndrome ≠ 0 with even overall parity → an even number of flips:
//!   **detected uncorrectable** (reported, never silently miscorrected).

use crate::timing::Cycle;

/// Bytes of data protected by one check byte.
pub const WORD_BYTES: usize = 8;

/// Codeword position of data bit `i`: the `(i+1)`-th non-power-of-two
/// position in `1..=71`.
const fn data_positions() -> [u8; 64] {
    let mut out = [0u8; 64];
    let mut pos = 1u8;
    let mut i = 0;
    while i < 64 {
        if !pos.is_power_of_two() {
            out[i] = pos;
            i += 1;
        }
        pos += 1;
    }
    out
}

const POSITIONS: [u8; 64] = data_positions();

/// `MASKS[j]`: the data bits whose codeword position has bit `j` set —
/// the coverage mask of parity bit `j`.
const fn parity_masks() -> [u64; 7] {
    let mut masks = [0u64; 7];
    let mut i = 0;
    while i < 64 {
        let pos = POSITIONS[i];
        let mut j = 0;
        while j < 7 {
            if pos & (1 << j) != 0 {
                masks[j] |= 1 << i;
            }
            j += 1;
        }
        i += 1;
    }
    masks
}

const MASKS: [u64; 7] = parity_masks();

/// Data-bit index for codeword position `p`, or `-1` when `p` is a parity
/// position or out of range.
const fn position_to_bit() -> [i8; 128] {
    let mut rev = [-1i8; 128];
    let mut i = 0;
    while i < 64 {
        rev[POSITIONS[i] as usize] = i as i8;
        i += 1;
    }
    rev
}

const REV: [i8; 128] = position_to_bit();

/// Encodes one 64-bit word into its SECDED check byte.
#[inline]
#[must_use]
pub fn encode(data: u64) -> u8 {
    let mut check = 0u8;
    let mut ones = data.count_ones();
    for (j, mask) in MASKS.iter().enumerate() {
        let p = ((data & mask).count_ones() & 1) as u8;
        check |= p << j;
        ones += u32::from(p);
    }
    // Bit 7: overall parity over the 64 data bits and 7 parity bits, so
    // the full 72-bit codeword always has even parity.
    check | (((ones & 1) as u8) << 7)
}

/// Outcome of decoding one `(data, check)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Secded {
    /// No error.
    Clean,
    /// A single data bit was flipped; `data` is the corrected word.
    CorrectedData {
        /// The corrected 64-bit word.
        data: u64,
        /// The data-bit index that was flipped.
        bit: u32,
    },
    /// A single check bit was flipped; `check` is the corrected byte (the
    /// data word was intact).
    CorrectedCheck {
        /// The corrected check byte.
        check: u8,
    },
    /// An even number of flips (or an aliased multi-bit pattern): detected
    /// but not correctable.
    Uncorrectable,
}

/// Decodes a received `(data, check)` pair.
#[inline]
#[must_use]
pub fn decode(data: u64, check: u8) -> Secded {
    let mut syndrome = 0u8;
    for (j, mask) in MASKS.iter().enumerate() {
        let p = ((data & mask).count_ones() & 1) as u8;
        syndrome |= (p ^ ((check >> j) & 1)) << j;
    }
    let overall_even = (data.count_ones() + u32::from(check).count_ones()) & 1 == 0;
    match (syndrome, overall_even) {
        (0, true) => Secded::Clean,
        // Overall parity flipped alone: the error is check-byte bit 7.
        (0, false) => Secded::CorrectedCheck {
            check: check ^ 0x80,
        },
        (s, false) => {
            if s.is_power_of_two() {
                // A parity bit at position 2^j flipped; data is intact.
                let j = s.trailing_zeros();
                Secded::CorrectedCheck {
                    check: check ^ (1 << j),
                }
            } else {
                match REV.get(s as usize).copied().unwrap_or(-1) {
                    b if b >= 0 => {
                        let bit = b as u32;
                        Secded::CorrectedData {
                            data: data ^ (1u64 << bit),
                            bit,
                        }
                    }
                    // Syndrome names no valid position: aliased multi-bit.
                    _ => Secded::Uncorrectable,
                }
            }
        }
        // Nonzero syndrome with even overall parity: double-bit error.
        (_, true) => Secded::Uncorrectable,
    }
}

/// Per-bank ECC event counters, accumulated by the channel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EccCounters {
    /// Corrected single-bit errors per bank.
    pub corrected: Vec<u64>,
    /// Detected-uncorrectable errors per bank.
    pub uncorrectable: Vec<u64>,
}

impl EccCounters {
    /// Zeroed counters for `banks` banks.
    #[must_use]
    pub fn new(banks: usize) -> EccCounters {
        EccCounters {
            corrected: vec![0; banks],
            uncorrectable: vec![0; banks],
        }
    }
}

/// A retention-decay horizon: rows left unrefreshed past
/// `refi_multiple × tREFI` are considered stale (candidates for decay
/// under a fault campaign).
#[must_use]
pub fn retention_deadline(last_refresh: Cycle, t_refi: Cycle, refi_multiple: u64) -> Cycle {
    last_refresh.saturating_add(t_refi.saturating_mul(refi_multiple))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_skip_powers_of_two_and_cover_64_bits() {
        for (i, &p) in POSITIONS.iter().enumerate() {
            assert!(!p.is_power_of_two(), "data bit {i} at parity position {p}");
            assert!((3..=71).contains(&p));
        }
        let mut sorted = POSITIONS;
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert!(w[0] < w[1], "duplicate codeword position");
        }
    }

    #[test]
    fn clean_words_decode_clean() {
        for data in [0u64, u64::MAX, 0xDEAD_BEEF_0123_4567, 1, 1 << 63] {
            let check = encode(data);
            assert_eq!(decode(data, check), Secded::Clean, "data={data:#x}");
        }
    }

    #[test]
    fn every_single_data_bit_flip_is_corrected() {
        let data = 0xA5C3_0F18_2B4D_6E97u64;
        let check = encode(data);
        for bit in 0..64 {
            let got = decode(data ^ (1 << bit), check);
            assert_eq!(got, Secded::CorrectedData { data, bit }, "bit {bit}");
        }
    }

    #[test]
    fn every_single_check_bit_flip_is_corrected() {
        let data = 0x0123_4567_89AB_CDEFu64;
        let check = encode(data);
        for bit in 0..8 {
            let got = decode(data, check ^ (1 << bit));
            assert_eq!(got, Secded::CorrectedCheck { check }, "check bit {bit}");
        }
    }

    #[test]
    fn double_bit_flips_are_detected_never_miscorrected() {
        let data = 0x5A5A_1234_8765_F0E1u64;
        let check = encode(data);
        // Data-data pairs.
        for a in 0..64u32 {
            for b in (a + 1)..64 {
                let corrupt = data ^ (1 << a) ^ (1 << b);
                assert_eq!(decode(corrupt, check), Secded::Uncorrectable, "{a},{b}");
            }
        }
        // Data-check pairs.
        for a in 0..64u32 {
            for c in 0..8u32 {
                let got = decode(data ^ (1 << a), check ^ (1 << c));
                assert_eq!(got, Secded::Uncorrectable, "data {a}, check {c}");
            }
        }
        // Check-check pairs.
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                let got = decode(data, check ^ (1 << a) ^ (1 << b));
                assert_eq!(got, Secded::Uncorrectable, "check {a},{b}");
            }
        }
    }

    #[test]
    fn corrections_recover_the_exact_word_across_patterns() {
        // Structured sample of data words: every correction must restore
        // the original bits exactly (bit-exact GEMV depends on it).
        for k in 0..256u64 {
            let data = k
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left((k % 64) as u32);
            let check = encode(data);
            let bit = (k % 64) as u32;
            match decode(data ^ (1 << bit), check) {
                Secded::CorrectedData { data: d, bit: b } => {
                    assert_eq!((d, b), (data, bit));
                }
                other => panic!("expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn zero_word_has_zero_check() {
        // The all-zero row (unallocated storage) is implicitly a valid
        // codeword, so lazily-allocated rows need no special casing.
        assert_eq!(encode(0), 0);
        assert_eq!(decode(0, 0), Secded::Clean);
    }

    #[test]
    fn retention_deadline_saturates() {
        assert_eq!(retention_deadline(100, 3900, 4), 100 + 4 * 3900);
        assert_eq!(retention_deadline(Cycle::MAX - 1, 3900, 4), Cycle::MAX);
    }
}
