//! The command bus and the external data bus.
//!
//! The command bus is the scarce resource at the heart of the paper's
//! interface optimizations: every command — conventional or AiM — occupies
//! one slot, and slots are spaced by the inter-command delay ("DRAM
//! commands must be separated by a specified delay (e.g., 4 cycles)",
//! Sec. III-D). Ganged commands (G_ACT, all-bank COMP, READRES) perform
//! many bank operations but still consume a *single* slot, which is exactly
//! how Newton saves the 16× and 3× command bandwidth the paper reports.
//!
//! The external data bus models the serialized path from the banks through
//! the global bus to the host (Sec. II-A). AiM-internal column accesses do
//! *not* occupy it — that is PIM's bandwidth advantage.

use crate::error::DramError;
use crate::timing::{Cycle, Timing};
use newton_trace::Log2Histogram;

/// The shared command bus: one command per slot, slots spaced by tCMD.
#[derive(Debug, Clone, Default)]
pub struct CommandBus {
    last_issue: Option<Cycle>,
    issued: u64,
    /// Distribution of gaps between consecutive slots (in cycles); a bus
    /// pinned at tCMD is saturated, long tails are idle command bandwidth.
    gaps: Log2Histogram,
}

impl CommandBus {
    /// Creates an idle command bus.
    #[must_use]
    pub fn new() -> CommandBus {
        CommandBus::default()
    }

    /// Earliest cycle `>= hint` at which the next command may issue.
    #[must_use]
    pub fn earliest_slot(&self, hint: Cycle, t: &Timing) -> Cycle {
        hint.max(self.slot_floor(t))
    }

    /// The hint-independent slot floor: the first cycle the bus itself
    /// allows a command (0 when the bus has never issued). Schedulers
    /// comparing many candidates fold this in once per round instead of
    /// calling [`CommandBus::earliest_slot`] per candidate.
    #[must_use]
    pub fn slot_floor(&self, t: &Timing) -> Cycle {
        match self.last_issue {
            Some(last) => last + t.t_cmd,
            None => 0,
        }
    }

    /// Claims the slot at `cycle`.
    ///
    /// # Errors
    ///
    /// [`DramError::Timing`] if `cycle` is earlier than the slot spacing
    /// allows or would reorder the command stream.
    pub fn issue(&mut self, cycle: Cycle, t: &Timing) -> Result<(), DramError> {
        let earliest = self.earliest_slot(0, t);
        if cycle < earliest {
            return Err(DramError::Timing {
                constraint: "tCMD (command bus slot)",
                issued: cycle,
                earliest,
                bank: None,
            });
        }
        if let Some(last) = self.last_issue {
            self.gaps.record(cycle - last);
        }
        self.last_issue = Some(cycle);
        self.issued += 1;
        Ok(())
    }

    /// Claims `count` slots at `start, start + step, ...` in one call.
    /// State-equivalent to `count` sequential [`CommandBus::issue`] calls
    /// at those cycles, but O(1): the regular spacing folds into a single
    /// histogram update.
    ///
    /// # Errors
    ///
    /// [`DramError::Timing`] if the first slot is earlier than the bus
    /// allows or (for multi-slot trains) `step` is below tCMD. Unlike the
    /// sequential loop, nothing is recorded on failure.
    pub fn issue_train(
        &mut self,
        start: Cycle,
        step: Cycle,
        count: usize,
        t: &Timing,
    ) -> Result<(), DramError> {
        if count == 0 {
            return Ok(());
        }
        let earliest = self.earliest_slot(0, t);
        if start < earliest {
            return Err(DramError::Timing {
                constraint: "tCMD (command bus slot)",
                issued: start,
                earliest,
                bank: None,
            });
        }
        if count > 1 && step < t.t_cmd {
            return Err(DramError::Timing {
                constraint: "tCMD (command bus slot)",
                issued: start + step,
                earliest: start + t.t_cmd,
                bank: None,
            });
        }
        if let Some(last) = self.last_issue {
            self.gaps.record(start - last);
        }
        self.gaps.record_n(step, count as u64 - 1);
        self.last_issue = Some(start + (count as Cycle - 1) * step);
        self.issued += count as u64;
        Ok(())
    }

    /// Total commands issued (the denominator of command-bandwidth
    /// utilization).
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Cycle of the most recent command, if any.
    #[must_use]
    pub fn last_issue(&self) -> Option<Cycle> {
        self.last_issue
    }

    /// Distribution of inter-slot gaps (cycles between consecutive
    /// commands). Empty until at least two commands have issued.
    #[must_use]
    pub fn slot_gaps(&self) -> &Log2Histogram {
        &self.gaps
    }
}

/// The external data bus (global bus + PHY): one burst at a time.
#[derive(Debug, Clone, Default)]
pub struct DataBus {
    busy_until: Cycle,
    bytes: u64,
}

impl DataBus {
    /// Creates an idle data bus.
    #[must_use]
    pub fn new() -> DataBus {
        DataBus::default()
    }

    /// Earliest cycle `>= hint` at which a new burst may start.
    #[must_use]
    pub fn earliest_transfer(&self, hint: Cycle) -> Cycle {
        hint.max(self.busy_until)
    }

    /// Occupies the bus for one burst of `bytes` starting at `start`;
    /// the burst lasts tCCD (the column cadence — the bus is saturated when
    /// bursts are back to back).
    ///
    /// # Errors
    ///
    /// [`DramError::Timing`] if the bus is still busy at `start`.
    pub fn transfer(&mut self, start: Cycle, bytes: usize, t: &Timing) -> Result<(), DramError> {
        if start < self.busy_until {
            return Err(DramError::Timing {
                constraint: "data bus busy",
                issued: start,
                earliest: self.busy_until,
                bank: None,
            });
        }
        self.busy_until = start + t.t_ccd;
        self.bytes += bytes as u64;
        Ok(())
    }

    /// Occupies the bus for `count` bursts of `bytes` each, starting at
    /// `start, start + step, ...`. State-equivalent to `count` sequential
    /// [`DataBus::transfer`] calls at those cycles, but O(1) — the
    /// closed-form leg of compiled-schedule replay.
    ///
    /// # Errors
    ///
    /// [`DramError::Timing`] if the bus is still busy at `start` or (for
    /// multi-burst trains) `step` is below tCCD, which would make later
    /// bursts overlap. Nothing is recorded on failure.
    pub fn transfer_train(
        &mut self,
        start: Cycle,
        step: Cycle,
        count: usize,
        bytes: usize,
        t: &Timing,
    ) -> Result<(), DramError> {
        if count == 0 {
            return Ok(());
        }
        if start < self.busy_until {
            return Err(DramError::Timing {
                constraint: "data bus busy",
                issued: start,
                earliest: self.busy_until,
                bank: None,
            });
        }
        if count > 1 && step < t.t_ccd {
            return Err(DramError::Timing {
                constraint: "data bus busy",
                issued: start + step,
                earliest: start + t.t_ccd,
                bank: None,
            });
        }
        self.busy_until = start + (count as Cycle - 1) * step + t.t_ccd;
        self.bytes += (count * bytes) as u64;
        Ok(())
    }

    /// Total bytes moved over the external interface.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The cycle the bus becomes free.
    #[must_use]
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingParams;

    fn timing() -> Timing {
        TimingParams::hbm2e_like().to_cycles().unwrap()
    }

    #[test]
    fn command_slots_are_spaced_by_tcmd() {
        let t = timing();
        let mut bus = CommandBus::new();
        assert_eq!(bus.earliest_slot(0, &t), 0);
        bus.issue(0, &t).unwrap();
        assert_eq!(bus.earliest_slot(0, &t), t.t_cmd);
        assert!(bus.issue(t.t_cmd - 1, &t).is_err());
        bus.issue(t.t_cmd, &t).unwrap();
        assert_eq!(bus.issued(), 2);
        assert_eq!(bus.last_issue(), Some(t.t_cmd));
    }

    #[test]
    fn slot_floor_is_the_hint_independent_gate() {
        let t = timing();
        let mut bus = CommandBus::new();
        assert_eq!(bus.slot_floor(&t), 0);
        bus.issue(100, &t).unwrap();
        assert_eq!(bus.slot_floor(&t), 100 + t.t_cmd);
        for hint in [0, 50, 100 + t.t_cmd, 10_000] {
            assert_eq!(bus.earliest_slot(hint, &t), hint.max(bus.slot_floor(&t)));
        }
    }

    #[test]
    fn command_slots_may_be_late_but_not_early() {
        let t = timing();
        let mut bus = CommandBus::new();
        bus.issue(100, &t).unwrap();
        // A gap larger than tCMD is always fine.
        bus.issue(100 + 10 * t.t_cmd, &t).unwrap();
    }

    #[test]
    fn slot_gaps_record_inter_command_spacing() {
        let t = timing();
        let mut bus = CommandBus::new();
        bus.issue(0, &t).unwrap();
        bus.issue(t.t_cmd, &t).unwrap();
        bus.issue(t.t_cmd + 100, &t).unwrap();
        let gaps = bus.slot_gaps();
        assert_eq!(gaps.count(), 2); // first issue has no predecessor
        assert_eq!(gaps.sum(), t.t_cmd + 100);
        assert_eq!(gaps.max(), 100);
    }

    #[test]
    fn issue_train_matches_sequential_issues() {
        let t = timing();
        for (start, step, count) in [
            (100, t.t_cmd, 32usize),
            (100, t.t_cmd + 3, 32),
            (10 + t.t_cmd, t.t_cmd, 1),
            (50, 1000, 2),
        ] {
            let mut looped = CommandBus::new();
            looped.issue(10, &t).unwrap();
            let mut batched = looped.clone();
            for i in 0..count {
                looped.issue(start + i as Cycle * step, &t).unwrap();
            }
            batched.issue_train(start, step, count, &t).unwrap();
            assert_eq!(looped.issued(), batched.issued());
            assert_eq!(looped.last_issue(), batched.last_issue());
            assert_eq!(looped.slot_gaps(), batched.slot_gaps());
        }
        // Trains on a virgin bus record no leading gap, like the loop.
        let mut looped = CommandBus::new();
        let mut batched = CommandBus::new();
        looped.issue(0, &t).unwrap();
        looped.issue(t.t_cmd, &t).unwrap();
        batched.issue_train(0, t.t_cmd, 2, &t).unwrap();
        assert_eq!(looped.slot_gaps(), batched.slot_gaps());
        // Under-spaced trains are rejected whole.
        let mut bus = CommandBus::new();
        assert!(bus.issue_train(0, t.t_cmd - 1, 2, &t).is_err());
        assert_eq!(bus.issued(), 0);
    }

    #[test]
    fn data_bus_serializes_bursts() {
        let t = timing();
        let mut bus = DataBus::new();
        bus.transfer(10, 32, &t).unwrap();
        assert_eq!(bus.busy_until(), 10 + t.t_ccd);
        assert!(bus.transfer(10 + t.t_ccd - 1, 32, &t).is_err());
        bus.transfer(10 + t.t_ccd, 32, &t).unwrap();
        assert_eq!(bus.bytes(), 64);
    }

    #[test]
    fn transfer_train_matches_sequential_transfers() {
        let t = timing();
        for (start, step, count) in [
            (100, t.t_ccd, 32usize),
            (100, t.t_ccd + 7, 32),
            (10 + t.t_ccd, t.t_ccd, 1),
            (50, 1000, 2),
        ] {
            let mut looped = DataBus::new();
            looped.transfer(10, 32, &t).unwrap();
            let mut batched = looped.clone();
            for i in 0..count {
                looped.transfer(start + i as Cycle * step, 32, &t).unwrap();
            }
            batched.transfer_train(start, step, count, 32, &t).unwrap();
            assert_eq!(looped.bytes(), batched.bytes());
            assert_eq!(looped.busy_until(), batched.busy_until());
        }
        // Under-spaced or early trains are rejected whole.
        let mut bus = DataBus::new();
        bus.transfer(10, 32, &t).unwrap();
        assert!(bus.transfer_train(10, t.t_ccd, 4, 32, &t).is_err());
        assert!(bus.transfer_train(100, t.t_ccd - 1, 4, 32, &t).is_err());
        assert_eq!(bus.bytes(), 32);
    }

    #[test]
    fn back_to_back_bursts_reach_peak_bandwidth() {
        let t = timing();
        let mut bus = DataBus::new();
        let mut c = 0;
        for _ in 0..100 {
            c = bus.earliest_transfer(c);
            bus.transfer(c, 32, &t).unwrap();
        }
        // 100 bursts x tCCD, ending exactly at 100 * tCCD.
        assert_eq!(bus.busy_until(), 100 * t.t_ccd);
        assert_eq!(bus.bytes(), 3200);
    }
}
