//! The command bus and the external data bus.
//!
//! The command bus is the scarce resource at the heart of the paper's
//! interface optimizations: every command — conventional or AiM — occupies
//! one slot, and slots are spaced by the inter-command delay ("DRAM
//! commands must be separated by a specified delay (e.g., 4 cycles)",
//! Sec. III-D). Ganged commands (G_ACT, all-bank COMP, READRES) perform
//! many bank operations but still consume a *single* slot, which is exactly
//! how Newton saves the 16× and 3× command bandwidth the paper reports.
//!
//! The external data bus models the serialized path from the banks through
//! the global bus to the host (Sec. II-A). AiM-internal column accesses do
//! *not* occupy it — that is PIM's bandwidth advantage.

use crate::error::DramError;
use crate::timing::{Cycle, Timing};
use newton_trace::Log2Histogram;

/// The shared command bus: one command per slot, slots spaced by tCMD.
#[derive(Debug, Clone, Default)]
pub struct CommandBus {
    last_issue: Option<Cycle>,
    issued: u64,
    /// Distribution of gaps between consecutive slots (in cycles); a bus
    /// pinned at tCMD is saturated, long tails are idle command bandwidth.
    gaps: Log2Histogram,
}

impl CommandBus {
    /// Creates an idle command bus.
    #[must_use]
    pub fn new() -> CommandBus {
        CommandBus::default()
    }

    /// Earliest cycle `>= hint` at which the next command may issue.
    #[must_use]
    pub fn earliest_slot(&self, hint: Cycle, t: &Timing) -> Cycle {
        match self.last_issue {
            Some(last) => hint.max(last + t.t_cmd),
            None => hint,
        }
    }

    /// Claims the slot at `cycle`.
    ///
    /// # Errors
    ///
    /// [`DramError::Timing`] if `cycle` is earlier than the slot spacing
    /// allows or would reorder the command stream.
    pub fn issue(&mut self, cycle: Cycle, t: &Timing) -> Result<(), DramError> {
        let earliest = self.earliest_slot(0, t);
        if cycle < earliest {
            return Err(DramError::Timing {
                constraint: "tCMD (command bus slot)",
                issued: cycle,
                earliest,
                bank: None,
            });
        }
        if let Some(last) = self.last_issue {
            self.gaps.record(cycle - last);
        }
        self.last_issue = Some(cycle);
        self.issued += 1;
        Ok(())
    }

    /// Total commands issued (the denominator of command-bandwidth
    /// utilization).
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Cycle of the most recent command, if any.
    #[must_use]
    pub fn last_issue(&self) -> Option<Cycle> {
        self.last_issue
    }

    /// Distribution of inter-slot gaps (cycles between consecutive
    /// commands). Empty until at least two commands have issued.
    #[must_use]
    pub fn slot_gaps(&self) -> &Log2Histogram {
        &self.gaps
    }
}

/// The external data bus (global bus + PHY): one burst at a time.
#[derive(Debug, Clone, Default)]
pub struct DataBus {
    busy_until: Cycle,
    bytes: u64,
}

impl DataBus {
    /// Creates an idle data bus.
    #[must_use]
    pub fn new() -> DataBus {
        DataBus::default()
    }

    /// Earliest cycle `>= hint` at which a new burst may start.
    #[must_use]
    pub fn earliest_transfer(&self, hint: Cycle) -> Cycle {
        hint.max(self.busy_until)
    }

    /// Occupies the bus for one burst of `bytes` starting at `start`;
    /// the burst lasts tCCD (the column cadence — the bus is saturated when
    /// bursts are back to back).
    ///
    /// # Errors
    ///
    /// [`DramError::Timing`] if the bus is still busy at `start`.
    pub fn transfer(&mut self, start: Cycle, bytes: usize, t: &Timing) -> Result<(), DramError> {
        if start < self.busy_until {
            return Err(DramError::Timing {
                constraint: "data bus busy",
                issued: start,
                earliest: self.busy_until,
                bank: None,
            });
        }
        self.busy_until = start + t.t_ccd;
        self.bytes += bytes as u64;
        Ok(())
    }

    /// Total bytes moved over the external interface.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The cycle the bus becomes free.
    #[must_use]
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingParams;

    fn timing() -> Timing {
        TimingParams::hbm2e_like().to_cycles().unwrap()
    }

    #[test]
    fn command_slots_are_spaced_by_tcmd() {
        let t = timing();
        let mut bus = CommandBus::new();
        assert_eq!(bus.earliest_slot(0, &t), 0);
        bus.issue(0, &t).unwrap();
        assert_eq!(bus.earliest_slot(0, &t), t.t_cmd);
        assert!(bus.issue(t.t_cmd - 1, &t).is_err());
        bus.issue(t.t_cmd, &t).unwrap();
        assert_eq!(bus.issued(), 2);
        assert_eq!(bus.last_issue(), Some(t.t_cmd));
    }

    #[test]
    fn command_slots_may_be_late_but_not_early() {
        let t = timing();
        let mut bus = CommandBus::new();
        bus.issue(100, &t).unwrap();
        // A gap larger than tCMD is always fine.
        bus.issue(100 + 10 * t.t_cmd, &t).unwrap();
    }

    #[test]
    fn slot_gaps_record_inter_command_spacing() {
        let t = timing();
        let mut bus = CommandBus::new();
        bus.issue(0, &t).unwrap();
        bus.issue(t.t_cmd, &t).unwrap();
        bus.issue(t.t_cmd + 100, &t).unwrap();
        let gaps = bus.slot_gaps();
        assert_eq!(gaps.count(), 2); // first issue has no predecessor
        assert_eq!(gaps.sum(), t.t_cmd + 100);
        assert_eq!(gaps.max(), 100);
    }

    #[test]
    fn data_bus_serializes_bursts() {
        let t = timing();
        let mut bus = DataBus::new();
        bus.transfer(10, 32, &t).unwrap();
        assert_eq!(bus.busy_until(), 10 + t.t_ccd);
        assert!(bus.transfer(10 + t.t_ccd - 1, 32, &t).is_err());
        bus.transfer(10 + t.t_ccd, 32, &t).unwrap();
        assert_eq!(bus.bytes(), 64);
    }

    #[test]
    fn back_to_back_bursts_reach_peak_bandwidth() {
        let t = timing();
        let mut bus = DataBus::new();
        let mut c = 0;
        for _ in 0..100 {
            c = bus.earliest_transfer(c);
            bus.transfer(c, 32, &t).unwrap();
        }
        // 100 bursts x tCCD, ending exactly at 100 * tCCD.
        assert_eq!(bus.busy_until(), 100 * t.t_ccd);
        assert_eq!(bus.bytes(), 3200);
    }
}
