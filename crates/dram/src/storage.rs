//! Functional row storage: the actual bytes behind every (bank, row).
//!
//! Rows are lazily allocated (an untouched HBM2E channel is 512 MiB; a
//! typical Newton workload touches only the rows holding its matrix).
//! Reads of never-written rows return zeros, matching a simulator-reset
//! device.
//!
//! With ECC enabled (see [`Storage::enable_ecc`]), every 64-bit word of a
//! row carries a SECDED (72,64) check byte (see [`crate::ecc`]):
//! legitimate writes ([`write_row`](Storage::write_row),
//! [`write_column`](Storage::write_column)) encode, while
//! [`flip_bit`](Storage::flip_bit) and stuck-at cells deliberately do
//! *not* — they are the fault primitives whose damage the scrub paths
//! ([`scrub_row`](Storage::scrub_row),
//! [`check_column`](Storage::check_column)) must catch.

use std::collections::BTreeMap;

use crate::config::DramConfig;
use crate::ecc::{self, Secded, WORD_BYTES};
use crate::error::DramError;

/// A materialized row: its bytes plus a generation counter that is bumped
/// on every mutation, letting derived caches (e.g. the decoded-weight cache
/// in `newton-core`) detect staleness without hashing the contents.
#[derive(Debug, Clone)]
struct RowSlot {
    data: Box<[u8]>,
    generation: u64,
    /// SECDED check bytes, one per 64-bit word; present iff ECC is on.
    check: Option<Box<[u8]>>,
}

/// A persistent cell defect: the bit at `bit` always reads as `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StuckBit {
    bit: usize,
    value: bool,
}

/// Per-channel functional storage, indexed by bank and row.
///
/// Each bank's row vector grows on first write past its current length
/// (never beyond `rows_per_bank`), so constructing a channel costs O(banks)
/// rather than O(banks x rows): an untouched HBM2E bank directory would
/// otherwise be ~1.3 MB of `None`s per bank, paid on every system
/// construction in benchmark loops.
#[derive(Debug)]
pub struct Storage {
    banks: Vec<Vec<Option<RowSlot>>>,
    /// Addressable rows per bank (the bound for address validation; the
    /// per-bank vectors materialize lazily up to this).
    rows_per_bank: usize,
    row_bytes: usize,
    col_bytes: usize,
    cols_per_row: usize,
    /// Shared read-only zero row for never-written rows.
    zero_row: Box<[u8]>,
    /// Monotonic counter handing out fresh generations across all rows, so
    /// a row rewritten after a cache snapshot never reuses an old value.
    next_generation: u64,
    /// Monotonic counter of *data mutations* (writes, fault injections,
    /// scrub corrections). Unlike `next_generation` — which reserves a
    /// value on every ECC scrub, even a clean one — this only moves when
    /// stored bytes actually change, so compiled-schedule replay can use
    /// it as a whole-channel "weights untouched since capture" witness.
    data_epoch: u64,
    /// Whether rows carry SECDED check bytes.
    ecc: bool,
    /// Persistent stuck-at cells, re-asserted after every legitimate write
    /// (a rewrite cannot heal broken silicon). Keyed `(bank, row)` in a
    /// `BTreeMap` so iteration (and `Debug`) order is deterministic.
    stuck: BTreeMap<(usize, usize), Vec<StuckBit>>,
}

impl Storage {
    /// Creates empty (all-zero) storage for the given geometry.
    #[must_use]
    pub fn new(config: &DramConfig) -> Storage {
        Storage {
            banks: (0..config.banks).map(|_| Vec::new()).collect(),
            rows_per_bank: config.rows_per_bank,
            row_bytes: config.row_bytes(),
            col_bytes: config.col_bytes(),
            cols_per_row: config.cols_per_row,
            zero_row: vec![0u8; config.row_bytes()].into_boxed_slice(),
            next_generation: 0,
            data_epoch: 0,
            ecc: false,
            stuck: BTreeMap::new(),
        }
    }

    /// Bytes per row.
    #[must_use]
    pub fn row_bytes(&self) -> usize {
        self.row_bytes
    }

    /// Enables the SECDED (72,64) ECC model: every already-allocated row
    /// is encoded now, and every subsequent legitimate write keeps its
    /// check bytes current. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not word-aligned (row and column sizes
    /// must be multiples of 8 bytes; every built-in preset is).
    pub fn enable_ecc(&mut self) {
        assert!(
            self.row_bytes.is_multiple_of(WORD_BYTES) && self.col_bytes.is_multiple_of(WORD_BYTES),
            "SECDED model requires 8-byte-aligned rows and columns"
        );
        if self.ecc {
            return;
        }
        self.ecc = true;
        for bank in &mut self.banks {
            for slot in bank.iter_mut().flatten() {
                slot.check = Some(encode_checks(&slot.data));
            }
        }
    }

    /// Whether the ECC model is enabled.
    #[must_use]
    pub fn ecc_enabled(&self) -> bool {
        self.ecc
    }

    fn bump_generation(&mut self) -> u64 {
        self.next_generation += 1;
        self.data_epoch += 1;
        self.next_generation
    }

    /// Current data-mutation epoch: bumped by every legitimate write,
    /// fault injection, and ECC scrub *correction* — but **not** by clean
    /// scrubs or reads. Two observations of the same value prove no stored
    /// byte in this channel changed in between.
    #[must_use]
    pub fn write_epoch(&self) -> u64 {
        self.data_epoch
    }

    fn check_bank_row(&self, bank: usize, row: usize) -> Result<(), DramError> {
        if bank >= self.banks.len() {
            return Err(DramError::AddressOutOfRange {
                kind: "bank",
                index: bank,
                limit: self.banks.len(),
            });
        }
        if row >= self.rows_per_bank {
            return Err(DramError::AddressOutOfRange {
                kind: "row",
                index: row,
                limit: self.rows_per_bank,
            });
        }
        Ok(())
    }

    /// The row slot if it has been materialized (in-bounds rows beyond the
    /// lazily-grown vector read as never written).
    fn slot(&self, bank: usize, row: usize) -> Option<&RowSlot> {
        self.banks[bank].get(row).and_then(Option::as_ref)
    }

    /// Reads an entire row (zeros if never written).
    ///
    /// # Errors
    ///
    /// [`DramError::AddressOutOfRange`] for bad indices.
    pub fn row(&self, bank: usize, row: usize) -> Result<&[u8], DramError> {
        self.check_bank_row(bank, row)?;
        Ok(self
            .slot(bank, row)
            .map_or(&self.zero_row, |slot| &slot.data))
    }

    /// Current generation of a (bank, row): `0` for a never-written row,
    /// otherwise a value that strictly increases on every mutation of that
    /// row ([`write_row`](Storage::write_row),
    /// [`write_column`](Storage::write_column),
    /// [`flip_bit`](Storage::flip_bit), ECC scrub corrections). Caches
    /// keyed on (bank, row) stay coherent by re-checking this against
    /// their snapshot.
    ///
    /// # Errors
    ///
    /// [`DramError::AddressOutOfRange`] for bad indices.
    pub fn row_generation(&self, bank: usize, row: usize) -> Result<u64, DramError> {
        self.check_bank_row(bank, row)?;
        Ok(self.slot(bank, row).map_or(0, |slot| slot.generation))
    }

    /// Overwrites an entire row. With ECC on, the row is re-encoded;
    /// stuck-at cells then re-assert themselves (a rewrite cannot heal
    /// them, and their damage stays visible to the check bytes).
    ///
    /// # Errors
    ///
    /// [`DramError::AddressOutOfRange`] for bad indices;
    /// [`DramError::StorageSize`] if `data` is not exactly one row.
    pub fn write_row(&mut self, bank: usize, row: usize, data: &[u8]) -> Result<(), DramError> {
        self.check_bank_row(bank, row)?;
        if data.len() != self.row_bytes {
            return Err(DramError::StorageSize {
                expected: self.row_bytes,
                actual: data.len(),
            });
        }
        let generation = self.bump_generation();
        let check = self.ecc.then(|| encode_checks(data));
        let slot = RowSlot {
            data: data.to_vec().into_boxed_slice(),
            generation,
            check,
        };
        if self.banks[bank].len() <= row {
            self.banks[bank].resize_with(row + 1, || None);
        }
        self.banks[bank][row] = Some(slot);
        self.reassert_stuck(bank, row, 0, self.row_bytes);
        Ok(())
    }

    /// Reads one column I/O worth of bytes from a row.
    ///
    /// # Errors
    ///
    /// [`DramError::AddressOutOfRange`] for bad bank/row/column indices.
    pub fn column(&self, bank: usize, row: usize, col: usize) -> Result<&[u8], DramError> {
        if col >= self.cols_per_row {
            return Err(DramError::AddressOutOfRange {
                kind: "column",
                index: col,
                limit: self.cols_per_row,
            });
        }
        let row_data = self.row(bank, row)?;
        let start = col * self.col_bytes;
        Ok(&row_data[start..start + self.col_bytes])
    }

    /// Writes one column I/O worth of bytes into a row, allocating the row
    /// if it was never touched. With ECC on, the covered words are
    /// re-encoded and stuck-at cells in the range re-assert themselves.
    ///
    /// # Errors
    ///
    /// [`DramError::AddressOutOfRange`] for bad indices;
    /// [`DramError::StorageSize`] if `data` is not exactly one column.
    pub fn write_column(
        &mut self,
        bank: usize,
        row: usize,
        col: usize,
        data: &[u8],
    ) -> Result<(), DramError> {
        self.check_bank_row(bank, row)?;
        if col >= self.cols_per_row {
            return Err(DramError::AddressOutOfRange {
                kind: "column",
                index: col,
                limit: self.cols_per_row,
            });
        }
        if data.len() != self.col_bytes {
            return Err(DramError::StorageSize {
                expected: self.col_bytes,
                actual: data.len(),
            });
        }
        let generation = self.bump_generation();
        let start = col * self.col_bytes;
        let end = start + self.col_bytes;
        let slot = self.slot_mut(bank, row, generation);
        slot.generation = generation;
        slot.data[start..end].copy_from_slice(data);
        if let Some(check) = &mut slot.check {
            for w in start / WORD_BYTES..end / WORD_BYTES {
                let word = word_at(&slot.data, w);
                check[w] = ecc::encode(word);
            }
        }
        self.reassert_stuck(bank, row, start, end);
        Ok(())
    }

    /// Flips one bit in a stored row — the transient-error injection hook
    /// for studying the paper's Sec. III-E ECC discussion ("only the
    /// matrix resides in the DRAM for long periods of time with the
    /// possibility of collecting transient errors"). Allocates the row if
    /// it was never written (flipping a bit of an all-zero row).
    ///
    /// Deliberately does **not** update check bytes: this models a cell
    /// upset, which the ECC scrub must detect.
    ///
    /// # Errors
    ///
    /// [`DramError::AddressOutOfRange`] for bad bank/row indices or a bit
    /// index beyond the row.
    pub fn flip_bit(&mut self, bank: usize, row: usize, bit: usize) -> Result<(), DramError> {
        self.check_bank_row(bank, row)?;
        if bit >= self.row_bytes * 8 {
            return Err(DramError::AddressOutOfRange {
                kind: "bit",
                index: bit,
                limit: self.row_bytes * 8,
            });
        }
        let generation = self.bump_generation();
        let slot = self.slot_mut(bank, row, generation);
        slot.generation = generation;
        slot.data[bit / 8] ^= 1 << (bit % 8);
        Ok(())
    }

    /// Declares the cell at `(bank, row, bit)` permanently stuck at
    /// `value`: the bit is forced now and re-asserted after every
    /// legitimate write to its row (scrub-rewrite cannot heal it). Like
    /// [`flip_bit`](Storage::flip_bit), check bytes are left alone so the
    /// defect stays visible to ECC.
    ///
    /// # Errors
    ///
    /// [`DramError::AddressOutOfRange`] for bad indices.
    pub fn set_stuck(
        &mut self,
        bank: usize,
        row: usize,
        bit: usize,
        value: bool,
    ) -> Result<(), DramError> {
        self.check_bank_row(bank, row)?;
        if bit >= self.row_bytes * 8 {
            return Err(DramError::AddressOutOfRange {
                kind: "bit",
                index: bit,
                limit: self.row_bytes * 8,
            });
        }
        let cells = self.stuck.entry((bank, row)).or_default();
        match cells.iter_mut().find(|c| c.bit == bit) {
            Some(c) => c.value = value,
            None => cells.push(StuckBit { bit, value }),
        }
        let generation = self.bump_generation();
        let slot = self.slot_mut(bank, row, generation);
        slot.generation = generation;
        set_bit(&mut slot.data, bit, value);
        Ok(())
    }

    /// Number of declared stuck-at cells.
    #[must_use]
    pub fn stuck_cells(&self) -> usize {
        self.stuck.values().map(Vec::len).sum()
    }

    /// Checks and corrects an entire row against its check bytes (the
    /// row-buffer-fill scrub performed on activation). Returns the number
    /// of corrected single-bit errors; corrections that change data bits
    /// bump the row generation so derived caches re-decode.
    ///
    /// No-op (`Ok(0)`) when ECC is off or the row was never allocated (an
    /// all-zero row is a valid codeword).
    ///
    /// # Errors
    ///
    /// [`DramError::AddressOutOfRange`] for bad indices;
    /// [`DramError::Uncorrectable`] when any word has a detected
    /// multi-bit error.
    pub fn scrub_row(&mut self, bank: usize, row: usize) -> Result<u32, DramError> {
        let words = self.row_bytes / WORD_BYTES;
        self.scrub_words(bank, row, 0, words)
    }

    /// Checks and corrects the words backing one column (the per-fetch
    /// check on reads and COMP operand fetches). Semantics match
    /// [`scrub_row`](Storage::scrub_row) restricted to the column.
    ///
    /// # Errors
    ///
    /// [`DramError::AddressOutOfRange`] for bad indices;
    /// [`DramError::Uncorrectable`] on a detected multi-bit error.
    pub fn check_column(&mut self, bank: usize, row: usize, col: usize) -> Result<u32, DramError> {
        if col >= self.cols_per_row {
            return Err(DramError::AddressOutOfRange {
                kind: "column",
                index: col,
                limit: self.cols_per_row,
            });
        }
        let start = col * self.col_bytes / WORD_BYTES;
        let end = (col + 1) * self.col_bytes / WORD_BYTES;
        self.scrub_words(bank, row, start, end)
    }

    fn scrub_words(
        &mut self,
        bank: usize,
        row: usize,
        word_start: usize,
        word_end: usize,
    ) -> Result<u32, DramError> {
        self.check_bank_row(bank, row)?;
        if !self.ecc {
            return Ok(0);
        }
        // Reserve a generation up front (disjoint-field borrow of the slot
        // below); unused reservations just leave a gap in the sequence.
        self.next_generation += 1;
        let generation = self.next_generation;
        let Some(slot) = self.banks[bank].get_mut(row).and_then(Option::as_mut) else {
            return Ok(0);
        };
        let check = slot
            .check
            .as_mut()
            .expect("ECC-enabled rows always carry check bytes");
        let mut corrected = 0u32;
        let mut data_fixed = false;
        for w in word_start..word_end {
            let word = word_at(&slot.data, w);
            match ecc::decode(word, check[w]) {
                Secded::Clean => {}
                Secded::CorrectedData { data, .. } => {
                    slot.data[w * WORD_BYTES..(w + 1) * WORD_BYTES]
                        .copy_from_slice(&data.to_le_bytes());
                    corrected += 1;
                    data_fixed = true;
                }
                Secded::CorrectedCheck { check: fixed } => {
                    check[w] = fixed;
                    corrected += 1;
                }
                Secded::Uncorrectable => {
                    return Err(DramError::Uncorrectable { bank, row });
                }
            }
        }
        if data_fixed {
            slot.generation = generation;
        }
        if corrected > 0 {
            self.data_epoch += 1;
        }
        Ok(corrected)
    }

    /// Number of rows that have been materialized (allocated) so far.
    #[must_use]
    pub fn allocated_rows(&self) -> usize {
        self.banks
            .iter()
            .map(|b| b.iter().filter(|r| r.is_some()).count())
            .sum()
    }

    /// Every materialized `(bank, row)` pair, in (bank, row) order — the
    /// deterministic target universe for fault campaigns.
    #[must_use]
    pub fn allocated_row_indices(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (b, bank) in self.banks.iter().enumerate() {
            for (r, slot) in bank.iter().enumerate() {
                if slot.is_some() {
                    out.push((b, r));
                }
            }
        }
        out
    }

    /// The row slot, materialized with zeros (a valid codeword: ECC check
    /// bytes of a zero word are zero) if it was never written.
    fn slot_mut(&mut self, bank: usize, row: usize, generation: u64) -> &mut RowSlot {
        let row_bytes = self.row_bytes;
        let ecc = self.ecc;
        if self.banks[bank].len() <= row {
            self.banks[bank].resize_with(row + 1, || None);
        }
        self.banks[bank][row].get_or_insert_with(|| RowSlot {
            data: vec![0u8; row_bytes].into_boxed_slice(),
            generation,
            check: ecc.then(|| vec![0u8; row_bytes / WORD_BYTES].into_boxed_slice()),
        })
    }

    /// Forces every stuck cell of `(bank, row)` whose bit lies in byte
    /// range `[byte_start, byte_end)` back to its stuck value, without
    /// touching check bytes.
    fn reassert_stuck(&mut self, bank: usize, row: usize, byte_start: usize, byte_end: usize) {
        let Some(cells) = self.stuck.get(&(bank, row)) else {
            return;
        };
        // `stuck` and `banks` are disjoint fields; clone the short defect
        // list to keep the borrows simple.
        let cells = cells.clone();
        let Some(slot) = self.banks[bank].get_mut(row).and_then(Option::as_mut) else {
            return;
        };
        for c in &cells {
            if (byte_start * 8..byte_end * 8).contains(&c.bit) {
                set_bit(&mut slot.data, c.bit, c.value);
            }
        }
    }
}

#[inline]
fn word_at(data: &[u8], w: usize) -> u64 {
    u64::from_le_bytes(
        data[w * WORD_BYTES..(w + 1) * WORD_BYTES]
            .try_into()
            .expect("word-aligned row"),
    )
}

#[inline]
fn set_bit(data: &mut [u8], bit: usize, value: bool) {
    if value {
        data[bit / 8] |= 1 << (bit % 8);
    } else {
        data[bit / 8] &= !(1 << (bit % 8));
    }
}

fn encode_checks(data: &[u8]) -> Box<[u8]> {
    (0..data.len() / WORD_BYTES)
        .map(|w| ecc::encode(word_at(data, w)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storage() -> Storage {
        Storage::new(&DramConfig::hbm2e_like())
    }

    #[test]
    fn unwritten_rows_read_as_zero() {
        let s = storage();
        assert!(s.row(3, 100).unwrap().iter().all(|&b| b == 0));
        assert!(s.column(3, 100, 31).unwrap().iter().all(|&b| b == 0));
        assert_eq!(s.allocated_rows(), 0);
    }

    #[test]
    fn row_write_read_roundtrip() {
        let mut s = storage();
        let data: Vec<u8> = (0..1024).map(|i| (i % 256) as u8).collect();
        s.write_row(0, 5, &data).unwrap();
        assert_eq!(s.row(0, 5).unwrap(), &data[..]);
        // Column 2 covers bytes 64..96.
        assert_eq!(s.column(0, 5, 2).unwrap(), &data[64..96]);
        assert_eq!(s.allocated_rows(), 1);
    }

    #[test]
    fn column_write_allocates_and_preserves_rest() {
        let mut s = storage();
        s.write_column(1, 7, 3, &[0xFFu8; 32]).unwrap();
        let row = s.row(1, 7).unwrap();
        assert!(row[..96].iter().all(|&b| b == 0));
        assert!(row[96..128].iter().all(|&b| b == 0xFF));
        assert!(row[128..].iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_range_indices_are_rejected() {
        let mut s = storage();
        assert!(matches!(
            s.row(16, 0),
            Err(DramError::AddressOutOfRange { kind: "bank", .. })
        ));
        assert!(matches!(
            s.row(0, 32_768),
            Err(DramError::AddressOutOfRange { kind: "row", .. })
        ));
        assert!(matches!(
            s.column(0, 0, 32),
            Err(DramError::AddressOutOfRange { kind: "column", .. })
        ));
        assert!(matches!(
            s.write_column(0, 0, 32, &[0u8; 32]),
            Err(DramError::AddressOutOfRange { kind: "column", .. })
        ));
    }

    #[test]
    fn flip_bit_injects_and_reverts_faults() {
        let mut s = storage();
        s.write_row(0, 3, &vec![0u8; 1024]).unwrap();
        s.flip_bit(0, 3, 17).unwrap();
        assert_eq!(s.row(0, 3).unwrap()[2], 0b10, "bit 17 = byte 2 bit 1");
        // Flipping again restores the original value.
        s.flip_bit(0, 3, 17).unwrap();
        assert!(s.row(0, 3).unwrap().iter().all(|&b| b == 0));
        // Works on never-written rows too.
        s.flip_bit(1, 0, 0).unwrap();
        assert_eq!(s.row(1, 0).unwrap()[0], 1);
        // Bounds.
        assert!(s.flip_bit(0, 3, 1024 * 8).is_err());
        assert!(s.flip_bit(16, 0, 0).is_err());
    }

    #[test]
    fn generations_start_at_zero_and_bump_on_every_mutation() {
        let mut s = storage();
        assert_eq!(s.row_generation(0, 5).unwrap(), 0, "unwritten row");

        s.write_row(0, 5, &vec![0u8; 1024]).unwrap();
        let g1 = s.row_generation(0, 5).unwrap();
        assert!(g1 > 0);

        s.write_column(0, 5, 2, &[0xAAu8; 32]).unwrap();
        let g2 = s.row_generation(0, 5).unwrap();
        assert!(g2 > g1, "write_column must bump the generation");

        s.flip_bit(0, 5, 3).unwrap();
        let g3 = s.row_generation(0, 5).unwrap();
        assert!(g3 > g2, "flip_bit must bump the generation");

        // Other rows are unaffected, and a row first touched later still
        // gets a generation never seen on any row before.
        assert_eq!(s.row_generation(0, 6).unwrap(), 0);
        s.write_column(1, 0, 0, &[0u8; 32]).unwrap();
        assert!(s.row_generation(1, 0).unwrap() > g3);

        // Reads never bump.
        let _ = s.row(0, 5).unwrap();
        let _ = s.column(0, 5, 0).unwrap();
        assert_eq!(s.row_generation(0, 5).unwrap(), g3);

        // Bounds.
        assert!(s.row_generation(16, 0).is_err());
    }

    #[test]
    fn write_epoch_moves_only_on_data_mutations() {
        let mut s = storage();
        s.enable_ecc();
        let e0 = s.write_epoch();
        // Reads and clean scrubs leave the epoch alone.
        let _ = s.row(0, 1).unwrap();
        assert_eq!(s.scrub_row(0, 1).unwrap(), 0);
        assert_eq!(s.write_epoch(), e0);

        s.write_row(0, 1, &vec![0x3Cu8; 1024]).unwrap();
        let e1 = s.write_epoch();
        assert!(e1 > e0, "write_row mutates");
        // Clean scrub of an allocated row: reserves a generation but must
        // not move the data epoch.
        assert_eq!(s.scrub_row(0, 1).unwrap(), 0);
        assert_eq!(s.check_column(0, 1, 0).unwrap(), 0);
        assert_eq!(s.write_epoch(), e1);

        s.flip_bit(0, 1, 9).unwrap();
        let e2 = s.write_epoch();
        assert!(e2 > e1, "fault injection mutates");
        // The correcting scrub mutates too (it rewrites the faulty word).
        assert_eq!(s.scrub_row(0, 1).unwrap(), 1);
        let e3 = s.write_epoch();
        assert!(e3 > e2, "scrub correction mutates");
        // Once clean again, scrubs are epoch-stable.
        assert_eq!(s.scrub_row(0, 1).unwrap(), 0);
        assert_eq!(s.write_epoch(), e3);

        s.write_column(0, 1, 2, &[0u8; 32]).unwrap();
        assert!(s.write_epoch() > e3, "write_column mutates");
        let e4 = s.write_epoch();
        s.set_stuck(0, 1, 5, true).unwrap();
        assert!(s.write_epoch() > e4, "stuck-cell declaration mutates");
    }

    #[test]
    fn wrong_sizes_are_rejected() {
        let mut s = storage();
        assert!(matches!(
            s.write_row(0, 0, &[0u8; 100]),
            Err(DramError::StorageSize {
                expected: 1024,
                actual: 100
            })
        ));
        assert!(matches!(
            s.write_column(0, 0, 0, &[0u8; 31]),
            Err(DramError::StorageSize {
                expected: 32,
                actual: 31
            })
        ));
    }

    #[test]
    fn ecc_scrub_is_a_noop_without_faults_or_when_disabled() {
        let mut s = storage();
        let data: Vec<u8> = (0..1024).map(|i| (i * 13 % 256) as u8).collect();
        s.write_row(0, 1, &data).unwrap();
        // ECC off: scrub never touches anything.
        assert_eq!(s.scrub_row(0, 1).unwrap(), 0);
        s.enable_ecc();
        assert!(s.ecc_enabled());
        // Clean rows (encoded on enable) scrub clean, generation unchanged.
        let g = s.row_generation(0, 1).unwrap();
        assert_eq!(s.scrub_row(0, 1).unwrap(), 0);
        assert_eq!(s.row_generation(0, 1).unwrap(), g);
        // Unallocated rows are implicitly valid zero codewords.
        assert_eq!(s.scrub_row(5, 99).unwrap(), 0);
        assert_eq!(s.check_column(5, 99, 0).unwrap(), 0);
        // enable_ecc is idempotent.
        s.enable_ecc();
        assert_eq!(s.scrub_row(0, 1).unwrap(), 0);
    }

    #[test]
    fn ecc_corrects_single_bit_and_bumps_generation() {
        let mut s = storage();
        s.enable_ecc();
        let data: Vec<u8> = (0..1024).map(|i| (i * 7 % 256) as u8).collect();
        s.write_row(2, 9, &data).unwrap();
        s.flip_bit(2, 9, 1234).unwrap();
        let g_faulty = s.row_generation(2, 9).unwrap();
        assert_ne!(s.row(2, 9).unwrap(), &data[..]);
        assert_eq!(s.scrub_row(2, 9).unwrap(), 1);
        assert_eq!(s.row(2, 9).unwrap(), &data[..], "scrub restored the row");
        assert!(
            s.row_generation(2, 9).unwrap() > g_faulty,
            "correction must invalidate derived caches"
        );
        // Second scrub: clean.
        assert_eq!(s.scrub_row(2, 9).unwrap(), 0);
    }

    #[test]
    fn ecc_check_column_corrects_only_the_covered_words() {
        let mut s = storage();
        s.enable_ecc();
        s.write_row(0, 0, &vec![0x5Au8; 1024]).unwrap();
        // Column 3 covers bytes 96..128 = bits 768..1024.
        s.flip_bit(0, 0, 800).unwrap();
        s.flip_bit(0, 0, 8).unwrap(); // outside column 3
        assert_eq!(s.check_column(0, 0, 3).unwrap(), 1);
        assert_eq!(s.column(0, 0, 3).unwrap(), &[0x5Au8; 32][..]);
        // The out-of-column fault is still there for the row scrub.
        assert_eq!(s.scrub_row(0, 0).unwrap(), 1);
        assert_eq!(s.row(0, 0).unwrap(), &vec![0x5Au8; 1024][..]);
    }

    #[test]
    fn ecc_detects_double_bit_as_uncorrectable() {
        let mut s = storage();
        s.enable_ecc();
        s.write_row(1, 4, &vec![0xC3u8; 1024]).unwrap();
        // Two flips in the same 64-bit word (word 0 = bits 0..64).
        s.flip_bit(1, 4, 3).unwrap();
        s.flip_bit(1, 4, 40).unwrap();
        assert_eq!(
            s.scrub_row(1, 4),
            Err(DramError::Uncorrectable { bank: 1, row: 4 })
        );
        assert_eq!(
            s.check_column(1, 4, 0),
            Err(DramError::Uncorrectable { bank: 1, row: 4 })
        );
        // Flips in *different* words are each corrected.
        let mut s = storage();
        s.enable_ecc();
        s.write_row(1, 4, &vec![0xC3u8; 1024]).unwrap();
        s.flip_bit(1, 4, 3).unwrap();
        s.flip_bit(1, 4, 100).unwrap();
        assert_eq!(s.scrub_row(1, 4).unwrap(), 2);
    }

    #[test]
    fn legitimate_writes_reencode_faulty_rows() {
        let mut s = storage();
        s.enable_ecc();
        let data = vec![0x11u8; 1024];
        s.write_row(0, 7, &data).unwrap();
        s.flip_bit(0, 7, 64).unwrap();
        s.flip_bit(0, 7, 65).unwrap(); // double-bit in word 1
        assert!(s.scrub_row(0, 7).is_err());
        // Host rewrite (the scrub-rewrite path): row is healthy again.
        s.write_row(0, 7, &data).unwrap();
        assert_eq!(s.scrub_row(0, 7).unwrap(), 0);
        // Column writes re-encode their words too.
        s.flip_bit(0, 7, 0).unwrap();
        s.write_column(0, 7, 0, &[0x22u8; 32]).unwrap();
        assert_eq!(s.scrub_row(0, 7).unwrap(), 0);
    }

    #[test]
    fn stuck_cells_survive_rewrites_and_stay_visible_to_ecc() {
        let mut s = storage();
        s.enable_ecc();
        let data = vec![0xFFu8; 1024];
        s.write_row(3, 2, &data).unwrap();
        s.set_stuck(3, 2, 8, false).unwrap();
        assert_eq!(s.stuck_cells(), 1);
        assert_eq!(s.row(3, 2).unwrap()[1], 0xFE, "cell forced low");
        // The scrub sees (and corrects the read value of) the defect...
        assert_eq!(s.scrub_row(3, 2).unwrap(), 1);
        // ...but a rewrite brings it right back.
        s.write_row(3, 2, &data).unwrap();
        assert_eq!(s.row(3, 2).unwrap()[1], 0xFE, "rewrite cannot heal it");
        assert_eq!(s.scrub_row(3, 2).unwrap(), 1);
        // Two stuck cells in one word: permanently uncorrectable.
        s.set_stuck(3, 2, 9, false).unwrap();
        s.write_row(3, 2, &data).unwrap();
        assert_eq!(
            s.scrub_row(3, 2),
            Err(DramError::Uncorrectable { bank: 3, row: 2 })
        );
        // Redeclaring a cell updates it in place.
        s.set_stuck(3, 2, 9, true).unwrap();
        assert_eq!(s.stuck_cells(), 2);
    }

    #[test]
    fn allocated_row_indices_are_ordered() {
        let mut s = storage();
        s.write_column(2, 5, 0, &[0u8; 32]).unwrap();
        s.write_column(0, 9, 0, &[0u8; 32]).unwrap();
        s.write_column(2, 1, 0, &[0u8; 32]).unwrap();
        assert_eq!(s.allocated_row_indices(), vec![(0, 9), (2, 1), (2, 5)]);
    }
}
