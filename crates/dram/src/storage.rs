//! Functional row storage: the actual bytes behind every (bank, row).
//!
//! Rows are lazily allocated (an untouched HBM2E channel is 512 MiB; a
//! typical Newton workload touches only the rows holding its matrix).
//! Reads of never-written rows return zeros, matching a simulator-reset
//! device.

use crate::config::DramConfig;
use crate::error::DramError;

/// A materialized row: its bytes plus a generation counter that is bumped
/// on every mutation, letting derived caches (e.g. the decoded-weight cache
/// in `newton-core`) detect staleness without hashing the contents.
#[derive(Debug, Clone)]
struct RowSlot {
    data: Box<[u8]>,
    generation: u64,
}

/// Per-channel functional storage, indexed by bank and row.
#[derive(Debug)]
pub struct Storage {
    banks: Vec<Vec<Option<RowSlot>>>,
    row_bytes: usize,
    col_bytes: usize,
    cols_per_row: usize,
    /// Shared read-only zero row for never-written rows.
    zero_row: Box<[u8]>,
    /// Monotonic counter handing out fresh generations across all rows, so
    /// a row rewritten after a cache snapshot never reuses an old value.
    next_generation: u64,
}

impl Storage {
    /// Creates empty (all-zero) storage for the given geometry.
    #[must_use]
    pub fn new(config: &DramConfig) -> Storage {
        Storage {
            banks: (0..config.banks)
                .map(|_| vec![None; config.rows_per_bank])
                .collect(),
            row_bytes: config.row_bytes(),
            col_bytes: config.col_bytes(),
            cols_per_row: config.cols_per_row,
            zero_row: vec![0u8; config.row_bytes()].into_boxed_slice(),
            next_generation: 0,
        }
    }

    fn bump_generation(&mut self) -> u64 {
        self.next_generation += 1;
        self.next_generation
    }

    fn check_bank_row(&self, bank: usize, row: usize) -> Result<(), DramError> {
        if bank >= self.banks.len() {
            return Err(DramError::AddressOutOfRange {
                kind: "bank",
                index: bank,
                limit: self.banks.len(),
            });
        }
        if row >= self.banks[bank].len() {
            return Err(DramError::AddressOutOfRange {
                kind: "row",
                index: row,
                limit: self.banks[bank].len(),
            });
        }
        Ok(())
    }

    /// Reads an entire row (zeros if never written).
    ///
    /// # Errors
    ///
    /// [`DramError::AddressOutOfRange`] for bad indices.
    pub fn row(&self, bank: usize, row: usize) -> Result<&[u8], DramError> {
        self.check_bank_row(bank, row)?;
        Ok(self.banks[bank][row]
            .as_ref()
            .map_or(&self.zero_row, |slot| &slot.data))
    }

    /// Current generation of a (bank, row): `0` for a never-written row,
    /// otherwise a value that strictly increases on every mutation of that
    /// row ([`write_row`](Storage::write_row),
    /// [`write_column`](Storage::write_column),
    /// [`flip_bit`](Storage::flip_bit)). Caches keyed on (bank, row) stay
    /// coherent by re-checking this against their snapshot.
    ///
    /// # Errors
    ///
    /// [`DramError::AddressOutOfRange`] for bad indices.
    pub fn row_generation(&self, bank: usize, row: usize) -> Result<u64, DramError> {
        self.check_bank_row(bank, row)?;
        Ok(self.banks[bank][row]
            .as_ref()
            .map_or(0, |slot| slot.generation))
    }

    /// Overwrites an entire row.
    ///
    /// # Errors
    ///
    /// [`DramError::AddressOutOfRange`] for bad indices;
    /// [`DramError::StorageSize`] if `data` is not exactly one row.
    pub fn write_row(&mut self, bank: usize, row: usize, data: &[u8]) -> Result<(), DramError> {
        self.check_bank_row(bank, row)?;
        if data.len() != self.row_bytes {
            return Err(DramError::StorageSize {
                expected: self.row_bytes,
                actual: data.len(),
            });
        }
        let generation = self.bump_generation();
        self.banks[bank][row] = Some(RowSlot {
            data: data.to_vec().into_boxed_slice(),
            generation,
        });
        Ok(())
    }

    /// Reads one column I/O worth of bytes from a row.
    ///
    /// # Errors
    ///
    /// [`DramError::AddressOutOfRange`] for bad bank/row/column indices.
    pub fn column(&self, bank: usize, row: usize, col: usize) -> Result<&[u8], DramError> {
        if col >= self.cols_per_row {
            return Err(DramError::AddressOutOfRange {
                kind: "column",
                index: col,
                limit: self.cols_per_row,
            });
        }
        let row_data = self.row(bank, row)?;
        let start = col * self.col_bytes;
        Ok(&row_data[start..start + self.col_bytes])
    }

    /// Writes one column I/O worth of bytes into a row, allocating the row
    /// if it was never touched.
    ///
    /// # Errors
    ///
    /// [`DramError::AddressOutOfRange`] for bad indices;
    /// [`DramError::StorageSize`] if `data` is not exactly one column.
    pub fn write_column(
        &mut self,
        bank: usize,
        row: usize,
        col: usize,
        data: &[u8],
    ) -> Result<(), DramError> {
        self.check_bank_row(bank, row)?;
        if col >= self.cols_per_row {
            return Err(DramError::AddressOutOfRange {
                kind: "column",
                index: col,
                limit: self.cols_per_row,
            });
        }
        if data.len() != self.col_bytes {
            return Err(DramError::StorageSize {
                expected: self.col_bytes,
                actual: data.len(),
            });
        }
        let row_bytes = self.row_bytes;
        let generation = self.bump_generation();
        let slot = self.banks[bank][row].get_or_insert_with(|| RowSlot {
            data: vec![0u8; row_bytes].into_boxed_slice(),
            generation,
        });
        slot.generation = generation;
        let start = col * self.col_bytes;
        slot.data[start..start + self.col_bytes].copy_from_slice(data);
        Ok(())
    }

    /// Flips one bit in a stored row — a transient-error injection hook
    /// for studying the paper's Sec. III-E ECC discussion ("only the
    /// matrix resides in the DRAM for long periods of time with the
    /// possibility of collecting transient errors"). Allocates the row if
    /// it was never written (flipping a bit of an all-zero row).
    ///
    /// # Errors
    ///
    /// [`DramError::AddressOutOfRange`] for bad bank/row indices or a bit
    /// index beyond the row.
    pub fn flip_bit(&mut self, bank: usize, row: usize, bit: usize) -> Result<(), DramError> {
        self.check_bank_row(bank, row)?;
        if bit >= self.row_bytes * 8 {
            return Err(DramError::AddressOutOfRange {
                kind: "bit",
                index: bit,
                limit: self.row_bytes * 8,
            });
        }
        let row_bytes = self.row_bytes;
        let generation = self.bump_generation();
        let slot = self.banks[bank][row].get_or_insert_with(|| RowSlot {
            data: vec![0u8; row_bytes].into_boxed_slice(),
            generation,
        });
        slot.generation = generation;
        slot.data[bit / 8] ^= 1 << (bit % 8);
        Ok(())
    }

    /// Number of rows that have been materialized (allocated) so far.
    #[must_use]
    pub fn allocated_rows(&self) -> usize {
        self.banks
            .iter()
            .map(|b| b.iter().filter(|r| r.is_some()).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storage() -> Storage {
        Storage::new(&DramConfig::hbm2e_like())
    }

    #[test]
    fn unwritten_rows_read_as_zero() {
        let s = storage();
        assert!(s.row(3, 100).unwrap().iter().all(|&b| b == 0));
        assert!(s.column(3, 100, 31).unwrap().iter().all(|&b| b == 0));
        assert_eq!(s.allocated_rows(), 0);
    }

    #[test]
    fn row_write_read_roundtrip() {
        let mut s = storage();
        let data: Vec<u8> = (0..1024).map(|i| (i % 256) as u8).collect();
        s.write_row(0, 5, &data).unwrap();
        assert_eq!(s.row(0, 5).unwrap(), &data[..]);
        // Column 2 covers bytes 64..96.
        assert_eq!(s.column(0, 5, 2).unwrap(), &data[64..96]);
        assert_eq!(s.allocated_rows(), 1);
    }

    #[test]
    fn column_write_allocates_and_preserves_rest() {
        let mut s = storage();
        s.write_column(1, 7, 3, &[0xFFu8; 32]).unwrap();
        let row = s.row(1, 7).unwrap();
        assert!(row[..96].iter().all(|&b| b == 0));
        assert!(row[96..128].iter().all(|&b| b == 0xFF));
        assert!(row[128..].iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_range_indices_are_rejected() {
        let mut s = storage();
        assert!(matches!(
            s.row(16, 0),
            Err(DramError::AddressOutOfRange { kind: "bank", .. })
        ));
        assert!(matches!(
            s.row(0, 32_768),
            Err(DramError::AddressOutOfRange { kind: "row", .. })
        ));
        assert!(matches!(
            s.column(0, 0, 32),
            Err(DramError::AddressOutOfRange { kind: "column", .. })
        ));
        assert!(matches!(
            s.write_column(0, 0, 32, &[0u8; 32]),
            Err(DramError::AddressOutOfRange { kind: "column", .. })
        ));
    }

    #[test]
    fn flip_bit_injects_and_reverts_faults() {
        let mut s = storage();
        s.write_row(0, 3, &vec![0u8; 1024]).unwrap();
        s.flip_bit(0, 3, 17).unwrap();
        assert_eq!(s.row(0, 3).unwrap()[2], 0b10, "bit 17 = byte 2 bit 1");
        // Flipping again restores the original value.
        s.flip_bit(0, 3, 17).unwrap();
        assert!(s.row(0, 3).unwrap().iter().all(|&b| b == 0));
        // Works on never-written rows too.
        s.flip_bit(1, 0, 0).unwrap();
        assert_eq!(s.row(1, 0).unwrap()[0], 1);
        // Bounds.
        assert!(s.flip_bit(0, 3, 1024 * 8).is_err());
        assert!(s.flip_bit(16, 0, 0).is_err());
    }

    #[test]
    fn generations_start_at_zero_and_bump_on_every_mutation() {
        let mut s = storage();
        assert_eq!(s.row_generation(0, 5).unwrap(), 0, "unwritten row");

        s.write_row(0, 5, &vec![0u8; 1024]).unwrap();
        let g1 = s.row_generation(0, 5).unwrap();
        assert!(g1 > 0);

        s.write_column(0, 5, 2, &[0xAAu8; 32]).unwrap();
        let g2 = s.row_generation(0, 5).unwrap();
        assert!(g2 > g1, "write_column must bump the generation");

        s.flip_bit(0, 5, 3).unwrap();
        let g3 = s.row_generation(0, 5).unwrap();
        assert!(g3 > g2, "flip_bit must bump the generation");

        // Other rows are unaffected, and a row first touched later still
        // gets a generation never seen on any row before.
        assert_eq!(s.row_generation(0, 6).unwrap(), 0);
        s.write_column(1, 0, 0, &[0u8; 32]).unwrap();
        assert!(s.row_generation(1, 0).unwrap() > g3);

        // Reads never bump.
        let _ = s.row(0, 5).unwrap();
        let _ = s.column(0, 5, 0).unwrap();
        assert_eq!(s.row_generation(0, 5).unwrap(), g3);

        // Bounds.
        assert!(s.row_generation(16, 0).is_err());
    }

    #[test]
    fn wrong_sizes_are_rejected() {
        let mut s = storage();
        assert!(matches!(
            s.write_row(0, 0, &[0u8; 100]),
            Err(DramError::StorageSize {
                expected: 1024,
                actual: 100
            })
        ));
        assert!(matches!(
            s.write_column(0, 0, 0, &[0u8; 31]),
            Err(DramError::StorageSize {
                expected: 32,
                actual: 31
            })
        ));
    }
}
