//! DRAMsim2-style INI configuration loading.
//!
//! The paper's simulator is "based on the cycle-level DRAMsim2 simulator",
//! which reads device parameters from `.ini` files (`NUM_BANKS=16`,
//! `tRCD=13.75`, ...). This module accepts the same flavor of plain
//! `KEY=value` text — comments with `;` or `#`, case-insensitive keys,
//! unknown keys rejected loudly — so device configurations can live in
//! files rather than code.
//!
//! # Example
//!
//! ```
//! use newton_dram::ini::parse_config;
//!
//! let cfg = parse_config(
//!     "; my device\n\
//!      NUM_BANKS = 8\n\
//!      tCCD = 8\n\
//!      tFAW = 40\n",
//! )?;
//! assert_eq!(cfg.banks, 8);
//! assert_eq!(cfg.timing.t_ccd_ns, 8.0);
//! # Ok::<(), newton_dram::DramError>(())
//! ```

use crate::config::DramConfig;
use crate::error::DramError;

/// Parses a DRAMsim2-flavored INI string into a [`DramConfig`].
///
/// Unset keys keep the HBM2E-like defaults, so a file needs to name only
/// what differs. Recognized keys (case-insensitive):
///
/// `NUM_BANKS`, `NUM_ROWS`, `NUM_COLS`, `COL_IO_BITS`, `tCK`, `tRCD`,
/// `tRP`, `tRAS`, `tCCD`, `tRRD`, `tFAW`, `tRTP`, `tWR`, `tAA` (alias
/// `tCL`), `tREFI`, `tRFC`, `tCMD`.
///
/// # Errors
///
/// [`DramError::InvalidConfig`] for malformed lines, unknown keys,
/// unparsable values, or a configuration that fails validation.
pub fn parse_config(text: &str) -> Result<DramConfig, DramError> {
    let mut cfg = DramConfig::hbm2e_like();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() || line.starts_with('[') {
            continue; // blank, or a section header we accept and ignore
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(DramError::InvalidConfig(format!(
                "line {}: expected KEY=value, got {raw:?}",
                lineno + 1
            )));
        };
        let key_norm = key.trim().to_ascii_uppercase();
        let value = value.trim();
        let bad_value = |what: &str| {
            DramError::InvalidConfig(format!(
                "line {}: invalid {what} value {value:?} for {key_norm}",
                lineno + 1
            ))
        };
        let as_usize = |v: &str| v.parse::<usize>().map_err(|_| bad_value("integer"));
        let as_f64 = |v: &str| v.parse::<f64>().map_err(|_| bad_value("numeric"));
        match key_norm.as_str() {
            "NUM_BANKS" => cfg.banks = as_usize(value)?,
            "NUM_ROWS" => cfg.rows_per_bank = as_usize(value)?,
            "NUM_COLS" => cfg.cols_per_row = as_usize(value)?,
            "COL_IO_BITS" => cfg.col_io_bits = as_usize(value)?,
            "TCK" => cfg.timing.tck_ns = as_f64(value)?,
            "TRCD" => cfg.timing.t_rcd_ns = as_f64(value)?,
            "TRP" => cfg.timing.t_rp_ns = as_f64(value)?,
            "TRAS" => cfg.timing.t_ras_ns = as_f64(value)?,
            "TCCD" => cfg.timing.t_ccd_ns = as_f64(value)?,
            "TRRD" => cfg.timing.t_rrd_ns = as_f64(value)?,
            "TFAW" => cfg.timing.t_faw_ns = as_f64(value)?,
            "TRTP" => cfg.timing.t_rtp_ns = as_f64(value)?,
            "TWR" => cfg.timing.t_wr_ns = as_f64(value)?,
            "TAA" | "TCL" => cfg.timing.t_aa_ns = as_f64(value)?,
            "TREFI" => cfg.timing.t_refi_ns = as_f64(value)?,
            "TRFC" => cfg.timing.t_rfc_ns = as_f64(value)?,
            "TCMD" => cfg.timing.t_cmd_ns = as_f64(value)?,
            other => {
                return Err(DramError::InvalidConfig(format!(
                    "line {}: unknown key {other:?}",
                    lineno + 1
                )))
            }
        }
    }
    cfg.validate()?;
    Ok(cfg)
}

/// Renders a [`DramConfig`] back to the INI format (round-trip support
/// and a way to snapshot a programmatic configuration to a file).
#[must_use]
pub fn render_config(cfg: &DramConfig) -> String {
    format!(
        "; newton-dram device configuration\n\
         NUM_BANKS={}\nNUM_ROWS={}\nNUM_COLS={}\nCOL_IO_BITS={}\n\
         tCK={}\ntRCD={}\ntRP={}\ntRAS={}\ntCCD={}\ntRRD={}\ntFAW={}\n\
         tRTP={}\ntWR={}\ntAA={}\ntREFI={}\ntRFC={}\ntCMD={}\n",
        cfg.banks,
        cfg.rows_per_bank,
        cfg.cols_per_row,
        cfg.col_io_bits,
        cfg.timing.tck_ns,
        cfg.timing.t_rcd_ns,
        cfg.timing.t_rp_ns,
        cfg.timing.t_ras_ns,
        cfg.timing.t_ccd_ns,
        cfg.timing.t_rrd_ns,
        cfg.timing.t_faw_ns,
        cfg.timing.t_rtp_ns,
        cfg.timing.t_wr_ns,
        cfg.timing.t_aa_ns,
        cfg.timing.t_refi_ns,
        cfg.timing.t_rfc_ns,
        cfg.timing.t_cmd_ns,
    )
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(i) => &line[..i],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_survive_an_empty_file() {
        let cfg = parse_config("").unwrap();
        assert_eq!(cfg, DramConfig::hbm2e_like());
    }

    #[test]
    fn overrides_comments_and_case_are_handled() {
        let cfg = parse_config(
            "# GDDR-ish overrides\n\
             [device]\n\
             num_banks = 8   ; fewer banks\n\
             TCCD=2\n\
             tFaw = 24\n\
             \n",
        )
        .unwrap();
        assert_eq!(cfg.banks, 8);
        assert_eq!(cfg.timing.t_ccd_ns, 2.0);
        assert_eq!(cfg.timing.t_faw_ns, 24.0);
        // Untouched keys keep HBM2E defaults.
        assert_eq!(cfg.timing.t_rcd_ns, 14.0);
    }

    #[test]
    fn tcl_is_an_alias_for_taa() {
        let cfg = parse_config("tCL=22\n").unwrap();
        assert_eq!(cfg.timing.t_aa_ns, 22.0);
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        let err = parse_config("NUM_BANKS=16\nbogus line\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = parse_config("WHATEVER=3\n").unwrap_err();
        assert!(err.to_string().contains("unknown key"), "{err}");
        let err = parse_config("NUM_BANKS=sixteen\n").unwrap_err();
        assert!(err.to_string().contains("invalid integer"), "{err}");
        let err = parse_config("tRCD=fast\n").unwrap_err();
        assert!(err.to_string().contains("invalid numeric"), "{err}");
    }

    #[test]
    fn invalid_resulting_configs_fail_validation() {
        // tRAS < tRCD is caught by the existing validator.
        let err = parse_config("tRAS=5\n").unwrap_err();
        assert!(err.to_string().contains("tRAS"), "{err}");
    }

    #[test]
    fn render_parse_roundtrip() {
        for cfg in [
            DramConfig::hbm2e_like(),
            DramConfig::gddr6_like(),
            DramConfig::lpddr4_like(),
            DramConfig::ddr4_like(),
        ] {
            let text = render_config(&cfg);
            let back = parse_config(&text).unwrap();
            assert_eq!(back, cfg);
        }
    }
}
