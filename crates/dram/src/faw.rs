//! Rank-level activation-rate constraints: tRRD and the rolling
//! four-activation window (tFAW).
//!
//! The tFAW window exists because "many concurrent ACT command operations
//! cause severe internal voltage drop ... requiring long delays to recover"
//! (paper Sec. III-D, Fig. 6). Newton's G_ACT command gangs four bank
//! activations into one command *within tFAW constraints*, so the tracker
//! must support placing `n` simultaneous activations — successive G_ACTs
//! then end up spaced by `max(tRRD, tFAW)` exactly as the paper's
//! performance model assumes.

use crate::timing::{Cycle, Timing};

/// Maximum activations allowed inside one tFAW window.
pub const FAW_LIMIT: usize = 4;

/// Sliding-window tracker for rank-wide activation constraints.
///
/// # Example
///
/// ```
/// use newton_dram::faw::FawTracker;
/// use newton_dram::TimingParams;
///
/// let t = TimingParams::hbm2e_like().to_cycles().unwrap();
/// let mut faw = FawTracker::new();
/// // A ganged 4-bank activation at cycle 0 ...
/// assert_eq!(faw.earliest_activate(0, 4, &t), 0);
/// faw.record(0, 4);
/// // ... forces the next ganged activation a full tFAW later.
/// assert_eq!(faw.earliest_activate(0, 4, &t), t.t_faw);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FawTracker {
    /// Timestamps of the most recent activations, oldest first. At most
    /// [`FAW_LIMIT`] entries are ever relevant.
    recent: Vec<Cycle>,
    /// Timestamp of the most recent activation (drives tRRD).
    last_act: Option<Cycle>,
}

impl FawTracker {
    /// Creates a tracker with no activation history.
    #[must_use]
    pub fn new() -> FawTracker {
        FawTracker::default()
    }

    /// Earliest cycle `>= hint` at which `n` simultaneous activations may
    /// issue without violating tRRD or tFAW.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 4` (no DRAM allows more than four
    /// activations per window, so requesting more can never succeed).
    #[must_use]
    pub fn earliest_activate(&self, hint: Cycle, n: usize, t: &Timing) -> Cycle {
        assert!(
            (1..=FAW_LIMIT).contains(&n),
            "activation gang size must be 1..=4, got {n}"
        );
        let mut earliest = hint;
        if let Some(last) = self.last_act {
            earliest = earliest.max(last + t.t_rrd);
        }
        // After placing `n` activations at cycle `c`, the window
        // (c - tFAW, c] must contain at most FAW_LIMIT - n prior
        // activations. The entries are sorted; the newest `FAW_LIMIT - n`
        // may stay inside the window, so the `(len - (FAW_LIMIT - n))`-th
        // newest must have fallen out: c >= that_entry + tFAW.
        let allowed_inside = FAW_LIMIT - n;
        if self.recent.len() > allowed_inside {
            let must_expire_idx = self.recent.len() - allowed_inside - 1;
            earliest = earliest.max(self.recent[must_expire_idx] + t.t_faw);
        }
        earliest
    }

    /// Records `n` simultaneous activations at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 4`, or if `cycle` precedes an already
    /// recorded activation (history must be appended in time order).
    pub fn record(&mut self, cycle: Cycle, n: usize) {
        assert!(
            (1..=FAW_LIMIT).contains(&n),
            "activation gang size must be 1..=4, got {n}"
        );
        if let Some(&last) = self.recent.last() {
            assert!(
                cycle >= last,
                "activations must be recorded in time order ({cycle} < {last})"
            );
        }
        for _ in 0..n {
            self.recent.push(cycle);
        }
        let len = self.recent.len();
        if len > FAW_LIMIT {
            self.recent.drain(..len - FAW_LIMIT);
        }
        self.last_act = Some(cycle);
    }

    /// The most recent activation timestamp, if any.
    #[must_use]
    pub fn last_activate(&self) -> Option<Cycle> {
        self.last_act
    }

    /// One-pass batch of [`FawTracker::earliest_activate`] floors at
    /// `hint = 0` for every gang size: `floors[n - 1]` is the earliest
    /// cycle `n` simultaneous activations may issue. A scheduler that
    /// evaluates many banks (or several gang sizes) per decision reads
    /// the sliding window once per round instead of re-walking it per
    /// candidate.
    #[must_use]
    pub fn activate_floors(&self, t: &Timing) -> [Cycle; FAW_LIMIT] {
        let rrd = self.last_act.map_or(0, |last| last + t.t_rrd);
        let mut floors = [rrd; FAW_LIMIT];
        let len = self.recent.len();
        for (i, floor) in floors.iter_mut().enumerate() {
            let allowed_inside = FAW_LIMIT - (i + 1);
            if len > allowed_inside {
                let must_expire_idx = len - allowed_inside - 1;
                *floor = (*floor).max(self.recent[must_expire_idx] + t.t_faw);
            }
        }
        floors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingParams;

    fn timing() -> Timing {
        TimingParams::hbm2e_like().to_cycles().unwrap()
    }

    #[test]
    fn trrd_spaces_individual_activations() {
        let t = timing();
        let mut faw = FawTracker::new();
        assert_eq!(faw.earliest_activate(0, 1, &t), 0);
        faw.record(0, 1);
        assert_eq!(faw.earliest_activate(0, 1, &t), t.t_rrd);
        faw.record(t.t_rrd, 1);
        assert_eq!(faw.last_activate(), Some(t.t_rrd));
    }

    #[test]
    fn fifth_activation_waits_for_the_window() {
        let t = timing();
        let mut faw = FawTracker::new();
        // Four activations as fast as tRRD allows.
        let mut c = 0;
        for _ in 0..4 {
            c = faw.earliest_activate(c, 1, &t);
            faw.record(c, 1);
            assert!(c < t.t_faw, "first four fit inside the window");
        }
        // The fifth must wait until the first leaves the window.
        assert_eq!(faw.earliest_activate(0, 1, &t), t.t_faw);
    }

    #[test]
    fn ganged_activations_consume_the_whole_window() {
        let t = timing();
        let mut faw = FawTracker::new();
        faw.record(0, 4);
        // Any further activation — even a single one — waits a full tFAW.
        assert_eq!(faw.earliest_activate(0, 1, &t), t.t_faw);
        assert_eq!(faw.earliest_activate(0, 4, &t), t.t_faw);
        // Successive G_ACTs are spaced by max(tRRD, tFAW) = tFAW,
        // matching the paper's Sec. III-F model term.
        faw.record(t.t_faw, 4);
        assert_eq!(faw.earliest_activate(0, 4, &t), 2 * t.t_faw);
    }

    #[test]
    fn mixed_gang_sizes_share_the_window() {
        let t = timing();
        let mut faw = FawTracker::new();
        faw.record(0, 2);
        // Two more fit immediately (subject to tRRD).
        assert_eq!(faw.earliest_activate(0, 2, &t), t.t_rrd);
        faw.record(t.t_rrd, 2);
        // Window now holds 4; a gang of 2 must wait for the *second
        // newest* pair to age out: the pair at cycle 0.
        assert_eq!(faw.earliest_activate(0, 2, &t), t.t_faw);
    }

    #[test]
    #[should_panic(expected = "gang size")]
    fn zero_gang_rejected() {
        let t = timing();
        let _ = FawTracker::new().earliest_activate(0, 0, &t);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_recording_rejected() {
        let mut faw = FawTracker::new();
        faw.record(100, 1);
        faw.record(50, 1);
    }

    #[test]
    fn hint_is_respected() {
        let t = timing();
        let faw = FawTracker::new();
        assert_eq!(faw.earliest_activate(12345, 4, &t), 12345);
    }

    #[test]
    fn activate_floors_agree_with_per_size_queries() {
        let t = timing();
        let mut faw = FawTracker::new();
        // Exercise empty, partial, and full windows, mixed gang sizes.
        for (cycle, n) in [(0, 1), (6, 2), (40, 4), (80, 1), (85, 3)] {
            let floors = faw.activate_floors(&t);
            for (i, &floor) in floors.iter().enumerate() {
                assert_eq!(floor, faw.earliest_activate(0, i + 1, &t), "n = {}", i + 1);
            }
            faw.record(cycle, n);
        }
        let floors = faw.activate_floors(&t);
        for (i, &floor) in floors.iter().enumerate() {
            assert_eq!(floor, faw.earliest_activate(0, i + 1, &t));
        }
    }
}
