//! Error types for the DRAM simulator.

use std::error::Error;
use std::fmt;

use crate::timing::Cycle;

/// An error raised by the DRAM channel model.
///
/// Timing violations are *simulator-user* bugs (a controller issued a
/// command earlier than the constraint engine allows), so they carry enough
/// context to debug the offending command stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DramError {
    /// A command was issued before its earliest legal cycle.
    Timing {
        /// Human-readable name of the violated constraint (e.g. `"tRCD"`).
        constraint: &'static str,
        /// The cycle the command was issued at.
        issued: Cycle,
        /// The earliest cycle the command would have been legal.
        earliest: Cycle,
        /// The bank involved, if the constraint is bank-scoped.
        bank: Option<usize>,
    },
    /// An activate was issued to a bank that already has an open row, or a
    /// column access / precharge was issued to a bank in the wrong state.
    BankState {
        /// The bank involved.
        bank: usize,
        /// What the controller tried to do.
        attempted: &'static str,
        /// The state the bank was actually in.
        actual: String,
    },
    /// A bank, row, or column index was outside the configured geometry.
    AddressOutOfRange {
        /// Which coordinate overflowed.
        kind: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive limit for that coordinate.
        limit: usize,
    },
    /// A configuration failed validation.
    InvalidConfig(String),
    /// A refresh deadline elapsed without a refresh being issued.
    RefreshOverdue {
        /// The cycle at which the refresh interval expired.
        deadline: Cycle,
        /// The cycle at which the violation was detected.
        observed: Cycle,
    },
    /// A functional storage access had a malformed size.
    StorageSize {
        /// What the access expected.
        expected: usize,
        /// What the caller provided.
        actual: usize,
    },
    /// The SECDED scrub detected a multi-bit error it cannot correct.
    /// Unlike the other variants this is not a simulator-user bug — it is
    /// the device faithfully reporting damaged data so upper layers can
    /// recover (scrub-rewrite, bank retirement) instead of silently
    /// computing on garbage.
    Uncorrectable {
        /// The bank holding the damaged row.
        bank: usize,
        /// The damaged row.
        row: usize,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::Timing {
                constraint,
                issued,
                earliest,
                bank,
            } => match bank {
                Some(b) => write!(
                    f,
                    "timing violation of {constraint} on bank {b}: issued at cycle {issued}, \
                     earliest legal cycle is {earliest}"
                ),
                None => write!(
                    f,
                    "timing violation of {constraint}: issued at cycle {issued}, \
                     earliest legal cycle is {earliest}"
                ),
            },
            DramError::BankState {
                bank,
                attempted,
                actual,
            } => write!(
                f,
                "illegal bank operation: attempted {attempted} on bank {bank} in state {actual}"
            ),
            DramError::AddressOutOfRange { kind, index, limit } => {
                write!(f, "{kind} index {index} out of range (limit {limit})")
            }
            DramError::InvalidConfig(msg) => write!(f, "invalid DRAM configuration: {msg}"),
            DramError::RefreshOverdue { deadline, observed } => write!(
                f,
                "refresh overdue: deadline was cycle {deadline}, observed at cycle {observed}"
            ),
            DramError::StorageSize { expected, actual } => write!(
                f,
                "storage access size mismatch: expected {expected} bytes, got {actual}"
            ),
            DramError::Uncorrectable { bank, row } => write!(
                f,
                "uncorrectable ECC error: multi-bit fault in bank {bank} row {row}"
            ),
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = DramError::Timing {
            constraint: "tRCD",
            issued: 10,
            earliest: 14,
            bank: Some(3),
        };
        let s = e.to_string();
        assert!(s.contains("tRCD") && s.contains("bank 3") && s.contains("14"));

        let e = DramError::AddressOutOfRange {
            kind: "row",
            index: 40000,
            limit: 32768,
        };
        assert!(e.to_string().contains("row index 40000"));

        let e = DramError::StorageSize {
            expected: 1024,
            actual: 512,
        };
        assert!(e.to_string().contains("expected 1024"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_good_err<E: Error + Send + Sync + 'static>() {}
        assert_good_err::<DramError>();
    }
}
