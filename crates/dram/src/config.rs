//! Channel geometry configuration and validation.

use crate::error::DramError;
use crate::timing::TimingParams;

/// Geometry and timing of one DRAM (pseudo-)channel.
///
/// The paper's configuration (Table III): 16 banks per channel, 32 K rows
/// per bank, 32 column I/Os per row at 256 bits each (1 KB rows = 512
/// bfloat16 elements).
///
/// # Example
///
/// ```
/// use newton_dram::DramConfig;
/// let cfg = DramConfig::hbm2e_like();
/// assert_eq!(cfg.banks, 16);
/// assert_eq!(cfg.row_bytes(), 1024);
/// assert_eq!(cfg.col_bytes(), 32);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Number of banks in the channel.
    pub banks: usize,
    /// Number of DRAM rows per bank.
    pub rows_per_bank: usize,
    /// Number of column I/O accesses that cover one row.
    pub cols_per_row: usize,
    /// Width of one column I/O in bits (256 in Table III).
    pub col_io_bits: usize,
    /// Timing parameters (nanoseconds).
    pub timing: TimingParams,
}

impl DramConfig {
    /// The paper's HBM2E-like channel (Table III) with baseline tFAW.
    #[must_use]
    pub fn hbm2e_like() -> DramConfig {
        DramConfig {
            banks: 16,
            rows_per_bank: 32_768,
            cols_per_row: 32,
            col_io_bits: 256,
            timing: TimingParams::hbm2e_like(),
        }
    }

    /// The HBM2E-like channel with Newton's aggressive tFAW (Sec. III-D).
    #[must_use]
    pub fn hbm2e_like_aggressive_tfaw() -> DramConfig {
        DramConfig {
            timing: TimingParams::hbm2e_like_aggressive_tfaw(),
            ..DramConfig::hbm2e_like()
        }
    }

    /// Same geometry with a different bank count (Fig. 10 sweeps 8/16/32).
    #[must_use]
    pub fn with_banks(mut self, banks: usize) -> DramConfig {
        self.banks = banks;
        self
    }

    /// A GDDR6-like channel: 16 banks, 2 KB rows consumed as 64 column
    /// I/Os of 256 bits at a 2 ns cadence (Sec. III-E: Newton's ideas
    /// apply to "other DRAM families such as LPDDR, DDR, and GDDR").
    #[must_use]
    pub fn gddr6_like() -> DramConfig {
        DramConfig {
            banks: 16,
            rows_per_bank: 16_384,
            cols_per_row: 64,
            col_io_bits: 256,
            timing: TimingParams::gddr6_like(),
        }
    }

    /// An LPDDR4-like channel: 8 banks, 2 KB rows at an 8 ns column
    /// cadence.
    #[must_use]
    pub fn lpddr4_like() -> DramConfig {
        DramConfig {
            banks: 8,
            rows_per_bank: 32_768,
            cols_per_row: 64,
            col_io_bits: 256,
            timing: TimingParams::lpddr4_like(),
        }
    }

    /// A DDR4-like channel: 16 banks, 1 KB rows at a 5 ns column cadence.
    #[must_use]
    pub fn ddr4_like() -> DramConfig {
        DramConfig {
            banks: 16,
            rows_per_bank: 65_536,
            cols_per_row: 32,
            col_io_bits: 256,
            timing: TimingParams::ddr4_like(),
        }
    }

    /// Bytes per column I/O access.
    #[must_use]
    pub fn col_bytes(&self) -> usize {
        self.col_io_bits / 8
    }

    /// Bytes per DRAM row.
    #[must_use]
    pub fn row_bytes(&self) -> usize {
        self.cols_per_row * self.col_bytes()
    }

    /// Total channel capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.banks * self.rows_per_bank * self.row_bytes()
    }

    /// Peak external data bandwidth in bytes per nanosecond: one column I/O
    /// per tCCD through the single global bus (Sec. II-A: "the data
    /// retrieval from different banks are serialized through the global
    /// bus").
    #[must_use]
    pub fn external_bandwidth_bytes_per_ns(&self) -> f64 {
        self.col_bytes() as f64 / self.timing.t_ccd_ns
    }

    /// Peak internal data bandwidth: all banks retrieving a column per tCCD
    /// in parallel — the bandwidth PIM exposes (Sec. II-A).
    #[must_use]
    pub fn internal_bandwidth_bytes_per_ns(&self) -> f64 {
        self.external_bandwidth_bytes_per_ns() * self.banks as f64
    }

    /// Validates geometry and timing.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] when any dimension is zero, the
    /// column width is not a positive multiple of 8 bits, or the timing
    /// parameters are inconsistent.
    pub fn validate(&self) -> Result<(), DramError> {
        if self.banks == 0 {
            return Err(DramError::InvalidConfig("banks must be > 0".into()));
        }
        if self.rows_per_bank == 0 {
            return Err(DramError::InvalidConfig("rows_per_bank must be > 0".into()));
        }
        if self.cols_per_row == 0 {
            return Err(DramError::InvalidConfig("cols_per_row must be > 0".into()));
        }
        if self.col_io_bits == 0 || !self.col_io_bits.is_multiple_of(8) {
            return Err(DramError::InvalidConfig(format!(
                "col_io_bits must be a positive multiple of 8, got {}",
                self.col_io_bits
            )));
        }
        self.timing.to_cycles().map(|_| ())
    }
}

impl Default for DramConfig {
    /// Defaults to [`DramConfig::hbm2e_like`].
    fn default() -> DramConfig {
        DramConfig::hbm2e_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_geometry() {
        let cfg = DramConfig::hbm2e_like();
        assert_eq!(cfg.banks, 16);
        assert_eq!(cfg.rows_per_bank, 32_768);
        assert_eq!(cfg.cols_per_row, 32);
        assert_eq!(cfg.col_io_bits, 256);
        // 1 KB rows, 32 B column accesses, 512 bf16 elements per row.
        assert_eq!(cfg.row_bytes(), 1024);
        assert_eq!(cfg.col_bytes(), 32);
        assert_eq!(cfg.row_bytes() / 2, 512);
        // Per-channel capacity: 16 banks x 32 K rows x 1 KB = 512 MiB.
        assert_eq!(cfg.capacity_bytes(), 512 << 20);
        cfg.validate().unwrap();
    }

    #[test]
    fn bandwidth_ratio_is_bank_count() {
        let cfg = DramConfig::hbm2e_like();
        let ext = cfg.external_bandwidth_bytes_per_ns();
        let int = cfg.internal_bandwidth_bytes_per_ns();
        assert_eq!(ext, 8.0); // 32 B / 4 ns
        assert_eq!(int / ext, cfg.banks as f64);
    }

    #[test]
    fn with_banks_rescales_geometry() {
        let cfg = DramConfig::hbm2e_like().with_banks(32);
        assert_eq!(cfg.banks, 32);
        cfg.validate().unwrap();
    }

    #[test]
    fn zero_dimensions_rejected() {
        for mutate in [
            (|c: &mut DramConfig| c.banks = 0) as fn(&mut DramConfig),
            |c| c.rows_per_bank = 0,
            |c| c.cols_per_row = 0,
            |c| c.col_io_bits = 0,
            |c| c.col_io_bits = 12,
        ] {
            let mut cfg = DramConfig::hbm2e_like();
            mutate(&mut cfg);
            assert!(cfg.validate().is_err(), "{cfg:?} should be invalid");
        }
    }

    #[test]
    fn default_is_hbm2e() {
        assert_eq!(DramConfig::default(), DramConfig::hbm2e_like());
    }

    #[test]
    fn other_dram_families_validate_and_differ_sensibly() {
        let gddr6 = DramConfig::gddr6_like();
        let lpddr4 = DramConfig::lpddr4_like();
        let ddr4 = DramConfig::ddr4_like();
        for cfg in [&gddr6, &lpddr4, &ddr4] {
            cfg.validate().unwrap();
            assert_eq!(
                cfg.col_bytes(),
                32,
                "all families keep 16 bf16 per column I/O"
            );
        }
        // GDDR6 is the fastest per channel, LPDDR4 the slowest.
        assert!(gddr6.external_bandwidth_bytes_per_ns() > ddr4.external_bandwidth_bytes_per_ns());
        assert!(ddr4.external_bandwidth_bytes_per_ns() > lpddr4.external_bandwidth_bytes_per_ns());
        // Row sizes: GDDR6/LPDDR4 2 KB, DDR4 1 KB.
        assert_eq!(gddr6.row_bytes(), 2048);
        assert_eq!(lpddr4.row_bytes(), 2048);
        assert_eq!(ddr4.row_bytes(), 1024);
    }
}
