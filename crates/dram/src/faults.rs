//! Deterministic fault-injection campaigns over functional row storage.
//!
//! The paper's Sec. III-E notes that with Newton "only the matrix resides
//! in the DRAM for long periods of time with the possibility of collecting
//! transient errors" — so campaigns here target *allocated* rows (the
//! resident matrix), drawing every coordinate from a counter-based
//! splitmix-style generator: the same [`CampaignSpec`] always injects the
//! same faults, independent of thread count, iteration order, or platform
//! (the property the determinism suite locks in).
//!
//! Four fault classes are modelled:
//!
//! * **single-bit flips** — one flipped bit per 64-bit word, each in a
//!   distinct word, so a SECDED scrub must correct all of them exactly;
//! * **double-bit words** — two flipped bits in one word: detected
//!   uncorrectable, exercising the scrub-rewrite / bank-retirement path;
//! * **stuck-at cells** — permanent defects re-asserted after every
//!   rewrite (see [`Storage::set_stuck`](crate::Storage::set_stuck));
//! * **retention decay** — extra single-bit flips in every resident row
//!   once the channel has gone longer than `refi_multiple × tREFI` without
//!   a refresh (a coarse model of cells leaking past their retention
//!   time).
//!
//! All injection goes through [`Storage::flip_bit`](crate::Storage) /
//! `set_stuck`, i.e. the generation-counter path, so decoded-weight caches
//! above the channel invalidate correctly.

use std::collections::BTreeSet;

use crate::channel::Channel;
use crate::ecc::{self, WORD_BYTES};
use crate::error::DramError;
use crate::timing::Cycle;

/// Fixed-increment constant of the splitmix64 counter stream.
///
/// This generator intentionally mirrors `newton_workloads::rng` (same
/// `mix64` finalizer, same golden-ratio increment); the crate dependency
/// points the other way (`newton-workloads` sits above `newton-dram`), so
/// the ~10 lines are replicated here rather than inverting the graph.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// The splitmix64 finalizer: a bijective avalanche mix.
#[inline]
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A counter-based random stream: `u64_at(k)` is a pure function of
/// `(seed, k)`, so any draw can be computed independently of the others.
#[derive(Debug, Clone, Copy)]
pub struct CounterRng {
    key: u64,
}

impl CounterRng {
    /// A stream keyed by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> CounterRng {
        CounterRng { key: mix64(seed) }
    }

    /// The `k`-th draw of the stream.
    #[inline]
    #[must_use]
    pub fn u64_at(&self, k: u64) -> u64 {
        mix64(self.key.wrapping_add((k + 1).wrapping_mul(GOLDEN)))
    }
}

/// Retention-decay parameters of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionSpec {
    /// Rows are stale once the channel has gone more than
    /// `refi_multiple × tREFI` cycles without an all-bank refresh.
    pub refi_multiple: u64,
    /// Single-bit flips injected into each stale resident row.
    pub flips_per_stale_row: usize,
}

/// A deterministic fault-injection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Seed of the counter stream every coordinate is drawn from.
    pub seed: u64,
    /// Single-bit flips, each in a distinct 64-bit word.
    pub single_bit_flips: usize,
    /// Words receiving exactly two bit flips (uncorrectable under SECDED).
    pub double_bit_words: usize,
    /// Permanently stuck cells (value drawn from the stream).
    pub stuck_cells: usize,
    /// Optional retention-decay model.
    pub retention: Option<RetentionSpec>,
}

impl CampaignSpec {
    /// A quiet campaign: nothing injected.
    #[must_use]
    pub fn none(seed: u64) -> CampaignSpec {
        CampaignSpec {
            seed,
            single_bit_flips: 0,
            double_bit_words: 0,
            stuck_cells: 0,
            retention: None,
        }
    }

    /// The same campaign re-keyed for one channel of a multi-channel
    /// system: decorrelates the streams while keeping the whole system a
    /// pure function of the base seed.
    #[must_use]
    pub fn for_channel(&self, channel: usize) -> CampaignSpec {
        CampaignSpec {
            seed: mix64(self.seed ^ (channel as u64).wrapping_mul(GOLDEN)),
            ..*self
        }
    }
}

/// Which fault class an injected fault belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A lone flipped bit (correctable under SECDED).
    SingleFlip,
    /// One of the two flips of a double-bit word (uncorrectable).
    DoubleFlip,
    /// A cell permanently stuck at `value`.
    StuckAt {
        /// The value the cell is stuck at.
        value: bool,
    },
    /// A retention-decay flip in a stale row.
    RetentionFlip,
}

/// One concretely injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Fault class.
    pub kind: FaultKind,
    /// Bank of the affected row.
    pub bank: usize,
    /// Affected row.
    pub row: usize,
    /// Flipped/stuck bit index within the row.
    pub bit: usize,
}

/// Word-granular fault targets: every fault class claims whole 64-bit
/// words so the classes never alias into accidental multi-bit patterns.
struct TargetPicker {
    rng: CounterRng,
    ctr: u64,
    used: BTreeSet<(usize, usize)>,
}

/// Bounded re-draw attempts before a picker gives up (the word universe
/// of even one resident row dwarfs any realistic campaign, so exhaustion
/// only happens for degenerate tiny configurations).
const MAX_ATTEMPTS: usize = 64;

impl TargetPicker {
    fn draw(&mut self) -> u64 {
        let v = self.rng.u64_at(self.ctr);
        self.ctr += 1;
        v
    }

    /// A not-yet-used word: `(row-list index, word index)`.
    fn pick_word(&mut self, rows: usize, words_per_row: usize) -> Option<(usize, usize)> {
        for _ in 0..MAX_ATTEMPTS {
            let ri = (self.draw() % rows as u64) as usize;
            let w = (self.draw() % words_per_row as u64) as usize;
            if self.used.insert((ri, w)) {
                return Some((ri, w));
            }
        }
        None
    }

    /// A not-yet-used word within one specific row.
    fn pick_word_in_row(&mut self, ri: usize, words_per_row: usize) -> Option<usize> {
        for _ in 0..MAX_ATTEMPTS {
            let w = (self.draw() % words_per_row as u64) as usize;
            if self.used.insert((ri, w)) {
                return Some(w);
            }
        }
        None
    }
}

/// Injects `spec` into `channel`'s resident (allocated) rows, observing
/// retention staleness as of cycle `now`. Returns every injected fault in
/// injection order — a deterministic function of `(spec, resident rows,
/// last refresh)`.
///
/// # Errors
///
/// Propagates storage addressing errors (impossible for well-formed
/// internal draws, but surfaced rather than unwrapped).
pub fn inject(
    channel: &mut Channel,
    now: Cycle,
    spec: &CampaignSpec,
) -> Result<Vec<InjectedFault>, DramError> {
    let rows = channel.storage().allocated_row_indices();
    if rows.is_empty() {
        return Ok(Vec::new());
    }
    let words_per_row = channel.storage().row_bytes() / WORD_BYTES;
    let mut picker = TargetPicker {
        rng: CounterRng::new(spec.seed),
        ctr: 0,
        used: BTreeSet::new(),
    };
    let mut out = Vec::new();

    for _ in 0..spec.single_bit_flips {
        let Some((ri, w)) = picker.pick_word(rows.len(), words_per_row) else {
            break;
        };
        let (bank, row) = rows[ri];
        let bit = w * 64 + (picker.draw() % 64) as usize;
        channel.storage_mut().flip_bit(bank, row, bit)?;
        out.push(InjectedFault {
            kind: FaultKind::SingleFlip,
            bank,
            row,
            bit,
        });
    }

    for _ in 0..spec.double_bit_words {
        let Some((ri, w)) = picker.pick_word(rows.len(), words_per_row) else {
            break;
        };
        let (bank, row) = rows[ri];
        let b1 = (picker.draw() % 64) as usize;
        let mut b2 = (picker.draw() % 64) as usize;
        while b2 == b1 {
            b2 = (picker.draw() % 64) as usize;
        }
        for b in [b1, b2] {
            let bit = w * 64 + b;
            channel.storage_mut().flip_bit(bank, row, bit)?;
            out.push(InjectedFault {
                kind: FaultKind::DoubleFlip,
                bank,
                row,
                bit,
            });
        }
    }

    for _ in 0..spec.stuck_cells {
        let Some((ri, w)) = picker.pick_word(rows.len(), words_per_row) else {
            break;
        };
        let (bank, row) = rows[ri];
        let bit = w * 64 + (picker.draw() % 64) as usize;
        let value = picker.draw() & 1 == 1;
        channel.storage_mut().set_stuck(bank, row, bit, value)?;
        out.push(InjectedFault {
            kind: FaultKind::StuckAt { value },
            bank,
            row,
            bit,
        });
    }

    if let Some(r) = &spec.retention {
        let deadline = ecc::retention_deadline(
            channel.last_refresh(),
            channel.timing().t_refi,
            r.refi_multiple,
        );
        if now > deadline {
            for (ri, &(bank, row)) in rows.iter().enumerate() {
                for _ in 0..r.flips_per_stale_row {
                    let Some(w) = picker.pick_word_in_row(ri, words_per_row) else {
                        break;
                    };
                    let bit = w * 64 + (picker.draw() % 64) as usize;
                    channel.storage_mut().flip_bit(bank, row, bit)?;
                    out.push(InjectedFault {
                        kind: FaultKind::RetentionFlip,
                        bank,
                        row,
                        bit,
                    });
                }
            }
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn loaded_channel() -> Channel {
        let mut ch = Channel::new(DramConfig::hbm2e_like()).unwrap();
        for bank in 0..4 {
            for row in 0..4 {
                let data: Vec<u8> = (0..1024).map(|i| ((i + bank + row) % 256) as u8).collect();
                ch.storage_mut().write_row(bank, row, &data).unwrap();
            }
        }
        ch
    }

    #[test]
    fn counter_rng_matches_workloads_stream() {
        // Cross-crate contract: same (seed, k) → same draw as
        // newton_workloads::rng::CounterRng. Golden values pinned here so
        // either side drifting breaks a test.
        let rng = CounterRng::new(7);
        let a = rng.u64_at(0);
        let b = rng.u64_at(1);
        assert_ne!(a, b);
        assert_eq!(a, rng.u64_at(0), "draws are pure functions of (seed, k)");
        assert_eq!(mix64(0), 0, "splitmix finalizer fixes zero");
        assert_ne!(CounterRng::new(8).u64_at(0), a, "seed changes the stream");
    }

    #[test]
    fn same_spec_injects_identical_faults() {
        let spec = CampaignSpec {
            seed: 42,
            single_bit_flips: 10,
            double_bit_words: 2,
            stuck_cells: 3,
            retention: None,
        };
        let f1 = inject(&mut loaded_channel(), 0, &spec).unwrap();
        let f2 = inject(&mut loaded_channel(), 0, &spec).unwrap();
        assert_eq!(f1, f2);
        assert_eq!(
            f1.len(),
            10 + 2 * 2 + 3,
            "every requested fault lands (universe is large)"
        );
    }

    #[test]
    fn fault_classes_never_share_a_word() {
        let spec = CampaignSpec {
            seed: 9,
            single_bit_flips: 50,
            double_bit_words: 10,
            stuck_cells: 10,
            retention: None,
        };
        let faults = inject(&mut loaded_channel(), 0, &spec).unwrap();
        let mut words = BTreeSet::new();
        for f in &faults {
            let fresh = words.insert((f.bank, f.row, f.bit / 64));
            assert!(
                fresh || matches!(f.kind, FaultKind::DoubleFlip),
                "only double-bit faults may revisit a word: {f:?}"
            );
        }
    }

    #[test]
    fn single_flips_are_correctable_doubles_are_not() {
        let mut ch = loaded_channel();
        ch.storage_mut().enable_ecc();
        let spec = CampaignSpec {
            seed: 1,
            single_bit_flips: 8,
            double_bit_words: 0,
            stuck_cells: 0,
            retention: None,
        };
        inject(&mut ch, 0, &spec).unwrap();
        let mut corrected = 0;
        for (bank, row) in ch.storage().allocated_row_indices() {
            corrected += ch.storage_mut().scrub_row(bank, row).unwrap();
        }
        assert_eq!(corrected, 8);

        let mut ch = loaded_channel();
        ch.storage_mut().enable_ecc();
        let spec = CampaignSpec {
            seed: 1,
            single_bit_flips: 0,
            double_bit_words: 1,
            stuck_cells: 0,
            retention: None,
        };
        let faults = inject(&mut ch, 0, &spec).unwrap();
        assert_eq!(faults.len(), 2);
        assert_eq!(
            ch.storage_mut().scrub_row(faults[0].bank, faults[0].row),
            Err(DramError::Uncorrectable {
                bank: faults[0].bank,
                row: faults[0].row
            })
        );
    }

    #[test]
    fn retention_decay_fires_only_past_the_deadline() {
        let spec = CampaignSpec {
            seed: 3,
            single_bit_flips: 0,
            double_bit_words: 0,
            stuck_cells: 0,
            retention: Some(RetentionSpec {
                refi_multiple: 4,
                flips_per_stale_row: 2,
            }),
        };
        let mut ch = loaded_channel();
        let t_refi = ch.timing().t_refi;
        // Fresh (last refresh at 0, now inside the window): nothing decays.
        assert!(inject(&mut ch, 4 * t_refi, &spec).unwrap().is_empty());
        // Past the window: every resident row decays.
        let faults = inject(&mut ch, 4 * t_refi + 1, &spec).unwrap();
        assert_eq!(faults.len(), 16 * 2, "16 resident rows × 2 flips");
        assert!(faults.iter().all(|f| f.kind == FaultKind::RetentionFlip));
    }

    #[test]
    fn per_channel_specs_decorrelate() {
        let base = CampaignSpec {
            seed: 11,
            single_bit_flips: 5,
            double_bit_words: 0,
            stuck_cells: 0,
            retention: None,
        };
        let f0 = inject(&mut loaded_channel(), 0, &base.for_channel(0)).unwrap();
        let f1 = inject(&mut loaded_channel(), 0, &base.for_channel(1)).unwrap();
        assert_ne!(f0, f1, "channels draw from decorrelated streams");
        assert_eq!(base.for_channel(2), base.for_channel(2), "still pure");
    }

    #[test]
    fn empty_storage_injects_nothing() {
        let mut ch = Channel::new(DramConfig::hbm2e_like()).unwrap();
        let spec = CampaignSpec {
            seed: 5,
            single_bit_flips: 100,
            double_bit_words: 100,
            stuck_cells: 100,
            retention: None,
        };
        assert!(inject(&mut ch, 0, &spec).unwrap().is_empty());
    }
}
