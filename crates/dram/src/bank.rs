//! Per-bank state machine and same-bank timing constraints.
//!
//! Each bank tracks its open row plus the earliest legal cycle for each
//! command class, updated as commands are applied. Cross-bank constraints
//! (tRRD, tFAW, command bus, data bus) live in [`crate::faw`] and
//! [`crate::bus`]; the channel combines all of them.

use crate::error::DramError;
use crate::timing::{Cycle, Timing};
use newton_trace::{BankClass, Residency, ResidencyTracker};

/// The row-buffer state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// All rows closed (precharged).
    Idle,
    /// The given row is open in the bank's sense amplifiers.
    Active {
        /// The open row index.
        row: usize,
    },
}

impl BankState {
    /// The open row, if any.
    #[must_use]
    pub fn open_row(self) -> Option<usize> {
        match self {
            BankState::Idle => None,
            BankState::Active { row } => Some(row),
        }
    }
}

/// One DRAM bank: FSM state plus earliest-legal-cycle bookkeeping for
/// same-bank constraints (tRCD, tRP, tRAS, tRC, tCCD, tRTP, tWR).
///
/// The bank is a *mechanism*: it validates and applies commands at given
/// cycles but never chooses times itself — that is the controller's job.
#[derive(Debug, Clone)]
pub struct Bank {
    index: usize,
    state: BankState,
    /// Cycle of the most recent ACT (drives tRAS/tRC).
    last_act: Option<Cycle>,
    /// Earliest legal cycle for the next ACT (tRP after PRE, tRC after ACT,
    /// tRFC after refresh).
    earliest_act: Cycle,
    /// Earliest legal cycle for the next column command (tRCD after ACT,
    /// tCCD after a column command).
    earliest_col: Cycle,
    /// Earliest legal cycle for PRE (tRAS after ACT, tRTP after READ,
    /// tWR after write data).
    earliest_pre: Cycle,
    /// Total cycles this bank has spent with a row open (energy accounting;
    /// the open interval in progress is added at precharge time).
    open_cycles: Cycle,
    /// Cycle-attribution across idle/row-open/precharging/refreshing/
    /// computing states; every cycle lands in exactly one class.
    residency: ResidencyTracker,
}

impl Bank {
    /// Creates an idle bank with the given index (used in error reports).
    #[must_use]
    pub fn new(index: usize) -> Bank {
        Bank {
            index,
            state: BankState::Idle,
            last_act: None,
            earliest_act: 0,
            earliest_col: 0,
            earliest_pre: 0,
            open_cycles: 0,
            residency: ResidencyTracker::new(),
        }
    }

    /// Current FSM state.
    #[must_use]
    pub fn state(&self) -> BankState {
        self.state
    }

    /// Cycles spent with a row open, up to the last precharge.
    #[must_use]
    pub fn open_cycles(&self) -> Cycle {
        self.open_cycles
    }

    /// Cycle attribution from cycle 0 through `end`, with every cycle in
    /// exactly one [`BankClass`] (so the classes sum to `end`).
    #[must_use]
    pub fn residency(&self, end: Cycle) -> Residency {
        self.residency.snapshot(end)
    }

    /// Earliest legal cycle for an ACT, assuming the bank is idle.
    #[must_use]
    pub fn earliest_activate(&self) -> Cycle {
        self.earliest_act
    }

    /// Earliest legal cycle for a column command (the bank must be active).
    #[must_use]
    pub fn earliest_column(&self) -> Cycle {
        self.earliest_col
    }

    /// Earliest legal cycle for a PRE.
    #[must_use]
    pub fn earliest_precharge(&self) -> Cycle {
        self.earliest_pre
    }

    /// Applies an ACT at `cycle` opening `row`.
    ///
    /// # Errors
    ///
    /// [`DramError::BankState`] if a row is already open;
    /// [`DramError::Timing`] if `cycle` precedes the earliest legal ACT.
    pub fn activate(&mut self, cycle: Cycle, row: usize, t: &Timing) -> Result<(), DramError> {
        if let BankState::Active { row: open } = self.state {
            return Err(DramError::BankState {
                bank: self.index,
                attempted: "activate",
                actual: format!("Active {{ row: {open} }}"),
            });
        }
        if cycle < self.earliest_act {
            return Err(DramError::Timing {
                constraint: "tRP/tRC (activate)",
                issued: cycle,
                earliest: self.earliest_act,
                bank: Some(self.index),
            });
        }
        self.state = BankState::Active { row };
        self.residency.transition(cycle, BankClass::RowOpen);
        self.last_act = Some(cycle);
        self.earliest_col = cycle + t.t_rcd;
        self.earliest_pre = cycle + t.t_ras;
        // tRC lower-bounds the next ACT even if PRE comes early.
        self.earliest_act = cycle + t.t_rc();
        Ok(())
    }

    /// Applies a column read at `cycle`. Returns the open row index so the
    /// caller can fetch data from storage.
    ///
    /// `is_write` selects the write-recovery constraint for the following
    /// precharge instead of read-to-precharge.
    ///
    /// # Errors
    ///
    /// [`DramError::BankState`] if no row is open; [`DramError::Timing`]
    /// if tRCD/tCCD would be violated.
    pub fn column_access(
        &mut self,
        cycle: Cycle,
        is_write: bool,
        t: &Timing,
    ) -> Result<usize, DramError> {
        let row = match self.state {
            BankState::Active { row } => row,
            BankState::Idle => {
                return Err(DramError::BankState {
                    bank: self.index,
                    attempted: if is_write {
                        "column write"
                    } else {
                        "column read"
                    },
                    actual: "Idle".into(),
                })
            }
        };
        if cycle < self.earliest_col {
            return Err(DramError::Timing {
                constraint: "tRCD/tCCD (column)",
                issued: cycle,
                earliest: self.earliest_col,
                bank: Some(self.index),
            });
        }
        self.earliest_col = cycle + t.t_ccd;
        let pre_gate = if is_write {
            // Write data lands tAA after the command; recovery runs from
            // the end of the burst (approximated as the data beat).
            cycle + t.t_aa + t.t_wr
        } else {
            cycle + t.t_rtp
        };
        self.earliest_pre = self.earliest_pre.max(pre_gate);
        Ok(row)
    }

    /// Applies a PRE at `cycle`, closing the open row.
    ///
    /// Precharging an idle bank is a no-op in real DRAM; we reject it to
    /// surface controller bugs early.
    ///
    /// # Errors
    ///
    /// [`DramError::BankState`] if no row is open; [`DramError::Timing`]
    /// if tRAS/tRTP/tWR would be violated.
    pub fn precharge(&mut self, cycle: Cycle, t: &Timing) -> Result<(), DramError> {
        match self.state {
            BankState::Active { .. } => {}
            BankState::Idle => {
                return Err(DramError::BankState {
                    bank: self.index,
                    attempted: "precharge",
                    actual: "Idle".into(),
                })
            }
        }
        if cycle < self.earliest_pre {
            return Err(DramError::Timing {
                constraint: "tRAS/tRTP/tWR (precharge)",
                issued: cycle,
                earliest: self.earliest_pre,
                bank: Some(self.index),
            });
        }
        if let Some(act) = self.last_act {
            self.open_cycles += cycle - act;
        }
        self.state = BankState::Idle;
        self.residency.transient(
            cycle,
            BankClass::Precharging,
            cycle + t.t_rp,
            BankClass::Idle,
        );
        self.earliest_act = self.earliest_act.max(cycle + t.t_rp);
        Ok(())
    }

    /// Blocks the bank from `cycle` until `until` (used for all-bank
    /// refresh: the bank must already be idle; the next ACT may not start
    /// before tRFC ends).
    ///
    /// # Errors
    ///
    /// [`DramError::BankState`] if a row is open when refresh starts.
    pub fn block_for_refresh(&mut self, cycle: Cycle, until: Cycle) -> Result<(), DramError> {
        if let BankState::Active { row } = self.state {
            return Err(DramError::BankState {
                bank: self.index,
                attempted: "refresh",
                actual: format!("Active {{ row: {row} }}"),
            });
        }
        self.residency
            .transient(cycle, BankClass::Refreshing, until, BankClass::Idle);
        self.earliest_act = self.earliest_act.max(until);
        Ok(())
    }

    /// Marks an AiM-internal column access (COMP/MAC) at `cycle`: the bank
    /// counts as *computing* for the tCCD burst, then returns to row-open.
    /// Called by the channel after a successful internal `column_access`.
    pub fn note_internal_access(&mut self, cycle: Cycle, t: &Timing) {
        self.residency.transient(
            cycle,
            BankClass::Computing,
            cycle + t.t_ccd,
            BankClass::RowOpen,
        );
    }

    /// Validates a [`comp_burst`](Bank::comp_burst) without applying it:
    /// every error that call can raise, with no state change. Lets the
    /// channel pre-flight a whole gang before committing any bank.
    ///
    /// # Errors
    ///
    /// As [`comp_burst`](Bank::comp_burst).
    pub fn check_comp_burst(
        &self,
        start: Cycle,
        step: Cycle,
        count: usize,
        t: &Timing,
    ) -> Result<usize, DramError> {
        let row = match self.state {
            BankState::Active { row } => row,
            BankState::Idle => {
                return Err(DramError::BankState {
                    bank: self.index,
                    attempted: "column read",
                    actual: "Idle".into(),
                })
            }
        };
        if count == 0 {
            return Ok(row);
        }
        if start < self.earliest_col {
            return Err(DramError::Timing {
                constraint: "tRCD/tCCD (column)",
                issued: start,
                earliest: self.earliest_col,
                bank: Some(self.index),
            });
        }
        if count > 1 && step < t.t_ccd {
            return Err(DramError::Timing {
                constraint: "tRCD/tCCD (column)",
                issued: start + step,
                earliest: start + t.t_ccd,
                bank: Some(self.index),
            });
        }
        Ok(row)
    }

    /// Applies `count` internal column reads at `start, start + step, ...`
    /// in one call. State-equivalent to `count` iterations of
    /// `column_access(cycle, false, t)` + `note_internal_access(cycle, t)`,
    /// but O(1) in `count`. Returns the open row index.
    ///
    /// # Errors
    ///
    /// [`DramError::BankState`] if no row is open; [`DramError::Timing`]
    /// if the first access is before tRCD/tCCD allows or (for multi-access
    /// trains) `step` is below tCCD. Unlike the loop, nothing is applied on
    /// failure.
    pub fn comp_burst(
        &mut self,
        start: Cycle,
        step: Cycle,
        count: usize,
        t: &Timing,
    ) -> Result<usize, DramError> {
        let row = self.check_comp_burst(start, step, count, t)?;
        if count == 0 {
            return Ok(row);
        }
        let last = start + (count as Cycle - 1) * step;
        self.earliest_col = last + t.t_ccd;
        // tRTP gates run from each access; the last one dominates because
        // the train is monotone.
        self.earliest_pre = self.earliest_pre.max(last + t.t_rtp);
        self.residency.pulse_train(
            start,
            step,
            count as u64,
            BankClass::Computing,
            t.t_ccd,
            BankClass::RowOpen,
        );
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingParams;

    fn timing() -> Timing {
        TimingParams::hbm2e_like().to_cycles().unwrap()
    }

    #[test]
    fn activate_then_read_then_precharge_cycle() {
        let t = timing();
        let mut b = Bank::new(0);
        assert_eq!(b.state(), BankState::Idle);
        b.activate(0, 42, &t).unwrap();
        assert_eq!(b.state().open_row(), Some(42));

        // Column before tRCD is rejected.
        let err = b.column_access(t.t_rcd - 1, false, &t).unwrap_err();
        assert!(matches!(err, DramError::Timing { constraint, .. } if constraint.contains("tRCD")));

        let row = b.column_access(t.t_rcd, false, &t).unwrap();
        assert_eq!(row, 42);

        // Back-to-back column must wait tCCD.
        assert_eq!(b.earliest_column(), t.t_rcd + t.t_ccd);

        // Precharge gated by tRAS.
        assert!(b.precharge(t.t_ras - 1, &t).is_err());
        b.precharge(t.t_ras, &t).unwrap();
        assert_eq!(b.state(), BankState::Idle);
        assert_eq!(b.open_cycles(), t.t_ras);

        // Next activate gated by tRP (and tRC, which is equal here).
        assert_eq!(b.earliest_activate(), t.t_ras + t.t_rp);
        assert!(b.activate(t.t_ras + t.t_rp - 1, 1, &t).is_err());
        b.activate(t.t_ras + t.t_rp, 1, &t).unwrap();
    }

    #[test]
    fn double_activate_is_a_state_error() {
        let t = timing();
        let mut b = Bank::new(7);
        b.activate(0, 5, &t).unwrap();
        let err = b.activate(1000, 6, &t).unwrap_err();
        assert!(matches!(err, DramError::BankState { bank: 7, .. }));
    }

    #[test]
    fn column_on_idle_bank_is_a_state_error() {
        let t = timing();
        let mut b = Bank::new(2);
        assert!(b.column_access(100, false, &t).is_err());
        assert!(b.precharge(100, &t).is_err());
    }

    #[test]
    fn read_to_precharge_extends_pre_gate() {
        let t = timing();
        let mut b = Bank::new(0);
        b.activate(0, 0, &t).unwrap();
        // Read late in the tRAS window: tRTP now dominates.
        let late = t.t_ras - 2;
        // Walk earliest_col forward legally.
        let mut c = t.t_rcd;
        while c < late {
            b.column_access(c, false, &t).unwrap();
            c += t.t_ccd;
        }
        b.column_access(c, false, &t).unwrap();
        assert_eq!(b.earliest_precharge(), c + t.t_rtp);
    }

    #[test]
    fn write_recovery_gates_precharge_longer_than_read() {
        let t = timing();
        let mut b = Bank::new(0);
        b.activate(0, 0, &t).unwrap();
        b.column_access(t.t_rcd, true, &t).unwrap();
        assert_eq!(
            b.earliest_precharge(),
            (t.t_rcd + t.t_aa + t.t_wr).max(t.t_ras)
        );
    }

    #[test]
    fn trc_gates_next_activate_even_after_early_pre() {
        let t = timing();
        let mut b = Bank::new(0);
        b.activate(0, 0, &t).unwrap();
        b.precharge(t.t_ras, &t).unwrap();
        // tRC = tRAS + tRP equals the PRE + tRP path here; verify both gates.
        assert_eq!(b.earliest_activate(), t.t_rc());
    }

    #[test]
    fn refresh_blocks_until_trfc_and_requires_idle() {
        let t = timing();
        let mut b = Bank::new(0);
        b.block_for_refresh(100, 500).unwrap();
        assert_eq!(b.earliest_activate(), 500);
        b.activate(500, 0, &t).unwrap();
        assert!(b.block_for_refresh(600, 700).is_err());
    }

    #[test]
    fn residency_classes_sum_to_elapsed() {
        let t = timing();
        let mut b = Bank::new(0);
        b.activate(10, 0, &t).unwrap();
        b.column_access(10 + t.t_rcd, false, &t).unwrap();
        b.precharge(10 + t.t_ras, &t).unwrap();
        let end = 10 + t.t_ras + t.t_rp + 25;
        let r = b.residency(end);
        assert_eq!(r.total(), end);
        assert_eq!(r.row_open, t.t_ras);
        assert_eq!(r.precharging, t.t_rp);
        assert_eq!(r.idle, end - t.t_ras - t.t_rp);
    }

    #[test]
    fn internal_access_counts_as_computing() {
        let t = timing();
        let mut b = Bank::new(0);
        b.activate(0, 0, &t).unwrap();
        b.column_access(t.t_rcd, false, &t).unwrap();
        b.note_internal_access(t.t_rcd, &t);
        let end = t.t_rcd + 10 * t.t_ccd;
        let r = b.residency(end);
        assert_eq!(r.computing, t.t_ccd);
        assert_eq!(r.row_open, end - t.t_ccd);
        assert_eq!(r.total(), end);
    }
}
