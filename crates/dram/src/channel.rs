//! The assembled DRAM channel: banks + buses + storage + refresh + stats.
//!
//! The channel exposes a *query/issue* API: `earliest_*` methods report the
//! first legal cycle for an operation given every constraint the channel
//! tracks, and `issue_*` methods validate and apply the operation at an
//! explicit cycle. Controllers (the Newton controller in `newton-core`, the
//! streaming reader in [`crate::stream`]) decide *when*; the channel
//! enforces *legality*. Ganged issue paths perform several bank operations
//! under a single command-bus slot — the mechanism behind Newton's G_ACT
//! and all-bank COMP/READRES commands.
//!
//! As in HBM, the command interface is split into a **row-command bus**
//! (ACT, PRE, REF) and a **column-command bus** (RD, WR and the AiM
//! column-class commands). Column traffic therefore never starves row
//! commands, which is what lets both the Ideal Non-PIM stream and Newton
//! overlap activations with data movement. Each bus issues at most one
//! command per tCMD slot; commands on one bus must be issued in
//! non-decreasing time order.

use crate::audit::{Audit, AuditEvent, BusKind};
use crate::bank::Bank;
use crate::bus::{CommandBus, DataBus};
use crate::config::DramConfig;
use crate::ecc::EccCounters;
use crate::error::DramError;
use crate::faw::{FawTracker, FAW_LIMIT};
use crate::stats::{ChannelStats, RunSummary};
use crate::storage::Storage;
use crate::timing::{Cycle, Timing};
use newton_trace::energy::to_milli_pj;
use newton_trace::{
    BankClass, EnergyModel, Log2Histogram, TimeSeries, TraceBus, TraceEvent, TraceSink,
};

/// Request-independent scheduling floors shared by every candidate in one
/// scheduler round, computed in a single pass by
/// [`Channel::scheduling_floors`]. An event-skipping scheduler combines
/// them with the per-bank gates from [`Channel::bank_gates`] instead of
/// calling the full `earliest_*` queries once per queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulingFloors {
    /// Next free row-command-bus slot (0 when the bus is untouched).
    pub row_slot: Cycle,
    /// Next free column-command-bus slot.
    pub col_slot: Cycle,
    /// Earliest cycle an *external* column read may issue as far as the
    /// data bus is concerned: the bus busy-until minus tAA (data appears
    /// tAA after the command), saturating at 0.
    pub col_data: Cycle,
    /// Rank-wide activation floors per gang size: `act[n - 1]` is the
    /// earliest cycle `n` simultaneous activations clear tRRD and the
    /// tFAW window.
    pub act: [Cycle; FAW_LIMIT],
}

/// Holder for the optional trace sink; manual `Debug` because trait
/// objects have none.
#[derive(Default)]
struct SinkSlot(Option<Box<dyn TraceSink>>);

impl std::fmt::Debug for SinkSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "SinkSlot(attached)"
        } else {
            "SinkSlot(none)"
        })
    }
}

/// Streaming-telemetry state: the windowed series plus the energy model
/// consulted at command-issue time. Boxed in the channel so the disabled
/// path costs one pointer and one branch per event site.
#[derive(Debug)]
struct TelemetryState {
    series: TimeSeries,
    energy: EnergyModel,
}

/// One DRAM (pseudo-)channel with full timing and functional state.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Channel {
    config: DramConfig,
    timing: Timing,
    banks: Vec<Bank>,
    faw: FawTracker,
    row_bus: CommandBus,
    col_bus: CommandBus,
    data_bus: DataBus,
    storage: Storage,
    stats: ChannelStats,
    /// Cycle at which the next all-bank refresh falls due.
    next_refresh_due: Cycle,
    refresh_enabled: bool,
    /// Cycle of the most recent all-bank refresh (0 before the first one);
    /// the staleness anchor for retention-decay fault campaigns.
    last_refresh: Cycle,
    /// Per-bank ECC event counters (all zero while ECC is off).
    ecc: EccCounters,
    audit: Option<Audit>,
    /// Optional structured-trace consumer; `None` (the default) keeps the
    /// instrumented issue paths to one branch per site.
    sink: SinkSlot,
    /// Optional windowed telemetry collector + per-command energy model.
    telemetry: Option<Box<TelemetryState>>,
    /// Cycle of the first command issued, if any (drives the summary's
    /// activity span).
    first_activity: Option<Cycle>,
    /// Cycle of the most recent ACT on any bank.
    last_act: Option<Cycle>,
    /// Gaps between consecutive activates (any bank).
    act_gaps: Log2Histogram,
    /// Queue latencies reported by scheduling controllers.
    queue_latency: Log2Histogram,
}

impl Channel {
    /// Creates a channel in the reset state.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(config: DramConfig) -> Result<Channel, DramError> {
        config.validate()?;
        let timing = config.timing.to_cycles()?;
        Ok(Channel {
            banks: (0..config.banks).map(Bank::new).collect(),
            faw: FawTracker::new(),
            row_bus: CommandBus::new(),
            col_bus: CommandBus::new(),
            data_bus: DataBus::new(),
            storage: Storage::new(&config),
            stats: ChannelStats::default(),
            next_refresh_due: timing.t_refi,
            refresh_enabled: true,
            last_refresh: 0,
            ecc: EccCounters::new(config.banks),
            audit: None,
            sink: SinkSlot::default(),
            telemetry: None,
            first_activity: None,
            last_act: None,
            act_gaps: Log2Histogram::new(),
            queue_latency: Log2Histogram::new(),
            config,
            timing,
        })
    }

    /// The channel's configuration.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Derived integer-cycle timing.
    #[must_use]
    pub fn timing(&self) -> &Timing {
        &self.timing
    }

    /// Event counters so far.
    #[must_use]
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Functional storage (read side).
    #[must_use]
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Functional storage (write side) — host-initiated backing-store
    /// writes, e.g. loading a matrix before timing simulation starts.
    pub fn storage_mut(&mut self) -> &mut Storage {
        &mut self.storage
    }

    /// Enables post-hoc timing auditing (records every event; see
    /// [`crate::audit`]). Intended for tests — auditing a long benchmark
    /// run costs memory proportional to the command count.
    pub fn enable_audit(&mut self) {
        self.audit = Some(Audit::new());
    }

    /// The audit log, if auditing is enabled.
    #[must_use]
    pub fn audit(&self) -> Option<&Audit> {
        self.audit.as_ref()
    }

    /// Disables refresh-deadline tracking (for micro-tests that span less
    /// than one tREFI or deliberately study refresh-free behaviour).
    pub fn disable_refresh(&mut self) {
        self.refresh_enabled = false;
    }

    /// Whether refresh tracking is enabled.
    #[must_use]
    pub fn refresh_enabled(&self) -> bool {
        self.refresh_enabled
    }

    /// The cycle by which the next all-bank refresh must be issued.
    /// `Cycle::MAX` when refresh is disabled.
    #[must_use]
    pub fn refresh_due(&self) -> Cycle {
        if self.refresh_enabled {
            self.next_refresh_due
        } else {
            Cycle::MAX
        }
    }

    /// The open row of `bank`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn open_row(&self, bank: usize) -> Option<usize> {
        self.banks[bank].state().open_row()
    }

    /// Cycle of the most recent all-bank refresh (0 before the first).
    #[must_use]
    pub fn last_refresh(&self) -> Cycle {
        self.last_refresh
    }

    /// Per-bank ECC correction/detection counters.
    #[must_use]
    pub fn ecc_counters(&self) -> &EccCounters {
        &self.ecc
    }

    /// The storage data-mutation epoch (see [`Storage::write_epoch`]) —
    /// the compiled-schedule replay cache's "weights untouched since
    /// capture" witness.
    #[must_use]
    pub fn write_epoch(&self) -> u64 {
        self.storage.write_epoch()
    }

    /// Whether an audit log is attached (replay must bypass: the batched
    /// appliers cannot reproduce per-command audit events).
    #[must_use]
    pub fn has_audit(&self) -> bool {
        self.audit.is_some()
    }

    /// Scrubs an entire row against its SECDED check bytes on activation
    /// (the row-buffer fill is where a real on-die ECC engine sees the
    /// whole row). No-op while ECC is off.
    fn ecc_scrub_row(&mut self, cycle: Cycle, bank: usize, row: usize) -> Result<(), DramError> {
        if !self.storage.ecc_enabled() {
            return Ok(());
        }
        match self.storage.scrub_row(bank, row) {
            Ok(0) => Ok(()),
            Ok(n) => {
                self.note_ecc_corrected(cycle, bank, row, n);
                Ok(())
            }
            Err(e) => {
                self.note_ecc_uncorrectable(cycle, bank, row, &e);
                Err(e)
            }
        }
    }

    /// Checks the words backing one column on a read or COMP operand
    /// fetch. No-op while ECC is off.
    fn ecc_check_column(
        &mut self,
        cycle: Cycle,
        bank: usize,
        row: usize,
        col: usize,
    ) -> Result<(), DramError> {
        if !self.storage.ecc_enabled() {
            return Ok(());
        }
        match self.storage.check_column(bank, row, col) {
            Ok(0) => Ok(()),
            Ok(n) => {
                self.note_ecc_corrected(cycle, bank, row, n);
                Ok(())
            }
            Err(e) => {
                self.note_ecc_uncorrectable(cycle, bank, row, &e);
                Err(e)
            }
        }
    }

    fn note_ecc_corrected(&mut self, cycle: Cycle, bank: usize, row: usize, words: u32) {
        self.stats.ecc_corrected += u64::from(words);
        self.ecc.corrected[bank] += u64::from(words);
        self.emit(TraceEvent::EccCorrected {
            cycle,
            bank: bank as u32,
            row: row as u32,
            bits: words,
        });
    }

    fn note_ecc_uncorrectable(&mut self, cycle: Cycle, bank: usize, row: usize, err: &DramError) {
        if matches!(err, DramError::Uncorrectable { .. }) {
            self.stats.ecc_uncorrectable += 1;
            self.ecc.uncorrectable[bank] += 1;
            self.emit(TraceEvent::EccUncorrectable {
                cycle,
                bank: bank as u32,
                row: row as u32,
            });
        }
    }

    fn check_bank(&self, bank: usize) -> Result<(), DramError> {
        if bank >= self.banks.len() {
            return Err(DramError::AddressOutOfRange {
                kind: "bank",
                index: bank,
                limit: self.banks.len(),
            });
        }
        Ok(())
    }

    fn record(&mut self, event: AuditEvent) {
        if let Some(a) = &mut self.audit {
            a.record(event);
        }
    }

    /// Attaches a trace sink; every subsequent command, bank-state change,
    /// data burst, and queue-latency sample is reported to it.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink.0 = Some(sink);
    }

    /// Whether a trace sink is currently attached.
    #[must_use]
    pub fn has_trace_sink(&self) -> bool {
        self.sink.0.is_some()
    }

    /// Detaches and returns the trace sink (flushed), if one was attached.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        let mut sink = self.sink.0.take();
        if let Some(s) = &mut sink {
            s.flush();
        }
        sink
    }

    /// Enables streaming telemetry: every subsequent event also folds
    /// into a windowed [`TimeSeries`], and energy-bearing commands emit
    /// [`TraceEvent::CommandEnergy`] attributions priced by the Fig. 13
    /// [`EnergyModel`]. `window_cycles` of 0 is promoted to 1.
    pub fn enable_telemetry(&mut self, window_cycles: u64) {
        self.telemetry = Some(Box::new(TelemetryState {
            series: TimeSeries::new(window_cycles, self.config.banks),
            energy: EnergyModel::new(),
        }));
    }

    /// The telemetry series accumulated so far, if enabled.
    #[must_use]
    pub fn telemetry(&self) -> Option<&TimeSeries> {
        self.telemetry.as_deref().map(|t| &t.series)
    }

    /// Whether any event consumer (trace sink or telemetry collector) is
    /// attached — the gate the per-command instrumentation sites check.
    #[inline]
    fn tracing(&self) -> bool {
        self.sink.0.is_some() || self.telemetry.is_some()
    }

    #[inline]
    fn emit(&mut self, event: TraceEvent) {
        if let Some(t) = &mut self.telemetry {
            t.series.record(&event);
        }
        if let Some(s) = &mut self.sink.0 {
            s.record(&event);
        }
    }

    /// Prices one issued command with the energy model and emits the
    /// attribution (telemetry only; commands with zero attributed energy
    /// — PRE, CTRL — stay silent). `label` must match the command's
    /// traced mnemonic so windowed energy lands beside its counts.
    #[inline]
    fn emit_energy(&mut self, cycle: Cycle, label: &'static str, bank_ops: u32, data_bytes: u64) {
        let Some(t) = &self.telemetry else { return };
        let pj = if label == "REF" {
            t.energy.refresh_pj(bank_ops)
        } else {
            t.energy.command_pj(label, bank_ops, data_bytes)
        };
        let milli_pj = to_milli_pj(pj);
        if milli_pj > 0 {
            self.emit(TraceEvent::CommandEnergy {
                cycle,
                label,
                milli_pj,
            });
        }
    }

    /// Marks `cycle` as simulation activity (for the activity-span start).
    #[inline]
    fn note_activity(&mut self, cycle: Cycle) {
        if self.first_activity.is_none() {
            self.first_activity = Some(cycle);
        }
    }

    /// Reports that a scheduling controller issued a request at `cycle`
    /// after it waited `waited` cycles in queue. Folded into the summary's
    /// queue-latency histogram and traced when a sink is attached.
    pub fn record_queue_latency(&mut self, cycle: Cycle, waited: Cycle) {
        self.queue_latency.record(waited);
        self.emit(TraceEvent::QueueLatency { cycle, waited });
    }

    // ------------------------------------------------------------------
    // Batched scheduling floors (event-skipping scheduler hooks)
    // ------------------------------------------------------------------

    /// Computes the request-independent [`SchedulingFloors`] shared by
    /// every candidate in one scheduler round: one pass over the buses
    /// and the tFAW window instead of one `earliest_*` query per
    /// candidate. The floors stay exact until the next `issue_*` call
    /// (every issue can only move them forward, so a stale copy is a
    /// valid lower bound but no longer the exact gate).
    #[must_use]
    pub fn scheduling_floors(&self) -> SchedulingFloors {
        SchedulingFloors {
            row_slot: self.row_bus.slot_floor(&self.timing),
            col_slot: self.col_bus.slot_floor(&self.timing),
            col_data: self.data_bus.busy_until().saturating_sub(self.timing.t_aa),
            act: self.faw.activate_floors(&self.timing),
        }
    }

    /// The per-bank earliest-legal gates `(activate, column, precharge)`
    /// — the bank-local half of the `earliest_*` queries. Combining a
    /// gate with the matching [`SchedulingFloors`] component reproduces
    /// the full query: e.g. `max(gates.0, floors.act[0], floors.row_slot)`
    /// equals [`Channel::earliest_activate`].
    #[must_use]
    pub fn bank_gates(&self, bank: usize) -> (Cycle, Cycle, Cycle) {
        let b = &self.banks[bank];
        (
            b.earliest_activate(),
            b.earliest_column(),
            b.earliest_precharge(),
        )
    }

    // ------------------------------------------------------------------
    // Activation (row bus)
    // ------------------------------------------------------------------

    /// Earliest legal cycle to activate a row in `bank` (single ACT).
    #[must_use]
    pub fn earliest_activate(&self, bank: usize) -> Cycle {
        let b = self.banks[bank].earliest_activate();
        let f = self.faw.earliest_activate(b, 1, &self.timing);
        self.row_bus.earliest_slot(f, &self.timing)
    }

    /// Earliest legal cycle for a ganged activation of the given banks
    /// (Newton's G_ACT; at most 4 banks, per the tFAW window).
    ///
    /// # Panics
    ///
    /// Panics if `banks` is empty or has more than 4 entries.
    #[must_use]
    pub fn earliest_ganged_activate(&self, banks: &[usize]) -> Cycle {
        assert!(
            !banks.is_empty() && banks.len() <= 4,
            "ganged activation must cover 1..=4 banks"
        );
        let mut hint = 0;
        for &b in banks {
            hint = hint.max(self.banks[b].earliest_activate());
        }
        let f = self.faw.earliest_activate(hint, banks.len(), &self.timing);
        self.row_bus.earliest_slot(f, &self.timing)
    }

    /// Issues a single-bank ACT at `cycle`. Returns `cycle` for chaining.
    ///
    /// # Errors
    ///
    /// Any constraint violation ([`DramError::Timing`]), bank-state error,
    /// or out-of-range index.
    pub fn issue_activate(
        &mut self,
        cycle: Cycle,
        bank: usize,
        row: usize,
    ) -> Result<Cycle, DramError> {
        self.issue_ganged_activate(cycle, &[(bank, row)])
    }

    /// Issues a ganged ACT of up to four `(bank, row)` pairs at `cycle`,
    /// consuming one row-bus command slot. Returns `cycle`.
    ///
    /// # Errors
    ///
    /// Any constraint violation, bank-state error, or out-of-range index.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty or longer than 4.
    pub fn issue_ganged_activate(
        &mut self,
        cycle: Cycle,
        pairs: &[(usize, usize)],
    ) -> Result<Cycle, DramError> {
        self.issue_ganged_activate_inner(cycle, pairs, true)
    }

    /// [`Channel::issue_ganged_activate`] without the row-buffer-fill ECC
    /// scrub — the replay-path variant. Only legal when the caller can
    /// prove the activated rows are clean (no mutation since a
    /// correction-free drain, witnessed by [`Channel::write_epoch`]): a
    /// clean scrub is observable-state-free, so skipping it is
    /// byte-identical while avoiding the per-row syndrome sweep.
    ///
    /// # Errors
    ///
    /// Same constraint/bank-state/range errors as the scrubbing form.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty or longer than 4.
    pub fn issue_ganged_activate_prescrubbed(
        &mut self,
        cycle: Cycle,
        pairs: &[(usize, usize)],
    ) -> Result<Cycle, DramError> {
        self.issue_ganged_activate_inner(cycle, pairs, false)
    }

    fn issue_ganged_activate_inner(
        &mut self,
        cycle: Cycle,
        pairs: &[(usize, usize)],
        scrub: bool,
    ) -> Result<Cycle, DramError> {
        assert!(
            !pairs.is_empty() && pairs.len() <= 4,
            "ganged activation must cover 1..=4 banks"
        );
        for &(bank, row) in pairs {
            self.check_bank(bank)?;
            if row >= self.config.rows_per_bank {
                return Err(DramError::AddressOutOfRange {
                    kind: "row",
                    index: row,
                    limit: self.config.rows_per_bank,
                });
            }
        }
        self.check_refresh_not_overdue(cycle)?;
        let faw_earliest = self.faw.earliest_activate(0, pairs.len(), &self.timing);
        if cycle < faw_earliest {
            return Err(DramError::Timing {
                constraint: "tRRD/tFAW (activate)",
                issued: cycle,
                earliest: faw_earliest,
                bank: None,
            });
        }
        // Validate all banks before mutating any (atomic gang).
        for &(bank, _) in pairs {
            let earliest = self.banks[bank].earliest_activate();
            if cycle < earliest {
                return Err(DramError::Timing {
                    constraint: "tRP/tRC (activate)",
                    issued: cycle,
                    earliest,
                    bank: Some(bank),
                });
            }
        }
        self.row_bus.issue(cycle, &self.timing)?;
        self.record(AuditEvent::Slot {
            cycle,
            bus: BusKind::Row,
        });
        for &(bank, row) in pairs {
            self.banks[bank].activate(cycle, row, &self.timing)?;
            self.record(AuditEvent::Act { bank, row, cycle });
        }
        self.faw.record(cycle, pairs.len());
        self.stats.activates += pairs.len() as u64;
        if pairs.len() > 1 {
            self.stats.ganged_commands += 1;
        }
        self.note_activity(cycle);
        if let Some(last) = self.last_act {
            self.act_gaps.record(cycle - last);
        }
        self.last_act = Some(cycle);
        if self.tracing() {
            self.emit(TraceEvent::Command {
                cycle,
                bus: TraceBus::Row,
                label: if pairs.len() > 1 { "G_ACT" } else { "ACT" },
                bank_ops: pairs.len() as u32,
            });
            for &(bank, _) in pairs {
                self.emit(TraceEvent::BankState {
                    cycle,
                    bank: bank as u32,
                    class: BankClass::RowOpen,
                });
            }
            self.emit_energy(
                cycle,
                if pairs.len() > 1 { "G_ACT" } else { "ACT" },
                pairs.len() as u32,
                0,
            );
        }
        // Row-buffer-fill scrub: with ECC on, the whole activated row is
        // checked/corrected as it enters the row buffer.
        if scrub {
            for &(bank, row) in pairs {
                self.ecc_scrub_row(cycle, bank, row)?;
            }
        }
        Ok(cycle)
    }

    // ------------------------------------------------------------------
    // Column access (column bus)
    // ------------------------------------------------------------------

    /// Earliest legal cycle `>= after` for an *external* column read on
    /// `bank` (column-bus slot + bank tRCD/tCCD + external data bus at
    /// `cycle + tAA`).
    #[must_use]
    pub fn earliest_column_read(&self, after: Cycle, bank: usize) -> Cycle {
        let b = self.banks[bank].earliest_column().max(after);
        let slot = self.col_bus.earliest_slot(b, &self.timing);
        // Data appears tAA after the command; find the first slot whose
        // data beat clears the bus.
        let bus_free = self.data_bus.earliest_transfer(slot + self.timing.t_aa);
        slot.max(bus_free.saturating_sub(self.timing.t_aa))
    }

    /// Earliest legal cycle `>= after` for a ganged *internal* column read
    /// (Newton COMP path: no external bus involvement).
    #[must_use]
    pub fn earliest_ganged_column_read(&self, after: Cycle, banks: &[usize]) -> Cycle {
        let mut hint = after;
        for &b in banks {
            hint = hint.max(self.banks[b].earliest_column());
        }
        self.col_bus.earliest_slot(hint, &self.timing)
    }

    /// Issues an external column read at `cycle`; returns the issue cycle
    /// and the data (available to the host at `cycle + tAA`).
    ///
    /// # Errors
    ///
    /// Constraint violations, bank-state errors, or bad indices.
    pub fn issue_column_read_external(
        &mut self,
        cycle: Cycle,
        bank: usize,
        col: usize,
    ) -> Result<(Cycle, Vec<u8>), DramError> {
        self.check_bank(bank)?;
        self.col_bus.issue(cycle, &self.timing)?;
        self.record(AuditEvent::Slot {
            cycle,
            bus: BusKind::Column,
        });
        let row = self.banks[bank].column_access(cycle, false, &self.timing)?;
        self.data_bus.transfer(
            cycle + self.timing.t_aa,
            self.config.col_bytes(),
            &self.timing,
        )?;
        self.record(AuditEvent::ColRd {
            bank,
            cycle,
            external: true,
        });
        self.stats.col_reads_external += 1;
        self.note_activity(cycle);
        if self.tracing() {
            self.emit(TraceEvent::Command {
                cycle,
                bus: TraceBus::Column,
                label: "RD",
                bank_ops: 1,
            });
            self.emit(TraceEvent::DataBurst {
                cycle: cycle + self.timing.t_aa,
                bytes: self.config.col_bytes() as u64,
            });
            self.emit_energy(cycle, "RD", 1, self.config.col_bytes() as u64);
        }
        self.ecc_check_column(cycle, bank, row, col)?;
        let data = self.storage.column(bank, row, col)?.to_vec();
        Ok((cycle, data))
    }

    /// Issues an external column write at `cycle`.
    ///
    /// # Errors
    ///
    /// Constraint violations, bank-state errors, bad indices, or wrong
    /// data size.
    pub fn issue_column_write_external(
        &mut self,
        cycle: Cycle,
        bank: usize,
        col: usize,
        data: &[u8],
    ) -> Result<Cycle, DramError> {
        self.check_bank(bank)?;
        self.col_bus.issue(cycle, &self.timing)?;
        self.record(AuditEvent::Slot {
            cycle,
            bus: BusKind::Column,
        });
        let row = self.banks[bank].column_access(cycle, true, &self.timing)?;
        self.data_bus
            .transfer(cycle + self.timing.t_aa, data.len(), &self.timing)?;
        self.record(AuditEvent::ColWr { bank, cycle });
        self.stats.col_writes_external += 1;
        self.note_activity(cycle);
        if self.tracing() {
            self.emit(TraceEvent::Command {
                cycle,
                bus: TraceBus::Column,
                label: "WR",
                bank_ops: 1,
            });
            self.emit(TraceEvent::DataBurst {
                cycle: cycle + self.timing.t_aa,
                bytes: data.len() as u64,
            });
            self.emit_energy(cycle, "WR", 1, data.len() as u64);
        }
        self.storage.write_column(bank, row, col, data)?;
        Ok(cycle)
    }

    /// Issues a ganged *internal* column read at `cycle` under a single
    /// column-bus slot: every `(bank, col)` pair reads one column from its
    /// open row, and `sink(bank, data)` receives each bank's bytes (this
    /// is the data path into Newton's per-bank multipliers).
    ///
    /// # Errors
    ///
    /// Constraint violations, bank-state errors, or bad indices. Banks are
    /// validated before any state mutates.
    pub fn issue_ganged_column_read_internal(
        &mut self,
        cycle: Cycle,
        pairs: &[(usize, usize)],
        mut sink: impl FnMut(usize, &[u8]),
    ) -> Result<Cycle, DramError> {
        for &(bank, col) in pairs {
            self.check_bank(bank)?;
            if col >= self.config.cols_per_row {
                return Err(DramError::AddressOutOfRange {
                    kind: "column",
                    index: col,
                    limit: self.config.cols_per_row,
                });
            }
            let earliest = self.banks[bank].earliest_column();
            if cycle < earliest {
                return Err(DramError::Timing {
                    constraint: "tRCD/tCCD (column)",
                    issued: cycle,
                    earliest,
                    bank: Some(bank),
                });
            }
        }
        self.col_bus.issue(cycle, &self.timing)?;
        self.record(AuditEvent::Slot {
            cycle,
            bus: BusKind::Column,
        });
        let audit_on = self.audit.is_some();
        for &(bank, col) in pairs {
            let row = self.banks[bank].column_access(cycle, false, &self.timing)?;
            self.banks[bank].note_internal_access(cycle, &self.timing);
            if audit_on {
                self.record(AuditEvent::ColRd {
                    bank,
                    cycle,
                    external: false,
                });
            }
            self.ecc_check_column(cycle, bank, row, col)?;
            let data = self.storage.column(bank, row, col)?;
            sink(bank, data);
        }
        self.stats.col_reads_internal += pairs.len() as u64;
        if pairs.len() > 1 {
            self.stats.ganged_commands += 1;
        }
        self.note_activity(cycle);
        if self.tracing() {
            self.emit(TraceEvent::Command {
                cycle,
                bus: TraceBus::Column,
                label: "COMP",
                bank_ops: pairs.len() as u32,
            });
            for &(bank, _) in pairs {
                self.emit(TraceEvent::BankState {
                    cycle,
                    bank: bank as u32,
                    class: BankClass::Computing,
                });
            }
            self.emit_energy(cycle, "COMP", pairs.len() as u32, 0);
        }
        Ok(cycle)
    }

    /// Issues a train of `count` ganged internal column reads in one call:
    /// command `i` lands at `start + i * step` and reads column `i` of the
    /// open row on every bank in `banks`. State-equivalent to `count`
    /// sequential [`Channel::issue_ganged_column_read_internal`] calls with
    /// a no-op sink, but O(1) in `count * banks` when no per-command
    /// observer is attached. Data is *not* delivered — callers on this path
    /// read the open rows from their own functional cache. Returns the
    /// cycle of the last command.
    ///
    /// When an audit log, trace sink, telemetry collector, or ECC checker
    /// is active, every command is observable, so the train transparently
    /// falls back to the sequential loop.
    ///
    /// # Errors
    ///
    /// Constraint violations, bank-state errors, or bad indices. On the
    /// batched path everything is validated before any state mutates.
    pub fn issue_comp_burst(
        &mut self,
        start: Cycle,
        step: Cycle,
        count: usize,
        banks: &[usize],
    ) -> Result<Cycle, DramError> {
        if count == 0 {
            return Ok(start);
        }
        let last = start + (count as Cycle - 1) * step;
        if self.audit.is_some() || self.tracing() || self.storage.ecc_enabled() {
            let mut pairs: Vec<(usize, usize)> = banks.iter().map(|&b| (b, 0)).collect();
            for i in 0..count {
                for p in &mut pairs {
                    p.1 = i;
                }
                self.issue_ganged_column_read_internal(
                    start + i as Cycle * step,
                    &pairs,
                    |_, _| {},
                )?;
            }
            return Ok(last);
        }
        if count > self.config.cols_per_row {
            return Err(DramError::AddressOutOfRange {
                kind: "column",
                index: self.config.cols_per_row,
                limit: self.config.cols_per_row,
            });
        }
        for &bank in banks {
            self.check_bank(bank)?;
            // Pre-flight the whole train on this bank (state, first-access
            // timing, spacing) so a failure leaves the channel untouched.
            self.banks[bank].check_comp_burst(start, step, count, &self.timing)?;
        }
        self.col_bus.issue_train(start, step, count, &self.timing)?;
        for &bank in banks {
            self.banks[bank]
                .comp_burst(start, step, count, &self.timing)
                .expect("pre-flighted comp burst");
        }
        self.stats.col_reads_internal += (count * banks.len()) as u64;
        if banks.len() > 1 {
            self.stats.ganged_commands += count as u64;
        }
        self.note_activity(start);
        Ok(last)
    }

    /// The replay-path COMP train: like the batched leg of
    /// [`Channel::issue_comp_burst`], but it stays batched when a
    /// telemetry collector is attached (the per-command events fold
    /// closed-form into the windowed series) and when ECC is on (the
    /// caller proves the operand rows are clean via
    /// [`Channel::write_epoch`], so every per-column check would be a
    /// no-op `Ok(0)`). Byte-identical in all observable state to the
    /// sequential expansion under those preconditions.
    ///
    /// Must not be called with an audit log or trace sink attached —
    /// those observers see individual commands, which a fold cannot
    /// reproduce; the replay engine bypasses the cache instead.
    ///
    /// # Errors
    ///
    /// Constraint violations, bank-state errors, or bad indices;
    /// everything is validated before any state mutates.
    pub fn issue_comp_burst_replay(
        &mut self,
        start: Cycle,
        step: Cycle,
        count: usize,
        banks: &[usize],
    ) -> Result<Cycle, DramError> {
        debug_assert!(
            self.audit.is_none() && self.sink.0.is_none(),
            "replay trains cannot serve per-command observers"
        );
        if count == 0 {
            return Ok(start);
        }
        if count > self.config.cols_per_row {
            return Err(DramError::AddressOutOfRange {
                kind: "column",
                index: self.config.cols_per_row,
                limit: self.config.cols_per_row,
            });
        }
        for &bank in banks {
            self.check_bank(bank)?;
            self.banks[bank].check_comp_burst(start, step, count, &self.timing)?;
        }
        self.col_bus.issue_train(start, step, count, &self.timing)?;
        for &bank in banks {
            self.banks[bank]
                .comp_burst(start, step, count, &self.timing)
                .expect("pre-flighted comp burst");
        }
        self.stats.col_reads_internal += (count * banks.len()) as u64;
        if banks.len() > 1 {
            self.stats.ganged_commands += count as u64;
        }
        self.note_activity(start);
        if let Some(t) = &mut self.telemetry {
            let milli_pj = to_milli_pj(t.energy.command_pj("COMP", banks.len() as u32, 0));
            t.series.record_command_train(
                start,
                step,
                count as u64,
                "COMP",
                banks.len() as u32,
                milli_pj,
            );
            for &bank in banks {
                t.series.record_bank_comp_train(bank, count as u64);
            }
        }
        Ok(start + (count as Cycle - 1) * step)
    }

    /// The replay-path GWRITE train: `count` broadcast writes of `bytes`
    /// each at `start, start + step, ...`, state-equivalent to the
    /// sequential [`Channel::issue_broadcast_write`] loop (telemetry
    /// folded closed-form) but O(windows) instead of O(count). Same
    /// observer preconditions as [`Channel::issue_comp_burst_replay`].
    ///
    /// # Errors
    ///
    /// Command-bus or data-bus violations; validated before any state
    /// mutates.
    pub fn issue_broadcast_write_train(
        &mut self,
        start: Cycle,
        step: Cycle,
        count: usize,
        bytes: usize,
    ) -> Result<Cycle, DramError> {
        debug_assert!(
            self.audit.is_none() && self.sink.0.is_none(),
            "replay trains cannot serve per-command observers"
        );
        if count == 0 {
            return Ok(start);
        }
        // Pre-validate the data-bus leg so a failure leaves the command
        // bus untouched (the col-bus train validates itself).
        let burst0 = start + self.timing.t_aa;
        if burst0 < self.data_bus.busy_until() || (count > 1 && step < self.timing.t_ccd) {
            return Err(DramError::Timing {
                constraint: "data bus busy",
                issued: burst0,
                earliest: self.data_bus.busy_until().max(burst0),
                bank: None,
            });
        }
        self.col_bus.issue_train(start, step, count, &self.timing)?;
        self.data_bus
            .transfer_train(burst0, step, count, bytes, &self.timing)
            .expect("pre-validated data-bus train");
        self.stats.broadcast_bytes += (count * bytes) as u64;
        self.note_activity(start);
        if let Some(t) = &mut self.telemetry {
            let milli_pj = to_milli_pj(t.energy.command_pj("GWRITE", 0, bytes as u64));
            t.series
                .record_command_train(start, step, count as u64, "GWRITE", 0, milli_pj);
            t.series
                .record_burst_train(burst0, step, count as u64, bytes as u64);
        }
        Ok(start + (count as Cycle - 1) * step)
    }

    /// Folds one schedule-cache outcome (hit / miss / invalidation plus
    /// closed-form command count) into the telemetry series at `cycle`.
    /// No-op without telemetry.
    pub fn note_schedule_cache(
        &mut self,
        cycle: Cycle,
        hits: u64,
        misses: u64,
        invalidations: u64,
        replayed_commands: u64,
    ) {
        if let Some(t) = &mut self.telemetry {
            t.series
                .record_schedule_cache(cycle, hits, misses, invalidations, replayed_commands);
        }
    }

    /// Issues a broadcast-class command (e.g. Newton GWRITE): consumes one
    /// column-bus slot and moves `bytes` over the external bus at
    /// `cycle + tAA`, but touches no bank array.
    ///
    /// # Errors
    ///
    /// Command-bus or data-bus violations.
    pub fn issue_broadcast_write(
        &mut self,
        cycle: Cycle,
        bytes: usize,
    ) -> Result<Cycle, DramError> {
        self.col_bus.issue(cycle, &self.timing)?;
        self.record(AuditEvent::Slot {
            cycle,
            bus: BusKind::Column,
        });
        self.data_bus
            .transfer(cycle + self.timing.t_aa, bytes, &self.timing)?;
        self.stats.broadcast_bytes += bytes as u64;
        self.note_activity(cycle);
        if self.tracing() {
            self.emit(TraceEvent::Command {
                cycle,
                bus: TraceBus::Column,
                label: "GWRITE",
                bank_ops: 0,
            });
            self.emit(TraceEvent::DataBurst {
                cycle: cycle + self.timing.t_aa,
                bytes: bytes as u64,
            });
            self.emit_energy(cycle, "GWRITE", 0, bytes as u64);
        }
        Ok(cycle)
    }

    /// Earliest cycle `>= after` for a broadcast-class command.
    #[must_use]
    pub fn earliest_broadcast_write(&self, after: Cycle) -> Cycle {
        let slot = self.col_bus.earliest_slot(after, &self.timing);
        let bus_free = self.data_bus.earliest_transfer(slot + self.timing.t_aa);
        slot.max(bus_free.saturating_sub(self.timing.t_aa))
    }

    /// Issues a result-readout-class command (e.g. Newton READRES): one
    /// column-bus slot, `bytes` over the external bus toward the host, no
    /// bank array access.
    ///
    /// # Errors
    ///
    /// Command-bus or data-bus violations.
    pub fn issue_result_read(&mut self, cycle: Cycle, bytes: usize) -> Result<Cycle, DramError> {
        self.col_bus.issue(cycle, &self.timing)?;
        self.record(AuditEvent::Slot {
            cycle,
            bus: BusKind::Column,
        });
        self.data_bus
            .transfer(cycle + self.timing.t_aa, bytes, &self.timing)?;
        self.note_activity(cycle);
        if self.tracing() {
            self.emit(TraceEvent::Command {
                cycle,
                bus: TraceBus::Column,
                label: "READRES",
                bank_ops: 0,
            });
            self.emit(TraceEvent::DataBurst {
                cycle: cycle + self.timing.t_aa,
                bytes: bytes as u64,
            });
            self.emit_energy(cycle, "READRES", 0, bytes as u64);
        }
        Ok(cycle)
    }

    /// Earliest cycle `>= after` for a result-readout-class command.
    #[must_use]
    pub fn earliest_result_read(&self, after: Cycle) -> Cycle {
        self.earliest_broadcast_write(after)
    }

    /// Issues a control-only command at `cycle`: consumes one column-bus
    /// slot, touches no bank and no data bus. Used to model the *simple*
    /// command expansion of an AiM compute step (broadcast trigger /
    /// multiply-add trigger) when complex commands are disabled.
    ///
    /// # Errors
    ///
    /// Command-bus violations.
    pub fn issue_control_command(&mut self, cycle: Cycle) -> Result<Cycle, DramError> {
        self.col_bus.issue(cycle, &self.timing)?;
        self.record(AuditEvent::Slot {
            cycle,
            bus: BusKind::Column,
        });
        self.note_activity(cycle);
        self.emit(TraceEvent::Command {
            cycle,
            bus: TraceBus::Column,
            label: "CTRL",
            bank_ops: 0,
        });
        Ok(cycle)
    }

    /// Earliest cycle `>= after` for a control-only command.
    #[must_use]
    pub fn earliest_control_command(&self, after: Cycle) -> Cycle {
        self.col_bus.earliest_slot(after, &self.timing)
    }

    // ------------------------------------------------------------------
    // Precharge (row bus)
    // ------------------------------------------------------------------

    /// Earliest legal cycle to precharge `bank`.
    #[must_use]
    pub fn earliest_precharge(&self, bank: usize) -> Cycle {
        self.row_bus
            .earliest_slot(self.banks[bank].earliest_precharge(), &self.timing)
    }

    /// Earliest legal cycle for precharge-all (every open bank's gate).
    #[must_use]
    pub fn earliest_precharge_all(&self) -> Cycle {
        let mut hint = 0;
        for b in &self.banks {
            if b.state().open_row().is_some() {
                hint = hint.max(b.earliest_precharge());
            }
        }
        self.row_bus.earliest_slot(hint, &self.timing)
    }

    /// Issues a single-bank PRE at `cycle`.
    ///
    /// # Errors
    ///
    /// Constraint violations or bank-state errors.
    pub fn issue_precharge(&mut self, cycle: Cycle, bank: usize) -> Result<Cycle, DramError> {
        self.check_bank(bank)?;
        self.row_bus.issue(cycle, &self.timing)?;
        self.record(AuditEvent::Slot {
            cycle,
            bus: BusKind::Row,
        });
        self.banks[bank].precharge(cycle, &self.timing)?;
        self.record(AuditEvent::Pre { bank, cycle });
        self.stats.precharges += 1;
        self.note_activity(cycle);
        if self.tracing() {
            self.emit(TraceEvent::Command {
                cycle,
                bus: TraceBus::Row,
                label: "PRE",
                bank_ops: 1,
            });
            self.emit(TraceEvent::BankState {
                cycle,
                bank: bank as u32,
                class: BankClass::Precharging,
            });
        }
        Ok(cycle)
    }

    /// Issues a precharge-all at `cycle`: closes every open bank under one
    /// row-bus slot (a standard DRAM PREA command).
    ///
    /// # Errors
    ///
    /// Constraint violations; banks are validated before any mutates.
    pub fn issue_precharge_all(&mut self, cycle: Cycle) -> Result<Cycle, DramError> {
        for b in &self.banks {
            if b.state().open_row().is_some() && cycle < b.earliest_precharge() {
                return Err(DramError::Timing {
                    constraint: "tRAS/tRTP/tWR (precharge-all)",
                    issued: cycle,
                    earliest: b.earliest_precharge(),
                    bank: None,
                });
            }
        }
        self.row_bus.issue(cycle, &self.timing)?;
        self.record(AuditEvent::Slot {
            cycle,
            bus: BusKind::Row,
        });
        let mut closed = 0;
        for bank in 0..self.banks.len() {
            if self.banks[bank].state().open_row().is_some() {
                self.banks[bank].precharge(cycle, &self.timing)?;
                self.record(AuditEvent::Pre { bank, cycle });
                if self.tracing() {
                    self.emit(TraceEvent::BankState {
                        cycle,
                        bank: bank as u32,
                        class: BankClass::Precharging,
                    });
                }
                closed += 1;
            }
        }
        self.stats.precharges += closed;
        if closed > 1 {
            self.stats.ganged_commands += 1;
        }
        self.note_activity(cycle);
        self.emit(TraceEvent::Command {
            cycle,
            bus: TraceBus::Row,
            label: "PREA",
            bank_ops: closed as u32,
        });
        Ok(cycle)
    }

    // ------------------------------------------------------------------
    // Refresh (row bus)
    // ------------------------------------------------------------------

    fn check_refresh_not_overdue(&self, cycle: Cycle) -> Result<(), DramError> {
        if self.refresh_enabled && cycle > self.next_refresh_due {
            return Err(DramError::RefreshOverdue {
                deadline: self.next_refresh_due,
                observed: cycle,
            });
        }
        Ok(())
    }

    /// Issues an all-bank refresh at `cycle`. All banks must be idle; they
    /// are blocked until `cycle + tRFC`. The next deadline is one tREFI
    /// after this refresh (pull-in semantics).
    ///
    /// # Errors
    ///
    /// Bank-state errors if any bank has an open row; command-bus
    /// violations.
    pub fn issue_refresh_all(&mut self, cycle: Cycle) -> Result<Cycle, DramError> {
        for (i, b) in self.banks.iter().enumerate() {
            if let Some(row) = b.state().open_row() {
                return Err(DramError::BankState {
                    bank: i,
                    attempted: "refresh-all",
                    actual: format!("Active {{ row: {row} }}"),
                });
            }
        }
        self.row_bus.issue(cycle, &self.timing)?;
        self.record(AuditEvent::Slot {
            cycle,
            bus: BusKind::Row,
        });
        self.record(AuditEvent::Ref { cycle });
        let until = cycle + self.timing.t_rfc;
        for b in &mut self.banks {
            b.block_for_refresh(cycle, until)?;
        }
        self.stats.refreshes += 1;
        self.next_refresh_due = cycle + self.timing.t_refi;
        self.last_refresh = cycle;
        self.note_activity(cycle);
        if self.tracing() {
            let banks = self.banks.len();
            self.emit(TraceEvent::Command {
                cycle,
                bus: TraceBus::Row,
                label: "REF",
                bank_ops: banks as u32,
            });
            for bank in 0..banks {
                self.emit(TraceEvent::BankState {
                    cycle,
                    bank: bank as u32,
                    class: BankClass::Refreshing,
                });
            }
            self.emit_energy(cycle, "REF", banks as u32, 0);
        }
        Ok(cycle)
    }

    // ------------------------------------------------------------------
    // Summary
    // ------------------------------------------------------------------

    /// Snapshot of counters, per-bank cycle attribution, and latency
    /// histograms for the span through `end_cycle`.
    #[must_use]
    pub fn summary(&self, end_cycle: Cycle) -> RunSummary {
        RunSummary {
            stats: self.stats,
            commands: self.row_bus.issued() + self.col_bus.issued(),
            external_bytes: self.data_bus.bytes(),
            bank_open_cycles: self.banks.iter().map(Bank::open_cycles).sum(),
            activity_start: self.first_activity.unwrap_or(0),
            end_cycle,
            tck_ns: self.timing.tck_ns,
            residency: self.banks.iter().map(|b| b.residency(end_cycle)).collect(),
            queue_latency: self.queue_latency.clone(),
            row_slot_gaps: self.row_bus.slot_gaps().clone(),
            col_slot_gaps: self.col_bus.slot_gaps().clone(),
            act_gaps: self.act_gaps.clone(),
            ecc: self.ecc.clone(),
            telemetry: self.telemetry.as_ref().map(|t| t.series.sampled(end_cycle)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingParams;

    fn channel() -> Channel {
        let mut ch = Channel::new(DramConfig::hbm2e_like()).unwrap();
        ch.enable_audit();
        ch
    }

    fn timing() -> Timing {
        TimingParams::hbm2e_like().to_cycles().unwrap()
    }

    #[test]
    fn activate_read_precharge_roundtrip_with_audit() {
        let mut ch = channel();
        let t = timing();
        let row: Vec<u8> = (0..1024).map(|i| (i * 7 % 256) as u8).collect();
        ch.storage_mut().write_row(2, 9, &row).unwrap();

        let a = ch.earliest_activate(2);
        ch.issue_activate(a, 2, 9).unwrap();
        assert_eq!(ch.open_row(2), Some(9));

        let r = ch.earliest_column_read(a, 2);
        assert_eq!(r, a + t.t_rcd);
        let (_, data) = ch.issue_column_read_external(r, 2, 4).unwrap();
        assert_eq!(data, &row[128..160]);

        let p = ch.earliest_precharge(2);
        ch.issue_precharge(p, 2).unwrap();
        assert_eq!(ch.open_row(2), None);

        assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
        let s = ch.summary(p);
        assert_eq!(s.stats.activates, 1);
        assert_eq!(s.stats.col_reads_external, 1);
        assert_eq!(s.stats.precharges, 1);
        assert_eq!(s.external_bytes, 32);
        assert_eq!(s.commands, 3);
    }

    #[test]
    fn ganged_activate_uses_one_slot_and_counts_four_acts() {
        let mut ch = channel();
        let t = timing();
        let pairs = [(0, 1), (1, 1), (2, 1), (3, 1)];
        let c = ch.earliest_ganged_activate(&[0, 1, 2, 3]);
        ch.issue_ganged_activate(c, &pairs).unwrap();
        let s = ch.summary(c);
        assert_eq!(s.stats.activates, 4);
        assert_eq!(s.stats.ganged_commands, 1);
        assert_eq!(s.commands, 1);
        // Next gang must wait tFAW.
        assert_eq!(ch.earliest_ganged_activate(&[4, 5, 6, 7]), c + t.t_faw);
        assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
    }

    #[test]
    fn ganged_internal_read_hits_all_banks_in_one_slot() {
        let mut ch = channel();
        let t = timing();
        for bank in 0..4 {
            let row: Vec<u8> = vec![bank as u8; 1024];
            ch.storage_mut().write_row(bank, 0, &row).unwrap();
        }
        let c = ch
            .issue_ganged_activate(0, &[(0, 0), (1, 0), (2, 0), (3, 0)])
            .unwrap();
        let rd = ch.earliest_ganged_column_read(c, &[0, 1, 2, 3]);
        assert_eq!(rd, c + t.t_rcd);
        let mut seen = Vec::new();
        ch.issue_ganged_column_read_internal(
            rd,
            &[(0, 5), (1, 5), (2, 5), (3, 5)],
            |bank, data| {
                seen.push((bank, data[0]));
            },
        )
        .unwrap();
        assert_eq!(seen, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
        let s = ch.summary(rd);
        assert_eq!(s.stats.col_reads_internal, 4);
        assert_eq!(s.external_bytes, 0, "internal reads never touch the PHY");
        assert_eq!(s.commands, 2);
        assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
    }

    #[test]
    fn comp_burst_matches_sequential_ganged_reads() {
        let t = timing();
        let banks = [0usize, 1, 2, 3];
        let setup = || {
            // No audit: the burst channel must take the batched path.
            let mut ch = Channel::new(DramConfig::hbm2e_like()).unwrap();
            for &bank in &banks {
                ch.storage_mut()
                    .write_row(bank, 3, &vec![bank as u8; 1024])
                    .unwrap();
            }
            ch.issue_ganged_activate(0, &[(0, 3), (1, 3), (2, 3), (3, 3)])
                .unwrap();
            ch
        };
        for count in [1usize, 2, 32] {
            let mut looped = setup();
            let mut burst = setup();
            let t0 = looped.earliest_ganged_column_read(0, &banks);
            let step = t.t_ccd.max(t.t_cmd);
            let mut last = t0;
            for i in 0..count {
                let c = looped.earliest_ganged_column_read(last, &banks);
                assert_eq!(c, t0 + i as Cycle * step, "cursor invariant");
                looped
                    .issue_ganged_column_read_internal(
                        c,
                        &[(0, i), (1, i), (2, i), (3, i)],
                        |_, _| {},
                    )
                    .unwrap();
                last = c;
            }
            let burst_last = burst.issue_comp_burst(t0, step, count, &banks).unwrap();
            assert_eq!(burst_last, last, "count={count}");
            let end = last + 100;
            assert_eq!(looped.summary(end), burst.summary(end), "count={count}");
            for &bank in &banks {
                assert_eq!(
                    looped.earliest_ganged_column_read(0, &[bank]),
                    burst.earliest_ganged_column_read(0, &[bank])
                );
                assert_eq!(
                    looped.earliest_precharge(bank),
                    burst.earliest_precharge(bank)
                );
            }
            // Future behavior matches: close the row set on both.
            let p = looped.earliest_precharge(0);
            looped.issue_precharge_all(p).unwrap();
            burst.issue_precharge_all(p).unwrap();
            assert_eq!(looped.summary(p + 50), burst.summary(p + 50));
        }
    }

    #[test]
    fn replay_comp_burst_matches_sequential_with_ecc_and_telemetry() {
        // The replay train must be byte-identical to the per-command
        // expansion even with ECC and telemetry on, provided storage is
        // clean — the exact precondition the replay engine proves via
        // write_epoch before arming.
        let t = timing();
        let banks = [0usize, 1, 2, 3];
        let setup = || {
            let mut ch = Channel::new(DramConfig::hbm2e_like()).unwrap();
            ch.storage_mut().enable_ecc();
            ch.enable_telemetry(64);
            for &bank in &banks {
                ch.storage_mut()
                    .write_row(bank, 3, &vec![bank as u8 + 1; 1024])
                    .unwrap();
            }
            ch.issue_ganged_activate(0, &[(0, 3), (1, 3), (2, 3), (3, 3)])
                .unwrap();
            ch
        };
        for count in [1usize, 2, 32] {
            let mut looped = setup();
            let mut replay = setup();
            let t0 = looped.earliest_ganged_column_read(0, &banks);
            let step = t.t_ccd.max(t.t_cmd);
            let mut pairs: Vec<(usize, usize)> = banks.iter().map(|&b| (b, 0)).collect();
            for i in 0..count {
                for p in &mut pairs {
                    p.1 = i;
                }
                looped
                    .issue_ganged_column_read_internal(t0 + i as Cycle * step, &pairs, |_, _| {})
                    .unwrap();
            }
            let last = replay
                .issue_comp_burst_replay(t0, step, count, &banks)
                .unwrap();
            assert_eq!(last, t0 + (count as Cycle - 1) * step);
            let end = last + 100;
            assert_eq!(looped.summary(end), replay.summary(end), "count={count}");
            assert_eq!(looped.write_epoch(), replay.write_epoch());
            // Future behavior matches too.
            let p = looped.earliest_precharge_all();
            looped.issue_precharge_all(p).unwrap();
            replay.issue_precharge_all(p).unwrap();
            assert_eq!(looped.summary(p + 50), replay.summary(p + 50));
        }
    }

    #[test]
    fn broadcast_write_train_matches_sequential_loop() {
        let mk = || {
            let mut ch = Channel::new(DramConfig::hbm2e_like()).unwrap();
            ch.enable_telemetry(64);
            // Pre-touch the buses so the train starts from a non-virgin state.
            ch.issue_broadcast_write(0, 32).unwrap();
            ch
        };
        let mut looped = mk();
        let mut train = mk();
        let t0 = looped.earliest_broadcast_write(7);
        let step = looped.timing().t_ccd.max(looped.timing().t_cmd);
        for i in 0..32u64 {
            let c = looped.earliest_broadcast_write(if i == 0 { 7 } else { 0 });
            assert_eq!(c, t0 + i * step, "gwrite cursor invariant");
            looped.issue_broadcast_write(c, 32).unwrap();
        }
        let last = train.issue_broadcast_write_train(t0, step, 32, 32).unwrap();
        assert_eq!(last, t0 + 31 * step);
        assert_eq!(looped.summary(last + 10), train.summary(last + 10));
        // An early train is rejected whole, leaving both buses untouched.
        let before = train.summary(last + 10);
        assert!(train.issue_broadcast_write_train(last, 1, 4, 32).is_err());
        assert_eq!(train.summary(last + 10), before);
    }

    #[test]
    fn prescrubbed_activate_matches_scrubbing_activate_on_clean_rows() {
        let mk = || {
            let mut ch = Channel::new(DramConfig::hbm2e_like()).unwrap();
            ch.storage_mut().enable_ecc();
            ch.enable_telemetry(64);
            ch.storage_mut().write_row(0, 5, &vec![9u8; 1024]).unwrap();
            ch.storage_mut().write_row(1, 5, &vec![8u8; 1024]).unwrap();
            ch
        };
        let mut scrubbed = mk();
        let mut pristine = mk();
        scrubbed
            .issue_ganged_activate(0, &[(0, 5), (1, 5)])
            .unwrap();
        pristine
            .issue_ganged_activate_prescrubbed(0, &[(0, 5), (1, 5)])
            .unwrap();
        assert_eq!(scrubbed.summary(100), pristine.summary(100));
        assert_eq!(scrubbed.write_epoch(), pristine.write_epoch());
        assert_eq!(
            scrubbed.storage().row(0, 5).unwrap(),
            pristine.storage().row(0, 5).unwrap()
        );
    }

    #[test]
    fn comp_burst_with_audit_attached_records_every_command() {
        // With an observer attached the burst must fall back to the
        // sequential loop so per-command audit events still appear.
        let t = timing();
        let mut ch = channel();
        for bank in 0..2 {
            ch.storage_mut()
                .write_row(bank, 0, &vec![7u8; 1024])
                .unwrap();
        }
        ch.issue_ganged_activate(0, &[(0, 0), (1, 0)]).unwrap();
        let t0 = ch.earliest_ganged_column_read(0, &[0, 1]);
        let step = t.t_ccd.max(t.t_cmd);
        ch.issue_comp_burst(t0, step, 8, &[0, 1]).unwrap();
        let s = ch.summary(t0 + 8 * step);
        assert_eq!(s.stats.col_reads_internal, 16);
        assert_eq!(s.stats.ganged_commands, 1 + 8);
        assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
        let col_reads = ch
            .audit()
            .unwrap()
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    AuditEvent::ColRd {
                        external: false,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(col_reads, 16, "per-command audit records survive");
    }

    #[test]
    fn early_commands_are_rejected_not_clamped() {
        let mut ch = channel();
        let t = timing();
        ch.issue_activate(0, 0, 0).unwrap();
        let err = ch
            .issue_column_read_external(t.t_rcd - 1, 0, 0)
            .unwrap_err();
        assert!(matches!(err, DramError::Timing { .. }));
        // Row bus slot / tRRD also enforced: second ACT at the same cycle.
        let err = ch.issue_activate(0, 1, 0).unwrap_err();
        assert!(matches!(err, DramError::Timing { .. }));
    }

    #[test]
    fn row_and_column_buses_are_independent() {
        let mut ch = channel();
        let t = timing();
        ch.issue_activate(0, 0, 0).unwrap();
        // A column command may share cycle tRCD with a row command on the
        // other bus.
        ch.issue_activate(t.t_rrd.max(t.t_cmd), 1, 0).unwrap();
        // Column read on bank 0 at tRCD: row bus just used nearby, but the
        // column bus is free.
        ch.issue_column_read_external(t.t_rcd, 0, 0).unwrap();
        assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
    }

    #[test]
    fn precharge_all_closes_every_open_bank() {
        let mut ch = channel();
        let t = timing();
        let c0 = ch
            .issue_ganged_activate(0, &[(0, 3), (1, 3), (2, 3), (3, 3)])
            .unwrap();
        let p = ch.earliest_precharge_all();
        assert!(p >= c0 + t.t_ras);
        ch.issue_precharge_all(p).unwrap();
        for bank in 0..4 {
            assert_eq!(ch.open_row(bank), None);
        }
        assert_eq!(ch.summary(p).stats.precharges, 4);
        assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
    }

    #[test]
    fn refresh_blocks_activation_for_trfc_and_resets_deadline() {
        let mut ch = channel();
        let t = timing();
        assert_eq!(ch.refresh_due(), t.t_refi);
        ch.issue_refresh_all(100).unwrap();
        assert_eq!(ch.refresh_due(), 100 + t.t_refi);
        let a = ch.earliest_activate(0);
        assert_eq!(a, 100 + t.t_rfc);
        ch.issue_activate(a, 0, 0).unwrap();
        assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
    }

    #[test]
    fn refresh_requires_idle_banks() {
        let mut ch = channel();
        ch.issue_activate(0, 0, 0).unwrap();
        assert!(matches!(
            ch.issue_refresh_all(1000),
            Err(DramError::BankState { .. })
        ));
    }

    #[test]
    fn overdue_refresh_blocks_new_activations() {
        let mut ch = channel();
        let t = timing();
        let late = t.t_refi + 1;
        let err = ch.issue_activate(late, 0, 0).unwrap_err();
        assert!(matches!(err, DramError::RefreshOverdue { .. }));
        // With refresh disabled, the same activation succeeds.
        let mut ch = channel();
        ch.disable_refresh();
        assert_eq!(ch.refresh_due(), Cycle::MAX);
        ch.issue_activate(late, 0, 0).unwrap();
    }

    #[test]
    fn broadcast_and_result_commands_use_slot_and_phy_only() {
        let mut ch = channel();
        let t = timing();
        let c = ch.issue_broadcast_write(0, 32).unwrap();
        let c2 = ch.earliest_broadcast_write(c);
        assert_eq!(c2, c + t.t_cmd);
        ch.issue_broadcast_write(c2, 32).unwrap();
        let c3 = ch.earliest_result_read(c2);
        ch.issue_result_read(c3, 32).unwrap();
        let s = ch.summary(c3);
        assert_eq!(s.stats.broadcast_bytes, 64);
        assert_eq!(s.external_bytes, 96);
        assert_eq!(s.stats.activates, 0);
    }

    #[test]
    fn out_of_range_addresses_rejected_everywhere() {
        let mut ch = channel();
        assert!(ch.issue_activate(0, 16, 0).is_err());
        assert!(ch.issue_activate(0, 0, 40_000).is_err());
        ch.issue_activate(0, 0, 0).unwrap();
        let t = *ch.timing();
        assert!(ch
            .issue_ganged_column_read_internal(t.t_rcd, &[(0, 99)], |_, _| {})
            .is_err());
    }

    #[test]
    fn sixteen_bank_staggered_activation_respects_faw_audit() {
        // Activate all 16 banks as fast as legality allows, then audit.
        let mut ch = channel();
        let t = timing();
        for bank in 0..16 {
            let c = ch.earliest_activate(bank);
            ch.issue_activate(c, bank, 0).unwrap();
        }
        assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
        // 16 singles: groups of 4 fit per tFAW window; the 16th lands at
        // >= 3 * tFAW.
        let acts: Vec<_> = ch
            .audit()
            .unwrap()
            .events()
            .iter()
            .filter_map(|e| match e {
                AuditEvent::Act { cycle, .. } => Some(*cycle),
                _ => None,
            })
            .collect();
        assert_eq!(acts.len(), 16);
        assert!(acts[15] >= 3 * t.t_faw);
    }

    #[test]
    fn trace_sink_sees_commands_bank_states_and_bursts() {
        use newton_trace::{SharedRecordingSink, TraceEvent};
        let mut ch = channel();
        let t = timing();
        let handle = SharedRecordingSink::new();
        ch.set_trace_sink(Box::new(handle.clone()));
        assert!(ch.has_trace_sink());
        ch.issue_ganged_activate(0, &[(0, 0), (1, 0)]).unwrap();
        ch.issue_ganged_column_read_internal(t.t_rcd, &[(0, 0), (1, 0)], |_, _| {})
            .unwrap();
        ch.issue_column_read_external(t.t_rcd + t.t_ccd, 0, 1)
            .unwrap();
        ch.record_queue_latency(t.t_rcd + t.t_ccd, 7);
        assert!(ch.take_trace_sink().is_some());
        assert!(!ch.has_trace_sink());

        let events = handle.events();
        let commands: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Command {
                    label, bank_ops, ..
                } => Some((*label, *bank_ops)),
                _ => None,
            })
            .collect();
        assert_eq!(commands, vec![("G_ACT", 2), ("COMP", 2), ("RD", 1)]);
        let bursts = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::DataBurst { .. }))
            .count();
        assert_eq!(bursts, 1, "only the external read crosses the PHY");
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::QueueLatency { waited: 7, .. })));
        // Detached: further commands are not traced.
        let before = handle.len();
        ch.issue_column_read_external(t.t_rcd + 2 * t.t_ccd, 1, 1)
            .unwrap();
        assert_eq!(handle.len(), before);
    }

    #[test]
    fn telemetry_series_mirrors_the_stat_counters() {
        use newton_trace::EnergyModel;
        let mut ch = channel();
        let t = timing();
        ch.enable_telemetry(64);
        assert!(ch.telemetry().is_some());
        for bank in 0..4 {
            ch.storage_mut()
                .write_row(bank, 0, &vec![1u8; 1024])
                .unwrap();
        }
        let a = ch
            .issue_ganged_activate(0, &[(0, 0), (1, 0), (2, 0), (3, 0)])
            .unwrap();
        ch.issue_ganged_column_read_internal(
            a + t.t_rcd,
            &[(0, 0), (1, 0), (2, 0), (3, 0)],
            |_, _| {},
        )
        .unwrap();
        ch.issue_result_read(a + t.t_rcd + t.t_ccd, 32).unwrap();
        let p = ch.earliest_precharge_all();
        ch.issue_precharge_all(p).unwrap();
        let end = p + t.t_rp;
        let s = ch.summary(end);
        let series = s.telemetry.as_ref().expect("telemetry in summary");
        let totals = series.totals();
        // Event counts must equal the postprocessed stat counters —
        // this is what makes streamed energy match the Fig. 13 model.
        assert_eq!(totals.activates, s.stats.activates);
        assert_eq!(totals.comp_ops, s.stats.col_reads_internal);
        assert_eq!(
            totals.array_accesses,
            s.stats.col_reads_internal + s.stats.col_reads_external + s.stats.col_writes_external
        );
        assert_eq!(totals.bus_bytes, s.external_bytes);
        assert_eq!(totals.bank_open_cycles, s.bank_open_cycles);
        assert_eq!(totals.ganged_act_banks, 4);
        // Streamed fixed-point energy agrees with the coefficients.
        let m = EnergyModel::new();
        let expect_pj = m.act_pj(4) + m.comp_pj(4) + m.phy_pj(32);
        assert_eq!(totals.energy_milli_pj, (expect_pj * 1000.0).round() as u64);
        assert_eq!(series.dynamic_energy_pj(&m), m.window_pj(&totals));
        // Per-bank attribution saw the four activates and COMPs.
        assert_eq!(series.per_bank()[0].activates, 1);
        assert_eq!(series.per_bank()[0].comp_ops, 1);
        assert_eq!(series.per_bank()[8].activates, 0);
        // Windows pad to the end cycle.
        assert_eq!(series.windows().len(), (end as usize).div_ceil(64));
    }

    #[test]
    fn summary_residency_sums_to_elapsed_for_every_bank() {
        let mut ch = channel();
        let t = timing();
        ch.issue_ganged_activate(0, &[(0, 0), (1, 0), (2, 0), (3, 0)])
            .unwrap();
        ch.issue_ganged_column_read_internal(t.t_rcd, &[(0, 0), (1, 0), (2, 0), (3, 0)], |_, _| {})
            .unwrap();
        let p = ch.earliest_precharge_all();
        ch.issue_precharge_all(p).unwrap();
        let end = p + t.t_rp + 50;
        let s = ch.summary(end);
        assert_eq!(s.residency.len(), 16);
        for (bank, r) in s.residency.iter().enumerate() {
            assert_eq!(r.total(), end, "bank {bank} residency must sum to elapsed");
        }
        // The four touched banks computed for one tCCD each.
        for r in &s.residency[..4] {
            assert_eq!(r.computing, t.t_ccd);
            assert_eq!(r.precharging, t.t_rp);
        }
        // Untouched banks were idle the whole time.
        assert_eq!(s.residency[8].idle, end);
        // Activity metadata: first command at cycle 0, gaps recorded.
        assert_eq!(s.activity_start, 0);
        assert_eq!(s.row_slot_gaps.count(), 1);
        assert_eq!(s.col_slot_gaps.count(), 0);
    }

    #[test]
    fn external_read_stream_saturates_at_tccd() {
        // Back-to-back reads from two banks reach one column per tCCD —
        // the external-bandwidth ceiling the Ideal Non-PIM model assumes.
        let mut ch = channel();
        let t = timing();
        ch.issue_activate(0, 0, 0).unwrap();
        ch.issue_activate(t.t_rrd.max(t.t_cmd), 1, 0).unwrap();
        let mut c = t.t_rcd;
        let n = 64;
        for i in 0..n {
            let bank = (i % 2) as usize;
            let rd = ch.earliest_column_read(c, bank);
            ch.issue_column_read_external(rd, bank, (i / 2 % 32) as usize)
                .unwrap();
            c = rd;
        }
        // First read at tRCD, each subsequent exactly tCCD later.
        assert_eq!(c, t.t_rcd + (n - 1) * t.t_ccd);
        assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
    }
}
