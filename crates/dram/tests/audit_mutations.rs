//! Adversarial mutation corpus for the post-hoc timing audit.
//!
//! Each test starts from a *legal* command-stream event log (verified
//! clean), applies exactly one adversarial perturbation — the kind of
//! off-by-a-few-cycles bug a scheduler regression would introduce — and
//! asserts the audit rejects it, naming the right constraint. A
//! validator that waves mutated logs through would make every timing
//! number in the repo untrustworthy, so each mutation must fail loudly.

use newton_dram::audit::{Audit, AuditEvent, BusKind};
use newton_dram::timing::{Cycle, Timing, TimingParams};

fn timing() -> Timing {
    TimingParams::hbm2e_like()
        .to_cycles()
        .expect("hbm2e_like timing converts")
}

/// A legal two-bank open/read/close sequence followed by an on-time
/// refresh and a post-refresh reopen. Every mutation below edits one
/// event of this log.
fn legal_log(t: &Timing) -> Vec<AuditEvent> {
    let mut ev = Vec::new();
    let slot = |ev: &mut Vec<AuditEvent>, cycle: Cycle, bus: BusKind| {
        ev.push(AuditEvent::Slot { cycle, bus });
    };

    // Bank 0: ACT, two reads spaced tCCD, PRE after tRAS/tRTP.
    slot(&mut ev, 0, BusKind::Row);
    ev.push(AuditEvent::Act {
        bank: 0,
        row: 7,
        cycle: 0,
    });
    let rd0 = t.t_rcd;
    slot(&mut ev, rd0, BusKind::Column);
    ev.push(AuditEvent::ColRd {
        bank: 0,
        cycle: rd0,
        external: true,
    });
    let rd1 = rd0 + t.t_ccd;
    slot(&mut ev, rd1, BusKind::Column);
    ev.push(AuditEvent::ColRd {
        bank: 0,
        cycle: rd1,
        external: true,
    });
    let wr0 = rd1 + t.t_ccd;
    slot(&mut ev, wr0, BusKind::Column);
    ev.push(AuditEvent::ColWr {
        bank: 0,
        cycle: wr0,
    });
    let pre0 = (t.t_ras).max(wr0 + t.t_aa + t.t_wr);
    slot(&mut ev, pre0, BusKind::Row);
    ev.push(AuditEvent::Pre {
        bank: 0,
        cycle: pre0,
    });

    // Bank 0 again: legal re-activation after tRP (and tRC).
    let act2 = (pre0 + t.t_rp).max(t.t_rc());
    slot(&mut ev, act2, BusKind::Row);
    ev.push(AuditEvent::Act {
        bank: 0,
        row: 9,
        cycle: act2,
    });
    let pre2 = act2 + t.t_ras;
    slot(&mut ev, pre2, BusKind::Row);
    ev.push(AuditEvent::Pre {
        bank: 0,
        cycle: pre2,
    });

    // An on-time refresh, then a reopen after tRFC.
    let rf = pre2 + t.t_rp;
    assert!(rf <= t.t_refi, "legal log must refresh before the deadline");
    slot(&mut ev, rf, BusKind::Row);
    ev.push(AuditEvent::Ref { cycle: rf });
    let act3 = rf + t.t_rfc;
    slot(&mut ev, act3, BusKind::Row);
    ev.push(AuditEvent::Act {
        bank: 1,
        row: 0,
        cycle: act3,
    });
    let pre3 = act3 + t.t_ras;
    slot(&mut ev, pre3, BusKind::Row);
    ev.push(AuditEvent::Pre {
        bank: 1,
        cycle: pre3,
    });
    ev
}

fn validate(events: &[AuditEvent], t: &Timing) -> Vec<&'static str> {
    let mut audit = Audit::new();
    for e in events {
        audit.record(*e);
    }
    audit
        .validate(t)
        .into_iter()
        .map(|v| v.constraint)
        .collect()
}

/// Applies `mutate` to the legal log and asserts the audit reports
/// `constraint` (and reported nothing before the mutation).
fn assert_mutation_caught(constraint: &str, mutate: impl FnOnce(&Timing, &mut Vec<AuditEvent>)) {
    let t = timing();
    let mut events = legal_log(&t);
    assert_eq!(
        validate(&events, &t),
        Vec::<&str>::new(),
        "baseline log must be clean"
    );
    mutate(&t, &mut events);
    let found = validate(&events, &t);
    assert!(
        found.contains(&constraint),
        "mutation should trip {constraint}, audit reported {found:?}"
    );
}

/// Shifts the cycle of the `n`-th event matching `select` by `delta`.
fn shift_nth(
    events: &mut [AuditEvent],
    n: usize,
    delta: i64,
    select: impl Fn(&AuditEvent) -> bool,
) {
    let idx = events
        .iter()
        .enumerate()
        .filter(|(_, e)| select(e))
        .map(|(i, _)| i)
        .nth(n)
        .expect("selector matches");
    let bump = |c: Cycle| -> Cycle {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let shifted = (c as i64 + delta) as Cycle;
        shifted
    };
    match &mut events[idx] {
        AuditEvent::Act { cycle, .. }
        | AuditEvent::Pre { cycle, .. }
        | AuditEvent::ColRd { cycle, .. }
        | AuditEvent::ColWr { cycle, .. }
        | AuditEvent::Ref { cycle }
        | AuditEvent::Slot { cycle, .. } => *cycle = bump(*cycle),
    }
}

fn is_act(e: &AuditEvent) -> bool {
    matches!(e, AuditEvent::Act { .. })
}

fn is_bank0_act(e: &AuditEvent) -> bool {
    matches!(e, AuditEvent::Act { bank: 0, .. })
}

#[test]
fn act_before_trp_elapsed_is_rejected() {
    // Pull bank 0's re-activation one cycle inside the precharge window.
    assert_mutation_caught("tRP", |_, ev| {
        shift_nth(ev, 1, -1, is_bank0_act);
    });
}

#[test]
fn fifth_act_inside_tfaw_is_rejected() {
    // Add a burst of 4 more ACTs legally spaced by tRRD, then a 5th
    // pulled one cycle inside the tFAW window of the burst's first.
    let t = timing();
    let mut events = legal_log(&t);
    // Periodic refreshes keep the tREFI deadline satisfied out where the
    // burst runs.
    for k in 1..=10 {
        events.push(AuditEvent::Ref {
            cycle: k * t.t_refi,
        });
    }
    let start = 10 * t.t_refi + t.t_rfc;
    let mut cycle = start;
    for bank in 2..6 {
        events.push(AuditEvent::Act {
            bank,
            row: 0,
            cycle,
        });
        cycle += t.t_rrd;
    }
    assert_eq!(
        validate(&events, &t),
        Vec::<&str>::new(),
        "the 4-activation burst itself is legal"
    );
    // 5th activation of the burst: legal would be start + tFAW; issue it
    // one cycle early instead.
    events.push(AuditEvent::Act {
        bank: 6,
        row: 0,
        cycle: start + t.t_faw - 1,
    });
    let found = validate(&events, &t);
    assert!(found.contains(&"tFAW"), "audit reported {found:?}");
}

#[test]
fn read_before_trcd_is_rejected() {
    // Pull the first column read under the activate-to-column latency.
    assert_mutation_caught("tRCD", |_, ev| {
        shift_nth(ev, 0, -1, |e| {
            matches!(e, AuditEvent::ColRd { bank: 0, .. })
        });
    });
}

#[test]
fn missed_refresh_deadline_is_rejected() {
    // Model a controller that skipped the refresh entirely and kept
    // activating: drop the REF and push bank 1's activity past the
    // (now stale) tREFI deadline. A late refresh itself is legal
    // (pull-in semantics), so the miss must be expressed as an
    // activation with no refresh before it.
    assert_mutation_caught("tREFI", |t, ev| {
        ev.retain(|e| !matches!(e, AuditEvent::Ref { .. }));
        #[allow(clippy::cast_possible_wrap)]
        let late = 2 * t.t_refi as i64;
        shift_nth(ev, 0, late, |e| {
            matches!(e, AuditEvent::Act { bank: 1, .. })
        });
        shift_nth(ev, 0, late, |e| {
            matches!(e, AuditEvent::Pre { bank: 1, .. })
        });
    });
}

#[test]
fn act_during_trfc_is_rejected() {
    // Pull the post-refresh activation into the refresh recovery window.
    assert_mutation_caught("tRFC", |_, ev| {
        shift_nth(ev, 0, -1, |e| matches!(e, AuditEvent::Act { bank: 1, .. }));
    });
}

#[test]
fn premature_precharge_violates_tras() {
    // Close bank 1 before the row has been open tRAS cycles. Bank 1 has
    // no reads, so tRAS is the only closing constraint in play.
    assert_mutation_caught("tRAS", |_, ev| {
        shift_nth(ev, 0, -1, |e| matches!(e, AuditEvent::Pre { bank: 1, .. }));
    });
}

#[test]
fn back_to_back_columns_inside_tccd_are_rejected() {
    // Pull the second read of bank 0 into the first read's burst window.
    assert_mutation_caught("tCCD", |_, ev| {
        shift_nth(ev, 1, -1, |e| {
            matches!(e, AuditEvent::ColRd { bank: 0, .. })
        });
    });
}

#[test]
fn staggered_acts_inside_trrd_are_rejected() {
    let t = timing();
    let mut events = legal_log(&t);
    // Two different-bank ACTs closer than tRRD but not at the same
    // cycle (same-cycle is a legal ganged activation).
    let last = events
        .iter()
        .map(|e| match *e {
            AuditEvent::Act { cycle, .. } | AuditEvent::Pre { cycle, .. } => cycle,
            _ => 0,
        })
        .max()
        .unwrap_or(0);
    events.push(AuditEvent::Act {
        bank: 8,
        row: 0,
        cycle: last + t.t_rp,
    });
    events.push(AuditEvent::Act {
        bank: 9,
        row: 0,
        cycle: last + t.t_rp + t.t_rrd - 1,
    });
    let found = validate(&events, &t);
    assert!(found.contains(&"tRRD"), "audit reported {found:?}");
}

#[test]
fn early_reactivation_violates_trc() {
    let t = timing();
    // With tRC = tRAS + tRP this perturbation trips tRP as well; the
    // audit must report tRC among the violations regardless.
    let mut events = vec![
        AuditEvent::Act {
            bank: 0,
            row: 0,
            cycle: 0,
        },
        AuditEvent::Pre {
            bank: 0,
            cycle: t.t_ras,
        },
        AuditEvent::Act {
            bank: 0,
            row: 1,
            cycle: t.t_rc(),
        },
    ];
    assert_eq!(validate(&events, &t), Vec::<&str>::new());
    if let AuditEvent::Act { cycle, .. } = &mut events[2] {
        *cycle -= 1;
    }
    let found = validate(&events, &t);
    assert!(found.contains(&"tRC"), "audit reported {found:?}");
}

#[test]
fn write_recovery_cut_short_is_rejected() {
    // Pull bank 0's precharge inside the write-recovery window of the
    // preceding column write.
    assert_mutation_caught("tWR", |_, ev| {
        shift_nth(ev, 0, -1, |e| matches!(e, AuditEvent::Pre { bank: 0, .. }));
    });
}

#[test]
fn crowded_command_slots_are_rejected() {
    // Squeeze two column-bus command slots into adjacent cycles.
    assert_mutation_caught("tCMD", |_, ev| {
        shift_nth(ev, 1, -(3), |e| {
            matches!(
                e,
                AuditEvent::Slot {
                    bus: BusKind::Column,
                    ..
                }
            )
        });
    });
}

#[test]
fn structural_mutations_are_rejected() {
    let t = timing();
    // Activation while the row is already open.
    let mut events = legal_log(&t);
    events.push(AuditEvent::Act {
        bank: 1,
        row: 3,
        cycle: events
            .iter()
            .map(|e| match *e {
                AuditEvent::Act { bank: 1, cycle, .. } => cycle + 1,
                _ => 0,
            })
            .max()
            .unwrap_or(0),
    });
    // That ACT lands between bank 1's ACT and PRE, i.e. on an open row.
    let found = validate(&events, &t);
    assert!(found.contains(&"ACT-on-open"), "audit reported {found:?}");

    // Column access on a bank that was never opened.
    let mut events = legal_log(&t);
    events.push(AuditEvent::ColRd {
        bank: 5,
        cycle: 40,
        external: false,
    });
    let found = validate(&events, &t);
    assert!(found.contains(&"COL-on-idle"), "audit reported {found:?}");

    // Precharge on a bank with no open row.
    let mut events = legal_log(&t);
    events.push(AuditEvent::Pre { bank: 5, cycle: 40 });
    let found = validate(&events, &t);
    assert!(found.contains(&"PRE-on-idle"), "audit reported {found:?}");
}

#[test]
fn every_act_shift_back_is_caught_by_some_constraint() {
    // Sweep: pulling ANY activation (other than the one at cycle 0,
    // which cannot move earlier) 1..=3 cycles early must trip at least
    // one constraint — the legal log has no slack anywhere an ACT sits.
    // This is the corpus's closing net: no single-event perturbation of
    // an activation goes unnoticed.
    let t = timing();
    let baseline = legal_log(&t);
    let act_count = baseline.iter().filter(|e| is_act(e)).count();
    for n in 1..act_count {
        for delta in 1..=3i64 {
            let mut events = baseline.clone();
            shift_nth(&mut events, n, -delta, is_act);
            let found = validate(&events, &t);
            assert!(
                !found.is_empty(),
                "ACT #{n} shifted {delta} cycles early must violate something"
            );
        }
    }
}
