//! Property-based tests of the DRAM substrate: random request streams
//! through the FR-FCFS scheduler and random row streams through the
//! reader must always complete, preserve data, and pass the independent
//! timing audit.

use newton_dram::controller::{FrFcfs, PagePolicy, Request};
use newton_dram::stream::StreamReader;
use newton_dram::{ini, Channel, DramConfig};
use proptest::prelude::*;

/// A compact random request description.
#[derive(Debug, Clone)]
struct ReqDesc {
    bank: usize,
    row: usize,
    col: usize,
    write: bool,
    arrival: u64,
}

fn req_strategy(banks: usize) -> impl Strategy<Value = ReqDesc> {
    (0..banks, 0usize..64, 0usize..32, any::<bool>(), 0u64..2000).prop_map(
        |(bank, row, col, write, arrival)| ReqDesc {
            bank,
            row,
            col,
            write,
            arrival,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every random request stream drains completely, read-your-writes
    /// holds per (bank,row,col), and the audit finds no violations.
    #[test]
    fn frfcfs_fuzz_drains_legally(
        reqs in prop::collection::vec(req_strategy(16), 1..60),
        closed in any::<bool>(),
    ) {
        let mut ch = Channel::new(DramConfig::hbm2e_like()).unwrap();
        ch.enable_audit();
        let policy = if closed { PagePolicy::Closed } else { PagePolicy::Open };
        let mut mc = FrFcfs::new(policy);
        // (Read-data vs write-data checking lives in the dedicated
        // read-your-write property below; FR-FCFS reordering makes it
        // ill-defined for arbitrary interleavings.)
        for (i, r) in reqs.iter().enumerate() {
            let fill = (i % 251) as u8 + 1;
            mc.enqueue(Request {
                id: i as u64,
                bank: r.bank,
                row: r.row,
                col: r.col,
                write: r.write.then(|| vec![fill; 32]),
                arrival: r.arrival,
            });
        }
        let done = mc.drain(&mut ch, 0).unwrap();
        prop_assert_eq!(done.len(), reqs.len(), "every request completes exactly once");
        let mut ids: Vec<u64> = done.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), reqs.len(), "no duplicate completions");

        // Hit/miss/conflict classification covers every request.
        let s = mc.stats();
        prop_assert_eq!(
            s.row_hits + s.row_misses + s.row_conflicts,
            reqs.len() as u64
        );

        let t = *ch.timing();
        let violations = ch.audit().unwrap().validate(&t);
        prop_assert!(violations.is_empty(), "{violations:?}");

        // Residency attribution: every cycle of every bank lands in
        // exactly one class, so per-bank totals equal elapsed time.
        let end = done.iter().map(|c| c.data_cycle).max().unwrap() + t.t_rfc;
        let summary = ch.summary(end);
        for (bank, r) in summary.residency.iter().enumerate() {
            prop_assert_eq!(r.total(), end, "bank {} residency != elapsed", bank);
        }
    }

    /// Reads of locations written exactly once (and never re-written)
    /// return the written bytes even under scheduler reordering, as long
    /// as the read arrives after the write completes.
    #[test]
    fn frfcfs_read_your_write_single_location(
        bank in 0usize..16,
        row in 0usize..64,
        col in 0usize..32,
        fill in 1u8..255,
    ) {
        let mut ch = Channel::new(DramConfig::hbm2e_like()).unwrap();
        let mut mc = FrFcfs::new(PagePolicy::Open);
        mc.enqueue(Request { id: 0, bank, row, col, write: Some(vec![fill; 32]), arrival: 0 });
        let w = mc.drain(&mut ch, 0).unwrap();
        let after = w[0].data_cycle;
        mc.enqueue(Request { id: 1, bank, row, col, write: None, arrival: after });
        let r = mc.drain(&mut ch, after).unwrap();
        prop_assert_eq!(&r[0].data, &vec![fill; 32]);
    }

    /// Random row lists stream to completion with a clean audit on
    /// arbitrary INI-tweaked devices.
    #[test]
    fn stream_fuzz_on_randomized_devices(
        banks in prop::sample::select(vec![4usize, 8, 16]),
        tccd in 2u32..9,
        tfaw in 20u32..41,
        n_rows in 1usize..40,
        seed in 0u64..1000,
    ) {
        let text = format!(
            "NUM_BANKS={banks}\ntCCD={tccd}\ntCMD={tccd}\ntFAW={tfaw}\nNUM_ROWS=256\n"
        );
        let cfg = ini::parse_config(&text).unwrap();
        let mut ch = Channel::new(cfg).unwrap();
        ch.enable_audit();
        // Pseudo-random but reproducible row list.
        let rows: Vec<(usize, usize)> = (0..n_rows)
            .map(|i| {
                let x = seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
                ((x >> 16) as usize % banks, (x >> 32) as usize % 256)
            })
            .collect();
        let mut reader = StreamReader::new(&mut ch);
        let out = reader.read_rows(0, &rows, |_, _, _| {}).unwrap();
        prop_assert_eq!(out.rows_read, n_rows);
        let t = *ch.timing();
        let violations = ch.audit().unwrap().validate(&t);
        prop_assert!(violations.is_empty(), "{violations:?}");

        // The residency invariant must hold on arbitrary devices too.
        let end = out.end_cycle + t.t_rfc;
        let summary = ch.summary(end);
        for (bank, r) in summary.residency.iter().enumerate() {
            prop_assert_eq!(r.total(), end, "bank {} residency != elapsed", bank);
        }
    }
}
