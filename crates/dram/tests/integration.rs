//! Crate-level integration tests: the channel, FR-FCFS controller,
//! streaming reader, INI loader and audit working together.

use newton_dram::controller::{FrFcfs, PagePolicy, Request};
use newton_dram::stream::StreamReader;
use newton_dram::{ini, Channel, DramConfig};

#[test]
fn controller_then_stream_share_one_channel_legally() {
    // A conventional request burst followed by an Ideal-Non-PIM-style
    // stream on the same channel, all audited.
    let mut ch = Channel::new(DramConfig::hbm2e_like()).unwrap();
    ch.enable_audit();

    let mut mc = FrFcfs::new(PagePolicy::Closed);
    for i in 0..32u64 {
        mc.enqueue(Request {
            id: i,
            bank: (i % 8) as usize,
            row: 100 + (i / 8) as usize,
            col: (i % 32) as usize,
            write: if i % 4 == 0 {
                Some(vec![i as u8; 32])
            } else {
                None
            },
            arrival: 0,
        });
    }
    let done = mc.drain(&mut ch, 0).unwrap();
    assert_eq!(done.len(), 32);
    let t_end = done.iter().map(|c| c.data_cycle).max().unwrap();

    let rows: Vec<(usize, usize)> = (0..16).map(|i| (i % 16, i / 16)).collect();
    let mut reader = StreamReader::new(&mut ch);
    let out = reader.read_rows(t_end, &rows, |_, _, _| {}).unwrap();
    assert!(out.end_cycle > t_end);

    let t = *ch.timing();
    assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
}

#[test]
fn written_data_streams_back_out_bit_exact() {
    let mut ch = Channel::new(DramConfig::hbm2e_like()).unwrap();
    // Write three full rows through the functional path.
    for bank in 0..3 {
        let row: Vec<u8> = (0..1024).map(|i| (bank * 31 + i % 251) as u8).collect();
        ch.storage_mut().write_row(bank, 0, &row).unwrap();
    }
    let mut got = vec![Vec::new(); 3];
    let rows = [(0usize, 0usize), (1, 0), (2, 0)];
    let mut reader = StreamReader::new(&mut ch);
    reader
        .read_rows(0, &rows, |ri, _, data| got[ri].extend_from_slice(data))
        .unwrap();
    for (bank, data) in got.iter().enumerate() {
        let expect: Vec<u8> = (0..1024).map(|i| (bank * 31 + i % 251) as u8).collect();
        assert_eq!(data, &expect);
    }
}

#[test]
fn ini_defined_device_feeds_the_whole_stack() {
    let cfg = ini::parse_config("NUM_BANKS=4\nNUM_ROWS=128\nNUM_COLS=16\ntREFI=2000\ntRFC=200\n")
        .unwrap();
    assert_eq!(cfg.row_bytes(), 512);
    let mut ch = Channel::new(cfg).unwrap();
    ch.enable_audit();
    let mut mc = FrFcfs::new(PagePolicy::Open);
    // Enough misses to force refreshes under the shortened tREFI.
    for i in 0..400u64 {
        mc.enqueue(Request {
            id: i,
            bank: (i % 4) as usize,
            row: (i / 4) as usize % 128,
            col: 0,
            write: None,
            arrival: 0,
        });
    }
    let done = mc.drain(&mut ch, 0).unwrap();
    assert_eq!(done.len(), 400);
    assert!(mc.stats().refreshes >= 1);
    let t = *ch.timing();
    assert_eq!(ch.audit().unwrap().validate(&t), vec![]);
}

#[test]
fn open_page_policy_wins_on_locality_and_loses_on_conflicts() {
    let total_time = |policy: PagePolicy, rows: &[usize]| {
        let mut ch = Channel::new(DramConfig::hbm2e_like()).unwrap();
        ch.disable_refresh();
        let mut mc = FrFcfs::new(policy);
        for (i, &row) in rows.iter().enumerate() {
            mc.enqueue(Request {
                id: i as u64,
                bank: 0,
                row,
                col: i % 32,
                write: None,
                arrival: 0,
            });
        }
        let done = mc.drain(&mut ch, 0).unwrap();
        done.iter().map(|c| c.data_cycle).max().unwrap()
    };
    // Pure locality: one row, many columns — open page streams, closed
    // page pays tRC per access.
    let local: Vec<usize> = vec![7; 16];
    assert!(total_time(PagePolicy::Open, &local) < total_time(PagePolicy::Closed, &local));
    // An alternating two-row pattern *would* be pure conflicts in
    // arrival order, but FR-FCFS reorders it into two row-hit streaks —
    // the scheduler's whole point. The cost ends up close to the pure
    // locality pattern rather than ~16x tRC.
    let conflict: Vec<usize> = (0..16).map(|i| if i % 2 == 0 { 1 } else { 2 }).collect();
    let local_t = total_time(PagePolicy::Open, &local);
    let conflict_t = total_time(PagePolicy::Open, &conflict);
    assert!(
        conflict_t < 2 * local_t,
        "FR-FCFS should rescue the alternating pattern: {conflict_t} vs {local_t}"
    );

    // Verify the rescue is really reordering: hit statistics show one
    // streak per row, not sixteen conflicts.
    let mut ch = Channel::new(DramConfig::hbm2e_like()).unwrap();
    ch.disable_refresh();
    let mut mc = FrFcfs::new(PagePolicy::Open);
    for (i, &row) in conflict.iter().enumerate() {
        mc.enqueue(Request {
            id: i as u64,
            bank: 0,
            row,
            col: i % 32,
            write: None,
            arrival: 0,
        });
    }
    mc.drain(&mut ch, 0).unwrap();
    assert!(mc.stats().row_hits >= 13, "{:?}", mc.stats());
    assert!(mc.stats().row_conflicts <= 2, "{:?}", mc.stats());
}

#[test]
fn audit_catches_a_deliberately_broken_stream() {
    // Force-feed the channel a legal stream, then corrupt the audit log
    // with an impossible event and prove validation notices — guards
    // against the audit silently passing everything.
    use newton_dram::audit::{Audit, AuditEvent};
    let t = DramConfig::hbm2e_like().timing.to_cycles().unwrap();
    let mut audit = Audit::new();
    audit.record(AuditEvent::Act {
        bank: 0,
        row: 0,
        cycle: 0,
    });
    audit.record(AuditEvent::Act {
        bank: 0,
        row: 1,
        cycle: 1,
    }); // ACT on open + tRC
    let violations = audit.validate(&t);
    assert!(violations.iter().any(|v| v.constraint == "ACT-on-open"));
    assert!(violations.iter().any(|v| v.constraint == "tRC"));
}
