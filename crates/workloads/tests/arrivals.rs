//! Property tests for the open-loop arrival generators (PR 8):
//! chunk-invariant determinism across worker-thread widths, and
//! empirical rates within tolerance of the configured λ.
//!
//! Thread widths are pinned explicitly through
//! `arrival_times_ns_with_threads` (the same pattern as
//! `ParallelPolicy::exact` elsewhere), so the suite passes identically
//! under `NEWTON_THREADS=1` and the default environment.

use newton_workloads::arrivals::ArrivalPattern;
use proptest::prelude::*;

/// A strategy over well-formed patterns spanning all three shapes.
fn pattern() -> impl Strategy<Value = ArrivalPattern> {
    prop_oneof![
        (0.05f64..20.0).prop_map(|rate_per_us| ArrivalPattern::Poisson { rate_per_us }),
        (0.01f64..2.0, 1.0f64..20.0, 20.0f64..500.0, 0.05f64..0.9).prop_map(
            |(base_rate_per_us, peak_rate_per_us, period_us, burst_fraction)| {
                ArrivalPattern::Bursty {
                    base_rate_per_us,
                    peak_rate_per_us,
                    period_us,
                    burst_fraction,
                }
            }
        ),
        (0.1f64..10.0, 0.0f64..0.95, 50.0f64..2000.0).prop_map(
            |(mean_rate_per_us, amplitude, period_us)| ArrivalPattern::Diurnal {
                mean_rate_per_us,
                amplitude,
                period_us,
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The trace is a pure function of (pattern, seed): every
    /// worker-thread width produces byte-identical arrivals. This is the
    /// NEWTON_THREADS ∈ {1, 2, 8} width sweep, pinned explicitly.
    #[test]
    fn traces_are_width_invariant(p in pattern(), seed in any::<u64>()) {
        // Large enough to cross the parallel-fill threshold for
        // high-thinning patterns, small enough to stay fast.
        let count = 3000;
        let serial = p.arrival_times_ns_with_threads(seed, count, 1).unwrap();
        prop_assert_eq!(serial.len(), count);
        prop_assert!(serial.windows(2).all(|w| w[0] <= w[1]));
        for threads in [2usize, 8] {
            let wide = p.arrival_times_ns_with_threads(seed, count, threads).unwrap();
            prop_assert_eq!(&wide, &serial, "threads={}", threads);
        }
    }

    /// The observed count matches the configured rate: for an
    /// inhomogeneous Poisson process, E[count over [0, T]] = ∫₀ᵀ λ(t)dt,
    /// which reduces to λ·T for the steady pattern and to the
    /// time-averaged λ over whole periods for the others. Tolerance
    /// covers Poisson sampling noise (~1/sqrt(n)).
    #[test]
    fn empirical_rate_matches_lambda(p in pattern(), seed in any::<u64>()) {
        let count = 4000usize;
        let a = p.arrival_times_ns_with_threads(seed, count, 1).unwrap();
        let span_ns = *a.last().unwrap() as f64;
        prop_assume!(span_ns > 0.0);
        // Fine Riemann sum of λ(t) over the observed span.
        let steps = 20_000;
        let dt = span_ns / steps as f64;
        let expected_count: f64 = (0..steps)
            .map(|i| p.rate_per_ns_at((i as f64 + 0.5) * dt) * dt)
            .sum();
        // 4000 samples → σ ≈ 63; allow ~6σ plus quadrature slack.
        let tol = 6.0 * expected_count.sqrt() + 0.01 * expected_count;
        prop_assert!(
            (count as f64 - expected_count).abs() <= tol,
            "observed {} vs ∫λ = {:.1} ± {:.1} (pattern {:?})",
            count, expected_count, tol, p
        );
    }
}

/// The three named widths from the ISSUE, on one concrete pattern each,
/// as a plain test so a proptest shrink can never mask a regression.
#[test]
fn named_width_sweep_is_bit_identical() {
    let pats = [
        ArrivalPattern::Poisson { rate_per_us: 4.0 },
        ArrivalPattern::Bursty {
            base_rate_per_us: 0.2,
            peak_rate_per_us: 8.0,
            period_us: 50.0,
            burst_fraction: 0.25,
        },
        ArrivalPattern::Diurnal {
            mean_rate_per_us: 2.0,
            amplitude: 0.5,
            period_us: 400.0,
        },
    ];
    for p in pats {
        let base = p.arrival_times_ns_with_threads(1234, 5000, 1).unwrap();
        for threads in [2usize, 8] {
            assert_eq!(
                p.arrival_times_ns_with_threads(1234, 5000, threads)
                    .unwrap(),
                base,
                "{p:?} threads={threads}"
            );
        }
    }
}
