//! Reference numerics: exact (`f64`) matrix–vector products, activations,
//! and chained model execution for validating the simulator's outputs.

use newton_bf16::Bf16;

/// `f64` matrix–vector product of a row-major `m x n` bf16 matrix.
///
/// # Panics
///
/// Panics if the buffer sizes disagree with `m`/`n`.
#[must_use]
pub fn mv_f64(matrix: &[Bf16], m: usize, n: usize, vector: &[Bf16]) -> Vec<f64> {
    assert_eq!(matrix.len(), m * n, "matrix size mismatch");
    assert_eq!(vector.len(), n, "vector size mismatch");
    let v: Vec<f64> = vector.iter().map(|x| x.to_f64()).collect();
    (0..m)
        .map(|i| {
            matrix[i * n..(i + 1) * n]
                .iter()
                .zip(&v)
                .map(|(w, x)| w.to_f64() * x)
                .sum()
        })
        .collect()
}

/// The activation functions used by the end-to-end models, applied in
/// `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Identity.
    #[default]
    Identity,
    /// `max(0, x)`.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the function.
    #[must_use]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }
}

/// Range-based batch normalization (divide by the max absolute value),
/// matching the simulator's host-side normalization.
pub fn normalize_range(values: &mut [f64]) {
    let max_abs = values.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
    if max_abs > 0.0 {
        for v in values {
            *v /= max_abs;
        }
    }
}

/// One reference layer description for [`run_model_f64`].
#[derive(Debug, Clone, Copy)]
pub struct RefLayer<'a> {
    /// Row-major `m x n` weights.
    pub matrix: &'a [Bf16],
    /// Output length.
    pub m: usize,
    /// Input length.
    pub n: usize,
    /// Activation applied after (optional) normalization.
    pub activation: Activation,
    /// Whether range normalization runs before the activation.
    pub batch_norm: bool,
    /// Keep only the first `k` outputs for the next layer.
    pub output_keep: Option<usize>,
}

/// Chained reference model execution mirroring
/// `newton_core::system::NewtonSystem::run_model`, including the bf16
/// re-rounding of each intermediate vector (the physical GWRITE path).
///
/// # Panics
///
/// Panics on inconsistent shapes.
#[must_use]
pub fn run_model_f64(layers: &[RefLayer<'_>], input: &[Bf16]) -> Vec<f64> {
    let mut vec_bf: Vec<Bf16> = input.to_vec();
    let mut out_f64: Vec<f64> = Vec::new();
    for layer in layers {
        assert_eq!(vec_bf.len(), layer.n, "layer input length mismatch");
        let mut out = mv_f64(layer.matrix, layer.m, layer.n, &vec_bf);
        if layer.batch_norm {
            normalize_range(&mut out);
        }
        for v in &mut out {
            *v = layer.activation.apply(*v);
        }
        if let Some(k) = layer.output_keep {
            out.truncate(k);
        }
        vec_bf = out.iter().map(|&x| Bf16::from_f64(x)).collect();
        out_f64 = out;
    }
    out_f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bf(v: f32) -> Bf16 {
        Bf16::from_f32(v)
    }

    #[test]
    fn mv_matches_hand_computation() {
        // [1 2; 3 4] * [5; 6] = [17; 39]
        let m = vec![bf(1.0), bf(2.0), bf(3.0), bf(4.0)];
        let v = vec![bf(5.0), bf(6.0)];
        assert_eq!(mv_f64(&m, 2, 2, &v), vec![17.0, 39.0]);
    }

    #[test]
    #[should_panic(expected = "matrix size mismatch")]
    fn mv_rejects_bad_shapes() {
        let _ = mv_f64(&[bf(1.0)], 2, 2, &[bf(1.0), bf(2.0)]);
    }

    #[test]
    fn activations_cover_the_cases() {
        assert_eq!(Activation::Identity.apply(-2.0), -2.0);
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!((Activation::Tanh.apply(100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_range_scales_to_unit_max() {
        let mut v = vec![-4.0, 2.0, 1.0];
        normalize_range(&mut v);
        assert_eq!(v, vec![-1.0, 0.5, 0.25]);
        let mut z = vec![0.0, 0.0];
        normalize_range(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn chained_model_with_keep_and_norm() {
        // Layer 1: 4x2 ones, input [1, 1] -> [2,2,2,2]; keep 2 -> [2,2].
        // Layer 2: 2x2 identity-ish with relu on negated values.
        let w1 = vec![bf(1.0); 8];
        let w2 = vec![bf(-1.0), bf(0.0), bf(0.0), bf(1.0)];
        let layers = [
            RefLayer {
                matrix: &w1,
                m: 4,
                n: 2,
                activation: Activation::Identity,
                batch_norm: true, // [2,2,2,2] -> [1,1,1,1]
                output_keep: Some(2),
            },
            RefLayer {
                matrix: &w2,
                m: 2,
                n: 2,
                activation: Activation::Relu,
                batch_norm: false,
                output_keep: None,
            },
        ];
        let out = run_model_f64(&layers, &[bf(1.0), bf(1.0)]);
        assert_eq!(out, vec![0.0, 1.0]);
    }
}
