//! The Table II benchmark layers.

use std::fmt;

/// A matrix–vector product shape: `[m x n] * [n x 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MvShape {
    /// Matrix rows (output length).
    pub m: usize,
    /// Matrix columns (input length).
    pub n: usize,
}

impl MvShape {
    /// Creates a shape.
    #[must_use]
    pub const fn new(m: usize, n: usize) -> MvShape {
        MvShape { m, n }
    }

    /// Matrix footprint in bytes at bf16.
    #[must_use]
    pub fn matrix_bytes(&self) -> usize {
        self.m * self.n * 2
    }

    /// Multiply-accumulate operations per inference.
    #[must_use]
    pub fn macs(&self) -> usize {
        self.m * self.n
    }
}

impl fmt::Display for MvShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} x {}", self.m, self.n)
    }
}

/// The eight benchmark layers of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// GNMT LSTM shape 1: 4096 x 1024.
    GnmtS1,
    /// GNMT LSTM shape 2: 4096 x 2048.
    GnmtS2,
    /// BERT shape 1: 1024 x 1024 (attention projections).
    BertS1,
    /// BERT shape 2: 1024 x 4096 (FFN down-projection).
    BertS2,
    /// BERT shape 3: 4096 x 1024 (FFN up-projection).
    BertS3,
    /// AlexNet FC layer 6: 21632 x 2048 (as published in Table II).
    AlexNetL6,
    /// AlexNet FC layer 7: 2048 x 2048.
    AlexNetL7,
    /// DLRM shape 1: 512 x 256.
    DlrmS1,
}

impl Benchmark {
    /// All benchmarks in Table II order.
    #[must_use]
    pub fn all() -> [Benchmark; 8] {
        [
            Benchmark::GnmtS1,
            Benchmark::GnmtS2,
            Benchmark::BertS1,
            Benchmark::BertS2,
            Benchmark::BertS3,
            Benchmark::AlexNetL6,
            Benchmark::AlexNetL7,
            Benchmark::DlrmS1,
        ]
    }

    /// The MV shape, exactly per Table II.
    #[must_use]
    pub fn shape(self) -> MvShape {
        match self {
            Benchmark::GnmtS1 => MvShape::new(4096, 1024),
            Benchmark::GnmtS2 => MvShape::new(4096, 2048),
            Benchmark::BertS1 => MvShape::new(1024, 1024),
            Benchmark::BertS2 => MvShape::new(1024, 4096),
            Benchmark::BertS3 => MvShape::new(4096, 1024),
            Benchmark::AlexNetL6 => MvShape::new(21632, 2048),
            Benchmark::AlexNetL7 => MvShape::new(2048, 2048),
            Benchmark::DlrmS1 => MvShape::new(512, 256),
        }
    }

    /// The paper's display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::GnmtS1 => "GNMTs1",
            Benchmark::GnmtS2 => "GNMTs2",
            Benchmark::BertS1 => "BERTs1",
            Benchmark::BertS2 => "BERTs2",
            Benchmark::BertS3 => "BERTs3",
            Benchmark::AlexNetL6 => "AlexNetL6",
            Benchmark::AlexNetL7 => "AlexNetL7",
            Benchmark::DlrmS1 => "DLRMs1",
        }
    }

    /// Whether this layer belongs to the paper's "key target
    /// applications" (BERT, GNMT and DLRM — Sec. V-A; AlexNet's FC layers
    /// are a free benefit, not a target).
    #[must_use]
    pub fn is_key_target(self) -> bool {
        !matches!(self, Benchmark::AlexNetL6 | Benchmark::AlexNetL7)
    }

    /// A stable per-benchmark RNG seed for data generation.
    #[must_use]
    pub fn seed(self) -> u64 {
        match self {
            Benchmark::GnmtS1 => 0x6e31,
            Benchmark::GnmtS2 => 0x6e32,
            Benchmark::BertS1 => 0xbe31,
            Benchmark::BertS2 => 0xbe32,
            Benchmark::BertS3 => 0xbe33,
            Benchmark::AlexNetL6 => 0xa1e6,
            Benchmark::AlexNetL7 => 0xa1e7,
            Benchmark::DlrmS1 => 0xd131,
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_shapes_match_the_paper() {
        let expect = [
            ("GNMTs1", 4096, 1024),
            ("GNMTs2", 4096, 2048),
            ("BERTs1", 1024, 1024),
            ("BERTs2", 1024, 4096),
            ("BERTs3", 4096, 1024),
            ("AlexNetL6", 21632, 2048),
            ("AlexNetL7", 2048, 2048),
            ("DLRMs1", 512, 256),
        ];
        for (b, (name, m, n)) in Benchmark::all().iter().zip(expect) {
            assert_eq!(b.name(), name);
            assert_eq!(b.shape(), MvShape::new(m, n));
            assert_eq!(b.to_string(), name);
        }
    }

    #[test]
    fn key_targets_exclude_alexnet() {
        let keys: Vec<_> = Benchmark::all()
            .into_iter()
            .filter(|b| b.is_key_target())
            .collect();
        assert_eq!(keys.len(), 6);
        assert!(!Benchmark::AlexNetL6.is_key_target());
        assert!(!Benchmark::AlexNetL7.is_key_target());
    }

    #[test]
    fn shape_helpers() {
        let s = Benchmark::DlrmS1.shape();
        assert_eq!(s.matrix_bytes(), 512 * 256 * 2);
        assert_eq!(s.macs(), 512 * 256);
        assert_eq!(s.to_string(), "512 x 256");
    }

    #[test]
    fn seeds_are_distinct() {
        let mut seeds: Vec<u64> = Benchmark::all().iter().map(|b| b.seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8);
    }
}
