//! End-to-end model graphs for the right half of Figure 8.
//!
//! The paper's end-to-end runs chain the Table II layers into full models
//! ("GNMT, BERT, AlexNet, and DLRM"), "include activation functions and
//! batch normalization" (Sec. V-A), and for AlexNet account for the
//! conv-dominated portion Newton does not accelerate (the FC layers are
//! ~15% of GPU inference time but most of the parameters, Sec. IV).
//!
//! Exact model internals (attention, LSTM gate elementwise math) are not
//! matrix–vector products and contribute negligibly; they are modeled as
//! host-side output folding (`output_keep`) and normalization exposure,
//! which is also how the paper treats them ("the fully-connected layers
//! account for more than 99% of the run time").

use crate::reference::Activation;
use crate::suite::{Benchmark, MvShape};

/// One layer of an end-to-end model.
#[derive(Debug, Clone, Copy)]
pub struct ModelLayer {
    /// The MV shape.
    pub shape: MvShape,
    /// The Table II benchmark this layer instantiates.
    pub benchmark: Benchmark,
    /// Post-layer activation.
    pub activation: Activation,
    /// Whether (batch/layer) normalization follows the layer.
    pub batch_norm: bool,
    /// Host-side output folding: keep the first `k` outputs as the next
    /// layer's input (LSTM gate folding, FC tail truncation).
    pub output_keep: Option<usize>,
}

/// A complete end-to-end benchmark model.
#[derive(Debug, Clone)]
pub struct EndToEndModel {
    /// Display name (Fig. 8's right section).
    pub name: &'static str,
    /// The FC layer sequence Newton executes.
    pub layers: Vec<ModelLayer>,
    /// Fraction of *GPU* end-to-end inference time spent in these FC
    /// layers (1.0-ish for the NLP/recommendation models, 0.15 for
    /// AlexNet whose conv layers dominate).
    pub fc_fraction_gpu: f64,
}

impl EndToEndModel {
    /// GNMT: an 8-layer LSTM stack. Each LSTM step is one stacked-gate MV
    /// (`4096 x n` = four 1024-wide gates); gate folding keeps a 2048-wide
    /// `[x, h]` input for the next layer.
    #[must_use]
    pub fn gnmt() -> EndToEndModel {
        let mut layers = vec![ModelLayer {
            shape: Benchmark::GnmtS1.shape(),
            benchmark: Benchmark::GnmtS1,
            activation: Activation::Tanh,
            batch_norm: false,
            output_keep: Some(2048),
        }];
        for _ in 0..7 {
            layers.push(ModelLayer {
                shape: Benchmark::GnmtS2.shape(),
                benchmark: Benchmark::GnmtS2,
                activation: Activation::Tanh,
                batch_norm: false,
                output_keep: Some(2048),
            });
        }
        EndToEndModel {
            name: "GNMT",
            layers,
            fc_fraction_gpu: 0.995,
        }
    }

    /// BERT-large: 24 encoder blocks of Q/K/V/O projections (BERTs1), the
    /// FFN up-projection (BERTs3) and down-projection (BERTs2), with layer
    /// normalization after attention output and after the FFN.
    #[must_use]
    pub fn bert() -> EndToEndModel {
        let mut layers = Vec::with_capacity(24 * 6);
        for _ in 0..24 {
            for i in 0..4 {
                layers.push(ModelLayer {
                    shape: Benchmark::BertS1.shape(),
                    benchmark: Benchmark::BertS1,
                    activation: Activation::Identity,
                    batch_norm: i == 3, // layer norm after the output projection
                    output_keep: None,
                });
            }
            layers.push(ModelLayer {
                shape: Benchmark::BertS3.shape(),
                benchmark: Benchmark::BertS3,
                activation: Activation::Relu, // GELU approximated by ReLU
                batch_norm: false,
                output_keep: None,
            });
            layers.push(ModelLayer {
                shape: Benchmark::BertS2.shape(),
                benchmark: Benchmark::BertS2,
                activation: Activation::Identity,
                batch_norm: true,
                output_keep: None,
            });
        }
        EndToEndModel {
            name: "BERT",
            layers,
            fc_fraction_gpu: 0.995,
        }
    }

    /// AlexNet's two FC layers (the conv-dominated 85% of GPU time is
    /// carried in `fc_fraction_gpu`).
    #[must_use]
    pub fn alexnet() -> EndToEndModel {
        EndToEndModel {
            name: "AlexNet",
            layers: vec![
                ModelLayer {
                    shape: Benchmark::AlexNetL6.shape(),
                    benchmark: Benchmark::AlexNetL6,
                    activation: Activation::Relu,
                    batch_norm: false,
                    output_keep: Some(2048),
                },
                ModelLayer {
                    shape: Benchmark::AlexNetL7.shape(),
                    benchmark: Benchmark::AlexNetL7,
                    activation: Activation::Relu,
                    batch_norm: false,
                    output_keep: None,
                },
            ],
            fc_fraction_gpu: 0.15,
        }
    }

    /// DLRM: a six-layer MLP of the Table II shape with ReLU and batch
    /// normalization (recommendation models are normalization-heavy —
    /// Sec. III-C's batch-norm pipelining discussion).
    #[must_use]
    pub fn dlrm() -> EndToEndModel {
        let layers = (0..6)
            .map(|i| ModelLayer {
                shape: Benchmark::DlrmS1.shape(),
                benchmark: Benchmark::DlrmS1,
                activation: Activation::Relu,
                batch_norm: true,
                output_keep: if i == 5 { None } else { Some(256) },
            })
            .collect();
        EndToEndModel {
            name: "DLRM",
            layers,
            fc_fraction_gpu: 0.995,
        }
    }

    /// All four end-to-end models in Fig. 8 order.
    #[must_use]
    pub fn all() -> Vec<EndToEndModel> {
        vec![
            EndToEndModel::gnmt(),
            EndToEndModel::bert(),
            EndToEndModel::alexnet(),
            EndToEndModel::dlrm(),
        ]
    }

    /// Total MAC operations per inference.
    #[must_use]
    pub fn total_macs(&self) -> usize {
        self.layers.iter().map(|l| l.shape.macs()).sum()
    }

    /// Total weight bytes at bf16.
    #[must_use]
    pub fn total_weight_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.shape.matrix_bytes()).sum()
    }

    /// Input length of the first layer.
    #[must_use]
    pub fn input_len(&self) -> usize {
        self.layers[0].shape.n
    }

    /// Checks that consecutive layers chain: each layer's kept output
    /// length equals the next layer's input length.
    #[must_use]
    pub fn chains(&self) -> bool {
        self.layers.windows(2).all(|w| {
            let out = w[0].output_keep.unwrap_or(w[0].shape.m);
            out == w[1].shape.n
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_chain_dimensionally() {
        for model in EndToEndModel::all() {
            assert!(model.chains(), "{} does not chain", model.name);
            assert!(!model.layers.is_empty());
        }
    }

    #[test]
    fn bert_large_has_24_blocks_of_6_layers() {
        let bert = EndToEndModel::bert();
        assert_eq!(bert.layers.len(), 144);
        // ~302 M parameters, close to the paper's "340 M elements in
        // Google's BERT" (which includes embeddings we do not run).
        let params = bert.total_macs();
        assert!((290_000_000..320_000_000).contains(&params), "{params}");
    }

    #[test]
    fn alexnet_fc_fraction_matches_the_paper() {
        let alex = EndToEndModel::alexnet();
        assert_eq!(alex.fc_fraction_gpu, 0.15);
        assert_eq!(alex.layers.len(), 2);
        // FC6 dominates the parameters.
        assert!(alex.layers[0].shape.matrix_bytes() > 10 * alex.layers[1].shape.matrix_bytes());
    }

    #[test]
    fn gnmt_folds_gates_to_2048() {
        let gnmt = EndToEndModel::gnmt();
        assert_eq!(gnmt.layers.len(), 8);
        assert_eq!(gnmt.layers[0].output_keep, Some(2048));
        assert_eq!(gnmt.layers[1].shape.n, 2048);
    }

    #[test]
    fn dlrm_is_normalization_heavy() {
        let dlrm = EndToEndModel::dlrm();
        assert!(dlrm.layers.iter().all(|l| l.batch_norm));
        assert_eq!(dlrm.layers.len(), 6);
        // Small model: the whole thing is well under one refresh window
        // per layer (the Fig. 8 DLRM discussion).
        assert!(dlrm.total_weight_bytes() < 2 << 20);
    }

    #[test]
    fn model_totals_are_consistent() {
        for model in EndToEndModel::all() {
            assert_eq!(model.total_weight_bytes(), model.total_macs() * 2);
            assert_eq!(model.input_len(), model.layers[0].shape.n);
        }
    }
}
