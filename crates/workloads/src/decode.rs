//! Autoregressive decode-stream workload: N per-token GEMVs against one
//! resident weight matrix.
//!
//! Token generation in a decoder-only model is a stream of matrix–vector
//! products against weights that never change between tokens — the
//! workload the compiled-schedule replay cache exists for: the command
//! schedule is identical for every token, only the input-vector bits
//! differ. A [`DecodeStreamSpec`] pins that stream down reproducibly:
//! one seeded weight matrix, one seeded input per token position, and an
//! `f64` reference oracle for every token so a full-stream run can be
//! checked token-by-token regardless of replay mode, timing engine, or
//! thread width.

use newton_bf16::Bf16;

use crate::generator;
use crate::reference;
use crate::suite::MvShape;

/// One decode stream: `tokens` GEMVs of the same `m x n` resident
/// matrix, with per-token seeded inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeStreamSpec {
    /// Output length of every per-token GEMV.
    pub m: usize,
    /// Input (hidden-state) length.
    pub n: usize,
    /// Number of tokens decoded (GEMVs issued).
    pub tokens: usize,
    /// Base seed; the weight matrix and every token input derive from it.
    pub seed: u64,
}

/// Seed-space split between the resident weights and the token inputs,
/// so a token stream never aliases its own matrix bytes.
const TOKEN_SEED_SALT: u64 = 0xdec0_de00_0000_0001;

impl DecodeStreamSpec {
    /// A spec; all dimensions must be non-zero.
    ///
    /// # Panics
    ///
    /// Panics when `m`, `n`, or `tokens` is zero.
    #[must_use]
    pub fn new(m: usize, n: usize, tokens: usize, seed: u64) -> DecodeStreamSpec {
        assert!(m > 0 && n > 0, "decode stream needs a non-empty matrix");
        assert!(tokens > 0, "decode stream needs at least one token");
        DecodeStreamSpec { m, n, tokens, seed }
    }

    /// The resident weight matrix (row-major `m x n`, Xavier-scaled).
    #[must_use]
    pub fn matrix(&self) -> Vec<Bf16> {
        generator::matrix(MvShape::new(self.m, self.n), self.seed)
    }

    /// The input vector for token position `t` (each position distinct,
    /// all derived from the stream seed).
    ///
    /// # Panics
    ///
    /// Panics when `t >= self.tokens`.
    #[must_use]
    pub fn token_input(&self, t: usize) -> Vec<Bf16> {
        assert!(t < self.tokens, "token {t} out of range {}", self.tokens);
        generator::vector(self.n, self.seed ^ TOKEN_SEED_SALT.wrapping_add(t as u64))
    }

    /// All token inputs, in stream order.
    #[must_use]
    pub fn token_inputs(&self) -> Vec<Vec<Bf16>> {
        (0..self.tokens).map(|t| self.token_input(t)).collect()
    }

    /// The `f64` reference oracle: exact per-token MV products of the
    /// stream's matrix and inputs, for error-bound checks on simulator
    /// outputs.
    #[must_use]
    pub fn reference_outputs(&self) -> Vec<Vec<f64>> {
        let matrix = self.matrix();
        (0..self.tokens)
            .map(|t| reference::mv_f64(&matrix, self.m, self.n, &self.token_input(t)))
            .collect()
    }

    /// Per-output-element absolute error tolerance against the oracle:
    /// bf16 relative epsilon times the dot-product length, times the
    /// worst-case partial magnitude (inputs are in `[-1, 1]` and weights
    /// in `[-1/sqrt(n), 1/sqrt(n)]`, so partials are O(sqrt(n))).
    #[must_use]
    pub fn tolerance(&self) -> f64 {
        let sqrt_n = (self.n as f64).sqrt();
        // bf16 has an 8-bit significand: eps = 2^-8.
        (self.n as f64) * sqrt_n.max(1.0) * (1.0 / 256.0) * 0.25
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_tokens_distinct() {
        let spec = DecodeStreamSpec::new(16, 256, 4, 11);
        assert_eq!(spec.matrix(), spec.matrix());
        let inputs = spec.token_inputs();
        assert_eq!(inputs.len(), 4);
        assert_eq!(inputs[2], spec.token_input(2));
        for w in inputs.windows(2) {
            assert_ne!(w[0], w[1], "token inputs must differ");
        }
    }

    #[test]
    fn oracle_matches_direct_reference() {
        let spec = DecodeStreamSpec::new(8, 64, 3, 5);
        let oracle = spec.reference_outputs();
        assert_eq!(oracle.len(), 3);
        let matrix = spec.matrix();
        let direct = reference::mv_f64(&matrix, 8, 64, &spec.token_input(1));
        assert_eq!(oracle[1], direct);
        assert!(spec.tolerance() > 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn token_index_is_bounds_checked() {
        let spec = DecodeStreamSpec::new(4, 16, 2, 1);
        let _ = spec.token_input(2);
    }
}
